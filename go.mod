module schedroute

go 1.22
