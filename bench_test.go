// Package schedroute's root benchmark harness regenerates every figure
// of the paper's evaluation (Figs. 5-10), the Section 3 output-
// inconsistency construction, and the ablations called out in DESIGN.md.
// Each Benchmark* corresponds to one figure panel; run
//
//	go test -bench=. -benchmem
//
// and compare the reported shape metrics (feasible load points, OI
// counts, peak utilizations) against EXPERIMENTS.md.
package schedroute

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/cliutil"
	"schedroute/internal/cpsim"
	"schedroute/internal/dvb"
	"schedroute/internal/experiments"
	"schedroute/internal/metrics"
	"schedroute/internal/schedule"
	"schedroute/internal/service"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/wormhole"
	api "schedroute/pkg/schedroute"
)

func benchConfig(b *testing.B, key string) experiments.Config {
	b.Helper()
	cfgs, err := experiments.StandardConfigs()
	if err != nil {
		b.Fatal(err)
	}
	cfg, ok := cfgs[key]
	if !ok {
		b.Fatalf("unknown config %s", key)
	}
	// Short but spike-revealing wormhole runs keep bench iterations fast.
	cfg.Invocations = 16
	cfg.Warmup = 8
	return cfg
}

// benchUtilization runs one Fig. 5/6 panel and reports the number of
// load points reaching U <= 1 plus the best peak seen.
func benchUtilization(b *testing.B, key string) {
	cfg := benchConfig(b, key)
	var feasible int
	var bestPeak float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.UtilizationSweep(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		feasible = 0
		bestPeak = s.Points[0].Final
		for _, p := range s.Points {
			if p.Final <= 1.0000001 {
				feasible++
			}
			if p.Final < bestPeak {
				bestPeak = p.Final
			}
			if p.Final > p.LSD+1e-9 {
				b.Fatalf("AssignPaths worse than LSD at load %.4f", p.Load)
			}
		}
	}
	b.ReportMetric(float64(feasible), "loadpts(U<=1)")
	b.ReportMetric(bestPeak, "bestU")
}

// benchPerf runs one Fig. 7-10 panel and reports OI and feasibility
// counts over the twelve load points.
func benchPerf(b *testing.B, key string) {
	cfg := benchConfig(b, key)
	var oi, srOK, both int
	for i := 0; i < b.N; i++ {
		s, err := experiments.PerfSweep(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		oi, srOK, both = 0, 0, 0
		for _, p := range s.Points {
			if p.WROI || p.WRDeadlock {
				oi++
			}
			if p.SRFeasible {
				srOK++
				if p.WROI {
					both++
				}
			}
		}
	}
	b.ReportMetric(float64(oi), "WR-OI-pts")
	b.ReportMetric(float64(srOK), "SR-ok-pts")
	b.ReportMetric(float64(both), "SR-fixes-OI-pts")
}

// Figure 5: peak utilization vs load, AssignPaths against LSD-to-MSD,
// on the generalized hypercubes at B=64 bytes/µs.
func BenchmarkFig5SixCubeB64(b *testing.B) { benchUtilization(b, "6cube-b64") }
func BenchmarkFig5GHC444B64(b *testing.B)  { benchUtilization(b, "ghc444-b64") }

// Figure 6: the same sweeps on the tori at B=64 bytes/µs.
func BenchmarkFig6Torus88B64(b *testing.B)  { benchUtilization(b, "torus88-b64") }
func BenchmarkFig6Torus444B64(b *testing.B) { benchUtilization(b, "torus444-b64") }

// Figure 7: DVB on the binary 6-cube — wormhole OI spikes vs scheduled
// routing, at both bandwidths.
func BenchmarkFig7SixCubeB64(b *testing.B)  { benchPerf(b, "6cube-b64") }
func BenchmarkFig7SixCubeB128(b *testing.B) { benchPerf(b, "6cube-b128") }

// Figure 8: DVB on GHC(4,4,4).
func BenchmarkFig8GHC444B64(b *testing.B)  { benchPerf(b, "ghc444-b64") }
func BenchmarkFig8GHC444B128(b *testing.B) { benchPerf(b, "ghc444-b128") }

// Figure 9: DVB on the 8x8 torus at B=128 bytes/µs (the panel with the
// paper's message-interval allocation failures).
func BenchmarkFig9Torus88B128(b *testing.B) { benchPerf(b, "torus88-b128") }

// Figure 10: DVB on the 4x4x4 torus at B=128 bytes/µs.
func BenchmarkFig10Torus444B128(b *testing.B) { benchPerf(b, "torus444-b128") }

// BenchmarkOIClaim exercises the Section 3 two-message construction:
// the shared-channel FCFS interaction that alternates output intervals.
func BenchmarkOIClaim(b *testing.B) {
	gb := tfg.NewBuilder("claim")
	t1s := gb.AddTask("T1s", 100)
	t1d := gb.AddTask("T1d", 100)
	t2s := gb.AddTask("T2s", 100)
	t2d := gb.AddTask("T2d", 100)
	gb.AddMessage("M1", t1s, t1d, 512)
	gb.AddMessage("link", t1d, t2s, 128)
	gb.AddMessage("M2", t2s, t2d, 512)
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 10, 64)
	if err != nil {
		b.Fatal(err)
	}
	as := &alloc.Assignment{NodeOf: []topology.NodeID{0, 3, 1, 4}}
	oi := false
	for i := 0; i < b.N; i++ {
		res, err := wormhole.Simulate(wormhole.Config{
			Graph: g, Timing: tm, Topology: top, Assignment: as,
			TauIn: 32, Invocations: 30, Warmup: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		oi = metrics.OutputInconsistent(32, metrics.Intervals(res.OutputCompletions), 1e-6)
	}
	if !oi {
		b.Fatal("claim construction lost its inconsistency")
	}
}

// dvbSixCubeProblem is the shared fixture for the ablation benches.
func dvbSixCubeProblem(b *testing.B, tauIn float64) schedule.Problem {
	b.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		b.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		b.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		b.Fatal(err)
	}
	return schedule.Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn}
}

// Ablation: full AssignPaths vs frozen LSD-to-MSD paths. Reports the
// peak utilization each achieves at a moderate load.
func BenchmarkAblationAssignPaths(b *testing.B) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := schedule.Compute(p, schedule.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Peak
	}
	b.ReportMetric(peak, "peakU")
}

func BenchmarkAblationLSDOnly(b *testing.B) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := schedule.Compute(p, schedule.Options{Seed: 1, LSDOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Peak
	}
	b.ReportMetric(peak, "peakU")
}

// Ablation: exact (LP over maximal link-feasible sets) vs greedy
// interval scheduling.
func BenchmarkAblationEngineExact(b *testing.B) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Compute(p, schedule.Options{Seed: 1, Engine: schedule.EngineExact}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngineGreedy(b *testing.B) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Compute(p, schedule.Options{Seed: 1, Engine: schedule.EngineGreedy}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: path-diversity cap — how many equivalent shortest paths
// AssignPaths may consider per message.
func BenchmarkAblationMaxPaths4(b *testing.B)  { benchMaxPaths(b, 4) }
func BenchmarkAblationMaxPaths24(b *testing.B) { benchMaxPaths(b, 24) }

func benchMaxPaths(b *testing.B, maxPaths int) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := schedule.Compute(p, schedule.Options{Seed: 1, MaxPaths: maxPaths})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Peak
	}
	b.ReportMetric(peak, "peakU")
}

// Ablation: the paper's "stricter model" — each physical channel
// multiplexed between two virtual channels, halving per-message
// bandwidth. Reports OI load points with and without it.
func BenchmarkAblationStrictVC(b *testing.B)   { benchVCModel(b, true) }
func BenchmarkAblationStandardVC(b *testing.B) { benchVCModel(b, false) }

func benchVCModel(b *testing.B, strict bool) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		b.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128)
	if err != nil {
		b.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		b.Fatal(err)
	}
	var oi int
	for i := 0; i < b.N; i++ {
		oi = 0
		for k := 0; k < 12; k++ {
			tauIn := tm.TauC() * (1 + 4*float64(k)/11)
			res, err := wormhole.Simulate(wormhole.Config{
				Graph: g, Timing: tm, Topology: top, Assignment: as,
				TauIn: tauIn, Invocations: 16, Warmup: 8, StrictVC: strict,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Deadlocked || metrics.OutputInconsistent(tauIn, metrics.Intervals(res.OutputCompletions), 1e-6) {
				oi++
			}
		}
	}
	b.ReportMetric(float64(oi), "OI-pts")
}

// Ablation: window length. The paper gives every message a window of
// τc; the alternative of no-slack windows (= transmission time) lowers
// latency but destroys schedulability. Reports feasible grid points.
func BenchmarkAblationWindowTauC(b *testing.B)    { benchWindow(b, 0) } // 0 = default τc
func BenchmarkAblationWindowNoSlack(b *testing.B) { benchWindow(b, 25) }

func benchWindow(b *testing.B, window float64) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		b.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128) // τm = 25: window 25 means zero slack
	if err != nil {
		b.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		b.Fatal(err)
	}
	var feasible int
	var latency float64
	for i := 0; i < b.N; i++ {
		feasible = 0
		for k := 0; k < 12; k++ {
			tauIn := tm.TauC() * (1 + 4*float64(k)/11)
			res, err := schedule.Compute(schedule.Problem{
				Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn,
			}, schedule.Options{Seed: 1, Window: window})
			if err != nil {
				b.Fatal(err)
			}
			if res.Feasible {
				feasible++
				latency = res.Latency
			}
		}
	}
	b.ReportMetric(float64(feasible), "feasible-pts")
	b.ReportMetric(latency, "latency-µs")
}

// Ablation: adaptive cut-through path selection vs deterministic
// LSD-to-MSD under wormhole routing — the paper's Section 3 argues OI
// persists either way. Reports OI load points.
func BenchmarkAblationAdaptiveWR(b *testing.B)      { benchRoutingPolicy(b, true) }
func BenchmarkAblationDeterministicWR(b *testing.B) { benchRoutingPolicy(b, false) }

func benchRoutingPolicy(b *testing.B, adaptive bool) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		b.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		b.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		b.Fatal(err)
	}
	var oi int
	for i := 0; i < b.N; i++ {
		oi = 0
		for k := 0; k < 12; k++ {
			tauIn := tm.TauC() * (1 + 4*float64(k)/11)
			res, err := wormhole.Simulate(wormhole.Config{
				Graph: g, Timing: tm, Topology: top, Assignment: as,
				TauIn: tauIn, Invocations: 16, Warmup: 8, Adaptive: adaptive,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Deadlocked || metrics.OutputInconsistent(tauIn, metrics.Intervals(res.OutputCompletions), 1e-6) {
				oi++
			}
		}
	}
	if oi == 0 {
		b.Fatal("expected OI under wormhole routing (paper Section 3)")
	}
	b.ReportMetric(float64(oi), "OI-pts")
}

// BenchmarkCPSimPacketReplay measures the packet-level Ω verification.
func BenchmarkCPSimPacketReplay(b *testing.B) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	res, err := schedule.Compute(p, schedule.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Feasible {
		b.Fatal("fixture infeasible")
	}
	for i := 0; i < b.N; i++ {
		out, err := cpsim.Run(cpsim.Config{
			Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
			PacketBytes: 64, Bandwidth: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Violations) != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

// Ablation: allocator quality — the peak utilization AssignPaths
// reaches from round-robin vs simulated-annealing placements at the
// paper's feasibility-threshold load.
func BenchmarkAblationAllocRoundRobin(b *testing.B) { benchAllocator(b, "rr") }
func BenchmarkAblationAllocAnneal(b *testing.B)     { benchAllocator(b, "anneal") }

func benchAllocator(b *testing.B, which string) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		b.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		b.Fatal(err)
	}
	var as *alloc.Assignment
	switch which {
	case "rr":
		as, err = alloc.RoundRobin(g, top)
	case "anneal":
		as, err = alloc.Anneal(g, top, alloc.AnnealOptions{Seed: 1, Steps: 6000})
	}
	if err != nil {
		b.Fatal(err)
	}
	p := schedule.Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 50} // maximum load, where placement quality shows
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := schedule.Compute(p, schedule.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Peak
	}
	b.ReportMetric(peak, "peakU")
}

// Parallel sweep engine: the same figure panels with the worker pool at
// GOMAXPROCS versus forced-serial (Procs: 1). Results are identical by
// construction (see TestUtilizationSweepParallelMatchesSerial); only
// wall-clock differs. Compare with
//
//	go test -bench 'Sweep(Serial|Parallel)' -benchtime 3x
//
// on a multi-core box to measure the speedup recorded in
// docs/results-latest.txt.
func benchUtilizationProcs(b *testing.B, key string, procs int) {
	cfg := benchConfig(b, key)
	cfg.Procs = procs
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UtilizationSweep(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPerfProcs(b *testing.B, key string, procs int) {
	cfg := benchConfig(b, key)
	cfg.Procs = procs
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PerfSweep(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialSweepFig5SixCubeB64(b *testing.B)   { benchUtilizationProcs(b, "6cube-b64", 1) }
func BenchmarkParallelSweepFig5SixCubeB64(b *testing.B) { benchUtilizationProcs(b, "6cube-b64", 0) }
func BenchmarkSerialSweepFig7SixCubeB64(b *testing.B)   { benchPerfProcs(b, "6cube-b64", 1) }
func BenchmarkParallelSweepFig7SixCubeB64(b *testing.B) { benchPerfProcs(b, "6cube-b64", 0) }
func BenchmarkSerialSweepFig9Torus88B128(b *testing.B)  { benchPerfProcs(b, "torus88-b128", 1) }
func BenchmarkParallelSweepFig9Torus88B128(b *testing.B) {
	benchPerfProcs(b, "torus88-b128", 0)
}

// BenchmarkParallelBestAllocation measures the coupled placement search
// (rr + greedy + 6 random placements) on the worker pool.
func benchBestAllocation(b *testing.B, procs int) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	cands, err := schedule.DefaultCandidates(context.Background(), p, 2, 3, 4, 5, 6, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := schedule.ComputeBestAllocation(context.Background(), p, schedule.Options{Seed: 1, Procs: procs}, cands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialBestAllocation(b *testing.B)   { benchBestAllocation(b, 1) }
func BenchmarkParallelBestAllocation(b *testing.B) { benchBestAllocation(b, 0) }

// Component benchmarks.

func BenchmarkWormholeSimSixCube(b *testing.B) {
	p := dvbSixCubeProblem(b, 75)
	for i := 0; i < b.N; i++ {
		if _, err := wormhole.Simulate(wormhole.Config{
			Graph: p.Graph, Timing: p.Timing, Topology: p.Topology, Assignment: p.Assignment,
			TauIn: p.TauIn, Invocations: 20, Warmup: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleComputeSixCube(b *testing.B) {
	p := dvbSixCubeProblem(b, 50*(1+4.0*5/11))
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Compute(p, schedule.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// layeredLargeProblem is the shared large-scale fixture: the ~960-task
// layered DAG from cliutil.LayeredLargeTFG placed round-robin on the
// given topology at τin=200µs. Loading through cliutil.LoadGraph keeps
// the benchmark on the same spec-resolution path the CLIs use.
func layeredLargeProblem(b *testing.B, topoSpec string, bw float64) schedule.Problem {
	b.Helper()
	g, err := cliutil.LoadGraph(cliutil.LayeredLargeTFG)
	if err != nil {
		b.Fatal(err)
	}
	top, err := cliutil.ParseTopology(topoSpec)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, bw)
	if err != nil {
		b.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		b.Fatal(err)
	}
	return schedule.Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 200}
}

// benchScheduleLarge runs the full pipeline on a large-scale problem
// and fails unless the solve is feasible (a valid Ω with finite peak).
func benchScheduleLarge(b *testing.B, topoSpec string, bw float64) {
	p := layeredLargeProblem(b, topoSpec, bw)
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := schedule.Compute(p, schedule.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Omega == nil {
			b.Fatal("no Ω emitted")
		}
		peak = res.Peak
	}
	b.ReportMetric(peak, "peakU")
}

// BenchmarkScheduleTenCube solves the large layered workload on a
// 10-cube (1024 nodes) at 512 B/µs — the first of the two scale
// targets the sparse-LP/arena work opens up.
func BenchmarkScheduleTenCube(b *testing.B) {
	benchScheduleLarge(b, cliutil.TenCubeTopo, cliutil.TenCubeBW)
}

// BenchmarkScheduleTorus32 solves the same workload on a 32x32 torus
// at 2048 B/µs.
func BenchmarkScheduleTorus32(b *testing.B) {
	benchScheduleLarge(b, cliutil.Torus32Topo, cliutil.Torus32BW)
}

// BenchmarkColdVsWarmStartTenCube is the warm-start acceptance
// benchmark: the first solve on the 10-cube scale target, cold versus
// snapshot-hydrated. Cold pays the full structure derivation — path
// candidates, LSD baseline, validation — before scheduling; Warm
// decodes a pre-baked solver snapshot and must reach the same result
// with zero structure builds. The gap is what a restarting srschedd
// replica saves per structure when it hydrates from -warmstart-dir or
// a peer.
func BenchmarkColdVsWarmStartTenCube(b *testing.B) {
	p := layeredLargeProblem(b, cliutil.TenCubeTopo, cliutil.TenCubeBW)
	opts := schedule.Options{Seed: 1}
	const key = "bench|tencube"

	pre := schedule.NewSolver(p)
	if _, err := pre.Solve(context.Background(), p.TauIn, opts); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := schedule.EncodeSolverSnapshot(&buf, pre, key); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()

	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := schedule.NewSolver(p)
			if _, err := s.Solve(context.Background(), p.TauIn, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := schedule.DecodeSolverSnapshot(bytes.NewReader(snap), p, key)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(context.Background(), p.TauIn, opts); err != nil {
				b.Fatal(err)
			}
			if st := s.CacheStats(); st.BaselineBuilds != 0 || st.CandidateBuilds != 0 {
				b.Fatalf("warm solve re-derived structure: %+v", st)
			}
		}
	})
}

// BenchmarkScheduleBatch64 is the batch acceptance benchmark: 64
// same-structure items submitted as one /v1/schedule:batch request
// versus 64 sequential /v1/schedule calls against the same server.
// The batch groups the items by structure key, so identical items
// collapse to a single solve and a single JSON encode, while the
// sequential client pays a full round trip, decode, and solve per
// item; distinct-τin items additionally spread across the worker pool
// on multi-core hosts. One item is posted up front so both sub-runs
// measure a warm structure cache.
func BenchmarkScheduleBatch64(b *testing.B) {
	srv := service.New(service.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	item := api.ScheduleRequest{Problem: api.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64, TauIn: 150}}
	one, err := json.Marshal(item)
	if err != nil {
		b.Fatal(err)
	}
	batch := api.BatchScheduleRequest{Items: make([]api.ScheduleRequest, 64)}
	for i := range batch.Items {
		batch.Items[i] = item
	}
	many, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	post := func(b *testing.B, path string, body []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	post(b, "/v1/schedule", one)

	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < 64; j++ {
				post(b, "/v1/schedule", one)
			}
		}
	})
	b.Run("Batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(b, "/v1/schedule:batch", many)
		}
	})
}

// BenchmarkTenantAdmitSixCube is the multi-tenant admission acceptance
// benchmark: each iteration builds a fresh 6-cube fabric, admits a
// bystander tenant round-robin at the grid's lightest load, then a
// second tenant running the same DVB application placed half a machine
// away (identical placements can never co-schedule — a tenant's direct
// links are reserved at full share, and the N/2 shift is a hypercube
// automorphism). Both admissions must succeed: the second solves
// against the residual shares the first reserved, which is the whole
// cost the ladder adds over a solo Compute.
func BenchmarkTenantAdmitSixCube(b *testing.B) {
	vic := dvbSixCubeProblem(b, 150)
	bys := vic
	bys.TauIn = vic.Timing.TauC() * 5
	n := vic.Topology.Nodes()
	shifted := &alloc.Assignment{NodeOf: make([]topology.NodeID, len(vic.Assignment.NodeOf))}
	for t, nd := range vic.Assignment.NodeOf {
		shifted.NodeOf[t] = topology.NodeID((int(nd) + n/2) % n)
	}
	vic.Assignment = shifted
	opts := schedule.Options{Seed: 1}
	var tauOut float64
	for i := 0; i < b.N; i++ {
		set := schedule.NewTenantSet(vic.Topology)
		rep, err := set.Admit(context.Background(), schedule.Tenant{
			ID: "bystander", Priority: 1, Problem: bys, Options: opts,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Admitted {
			b.Fatalf("bystander rejected on an empty fabric: %s", rep.Reason)
		}
		rep, err = set.Admit(context.Background(), schedule.Tenant{
			ID: "victim", Priority: 1, Problem: vic, Options: opts,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Admitted {
			b.Fatalf("second tenant rejected: %s", rep.Reason)
		}
		tauOut = rep.TauOut
	}
	b.ReportMetric(tauOut/vic.TauIn, "tauout/tauin")
}

func BenchmarkShortestPathEnumeration(b *testing.B) {
	top, err := topology.NewHypercube(6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if got := top.ShortestPaths(0, 63, 24); len(got) != 24 {
			b.Fatalf("got %d paths", len(got))
		}
	}
}

// BenchmarkExploreSixCube is the Pareto-exploration acceptance
// benchmark: each iteration searches the τin × latency × resources
// front for the 6-cube DVB problem with one annealed candidate
// placement — per placement a minimal-τin bisection plus a small
// period ladder with window minimization, the whole cost of answering
// the capacity-planning question instead of one solve.
func BenchmarkExploreSixCube(b *testing.B) {
	prob := dvbSixCubeProblem(b, 0)
	spec := schedule.ExploreSpec{GridPoints: 2, AnnealSeeds: []int64{2}, AnnealSteps: 2000}
	opts := schedule.Options{Seed: 1}
	var front int
	for i := 0; i < b.N; i++ {
		pf, err := schedule.Explore(context.Background(), prob, opts, spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(pf.Points) == 0 {
			b.Fatal("empty Pareto front")
		}
		front = len(pf.Points)
	}
	b.ReportMetric(float64(front), "front-pts")
}
