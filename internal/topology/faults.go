package topology

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// faultSeq hands every FaultSet a process-unique identity so memoized
// fault-aware path enumerations can be keyed without hashing set
// contents (a content hash could collide silently and hand a caller
// paths routed around the wrong faults).
var faultSeq atomic.Uint64

// FaultSet records the failed links and nodes of a degraded machine.
// Like LinkSet it is bitset-backed, so membership tests on the routing
// hot paths stay one shift-and-mask. The zero value is not usable; call
// NewFaultSet. A nil *FaultSet everywhere means "no faults".
//
// FaultSet is not safe for concurrent mutation, but a set that is no
// longer being mutated may be shared by any number of concurrent
// readers (the survivability sweep does exactly that).
type FaultSet struct {
	id    uint64
	epoch uint64
	links LinkSet
	nodes LinkSet // reused bitset machinery over NodeID values
}

// NewFaultSet returns an empty fault set for topologies up to the given
// size; both hints may be zero (the bitsets grow on demand).
func NewFaultSet(nlinks, nnodes int) *FaultSet {
	return &FaultSet{
		id:    faultSeq.Add(1),
		links: NewLinkSet(nlinks),
		nodes: NewLinkSet(nnodes),
	}
}

// faultKey identifies the exact fault population of a set at one point
// in time; it keys the fault-aware path cache.
type faultKey struct {
	id    uint64
	epoch uint64
}

// key returns the cache epoch key; the zero key stands for "no faults".
func (f *FaultSet) key() faultKey {
	if f == nil {
		return faultKey{}
	}
	return faultKey{id: f.id, epoch: f.epoch}
}

// Epoch returns a counter that changes on every mutation; callers
// caching derived data (path enumerations, repair plans) invalidate on
// epoch change.
func (f *FaultSet) Epoch() uint64 {
	if f == nil {
		return 0
	}
	return f.epoch
}

// FailLink marks l failed.
func (f *FaultSet) FailLink(l LinkID) {
	f.epoch++
	f.links.Add(l)
}

// FailNode marks n failed; every link incident on n is implicitly
// unusable (a dead CP can switch nothing), which LinkUsable reflects.
func (f *FaultSet) FailNode(n NodeID) {
	f.epoch++
	f.nodes.Add(LinkID(n))
}

// RepairLink returns l to service.
func (f *FaultSet) RepairLink(l LinkID) {
	f.epoch++
	f.links.Remove(l)
}

// RepairNode returns n to service.
func (f *FaultSet) RepairNode(n NodeID) {
	f.epoch++
	f.nodes.Remove(LinkID(n))
}

// LinkFailed reports whether l itself is marked failed (node-induced
// unusability is LinkUsable's job).
func (f *FaultSet) LinkFailed(l LinkID) bool {
	return f != nil && f.links.Has(l)
}

// NodeFailed reports whether n is failed.
func (f *FaultSet) NodeFailed(n NodeID) bool {
	return f != nil && f.nodes.Has(LinkID(n))
}

// LinkUsable reports whether l can carry traffic on t: the link is not
// failed and neither endpoint CP is dead.
func (f *FaultSet) LinkUsable(t *Topology, l LinkID) bool {
	if f == nil {
		return true
	}
	if f.links.Has(l) {
		return false
	}
	lk := t.Link(l)
	return !f.nodes.Has(LinkID(lk.A)) && !f.nodes.Has(LinkID(lk.B))
}

// Empty reports whether no element is failed.
func (f *FaultSet) Empty() bool {
	return f == nil || (f.links.Count() == 0 && f.nodes.Count() == 0)
}

// NumFailedLinks returns the count of explicitly failed links.
func (f *FaultSet) NumFailedLinks() int {
	if f == nil {
		return 0
	}
	return f.links.Count()
}

// NumFailedNodes returns the count of failed nodes.
func (f *FaultSet) NumFailedNodes() int {
	if f == nil {
		return 0
	}
	return f.nodes.Count()
}

// FailedLinks returns the explicitly failed links in ascending order.
func (f *FaultSet) FailedLinks() []LinkID {
	if f == nil {
		return nil
	}
	return f.links.Links()
}

// FailedNodes returns the failed nodes in ascending order.
func (f *FaultSet) FailedNodes() []NodeID {
	if f == nil {
		return nil
	}
	ls := f.nodes.Links()
	out := make([]NodeID, len(ls))
	for i, l := range ls {
		out[i] = NodeID(l)
	}
	return out
}

// Clone returns an independent copy with a fresh cache identity.
func (f *FaultSet) Clone() *FaultSet {
	if f == nil {
		return nil
	}
	cp := NewFaultSet(0, 0)
	cp.links.AddLinks(f.links.Links())
	for _, n := range f.nodes.Links() {
		cp.nodes.Add(n)
	}
	return cp
}

// String renders the fault population, e.g. "faults{links:3,17 nodes:5}".
func (f *FaultSet) String() string {
	if f.Empty() {
		return "faults{}"
	}
	var parts []string
	if ls := f.FailedLinks(); len(ls) > 0 {
		ss := make([]string, len(ls))
		for i, l := range ls {
			ss[i] = fmt.Sprintf("%d", l)
		}
		parts = append(parts, "links:"+strings.Join(ss, ","))
	}
	if ns := f.FailedNodes(); len(ns) > 0 {
		ss := make([]string, len(ns))
		for i, n := range ns {
			ss[i] = fmt.Sprintf("%d", n)
		}
		parts = append(parts, "nodes:"+strings.Join(ss, ","))
	}
	return "faults{" + strings.Join(parts, " ") + "}"
}

// Blocks returns a description of the first failed element the path
// crosses, walking source to destination, and whether one exists. Node
// faults are reported before the link that reaches them.
func (f *FaultSet) Blocks(t *Topology, p Path) (string, bool) {
	if f == nil {
		return "", false
	}
	for i, n := range p.Nodes {
		if f.NodeFailed(n) {
			return fmt.Sprintf("node %d failed", n), true
		}
		if i > 0 {
			if l, ok := t.LinkBetween(p.Nodes[i-1], n); ok && f.links.Has(l) {
				return fmt.Sprintf("link %d (%d-%d) failed", l, p.Nodes[i-1], n), true
			}
		}
	}
	return "", false
}

// NoRouteError reports that no usable path joins a node pair on the
// degraded topology.
type NoRouteError struct {
	Src, Dst NodeID
	Faults   string
}

func (e *NoRouteError) Error() string {
	return fmt.Sprintf("topology: no surviving route %d -> %d under %s", e.Src, e.Dst, e.Faults)
}

// survivingKey identifies one memoized SurvivingPaths enumeration.
type survivingKey struct {
	src, dst NodeID
	max      int
	fault    faultKey
}

// SurvivingPaths enumerates up to max shortest paths from src to dst on
// the residual topology (failed links and nodes removed), in
// lexicographic node order. Because distances are recomputed on the
// residual graph, the enumeration naturally produces non-minimal
// detours when no fault-free minimal path survives: every returned path
// has the minimal number of hops that the degraded machine still
// admits. max <= 0 means no bound.
//
// Results are memoized per (src, dst, max, fault epoch) and shared —
// treat the returned paths as immutable. A *NoRouteError is returned
// when src or dst is dead or the residual graph disconnects them.
func (t *Topology) SurvivingPaths(src, dst NodeID, max int, fs *FaultSet) ([]Path, error) {
	if fs.Empty() {
		return t.ShortestPaths(src, dst, max), nil
	}
	key := survivingKey{src, dst, max, fs.key()}
	if cached, ok := t.faultCache.Load(key); ok {
		if cached == nil {
			return nil, &NoRouteError{Src: src, Dst: dst, Faults: fs.String()}
		}
		return cached.([]Path), nil
	}
	out, err := t.survivingPaths(src, dst, max, fs)
	if err != nil {
		t.faultCache.Store(key, nil)
		return nil, err
	}
	t.faultCache.Store(key, out)
	return out, nil
}

func (t *Topology) survivingPaths(src, dst NodeID, max int, fs *FaultSet) ([]Path, error) {
	if fs.NodeFailed(src) || fs.NodeFailed(dst) {
		return nil, &NoRouteError{Src: src, Dst: dst, Faults: fs.String()}
	}
	if src == dst {
		return []Path{{Nodes: []NodeID{src}}}, nil
	}
	// Reverse BFS from dst over the residual graph: dist[u] is the
	// surviving hop count from u to dst, the DAG the enumeration walks.
	dist := make([]int, t.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.adj[u] {
			if dist[v] >= 0 || fs.NodeFailed(v) {
				continue
			}
			l, _ := t.LinkBetween(u, v)
			if !fs.LinkUsable(t, l) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	if dist[src] < 0 {
		return nil, &NoRouteError{Src: src, Dst: dst, Faults: fs.String()}
	}
	var out []Path
	prefix := []NodeID{src}
	var rec func(u NodeID)
	rec = func(u NodeID) {
		if max > 0 && len(out) >= max {
			return
		}
		if u == dst {
			out = append(out, Path{Nodes: append([]NodeID(nil), prefix...)})
			return
		}
		for _, v := range t.adj[u] {
			if dist[v] != dist[u]-1 {
				continue
			}
			l, _ := t.LinkBetween(u, v)
			if !fs.LinkUsable(t, l) {
				continue
			}
			prefix = append(prefix, v)
			rec(v)
			prefix = prefix[:len(prefix)-1]
			if max > 0 && len(out) >= max {
				return
			}
		}
	}
	rec(src)
	return out, nil
}

// RouteAround is the deterministic fault-aware route: the LSD-to-MSD
// path when it survives, otherwise the lexicographically first
// surviving shortest path of the residual topology (possibly a
// non-minimal detour relative to the fault-free machine).
func (t *Topology) RouteAround(src, dst NodeID, fs *FaultSet) (Path, error) {
	p := t.LSDToMSD(src, dst)
	if _, blocked := fs.Blocks(t, p); !blocked {
		return p, nil
	}
	paths, err := t.SurvivingPaths(src, dst, 1, fs)
	if err != nil {
		return Path{}, err
	}
	return paths[0], nil
}

// SurvivingDistance returns the residual hop count from src to dst, or
// a *NoRouteError when the degraded machine disconnects them.
func (t *Topology) SurvivingDistance(src, dst NodeID, fs *FaultSet) (int, error) {
	if fs.Empty() {
		return t.Distance(src, dst), nil
	}
	paths, err := t.SurvivingPaths(src, dst, 1, fs)
	if err != nil {
		return 0, err
	}
	return paths[0].Hops(), nil
}

// ParseLinkSpec resolves a "u-v" node-pair spec to the joining link,
// for CLI fault injection flags like -fail-link 0-1.
func (t *Topology) ParseLinkSpec(spec string) (LinkID, error) {
	us, vs, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, fmt.Errorf("topology: link spec %q: want u-v", spec)
	}
	var u, v int
	if _, err := fmt.Sscanf(strings.TrimSpace(us), "%d", &u); err != nil {
		return 0, fmt.Errorf("topology: link spec %q: %w", spec, err)
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(vs), "%d", &v); err != nil {
		return 0, fmt.Errorf("topology: link spec %q: %w", spec, err)
	}
	if u < 0 || u >= t.Nodes() || v < 0 || v >= t.Nodes() {
		return 0, fmt.Errorf("topology: link spec %q: node out of range [0,%d)", spec, t.Nodes())
	}
	l, ok := t.LinkBetween(NodeID(u), NodeID(v))
	if !ok {
		return 0, fmt.Errorf("topology: link spec %q: nodes %d and %d are not adjacent", spec, u, v)
	}
	return l, nil
}

