package topology

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestLinkSetAddHas(t *testing.T) {
	var s LinkSet
	if s.Has(0) || s.Count() != 0 {
		t.Fatal("zero value must be empty")
	}
	s.Add(3)
	s.Add(3)
	s.Add(70)
	if !s.Has(3) || !s.Has(70) {
		t.Error("added links missing")
	}
	if s.Has(4) || s.Has(71) || s.Has(1000) {
		t.Error("absent links reported present")
	}
	if s.Count() != 2 {
		t.Errorf("count %d, want 2", s.Count())
	}
	s.Add(-1)
	if s.Count() != 2 || s.Has(-1) {
		t.Error("negative IDs must be ignored")
	}
}

func TestLinkSetWordBoundaries(t *testing.T) {
	// IDs at and around the 64-bit word edges are where shift/index
	// arithmetic goes wrong.
	edges := []LinkID{0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192}
	var s LinkSet
	for _, l := range edges {
		s.Add(l)
	}
	for _, l := range edges {
		if !s.Has(l) {
			t.Errorf("link %d lost at word edge", l)
		}
	}
	for _, l := range []LinkID{2, 61, 66, 125, 130, 193, 1 << 20} {
		if s.Has(l) {
			t.Errorf("link %d wrongly present", l)
		}
	}
	if got := s.Count(); got != len(edges) {
		t.Errorf("count %d, want %d", got, len(edges))
	}
	if got := s.Links(); !reflect.DeepEqual(got, edges) {
		t.Errorf("Links() = %v, want %v", got, edges)
	}
}

func TestLinkSetIntersects(t *testing.T) {
	mk := func(ls ...LinkID) LinkSet {
		var s LinkSet
		s.AddLinks(ls)
		return s
	}
	cases := []struct {
		a, b LinkSet
		want bool
	}{
		{mk(), mk(), false},
		{mk(1), mk(), false},
		{mk(1), mk(1), true},
		{mk(0, 63), mk(63), true},
		{mk(0, 63), mk(64), false},
		{mk(64), mk(64, 200), true},
		{mk(5), mk(69), false}, // same bit position, different words
		{mk(200), mk(3), false},
	}
	for i, c := range cases {
		if got := c.a.Intersects(&c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(&c.a); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestLinkSetClearKeepsCapacity(t *testing.T) {
	s := NewLinkSet(130)
	if len(s.words) != 3 {
		t.Fatalf("pre-sizing gave %d words, want 3", len(s.words))
	}
	s.Add(129)
	s.Clear()
	if s.Count() != 0 || s.Has(129) {
		t.Error("Clear left members behind")
	}
	if len(s.words) != 3 {
		t.Error("Clear dropped capacity")
	}
}

func TestLinkSetMatchesMapReference(t *testing.T) {
	// Property check against the old map-based representation on random
	// link sets spanning several words.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		ref := map[LinkID]bool{}
		var s LinkSet
		for i := 0; i < rng.Intn(40); i++ {
			l := LinkID(rng.Intn(200))
			ref[l] = true
			s.Add(l)
		}
		if s.Count() != len(ref) {
			t.Fatalf("trial %d: count %d, want %d", trial, s.Count(), len(ref))
		}
		for l := LinkID(0); l < 220; l++ {
			if s.Has(l) != ref[l] {
				t.Fatalf("trial %d: Has(%d) = %v, map says %v", trial, l, s.Has(l), ref[l])
			}
		}
	}
}
