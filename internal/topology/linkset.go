package topology

import "math/bits"

// wordBits is the width of one LinkSet word.
const wordBits = 64

// LinkSet is a bitset over dense LinkIDs, the hot-path replacement for
// map[LinkID]bool throughout the scheduler: link IDs are small dense
// integers (0..Links()-1), so a handful of words covers every network
// the paper evaluates, membership is one shift-and-mask, and set
// intersection — the interval scheduler's conflict test — is a word-wise
// AND instead of a map probe per element.
//
// The zero value is an empty set; Add grows the backing words on
// demand, so callers that do not know the link count up front can still
// use it.
type LinkSet struct {
	words []uint64
}

// NewLinkSet returns an empty set pre-sized for links 0..nlinks-1.
func NewLinkSet(nlinks int) LinkSet {
	if nlinks <= 0 {
		return LinkSet{}
	}
	return LinkSet{words: make([]uint64, (nlinks+wordBits-1)/wordBits)}
}

// Add inserts l, growing the set as needed. Negative IDs are ignored.
func (s *LinkSet) Add(l LinkID) {
	if l < 0 {
		return
	}
	w := int(l) / wordBits
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	s.words[w] |= 1 << (uint(l) % wordBits)
}

// AddLinks inserts every link of ls.
func (s *LinkSet) AddLinks(ls []LinkID) {
	for _, l := range ls {
		s.Add(l)
	}
}

// Remove deletes l from the set; absent or negative IDs are a no-op.
func (s *LinkSet) Remove(l LinkID) {
	if l < 0 {
		return
	}
	w := int(l) / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(l) % wordBits)
	}
}

// Has reports whether l is in the set.
func (s *LinkSet) Has(l LinkID) bool {
	if l < 0 {
		return false
	}
	w := int(l) / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(l)%wordBits)) != 0
}

// Intersects reports whether the sets share any link — the conflict
// test of Definition 5.5 (two messages are link-feasible together iff
// their link sets are disjoint).
func (s *LinkSet) Intersects(o *LinkSet) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of links in the set.
func (s *LinkSet) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clear empties the set, keeping its capacity for reuse.
func (s *LinkSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Links returns the members in ascending LinkID order.
func (s *LinkSet) Links() []LinkID {
	out := make([]LinkID, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, LinkID(wi*wordBits+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}
