package topology

import (
	"reflect"
	"sync"
	"testing"
)

func TestShortestPathsMemoized(t *testing.T) {
	top, err := NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	first := top.ShortestPaths(0, 63, 24)
	second := top.ShortestPaths(0, 63, 24)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized result differs")
	}
	// Different caps are distinct cache entries.
	capped := top.ShortestPaths(0, 63, 4)
	if len(capped) != 4 || len(first) != 24 {
		t.Fatalf("caps leaked across cache entries: %d and %d", len(capped), len(first))
	}
}

func TestShortestPathsConcurrent(t *testing.T) {
	top, err := NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := top.shortestPaths(0, 27, 24)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := top.ShortestPaths(0, 27, 24)
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent enumeration diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
