package topology

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestFaultSetBasics(t *testing.T) {
	fs := NewFaultSet(10, 8)
	if !fs.Empty() {
		t.Fatal("new set should be empty")
	}
	fs.FailLink(3)
	fs.FailNode(5)
	if fs.Empty() || !fs.LinkFailed(3) || !fs.NodeFailed(5) {
		t.Fatal("failures not recorded")
	}
	if fs.LinkFailed(4) || fs.NodeFailed(4) {
		t.Fatal("phantom failures")
	}
	if fs.NumFailedLinks() != 1 || fs.NumFailedNodes() != 1 {
		t.Fatalf("counts %d/%d", fs.NumFailedLinks(), fs.NumFailedNodes())
	}
	if got := fs.String(); got != "faults{links:3 nodes:5}" {
		t.Errorf("String = %q", got)
	}
	e := fs.Epoch()
	fs.RepairLink(3)
	fs.RepairNode(5)
	if !fs.Empty() {
		t.Fatal("repair did not empty the set")
	}
	if fs.Epoch() == e {
		t.Error("repair must advance the epoch")
	}
	// Nil receiver means "no faults" everywhere.
	var nilFS *FaultSet
	if !nilFS.Empty() || nilFS.LinkFailed(0) || nilFS.NodeFailed(0) {
		t.Error("nil fault set must be empty")
	}
}

func TestFaultSetLinkUsable(t *testing.T) {
	top, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := top.LinkBetween(0, 1)
	if !ok {
		t.Fatal("0-1 must be adjacent")
	}
	fs := NewFaultSet(top.Links(), top.Nodes())
	if !fs.LinkUsable(top, l) {
		t.Fatal("healthy link unusable")
	}
	fs.FailNode(1)
	if fs.LinkUsable(top, l) {
		t.Error("link incident on a dead node must be unusable")
	}
	if fs.LinkFailed(l) {
		t.Error("node fault must not mark the link itself failed")
	}
}

func TestSurvivingPathsRoutesAroundLinkFault(t *testing.T) {
	top, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 1 is a single-hop LSD route; fail that link and the
	// survivors must be 3-hop detours (hypercube parity) that avoid it.
	l, _ := top.LinkBetween(0, 1)
	fs := NewFaultSet(top.Links(), top.Nodes())
	fs.FailLink(l)
	paths, err := top.SurvivingPaths(0, 1, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no surviving paths in a 3-cube with one dead link")
	}
	for _, p := range paths {
		if p.Hops() != 3 {
			t.Errorf("path %s: want a 3-hop detour", p)
		}
		if err := p.ValidateFault(top, fs); err != nil {
			t.Errorf("path %s crosses the fault: %v", p, err)
		}
	}
	// Determinism: a second enumeration (now cached) is identical.
	again, err := top.SurvivingPaths(0, 1, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(paths) {
		t.Fatalf("cached enumeration size changed: %d vs %d", len(again), len(paths))
	}
	for i := range again {
		if !again[i].Equal(paths[i]) {
			t.Errorf("cached path %d differs: %s vs %s", i, again[i], paths[i])
		}
	}
}

func TestSurvivingPathsCacheInvalidatesOnEpoch(t *testing.T) {
	top, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSet(top.Links(), top.Nodes())
	l01, _ := top.LinkBetween(0, 1)
	fs.FailLink(l01)
	withFault, err := top.SurvivingPaths(0, 1, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	fs.RepairLink(l01)
	repaired, err := top.SurvivingPaths(0, 1, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) == len(withFault) && repaired[0].Hops() == withFault[0].Hops() {
		t.Errorf("repair must change the enumeration: %d 2-hop detours vs direct link", len(withFault))
	}
	if repaired[0].Hops() != 1 {
		t.Errorf("after repair the direct link should return: got %s", repaired[0])
	}
}

func TestSurvivingPathsNodeFault(t *testing.T) {
	top, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSet(top.Links(), top.Nodes())
	fs.FailNode(1)
	// 0 -> 2 along dimension 0 normally passes node 1; survivors must
	// detour around it.
	paths, err := top.SurvivingPaths(0, 2, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		for _, n := range p.Nodes {
			if n == 1 {
				t.Errorf("path %s visits the dead node", p)
			}
		}
	}
	// Dead endpoints are unroutable.
	if _, err := top.SurvivingPaths(1, 2, 0, fs); err == nil {
		t.Error("dead source must be unroutable")
	} else {
		var nre *NoRouteError
		if !errors.As(err, &nre) {
			t.Errorf("want *NoRouteError, got %T", err)
		}
	}
}

func TestSurvivingPathsNonMinimalDetour(t *testing.T) {
	// On a 4x1... use a 4-ring (torus:4): 0 -> 1 direct, or 3 hops the
	// long way. Failing 0-1 leaves only the non-minimal detour.
	top, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := top.LinkBetween(0, 1)
	if !ok {
		t.Fatal("0-1 must be adjacent")
	}
	fs := NewFaultSet(top.Links(), top.Nodes())
	fs.FailLink(l)
	d, err := top.SurvivingDistance(0, 1, fs)
	if err != nil {
		t.Fatal(err)
	}
	if d <= top.Distance(0, 1) {
		t.Errorf("surviving distance %d must exceed fault-free distance %d", d, top.Distance(0, 1))
	}
	p, err := top.RouteAround(0, 1, fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateFault(top, fs); err != nil {
		t.Errorf("RouteAround crosses the fault: %v", err)
	}
}

func TestRouteAroundPrefersLSD(t *testing.T) {
	top, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSet(top.Links(), top.Nodes())
	// Fail a link unrelated to the 0 -> 3 LSD route (0->1->3).
	l, _ := top.LinkBetween(4, 5)
	fs.FailLink(l)
	p, err := top.RouteAround(0, 3, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(top.LSDToMSD(0, 3)) {
		t.Errorf("unaffected LSD route must be kept: got %s", p)
	}
}

func TestValidateFaultNamesFailedElement(t *testing.T) {
	top, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	p := top.LSDToMSD(0, 3) // 0 -> 1 -> 3
	links, err := p.Links(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("LSD route 0->3 should have 2 hops, got %d", len(links))
	}

	fs := NewFaultSet(top.Links(), top.Nodes())
	fs.FailLink(links[1])
	err = p.ValidateFault(top, fs)
	if err == nil {
		t.Fatal("path across failed link must not validate")
	}
	if want := fmt.Sprintf("link %d", links[1]); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name %q", err, want)
	}

	fs2 := NewFaultSet(top.Links(), top.Nodes())
	fs2.FailNode(1)
	err = p.ValidateFault(top, fs2)
	if err == nil {
		t.Fatal("path across failed node must not validate")
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("error must name the failed node: %v", err)
	}

	// Path.Links is fault-oblivious (it resolves adjacency only): the
	// links still resolve, and validation is what rejects them.
	if _, err := p.Links(top); err != nil {
		t.Errorf("Links must still resolve on a degraded topology: %v", err)
	}
	// And a clean path still validates under the fault set.
	q := Path{Nodes: []NodeID{4, 5}}
	if err := q.ValidateFault(top, fs2); err != nil {
		t.Errorf("fault-free path rejected: %v", err)
	}
}

func TestParseLinkSpec(t *testing.T) {
	top, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := top.ParseLinkSpec("0-1")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := top.LinkBetween(0, 1)
	if l != want {
		t.Errorf("got link %d want %d", l, want)
	}
	for _, bad := range []string{"", "0", "0-9", "0-3", "x-1", "0-x", "-1-2"} {
		if _, err := top.ParseLinkSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}
