package topology

import (
	"testing"
	"testing/quick"
)

func mustGHC(t *testing.T, radices ...int) *Topology {
	t.Helper()
	top, err := NewGHC(radices...)
	if err != nil {
		t.Fatalf("NewGHC(%v): %v", radices, err)
	}
	return top
}

func mustTorus(t *testing.T, radices ...int) *Topology {
	t.Helper()
	top, err := NewTorus(radices...)
	if err != nil {
		t.Fatalf("NewTorus(%v): %v", radices, err)
	}
	return top
}

func TestBinary6CubeCounts(t *testing.T) {
	top, err := NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := top.Nodes(); got != 64 {
		t.Errorf("nodes = %d, want 64", got)
	}
	// d-cube has d*2^(d-1) links.
	if got := top.Links(); got != 6*32 {
		t.Errorf("links = %d, want 192", got)
	}
	for u := 0; u < top.Nodes(); u++ {
		if top.Degree(NodeID(u)) != 6 {
			t.Fatalf("node %d degree = %d, want 6", u, top.Degree(NodeID(u)))
		}
	}
	if err := top.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGHC444Counts(t *testing.T) {
	top := mustGHC(t, 4, 4, 4)
	if got := top.Nodes(); got != 64 {
		t.Errorf("nodes = %d, want 64", got)
	}
	// Per dimension each node has radix-1 = 3 neighbors; degree 9.
	for u := 0; u < top.Nodes(); u++ {
		if top.Degree(NodeID(u)) != 9 {
			t.Fatalf("node %d degree = %d, want 9", u, top.Degree(NodeID(u)))
		}
	}
	// links = nodes*degree/2.
	if got := top.Links(); got != 64*9/2 {
		t.Errorf("links = %d, want %d", got, 64*9/2)
	}
	if err := top.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTorus88Counts(t *testing.T) {
	top := mustTorus(t, 8, 8)
	if top.Nodes() != 64 {
		t.Fatalf("nodes = %d, want 64", top.Nodes())
	}
	for u := 0; u < top.Nodes(); u++ {
		if top.Degree(NodeID(u)) != 4 {
			t.Fatalf("node %d degree = %d, want 4", u, top.Degree(NodeID(u)))
		}
	}
	if top.Links() != 128 {
		t.Errorf("links = %d, want 128", top.Links())
	}
}

func TestTorus444Counts(t *testing.T) {
	top := mustTorus(t, 4, 4, 4)
	if top.Nodes() != 64 {
		t.Fatalf("nodes = %d, want 64", top.Nodes())
	}
	for u := 0; u < top.Nodes(); u++ {
		if top.Degree(NodeID(u)) != 6 {
			t.Fatalf("node %d degree = %d, want 6", u, top.Degree(NodeID(u)))
		}
	}
	if top.Links() != 192 {
		t.Errorf("links = %d, want 192", top.Links())
	}
}

func TestRadix2TorusCollapsesDoubleEdge(t *testing.T) {
	top := mustTorus(t, 2, 2)
	// 2x2 torus is a 4-cycle... but with radix 2 the +1 and -1 neighbors
	// coincide, so it is actually a 2-cube: 4 nodes, 4 links, degree 2.
	if top.Nodes() != 4 || top.Links() != 4 {
		t.Errorf("2x2 torus: nodes=%d links=%d, want 4 and 4", top.Nodes(), top.Links())
	}
	for u := 0; u < 4; u++ {
		if top.Degree(NodeID(u)) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, top.Degree(NodeID(u)))
		}
	}
}

func TestMeshCounts(t *testing.T) {
	top, err := NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if top.Nodes() != 9 {
		t.Fatalf("nodes = %d", top.Nodes())
	}
	// 3x3 mesh has 12 links.
	if top.Links() != 12 {
		t.Errorf("links = %d, want 12", top.Links())
	}
	// Corner degree 2, edge 3, center 4.
	if top.Degree(top.FromDigits([]int{0, 0})) != 2 {
		t.Errorf("corner degree != 2")
	}
	if top.Degree(top.FromDigits([]int{1, 1})) != 4 {
		t.Errorf("center degree != 4")
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	top := mustGHC(t, 3, 4, 5)
	for u := 0; u < top.Nodes(); u++ {
		d := top.Digits(NodeID(u))
		if got := top.FromDigits(d); got != NodeID(u) {
			t.Fatalf("round trip %d -> %v -> %d", u, d, got)
		}
	}
}

func TestInvalidConstructions(t *testing.T) {
	if _, err := NewGHC(); err == nil {
		t.Error("NewGHC() should fail")
	}
	if _, err := NewGHC(1, 4); err == nil {
		t.Error("NewGHC(1,4) should fail")
	}
	if _, err := NewTorus(0); err == nil {
		t.Error("NewTorus(0) should fail")
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("NewHypercube(0) should fail")
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		top  *Topology
		want int
	}{
		{mustGHC(t, 2, 2, 2, 2, 2, 2), 6},
		{mustGHC(t, 4, 4, 4), 3},
		{mustTorus(t, 8, 8), 8},
		{mustTorus(t, 4, 4, 4), 6},
	}
	for _, c := range cases {
		if got := c.top.Diameter(); got != c.want {
			t.Errorf("%v diameter = %d, want %d", c.top, got, c.want)
		}
	}
}

func TestDistanceMatchesBFS(t *testing.T) {
	tops := []*Topology{
		mustGHC(t, 4, 4),
		mustTorus(t, 5, 3),
	}
	if m, err := NewMesh(4, 3); err == nil {
		tops = append(tops, m)
	}
	for _, top := range tops {
		for src := 0; src < top.Nodes(); src++ {
			dist := bfsDistances(top, NodeID(src))
			for v := 0; v < top.Nodes(); v++ {
				if got := top.Distance(NodeID(src), NodeID(v)); got != dist[v] {
					t.Fatalf("%v: Distance(%d,%d) = %d, BFS says %d", top, src, v, got, dist[v])
				}
			}
		}
	}
}

func bfsDistances(t *Topology, src NodeID) []int {
	dist := make([]int, t.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestLSDToMSDIsShortest(t *testing.T) {
	tops := []*Topology{
		mustGHC(t, 4, 4, 4),
		mustTorus(t, 8, 8),
		mustTorus(t, 4, 4, 4),
	}
	for _, top := range tops {
		for src := 0; src < top.Nodes(); src += 7 {
			for dst := 0; dst < top.Nodes(); dst += 5 {
				p := top.LSDToMSD(NodeID(src), NodeID(dst))
				if err := p.Validate(top); err != nil {
					t.Fatalf("%v LSDToMSD(%d,%d): %v", top, src, dst, err)
				}
				if p.Hops() != top.Distance(NodeID(src), NodeID(dst)) {
					t.Fatalf("%v LSDToMSD(%d,%d) hops=%d want %d", top, src, dst, p.Hops(), top.Distance(NodeID(src), NodeID(dst)))
				}
				if p.Source() != NodeID(src) || p.Dest() != NodeID(dst) {
					t.Fatalf("endpoint mismatch")
				}
			}
		}
	}
}

func TestLSDToMSDDeterministic(t *testing.T) {
	top := mustTorus(t, 8, 8)
	a := top.LSDToMSD(3, 60)
	b := top.LSDToMSD(3, 60)
	if !a.Equal(b) {
		t.Errorf("LSDToMSD not deterministic: %v vs %v", a, b)
	}
}

func TestShortestPathsEnumeration(t *testing.T) {
	top := mustGHC(t, 2, 2, 2)
	// In a 3-cube, nodes 0 and 7 differ in 3 digits: 3! = 6 shortest paths.
	paths := top.ShortestPaths(0, 7, 0)
	if len(paths) != 6 {
		t.Fatalf("got %d paths, want 6", len(paths))
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if err := p.Validate(top); err != nil {
			t.Fatalf("invalid path %v: %v", p, err)
		}
		if p.Hops() != 3 {
			t.Fatalf("path %v hops=%d, want 3", p, p.Hops())
		}
		if seen[p.String()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.String()] = true
	}
	if got := top.CountShortestPaths(0, 7); got != 6 {
		t.Errorf("CountShortestPaths = %d, want 6", got)
	}
}

func TestShortestPathsMaxCap(t *testing.T) {
	top := mustGHC(t, 4, 4, 4)
	paths := top.ShortestPaths(0, top.FromDigits([]int{3, 3, 3}), 4)
	if len(paths) != 4 {
		t.Errorf("cap ignored: got %d paths", len(paths))
	}
}

func TestShortestPathsTorusCount(t *testing.T) {
	top := mustTorus(t, 8, 8)
	// From (0,0) to (2,1): 3 hops, C(3,1)=3 interleavings.
	src := top.FromDigits([]int{0, 0})
	dst := top.FromDigits([]int{2, 1})
	paths := top.ShortestPaths(src, dst, 0)
	if len(paths) != 3 {
		t.Errorf("got %d paths, want 3", len(paths))
	}
	if got := top.CountShortestPaths(src, dst); got != 3 {
		t.Errorf("CountShortestPaths = %d, want 3", got)
	}
}

func TestShortestPathsSameNode(t *testing.T) {
	top := mustGHC(t, 2, 2)
	paths := top.ShortestPaths(1, 1, 0)
	if len(paths) != 1 || paths[0].Hops() != 0 {
		t.Errorf("self path wrong: %v", paths)
	}
}

func TestPathLinksResolve(t *testing.T) {
	top := mustTorus(t, 4, 4)
	p := top.LSDToMSD(0, top.FromDigits([]int{2, 2}))
	links, err := p.Links(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != p.Hops() {
		t.Errorf("links=%d hops=%d", len(links), p.Hops())
	}
	bad := Path{Nodes: []NodeID{0, 5}}
	if _, err := bad.Links(top); err == nil {
		t.Error("expected error for non-adjacent step")
	}
}

func TestPathValidateRejectsCycle(t *testing.T) {
	top := mustTorus(t, 4, 4)
	p := Path{Nodes: []NodeID{0, 1, 0}}
	if err := p.Validate(top); err == nil {
		t.Error("expected cycle rejection")
	}
}

// Property: for random node pairs on a GHC(4,4), every enumerated
// shortest path has the exact shortest distance and valid adjacency.
func TestQuickShortestPathsProperty(t *testing.T) {
	top := mustGHC(t, 4, 4)
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % top.Nodes())
		dst := NodeID(int(b) % top.Nodes())
		want := top.Distance(src, dst)
		paths := top.ShortestPaths(src, dst, 16)
		if len(paths) == 0 {
			return false
		}
		for _, p := range paths {
			if p.Hops() != want || p.Validate(top) != nil {
				return false
			}
			if p.Source() != src || p.Dest() != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Distance is symmetric and satisfies the triangle inequality
// through any neighbor.
func TestQuickDistanceProperty(t *testing.T) {
	top := mustTorus(t, 5, 4)
	f := func(a, b uint8) bool {
		u := NodeID(int(a) % top.Nodes())
		v := NodeID(int(b) % top.Nodes())
		if top.Distance(u, v) != top.Distance(v, u) {
			return false
		}
		for _, w := range top.Neighbors(u) {
			if top.Distance(w, v) < top.Distance(u, v)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringRepresentations(t *testing.T) {
	top := mustGHC(t, 4, 4, 4)
	if got := top.String(); got != "ghc(4,4,4)" {
		t.Errorf("String = %q", got)
	}
	tor := mustTorus(t, 8, 8)
	if got := tor.String(); got != "torus(8,8)" {
		t.Errorf("String = %q", got)
	}
	p := Path{Nodes: []NodeID{0, 1, 3}}
	if got := p.String(); got != "0->1->3" {
		t.Errorf("Path.String = %q", got)
	}
}
