// Package topology models the interconnection networks evaluated in the
// paper: generalized hypercubes (GHCs), k-ary n-cube tori, meshes, and
// binary hypercubes. Nodes carry mixed-radix addresses; links are
// bidirectional and half-duplex, matching the paper's hardware model.
//
// The package also provides the two path selectors the paper compares:
// the deterministic LSD-to-MSD (dimension-order) route used by wormhole
// routing, and enumeration of all equivalent shortest paths, which
// scheduled routing's AssignPaths heuristic draws from.
package topology

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID identifies a node; valid IDs are 0..Nodes()-1 and correspond to
// the mixed-radix encoding of the node's address, least-significant digit
// first.
type NodeID int

// LinkID identifies an undirected, half-duplex link; valid IDs are
// 0..Links()-1.
type LinkID int

// Kind names the topology family.
type Kind int

const (
	// KindGHC is a generalized hypercube: along every dimension the
	// nodes sharing the remaining digits form a complete graph.
	KindGHC Kind = iota
	// KindTorus is a k-ary n-cube: along every dimension the nodes
	// sharing the remaining digits form a ring.
	KindTorus
	// KindMesh is a torus without the wraparound edges.
	KindMesh
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindGHC:
		return "ghc"
	case KindTorus:
		return "torus"
	case KindMesh:
		return "mesh"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Link is an undirected half-duplex channel between two adjacent nodes.
// A < B always holds.
type Link struct {
	ID LinkID
	A  NodeID
	B  NodeID
}

// Topology is an immutable interconnection network. All methods are
// safe for concurrent use.
type Topology struct {
	kind    Kind
	radices []int
	nodes   int
	adj     [][]NodeID
	links   []Link
	linkOf  map[[2]NodeID]LinkID

	// pathCache memoizes ShortestPaths enumerations per (src, dst, max)
	// so repeated sweeps over one topology stop re-walking the
	// shortest-path DAG. Cached slices are shared: callers must not
	// mutate returned paths.
	pathCache sync.Map // pathKey -> []Path

	// faultCache memoizes SurvivingPaths enumerations keyed by fault
	// epoch (see FaultSet.key); a nil value caches unreachability.
	faultCache sync.Map // survivingKey -> []Path or nil
}

// pathKey identifies one memoized ShortestPaths enumeration.
type pathKey struct {
	src, dst NodeID
	max      int
}

// NewGHC builds a generalized hypercube GHC(m_1, ..., m_r) with
// m_1*...*m_r nodes. Every radix must be at least 2. A binary hypercube
// of dimension d is NewGHC with d radices of 2.
func NewGHC(radices ...int) (*Topology, error) {
	return build(KindGHC, radices)
}

// NewTorus builds a k-ary n-cube torus with the given per-dimension
// radices (each at least 2). Radix-2 dimensions collapse the ring's
// double edge into a single link.
func NewTorus(radices ...int) (*Topology, error) {
	return build(KindTorus, radices)
}

// NewMesh builds a mesh (torus without wraparound) with the given
// per-dimension radices.
func NewMesh(radices ...int) (*Topology, error) {
	return build(KindMesh, radices)
}

// NewHypercube builds a binary d-cube.
func NewHypercube(d int) (*Topology, error) {
	if d < 1 {
		return nil, fmt.Errorf("topology: hypercube dimension %d < 1", d)
	}
	r := make([]int, d)
	for i := range r {
		r[i] = 2
	}
	return build(KindGHC, r)
}

func build(kind Kind, radices []int) (*Topology, error) {
	if len(radices) == 0 {
		return nil, fmt.Errorf("topology: no radices given")
	}
	n := 1
	for i, m := range radices {
		if m < 2 {
			return nil, fmt.Errorf("topology: radix %d of dimension %d is below 2", m, i)
		}
		if n > 1<<20/m {
			return nil, fmt.Errorf("topology: too many nodes")
		}
		n *= m
	}
	t := &Topology{
		kind:    kind,
		radices: append([]int(nil), radices...),
		nodes:   n,
		adj:     make([][]NodeID, n),
		linkOf:  make(map[[2]NodeID]LinkID),
	}
	for u := 0; u < n; u++ {
		du := t.Digits(NodeID(u))
		for dim, m := range radices {
			switch kind {
			case KindGHC:
				// Complete graph per dimension.
				for v := 0; v < m; v++ {
					if v == du[dim] {
						continue
					}
					t.addEdge(NodeID(u), t.withDigit(du, dim, v))
				}
			case KindTorus:
				t.addEdge(NodeID(u), t.withDigit(du, dim, (du[dim]+1)%m))
				t.addEdge(NodeID(u), t.withDigit(du, dim, (du[dim]+m-1)%m))
			case KindMesh:
				if du[dim]+1 < m {
					t.addEdge(NodeID(u), t.withDigit(du, dim, du[dim]+1))
				}
				if du[dim]-1 >= 0 {
					t.addEdge(NodeID(u), t.withDigit(du, dim, du[dim]-1))
				}
			}
		}
	}
	for u := range t.adj {
		sort.Slice(t.adj[u], func(i, j int) bool { return t.adj[u][i] < t.adj[u][j] })
	}
	return t, nil
}

func (t *Topology) addEdge(u, v NodeID) {
	if u == v {
		return
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	key := [2]NodeID{a, b}
	if _, ok := t.linkOf[key]; ok {
		return
	}
	id := LinkID(len(t.links))
	t.linkOf[key] = id
	t.links = append(t.links, Link{ID: id, A: a, B: b})
	t.adj[u] = append(t.adj[u], v)
	t.adj[v] = append(t.adj[v], u)
}

// Kind returns the topology family.
func (t *Topology) Kind() Kind { return t.kind }

// Radices returns a copy of the per-dimension radices.
func (t *Topology) Radices() []int { return append([]int(nil), t.radices...) }

// Dimensions returns the number of dimensions.
func (t *Topology) Dimensions() int { return len(t.radices) }

// Nodes returns the node count.
func (t *Topology) Nodes() int { return t.nodes }

// Links returns the link count.
func (t *Topology) Links() int { return len(t.links) }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Neighbors returns the nodes adjacent to u (shared slice; do not mutate).
func (t *Topology) Neighbors(u NodeID) []NodeID { return t.adj[u] }

// Degree returns the number of links incident on u.
func (t *Topology) Degree(u NodeID) int { return len(t.adj[u]) }

// LinkBetween returns the link joining u and v, or false when they are
// not adjacent.
func (t *Topology) LinkBetween(u, v NodeID) (LinkID, bool) {
	if u > v {
		u, v = v, u
	}
	id, ok := t.linkOf[[2]NodeID{u, v}]
	return id, ok
}

// Digits decodes a node ID into its mixed-radix address, least
// significant digit first.
func (t *Topology) Digits(u NodeID) []int {
	d := make([]int, len(t.radices))
	x := int(u)
	for i, m := range t.radices {
		d[i] = x % m
		x /= m
	}
	return d
}

// FromDigits encodes a mixed-radix address (LSD first) into a node ID.
func (t *Topology) FromDigits(d []int) NodeID {
	id, mul := 0, 1
	for i, m := range t.radices {
		id += d[i] * mul
		mul *= m
	}
	return NodeID(id)
}

func (t *Topology) withDigit(d []int, dim, v int) NodeID {
	old := d[dim]
	d[dim] = v
	id := t.FromDigits(d)
	d[dim] = old
	return id
}

// Distance returns the hop count of a shortest path from u to v.
func (t *Topology) Distance(u, v NodeID) int {
	du, dv := t.Digits(u), t.Digits(v)
	dist := 0
	for i := range du {
		dist += t.dimDistance(i, du[i], dv[i])
	}
	return dist
}

// dimDistance is the per-dimension hop count between digit values a and b.
func (t *Topology) dimDistance(dim, a, b int) int {
	if a == b {
		return 0
	}
	m := t.radices[dim]
	switch t.kind {
	case KindGHC:
		return 1
	case KindTorus:
		d := a - b
		if d < 0 {
			d = -d
		}
		if m-d < d {
			return m - d
		}
		return d
	default: // mesh
		d := a - b
		if d < 0 {
			d = -d
		}
		return d
	}
}

// Diameter returns the maximum shortest-path distance over all node
// pairs, computed from the address structure in O(dims * max radix).
func (t *Topology) Diameter() int {
	diam := 0
	for dim, m := range t.radices {
		worst := 0
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if d := t.dimDistance(dim, a, b); d > worst {
					worst = d
				}
			}
		}
		diam += worst
	}
	return diam
}

// String describes the topology, e.g. "ghc(4,4,4)" or "torus(8,8)".
func (t *Topology) String() string {
	parts := make([]string, len(t.radices))
	for i, m := range t.radices {
		parts[i] = fmt.Sprintf("%d", m)
	}
	return fmt.Sprintf("%s(%s)", t.kind, strings.Join(parts, ","))
}

// Validate checks internal consistency; it is used by tests and by
// loaders of externally supplied topologies.
func (t *Topology) Validate() error {
	if t.nodes != len(t.adj) {
		return fmt.Errorf("topology: adjacency size %d != nodes %d", len(t.adj), t.nodes)
	}
	for u, ns := range t.adj {
		seen := make(map[NodeID]bool, len(ns))
		for _, v := range ns {
			if v == NodeID(u) {
				return fmt.Errorf("topology: self-loop at node %d", u)
			}
			if seen[v] {
				return fmt.Errorf("topology: duplicate edge %d-%d", u, v)
			}
			seen[v] = true
			if _, ok := t.LinkBetween(NodeID(u), v); !ok {
				return fmt.Errorf("topology: edge %d-%d has no link record", u, v)
			}
		}
	}
	for _, l := range t.links {
		if l.A >= l.B {
			return fmt.Errorf("topology: link %d endpoints out of order", l.ID)
		}
	}
	return nil
}
