package topology

import (
	"fmt"
	"strings"
)

// Path is a node sequence from source to destination along adjacent
// nodes. A path visiting a single node (source == destination) carries
// no links.
type Path struct {
	Nodes []NodeID
}

// Source returns the first node of the path.
func (p Path) Source() NodeID { return p.Nodes[0] }

// Dest returns the last node of the path.
func (p Path) Dest() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Hops returns the number of links traversed.
func (p Path) Hops() int { return len(p.Nodes) - 1 }

// Links resolves the path's node sequence to link IDs on t.
func (p Path) Links(t *Topology) ([]LinkID, error) {
	out := make([]LinkID, 0, p.Hops())
	for i := 0; i+1 < len(p.Nodes); i++ {
		id, ok := t.LinkBetween(p.Nodes[i], p.Nodes[i+1])
		if !ok {
			return nil, fmt.Errorf("topology: path step %d: nodes %d and %d are not adjacent", i, p.Nodes[i], p.Nodes[i+1])
		}
		out = append(out, id)
	}
	return out, nil
}

// Equal reports whether both paths visit the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	return true
}

// String renders the path as "0->5->7".
func (p Path) String() string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, "->")
}

// Validate checks that the path's consecutive nodes are adjacent on t
// and that no node repeats.
func (p Path) Validate(t *Topology) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("topology: empty path")
	}
	seen := make(map[NodeID]bool, len(p.Nodes))
	for i, n := range p.Nodes {
		if n < 0 || int(n) >= t.Nodes() {
			return fmt.Errorf("topology: path node %d out of range", n)
		}
		if seen[n] {
			return fmt.Errorf("topology: path revisits node %d", n)
		}
		seen[n] = true
		if i > 0 {
			if _, ok := t.LinkBetween(p.Nodes[i-1], n); !ok {
				return fmt.Errorf("topology: path nodes %d and %d not adjacent", p.Nodes[i-1], n)
			}
		}
	}
	return nil
}

// ValidateFault checks the path against both the topology (Validate)
// and a fault set: a path crossing a failed link or node fails with an
// error naming the first failed element encountered walking source to
// destination. A nil fault set degenerates to Validate.
func (p Path) ValidateFault(t *Topology, fs *FaultSet) error {
	if err := p.Validate(t); err != nil {
		return err
	}
	if desc, blocked := fs.Blocks(t, p); blocked {
		return fmt.Errorf("topology: path %s crosses %s", p, desc)
	}
	return nil
}

// LSDToMSD returns the deterministic dimension-order path from src to
// dst: the source address is corrected one dimension at a time starting
// from the least significant digit, exactly the deadlock-free route the
// paper attributes to wormhole routing. In a GHC each correction is a
// single hop; in a torus or mesh the digit walks along the ring (shortest
// direction, positive on ties).
func (t *Topology) LSDToMSD(src, dst NodeID) Path {
	cur := t.Digits(src)
	dstd := t.Digits(dst)
	nodes := []NodeID{src}
	for dim := 0; dim < len(t.radices); dim++ {
		for cur[dim] != dstd[dim] {
			cur[dim] = t.dimStep(dim, cur[dim], dstd[dim])
			nodes = append(nodes, t.FromDigits(cur))
		}
	}
	return Path{Nodes: nodes}
}

// dimStep returns the next digit value moving from a toward b along
// dimension dim by one hop.
func (t *Topology) dimStep(dim, a, b int) int {
	m := t.radices[dim]
	switch t.kind {
	case KindGHC:
		return b
	case KindTorus:
		fwd := (b - a + m) % m
		bwd := (a - b + m) % m
		if fwd <= bwd {
			return (a + 1) % m
		}
		return (a - 1 + m) % m
	default: // mesh
		if b > a {
			return a + 1
		}
		return a - 1
	}
}

// ShortestPaths enumerates equivalent shortest paths from src to dst in
// lexicographic node order, stopping after max paths (max <= 0 means no
// bound). The enumeration walks the shortest-path DAG implied by the
// address structure, so every returned path has exactly Distance(src,
// dst) hops. Results are memoized per (src, dst, max) and shared across
// callers — treat the returned paths as immutable.
func (t *Topology) ShortestPaths(src, dst NodeID, max int) []Path {
	key := pathKey{src, dst, max}
	if cached, ok := t.pathCache.Load(key); ok {
		return cached.([]Path)
	}
	out := t.shortestPaths(src, dst, max)
	t.pathCache.Store(key, out)
	return out
}

func (t *Topology) shortestPaths(src, dst NodeID, max int) []Path {
	if src == dst {
		return []Path{{Nodes: []NodeID{src}}}
	}
	var out []Path
	prefix := []NodeID{src}
	var rec func(u NodeID)
	rec = func(u NodeID) {
		if max > 0 && len(out) >= max {
			return
		}
		if u == dst {
			out = append(out, Path{Nodes: append([]NodeID(nil), prefix...)})
			return
		}
		remain := t.Distance(u, dst)
		for _, v := range t.adj[u] {
			if t.Distance(v, dst) == remain-1 {
				prefix = append(prefix, v)
				rec(v)
				prefix = prefix[:len(prefix)-1]
				if max > 0 && len(out) >= max {
					return
				}
			}
		}
	}
	rec(src)
	return out
}

// CountShortestPaths returns the number of distinct shortest paths from
// src to dst without materializing them.
func (t *Topology) CountShortestPaths(src, dst NodeID) int {
	memo := make(map[NodeID]int)
	var count func(u NodeID) int
	count = func(u NodeID) int {
		if u == dst {
			return 1
		}
		if c, ok := memo[u]; ok {
			return c
		}
		remain := t.Distance(u, dst)
		total := 0
		for _, v := range t.adj[u] {
			if t.Distance(v, dst) == remain-1 {
				total += count(v)
			}
		}
		memo[u] = total
		return total
	}
	return count(src)
}
