package schedule

import (
	"schedroute/internal/lp"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// solveArena is the per-Solve scratch pool: every hot stage of the
// Fig. 3 pipeline (path assignment, subset discovery, interval
// allocation, interval scheduling, Ω emission) borrows its working
// storage from here instead of allocating. A warm Solver keeps arenas in
// a sync.Pool, so repeated Solve calls allocate only what escapes into
// the Result. The zero value is ready to use: every sub-scratch sizes
// itself lazily and is fully overwritten before being read, so arena
// reuse can never change a result.
type solveArena struct {
	lp    *lp.Problem
	alloc allocScratch
	sched schedScratch
	sub   subsetScratch
	load  *LoadState
	util  utilScratch
}

// loadState returns the arena's pooled LoadState rebuilt for the given
// assignment, reusing every backing array when the dimensions match the
// previous use.
func (a *solveArena) loadState(top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity, linkCap []float64) *LoadState {
	ls := a.load
	if ls == nil || ls.nl != top.Links() || ls.K != act.Intervals.K() || len(ls.ws) != len(ws) {
		a.load = NewLoadStateCap(top, pa, ws, act, linkCap)
		return a.load
	}
	ls.ws, ls.act, ls.linkCap = ws, act, linkCap
	for k := 0; k < ls.K; k++ {
		ls.lenK[k] = act.Intervals.Length(k)
	}
	for i := range ws {
		ls.noSlack[i] = ws[i].NoSlack()
	}
	ls.Reset(pa)
	return ls
}

// lpProblem returns the arena's pooled LP rewound to an empty system
// over nvars variables.
func (a *solveArena) lpProblem(nvars int) *lp.Problem {
	if a.lp == nil {
		a.lp = lp.NewProblem(nvars)
	} else {
		a.lp.Reset(nvars)
	}
	return a.lp
}

// allocScratch is the working storage of one allocateSubset call.
type allocScratch struct {
	// varOf maps flat cell mi*K+k to its LP variable. Entries are
	// written for every cell the current call reads before any read, so
	// no cross-call reset is needed.
	varOf   []int32
	cellMsg []int32
	cellK   []int32
	rowIdx  []int32
	rowVal  []float64

	// Per-link user lists for constraint (4), valid when linkEpoch
	// matches epoch (stale lists are truncated on first touch).
	linkFree   [][]tfg.MessageID
	linkPinned [][]tfg.MessageID
	linkEpoch  []int32
	epoch      int32

	// isFree flags the pinned variant's reallocatable messages; it is
	// re-initialized for every member of the current subset per call.
	isFree []bool
}

func (sc *allocScratch) ensure(nmsgs, K, maxLink int) {
	if len(sc.varOf) < nmsgs*K {
		sc.varOf = make([]int32, nmsgs*K)
	}
	if len(sc.isFree) < nmsgs {
		sc.isFree = make([]bool, nmsgs)
	}
	if len(sc.linkEpoch) < maxLink+1 {
		sc.linkFree = append(sc.linkFree, make([][]tfg.MessageID, maxLink+1-len(sc.linkFree))...)
		sc.linkPinned = append(sc.linkPinned, make([][]tfg.MessageID, maxLink+1-len(sc.linkPinned))...)
		sc.linkEpoch = append(sc.linkEpoch, make([]int32, maxLink+1-len(sc.linkEpoch))...)
	}
}

// touchLink rewinds link l's user lists on its first use this epoch.
func (sc *allocScratch) touchLink(l int) {
	if sc.linkEpoch[l] != sc.epoch {
		sc.linkEpoch[l] = sc.epoch
		sc.linkFree[l] = sc.linkFree[l][:0]
		sc.linkPinned[l] = sc.linkPinned[l][:0]
	}
}
