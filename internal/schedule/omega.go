package schedule

import (
	"fmt"
	"sort"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Port is a crossbar endpoint at a communication processor: one of the
// node's link channels, or the application-processor buffer.
type Port struct {
	// AP is true for the application-processor buffer port.
	AP bool
	// Link is the link channel when AP is false.
	Link topology.LinkID
}

// String renders the port.
func (p Port) String() string {
	if p.AP {
		return "AP"
	}
	return fmt.Sprintf("L%d", p.Link)
}

// Command is one entry of a node switching schedule ω_i: during
// [Start, End) of every frame, connect In to Out to carry Msg.
type Command struct {
	Start float64
	End   float64
	Msg   tfg.MessageID
	In    Port
	Out   Port
}

// NodeSchedule is ω_i: the commands one CP executes each frame,
// sorted by start time.
type NodeSchedule struct {
	Node     topology.NodeID
	Commands []Command
}

// Omega is the complete communication schedule Ω = {ω_i} plus the data
// needed to validate and execute it.
type Omega struct {
	TauIn   float64
	Nodes   []NodeSchedule
	Slices  []Slice
	Windows []Window
	// Latency is the windowed pipeline latency Λ_w: every invocation
	// completes exactly this long after it starts.
	Latency float64
	// Starts are the static task start times the windows were derived
	// from (invocation 0, absolute); nil means the default exclusive
	// PipelinedStart layout.
	Starts []float64
}

// BuildOmega turns interval-schedule slices into per-node switching
// schedules: for each slice and each message, the source CP connects its
// AP output buffer to the first link, intermediate CPs connect incoming
// to outgoing links, and the destination CP connects the last link to
// its AP input buffer.
func BuildOmega(slices []Slice, pa *PathAssignment, ws []Window, nodes int, tauIn, latency float64) *Omega {
	om := &Omega{
		TauIn:   tauIn,
		Nodes:   make([]NodeSchedule, nodes),
		Slices:  slices,
		Windows: ws,
		Latency: latency,
	}
	for n := range om.Nodes {
		om.Nodes[n].Node = topology.NodeID(n)
	}
	add := func(n topology.NodeID, c Command) {
		om.Nodes[n].Commands = append(om.Nodes[n].Commands, c)
	}
	for _, sl := range slices {
		for mi, msg := range sl.Msgs {
			end := sl.Until[mi]
			path := pa.Paths[msg]
			links := pa.Links[msg]
			if len(links) == 0 {
				continue
			}
			for h, node := range path.Nodes {
				var in, out Port
				switch {
				case h == 0:
					in = Port{AP: true}
					out = Port{Link: links[0]}
				case h == len(path.Nodes)-1:
					in = Port{Link: links[h-1]}
					out = Port{AP: true}
				default:
					in = Port{Link: links[h-1]}
					out = Port{Link: links[h]}
				}
				add(node, Command{Start: sl.Start, End: end, Msg: msg, In: in, Out: out})
			}
		}
	}
	for n := range om.Nodes {
		cs := om.Nodes[n].Commands
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].Start != cs[b].Start {
				return cs[a].Start < cs[b].Start
			}
			return cs[a].Msg < cs[b].Msg
		})
	}
	return om
}

// Validate checks the three safety properties scheduled routing promises:
// every link carries at most one message at a time (contention-free and
// half-duplex safe), every transmission happens inside its message's
// window, and every message receives exactly its transmission time each
// frame.
func (om *Omega) Validate(top *topology.Topology) error {
	type span struct {
		start, end float64
		msg        tfg.MessageID
	}
	perLink := make([][]span, top.Links())
	got := make([]float64, len(om.Windows))
	linksets := make([][]topology.LinkID, len(om.Windows))
	for i := range linksets {
		linksets[i] = nil
	}
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			for _, p := range []Port{c.In, c.Out} {
				if p.AP {
					continue
				}
				dup := false
				for _, l := range linksets[c.Msg] {
					if l == p.Link {
						dup = true
						break
					}
				}
				if !dup {
					linksets[c.Msg] = append(linksets[c.Msg], p.Link)
				}
			}
		}
	}
	for _, sl := range om.Slices {
		for mi, msg := range sl.Msgs {
			w := om.Windows[msg]
			start, end := sl.Start, sl.Until[mi]
			if end < start-timeEps {
				return fmt.Errorf("schedule: slice for message %d ends before it starts", msg)
			}
			if !w.Contains(start, om.TauIn) {
				return fmt.Errorf("schedule: message %d transmits at frame %g outside window", msg, start)
			}
			off := w.frameOffset(start, om.TauIn) + (end - start)
			if w.Length < om.TauIn-timeEps && off > w.Length+1e-6 {
				return fmt.Errorf("schedule: message %d transmission runs %g past its window", msg, off-w.Length)
			}
			got[msg] += end - start
			// Spans never wrap: slices live inside single intervals.
			for _, l := range linksets[msg] {
				perLink[l] = append(perLink[l], span{start, end, msg})
			}
		}
	}
	for i, w := range om.Windows {
		if w.Local {
			continue
		}
		if diff := got[i] - w.Xmit; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("schedule: message %d transmitted %g, needs %g", i, got[i], w.Xmit)
		}
	}
	for l, spans := range perLink {
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-1e-6 {
				return fmt.Errorf("schedule: link %d carries messages %d and %d simultaneously", l, spans[i-1].msg, spans[i].msg)
			}
		}
	}
	return nil
}

// linksets are derived from the node schedules so validation checks the
// emitted Ω, not the intermediate structures.
func (om *Omega) Linkset(msg tfg.MessageID) []topology.LinkID {
	var seen topology.LinkSet
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			if c.Msg != msg {
				continue
			}
			for _, p := range []Port{c.In, c.Out} {
				if !p.AP {
					seen.Add(p.Link)
				}
			}
		}
	}
	// LinkSet iterates in ascending ID order, preserving the sorted
	// contract of the old map-plus-sort implementation.
	return seen.Links()
}

// CommandsAt returns node n's switching schedule.
func (om *Omega) CommandsAt(n topology.NodeID) []Command {
	return om.Nodes[n].Commands
}

// NumCommands returns the total command count across all CPs, a proxy
// for the schedule's hardware footprint.
func (om *Omega) NumCommands() int {
	total := 0
	for _, ns := range om.Nodes {
		total += len(ns.Commands)
	}
	return total
}
