package schedule

import (
	"fmt"
	"slices"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Port is a crossbar endpoint at a communication processor: one of the
// node's link channels, or the application-processor buffer.
type Port struct {
	// AP is true for the application-processor buffer port.
	AP bool
	// Link is the link channel when AP is false.
	Link topology.LinkID
}

// String renders the port.
func (p Port) String() string {
	if p.AP {
		return "AP"
	}
	return fmt.Sprintf("L%d", p.Link)
}

// Command is one entry of a node switching schedule ω_i: during
// [Start, End) of every frame, connect In to Out to carry Msg.
type Command struct {
	Start float64
	End   float64
	Msg   tfg.MessageID
	In    Port
	Out   Port
}

// NodeSchedule is ω_i: the commands one CP executes each frame,
// sorted by start time.
type NodeSchedule struct {
	Node     topology.NodeID
	Commands []Command
}

// Omega is the complete communication schedule Ω = {ω_i} plus the data
// needed to validate and execute it.
type Omega struct {
	TauIn   float64
	Nodes   []NodeSchedule
	Slices  []Slice
	Windows []Window
	// Latency is the windowed pipeline latency Λ_w: every invocation
	// completes exactly this long after it starts.
	Latency float64
	// Starts are the static task start times the windows were derived
	// from (invocation 0, absolute); nil means the default exclusive
	// PipelinedStart layout.
	Starts []float64
}

// BuildOmega turns interval-schedule slices into per-node switching
// schedules: for each slice and each message, the source CP connects its
// AP output buffer to the first link, intermediate CPs connect incoming
// to outgoing links, and the destination CP connects the last link to
// its AP input buffer.
func BuildOmega(sls []Slice, pa *PathAssignment, ws []Window, nodes int, tauIn, latency float64) *Omega {
	om := &Omega{
		TauIn:   tauIn,
		Nodes:   make([]NodeSchedule, nodes),
		Slices:  sls,
		Windows: ws,
		Latency: latency,
	}
	// Count commands per node first so every node's command list is an
	// exact-size window of one shared backing array.
	counts := make([]int32, nodes)
	total := 0
	for _, sl := range sls {
		for _, msg := range sl.Msgs {
			if len(pa.Links[msg]) == 0 {
				continue
			}
			for _, node := range pa.Paths[msg].Nodes {
				counts[node]++
				total++
			}
		}
	}
	backing := make([]Command, total)
	off := 0
	for n := range om.Nodes {
		om.Nodes[n].Node = topology.NodeID(n)
		if counts[n] == 0 {
			continue // keep Commands nil, matching decode round-trips
		}
		end := off + int(counts[n])
		om.Nodes[n].Commands = backing[off:off:end]
		off = end
	}
	add := func(n topology.NodeID, c Command) {
		om.Nodes[n].Commands = append(om.Nodes[n].Commands, c)
	}
	for _, sl := range sls {
		for mi, msg := range sl.Msgs {
			end := sl.Until[mi]
			path := pa.Paths[msg]
			links := pa.Links[msg]
			if len(links) == 0 {
				continue
			}
			for h, node := range path.Nodes {
				var in, out Port
				switch {
				case h == 0:
					in = Port{AP: true}
					out = Port{Link: links[0]}
				case h == len(path.Nodes)-1:
					in = Port{Link: links[h-1]}
					out = Port{AP: true}
				default:
					in = Port{Link: links[h-1]}
					out = Port{Link: links[h]}
				}
				add(node, Command{Start: sl.Start, End: end, Msg: msg, In: in, Out: out})
			}
		}
	}
	for n := range om.Nodes {
		// No node sees the same (Start, Msg) twice — a path visits a node
		// once and distinct slices start at distinct times — so the key is
		// a total order and any correct sort yields the permutation the
		// old sort.Slice produced.
		slices.SortFunc(om.Nodes[n].Commands, cmpCommand)
	}
	return om
}

// cmpCommand orders commands by (Start, Msg) without the per-node
// interface and closure allocations of sort.Slice.
func cmpCommand(a, b Command) int {
	switch {
	case a.Start < b.Start:
		return -1
	case a.Start > b.Start:
		return 1
	case a.Msg < b.Msg:
		return -1
	case a.Msg > b.Msg:
		return 1
	}
	return 0
}

// Validate checks the three safety properties scheduled routing promises:
// every link carries at most one message at a time (contention-free and
// half-duplex safe), every transmission happens inside its message's
// window, and every message receives exactly its transmission time each
// frame.
func (om *Omega) Validate(top *topology.Topology) error {
	nw := len(om.Windows)
	got := make([]float64, nw)

	// Per-message linksets as a flat CSR: port counts bound each
	// message's window, filled with the same first-occurrence dedup as
	// the old per-message append lists.
	portCnt := make([]int32, nw)
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			if !c.In.AP {
				portCnt[c.Msg]++
			}
			if !c.Out.AP {
				portCnt[c.Msg]++
			}
		}
	}
	lsOff := make([]int32, nw+1)
	for i := 0; i < nw; i++ {
		lsOff[i+1] = lsOff[i] + portCnt[i]
	}
	lsFlat := make([]topology.LinkID, lsOff[nw])
	lsLen := make([]int32, nw)
	addLink := func(msg tfg.MessageID, l topology.LinkID) {
		w := lsFlat[lsOff[msg] : lsOff[msg]+lsLen[msg]]
		for _, x := range w {
			if x == l {
				return
			}
		}
		lsFlat[lsOff[msg]+lsLen[msg]] = l
		lsLen[msg]++
	}
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			if !c.In.AP {
				addLink(c.Msg, c.In.Link)
			}
			if !c.Out.AP {
				addLink(c.Msg, c.Out.Link)
			}
		}
	}
	linkset := func(msg tfg.MessageID) []topology.LinkID {
		return lsFlat[lsOff[msg] : lsOff[msg]+lsLen[msg]]
	}

	spanCnt := make([]int32, top.Links())
	for _, sl := range om.Slices {
		for mi, msg := range sl.Msgs {
			w := om.Windows[msg]
			start, end := sl.Start, sl.Until[mi]
			if end < start-timeEps {
				return fmt.Errorf("schedule: slice for message %d ends before it starts", msg)
			}
			if !w.Contains(start, om.TauIn) {
				return fmt.Errorf("schedule: message %d transmits at frame %g outside window", msg, start)
			}
			off := w.frameOffset(start, om.TauIn) + (end - start)
			if w.Length < om.TauIn-timeEps && off > w.Length+1e-6 {
				return fmt.Errorf("schedule: message %d transmission runs %g past its window", msg, off-w.Length)
			}
			got[msg] += end - start
			for _, l := range linkset(msg) {
				spanCnt[l]++
			}
		}
	}
	for i, w := range om.Windows {
		if w.Local {
			continue
		}
		if diff := got[i] - w.Xmit; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("schedule: message %d transmitted %g, needs %g", i, got[i], w.Xmit)
		}
	}

	// Per-link span lists as exact-size windows of one flat array;
	// spans never wrap (slices live inside single intervals).
	spanOff := make([]int32, top.Links()+1)
	for l := 0; l < top.Links(); l++ {
		spanOff[l+1] = spanOff[l] + spanCnt[l]
	}
	spans := make([]valSpan, spanOff[top.Links()])
	cursor := spanCnt
	for l := range cursor {
		cursor[l] = spanOff[l]
	}
	for _, sl := range om.Slices {
		for mi, msg := range sl.Msgs {
			for _, l := range linkset(msg) {
				spans[cursor[l]] = valSpan{sl.Start, sl.Until[mi], msg}
				cursor[l]++
			}
		}
	}
	for l := 0; l < top.Links(); l++ {
		ls := spans[spanOff[l]:spanOff[l+1]]
		slices.SortFunc(ls, func(a, b valSpan) int {
			switch {
			case a.start < b.start:
				return -1
			case a.start > b.start:
				return 1
			}
			return 0
		})
		for i := 1; i < len(ls); i++ {
			if ls[i].start < ls[i-1].end-1e-6 {
				return fmt.Errorf("schedule: link %d carries messages %d and %d simultaneously", l, ls[i-1].msg, ls[i].msg)
			}
		}
	}
	return nil
}

type valSpan struct {
	start, end float64
	msg        tfg.MessageID
}

// linksets are derived from the node schedules so validation checks the
// emitted Ω, not the intermediate structures.
func (om *Omega) Linkset(msg tfg.MessageID) []topology.LinkID {
	var seen topology.LinkSet
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			if c.Msg != msg {
				continue
			}
			for _, p := range []Port{c.In, c.Out} {
				if !p.AP {
					seen.Add(p.Link)
				}
			}
		}
	}
	// LinkSet iterates in ascending ID order, preserving the sorted
	// contract of the old map-plus-sort implementation.
	return seen.Links()
}

// CommandsAt returns node n's switching schedule.
func (om *Omega) CommandsAt(n topology.NodeID) []Command {
	return om.Nodes[n].Commands
}

// NumCommands returns the total command count across all CPs, a proxy
// for the schedule's hardware footprint.
func (om *Omega) NumCommands() int {
	total := 0
	for _, ns := range om.Nodes {
		total += len(ns.Commands)
	}
	return total
}
