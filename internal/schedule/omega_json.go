package schedule

import (
	"encoding/json"
	"fmt"
	"io"

	"schedroute/internal/errkind"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// The JSON encoding of Ω is the deployable artifact of scheduled
// routing: a real multicomputer would compile it on the host and ship
// each node's command list to that node's communication processor.

// OmegaSchemaVersion is the schema_version written by EncodeOmega.
// DecodeOmega accepts this version and 0 (artifacts saved before the
// field existed, whose layout is identical); anything else is rejected
// with an errkind.ErrUnknownVersion error so stale tools fail loudly
// instead of misreading a future layout.
const OmegaSchemaVersion = 1

type omegaJSON struct {
	SchemaVersion int               `json:"schema_version"`
	TauIn         float64           `json:"tau_in"`
	Latency       float64           `json:"latency"`
	Starts        []float64         `json:"starts,omitempty"`
	Windows       []windowJSON      `json:"windows"`
	Slices        []sliceJSON       `json:"slices"`
	Nodes         []nodeSchedule256 `json:"nodes"`
}

type windowJSON struct {
	Release    float64 `json:"release"`
	Length     float64 `json:"length"`
	AbsRelease float64 `json:"abs_release"`
	Xmit       float64 `json:"xmit"`
	Local      bool    `json:"local,omitempty"`
}

type sliceJSON struct {
	Interval int       `json:"interval"`
	Start    float64   `json:"start"`
	End      float64   `json:"end"`
	Msgs     []int     `json:"msgs"`
	Until    []float64 `json:"until"`
}

type nodeSchedule256 struct {
	Node     int           `json:"node"`
	Commands []commandJSON `json:"commands,omitempty"`
}

type commandJSON struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Msg   int     `json:"msg"`
	In    string  `json:"in"`
	Out   string  `json:"out"`
}

func portToJSON(p Port) string {
	if p.AP {
		return "AP"
	}
	return fmt.Sprintf("L%d", p.Link)
}

func portFromJSON(s string) (Port, error) {
	if s == "AP" {
		return Port{AP: true}, nil
	}
	var l int
	if _, err := fmt.Sscanf(s, "L%d", &l); err != nil {
		return Port{}, fmt.Errorf("schedule: bad port %q", s)
	}
	return Port{Link: topology.LinkID(l)}, nil
}

// EncodeOmega writes Ω as JSON.
func EncodeOmega(w io.Writer, om *Omega) error {
	oj := omegaJSON{SchemaVersion: OmegaSchemaVersion, TauIn: om.TauIn, Latency: om.Latency, Starts: om.Starts}
	for _, win := range om.Windows {
		oj.Windows = append(oj.Windows, windowJSON{
			Release: win.Release, Length: win.Length,
			AbsRelease: win.AbsRelease, Xmit: win.Xmit, Local: win.Local,
		})
	}
	for _, sl := range om.Slices {
		sj := sliceJSON{Interval: sl.Interval, Start: sl.Start, End: sl.End, Until: sl.Until}
		for _, m := range sl.Msgs {
			sj.Msgs = append(sj.Msgs, int(m))
		}
		oj.Slices = append(oj.Slices, sj)
	}
	for _, ns := range om.Nodes {
		nj := nodeSchedule256{Node: int(ns.Node)}
		for _, c := range ns.Commands {
			nj.Commands = append(nj.Commands, commandJSON{
				Start: c.Start, End: c.End, Msg: int(c.Msg),
				In: portToJSON(c.In), Out: portToJSON(c.Out),
			})
		}
		oj.Nodes = append(oj.Nodes, nj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(oj)
}

// DecodeOmega reads Ω back from JSON.
func DecodeOmega(r io.Reader) (*Omega, error) {
	var oj omegaJSON
	if err := json.NewDecoder(r).Decode(&oj); err != nil {
		return nil, fmt.Errorf("schedule: decode omega: %w", err)
	}
	if oj.SchemaVersion != 0 && oj.SchemaVersion != OmegaSchemaVersion {
		return nil, errkind.Mark(
			fmt.Errorf("schedule: decode omega: schema_version %d not supported (this build reads up to %d)",
				oj.SchemaVersion, OmegaSchemaVersion),
			errkind.ErrUnknownVersion)
	}
	if oj.TauIn <= 0 {
		return nil, fmt.Errorf("schedule: decode omega: non-positive period %g", oj.TauIn)
	}
	om := &Omega{TauIn: oj.TauIn, Latency: oj.Latency, Starts: oj.Starts}
	for _, wj := range oj.Windows {
		om.Windows = append(om.Windows, Window{
			Release: wj.Release, Length: wj.Length,
			AbsRelease: wj.AbsRelease, Xmit: wj.Xmit, Local: wj.Local,
		})
	}
	for _, sj := range oj.Slices {
		if len(sj.Msgs) != len(sj.Until) {
			return nil, fmt.Errorf("schedule: decode omega: slice msgs/until mismatch")
		}
		sl := Slice{Interval: sj.Interval, Start: sj.Start, End: sj.End, Until: sj.Until}
		for _, m := range sj.Msgs {
			if m < 0 || m >= len(om.Windows) {
				return nil, fmt.Errorf("schedule: decode omega: message %d out of range", m)
			}
			sl.Msgs = append(sl.Msgs, tfg.MessageID(m))
		}
		om.Slices = append(om.Slices, sl)
	}
	for _, nj := range oj.Nodes {
		ns := NodeSchedule{Node: topology.NodeID(nj.Node)}
		for _, cj := range nj.Commands {
			in, err := portFromJSON(cj.In)
			if err != nil {
				return nil, err
			}
			out, err := portFromJSON(cj.Out)
			if err != nil {
				return nil, err
			}
			ns.Commands = append(ns.Commands, Command{
				Start: cj.Start, End: cj.End, Msg: tfg.MessageID(cj.Msg), In: in, Out: out,
			})
		}
		om.Nodes = append(om.Nodes, ns)
	}
	return om, nil
}
