package schedule

import (
	"math"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// sharedFixture places the 15-task DVB(4) on an 8-node 3-cube: every
// node hosts roughly two tasks, exercising the AP-sharing node
// scheduler.
func sharedFixture(t *testing.T, tauIn float64) Problem {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	as := &alloc.Assignment{NodeOf: make([]topology.NodeID, g.NumTasks())}
	for i, task := range g.TopoOrder() {
		as.NodeOf[task] = topology.NodeID(i % top.Nodes())
	}
	return Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn}
}

func TestSharedNodesRejectedWithoutOption(t *testing.T) {
	p := sharedFixture(t, 250)
	if _, err := Compute(p, Options{Seed: 1}); err == nil {
		t.Error("shared placement must be rejected without AllowSharedNodes")
	}
}

func TestSharedNodesSchedule(t *testing.T) {
	// 15 tasks of 50 µs on 8 nodes need >= 100 µs per period on the
	// busiest AP; τin = 250 leaves room.
	p := sharedFixture(t, 250)
	res, err := Compute(p, Options{Seed: 1, AllowSharedNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("expected feasible, failed at %v (U=%g)", res.FailStage, res.Peak)
	}
	if res.Omega.Starts == nil {
		t.Fatal("shared schedule must record its start times")
	}
	// AP exclusivity: tasks on one node occupy disjoint frame intervals.
	type span struct{ a, e float64 }
	perNode := map[topology.NodeID][]span{}
	for i := 0; i < p.Graph.NumTasks(); i++ {
		n := p.Assignment.Node(tfg.TaskID(i))
		a := math.Mod(res.Omega.Starts[i], p.TauIn)
		perNode[n] = append(perNode[n], span{a: a, e: p.Timing.ExecTime[i]})
	}
	for n, spans := range perNode {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				d := math.Mod(spans[j].a-spans[i].a+p.TauIn, p.TauIn)
				if d < spans[i].e-1e-9 || p.TauIn-d < spans[j].e-1e-9 {
					t.Fatalf("node %d: AP intervals overlap (%v vs %v)", n, spans[i], spans[j])
				}
			}
		}
	}
	// Execution still yields constant throughput.
	exec, err := Execute(res.Omega, p.Graph, p.Timing, p.Timing.TauC(), 6)
	if err != nil {
		t.Fatal(err)
	}
	ivs := metrics.Intervals(exec.OutputCompletions)
	if metrics.OutputInconsistent(p.TauIn, ivs, 1e-9) {
		t.Error("shared-node schedule lost output consistency")
	}
}

func TestSharedNodesLatencyAtLeastExclusive(t *testing.T) {
	// The same TFG on a 64-node machine with exclusive placement can
	// only be faster than the packed 8-node version.
	packed := sharedFixture(t, 250)
	res, err := Compute(packed, Options{Seed: 1, AllowSharedNodes: true})
	if err != nil || !res.Feasible {
		t.Fatalf("packed setup: %v", err)
	}

	big, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(packed.Graph, big)
	if err != nil {
		t.Fatal(err)
	}
	wide := packed
	wide.Topology = big
	wide.Assignment = as
	resWide, err := Compute(wide, Options{Seed: 1})
	if err != nil || !resWide.Feasible {
		t.Fatalf("wide setup: %v", err)
	}
	if res.Latency < resWide.Latency-1e-9 {
		t.Errorf("packed latency %g beats exclusive %g — AP contention cannot speed things up", res.Latency, resWide.Latency)
	}
}

func TestSharedNodesOverloadedAPRejected(t *testing.T) {
	// 15 tasks of 50 µs on 2 nodes need 400 µs per period on one AP;
	// τin = 250 cannot fit.
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(1)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	as := &alloc.Assignment{NodeOf: make([]topology.NodeID, g.NumTasks())}
	for i := range as.NodeOf {
		as.NodeOf[i] = topology.NodeID(i % 2)
	}
	p := Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 250}
	if _, err := Compute(p, Options{Seed: 1, AllowSharedNodes: true}); err == nil {
		t.Error("overloaded AP should be rejected")
	}
}

func TestPipelinedStartSharedMatchesExclusive(t *testing.T) {
	// With one task per node, the shared scheduler reduces to the
	// plain pipelined layout.
	g, err := tfg.Diamond(100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := []int{0, 1, 2, 3}
	shared, err := g.PipelinedStartShared(tm, 50, nodeOf, 150)
	if err != nil {
		t.Fatal(err)
	}
	plain := g.PipelinedStart(tm, 50)
	for i := range plain {
		if math.Abs(shared[i]-plain[i]) > 1e-9 {
			t.Errorf("task %d: shared %g vs plain %g", i, shared[i], plain[i])
		}
	}
}

func TestPipelinedStartSharedValidation(t *testing.T) {
	g, err := tfg.Chain(3, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PipelinedStartShared(tm, 50, []int{0}, 150); err == nil {
		t.Error("short nodeOf should fail")
	}
	if _, err := g.PipelinedStartShared(tm, 50, []int{0, 0, 0}, 0); err == nil {
		t.Error("zero period should fail")
	}
	// Three 50 µs tasks on one node within a 100 µs period: impossible.
	if _, err := g.PipelinedStartShared(tm, 50, []int{0, 0, 0}, 100); err == nil {
		t.Error("overloaded AP should fail")
	}
	// Within 150 µs it packs exactly.
	starts, err := g.PipelinedStartShared(tm, 50, []int{0, 0, 0}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 3 {
		t.Fatal("missing starts")
	}
}
