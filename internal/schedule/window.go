// Package schedule implements the paper's contribution: scheduled
// routing (Sections 4 and 5). From a task-flow graph, a task allocation
// and a topology it derives message time bounds, assigns paths with the
// AssignPaths heuristic, allocates messages to intervals, schedules each
// interval into link-feasible sets, and emits per-node switching
// schedules whose independent execution yields contention-free,
// deadlock-free delivery of every message within its window — and hence
// a provably constant output rate.
package schedule

import (
	"fmt"
	"math"

	"schedroute/internal/tfg"
)

// timeEps is the tolerance used for all floating-point schedule
// comparisons (times are in microseconds; 1e-6 µs is far below any
// modeled quantity).
const timeEps = 1e-6

// fmod returns x mod m in [0, m).
func fmod(x, m float64) float64 {
	r := math.Mod(x, m)
	if r < 0 {
		r += m
	}
	return r
}

// Window is one message's transmission window of Section 4: the message
// is released when its source task completes and must be delivered
// Length later. Release is frame-relative (in [0, TauIn)); AbsRelease is
// the absolute release of invocation 0, used to map frame times back to
// absolute times.
type Window struct {
	// Release is the frame-relative release time r_i in [0, τin).
	Release float64
	// Length is the window length (the paper uses τc for every message).
	Length float64
	// AbsRelease is the invocation-0 absolute release time R_i; it
	// satisfies fmod(AbsRelease, τin) == Release.
	AbsRelease float64
	// Xmit is the message's transmission time m_i/B.
	Xmit float64
	// Local is true when source and destination tasks share a node; the
	// message crosses no links and is excluded from routing.
	Local bool
}

// Deadline returns the frame-relative deadline d_i in (0, τin]; the
// window wraps when Deadline <= Release (and Length < τin).
func (w Window) Deadline(tauIn float64) float64 {
	d := fmod(w.Release+w.Length, tauIn)
	if d == 0 {
		d = tauIn
	}
	return d
}

// Wrapped reports whether the frame image of the window is split into
// [0, d] and [r, τin].
func (w Window) Wrapped(tauIn float64) bool {
	return w.Release+w.Length > tauIn+timeEps
}

// Slack is the scheduling slack: window length minus transmission time.
func (w Window) Slack() float64 { return w.Length - w.Xmit }

// NoSlack reports whether the message must occupy its whole window.
func (w Window) NoSlack() bool { return w.Slack() <= timeEps }

// frameOffset returns the offset of frame instant t past the release
// point. Interval arithmetic can place a slice start an epsilon before
// its release, which fmod would wrap to almost a full period; offsets
// within timeEps of tauIn are therefore treated as the release itself.
func (w Window) frameOffset(t, tauIn float64) float64 {
	off := fmod(t-w.Release, tauIn)
	if off >= tauIn-timeEps {
		off = 0
	}
	return off
}

// Contains reports whether frame instant t (taken mod τin) lies within
// the window's frame image.
func (w Window) Contains(t, tauIn float64) bool {
	if w.Length >= tauIn-timeEps {
		return true
	}
	return w.frameOffset(t, tauIn) <= w.Length+timeEps
}

// AbsoluteTime maps a frame instant t inside the window to the absolute
// time of invocation 0's occurrence: AbsRelease plus the offset of t
// past the release point.
func (w Window) AbsoluteTime(t, tauIn float64) float64 {
	return w.AbsRelease + w.frameOffset(t, tauIn)
}

// ComputeWindows derives the Section 4 time bounds for every message:
// tasks are laid out by PipelinedStart with the given window length, a
// message is released when its source completes, and its frame-relative
// bounds are the absolute bounds mod τin. Local messages (source and
// destination tasks on one node) are marked and excluded from routing.
func ComputeWindows(g *tfg.Graph, tm *tfg.Timing, tauIn, window float64, sameNode func(m tfg.Message) bool) ([]Window, error) {
	if err := checkWindowParams(tm, tauIn, window); err != nil {
		return nil, err
	}
	return ComputeWindowsFromStarts(g, tm, tauIn, window, g.PipelinedStart(tm, window), sameNode)
}

func checkWindowParams(tm *tfg.Timing, tauIn, window float64) error {
	if tauIn <= 0 {
		return fmt.Errorf("schedule: non-positive invocation period %g", tauIn)
	}
	if window <= 0 {
		return fmt.Errorf("schedule: non-positive window length %g", window)
	}
	if window > tauIn+timeEps {
		return fmt.Errorf("schedule: window %g exceeds invocation period %g", window, tauIn)
	}
	if tc := tm.TauC(); tauIn < tc-timeEps {
		return fmt.Errorf("schedule: period %g below longest task %g causes infinite accumulation", tauIn, tc)
	}
	return nil
}

// ComputeWindowsFromStarts derives the time bounds from explicit static
// task start times — the hook through which AP-sharing node schedules
// (tfg.PipelinedStartShared) feed the pipeline.
func ComputeWindowsFromStarts(g *tfg.Graph, tm *tfg.Timing, tauIn, window float64, start []float64, sameNode func(m tfg.Message) bool) ([]Window, error) {
	if err := checkWindowParams(tm, tauIn, window); err != nil {
		return nil, err
	}
	if len(start) != g.NumTasks() {
		return nil, fmt.Errorf("schedule: %d start times for %d tasks", len(start), g.NumTasks())
	}
	ws := make([]Window, g.NumMessages())
	for _, m := range g.Messages() {
		abs := start[m.Src] + tm.ExecTime[m.Src]
		w := Window{
			Release:    fmod(abs, tauIn),
			Length:     window,
			AbsRelease: abs,
			Xmit:       tm.XmitTime[m.ID],
			Local:      sameNode != nil && sameNode(m),
		}
		if w.Xmit > w.Length+timeEps && !w.Local {
			return nil, fmt.Errorf("schedule: message %d transmission %g exceeds window %g", m.ID, w.Xmit, w.Length)
		}
		ws[m.ID] = w
	}
	return ws, nil
}
