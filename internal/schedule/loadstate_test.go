package schedule

import (
	"math/rand"
	"testing"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// checkLoadState asserts exact (bitwise, not within-epsilon) agreement
// between the incremental state and a full recompute.
func checkLoadState(t *testing.T, ls *LoadState, top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity, step string) {
	t.Helper()
	want := ComputeUtilization(top, pa, ws, act)
	got := ls.Utilization()
	if got.Peak != want.Peak || got.PeakLink != want.PeakLink || got.PeakInterval != want.PeakInterval {
		t.Fatalf("%s: peak (%v, link %v, interval %v) != full recompute (%v, link %v, interval %v)",
			step, got.Peak, got.PeakLink, got.PeakInterval, want.Peak, want.PeakLink, want.PeakInterval)
	}
	for j := range want.LinkU {
		if got.LinkU[j] != want.LinkU[j] {
			t.Fatalf("%s: LinkU[%d] = %v, full recompute %v", step, j, got.LinkU[j], want.LinkU[j])
		}
	}
}

// TestLoadStateMatchesFullRecompute drives randomized reroute /
// eval / undo sequences over the DVB workload on the 6-cube and the
// 8x8 torus, perfect and with a failed link, asserting after every
// operation that the incremental accumulators equal ComputeUtilization
// exactly.
func TestLoadStateMatchesFullRecompute(t *testing.T) {
	topos := []struct {
		name  string
		build func() (*topology.Topology, error)
	}{
		{"6cube", func() (*topology.Topology, error) { return topology.NewHypercube(6) }},
		{"torus88", func() (*topology.Topology, error) { return topology.NewTorus(8, 8) }},
	}
	for _, tc := range topos {
		for _, faulted := range []bool{false, true} {
			name := tc.name
			if faulted {
				name += "-faulted"
			}
			t.Run(name, func(t *testing.T) {
				top, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				p := dvbProblem(t, top, 64, gridTauIn(4))
				var fs *topology.FaultSet
				if faulted {
					fs = topology.NewFaultSet(top.Links(), top.Nodes())
					fs.FailLink(0)
				}
				sameNode := func(m tfg.Message) bool {
					return p.Assignment.Node(m.Src) == p.Assignment.Node(m.Dst)
				}
				ws, err := ComputeWindows(p.Graph, p.Timing, p.TauIn, p.Timing.TauC(), sameNode)
				if err != nil {
					t.Fatal(err)
				}
				set := BuildIntervals(ws, p.TauIn)
				act := BuildActivity(ws, set)
				pa, err := FaultRouteAssignment(p.Graph, top, p.Assignment, ws, fs)
				if err != nil {
					t.Fatal(err)
				}
				cands, err := BuildCandidatesFault(p.Graph, top, p.Assignment, ws, 24, fs)
				if err != nil {
					t.Fatal(err)
				}
				var multi []tfg.MessageID
				for i, list := range cands.PathsOf {
					if len(list) >= 2 {
						multi = append(multi, tfg.MessageID(i))
					}
				}
				if len(multi) == 0 {
					t.Fatal("no multi-path messages in fixture")
				}

				ls := NewLoadState(top, pa, ws, act)
				checkLoadState(t, ls, top, pa, ws, act, "initial")

				rng := rand.New(rand.NewSource(7))
				for step := 0; step < 200; step++ {
					mi := multi[rng.Intn(len(multi))]
					c := cands.PathsOf[mi][rng.Intn(len(cands.PathsOf[mi]))]
					old := pa.Links[mi]
					switch rng.Intn(3) {
					case 0: // apply and keep
						ls.ApplyReroute(mi, old, c.links)
						pa.SetPath(mi, c.path, c.links)
						checkLoadState(t, ls, top, pa, ws, act, "apply")
					case 1: // apply then undo
						ls.ApplyReroute(mi, old, c.links)
						ls.Undo(mi, old, c.links)
						checkLoadState(t, ls, top, pa, ws, act, "undo")
					default: // pure what-if: peak must equal a cloned full eval
						peak, link, interval := ls.EvalReroute(mi, old, c.links)
						trial := pa.Clone()
						trial.SetPath(mi, c.path, c.links)
						want := ComputeUtilization(top, trial, ws, act)
						if peak != want.Peak || link != want.PeakLink || interval != want.PeakInterval {
							t.Fatalf("eval: (%v, %v, %v) != full trial recompute (%v, %v, %v)",
								peak, link, interval, want.Peak, want.PeakLink, want.PeakInterval)
						}
						checkLoadState(t, ls, top, pa, ws, act, "eval")
					}
				}

				// Reset onto a scrambled assignment must equal a fresh build.
				randomize(pa, cands, rng)
				ls.Reset(pa)
				checkLoadState(t, ls, top, pa, ws, act, "reset")
			})
		}
	}
}

// TestAssignPathsCrossCheck runs the heuristic with the debug
// cross-check enabled: AssignPaths itself panics if the incremental
// state ever diverges from the full recompute.
func TestAssignPathsCrossCheck(t *testing.T) {
	assignCrossCheck = true
	defer func() { assignCrossCheck = false }()
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(2))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak > res.PeakLSD {
		t.Fatalf("AssignPaths peak %v worse than LSD %v", res.Peak, res.PeakLSD)
	}
}
