package schedule

import (
	"fmt"

	"schedroute/internal/alloc"
)

// SearchResult reports which allocation candidate won the coupled
// search and with what outcome.
type SearchResult struct {
	// Result is the best schedule found.
	Result *Result
	// Chosen is the index of the winning candidate allocation.
	Chosen int
}

// ComputeBestAllocation implements the coupling of task allocation with
// path assignment that the paper's Section 7 calls out as future work
// ("coupling it with path assignment so as to set up less stringent
// constraints for SR computation should be explored"): the full
// pipeline is run for each candidate placement and the best outcome is
// kept — a feasible schedule with the lowest peak utilization if any
// candidate succeeds, otherwise the failure with the lowest peak.
func ComputeBestAllocation(p Problem, opt Options, candidates []*alloc.Assignment) (*SearchResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("schedule: no candidate allocations")
	}
	var best *SearchResult
	for i, as := range candidates {
		prob := p
		prob.Assignment = as
		res, err := Compute(prob, opt)
		if err != nil {
			return nil, fmt.Errorf("schedule: candidate %d: %w", i, err)
		}
		if best == nil || better(res, best.Result) {
			best = &SearchResult{Result: res, Chosen: i}
		}
	}
	return best, nil
}

// better orders results: feasible beats infeasible; among equals, the
// lower peak utilization wins.
func better(a, b *Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Peak < b.Peak
}

// DefaultCandidates builds the standard candidate set for
// ComputeBestAllocation: round-robin, greedy, and seeds of random
// placements.
func DefaultCandidates(p Problem, randomSeeds ...int64) ([]*alloc.Assignment, error) {
	var out []*alloc.Assignment
	rr, err := alloc.RoundRobin(p.Graph, p.Topology)
	if err != nil {
		return nil, err
	}
	out = append(out, rr)
	gr, err := alloc.Greedy(p.Graph, p.Topology)
	if err != nil {
		return nil, err
	}
	out = append(out, gr)
	for _, seed := range randomSeeds {
		ra, err := alloc.Random(p.Graph, p.Topology, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ra)
	}
	return out, nil
}
