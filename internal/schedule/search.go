package schedule

import (
	"context"
	"fmt"

	"schedroute/internal/alloc"
	"schedroute/internal/parallel"
	"schedroute/internal/trace"
)

// SearchResult reports which allocation candidate won the coupled
// search and with what outcome.
type SearchResult struct {
	// Result is the best schedule found.
	Result *Result
	// Chosen is the index of the winning candidate allocation.
	Chosen int
}

// ComputeBestAllocation implements the coupling of task allocation with
// path assignment that the paper's Section 7 calls out as future work
// ("coupling it with path assignment so as to set up less stringent
// constraints for SR computation should be explored"): the full
// pipeline is run for each candidate placement and the best outcome is
// kept — a feasible schedule with the lowest peak utilization if any
// candidate succeeds, otherwise the failure with the lowest peak.
//
// Candidates are evaluated concurrently on opt.Procs workers (0 =
// GOMAXPROCS). Every candidate sees the same opt.Seed, exactly as the
// serial loop did, and the winner is selected by a serial scan in
// candidate order, so the outcome is identical to a serial run. ctx
// cancels the fan-out; no new candidates start after cancellation and
// the context error is returned.
func ComputeBestAllocation(ctx context.Context, p Problem, opt Options, candidates []*alloc.Assignment) (*SearchResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("schedule: no candidate allocations")
	}
	// Per-candidate spans are created serially in index order before the
	// fan-out and each worker records only into its own, so the traced
	// structure is independent of goroutine interleaving.
	search := opt.Trace.Start(SpanAllocSearch, trace.Int("candidates", len(candidates)))
	spans := make([]*trace.Span, len(candidates))
	for i := range spans {
		spans[i] = search.Start(SpanCandidate, trace.Int("index", i))
	}
	results, err := parallel.Map(ctx, len(candidates), parallel.Workers(opt.Procs),
		func(i int) (*Result, error) {
			prob := p
			prob.Assignment = candidates[i]
			co := opt
			co.Trace = spans[i]
			// Each placement gets its own solver (candidates and the LSD
			// baseline are placement-specific); a caller probing several
			// periods per placement would share them through it.
			res, err := NewSolver(prob).Solve(ctx, prob.TauIn, co)
			spans[i].End()
			if err != nil {
				return nil, fmt.Errorf("schedule: candidate %d: %w", i, err)
			}
			return res, nil
		})
	if err != nil {
		search.End()
		return nil, err
	}
	var best *SearchResult
	for i, res := range results {
		if best == nil || Better(res, best.Result) {
			best = &SearchResult{Result: res, Chosen: i}
		}
	}
	search.SetAttrs(trace.Int("chosen", best.Chosen))
	search.End()
	return best, nil
}

// Better orders results the way every placement search in the repo
// does: feasible beats infeasible; among equals, the lower peak
// utilization wins. Exported so the service's grid-mode placement
// exploration ranks candidates identically to ComputeBestAllocation.
func Better(a, b *Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Peak < b.Peak
}

// DefaultCandidates builds the standard candidate set for
// ComputeBestAllocation: round-robin, greedy, and seeds of random
// placements. The placements are independent, so they are built
// concurrently; slot order (round-robin, greedy, randoms in seed order)
// matches the serial construction.
func DefaultCandidates(ctx context.Context, p Problem, randomSeeds ...int64) ([]*alloc.Assignment, error) {
	builders := []func() (*alloc.Assignment, error){
		func() (*alloc.Assignment, error) { return alloc.RoundRobin(p.Graph, p.Topology) },
		func() (*alloc.Assignment, error) { return alloc.Greedy(p.Graph, p.Topology) },
	}
	for _, seed := range randomSeeds {
		seed := seed
		builders = append(builders, func() (*alloc.Assignment, error) {
			return alloc.Random(p.Graph, p.Topology, seed)
		})
	}
	out, err := parallel.Map(ctx, len(builders), parallel.Workers(0),
		func(i int) (*alloc.Assignment, error) { return builders[i]() })
	if err != nil {
		return nil, err
	}
	return out, nil
}
