package schedule

import (
	"fmt"

	"schedroute/internal/tfg"
)

// ExecResult mirrors the wormhole simulator's result shape so both
// routing techniques feed the same metrics pipeline.
type ExecResult struct {
	OutputCompletions []float64
	Latencies         []float64
	// Deliveries[i] is message i's invocation-0 absolute delivery time.
	Deliveries []float64
}

// Execute replays the frame schedule over the requested invocations and
// verifies the scheduled-routing guarantee from first principles: every
// message is delivered within its window, every task's inputs are all
// present by its static start, and consequently every invocation
// completes exactly Latency after it starts — constant throughput.
func Execute(om *Omega, g *tfg.Graph, tm *tfg.Timing, window float64, invocations int) (*ExecResult, error) {
	if invocations < 1 {
		return nil, fmt.Errorf("schedule: need at least one invocation")
	}
	// Invocation-0 absolute delivery time per message: the latest
	// absolute end over its slices. Local messages deliver at release.
	deliver := make([]float64, g.NumMessages())
	for i, w := range om.Windows {
		deliver[i] = w.AbsRelease
		if w.Local {
			deliver[i] += w.Xmit
		}
	}
	seen := make([]float64, g.NumMessages())
	for _, sl := range om.Slices {
		for mi, msg := range sl.Msgs {
			w := om.Windows[msg]
			absEnd := w.AbsoluteTime(sl.Start, om.TauIn) + (sl.Until[mi] - sl.Start)
			if absEnd > deliver[msg] {
				deliver[msg] = absEnd
			}
			seen[msg] += sl.Until[mi] - sl.Start
		}
	}
	for _, m := range g.Messages() {
		w := om.Windows[m.ID]
		if !w.Local && seen[m.ID] < w.Xmit-1e-6 {
			return nil, fmt.Errorf("schedule: message %d only transmitted %g of %g", m.ID, seen[m.ID], w.Xmit)
		}
		if deliver[m.ID] > w.AbsRelease+w.Length+1e-6 {
			return nil, fmt.Errorf("schedule: message %d delivered %g past its deadline", m.ID, deliver[m.ID]-w.AbsRelease-w.Length)
		}
	}
	// Every task's static start must dominate its inputs' deliveries.
	start := om.Starts
	if start == nil {
		start = g.PipelinedStart(tm, window)
	}
	for _, m := range g.Messages() {
		if deliver[m.ID] > start[m.Dst]+1e-6 {
			return nil, fmt.Errorf("schedule: task %d starts at %g before message %d arrives at %g", m.Dst, start[m.Dst], m.ID, deliver[m.ID])
		}
	}
	res := &ExecResult{Deliveries: deliver}
	for j := 0; j < invocations; j++ {
		base := float64(j) * om.TauIn
		res.OutputCompletions = append(res.OutputCompletions, base+om.Latency)
		res.Latencies = append(res.Latencies, om.Latency)
	}
	return res, nil
}
