package schedule

import (
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// assignFixture prepares the AssignPaths inputs for the DVB on a
// 6-cube at the given period.
func assignFixture(t *testing.T, tauIn float64) (*PathAssignment, *Candidates, *topology.Topology, []Window, *Activity) {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ComputeWindows(g, tm, tauIn, tm.TauC(), func(m tfg.Message) bool {
		return as.Node(m.Src) == as.Node(m.Dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	set := BuildIntervals(ws, tauIn)
	act := BuildActivity(ws, set)
	lsd, err := LSDAssignment(g, top, as, ws)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := BuildCandidates(g, top, as, ws, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lsd, cands, top, ws, act
}

func TestAssignPathsDeterministic(t *testing.T) {
	lsd, cands, top, ws, act := assignFixture(t, 141)
	a := AssignPaths(lsd, cands, top, ws, act, 42, 4, 40)
	b := AssignPaths(lsd, cands, top, ws, act, 42, 4, 40)
	if a.Util.Peak != b.Util.Peak {
		t.Fatalf("nondeterministic peaks: %g vs %g", a.Util.Peak, b.Util.Peak)
	}
	for i := range a.Assignment.Paths {
		if !a.Assignment.Paths[i].Equal(b.Assignment.Paths[i]) && len(a.Assignment.Links[i]) > 0 {
			t.Fatalf("message %d paths differ across equal-seed runs", i)
		}
	}
}

func TestAssignPathsImprovesOnLSD(t *testing.T) {
	lsd, cands, top, ws, act := assignFixture(t, 141)
	lsdU := ComputeUtilization(top, lsd, ws, act)
	res := AssignPaths(lsd, cands, top, ws, act, 1, 6, 60)
	if res.Util.Peak > lsdU.Peak+1e-9 {
		t.Fatalf("AssignPaths %g worse than LSD %g", res.Util.Peak, lsdU.Peak)
	}
	// On the 6-cube the heuristic should improve substantially (the
	// Fig. 5 gap): LSD peaks at 3.0, AssignPaths reaches 1.0.
	if res.Util.Peak > lsdU.Peak*0.67 {
		t.Errorf("expected a substantial improvement: %g vs LSD %g", res.Util.Peak, lsdU.Peak)
	}
	if res.Iterations == 0 {
		t.Error("no evaluations recorded")
	}
	// The returned paths remain valid shortest paths.
	for i, p := range res.Assignment.Paths {
		if len(res.Assignment.Links[i]) == 0 {
			continue
		}
		if err := p.Validate(top); err != nil {
			t.Errorf("message %d: %v", i, err)
		}
	}
}

func TestAssignPathsHandlesDegenerateBudgets(t *testing.T) {
	lsd, cands, top, ws, act := assignFixture(t, 141)
	res := AssignPaths(lsd, cands, top, ws, act, 1, 0, 0) // clamped to 1/1
	if res == nil || res.Assignment == nil {
		t.Fatal("degenerate budgets must still return an assignment")
	}
}

func TestUtilizationZeroWithoutTraffic(t *testing.T) {
	_, _, top, ws, act := assignFixture(t, 141)
	empty := &PathAssignment{
		Paths: make([]topology.Path, len(ws)),
		Links: make([][]topology.LinkID, len(ws)),
	}
	u := ComputeUtilization(top, empty, ws, act)
	if u.Peak != 0 {
		t.Errorf("no paths should mean zero utilization, got %g", u.Peak)
	}
}

func TestUtilizationSpotCountsNoSlackOnly(t *testing.T) {
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	p := top.LSDToMSD(0, 1)
	links, err := p.Links(top)
	if err != nil {
		t.Fatal(err)
	}
	// Two messages on one link, same interval: one no-slack, one slack.
	ws := []Window{
		{Release: 0, Length: 10, Xmit: 10}, // no slack
		{Release: 0, Length: 10, Xmit: 2},  // slack
	}
	pa := &PathAssignment{
		Paths: []topology.Path{p, p},
		Links: [][]topology.LinkID{links, links},
	}
	set := BuildIntervals(ws, 10)
	act := BuildActivity(ws, set)
	u := ComputeUtilization(top, pa, ws, act)
	// Link utilization 12/10 = 1.2 dominates the single-no-slack spot.
	if u.Peak < 1.2-1e-9 || u.Peak > 1.2+1e-9 {
		t.Errorf("peak = %g, want 1.2", u.Peak)
	}
	// Two no-slack messages with staggered windows: the hot-spot count 2
	// in the overlap interval dominates the link ratio 20/15.
	ws = []Window{
		{Release: 0, Length: 10, Xmit: 10},
		{Release: 5, Length: 10, Xmit: 10},
	}
	set = BuildIntervals(ws, 20)
	act = BuildActivity(ws, set)
	u = ComputeUtilization(top, pa, ws, act)
	if u.Peak != 2 {
		t.Errorf("peak = %g, want spot count 2", u.Peak)
	}
	if u.PeakInterval < 0 {
		t.Error("peak should identify the hot-spot interval")
	}
}

func TestCandidatesRespectMaxPaths(t *testing.T) {
	_, cands, _, _, _ := assignFixture(t, 141)
	for i, list := range cands.PathsOf {
		if len(list) > 16 {
			t.Fatalf("message %d has %d candidates, cap 16", i, len(list))
		}
	}
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ComputeWindows(g, tm, 141, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildCandidates(g, top, as, ws, 0); err == nil {
		t.Error("zero maxPaths should fail")
	}
}
