package schedule

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"schedroute/internal/tfg"
	"schedroute/internal/trace"
)

// SolveStats instruments one Solve call. The counters (Attempts,
// AssignIterations) are deterministic and always filled; the wall-clock
// stage timings are populated only when Options.CollectStats is set, so
// results stay comparable across runs and worker counts (the
// determinism suite DeepEquals whole Results).
type SolveStats struct {
	// Attempts is the number of Fig. 3 feedback iterations run (1 when
	// the first path assignment survived the downstream stages).
	Attempts int
	// AssignIterations totals the utilization evaluations AssignPaths
	// performed across all attempts.
	AssignIterations int

	// Per-stage wall-clock times; zero unless Options.CollectStats.
	WindowsTime  time.Duration
	AssignTime   time.Duration
	AllocateTime time.Duration
	ScheduleTime time.Duration
	OmegaTime    time.Duration
}

// Solver runs the Fig. 3 pipeline repeatedly over one fixed problem
// structure — (Graph, Timing, Topology, Assignment, Faults) — varying
// only the invocation period and options per call. Everything
// τin-independent is computed once and reused: the fault-aware LSD
// baseline and candidate path sets (both depend on the windows only
// through the Local flags, which are fixed by the placement), the
// static task starts per window length, and the placement validation.
// Sweeps that call Compute per load point rebuild all of this every
// time; routing them through one Solver amortizes it.
//
// A Solver is safe for concurrent Solve calls, and Solve results are
// identical to one-shot Compute on the same inputs.
type Solver struct {
	p Problem // TauIn ignored; supplied per Solve

	mu sync.Mutex
	// validated[exclusive] caches Assignment.Validate per strictness.
	validated map[bool]*error
	// starts caches PipelinedStart per window length; sharedStarts
	// caches PipelinedStartShared per (window, τin) since AP-sharing
	// layouts depend on the period too.
	starts       map[float64][]float64
	sharedStarts map[[2]float64]*sharedStartsEntry
	// lsd caches the FaultRouteAssignment baseline; cands caches
	// BuildCandidatesFault per MaxPaths.
	lsdDone bool
	lsd     *PathAssignment
	lsdErr  error
	cands   map[int]*candsEntry

	// cacheStats counts Solve calls and actual structure builds, so
	// callers (the scheduling service, tests) can verify the warm path:
	// after the first Solve on a structure, the build counters stop
	// moving while Solves keeps climbing. Kept out of Result on purpose —
	// which Solve call performs a build depends on goroutine arrival
	// order, and Results must stay value-comparable across worker counts.
	cacheStats SolverCacheStats
}

// SolverCacheStats reports how much τin-independent structure a Solver
// has actually rebuilt, against how many Solve calls it served.
type SolverCacheStats struct {
	// Solves is the number of Solve calls completed or started.
	Solves int64
	// BaselineBuilds counts FaultRouteAssignment runs (at most 1).
	BaselineBuilds int64
	// CandidateBuilds counts BuildCandidatesFault runs (one per distinct
	// MaxPaths).
	CandidateBuilds int64
	// StartsBuilds counts static task-start computations (one per
	// distinct window length, or per (window, τin) with AP sharing).
	StartsBuilds int64
	// ValidateBuilds counts Assignment.Validate runs (one per
	// strictness level).
	ValidateBuilds int64
}

// CacheStats snapshots the cache instrumentation. Safe to call
// concurrently with Solve.
func (s *Solver) CacheStats() SolverCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheStats
}

type sharedStartsEntry struct {
	starts []float64
	err    error
}

type candsEntry struct {
	c   *Candidates
	err error
}

// arenaPool recycles solve arenas across Solve calls and Solvers; each
// Solve borrows one arena for its whole pipeline, so concurrent Solves
// never share scratch.
var arenaPool = sync.Pool{New: func() any { return new(solveArena) }}

// NewSolver fixes the problem structure. p.TauIn is ignored — the
// period is an argument to Solve.
func NewSolver(p Problem) *Solver {
	return &Solver{
		p:            p,
		validated:    map[bool]*error{},
		starts:       map[float64][]float64{},
		sharedStarts: map[[2]float64]*sharedStartsEntry{},
		cands:        map[int]*candsEntry{},
	}
}

// Compute runs the scheduled-routing pipeline of the paper's Fig. 3:
// time bounds → path assignment → message-interval allocation →
// interval scheduling → node switching schedules. Infeasibility at any
// stage is reported in the Result; an error return signals invalid
// input or an internal inconsistency. It is a one-shot, uncancellable
// wrapper over Solver; callers evaluating many periods of one problem
// should build the Solver once, and callers needing cancellation should
// use Solver.Solve with their context.
func Compute(p Problem, o Options) (*Result, error) {
	return NewSolver(p).Solve(context.Background(), p.TauIn, o)
}

// validate caches Assignment.Validate per strictness level.
func (s *Solver) validate(exclusive bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.validated[exclusive]; ok {
		return *e
	}
	s.cacheStats.ValidateBuilds++
	err := s.p.Assignment.Validate(s.p.Graph, s.p.Topology, exclusive)
	s.validated[exclusive] = &err
	return err
}

// taskStarts returns the static task start times for the given window,
// cached per window length (and per period when AP sharing is on).
func (s *Solver) taskStarts(window, tauIn float64, shared bool) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if shared {
		key := [2]float64{window, tauIn}
		if e, ok := s.sharedStarts[key]; ok {
			return e.starts, e.err
		}
		s.cacheStats.StartsBuilds++
		nodeOf := make([]int, s.p.Graph.NumTasks())
		for t := range nodeOf {
			nodeOf[t] = int(s.p.Assignment.Node(tfg.TaskID(t)))
		}
		starts, err := s.p.Graph.PipelinedStartShared(s.p.Timing, window, nodeOf, tauIn)
		s.sharedStarts[key] = &sharedStartsEntry{starts: starts, err: err}
		return starts, err
	}
	if st, ok := s.starts[window]; ok {
		return st, nil
	}
	s.cacheStats.StartsBuilds++
	st := s.p.Graph.PipelinedStart(s.p.Timing, window)
	s.starts[window] = st
	return st, nil
}

// lsdBaseline returns the fault-aware deterministic assignment, built
// once: FaultRouteAssignment reads the windows only through the Local
// flags, which depend on the placement alone, so the baseline is the
// same for every period and window.
// The boolean reports whether this call performed the build (false on a
// cache hit), feeding the trace span's "cached" attribute.
func (s *Solver) lsdBaseline(ws []Window) (*PathAssignment, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	built := false
	if !s.lsdDone {
		s.cacheStats.BaselineBuilds++
		s.lsd, s.lsdErr = FaultRouteAssignment(s.p.Graph, s.p.Topology, s.p.Assignment, ws, s.p.Faults)
		s.lsdDone = true
		built = true
	}
	return s.lsd, built, s.lsdErr
}

// candidates returns the per-message equivalent-path sets, built once
// per MaxPaths for the same reason as lsdBaseline. The Candidates are
// immutable and shared across Solve calls.
func (s *Solver) candidates(ws []Window, maxPaths int) (*Candidates, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cands[maxPaths]; ok {
		return e.c, false, e.err
	}
	s.cacheStats.CandidateBuilds++
	c, err := BuildCandidatesFault(s.p.Graph, s.p.Topology, s.p.Assignment, ws, maxPaths, s.p.Faults)
	s.cands[maxPaths] = &candsEntry{c: c, err: err}
	return c, true, err
}

// Solve runs the pipeline for one invocation period. The output is
// identical — bit for bit — to Compute on the same problem and
// options: the cached structures are exactly the values a fresh run
// would rebuild.
//
// ctx cancels the solve between pipeline stages and between feedback
// attempts; a cancelled call returns ctx.Err(). A nil ctx is treated as
// context.Background().
func (s *Solver) Solve(ctx context.Context, tauIn float64, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	p := s.p
	if p.Graph == nil || p.Timing == nil || p.Topology == nil || p.Assignment == nil {
		return nil, fmt.Errorf("schedule: incomplete problem")
	}
	if opt.LinkCap != nil && len(opt.LinkCap) != p.Topology.Links() {
		return nil, fmt.Errorf("schedule: LinkCap has %d entries for %d links", len(opt.LinkCap), p.Topology.Links())
	}
	s.mu.Lock()
	s.cacheStats.Solves++
	s.mu.Unlock()
	// Without AP sharing, SR's static task starts assume one task per
	// application processor.
	if err := s.validate(!opt.AllowSharedNodes); err != nil {
		return nil, err
	}
	window := opt.Window
	if window == 0 {
		window = p.Timing.TauC()
	}
	sameNode := func(m tfg.Message) bool {
		return p.Assignment.Node(m.Src) == p.Assignment.Node(m.Dst)
	}

	var stats SolveStats
	stamp := func(d *time.Duration, from time.Time) time.Time {
		if !opt.CollectStats {
			return from
		}
		now := time.Now()
		*d += now.Sub(from)
		return now
	}
	t := time.Time{}
	if opt.CollectStats {
		t = time.Now()
	}

	sp := opt.Trace.Start(SpanSolve, trace.Float64("tau_in", tauIn), trace.Int64("seed", opt.Seed))
	defer sp.End()

	arena := arenaPool.Get().(*solveArena)
	defer arenaPool.Put(arena)

	tb := sp.Start(SpanTimeBounds)
	starts, err := s.taskStarts(window, tauIn, opt.AllowSharedNodes)
	if err != nil {
		return nil, err
	}
	ws, err := ComputeWindowsFromStarts(p.Graph, p.Timing, tauIn, window, starts, sameNode)
	if err != nil {
		return nil, err
	}
	if opt.SyncMargin > 0 {
		if err := applySyncMargin(ws, opt.SyncMargin, tauIn); err != nil {
			return nil, err
		}
	}
	set := BuildIntervals(ws, tauIn)
	act := BuildActivity(ws, set)
	tb.SetAttrs(trace.Int("windows", len(ws)))
	tb.End()
	t = stamp(&stats.WindowsTime, t)

	res := &Result{
		Windows:   ws,
		Intervals: set,
		Activity:  act,
		Latency:   p.Graph.LatencyOf(p.Timing, starts),
	}

	ls := sp.Start(SpanLSDBaseline)
	lsd, lsdBuilt, err := s.lsdBaseline(ws)
	if err != nil {
		return nil, err
	}
	// The baseline may end up in the Result (LSDOnly, or when no
	// reroute improves on it); hand each Solve its own slice headers so
	// callers can't alias each other through the cache.
	lsd = lsd.Clone()
	lsdU := computeUtilization(arena, p.Topology, lsd, ws, act, opt.LinkCap)
	res.PeakLSD = lsdU.Peak
	ls.SetAttrs(trace.Bool("cached", !lsdBuilt), trace.Float64("peak", lsdU.Peak))
	ls.End()

	var cands *Candidates
	if !opt.LSDOnly {
		cs := sp.Start(SpanCandidates, trace.Int("max_paths", opt.MaxPaths))
		var candsBuilt bool
		cands, candsBuilt, err = s.candidates(ws, opt.MaxPaths)
		if err != nil {
			return nil, err
		}
		cs.SetAttrs(trace.Bool("cached", !candsBuilt))
		cs.End()
	}

	// The Fig. 3 pipeline, with feedback: on a downstream rejection the
	// path assignment is recomputed from a fresh seed and the later
	// stages retried.
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.Attempts = attempt + 1
		asp := sp.Start(SpanAttempt, trace.Int("attempt", attempt))
		ap := asp.Start(SpanAssignPaths)
		pa, peak := lsd, lsdU.Peak
		if !opt.LSDOnly {
			ar := assignPaths(arena, lsd, cands, p.Topology, ws, act, opt.Seed+int64(attempt), opt.MaxOuter, opt.MaxInner, opt.LinkCap)
			stats.AssignIterations += ar.Iterations
			pa, peak = ar.Assignment, ar.Util.Peak
			if peak > lsdU.Peak {
				// AssignPaths starts from LSD, so it can never be worse.
				pa, peak = lsd, lsdU.Peak
			}
			ap.SetAttrs(trace.Int("iterations", ar.Iterations))
		}
		ap.SetAttrs(trace.Float64("peak", peak))
		ap.End()
		t = stamp(&stats.AssignTime, t)
		if attempt == 0 || peak < res.Peak {
			res.Assignment = pa
			res.Peak = peak
		}

		stage := StageOK
		var allocation *Allocation
		var slices []Slice
		if peak > 1+timeEps {
			stage = StageUtilization
		} else {
			ms := asp.Start(SpanSubsets)
			subsets := maximalSubsets(arena, pa, ws, act)
			ms.End()
			al := asp.Start(SpanAllocation)
			allocation, err = allocateIntervals(arena, subsets, pa, ws, act, opt.LinkCap)
			var allocFail *ErrAllocationInfeasible
			if errors.As(err, &allocFail) {
				stage = StageAllocation
			} else if err != nil {
				return nil, err
			}
			al.SetAttrs(trace.Bool("feasible", stage == StageOK))
			al.End()
		}
		t = stamp(&stats.AllocateTime, t)
		if stage == StageOK {
			is := asp.Start(SpanIntervalSched)
			slices, err = scheduleIntervals(arena, allocation, pa, act, opt.Engine, 2*opt.SyncMargin)
			var schedFail *ErrIntervalInfeasible
			if errors.As(err, &schedFail) {
				stage = StageIntervalSchedule
			} else if err != nil {
				return nil, err
			}
			is.SetAttrs(trace.Bool("feasible", stage == StageOK), trace.Int("slices", len(slices)))
			is.End()
		}
		t = stamp(&stats.ScheduleTime, t)

		if stage != StageOK {
			res.FailStage = stage
			asp.SetAttrs(trace.String("fail_stage", stage.String()))
			asp.End()
			if attempt < opt.Retries && !opt.LSDOnly {
				continue
			}
			res.Stats = stats
			sp.End()
			res.Trace = sp.Tree()
			return res, nil
		}

		res.Assignment = pa
		res.Peak = peak
		res.Allocation = allocation
		res.Slices = slices
		om := asp.Start(SpanOmega)
		omega := BuildOmega(slices, pa, ws, p.Topology.Nodes(), tauIn, res.Latency)
		omega.Starts = starts
		if err := omega.Validate(p.Topology); err != nil {
			return nil, fmt.Errorf("schedule: internal: emitted schedule failed validation: %w", err)
		}
		om.SetAttrs(trace.Int("commands", omega.NumCommands()))
		om.End()
		asp.End()
		stamp(&stats.OmegaTime, t)
		res.Omega = omega
		res.Feasible = true
		res.FailStage = StageOK
		res.Stats = stats
		sp.End()
		res.Trace = sp.Tree()
		return res, nil
	}
}
