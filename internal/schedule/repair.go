package schedule

import (
	"context"
	"errors"
	"fmt"

	"schedroute/internal/errkind"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// RepairOutcome names the rung of the repair ladder that produced (or
// failed to produce) a schedule for the degraded machine.
type RepairOutcome int

const (
	// RepairUnaffected: no scheduled message crosses a failed element;
	// the existing Ω remains valid as-is.
	RepairUnaffected RepairOutcome = iota
	// RepairIncremental: only the affected messages were rerouted and
	// reallocated; every unaffected reservation kept its allocation.
	RepairIncremental
	// RepairRecomputed: incremental repair was infeasible, but a full
	// pipeline rerun on the residual topology found a schedule at the
	// original rate and window.
	RepairRecomputed
	// RepairDegradedWindow: feasible only after widening the message
	// windows (latency grows; the output rate τout is preserved).
	RepairDegradedWindow
	// RepairDegradedRate: feasible only at a longer invocation period
	// (τout > τin — the constant-rate guarantee holds at a reduced rate).
	RepairDegradedRate
	// RepairInfeasible: no rung produced a schedule; the fault is not
	// survivable for this workload and placement.
	RepairInfeasible
)

// String names the outcome.
func (o RepairOutcome) String() string {
	switch o {
	case RepairUnaffected:
		return "unaffected"
	case RepairIncremental:
		return "incremental"
	case RepairRecomputed:
		return "recomputed"
	case RepairDegradedWindow:
		return "degraded-window"
	case RepairDegradedRate:
		return "degraded-rate"
	case RepairInfeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// windowScales and rateFactors are the graceful-degradation ladders:
// window widening preserves the output rate at higher latency, rate
// reduction trades τout itself. Both are tried in order and the first
// feasible rung wins, so reports are deterministic.
var (
	windowScales = []float64{1.25, 1.5, 2}
	rateFactors  = []float64{1.1, 1.25, 1.5, 2}
)

// RepairReport is the typed outcome of a repair attempt.
type RepairReport struct {
	Outcome RepairOutcome
	// Stage is the pipeline stage that rejected the final attempt when
	// Outcome is RepairInfeasible; StageOK otherwise.
	Stage Stage
	// Faults describes the injected fault population.
	Faults string
	// Affected lists the messages whose paths crossed a failed element.
	Affected []tfg.MessageID
	// Rerouted counts messages whose path changed in the repaired Ω.
	Rerouted int
	// NewPeak is the peak utilization of the repaired assignment.
	NewPeak float64
	// TauOut is the output period of the repaired schedule; it exceeds
	// the problem's TauIn exactly when Outcome is RepairDegradedRate.
	TauOut float64
	// WindowScale is the window widening factor applied (1 unless
	// Outcome is RepairDegradedWindow).
	WindowScale float64
	// LostTasks is true when a failed node hosts an application task, a
	// fault no amount of rerouting can mask (the model has no task
	// migration); the outcome is then RepairInfeasible.
	LostTasks bool
	// Reason carries a one-line diagnosis for infeasible outcomes.
	Reason string
	// Result is the repaired schedule (the base result when Outcome is
	// RepairUnaffected); nil only when Outcome is RepairInfeasible.
	Result *Result
}

// Err returns a typed *InfeasibleRepairError when the repair failed,
// and nil otherwise — the hook for strict sweeps that must abort on the
// first unsurvivable fault.
func (r *RepairReport) Err() error {
	if r.Outcome != RepairInfeasible {
		return nil
	}
	return &InfeasibleRepairError{Faults: r.Faults, Stage: r.Stage, Reason: r.Reason}
}

// InfeasibleRepairError reports an unsurvivable fault: every rung of
// the repair ladder — incremental reroute, full recompute, widened
// windows, reduced rate — was rejected.
type InfeasibleRepairError struct {
	Faults string
	Stage  Stage
	Reason string
}

func (e *InfeasibleRepairError) Error() string {
	msg := fmt.Sprintf("schedule: repair infeasible under %s (last stage: %s)", e.Faults, e.Stage)
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	return msg
}

// Is places the error in the errkind.ErrInfeasibleRepair family, so one
// classification table can derive both the CLI exit status (3) and the
// service HTTP status (422) without naming this concrete type.
func (e *InfeasibleRepairError) Is(target error) bool {
	return target == errkind.ErrInfeasibleRepair
}

// Repair attempts to restore a valid schedule after the fault set fs
// strikes a machine running the feasible base schedule, descending the
// ladder of the paper's Fig. 3 feedback arrows extended with graceful
// degradation:
//
//  1. incremental — reroute only the affected messages over surviving
//     paths, re-allocate them against the residual per-(link, interval)
//     capacity with every unaffected allocation pinned, and re-run
//     interval scheduling;
//  2. full recompute — the whole pipeline on the residual topology;
//  3. widened windows — full recompute with the message windows scaled
//     up (latency degrades, the output rate does not);
//  4. reduced rate — full recompute at a longer invocation period
//     (τout degrades but stays constant).
//
// Every outcome is a typed RepairReport; an error return signals
// invalid input, cancellation, or an internal inconsistency, never mere
// infeasibility. ctx cancels the ladder between rungs and inside the
// full-recompute solves; a nil ctx is treated as context.Background().
func Repair(ctx context.Context, p Problem, o Options, base *Result, fs *topology.FaultSet) (*RepairReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	if base == nil || !base.Feasible || base.Omega == nil {
		return nil, fmt.Errorf("schedule: repair needs a feasible base schedule")
	}
	if p.Graph == nil || p.Topology == nil || p.Assignment == nil {
		return nil, fmt.Errorf("schedule: incomplete problem")
	}
	rep := &RepairReport{
		Faults:      fs.String(),
		NewPeak:     base.Peak,
		TauOut:      p.TauIn,
		WindowScale: 1,
	}
	rsp := opt.Trace.Start(SpanRepair, trace.String("faults", rep.Faults))
	defer func() {
		rsp.SetAttrs(trace.String("outcome", rep.Outcome.String()), trace.Int("rerouted", rep.Rerouted))
		rsp.End()
	}()
	if fs.Empty() {
		rep.Outcome = RepairUnaffected
		rep.Result = base
		return rep, nil
	}

	// A dead node that hosts a task kills the application outright: the
	// model has no task migration, so no routing repair applies.
	for t := 0; t < p.Graph.NumTasks(); t++ {
		if fs.NodeFailed(p.Assignment.Node(tfg.TaskID(t))) {
			rep.Outcome = RepairInfeasible
			rep.LostTasks = true
			rep.Reason = fmt.Sprintf("failed node hosts task %d", t)
			return rep, nil
		}
	}

	// Affected messages: their assigned path crosses a failed element.
	for i := range base.Windows {
		if base.Windows[i].Local || len(base.Assignment.Links[i]) == 0 {
			continue
		}
		if _, blocked := fs.Blocks(p.Topology, base.Assignment.Paths[i]); blocked {
			rep.Affected = append(rep.Affected, tfg.MessageID(i))
		}
	}
	if len(rep.Affected) == 0 {
		rep.Outcome = RepairUnaffected
		rep.Result = base
		return rep, nil
	}

	// Rung 1: incremental repair with unaffected reservations pinned.
	r1 := rsp.Start(SpanRung, trace.String("rung", "incremental"), trace.Int("affected", len(rep.Affected)))
	res, incPA, incPeak, err := repairIncremental(p, opt, base, fs, rep.Affected)
	r1.SetAttrs(trace.Bool("feasible", err == nil && res != nil))
	r1.End()
	if err != nil {
		var nre *topology.NoRouteError
		if errors.As(err, &nre) {
			// The residual topology disconnects a message's endpoints;
			// no downstream rung can restore connectivity.
			rep.Outcome = RepairInfeasible
			rep.Reason = nre.Error()
			return rep, nil
		}
		return nil, err
	}
	if res != nil {
		rep.Outcome = RepairIncremental
		rep.Rerouted = len(rep.Affected)
		rep.NewPeak = res.Peak
		rep.Result = res
		return rep, nil
	}

	// Rungs 2-4 all run the full pipeline on the residual topology; one
	// Solver serves every rung, so the fault-aware candidates and LSD
	// baseline are routed once instead of once per (window, rate) trial.
	full := p
	full.Faults = fs
	solver := NewSolver(full)
	lastStage := StageOK
	attempt := func(rung string, tauIn, window float64) (*Result, error) {
		rg := rsp.Start(SpanRung, trace.String("rung", rung),
			trace.Float64("tau_out", tauIn), trace.Float64("window", window))
		defer rg.End()
		fo := opt
		fo.Window = window
		fo.Trace = rg
		r, err := solver.Solve(ctx, tauIn, fo)
		if err != nil {
			return nil, err
		}
		if !r.Feasible {
			lastStage = r.FailStage
			rg.SetAttrs(trace.Bool("feasible", false), trace.String("fail_stage", r.FailStage.String()))
			return nil, nil
		}
		rg.SetAttrs(trace.Bool("feasible", true))
		return r, nil
	}
	countRerouted := func(r *Result) int {
		n := 0
		for i := range r.Assignment.Paths {
			if base.Windows[i].Local {
				continue
			}
			if !r.Assignment.Paths[i].Equal(base.Assignment.Paths[i]) {
				n++
			}
		}
		return n
	}
	finish := func(r *Result, outcome RepairOutcome, tauOut, scale float64) (*RepairReport, error) {
		rep.Outcome = outcome
		rep.Rerouted = countRerouted(r)
		rep.NewPeak = r.Peak
		rep.TauOut = tauOut
		rep.WindowScale = scale
		rep.Result = r
		return rep, nil
	}

	baseWindow := opt.Window
	if baseWindow == 0 {
		baseWindow = p.Timing.TauC()
	}

	// Rung 2: full recompute at the original rate and window. First a
	// warm start — keep the incrementally rerouted paths (known to sit
	// under peak 1) but re-solve the allocation jointly for every
	// message; this rescues the cases where the pinned base allocation
	// boxed a no-slack detour in. Then the from-scratch pipeline.
	if incPA != nil {
		warm := rsp.Start(SpanRung, trace.String("rung", "recompute-warm"))
		r, err := repairReschedule(p, opt, base, fs, incPA, incPeak)
		warm.SetAttrs(trace.Bool("feasible", err == nil && r != nil))
		warm.End()
		if err != nil {
			return nil, err
		}
		if r != nil {
			return finish(r, RepairRecomputed, p.TauIn, 1)
		}
	}
	r, err := attempt("recompute", p.TauIn, baseWindow)
	if err != nil {
		var nre *topology.NoRouteError
		if errors.As(err, &nre) {
			rep.Outcome = RepairInfeasible
			rep.Reason = nre.Error()
			return rep, nil
		}
		return nil, err
	}
	if r != nil {
		return finish(r, RepairRecomputed, p.TauIn, 1)
	}

	// Rung 3: widened windows (latency degrades, τout preserved).
	for _, scale := range windowScales {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := baseWindow * scale
		if w > p.TauIn {
			w = p.TauIn
		}
		r, err := attempt("degraded-window", p.TauIn, w)
		if err != nil {
			return nil, err
		}
		if r != nil {
			return finish(r, RepairDegradedWindow, p.TauIn, w/baseWindow)
		}
	}

	// Rung 4: reduced rate (τout degrades but stays constant).
	for _, f := range rateFactors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := attempt("degraded-rate", p.TauIn*f, baseWindow)
		if err != nil {
			return nil, err
		}
		if r != nil {
			return finish(r, RepairDegradedRate, p.TauIn*f, 1)
		}
	}

	rep.Outcome = RepairInfeasible
	rep.Stage = lastStage
	rep.Reason = "every repair rung rejected the degraded problem"
	return rep, nil
}

// repairIncremental attempts rung 1: reroute only the affected messages
// onto surviving paths chosen by a deterministic greedy peak-minimizing
// sweep, re-allocate them against the residual capacity with the
// unaffected rows pinned, and re-run interval scheduling. A nil Result
// means this rung is infeasible; the chosen assignment and its peak are
// still returned (when the peak clears 1) so the warm-start recompute
// can reuse them. Only structural errors propagate (including
// *topology.NoRouteError for disconnection).
func repairIncremental(p Problem, opt Options, base *Result, fs *topology.FaultSet, affected []tfg.MessageID) (*Result, *PathAssignment, float64, error) {
	top := p.Topology
	ws := base.Windows
	act := base.Activity
	pa := base.Assignment.Clone()

	// Surviving candidates per affected message.
	cands := make(map[tfg.MessageID][]candidate, len(affected))
	for _, mi := range affected {
		m := p.Graph.Messages()[mi]
		paths, err := top.SurvivingPaths(p.Assignment.Node(m.Src), p.Assignment.Node(m.Dst), opt.MaxPaths, fs)
		if err != nil {
			return nil, nil, 0, err
		}
		list := make([]candidate, 0, len(paths))
		for _, pt := range paths {
			links, err := pt.Links(top)
			if err != nil {
				return nil, nil, 0, err
			}
			list = append(list, candidate{path: pt, links: links})
		}
		cands[mi] = list
	}

	// Start every affected message on its first surviving path, then
	// greedily sweep: each pass re-evaluates every affected message
	// against all its candidates and keeps the peak-minimizing choice.
	// Candidate order and message order are fixed, so the result is
	// deterministic.
	for _, mi := range affected {
		c := cands[mi][0]
		pa.SetPath(mi, c.path, c.links)
	}
	ls := NewLoadStateCap(top, pa, ws, act, opt.LinkCap)
	peak := ls.Peak()
	const sweeps = 2
	for s := 0; s < sweeps; s++ {
		improved := false
		for _, mi := range affected {
			list := cands[mi]
			if len(list) < 2 {
				continue
			}
			bestCI, bestPeak := -1, peak
			for ci, c := range list {
				if c.path.Equal(pa.Paths[mi]) {
					continue
				}
				if tp, _, _ := ls.EvalReroute(mi, pa.Links[mi], c.links); tp < bestPeak-timeEps {
					bestCI, bestPeak = ci, tp
				}
			}
			if bestCI >= 0 {
				c := list[bestCI]
				ls.ApplyReroute(mi, pa.Links[mi], c.links)
				pa.SetPath(mi, c.path, c.links)
				peak = bestPeak
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	if peak > 1+timeEps {
		return nil, nil, 0, nil
	}

	// Re-allocate with the unaffected rows pinned, then re-schedule.
	isAffected := make(map[tfg.MessageID]bool, len(affected))
	for _, mi := range affected {
		isAffected[mi] = true
	}
	subsets := MaximalSubsets(pa, ws, act)
	allocation, err := AllocateIntervalsPinnedCap(subsets, pa, ws, act, base.Allocation,
		func(mi tfg.MessageID) bool { return isAffected[mi] }, opt.LinkCap)
	var allocFail *ErrAllocationInfeasible
	if errors.As(err, &allocFail) {
		return nil, pa, peak, nil
	} else if err != nil {
		return nil, nil, 0, err
	}
	res, err := assembleRepairedResult(p, opt, base, fs, pa, peak, allocation)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, pa, peak, nil
}

// repairReschedule is the warm-start half of rung 2: keep the repaired
// path assignment but solve the message-interval allocation jointly for
// every message (no pinning) and re-run interval scheduling. A nil
// Result means infeasible at this assignment.
func repairReschedule(p Problem, opt Options, base *Result, fs *topology.FaultSet, pa *PathAssignment, peak float64) (*Result, error) {
	ws, act := base.Windows, base.Activity
	subsets := MaximalSubsets(pa, ws, act)
	allocation, err := AllocateIntervalsCap(subsets, pa, ws, act, opt.LinkCap)
	var allocFail *ErrAllocationInfeasible
	if errors.As(err, &allocFail) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}
	return assembleRepairedResult(p, opt, base, fs, pa, peak, allocation)
}

// assembleRepairedResult runs interval scheduling over the repaired
// allocation, rebuilds Ω with the base starts and latency, validates it
// against the degraded topology, and packages the Result. A nil Result
// means interval scheduling rejected the allocation.
func assembleRepairedResult(p Problem, opt Options, base *Result, fs *topology.FaultSet, pa *PathAssignment, peak float64, allocation *Allocation) (*Result, error) {
	top := p.Topology
	ws, act := base.Windows, base.Activity
	slices, err := ScheduleIntervals(allocation, pa, act, opt.Engine, 2*opt.SyncMargin)
	var schedFail *ErrIntervalInfeasible
	if errors.As(err, &schedFail) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}

	om := BuildOmega(slices, pa, ws, top.Nodes(), p.TauIn, base.Latency)
	om.Starts = base.Omega.Starts
	if err := om.Validate(top); err != nil {
		return nil, fmt.Errorf("schedule: internal: repaired schedule failed validation: %w", err)
	}
	// Belt and braces: the repaired paths must avoid every failed
	// element — guaranteed by construction, verified anyway.
	for i := range pa.Paths {
		if ws[i].Local || len(pa.Links[i]) == 0 {
			continue
		}
		if err := pa.Paths[i].ValidateFault(top, fs); err != nil {
			return nil, fmt.Errorf("schedule: internal: repaired message %d: %w", i, err)
		}
	}

	return &Result{
		Feasible:   true,
		FailStage:  StageOK,
		Windows:    ws,
		Intervals:  base.Intervals,
		Activity:   act,
		PeakLSD:    base.PeakLSD,
		Peak:       peak,
		Assignment: pa,
		Allocation: allocation,
		Slices:     slices,
		Omega:      om,
		Latency:    base.Latency,
	}, nil
}
