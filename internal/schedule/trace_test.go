package schedule

import (
	"context"
	"reflect"
	"testing"

	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// A traced feasible first-attempt solve must name every DESIGN Fig. 3
// pipeline stage exactly once — the golden contract for everything that
// consumes trace output (srsched -trace, cmd/traceview, ?debug=trace).
func TestTracedSolveNamesEveryPipelineStageOnce(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	root := trace.Start("test")
	res, err := Compute(p, Options{Seed: 1, Trace: root})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("fixture must be feasible, failed at %v", res.FailStage)
	}
	if res.Trace == nil {
		t.Fatal("traced solve returned no Result.Trace")
	}
	if res.Trace.Name != SpanSolve {
		t.Fatalf("Result.Trace root is %q, want %q", res.Trace.Name, SpanSolve)
	}
	for _, stage := range PipelineStages {
		if n := res.Trace.Count(stage); n != 1 {
			t.Errorf("stage %q appears %d times, want exactly 1\nspans: %v", stage, n, res.Trace.Names())
		}
	}
	// Supporting spans of a fresh, non-LSD solve.
	for _, name := range []string{SpanLSDBaseline, SpanCandidates, SpanAttempt, SpanSubsets} {
		if n := res.Trace.Count(name); n != 1 {
			t.Errorf("span %q appears %d times, want 1", name, n)
		}
	}
	// The solve also lands as a subtree of the caller's root.
	if got := root.Tree().Count(SpanSolve); got != 1 {
		t.Errorf("parent span holds %d solve subtrees, want 1", got)
	}
}

// Tracing must not perturb the solve: a traced Result equals the
// untraced Result once the Trace field is cleared.
func TestTracedSolveMatchesUntraced(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	plain, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := trace.Start("test")
	traced, err := Compute(p, Options{Seed: 1, Trace: root})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced solve grew a Trace")
	}
	traced.Trace = nil
	if !reflect.DeepEqual(plain, traced) {
		t.Error("tracing changed the solve result")
	}
}

// An infeasible traced solve still snapshots its tree, with the attempt
// span carrying the failing stage.
func TestTracedInfeasibleSolveRecordsFailStage(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 50) // load 1.0: utilization rejects
	root := trace.Start("test")
	res, err := Compute(p, Options{Seed: 1, Trace: root})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("fixture must be infeasible")
	}
	if res.Trace == nil {
		t.Fatal("infeasible traced solve returned no Result.Trace")
	}
	if res.Trace.Count(SpanAttempt) == 0 {
		t.Error("no attempt span recorded")
	}
	if res.Trace.Count(SpanOmega) != 0 {
		t.Error("infeasible solve must not reach omega emission")
	}
}

// A traced repair emits one repair span with one rung span per ladder
// rung tried, and the nested full-recompute solves hang off their rung.
func TestTracedRepairEmitsRungSpans(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	base, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatal("base must be feasible")
	}
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	// Fail the first link some scheduled message actually crosses so the
	// repair has real work to do.
	var failed topology.LinkID
	found := false
	for i := range base.Windows {
		if base.Windows[i].Local || len(base.Assignment.Links[i]) == 0 {
			continue
		}
		failed = base.Assignment.Links[i][0]
		found = true
		break
	}
	if !found {
		t.Fatal("no routed message in base schedule")
	}
	fs.FailLink(failed)

	root := trace.Start("test")
	o := Options{Seed: 1, Trace: root}
	rep, err := Repair(context.Background(), p, o, base, fs)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	tr := root.Tree()
	if tr.Count(SpanRepair) != 1 {
		t.Fatalf("want 1 repair span, spans: %v", tr.Names())
	}
	if tr.Count(SpanRung) == 0 {
		t.Error("repair recorded no rung spans")
	}
	if rep.Outcome == RepairInfeasible {
		t.Fatalf("single-link fault on a 6-cube must be survivable, got %v", rep.Outcome)
	}
	// Untraced repair on the same inputs must match once traces are
	// stripped from the results.
	plain, err := Repair(context.Background(), p, Options{Seed: 1}, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result != nil {
		rep.Result.Trace = nil
	}
	if !reflect.DeepEqual(plain, rep) {
		t.Error("tracing changed the repair outcome")
	}
}
