package schedule

import (
	"fmt"

	"schedroute/internal/alloc"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// Problem bundles the inputs fixed before scheduled routing runs:
// the application (TFG + timing), the machine (topology), the placement
// (allocation) and the invocation period.
type Problem struct {
	Graph      *tfg.Graph
	Timing     *tfg.Timing
	Topology   *topology.Topology
	Assignment *alloc.Assignment
	// TauIn is the invocation period τin >= τc.
	TauIn float64
	// Faults, when non-empty, restricts routing to the residual
	// topology: the deterministic baseline becomes RouteAround and path
	// candidates come from SurvivingPaths, so every emitted Ω avoids the
	// failed links and nodes. A nil or empty set is the perfect machine.
	Faults *topology.FaultSet
}

// Options tunes the Compute pipeline; the zero value selects the
// defaults used throughout the reproduction.
type Options struct {
	// Seed drives AssignPaths' random restarts (deterministic per seed).
	Seed int64
	// MaxPaths caps the equivalent shortest paths enumerated per message
	// (default 24).
	MaxPaths int
	// MaxOuter is the number of AssignPaths random restarts (default 6).
	MaxOuter int
	// MaxInner caps iterative-improvement steps per restart (default 60).
	MaxInner int
	// Engine selects the interval-scheduling algorithm.
	Engine Engine
	// Window overrides the message window length (default τc, the
	// paper's choice).
	Window float64
	// LSDOnly skips AssignPaths and keeps the deterministic LSD-to-MSD
	// paths; used as the Fig. 5/6 baseline.
	LSDOnly bool
	// SyncMargin implements the paper's Section 7 clock-skew guard:
	// every CP lets at least this interval (at least twice the maximum
	// clock difference) elapse after a message's nominal release before
	// transmission may start, shrinking each window accordingly. The
	// allocation and interval-scheduling formulations see the reduced
	// windows, exactly as the paper prescribes.
	SyncMargin float64
	// Retries implements the feedback arrows of the paper's Fig. 3:
	// when message-interval allocation or interval scheduling rejects a
	// path assignment, AssignPaths is re-run with a fresh seed and the
	// later stages are retried, up to this many times.
	Retries int
	// AllowSharedNodes admits placements with several tasks per node:
	// the mapping chain's "node scheduling" step then packs each
	// application processor's tasks into disjoint sub-intervals of the
	// frame (tfg.PipelinedStartShared), usually at the cost of extra
	// latency. Without it, placements must be exclusive.
	AllowSharedNodes bool
	// Procs bounds the worker goroutines used by the concurrent search
	// entry points (ComputeBestAllocation); 0 selects GOMAXPROCS and 1
	// forces a serial run. Compute itself is single-threaded either way,
	// and results are independent of Procs.
	Procs int
	// CollectStats fills the wall-clock stage timings of Result.Stats.
	// Off by default so Results stay value-comparable across runs (the
	// deterministic counters are filled either way).
	CollectStats bool
	// LinkCap, when non-nil, caps the bandwidth fraction this solve may
	// use on each link: LinkCap[j] ∈ [0, 1] is the share of link j left
	// to this problem, and the utilization scores seen by AssignPaths
	// and the allocation LP are taken relative to that share
	// (U_j / LinkCap[j]; allocation rows get RHS LinkCap[j]·|A_k|). This
	// is how multi-tenant co-scheduling expresses the residual fabric: a
	// tenant solves against the capacity not reserved by earlier
	// admissions, under the guaranteed-rate TDM link-sharing model of
	// DESIGN §10. It must have length Topology.Links(). nil means the
	// whole machine (all ones) and takes a bit-identical fast path; the
	// hot-spot counts U_jk are integer message counts and are not
	// rescaled (each tenant's virtual link preserves slack structure).
	LinkCap []float64

	// Trace, when non-nil, is the parent span the solve records itself
	// under: one child span per pipeline stage (see PipelineStages),
	// carrying durations and small typed attributes. The finished solve
	// subtree is also snapshotted onto Result.Trace. A nil Trace is the
	// disabled tracer — every span site is a nil-receiver no-op, so the
	// hot path pays ~nothing.
	Trace *trace.Span
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxPaths == 0 {
		out.MaxPaths = 24
	}
	if out.MaxOuter == 0 {
		out.MaxOuter = 6
	}
	if out.MaxInner == 0 {
		out.MaxInner = 60
	}
	return out
}

// Span names used by the tracer for the Fig. 3 pipeline and its
// supporting computations. The five PipelineStages are the paper's
// pipeline proper — time bounds (§4) → path assignment (§5.1, Fig. 4)
// → message-interval allocation (§5.2) → interval scheduling (§5.3) →
// Ω emission (§5.4) — and a traced feasible first-attempt solve names
// each exactly once (see DESIGN §7).
const (
	SpanSolve         = "solve"
	SpanTimeBounds    = "time_bounds"
	SpanLSDBaseline   = "lsd_baseline"
	SpanCandidates    = "candidate_search"
	SpanAttempt       = "attempt"
	SpanAssignPaths   = "assign_paths"
	SpanSubsets       = "maximal_subsets"
	SpanAllocation    = "interval_allocation"
	SpanIntervalSched = "interval_scheduling"
	SpanOmega         = "omega_emission"
	SpanRepair        = "repair"
	SpanRung          = "rung"
	SpanAllocSearch   = "allocation_search"
	SpanCandidate     = "candidate"

	// Admission-control stages (multi-tenant co-scheduling, DESIGN §10):
	// one admit span per TenantSet.Admit call, with a residual-capacity
	// computation, one rung span per degradation-ladder attempt, an
	// eviction span per preempted tenant, and a reserve span when the
	// candidate's link shares are committed.
	SpanAdmit         = "admit"
	SpanAdmitResidual = "admit_residual"
	SpanAdmitRung     = "admit_rung"
	SpanAdmitEvict    = "admit_evict"
	SpanAdmitReserve  = "admit_reserve"
)

// PipelineStages lists the Fig. 3 stage span names in pipeline order.
var PipelineStages = []string{
	SpanTimeBounds, SpanAssignPaths, SpanAllocation, SpanIntervalSched, SpanOmega,
}

// Stage identifies where the pipeline stopped.
type Stage int

const (
	// StageOK means a full schedule was computed and validated.
	StageOK Stage = iota
	// StageUtilization means no path assignment reached peak
	// utilization <= 1, so the communication requirements exceed the
	// link capacity (the paper's Fig. 5/6 high-load regime).
	StageUtilization
	// StageAllocation means message-interval allocation was infeasible
	// (the failure marked by arrows in the paper's Fig. 9).
	StageAllocation
	// StageIntervalSchedule means some interval could not be decomposed
	// into link-feasible sets within its length.
	StageIntervalSchedule
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageOK:
		return "ok"
	case StageUtilization:
		return "utilization"
	case StageAllocation:
		return "message-interval allocation"
	case StageIntervalSchedule:
		return "interval scheduling"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Result is the outcome of the full Fig. 3 pipeline. When Feasible is
// false, FailStage says which step rejected the problem; the structural
// fields up to that step remain populated for diagnosis.
type Result struct {
	Feasible  bool
	FailStage Stage

	Windows   []Window
	Intervals *IntervalSet
	Activity  *Activity

	// PeakLSD is the peak utilization under LSD-to-MSD routing;
	// Peak is the peak after AssignPaths (equal when LSDOnly).
	PeakLSD float64
	Peak    float64

	Assignment *PathAssignment
	Allocation *Allocation
	Slices     []Slice
	Omega      *Omega

	// Latency is the windowed pipeline latency Λ_w of every invocation.
	Latency float64

	// Stats instruments the Solve call that produced this result.
	Stats SolveStats

	// Trace is the solve's span tree, set only when Options.Trace was
	// non-nil. Wall-clock spans are inherently run-dependent, so traced
	// Results are not value-comparable; the determinism suite compares
	// Trace structurally (span names) and DeepEquals the rest.
	Trace *trace.Tree
}

// applySyncMargin shrinks every non-local window by the Section 7
// clock-skew margin at the deadline side: transmissions are scheduled
// to finish at least margin before the nominal deadline, leaving room
// for the per-slice guard waits (source CPs delaying up to margin after
// each scheduled start, see internal/cpsim) without missing the real
// deadline.
func applySyncMargin(ws []Window, margin, tauIn float64) error {
	_ = tauIn
	for i := range ws {
		if ws[i].Local {
			continue
		}
		newLen := ws[i].Length - margin
		if newLen < ws[i].Xmit-timeEps {
			return fmt.Errorf("schedule: sync margin %g leaves message %d a window of %g below its transmission time %g", margin, i, newLen, ws[i].Xmit)
		}
		ws[i].Length = newLen
	}
	return nil
}
