package schedule

import (
	"reflect"
	"testing"

	"schedroute/internal/trace"
)

// TestOptionRegistryCoversOptionsStruct pins the drift contract on the
// solver side: every field of Options has exactly one registered
// option name, and no registry entry points at a field that no longer
// exists. Growing Options without growing the registry (or vice versa)
// fails here.
func TestOptionRegistryCoversOptionsStruct(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	seen := map[string]string{} // option name -> field
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name, ok := OptionForField(f.Name)
		if !ok {
			t.Errorf("Options field %s has no registered option; add it to optionForField and a With* constructor", f.Name)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("option name %q registered for both %s and %s", name, prev, f.Name)
		}
		seen[name] = f.Name
	}
	if got, want := len(optionForField), typ.NumField(); got != want {
		t.Errorf("registry has %d entries for %d Options fields (stale field name in optionForField?)", got, want)
	}
	if got, want := len(OptionNames()), typ.NumField(); got != want {
		t.Errorf("OptionNames() has %d names for %d Options fields", got, want)
	}
}

// TestNewOptionsMatchesStructLiteral checks the functional construction
// against the struct literal it shims: same fields, same values, and
// later options override earlier ones.
func TestNewOptionsMatchesStructLiteral(t *testing.T) {
	sp := trace.Start("test")
	defer sp.End()
	caps := []float64{1, 0.5}
	got := NewOptions(
		WithSeed(7),
		WithMaxPaths(8),
		WithMaxOuter(3),
		WithMaxInner(10),
		WithEngine(EngineExact),
		WithWindow(120),
		WithLSDOnly(true),
		WithSyncMargin(0.25),
		WithRetries(2),
		WithSharedNodes(true),
		WithProcs(4),
		WithStats(true),
		WithLinkCap(caps),
		WithTrace(sp),
	)
	want := Options{
		Seed: 7, MaxPaths: 8, MaxOuter: 3, MaxInner: 10,
		Engine: EngineExact, Window: 120, LSDOnly: true, SyncMargin: 0.25,
		Retries: 2, AllowSharedNodes: true, Procs: 4, CollectStats: true,
		LinkCap: caps, Trace: sp,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NewOptions mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Override order: last option wins, matching how a caller would
	// layer defaults then overrides.
	if o := NewOptions(WithSeed(1), WithSeed(9)); o.Seed != 9 {
		t.Errorf("override: Seed = %d, want 9", o.Seed)
	}

	// The shim path: layering options on a legacy literal leaves the
	// untouched fields alone.
	base := Options{Retries: 5, LSDOnly: true}
	out := base.With(WithSeed(3))
	if out.Seed != 3 || out.Retries != 5 || !out.LSDOnly {
		t.Errorf("With on legacy literal: got %+v", out)
	}
	if base.Seed != 0 {
		t.Errorf("With mutated the receiver: %+v", base)
	}
}

// TestEachOptionSetsExactlyOneField applies every registered option
// with a non-zero value and asserts exactly one field moved off the
// zero Options — the "one option, one field" half of the contract.
func TestEachOptionSetsExactlyOneField(t *testing.T) {
	sp := trace.Start("test")
	defer sp.End()
	cases := map[string]Opt{
		"seed":               WithSeed(1),
		"max_paths":          WithMaxPaths(1),
		"max_outer":          WithMaxOuter(1),
		"max_inner":          WithMaxInner(1),
		"engine":             WithEngine(EngineExact),
		"window":             WithWindow(1),
		"lsd_only":           WithLSDOnly(true),
		"sync_margin":        WithSyncMargin(1),
		"retries":            WithRetries(1),
		"allow_shared_nodes": WithSharedNodes(true),
		"procs":              WithProcs(1),
		"stats":              WithStats(true),
		"link_cap":           WithLinkCap([]float64{1}),
		"trace":              WithTrace(sp),
	}
	if got, want := len(cases), reflect.TypeOf(Options{}).NumField(); got != want {
		t.Fatalf("test covers %d options for %d Options fields", got, want)
	}
	for name, op := range cases {
		if op.Name() != name {
			t.Errorf("option registered as %q, constructor table says %q", op.Name(), name)
		}
		o := NewOptions(op)
		v := reflect.ValueOf(o)
		changed := 0
		for i := 0; i < v.NumField(); i++ {
			if !v.Field(i).IsZero() {
				changed++
			}
		}
		if changed != 1 {
			t.Errorf("option %q changed %d fields, want exactly 1 (%+v)", name, changed, o)
		}
	}
}
