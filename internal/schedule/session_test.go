package schedule

import (
	"context"
	"reflect"
	"testing"

	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

func newFaultSet(t *testing.T, p Problem, links ...topology.LinkID) *topology.FaultSet {
	t.Helper()
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	for _, l := range links {
		fs.FailLink(l)
	}
	return fs
}

// TestRepairConsecutiveSameLink is the fault → repair → re-fault
// satellite: the same link dies, returns to service, and dies again.
// The re-fault must reproduce the first repair exactly (the ladder is
// deterministic and always repairs from the base schedule), and the
// session must answer it from the memo.
func TestRepairConsecutiveSameLink(t *testing.T) {
	p, o, base := repairFixture(t)
	failed := firstUsedLink(base)
	if failed < 0 {
		t.Fatal("no message uses any link")
	}
	ses, err := NewRepairSession(p, o, base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	fs := newFaultSet(t, p)
	fs.FailLink(failed)
	rep1, cached, err := ses.Apply(ctx, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first apply must not be a memo hit")
	}
	if rep1.Outcome != RepairIncremental {
		t.Fatalf("single used link fault: outcome %s, want incremental", rep1.Outcome)
	}
	if len(rep1.Affected) == 0 || rep1.Rerouted != len(rep1.Affected) {
		t.Fatalf("report: affected %d, rerouted %d; want equal and non-zero", len(rep1.Affected), rep1.Rerouted)
	}
	if rep1.TauOut != p.TauIn || rep1.WindowScale != 1 {
		t.Fatalf("incremental repair must preserve rate and window: τout %g (τin %g), scale %g",
			rep1.TauOut, p.TauIn, rep1.WindowScale)
	}

	// The link returns to service: the fault set is empty again, and
	// the base schedule is valid as-is.
	fs.RepairLink(failed)
	rep2, _, err := ses.Apply(ctx, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcome != RepairUnaffected || rep2.Result != base {
		t.Fatalf("repaired link: outcome %s, want unaffected reusing the base", rep2.Outcome)
	}

	// Re-fault: same canonical fault population, so the memo answers
	// with the identical report.
	fs.FailLink(failed)
	rep3, cached, err := ses.Apply(ctx, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("re-fault of an already-repaired state must hit the memo")
	}
	if rep3 != rep1 {
		t.Fatal("memo hit must return the original report")
	}

	st := ses.Stats()
	if st.Applies != 3 || st.MemoHits != 1 || st.Incremental != 2 || st.FullSolves != 0 {
		t.Fatalf("stats %+v; want 3 applies, 1 memo hit, 2 incremental, 0 full solves", st)
	}
}

// TestRepairRungEscalation grows the fault set on a two-node pair until
// the ladder is forced off rung 1: with only two disjoint routes
// between the endpoints, the second link fault on the remaining route
// escalates past the pinned-allocation incremental rung.
func TestRepairRungEscalation(t *testing.T) {
	p, o, base := repairFixture(t)
	ses, err := NewRepairSession(p, o, base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fs := newFaultSet(t, p)

	// Keep failing the link the current repaired schedule leans on; the
	// outcome must never get better as faults accumulate, and the
	// report must stay internally consistent at every step.
	prev := RepairUnaffected
	cur := base
	for step := 0; step < 3; step++ {
		failed := firstUsedLink(cur)
		if failed < 0 {
			t.Fatal("no message uses any link")
		}
		fs.FailLink(failed)
		rep, _, err := ses.Apply(ctx, fs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Outcome < prev {
			t.Fatalf("step %d: outcome %s improved on previous %s as faults accumulated", step, rep.Outcome, prev)
		}
		if rep.Outcome == RepairInfeasible {
			if rep.Result != nil || rep.Err() == nil {
				t.Fatal("infeasible report must carry no result and a typed error")
			}
			break
		}
		if rep.Result == nil || rep.Result.Omega == nil {
			t.Fatalf("step %d: feasible outcome %s without a repaired Ω", step, rep.Outcome)
		}
		// The repaired assignment must avoid every failed link.
		for i := range rep.Result.Assignment.Paths {
			if rep.Result.Windows[i].Local {
				continue
			}
			for _, l := range rep.Result.Assignment.Links[i] {
				if fs.LinkFailed(l) {
					t.Fatalf("step %d: repaired message %d still crosses failed link %d", step, i, l)
				}
			}
		}
		prev = rep.Outcome
		cur = rep.Result
	}
	if prev == RepairUnaffected {
		t.Fatal("escalation never left the unaffected rung")
	}
}

// TestSessionMatchesColdRepair pins the session's central contract: the
// report at any fault state reached through a sequence of events is
// bit-identical to a cold schedule.Repair run straight to that state.
func TestSessionMatchesColdRepair(t *testing.T) {
	p, o, base := repairFixture(t)
	failed := firstUsedLink(base)
	if failed < 0 {
		t.Fatal("no message uses any link")
	}
	// A second fault on whatever link the first repair rerouted onto.
	ses, err := NewRepairSession(p, o, base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fs := newFaultSet(t, p, failed)
	rep1, _, err := ses.Apply(ctx, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	second := firstUsedLink(rep1.Result)
	fs.FailLink(second)
	viaSession, _, err := ses.Apply(ctx, fs, nil)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := Repair(ctx, p, o, base, newFaultSet(t, p, failed, second))
	if err != nil {
		t.Fatal(err)
	}
	if viaSession.Outcome != cold.Outcome {
		t.Fatalf("session outcome %s, cold outcome %s", viaSession.Outcome, cold.Outcome)
	}
	if !reflect.DeepEqual(viaSession.Result.Omega, cold.Result.Omega) {
		t.Fatal("session-applied repair diverged from the cold full repair at the same fault state")
	}
	if !reflect.DeepEqual(viaSession.Affected, cold.Affected) ||
		viaSession.Rerouted != cold.Rerouted || viaSession.NewPeak != cold.NewPeak {
		t.Fatalf("report mismatch: session %+v vs cold %+v", viaSession, cold)
	}
}

// TestSessionTraceRecordsLadder checks that a traced Apply records the
// repair ladder under the provided span and that a rung-1 repair never
// runs the full pipeline (no "solve" span anywhere in the tree).
func TestSessionTraceRecordsLadder(t *testing.T) {
	p, o, base := repairFixture(t)
	failed := firstUsedLink(base)
	ses, err := NewRepairSession(p, o, base)
	if err != nil {
		t.Fatal(err)
	}
	sp := trace.Start("watch.repair")
	rep, _, err := ses.Apply(context.Background(), newFaultSet(t, p, failed), sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.End()
	tree := sp.Tree()
	if tree.Count(SpanRepair) != 1 || tree.Count(SpanRung) == 0 {
		t.Fatalf("trace missing repair ladder spans: %v", tree.Names())
	}
	if rep.Outcome == RepairIncremental && tree.Count(SpanSolve) != 0 {
		t.Fatalf("incremental repair must not run a full solve; trace: %v", tree.Names())
	}
}

// TestSessionConcurrentApplies hammers one session from many
// goroutines under -race: shared memoized reports, one state each.
func TestSessionConcurrentApplies(t *testing.T) {
	p, o, base := repairFixture(t)
	failed := firstUsedLink(base)
	ses, err := NewRepairSession(p, o, base)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	done := make(chan *RepairReport, workers)
	for w := 0; w < workers; w++ {
		go func() {
			rep, _, err := ses.Apply(context.Background(), newFaultSet(t, p, failed), nil)
			if err != nil {
				t.Error(err)
			}
			done <- rep
		}()
	}
	first := <-done
	for w := 1; w < workers; w++ {
		if rep := <-done; rep != first {
			t.Fatal("concurrent applies of one fault state must share one memoized report")
		}
	}
	if st := ses.Stats(); st.Applies != workers {
		t.Fatalf("applies %d, want %d", st.Applies, workers)
	}
}
