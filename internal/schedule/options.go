package schedule

import (
	"sort"

	"schedroute/internal/trace"
)

// This file is the documented construction surface for Options. The
// struct literal grew one field per PR — LinkCap, Trace, CollectStats,
// Procs — and callers ended up passing half-zeroed structs with no
// record of which knobs they meant to set. The functional-options
// layer fixes that without breaking anyone: Options stays a plain
// struct (the compatibility shim — every existing literal keeps
// compiling and behaving identically), while new call sites compose
// named options:
//
//	opts := schedule.NewOptions(
//		schedule.WithSeed(7),
//		schedule.WithWindow(120),
//		schedule.WithStats(true),
//	)
//
// Every option is registered under a stable name, one name per
// Options field, and the registry is introspectable via OptionNames
// and OptionForField. That registry is what keeps the wire schema
// honest: pkg/schedroute's drift test walks the wire Options fields
// and asserts each maps to exactly one registered solver option, so a
// field added to either side without the other fails the build's test
// run instead of silently desynchronizing the API surfaces.

// Opt is one named solver option: a documented setter for exactly one
// field of Options. Construct with the With* functions; apply with
// NewOptions or Options.With.
type Opt struct {
	name  string
	apply func(*Options)
}

// Name reports the option's stable registry name (e.g. "seed",
// "window", "link_cap").
func (o Opt) Name() string { return o.name }

// NewOptions builds an Options value from named options. The zero
// Options selects the pipeline defaults, exactly as the struct literal
// always has; later options override earlier ones.
func NewOptions(opts ...Opt) Options {
	var out Options
	return out.With(opts...)
}

// With returns a copy of o with the given options applied — the
// migration path for callers holding a legacy struct literal who want
// to layer named options on top.
func (o Options) With(opts ...Opt) Options {
	for _, op := range opts {
		if op.apply != nil {
			op.apply(&o)
		}
	}
	return o
}

// optionForField maps each Options struct field to its registered
// option name. The options_test drift check walks Options by
// reflection and fails when a field is missing here, so the table
// cannot rot as the struct grows.
var optionForField = map[string]string{
	"Seed":             "seed",
	"MaxPaths":         "max_paths",
	"MaxOuter":         "max_outer",
	"MaxInner":         "max_inner",
	"Engine":           "engine",
	"Window":           "window",
	"LSDOnly":          "lsd_only",
	"SyncMargin":       "sync_margin",
	"Retries":          "retries",
	"AllowSharedNodes": "allow_shared_nodes",
	"Procs":            "procs",
	"CollectStats":     "stats",
	"LinkCap":          "link_cap",
	"Trace":            "trace",
}

// OptionNames returns the sorted registry of option names, one per
// Options field.
func OptionNames() []string {
	names := make([]string, 0, len(optionForField))
	for _, n := range optionForField {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OptionForField reports the registered option name for an Options
// struct field, for the cross-package drift tests.
func OptionForField(field string) (string, bool) {
	n, ok := optionForField[field]
	return n, ok
}

// WithSeed sets the AssignPaths random-restart seed.
func WithSeed(seed int64) Opt {
	return Opt{name: "seed", apply: func(o *Options) { o.Seed = seed }}
}

// WithMaxPaths caps the equivalent shortest paths enumerated per
// message (0 = the default 24).
func WithMaxPaths(n int) Opt {
	return Opt{name: "max_paths", apply: func(o *Options) { o.MaxPaths = n }}
}

// WithMaxOuter sets the number of AssignPaths random restarts (0 = 6).
func WithMaxOuter(n int) Opt {
	return Opt{name: "max_outer", apply: func(o *Options) { o.MaxOuter = n }}
}

// WithMaxInner caps iterative-improvement steps per restart (0 = 60).
func WithMaxInner(n int) Opt {
	return Opt{name: "max_inner", apply: func(o *Options) { o.MaxInner = n }}
}

// WithEngine selects the interval-scheduling algorithm.
func WithEngine(e Engine) Opt {
	return Opt{name: "engine", apply: func(o *Options) { o.Engine = e }}
}

// WithWindow overrides the message window length (0 = τc, the paper's
// choice). Shorter windows lower the pipeline latency Λw at the cost
// of tighter scheduling; the explore API's latency objective is driven
// through this knob.
func WithWindow(w float64) Opt {
	return Opt{name: "window", apply: func(o *Options) { o.Window = w }}
}

// WithLSDOnly keeps the deterministic LSD-to-MSD paths, skipping
// AssignPaths (the Fig. 5/6 baseline).
func WithLSDOnly(v bool) Opt {
	return Opt{name: "lsd_only", apply: func(o *Options) { o.LSDOnly = v }}
}

// WithSyncMargin sets the Section 7 clock-skew guard interval.
func WithSyncMargin(m float64) Opt {
	return Opt{name: "sync_margin", apply: func(o *Options) { o.SyncMargin = m }}
}

// WithRetries sets the Fig. 3 feedback retries on downstream failure.
func WithRetries(n int) Opt {
	return Opt{name: "retries", apply: func(o *Options) { o.Retries = n }}
}

// WithSharedNodes admits placements with several tasks per node
// (AP-sharing node schedules).
func WithSharedNodes(v bool) Opt {
	return Opt{name: "allow_shared_nodes", apply: func(o *Options) { o.AllowSharedNodes = v }}
}

// WithProcs bounds the worker goroutines of the concurrent search
// entry points (0 = GOMAXPROCS, 1 = serial).
func WithProcs(n int) Opt {
	return Opt{name: "procs", apply: func(o *Options) { o.Procs = n }}
}

// WithStats enables wall-clock per-stage timings in Result.Stats. It
// is the single solver option behind both wire spellings ("stats" and
// "collect_stats" — a documented alias pair).
func WithStats(v bool) Opt {
	return Opt{name: "stats", apply: func(o *Options) { o.CollectStats = v }}
}

// WithLinkCap caps the per-link bandwidth share this solve may use
// (the multi-tenant residual fabric; nil means the whole machine).
func WithLinkCap(caps []float64) Opt {
	return Opt{name: "link_cap", apply: func(o *Options) { o.LinkCap = caps }}
}

// WithTrace records the solve under the given parent span.
func WithTrace(sp *trace.Span) Opt {
	return Opt{name: "trace", apply: func(o *Options) { o.Trace = sp }}
}
