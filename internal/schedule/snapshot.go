package schedule

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"schedroute/internal/errkind"
	"schedroute/internal/topology"
)

// A solver snapshot serializes the τin-independent state a Solver has
// derived for one problem structure — the fault-aware LSD baseline,
// the candidate path sets per MaxPaths, the static task-start tables,
// and the validation outcomes — so a restarting daemon or a newly
// provisioned replica can hydrate a warm Solver from disk or a peer
// instead of re-deriving everything from scratch. A hydrated Solver is
// indistinguishable from one that did the cold derivation itself: the
// cached values are exactly the values a fresh run would rebuild, so
// Solve output stays byte-identical (pinned by the round-trip tests).
//
// Only successful derivations are snapshotted. A cached error (a
// failed validation, a disconnected baseline) is cheap to rediscover
// and error values do not survive serialization faithfully, so errored
// state is simply left cold and recomputed on demand.

// SolverSnapshotSchemaVersion is the schema_version written by
// EncodeSolverSnapshot. DecodeSolverSnapshot accepts exactly this
// version; anything else is rejected with an errkind.ErrUnknownVersion
// error so a stale replica fails loudly instead of misreading a future
// layout. Snapshot stores key their entries by structure key AND this
// version, so a schema bump naturally invalidates old files.
const SolverSnapshotSchemaVersion = 1

type solverSnapJSON struct {
	SchemaVersion int `json:"schema_version"`
	// StructureKey is the caller-supplied identity of the problem
	// structure (the service uses schedroute.Problem.StructureKey).
	// Decode refuses a snapshot whose key differs from the expected one.
	StructureKey string `json:"structure_key"`
	// Shape fingerprint: a snapshot for a different graph or machine is
	// rejected even when the keys collide.
	Tasks    int    `json:"tasks"`
	Messages int    `json:"messages"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	Faults   string `json:"faults,omitempty"`

	// Validated lists the strictness levels Assignment.Validate passed.
	Validated []bool `json:"validated,omitempty"`
	// Starts are the static task-start tables per window length;
	// SharedStarts the AP-sharing variants per (window, τin).
	Starts       []startsSnapJSON       `json:"starts,omitempty"`
	SharedStarts []sharedStartsSnapJSON `json:"shared_starts,omitempty"`
	// LSD is the fault-aware deterministic baseline assignment, as
	// per-message node paths (links are re-derived on decode).
	LSD *assignSnapJSON `json:"lsd,omitempty"`
	// Candidates are the per-MaxPaths equivalent-path sets.
	Candidates []candsSnapJSON `json:"candidates,omitempty"`
}

type startsSnapJSON struct {
	Window float64   `json:"window"`
	Starts []float64 `json:"starts"`
}

type sharedStartsSnapJSON struct {
	Window float64   `json:"window"`
	TauIn  float64   `json:"tau_in"`
	Starts []float64 `json:"starts"`
}

type assignSnapJSON struct {
	// Paths[i] is message i's node sequence; empty for local messages.
	Paths [][]int `json:"paths"`
}

type candsSnapJSON struct {
	MaxPaths int `json:"max_paths"`
	// PathsOf[i] lists message i's alternative paths as node sequences,
	// in heuristic iteration order.
	PathsOf [][][]int `json:"paths_of"`
}

func pathToSnap(p topology.Path) []int {
	out := make([]int, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = int(n)
	}
	return out
}

func assignToSnap(pa *PathAssignment) *assignSnapJSON {
	sj := &assignSnapJSON{Paths: make([][]int, len(pa.Paths))}
	for i, p := range pa.Paths {
		sj.Paths[i] = pathToSnap(p)
	}
	return sj
}

// faultsSig is the snapshot fingerprint of the problem's fault set.
func faultsSig(fs *topology.FaultSet) string {
	if fs == nil || fs.Empty() {
		return ""
	}
	return fs.String()
}

// EncodeSolverSnapshot writes the Solver's cached τin-independent
// structure as schema-versioned JSON. structureKey is the caller's
// identity for the problem structure and is embedded in the artifact;
// DecodeSolverSnapshot verifies it. Safe to call concurrently with
// Solve — the cache is copied under the Solver's lock (the cached
// slices are immutable once stored, so only the map walk needs it).
func EncodeSolverSnapshot(w io.Writer, s *Solver, structureKey string) error {
	if s.p.Graph == nil || s.p.Timing == nil || s.p.Topology == nil || s.p.Assignment == nil {
		return fmt.Errorf("schedule: encode solver snapshot: incomplete problem")
	}
	sj := solverSnapJSON{
		SchemaVersion: SolverSnapshotSchemaVersion,
		StructureKey:  structureKey,
		Tasks:         s.p.Graph.NumTasks(),
		Messages:      s.p.Graph.NumMessages(),
		Nodes:         s.p.Topology.Nodes(),
		Links:         s.p.Topology.Links(),
		Faults:        faultsSig(s.p.Faults),
	}

	s.mu.Lock()
	for level, e := range s.validated {
		if *e == nil {
			sj.Validated = append(sj.Validated, level)
		}
	}
	for window, st := range s.starts {
		sj.Starts = append(sj.Starts, startsSnapJSON{Window: window, Starts: st})
	}
	for key, e := range s.sharedStarts {
		if e.err == nil {
			sj.SharedStarts = append(sj.SharedStarts, sharedStartsSnapJSON{Window: key[0], TauIn: key[1], Starts: e.starts})
		}
	}
	if s.lsdDone && s.lsdErr == nil {
		sj.LSD = assignToSnap(s.lsd)
	}
	for maxPaths, e := range s.cands {
		if e.err != nil {
			continue
		}
		cj := candsSnapJSON{MaxPaths: maxPaths, PathsOf: make([][][]int, len(e.c.PathsOf))}
		for i, list := range e.c.PathsOf {
			if len(list) == 0 {
				continue
			}
			paths := make([][]int, len(list))
			for k, cand := range list {
				paths[k] = pathToSnap(cand.path)
			}
			cj.PathsOf[i] = paths
		}
		sj.Candidates = append(sj.Candidates, cj)
	}
	s.mu.Unlock()

	// Map iteration above is unordered; sort every table so the same
	// solver state always serializes to the same bytes (snapshot files
	// diff cleanly and tests can compare artifacts directly).
	sort.Slice(sj.Validated, func(i, j int) bool { return !sj.Validated[i] && sj.Validated[j] })
	sort.Slice(sj.Starts, func(i, j int) bool { return sj.Starts[i].Window < sj.Starts[j].Window })
	sort.Slice(sj.SharedStarts, func(i, j int) bool {
		a, b := sj.SharedStarts[i], sj.SharedStarts[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		return a.TauIn < b.TauIn
	})
	sort.Slice(sj.Candidates, func(i, j int) bool { return sj.Candidates[i].MaxPaths < sj.Candidates[j].MaxPaths })

	enc := json.NewEncoder(w)
	return enc.Encode(sj)
}

func badSnapshot(format string, args ...any) error {
	return errkind.Mark(fmt.Errorf("schedule: decode solver snapshot: "+format, args...), errkind.ErrBadInput)
}

// snapToPath rebuilds one path and its link sequence, validating every
// node id and the adjacency of consecutive hops against the topology.
func snapToPath(top *topology.Topology, nodes []int) (topology.Path, []topology.LinkID, error) {
	p := topology.Path{Nodes: make([]topology.NodeID, len(nodes))}
	for i, n := range nodes {
		if n < 0 || n >= top.Nodes() {
			return topology.Path{}, nil, badSnapshot("path node %d out of range [0,%d)", n, top.Nodes())
		}
		p.Nodes[i] = topology.NodeID(n)
	}
	links, err := p.Links(top)
	if err != nil {
		return topology.Path{}, nil, badSnapshot("%v", err)
	}
	return p, links, nil
}

// DecodeSolverSnapshot reads a snapshot back into a warm Solver for
// problem p. structureKey, when non-empty, must match the key embedded
// in the artifact; the snapshot's shape fingerprint (task, message,
// node, link counts and the fault signature) must match p either way.
// An unknown schema_version is rejected with errkind.ErrUnknownVersion;
// any structural mismatch or malformed content with errkind.ErrBadInput.
//
// The hydrated Solver's build counters (SolverCacheStats) stay zero:
// hydration is not a derivation, and the fleet tests assert exactly
// that a restarted replica's first solve performs no structure builds.
func DecodeSolverSnapshot(r io.Reader, p Problem, structureKey string) (*Solver, error) {
	if p.Graph == nil || p.Timing == nil || p.Topology == nil || p.Assignment == nil {
		return nil, fmt.Errorf("schedule: decode solver snapshot: incomplete problem")
	}
	var sj solverSnapJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, badSnapshot("%v", err)
	}
	if sj.SchemaVersion != SolverSnapshotSchemaVersion {
		return nil, errkind.Mark(
			fmt.Errorf("schedule: decode solver snapshot: schema_version %d not supported (this build reads %d)",
				sj.SchemaVersion, SolverSnapshotSchemaVersion),
			errkind.ErrUnknownVersion)
	}
	if structureKey != "" && sj.StructureKey != structureKey {
		return nil, badSnapshot("structure key %q does not match expected %q", sj.StructureKey, structureKey)
	}
	if sj.Tasks != p.Graph.NumTasks() || sj.Messages != p.Graph.NumMessages() {
		return nil, badSnapshot("graph shape %d tasks/%d messages does not match problem %d/%d",
			sj.Tasks, sj.Messages, p.Graph.NumTasks(), p.Graph.NumMessages())
	}
	if sj.Nodes != p.Topology.Nodes() || sj.Links != p.Topology.Links() {
		return nil, badSnapshot("topology shape %d nodes/%d links does not match problem %d/%d",
			sj.Nodes, sj.Links, p.Topology.Nodes(), p.Topology.Links())
	}
	if sig := faultsSig(p.Faults); sj.Faults != sig {
		return nil, badSnapshot("fault set %q does not match problem %q", sj.Faults, sig)
	}

	s := NewSolver(p)
	var nilErr error
	for _, level := range sj.Validated {
		s.validated[level] = &nilErr
	}
	for _, st := range sj.Starts {
		if len(st.Starts) != sj.Tasks {
			return nil, badSnapshot("starts table for window %g has %d entries, want %d", st.Window, len(st.Starts), sj.Tasks)
		}
		s.starts[st.Window] = st.Starts
	}
	for _, st := range sj.SharedStarts {
		if len(st.Starts) != sj.Tasks {
			return nil, badSnapshot("shared starts table for window %g has %d entries, want %d", st.Window, len(st.Starts), sj.Tasks)
		}
		s.sharedStarts[[2]float64{st.Window, st.TauIn}] = &sharedStartsEntry{starts: st.Starts}
	}
	if sj.LSD != nil {
		if len(sj.LSD.Paths) != sj.Messages {
			return nil, badSnapshot("lsd covers %d messages, want %d", len(sj.LSD.Paths), sj.Messages)
		}
		pa := &PathAssignment{
			Paths: make([]topology.Path, sj.Messages),
			Links: make([][]topology.LinkID, sj.Messages),
		}
		for i, nodes := range sj.LSD.Paths {
			if len(nodes) == 0 {
				continue
			}
			path, links, err := snapToPath(p.Topology, nodes)
			if err != nil {
				return nil, err
			}
			pa.Paths[i] = path
			pa.Links[i] = links
		}
		s.lsd = pa
		s.lsdDone = true
	}
	for _, cj := range sj.Candidates {
		if cj.MaxPaths < 1 {
			return nil, badSnapshot("candidate set with max_paths %d", cj.MaxPaths)
		}
		if len(cj.PathsOf) != sj.Messages {
			return nil, badSnapshot("candidates for max_paths %d cover %d messages, want %d", cj.MaxPaths, len(cj.PathsOf), sj.Messages)
		}
		c := &Candidates{PathsOf: make([][]candidate, sj.Messages)}
		for i, paths := range cj.PathsOf {
			if len(paths) == 0 {
				continue
			}
			list := make([]candidate, len(paths))
			for k, nodes := range paths {
				path, links, err := snapToPath(p.Topology, nodes)
				if err != nil {
					return nil, err
				}
				list[k] = candidate{path: path, links: links}
			}
			c.PathsOf[i] = list
		}
		s.cands[cj.MaxPaths] = &candsEntry{c: c}
	}
	return s, nil
}
