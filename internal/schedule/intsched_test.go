package schedule

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// fakeAssignment builds a PathAssignment where message i uses exactly
// the given links (no real topology needed for the decomposition
// tests).
func fakeAssignment(linkSets [][]topology.LinkID) *PathAssignment {
	pa := &PathAssignment{
		Paths: make([]topology.Path, len(linkSets)),
		Links: linkSets,
	}
	return pa
}

func TestConflictMatrix(t *testing.T) {
	pa := fakeAssignment([][]topology.LinkID{
		{0, 1},
		{1, 2},
		{3},
	})
	msgs := []tfg.MessageID{0, 1, 2}
	c := conflictMatrix(msgs, pa)
	if !c[0][1] || !c[1][0] {
		t.Error("messages sharing link 1 must conflict")
	}
	if c[0][2] || c[1][2] {
		t.Error("disjoint messages must not conflict")
	}
	if c[0][0] || c[1][1] {
		t.Error("no self conflicts")
	}
}

// mapConflictMatrix is the original map[LinkID]bool implementation,
// kept as the reference the bitset version is property-checked against.
func mapConflictMatrix(msgs []tfg.MessageID, pa *PathAssignment) [][]bool {
	n := len(msgs)
	linkSets := make([]map[topology.LinkID]bool, n)
	for i, mi := range msgs {
		linkSets[i] = map[topology.LinkID]bool{}
		for _, l := range pa.Links[mi] {
			linkSets[i][l] = true
		}
	}
	c := make([][]bool, n)
	for i := range c {
		c[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for l := range linkSets[i] {
				if linkSets[j][l] {
					c[i][j], c[j][i] = true, true
					break
				}
			}
		}
	}
	return c
}

func TestConflictMatrixMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		linkSets := make([][]topology.LinkID, n)
		msgs := make([]tfg.MessageID, n)
		for i := 0; i < n; i++ {
			msgs[i] = tfg.MessageID(i)
			hops := rng.Intn(6)
			for h := 0; h < hops; h++ {
				// Span several bitset words to catch word-index bugs.
				linkSets[i] = append(linkSets[i], topology.LinkID(rng.Intn(160)))
			}
		}
		pa := fakeAssignment(linkSets)
		got := conflictMatrix(msgs, pa)
		want := mapConflictMatrix(msgs, pa)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d: conflict[%d][%d] = %v, map reference says %v (links %v vs %v)",
						trial, i, j, got[i][j], want[i][j], linkSets[i], linkSets[j])
				}
			}
		}
	}
}

func TestErrIntervalInfeasibleFormat(t *testing.T) {
	err := &ErrIntervalInfeasible{Interval: 2, Need: 10.0 / 3.0, Have: 3.0000001}
	// %.6g fixed precision keeps need/have stably comparable across
	// parallel failure logs.
	want := "schedule: interval 2 needs 3.33333 but only has 3"
	if got := err.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestGreedyDecomposeDisjointRunsTogether(t *testing.T) {
	pa := fakeAssignment([][]topology.LinkID{{0}, {1}, {2}})
	msgs := []tfg.MessageID{0, 1, 2}
	demands := map[tfg.MessageID]float64{0: 5, 1: 5, 2: 5}
	conf := conflictMatrix(msgs, pa)
	sets, durations := greedyDecompose(msgs, demands, conf)
	total := 0.0
	for _, d := range durations {
		total += d
	}
	if math.Abs(total-5) > 1e-9 {
		t.Errorf("disjoint messages should run fully parallel: total %g, want 5", total)
	}
	if len(sets) != 1 || len(sets[0]) != 3 {
		t.Errorf("sets = %v", sets)
	}
}

func TestGreedyDecomposeConflictSerializes(t *testing.T) {
	pa := fakeAssignment([][]topology.LinkID{{0}, {0}})
	msgs := []tfg.MessageID{0, 1}
	demands := map[tfg.MessageID]float64{0: 4, 1: 6}
	conf := conflictMatrix(msgs, pa)
	_, durations := greedyDecompose(msgs, demands, conf)
	total := 0.0
	for _, d := range durations {
		total += d
	}
	if math.Abs(total-10) > 1e-9 {
		t.Errorf("conflicting messages serialize: total %g, want 10", total)
	}
}

func TestExactDecomposeBeatsNaive(t *testing.T) {
	// Triangle-free case where exact packs perfectly: messages A{0},
	// B{1}, C{0,1}. A and B run together; C alone. Total = max(a,b)+c.
	pa := fakeAssignment([][]topology.LinkID{{0}, {1}, {0, 1}})
	msgs := []tfg.MessageID{0, 1, 2}
	demands := map[tfg.MessageID]float64{0: 3, 1: 5, 2: 2}
	conf := conflictMatrix(msgs, pa)
	sets, durations, err := exactDecompose(msgs, demands, conf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, d := range durations {
		total += d
	}
	if total > 7+1e-6 {
		t.Errorf("exact total %g, want <= 7", total)
	}
	// Every returned set must be independent.
	for _, set := range sets {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if conf[set[i]][set[j]] {
					t.Fatalf("set %v not link-feasible", set)
				}
			}
		}
	}
}

func TestMaximalIndependentSets(t *testing.T) {
	// Path graph 0-1-2 (conflicts 0~1, 1~2): MIS = {0,2}, {1}.
	conf := [][]bool{
		{false, true, false},
		{true, false, true},
		{false, true, false},
	}
	mis := maximalIndependentSets(conf, 100)
	if len(mis) != 2 {
		t.Fatalf("got %d sets: %v", len(mis), mis)
	}
	var keys []string
	for _, s := range mis {
		sort.Ints(s)
		key := ""
		for _, v := range s {
			key += string(rune('0' + v))
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	if keys[0] != "02" || keys[1] != "1" {
		t.Errorf("sets = %v", keys)
	}
}

func TestMaximalIndependentSetsCap(t *testing.T) {
	// 2n vertices with no conflicts between pairs... use an empty
	// conflict graph on 5 vertices: exactly one MIS (everything).
	n := 5
	conf := make([][]bool, n)
	for i := range conf {
		conf[i] = make([]bool, n)
	}
	mis := maximalIndependentSets(conf, 100)
	if len(mis) != 1 || len(mis[0]) != n {
		t.Errorf("empty conflict graph should have one maximal set, got %v", mis)
	}
	// A perfect matching's complement graph has 2^n MIS; cap must trip.
	m := 20
	conf = make([][]bool, m)
	for i := range conf {
		conf[i] = make([]bool, m)
	}
	for i := 0; i < m; i += 2 {
		conf[i][i+1] = true
		conf[i+1][i] = true
	}
	if got := maximalIndependentSets(conf, 64); got != nil {
		t.Errorf("cap should have tripped, got %d sets", len(got))
	}
}

func TestScheduleOneRejectsOverflow(t *testing.T) {
	// Two conflicting no-slack messages in one interval cannot fit.
	ws := []Window{
		{Release: 0, Length: 10, Xmit: 8},
		{Release: 0, Length: 10, Xmit: 8},
	}
	set := &IntervalSet{TauIn: 10, Endpoints: []float64{0, 10}}
	act := BuildActivity(ws, set)
	pa := fakeAssignment([][]topology.LinkID{{0}, {0}})
	al := &Allocation{P: [][]float64{{8}, {8}}}
	_, err := ScheduleIntervals(al, pa, act, EngineAuto, 0)
	if err == nil {
		t.Fatal("16 µs of conflicting traffic cannot fit a 10 µs interval")
	}
	var infeasible *ErrIntervalInfeasible
	if !errors.As(err, &infeasible) {
		t.Fatalf("error type %T, want ErrIntervalInfeasible via errors.As", err)
	}
	if infeasible.Interval != 0 || infeasible.Need <= infeasible.Have {
		t.Errorf("unexpected fields: %+v", infeasible)
	}
	if !strings.Contains(err.Error(), "needs 16 but only has 10") {
		t.Errorf("message %q lacks fixed-precision need/have", err.Error())
	}
}

func TestScheduleIntervalsTrimsExactly(t *testing.T) {
	ws := []Window{
		{Release: 0, Length: 10, Xmit: 3},
		{Release: 0, Length: 10, Xmit: 7},
	}
	set := &IntervalSet{TauIn: 10, Endpoints: []float64{0, 10}}
	act := BuildActivity(ws, set)
	pa := fakeAssignment([][]topology.LinkID{{0}, {0}})
	al := &Allocation{P: [][]float64{{3}, {7}}}
	slices, err := ScheduleIntervals(al, pa, act, EngineAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[tfg.MessageID]float64{}
	for _, sl := range slices {
		for i, m := range sl.Msgs {
			got[m] += sl.Until[i] - sl.Start
		}
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-7) > 1e-9 {
		t.Errorf("transmitted %v, want 3 and 7", got)
	}
}

// benchConflictFixture builds a 20-message fixture with 4-hop paths
// over 160 links, the shape the interval scheduler sees on the 64-node
// networks.
func benchConflictFixture() ([]tfg.MessageID, *PathAssignment) {
	rng := rand.New(rand.NewSource(9))
	n := 20
	linkSets := make([][]topology.LinkID, n)
	msgs := make([]tfg.MessageID, n)
	for i := 0; i < n; i++ {
		msgs[i] = tfg.MessageID(i)
		for h := 0; h < 4; h++ {
			linkSets[i] = append(linkSets[i], topology.LinkID(rng.Intn(160)))
		}
	}
	return msgs, fakeAssignment(linkSets)
}

// The allocs/op delta of these two is the conflictMatrix hot-path
// saving recorded in docs/results-latest.txt.
func BenchmarkConflictMatrixBitset(b *testing.B) {
	msgs, pa := benchConflictFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		conflictMatrix(msgs, pa)
	}
}

func BenchmarkConflictMatrixMapReference(b *testing.B) {
	msgs, pa := benchConflictFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mapConflictMatrix(msgs, pa)
	}
}

// Property: greedy decomposition always meets demands exactly and every
// emitted set is independent.
func TestQuickGreedyDecompose(t *testing.T) {
	f := func(seedLinks []uint8, seedDemands []uint8) bool {
		n := len(seedLinks)
		if n == 0 || n > 8 {
			return true
		}
		linkSets := make([][]topology.LinkID, n)
		msgs := make([]tfg.MessageID, n)
		demands := map[tfg.MessageID]float64{}
		for i := 0; i < n; i++ {
			linkSets[i] = []topology.LinkID{topology.LinkID(seedLinks[i] % 4)}
			msgs[i] = tfg.MessageID(i)
			d := 1.0
			if i < len(seedDemands) {
				d = float64(seedDemands[i]%10) + 1
			}
			demands[msgs[i]] = d
		}
		pa := fakeAssignment(linkSets)
		conf := conflictMatrix(msgs, pa)
		sets, durations := greedyDecompose(msgs, demands, conf)
		served := make([]float64, n)
		for si, set := range sets {
			for i := 0; i < len(set); i++ {
				for j := i + 1; j < len(set); j++ {
					if conf[set[i]][set[j]] {
						return false
					}
				}
				served[set[i]] += durations[si]
			}
		}
		for i := 0; i < n; i++ {
			if math.Abs(served[i]-demands[msgs[i]]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
