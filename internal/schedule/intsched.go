package schedule

import (
	"fmt"
	"sort"

	"schedroute/internal/lp"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Slice is one link-feasible set scheduled for a sub-range of an
// interval: every message in Msgs transmits simultaneously during
// [Start, End) of the frame, each on its full path. Per-message
// transmission may end earlier than End (a trimmed tail keeps the links
// reserved but idle); Until[i] records message Msgs[i]'s actual
// transmission end.
type Slice struct {
	Interval int
	Start    float64
	End      float64
	Msgs     []tfg.MessageID
	Until    []float64
}

// Engine selects the interval-scheduling algorithm.
type Engine int

const (
	// EngineAuto uses the exact LP for small conflict sets and the
	// greedy decomposition otherwise.
	EngineAuto Engine = iota
	// EngineGreedy always uses the greedy decomposition.
	EngineGreedy
	// EngineExact always uses the LP over maximal link-feasible sets.
	EngineExact
)

// exactLimit is the conflict-set size above which EngineAuto switches
// from the exact LP to the greedy decomposition.
const exactLimit = 16

// ErrIntervalInfeasible is returned when the messages allocated to an
// interval need more simultaneous-link time than the interval provides —
// the paper's interval-scheduling failure mode.
type ErrIntervalInfeasible struct {
	Interval int
	Need     float64
	Have     float64
}

func (e *ErrIntervalInfeasible) Error() string {
	// Fixed precision keeps failure logs from parallel runs stably
	// comparable across candidate orderings.
	return fmt.Sprintf("schedule: interval %d needs %.6g but only has %.6g", e.Interval, e.Need, e.Have)
}

// ScheduleIntervals performs Section 5.3 interval scheduling for every
// interval: the messages with nonzero allocation are partitioned into
// link-feasible sets (Definition 5.5 — no two members share a link)
// whose total duration fits the interval. Slices are returned in frame
// order. A non-zero gap reserves idle time after every slice so that
// guard-holding CPs (see internal/cpsim) never collide with the link's
// next reservation; it should be twice the synchronization margin.
func ScheduleIntervals(allocation *Allocation, pa *PathAssignment, act *Activity, engine Engine, gap float64) ([]Slice, error) {
	var out []Slice
	K := act.Intervals.K()
	for k := 0; k < K; k++ {
		var msgs []tfg.MessageID
		demands := map[tfg.MessageID]float64{}
		for i, row := range allocation.P {
			if row == nil {
				continue
			}
			if row[k] > timeEps {
				msgs = append(msgs, tfg.MessageID(i))
				demands[tfg.MessageID(i)] = row[k]
			}
		}
		if len(msgs) == 0 {
			continue
		}
		sort.Slice(msgs, func(a, b int) bool { return msgs[a] < msgs[b] })
		slices, err := scheduleOne(k, msgs, demands, pa, act, engine, gap)
		if err != nil {
			return nil, err
		}
		out = append(out, slices...)
	}
	return out, nil
}

// conflictMatrix[i][j] is true when msgs[i] and msgs[j] share a link.
// Link sets are LinkSet bitsets, so each pairwise test is a word-wise
// AND rather than a map probe per link.
func conflictMatrix(msgs []tfg.MessageID, pa *PathAssignment) [][]bool {
	n := len(msgs)
	maxLink := topology.LinkID(-1)
	for _, mi := range msgs {
		for _, l := range pa.Links[mi] {
			if l > maxLink {
				maxLink = l
			}
		}
	}
	linkSets := make([]topology.LinkSet, n)
	for i, mi := range msgs {
		linkSets[i] = topology.NewLinkSet(int(maxLink) + 1)
		linkSets[i].AddLinks(pa.Links[mi])
	}
	c := make([][]bool, n)
	for i := range c {
		c[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if linkSets[i].Intersects(&linkSets[j]) {
				c[i][j], c[j][i] = true, true
			}
		}
	}
	return c
}

func scheduleOne(k int, msgs []tfg.MessageID, demands map[tfg.MessageID]float64, pa *PathAssignment, act *Activity, engine Engine, gap float64) ([]Slice, error) {
	length := act.Intervals.Length(k)
	start, _ := act.Intervals.Bounds(k)
	conf := conflictMatrix(msgs, pa)

	useExact := engine == EngineExact || (engine == EngineAuto && len(msgs) <= exactLimit)
	var sets [][]int // index sets into msgs
	var durations []float64
	var err error
	if useExact {
		sets, durations, err = exactDecompose(msgs, demands, conf)
		if err != nil && engine == EngineAuto {
			useExact = false
		} else if err != nil {
			return nil, fmt.Errorf("schedule: interval %d: %w", k, err)
		}
	}
	if !useExact {
		sets, durations = greedyDecompose(msgs, demands, conf)
	}

	total := 0.0
	nonzero := 0
	for _, d := range durations {
		total += d
		if d > timeEps {
			nonzero++
		}
	}
	if total > length+1e-6 {
		return nil, &ErrIntervalInfeasible{Interval: k, Need: total, Have: length}
	}
	// Distribute the interval's spare capacity as guard gaps after each
	// slice (up to the requested gap), so guard-holding CPs have room
	// before the link's next reservation. Best-effort: spacing never
	// makes a feasible interval infeasible.
	gapActual := 0.0
	if gap > 0 && nonzero > 0 {
		gapActual = (length - total) / float64(nonzero)
		if gapActual > gap {
			gapActual = gap
		}
	}

	// Realize slices sequentially from the interval start, trimming each
	// message's participation to its exact remaining demand.
	remaining := map[tfg.MessageID]float64{}
	for m, d := range demands {
		remaining[m] = d
	}
	var out []Slice
	cursor := start
	for si, set := range sets {
		d := durations[si]
		if d <= timeEps {
			continue
		}
		sl := Slice{Interval: k, Start: cursor, End: cursor + d}
		for _, idx := range set {
			m := msgs[idx]
			r := remaining[m]
			if r <= timeEps {
				continue
			}
			take := d
			if r < take {
				take = r
			}
			remaining[m] = r - take
			sl.Msgs = append(sl.Msgs, m)
			sl.Until = append(sl.Until, cursor+take)
		}
		if len(sl.Msgs) > 0 {
			out = append(out, sl)
		}
		cursor += d + gapActual
	}
	for m, r := range remaining {
		if r > 1e-6 {
			return nil, fmt.Errorf("schedule: interval %d: message %d left with %g undelivered", k, m, r)
		}
	}
	return out, nil
}

// greedyDecompose repeatedly schedules a maximal independent set chosen
// by largest remaining demand; each round fully drains at least one
// message, so it terminates within len(msgs) rounds.
func greedyDecompose(msgs []tfg.MessageID, demands map[tfg.MessageID]float64, conf [][]bool) ([][]int, []float64) {
	n := len(msgs)
	remaining := make([]float64, n)
	for i, m := range msgs {
		remaining[i] = demands[m]
	}
	var sets [][]int
	var durations []float64
	for {
		order := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if remaining[i] > timeEps {
				order = append(order, i)
			}
		}
		if len(order) == 0 {
			return sets, durations
		}
		sort.Slice(order, func(a, b int) bool {
			if remaining[order[a]] != remaining[order[b]] {
				return remaining[order[a]] > remaining[order[b]]
			}
			return order[a] < order[b]
		})
		var set []int
		for _, i := range order {
			ok := true
			for _, j := range set {
				if conf[i][j] {
					ok = false
					break
				}
			}
			if ok {
				set = append(set, i)
			}
		}
		d := remaining[set[0]]
		for _, i := range set {
			if remaining[i] < d {
				d = remaining[i]
			}
		}
		for _, i := range set {
			remaining[i] -= d
		}
		sets = append(sets, set)
		durations = append(durations, d)
	}
}

// exactDecompose solves the Section 5.3 program: over all maximal
// link-feasible sets S, minimize sum y_S subject to every message
// receiving at least its demand from the sets containing it. Maximal
// sets suffice because over-coverage is trimmed during realization.
func exactDecompose(msgs []tfg.MessageID, demands map[tfg.MessageID]float64, conf [][]bool) ([][]int, []float64, error) {
	n := len(msgs)
	mis := maximalIndependentSets(conf, 4096)
	if mis == nil {
		return nil, nil, fmt.Errorf("maximal independent set enumeration exceeded cap")
	}
	prob := lp.NewProblem(len(mis))
	for s := range mis {
		prob.SetCost(s, 1)
	}
	for i := 0; i < n; i++ {
		row := map[int]float64{}
		for s, set := range mis {
			for _, j := range set {
				if j == i {
					row[s] = 1
					break
				}
			}
		}
		if err := prob.AddSparse(row, lp.GE, demands[msgs[i]]); err != nil {
			return nil, nil, err
		}
	}
	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("interval LP %v", sol.Status)
	}
	var sets [][]int
	var durations []float64
	for s, y := range sol.X {
		if y > timeEps {
			sets = append(sets, mis[s])
			durations = append(durations, y)
		}
	}
	return sets, durations, nil
}

// maximalIndependentSets enumerates maximal independent sets of the
// conflict graph via Bron–Kerbosch on the complement, returning nil when
// the count exceeds maxSets.
func maximalIndependentSets(conf [][]bool, maxSets int) [][]int {
	n := len(conf)
	adj := make([][]bool, n) // complement adjacency
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			adj[i][j] = i != j && !conf[i][j]
		}
	}
	var out [][]int
	var bk func(r, p, x []int) bool
	bk = func(r, p, x []int) bool {
		if len(p) == 0 && len(x) == 0 {
			out = append(out, append([]int(nil), r...))
			return len(out) <= maxSets
		}
		// Pivot on the vertex of p∪x with most neighbors in p.
		pivot, best := -1, -1
		for _, u := range append(append([]int(nil), p...), x...) {
			cnt := 0
			for _, v := range p {
				if adj[u][v] {
					cnt++
				}
			}
			if cnt > best {
				best, pivot = cnt, u
			}
		}
		cands := make([]int, 0, len(p))
		for _, v := range p {
			if pivot == -1 || !adj[pivot][v] {
				cands = append(cands, v)
			}
		}
		for _, v := range cands {
			var np, nx []int
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			nr := append(append([]int(nil), r...), v)
			if !bk(nr, np, nx) {
				return false
			}
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
		return true
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if !bk(nil, all, nil) {
		return nil
	}
	return out
}
