package schedule

import (
	"fmt"
	"math/bits"

	"schedroute/internal/lp"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Slice is one link-feasible set scheduled for a sub-range of an
// interval: every message in Msgs transmits simultaneously during
// [Start, End) of the frame, each on its full path. Per-message
// transmission may end earlier than End (a trimmed tail keeps the links
// reserved but idle); Until[i] records message Msgs[i]'s actual
// transmission end.
type Slice struct {
	Interval int
	Start    float64
	End      float64
	Msgs     []tfg.MessageID
	Until    []float64
}

// Engine selects the interval-scheduling algorithm.
type Engine int

const (
	// EngineAuto uses the exact LP for small conflict sets and the
	// greedy decomposition otherwise.
	EngineAuto Engine = iota
	// EngineGreedy always uses the greedy decomposition.
	EngineGreedy
	// EngineExact always uses the LP over maximal link-feasible sets.
	EngineExact
)

// exactLimit is the conflict-set size above which EngineAuto switches
// from the exact LP to the greedy decomposition.
const exactLimit = 16

// ErrIntervalInfeasible is returned when the messages allocated to an
// interval need more simultaneous-link time than the interval provides —
// the paper's interval-scheduling failure mode.
type ErrIntervalInfeasible struct {
	Interval int
	Need     float64
	Have     float64
}

func (e *ErrIntervalInfeasible) Error() string {
	// Fixed precision keeps failure logs from parallel runs stably
	// comparable across candidate orderings.
	return fmt.Sprintf("schedule: interval %d needs %.6g but only has %.6g", e.Interval, e.Need, e.Have)
}

// ScheduleIntervals performs Section 5.3 interval scheduling for every
// interval: the messages with nonzero allocation are partitioned into
// link-feasible sets (Definition 5.5 — no two members share a link)
// whose total duration fits the interval. Slices are returned in frame
// order. A non-zero gap reserves idle time after every slice so that
// guard-holding CPs (see internal/cpsim) never collide with the link's
// next reservation; it should be twice the synchronization margin.
func ScheduleIntervals(allocation *Allocation, pa *PathAssignment, act *Activity, engine Engine, gap float64) ([]Slice, error) {
	var a solveArena
	return scheduleIntervals(&a, allocation, pa, act, engine, gap)
}

func scheduleIntervals(a *solveArena, allocation *Allocation, pa *PathAssignment, act *Activity, engine Engine, gap float64) ([]Slice, error) {
	sc := &a.sched
	var out []Slice
	K := act.Intervals.K()
	for k := 0; k < K; k++ {
		// Rows of allocation.P iterate in ascending message order, so the
		// per-interval participant list needs no sort.
		sc.msgs = sc.msgs[:0]
		sc.dem = sc.dem[:0]
		for i, row := range allocation.P {
			if row == nil {
				continue
			}
			if row[k] > timeEps {
				sc.msgs = append(sc.msgs, tfg.MessageID(i))
				sc.dem = append(sc.dem, row[k])
			}
		}
		if len(sc.msgs) == 0 {
			continue
		}
		slices, err := scheduleOne(a, k, pa, act, engine, gap)
		if err != nil {
			return nil, err
		}
		out = append(out, slices...)
	}
	return out, nil
}

// schedScratch is the working storage of one interval's decomposition:
// packed conflict bit rows, the greedy/exact set emission arenas, and
// the LP row-assembly buffers.
type schedScratch struct {
	msgs []tfg.MessageID
	dem  []float64

	lsets []uint64 // per-message link bitsets, n rows of wl words
	conf  []uint64 // conflict bit matrix, n rows of w words

	// greedy state
	order     []int32
	remaining []float64
	setMask   []uint64

	// emitted decomposition: set si is resFlat[resOffs[si]:resOffs[si+1]]
	resFlat []int32
	resOffs []int32
	resDur  []float64

	// exact (Bron–Kerbosch + LP) state
	adj     []uint64 // complement adjacency over one word (n <= 64)
	r       []int32
	misFlat []int32
	misOffs []int32
	memCnt  []int32
	memOff  []int32
	memCur  []int32
	memLst  []int32
	rowVal  []float64

	remain2 []float64 // realization remainders
}

// confWords returns the conflict row stride for n messages.
func confWords(n int) int { return (n + 63) / 64 }

// buildConflict packs each message's links into a bitset and fills the
// pairwise conflict matrix: conflict(i, j) iff msgs[i] and msgs[j] share
// a link — each test one word-parallel AND sweep instead of a map probe
// per link.
func (sc *schedScratch) buildConflict(msgs []tfg.MessageID, pa *PathAssignment) {
	n := len(msgs)
	maxLink := topology.LinkID(-1)
	for _, mi := range msgs {
		for _, l := range pa.Links[mi] {
			if l > maxLink {
				maxLink = l
			}
		}
	}
	wl := (int(maxLink) + 1 + 63) / 64
	if cap(sc.lsets) < n*wl {
		sc.lsets = make([]uint64, n*wl)
	} else {
		sc.lsets = sc.lsets[:n*wl]
		for i := range sc.lsets {
			sc.lsets[i] = 0
		}
	}
	for i, mi := range msgs {
		row := sc.lsets[i*wl : (i+1)*wl]
		for _, l := range pa.Links[mi] {
			row[l/64] |= 1 << (uint(l) % 64)
		}
	}
	w := confWords(n)
	if cap(sc.conf) < n*w {
		sc.conf = make([]uint64, n*w)
	} else {
		sc.conf = sc.conf[:n*w]
		for i := range sc.conf {
			sc.conf[i] = 0
		}
	}
	for i := 0; i < n; i++ {
		ri := sc.lsets[i*wl : (i+1)*wl]
		for j := i + 1; j < n; j++ {
			rj := sc.lsets[j*wl : (j+1)*wl]
			for t := range ri {
				if ri[t]&rj[t] != 0 {
					sc.conf[i*w+j/64] |= 1 << (uint(j) % 64)
					sc.conf[j*w+i/64] |= 1 << (uint(i) % 64)
					break
				}
			}
		}
	}
}

// conflict reads one bit of the packed conflict matrix.
func (sc *schedScratch) conflict(n, i, j int) bool {
	w := confWords(n)
	return sc.conf[i*w+j/64]&(1<<(uint(j)%64)) != 0
}

func scheduleOne(a *solveArena, k int, pa *PathAssignment, act *Activity, engine Engine, gap float64) ([]Slice, error) {
	sc := &a.sched
	n := len(sc.msgs)
	length := act.Intervals.Length(k)
	start, _ := act.Intervals.Bounds(k)
	sc.buildConflict(sc.msgs, pa)

	useExact := engine == EngineExact || (engine == EngineAuto && n <= exactLimit)
	if useExact {
		err := exactDecomposeInto(a, n)
		if err != nil && engine == EngineAuto {
			useExact = false
		} else if err != nil {
			return nil, fmt.Errorf("schedule: interval %d: %w", k, err)
		}
	}
	if !useExact {
		sc.greedyDecomposeInto(n)
	}

	total := 0.0
	nonzero := 0
	for _, d := range sc.resDur {
		total += d
		if d > timeEps {
			nonzero++
		}
	}
	if total > length+1e-6 {
		return nil, &ErrIntervalInfeasible{Interval: k, Need: total, Have: length}
	}
	// Distribute the interval's spare capacity as guard gaps after each
	// slice (up to the requested gap), so guard-holding CPs have room
	// before the link's next reservation. Best-effort: spacing never
	// makes a feasible interval infeasible.
	gapActual := 0.0
	if gap > 0 && nonzero > 0 {
		gapActual = (length - total) / float64(nonzero)
		if gapActual > gap {
			gapActual = gap
		}
	}

	// Realize slices sequentially from the interval start, trimming each
	// message's participation to its exact remaining demand.
	sc.remain2 = append(sc.remain2[:0], sc.dem...)
	var out []Slice
	cursor := start
	for si := range sc.resDur {
		d := sc.resDur[si]
		if d <= timeEps {
			continue
		}
		set := sc.resFlat[sc.resOffs[si]:sc.resOffs[si+1]]
		sl := Slice{
			Interval: k,
			Start:    cursor,
			End:      cursor + d,
			Msgs:     make([]tfg.MessageID, 0, len(set)),
			Until:    make([]float64, 0, len(set)),
		}
		for _, idx := range set {
			r := sc.remain2[idx]
			if r <= timeEps {
				continue
			}
			take := d
			if r < take {
				take = r
			}
			sc.remain2[idx] = r - take
			sl.Msgs = append(sl.Msgs, sc.msgs[idx])
			sl.Until = append(sl.Until, cursor+take)
		}
		if len(sl.Msgs) > 0 {
			out = append(out, sl)
		}
		cursor += d + gapActual
	}
	for i, r := range sc.remain2 {
		if r > 1e-6 {
			return nil, fmt.Errorf("schedule: interval %d: message %d left with %g undelivered", k, sc.msgs[i], r)
		}
	}
	return out, nil
}

// greedyDecomposeInto repeatedly schedules a maximal independent set
// chosen by largest remaining demand; each round fully drains at least
// one message, so it terminates within n rounds. The emitted sets land
// in the scratch arenas.
func (sc *schedScratch) greedyDecomposeInto(n int) {
	w := confWords(n)
	sc.remaining = append(sc.remaining[:0], sc.dem...)
	if cap(sc.setMask) < w {
		sc.setMask = make([]uint64, w)
	}
	setMask := sc.setMask[:w]
	sc.resFlat = sc.resFlat[:0]
	sc.resOffs = append(sc.resOffs[:0], 0)
	sc.resDur = sc.resDur[:0]
	for {
		sc.order = sc.order[:0]
		for i := 0; i < n; i++ {
			if sc.remaining[i] > timeEps {
				sc.order = append(sc.order, int32(i))
			}
		}
		if len(sc.order) == 0 {
			return
		}
		// Insertion sort by (remaining desc, index asc): the key is a
		// strict total order, so the permutation matches any correct
		// sort of the old sort.Slice comparator.
		order := sc.order
		for a := 1; a < len(order); a++ {
			v := order[a]
			b := a - 1
			for b >= 0 && (sc.remaining[order[b]] < sc.remaining[v] ||
				(sc.remaining[order[b]] == sc.remaining[v] && order[b] > v)) {
				order[b+1] = order[b]
				b--
			}
			order[b+1] = v
		}
		for t := range setMask {
			setMask[t] = 0
		}
		setStart := len(sc.resFlat)
		for _, i := range order {
			row := sc.conf[int(i)*w : int(i)*w+w]
			ok := true
			for t := range row {
				if row[t]&setMask[t] != 0 {
					ok = false
					break
				}
			}
			if ok {
				sc.resFlat = append(sc.resFlat, i)
				setMask[i/64] |= 1 << (uint(i) % 64)
			}
		}
		set := sc.resFlat[setStart:]
		d := sc.remaining[set[0]]
		for _, i := range set {
			if sc.remaining[i] < d {
				d = sc.remaining[i]
			}
		}
		for _, i := range set {
			sc.remaining[i] -= d
		}
		sc.resDur = append(sc.resDur, d)
		sc.resOffs = append(sc.resOffs, int32(len(sc.resFlat)))
	}
}

// exactDecomposeInto solves the Section 5.3 program: over all maximal
// link-feasible sets S, minimize sum y_S subject to every message
// receiving at least its demand from the sets containing it. Maximal
// sets suffice because over-coverage is trimmed during realization. The
// chosen sets land in the scratch result arenas.
func exactDecomposeInto(a *solveArena, n int) error {
	sc := &a.sched
	if !sc.enumerateMIS(n, 4096) {
		return fmt.Errorf("maximal independent set enumeration exceeded cap")
	}
	nSets := len(sc.misOffs) - 1
	prob := a.lpProblem(nSets)
	for s := 0; s < nSets; s++ {
		prob.SetCost(s, 1)
	}
	// Per-message set membership as CSR: the demand row of message i
	// lists the sets containing i in ascending index order — the same
	// rows the old map construction produced.
	if cap(sc.memCnt) < n {
		sc.memCnt = make([]int32, n)
		sc.memOff = make([]int32, n+1)
		sc.memCur = make([]int32, n)
	}
	memCnt, memOff, memCur := sc.memCnt[:n], sc.memOff[:n+1], sc.memCur[:n]
	for i := range memCnt {
		memCnt[i] = 0
	}
	for _, j := range sc.misFlat {
		memCnt[j]++
	}
	memOff[0] = 0
	for i := 0; i < n; i++ {
		memOff[i+1] = memOff[i] + memCnt[i]
		memCur[i] = memOff[i]
	}
	if cap(sc.memLst) < len(sc.misFlat) {
		sc.memLst = make([]int32, len(sc.misFlat))
	}
	memLst := sc.memLst[:len(sc.misFlat)]
	for s := 0; s < nSets; s++ {
		for _, j := range sc.misFlat[sc.misOffs[s]:sc.misOffs[s+1]] {
			memLst[memCur[j]] = int32(s)
			memCur[j]++
		}
	}
	maxRow := 0
	for i := 0; i < n; i++ {
		if c := int(memCnt[i]); c > maxRow {
			maxRow = c
		}
	}
	if cap(sc.rowVal) < maxRow {
		sc.rowVal = make([]float64, maxRow)
	}
	ones := sc.rowVal[:maxRow]
	for i := range ones {
		ones[i] = 1
	}
	for i := 0; i < n; i++ {
		row := memLst[memOff[i]:memOff[i+1]]
		if err := prob.AddRow(row, ones[:len(row)], lp.GE, sc.dem[i]); err != nil {
			return err
		}
	}
	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return fmt.Errorf("interval LP %v", sol.Status)
	}
	sc.resFlat = sc.resFlat[:0]
	sc.resOffs = append(sc.resOffs[:0], 0)
	sc.resDur = sc.resDur[:0]
	for s, y := range sol.X {
		if y > timeEps {
			sc.resFlat = append(sc.resFlat, sc.misFlat[sc.misOffs[s]:sc.misOffs[s+1]]...)
			sc.resOffs = append(sc.resOffs, int32(len(sc.resFlat)))
			sc.resDur = append(sc.resDur, y)
		}
	}
	return nil
}

// enumerateMIS enumerates the maximal independent sets of the packed
// conflict graph into misFlat/misOffs via Bron–Kerbosch with pivoting on
// the complement graph; it reports false when the count exceeds maxSets.
// For n <= 64 the candidate and exclusion sets are single machine words,
// and the ascending-bit iteration reproduces the enumeration order of
// the reference slice implementation exactly (its p and x lists stay
// ascending throughout). Larger instances fall back to that reference.
func (sc *schedScratch) enumerateMIS(n, maxSets int) bool {
	sc.misFlat = sc.misFlat[:0]
	sc.misOffs = append(sc.misOffs[:0], 0)
	if n > 64 {
		conf := make([][]bool, n)
		for i := range conf {
			conf[i] = make([]bool, n)
			for j := 0; j < n; j++ {
				conf[i][j] = sc.conflict(n, i, j)
			}
		}
		mis := maximalIndependentSetsSlice(conf, maxSets)
		if mis == nil {
			return false
		}
		for _, set := range mis {
			for _, v := range set {
				sc.misFlat = append(sc.misFlat, int32(v))
			}
			sc.misOffs = append(sc.misOffs, int32(len(sc.misFlat)))
		}
		return true
	}

	full := ^uint64(0)
	if n < 64 {
		full = (1 << uint(n)) - 1
	}
	if cap(sc.adj) < n {
		sc.adj = make([]uint64, n)
	}
	adj := sc.adj[:n]
	w := confWords(n) // 1 for n <= 64
	for i := 0; i < n; i++ {
		adj[i] = ^sc.conf[i*w] &^ (1 << uint(i)) & full
	}
	sc.r = sc.r[:0]
	count := 0
	var bk func(p, x uint64) bool
	bk = func(p, x uint64) bool {
		if p == 0 && x == 0 {
			sc.misFlat = append(sc.misFlat, sc.r...)
			sc.misOffs = append(sc.misOffs, int32(len(sc.misFlat)))
			count++
			return count <= maxSets
		}
		// Pivot on the vertex of p∪x with most neighbors in p; p bits
		// then x bits, ascending, first strict maximum — the reference
		// scan order.
		pivot, best := -1, -1
		for m := p; m != 0; {
			u := bits.TrailingZeros64(m)
			m &^= 1 << uint(u)
			if cnt := bits.OnesCount64(adj[u] & p); cnt > best {
				best, pivot = cnt, u
			}
		}
		for m := x; m != 0; {
			u := bits.TrailingZeros64(m)
			m &^= 1 << uint(u)
			if cnt := bits.OnesCount64(adj[u] & p); cnt > best {
				best, pivot = cnt, u
			}
		}
		cand := p
		if pivot >= 0 {
			cand = p &^ adj[pivot]
		}
		for m := cand; m != 0; {
			v := bits.TrailingZeros64(m)
			m &^= 1 << uint(v)
			sc.r = append(sc.r, int32(v))
			if !bk(p&adj[v], x&adj[v]) {
				return false
			}
			sc.r = sc.r[:len(sc.r)-1]
			// Move v from p to x.
			p &^= 1 << uint(v)
			x |= 1 << uint(v)
		}
		return true
	}
	return bk(full, 0)
}

// conflictMatrix materializes the packed conflict matrix as [][]bool —
// the reference shape the decomposition tests exercise.
func conflictMatrix(msgs []tfg.MessageID, pa *PathAssignment) [][]bool {
	var sc schedScratch
	n := len(msgs)
	sc.buildConflict(msgs, pa)
	c := make([][]bool, n)
	for i := range c {
		c[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			c[i][j] = sc.conflict(n, i, j)
		}
	}
	return c
}

// loadConf packs a [][]bool conflict matrix into the scratch bit rows
// (test-wrapper path).
func (sc *schedScratch) loadConf(conf [][]bool) {
	n := len(conf)
	w := confWords(n)
	sc.conf = make([]uint64, n*w)
	for i := range conf {
		for j, v := range conf[i] {
			if v {
				sc.conf[i*w+j/64] |= 1 << (uint(j) % 64)
			}
		}
	}
}

// materializeSets converts the scratch result arenas to the [][]int
// shape of the original API.
func (sc *schedScratch) materializeSets() ([][]int, []float64) {
	sets := make([][]int, len(sc.resDur))
	for si := range sc.resDur {
		src := sc.resFlat[sc.resOffs[si]:sc.resOffs[si+1]]
		set := make([]int, len(src))
		for t, v := range src {
			set[t] = int(v)
		}
		sets[si] = set
	}
	return sets, append([]float64(nil), sc.resDur...)
}

// greedyDecompose is the [][]bool-shaped wrapper over the arena greedy
// decomposition, retained for the decomposition tests.
func greedyDecompose(msgs []tfg.MessageID, demands map[tfg.MessageID]float64, conf [][]bool) ([][]int, []float64) {
	var sc schedScratch
	sc.loadConf(conf)
	sc.dem = make([]float64, len(msgs))
	for i, m := range msgs {
		sc.dem[i] = demands[m]
	}
	sc.greedyDecomposeInto(len(msgs))
	return sc.materializeSets()
}

// exactDecompose is the [][]bool-shaped wrapper over the arena exact
// decomposition, retained for the decomposition tests.
func exactDecompose(msgs []tfg.MessageID, demands map[tfg.MessageID]float64, conf [][]bool) ([][]int, []float64, error) {
	var a solveArena
	sc := &a.sched
	sc.loadConf(conf)
	sc.dem = make([]float64, len(msgs))
	for i, m := range msgs {
		sc.dem[i] = demands[m]
	}
	if err := exactDecomposeInto(&a, len(msgs)); err != nil {
		return nil, nil, err
	}
	sets, durations := sc.materializeSets()
	return sets, durations, nil
}

// maximalIndependentSets enumerates maximal independent sets of the
// conflict graph, returning nil when the count exceeds maxSets.
func maximalIndependentSets(conf [][]bool, maxSets int) [][]int {
	var sc schedScratch
	sc.loadConf(conf)
	if !sc.enumerateMIS(len(conf), maxSets) {
		return nil
	}
	out := make([][]int, len(sc.misOffs)-1)
	for s := range out {
		src := sc.misFlat[sc.misOffs[s]:sc.misOffs[s+1]]
		set := make([]int, len(src))
		for t, v := range src {
			set[t] = int(v)
		}
		out[s] = set
	}
	return out
}

// maximalIndependentSetsSlice is the reference Bron–Kerbosch over slice
// sets — the n > 64 fallback and the order oracle for the bitset path.
func maximalIndependentSetsSlice(conf [][]bool, maxSets int) [][]int {
	n := len(conf)
	adj := make([][]bool, n) // complement adjacency
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			adj[i][j] = i != j && !conf[i][j]
		}
	}
	var out [][]int
	var bk func(r, p, x []int) bool
	bk = func(r, p, x []int) bool {
		if len(p) == 0 && len(x) == 0 {
			out = append(out, append([]int(nil), r...))
			return len(out) <= maxSets
		}
		// Pivot on the vertex of p∪x with most neighbors in p.
		pivot, best := -1, -1
		for _, u := range append(append([]int(nil), p...), x...) {
			cnt := 0
			for _, v := range p {
				if adj[u][v] {
					cnt++
				}
			}
			if cnt > best {
				best, pivot = cnt, u
			}
		}
		cands := make([]int, 0, len(p))
		for _, v := range p {
			if pivot == -1 || !adj[pivot][v] {
				cands = append(cands, v)
			}
		}
		for _, v := range cands {
			var np, nx []int
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			nr := append(append([]int(nil), r...), v)
			if !bk(nr, np, nx) {
				return false
			}
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
		return true
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if !bk(nil, all, nil) {
		return nil
	}
	return out
}
