package schedule

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/errkind"
	"schedroute/internal/faults"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// pairTenant builds a single producer/consumer tenant between two
// nodes of the topology: xmit bits at uniform timing (50, 64), period
// tauIn. With tauIn = τc = 50 the window-widening rung is structurally
// unavailable (any widened window would exceed the period), which lets
// tests pin admission decisions to the utilization numbers alone.
func pairTenant(t *testing.T, top *topology.Topology, id string, src, dst topology.NodeID, xmitBits int, tauIn float64) Tenant {
	t.Helper()
	g, err := tfg.Chain(2, 100, int64(xmitBits))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	as := &alloc.Assignment{NodeOf: []topology.NodeID{src, dst}}
	return Tenant{
		ID:      id,
		Problem: Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn},
		Options: Options{Seed: 1},
	}
}

// chainTenant is the repairFixture workload as a tenant: an 8-task
// chain placed one task per node of a 3-cube, lightly loaded.
func chainTenant(t *testing.T, top *topology.Topology, id string) Tenant {
	t.Helper()
	g, err := tfg.Chain(8, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]topology.NodeID, 8)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	return Tenant{
		ID:      id,
		Problem: Problem{Graph: g, Timing: tm, Topology: top, Assignment: &alloc.Assignment{NodeOf: nodes}, TauIn: 2 * tm.TauC()},
		Options: Options{Seed: 1},
	}
}

func omegaBytes(t *testing.T, om *Omega) []byte {
	t.Helper()
	if om == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := EncodeOmega(&buf, om); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func threeCube(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func mustAdmit(t *testing.T, ts *TenantSet, tn Tenant) *AdmitReport {
	t.Helper()
	rep, err := ts.Admit(context.Background(), tn, nil)
	if err != nil {
		t.Fatalf("admit %s: %v", tn.ID, err)
	}
	if !rep.Admitted {
		t.Fatalf("admit %s: rejected: %s", tn.ID, rep.Reason)
	}
	return rep
}

// TestTenantFirstAdmissionSoloIdentical: an admission into an empty
// set sees the whole machine (nil LinkCap) and must be byte-identical
// to a plain solo solve of the same problem.
func TestTenantFirstAdmissionSoloIdentical(t *testing.T) {
	top := threeCube(t)
	tn := chainTenant(t, top, "A")
	ts := NewTenantSet(top)
	rep := mustAdmit(t, ts, tn)
	if rep.Outcome != AdmitReserved || rep.TauOut != tn.Problem.TauIn || rep.WindowScale != 1 {
		t.Fatalf("first admission should reserve at the requested rate, got %+v", rep)
	}

	solo, err := Compute(tn.Problem, tn.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(omegaBytes(t, rep.Result.Omega), omegaBytes(t, solo.Omega)) {
		t.Fatal("first admitted tenant's omega differs from its solo solve")
	}
	if rep.Result.Peak != solo.Peak {
		t.Fatalf("peak drifted: admitted %g, solo %g", rep.Result.Peak, solo.Peak)
	}
}

// TestTenantAdmissionInvariantUnderFaults is the admission invariant
// end to end: tenant A keeps a byte-identical Ω after tenant B is
// admitted, after tenant C is rejected, and after a single-link fault
// on B's paths (the fault chosen via a seeded internal/faults
// scenario), comparing against a solo-admitted A at the same
// cumulative fault state.
func TestTenantAdmissionInvariantUnderFaults(t *testing.T) {
	top := threeCube(t)
	ctx := context.Background()

	// Shared set: A (8-task chain over every node), then B (light pair
	// on the 2→3 edge), then C (a pair demanding more than link 0→1's
	// residual, with a hard rate guarantee: must be rejected).
	ts := NewTenantSet(top)
	a := chainTenant(t, top, "A")
	mustAdmit(t, ts, a)
	soloOmega := omegaBytes(t, ts.Lookup("A").Base.Omega)

	b := pairTenant(t, top, "B", 2, 3, 640, 50)
	mustAdmit(t, ts, b)
	if got := omegaBytes(t, ts.Lookup("A").Base.Omega); !bytes.Equal(got, soloOmega) {
		t.Fatal("admitting B perturbed A's omega")
	}

	c := pairTenant(t, top, "C", 0, 1, 2880, 50) // xmit 45 of a 50 window
	c.RateGuarantee = 1
	crep, err := ts.Admit(ctx, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Admitted {
		t.Fatalf("C (demand %.2g against A's residual) should be rejected", 45.0/50)
	}
	if !errors.Is(crep.Err(), errkind.ErrAdmissionRejected) {
		t.Fatalf("rejection error not in the admission_rejected family: %v", crep.Err())
	}
	if ts.Lookup("C") != nil {
		t.Fatal("rejected tenant left in the set")
	}
	if got := omegaBytes(t, ts.Lookup("A").Base.Omega); !bytes.Equal(got, soloOmega) {
		t.Fatal("rejecting C perturbed A's omega")
	}
	if got := len(ts.Tenants()); got != 2 {
		t.Fatalf("set should hold A and B, has %d tenants", got)
	}

	// Seeded single-link scenario striking B's path.
	bLinks := ts.Lookup("B").Base.Assignment.Links[0]
	if len(bLinks) == 0 {
		t.Fatal("B's message has no links")
	}
	var failed topology.LinkID = -1
	for _, tr := range faults.SingleLink(top, 1) {
		if ev := tr.Events[0]; !ev.IsNode && ev.Link == bLinks[0] {
			failed = ev.Link
			break
		}
	}
	if failed < 0 {
		t.Fatalf("no single-link scenario covers B's link %d", bLinks[0])
	}
	ts.FailLink(failed)
	reports, err := ts.Repair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*TenantRepair{}
	for _, r := range reports {
		byID[r.TenantID] = r
	}
	if byID["B"].Report.Outcome == RepairUnaffected {
		t.Fatal("fault on B's path left B unaffected")
	}

	// Solo reference: A admitted alone, same cumulative fault state.
	ref := NewTenantSet(top)
	mustAdmit(t, ref, chainTenant(t, top, "A"))
	ref.FailLink(failed)
	refReports, err := ref.Repair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := byID["A"].Report.Outcome, refReports[0].Report.Outcome; got != want {
		t.Fatalf("A's repair outcome %v differs from solo %v", got, want)
	}
	got := omegaBytes(t, ts.Lookup("A").Current.Omega)
	want := omegaBytes(t, ref.Lookup("A").Current.Omega)
	if !bytes.Equal(got, want) {
		t.Fatal("after the fault, A's omega differs from its solo-admitted omega at the same fault state")
	}
}

// TestTenantEviction: a higher-priority candidate that cannot fit
// evicts the lowest-priority admitted tenant and is then admitted; the
// evicted tenant leaves the set.
func TestTenantEviction(t *testing.T) {
	top := threeCube(t)
	low := pairTenant(t, top, "low", 0, 1, 2880, 50) // 0.9 of link 0→1
	low.RateGuarantee = 1
	high := pairTenant(t, top, "high", 0, 1, 2880, 50)
	high.RateGuarantee = 1
	high.Priority = 10

	ts := NewTenantSet(top)
	mustAdmit(t, ts, low)
	rep := mustAdmit(t, ts, high)
	if len(rep.Evicted) != 1 || rep.Evicted[0] != "low" {
		t.Fatalf("expected eviction of \"low\", got %v", rep.Evicted)
	}
	if ts.Lookup("low") != nil {
		t.Fatal("evicted tenant still in the set")
	}
	if ts.Lookup("high") == nil {
		t.Fatal("evicting tenant not admitted")
	}

	// The mirror case: an equal-priority candidate may not evict.
	ts2 := NewTenantSet(top)
	mustAdmit(t, ts2, low)
	peer := pairTenant(t, top, "peer", 0, 1, 2880, 50)
	peer.RateGuarantee = 1
	prep, err := ts2.Admit(context.Background(), peer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Admitted || len(prep.Evicted) != 0 {
		t.Fatalf("equal-priority candidate must be rejected without evictions, got %+v", prep)
	}
	if prep.BottleneckShare >= 1 {
		t.Fatalf("rejection should report the contended bottleneck, got share %g", prep.BottleneckShare)
	}
}

// TestTenantDegradedRateRespectsGuarantee: a candidate that fits only
// at a reduced rate is admitted on the degraded-rate rung when its
// guarantee allows it, and rejected when the guarantee forbids it. The
// DVB workload at load 1.0 (τin = τc = 50) on the 6-cube is
// utilization-infeasible at factors 1, 1.1 and 1.25 and becomes
// feasible at factor 1.5 — and with τin = τc every widened window
// would exceed the period, so the window rung is structurally skipped.
func TestTenantDegradedRateRespectsGuarantee(t *testing.T) {
	top := sixCube(t)
	elastic := Tenant{ID: "elastic", RateGuarantee: 0.5, // 1/1.5 = 0.667 >= 0.5: allowed
		Problem: dvbProblem(t, top, 64, 50), Options: Options{Seed: 1}}
	ts := NewTenantSet(top)
	rep := mustAdmit(t, ts, elastic)
	if rep.Outcome != AdmitDegradedRate {
		t.Fatalf("expected degraded-rate admission, got %v", rep.Outcome)
	}
	if rep.TauOut != 75 {
		t.Fatalf("expected the factor-1.5 period 75, got %g", rep.TauOut)
	}

	strict := Tenant{ID: "strict", RateGuarantee: 0.8, // forbids factors past 1.25
		Problem: dvbProblem(t, top, 64, 50), Options: Options{Seed: 1}}
	ts2 := NewTenantSet(top)
	srep, err := ts2.Admit(context.Background(), strict, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Admitted {
		t.Fatalf("a 0.8 rate guarantee must reject the factor-1.5 rung, got %v", srep.Outcome)
	}
	if !errors.Is(srep.Err(), errkind.ErrAdmissionRejected) {
		t.Fatalf("rejection error not in the admission_rejected family: %v", srep.Err())
	}
}

// TestTenantReleaseFreesShares: releasing a tenant frees its
// reservation, letting a previously rejected candidate in.
func TestTenantReleaseFreesShares(t *testing.T) {
	top := threeCube(t)
	ts := NewTenantSet(top)
	mustAdmit(t, ts, pairTenant(t, top, "hog", 0, 1, 2880, 50))

	cand := pairTenant(t, top, "cand", 0, 1, 2880, 50)
	cand.RateGuarantee = 1
	rep, err := ts.Admit(context.Background(), cand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted {
		t.Fatal("candidate should not fit next to the hog")
	}
	if !ts.Release("hog") {
		t.Fatal("release of an admitted tenant reported absent")
	}
	mustAdmit(t, ts, cand)
}

// TestSolveLinkCapOnesBitIdentical: a LinkCap of all ones must leave
// every stage bit-identical to the nil (whole-machine) fast path —
// dividing by 1.0 is exact, and the allocation rows keep their
// right-hand sides.
func TestSolveLinkCapOnesBitIdentical(t *testing.T) {
	top := sixCube(t)
	p := dvbProblem(t, top, 64, gridTauIn(5))
	base, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, top.Links())
	for j := range ones {
		ones[j] = 1
	}
	capped, err := Compute(p, Options{Seed: 1, LinkCap: ones})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, capped) {
		t.Fatal("LinkCap of all ones changed the result")
	}
}

// TestSolveLinkCapValidated: a LinkCap of the wrong length is invalid
// input.
func TestSolveLinkCapValidated(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	if _, err := Compute(p, Options{Seed: 1, LinkCap: []float64{1, 1}}); err == nil {
		t.Fatal("expected an error for a short LinkCap")
	}
}

// TestTenantAdmitValidation covers the bad-input admission paths.
func TestTenantAdmitValidation(t *testing.T) {
	top := threeCube(t)
	ts := NewTenantSet(top)
	tn := chainTenant(t, top, "A")
	mustAdmit(t, ts, tn)

	if _, err := ts.Admit(context.Background(), tn, nil); !errors.Is(err, errkind.ErrBadInput) {
		t.Fatalf("duplicate ID should be bad input, got %v", err)
	}
	anon := chainTenant(t, top, "")
	if _, err := ts.Admit(context.Background(), anon, nil); !errors.Is(err, errkind.ErrBadInput) {
		t.Fatalf("empty ID should be bad input, got %v", err)
	}
	badRate := chainTenant(t, top, "R")
	badRate.RateGuarantee = 1.5
	if _, err := ts.Admit(context.Background(), badRate, nil); !errors.Is(err, errkind.ErrBadInput) {
		t.Fatalf("rate guarantee above 1 should be bad input, got %v", err)
	}
}
