package schedule

import (
	"schedroute/internal/tfg"
)

// subsetScratch is the pooled working storage of maximalSubsets.
type subsetScratch struct {
	parent  []int32
	firstIn []int32
	gidx    []int32
	sizes   []int32
}

// MaximalSubsets partitions the non-local messages into the maximal
// related subsets of Definitions 5.3/5.4: two messages are related when
// they are simultaneously active on a shared link in a shared interval,
// closed transitively. Message-interval allocation and interval
// scheduling decompose over these subsets.
func MaximalSubsets(pa *PathAssignment, ws []Window, act *Activity) [][]tfg.MessageID {
	var a solveArena
	return maximalSubsets(&a, pa, ws, act)
}

func maximalSubsets(a *solveArena, pa *PathAssignment, ws []Window, act *Activity) [][]tfg.MessageID {
	sc := &a.sub
	n := len(ws)
	if cap(sc.parent) < n {
		sc.parent = make([]int32, n)
		sc.gidx = make([]int32, n)
	}
	parent := sc.parent[:n]
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Group messages by (link, interval) cell and union each group,
	// indexing cells as link*K+k in one flat slice (-1 = empty).
	K := act.Intervals.K()
	maxLink := 0
	nonLocal := 0
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		nonLocal++
		for _, l := range pa.Links[i] {
			if int(l) > maxLink {
				maxLink = int(l)
			}
		}
	}
	ncells := (maxLink + 1) * K
	if cap(sc.firstIn) < ncells {
		sc.firstIn = make([]int32, ncells)
	}
	firstIn := sc.firstIn[:ncells]
	for c := range firstIn {
		firstIn[c] = -1
	}
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		for _, l := range pa.Links[i] {
			base := int(l) * K
			for k := 0; k < K; k++ {
				if !act.Active[i][k] {
					continue
				}
				if j := firstIn[base+k]; j >= 0 {
					ra, rb := find(j), find(int32(i))
					if ra != rb {
						parent[rb] = ra
					}
				} else {
					firstIn[base+k] = int32(i)
				}
			}
		}
	}

	// Assemble groups in two ascending passes: groups are numbered in
	// order of their smallest member and members arrive ascending, so
	// the output needs no sorting and equals the sorted-map original.
	// The member slices are freshly allocated off one shared backing —
	// they can outlive the arena (e.g. inside allocation errors).
	gidx := sc.gidx[:n]
	for i := range gidx {
		gidx[i] = -1
	}
	sc.sizes = sc.sizes[:0]
	ng := int32(0)
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		r := find(int32(i))
		if gidx[r] < 0 {
			gidx[r] = ng
			sc.sizes = append(sc.sizes, 0)
			ng++
		}
		sc.sizes[gidx[r]]++
	}
	backing := make([]tfg.MessageID, nonLocal)
	out := make([][]tfg.MessageID, ng)
	off := 0
	for g := range out {
		end := off + int(sc.sizes[g])
		out[g] = backing[off:off:end]
		off = end
	}
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		g := gidx[find(int32(i))]
		out[g] = append(out[g], tfg.MessageID(i))
	}
	return out
}
