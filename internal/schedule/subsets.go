package schedule

import (
	"sort"

	"schedroute/internal/tfg"
)

// MaximalSubsets partitions the non-local messages into the maximal
// related subsets of Definitions 5.3/5.4: two messages are related when
// they are simultaneously active on a shared link in a shared interval,
// closed transitively. Message-interval allocation and interval
// scheduling decompose over these subsets.
func MaximalSubsets(pa *PathAssignment, ws []Window, act *Activity) [][]tfg.MessageID {
	n := len(ws)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Group messages by (link, interval) cell and union each group,
	// indexing cells as link*K+k in one flat slice (-1 = empty).
	K := act.Intervals.K()
	maxLink := 0
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		for _, l := range pa.Links[i] {
			if int(l) > maxLink {
				maxLink = int(l)
			}
		}
	}
	firstIn := make([]int32, (maxLink+1)*K)
	for c := range firstIn {
		firstIn[c] = -1
	}
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		for _, l := range pa.Links[i] {
			base := int(l) * K
			for k := 0; k < K; k++ {
				if !act.Active[i][k] {
					continue
				}
				if j := firstIn[base+k]; j >= 0 {
					union(int(j), i)
				} else {
					firstIn[base+k] = int32(i)
				}
			}
		}
	}

	groups := map[int][]tfg.MessageID{}
	for i := 0; i < n; i++ {
		if ws[i].Local {
			continue
		}
		r := find(i)
		groups[r] = append(groups[r], tfg.MessageID(i))
	}
	out := make([][]tfg.MessageID, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
