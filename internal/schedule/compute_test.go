package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func dvbProblem(t *testing.T, top *topology.Topology, bw, tauIn float64) Problem {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, bw)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn}
}

// gridTauIn returns the k-th of the paper's twelve input periods
// between τc and 5τc for τc = 50 µs.
func gridTauIn(k int) float64 { return 50 * (1 + 4*float64(k)/11) }

func sixCube(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestComputeFeasibleLowLoadSixCube(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5)) // load 0.355
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("expected feasible at load 0.355, failed at %v (U=%g)", res.FailStage, res.Peak)
	}
	if res.Peak > 1+1e-9 {
		t.Errorf("feasible with peak %g > 1", res.Peak)
	}
	if res.Omega == nil || len(res.Slices) == 0 {
		t.Fatal("missing schedule artifacts")
	}
	if err := res.Omega.Validate(p.Topology); err != nil {
		t.Errorf("omega validation: %v", err)
	}
}

func TestComputeInfeasibleHighLoadSixCubeB64(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 50) // load 1.0
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("load 1.0 at B=64 should exceed link capacity (paper Fig. 7)")
	}
	if res.FailStage != StageUtilization {
		t.Errorf("fail stage = %v, want utilization", res.FailStage)
	}
	if res.Peak <= 1 {
		t.Errorf("peak = %g, should exceed 1", res.Peak)
	}
}

func TestComputeFeasibleAllLoadsSixCubeB128(t *testing.T) {
	// Paper Fig. 7 bottom: at B=128 the 6-cube pipelines at every load.
	top := sixCube(t)
	for _, k := range []int{0, 3, 7, 11} {
		tauIn := gridTauIn(k)
		p := dvbProblem(t, top, 128, tauIn)
		res, err := Compute(p, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("tauIn=%g: failed at %v (U=%g)", tauIn, res.FailStage, res.Peak)
		}
	}
}

func TestComputeTorusB64NeverFeasible(t *testing.T) {
	// Paper Fig. 6: tori at B=64 never reach U <= 1.
	top, err := topology.NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tauIn := range []float64{50, 120, 250} {
		p := dvbProblem(t, top, 64, tauIn)
		res, err := Compute(p, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible {
			t.Errorf("tauIn=%g: 8x8 torus at B=64 should be infeasible", tauIn)
		}
		if res.FailStage != StageUtilization {
			t.Errorf("tauIn=%g: fail stage = %v, want utilization", tauIn, res.FailStage)
		}
	}
}

func TestAssignPathsNeverWorseThanLSD(t *testing.T) {
	top := sixCube(t)
	for _, tauIn := range []float64{50, 90, 130, 200, 250} {
		p := dvbProblem(t, top, 64, tauIn)
		res, err := Compute(p, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Peak > res.PeakLSD+1e-9 {
			t.Errorf("tauIn=%g: AssignPaths peak %g worse than LSD %g", tauIn, res.Peak, res.PeakLSD)
		}
	}
}

func TestExecuteConstantThroughput(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	exec, err := Execute(res.Omega, p.Graph, p.Timing, p.Timing.TauC(), 12)
	if err != nil {
		t.Fatal(err)
	}
	ivs := metrics.Intervals(exec.OutputCompletions)
	if metrics.OutputInconsistent(p.TauIn, ivs, 1e-9) {
		t.Errorf("scheduled routing must be output consistent; intervals %v", ivs)
	}
	th, err := metrics.NormalizedThroughput(p.TauIn, ivs)
	if err != nil {
		t.Fatal(err)
	}
	if !th.Constant(1e-9) || math.Abs(th.Mid-1) > 1e-9 {
		t.Errorf("throughput spike %v, want exactly 1", th)
	}
	for _, l := range exec.Latencies {
		if math.Abs(l-res.Latency) > 1e-9 {
			t.Errorf("latency %g differs from schedule latency %g", l, res.Latency)
		}
	}
	// Windowed latency is never below the critical path.
	cp, _ := p.Graph.CriticalPath(p.Timing)
	if res.Latency < cp-1e-9 {
		t.Errorf("latency %g below critical path %g", res.Latency, cp)
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	bad := p
	bad.Graph = nil
	if _, err := Compute(bad, Options{}); err == nil {
		t.Error("nil graph should fail")
	}
	bad = p
	bad.TauIn = 10 // below τc
	if _, err := Compute(bad, Options{}); err == nil {
		t.Error("period below τc should fail")
	}
	// Shared node violates the exclusive-AP assumption.
	bad = p
	shared := &alloc.Assignment{NodeOf: append([]topology.NodeID(nil), p.Assignment.NodeOf...)}
	shared.NodeOf[1] = shared.NodeOf[0]
	bad.Assignment = shared
	if _, err := Compute(bad, Options{}); err == nil {
		t.Error("non-exclusive placement should fail")
	}
}

func TestComputeLSDOnly(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1, LSDOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak != res.PeakLSD {
		t.Errorf("LSDOnly peak %g != PeakLSD %g", res.Peak, res.PeakLSD)
	}
}

func TestComputeLocalMessages(t *testing.T) {
	// Chain of two tasks on the same node: everything is local, the
	// schedule is trivially feasible with no slices.
	g, err := tfg.Chain(2, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two tasks on distinct nodes is required (exclusive), so make a
	// local message via a graph where... exclusive placement forbids
	// same-node tasks, so local messages cannot arise under Compute.
	as := &alloc.Assignment{NodeOf: []topology.NodeID{0, 1}}
	res, err := Compute(Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("trivial chain should schedule: %v", res.FailStage)
	}
}

func TestMaximalSubsetsPartition(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	ws, err := ComputeWindows(p.Graph, p.Timing, p.TauIn, p.Timing.TauC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	set := BuildIntervals(ws, p.TauIn)
	act := BuildActivity(ws, set)
	pa, err := LSDAssignment(p.Graph, p.Topology, p.Assignment, ws)
	if err != nil {
		t.Fatal(err)
	}
	subsets := MaximalSubsets(pa, ws, act)
	seen := map[tfg.MessageID]int{}
	total := 0
	for si, sub := range subsets {
		if len(sub) == 0 {
			t.Fatal("empty subset")
		}
		for _, mi := range sub {
			if prev, dup := seen[mi]; dup {
				t.Fatalf("message %d in subsets %d and %d", mi, prev, si)
			}
			seen[mi] = si
			total++
		}
	}
	if total != p.Graph.NumMessages() {
		t.Errorf("subsets cover %d of %d messages", total, p.Graph.NumMessages())
	}
	// Messages in different subsets never share an active (link,
	// interval) cell.
	for i := 0; i < p.Graph.NumMessages(); i++ {
		for j := i + 1; j < p.Graph.NumMessages(); j++ {
			if seen[tfg.MessageID(i)] == seen[tfg.MessageID(j)] {
				continue
			}
			if sharesCell(pa, act, tfg.MessageID(i), tfg.MessageID(j)) {
				t.Fatalf("messages %d and %d share a cell across subsets", i, j)
			}
		}
	}
}

func sharesCell(pa *PathAssignment, act *Activity, a, b tfg.MessageID) bool {
	la := map[topology.LinkID]bool{}
	for _, l := range pa.Links[a] {
		la[l] = true
	}
	shared := false
	for _, l := range pa.Links[b] {
		if la[l] {
			shared = true
			break
		}
	}
	if !shared {
		return false
	}
	for k := range act.Active[a] {
		if act.Active[a][k] && act.Active[b][k] {
			return true
		}
	}
	return false
}

func TestAllocationRespectsConstraints(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	al, act, ws := res.Allocation, res.Activity, res.Windows
	// (3): allocations sum to transmission times.
	for _, m := range p.Graph.Messages() {
		if ws[m.ID].Local {
			continue
		}
		sum := 0.0
		for k := 0; k < act.Intervals.K(); k++ {
			v := al.P[m.ID][k]
			if v < -1e-9 {
				t.Fatalf("negative allocation %g", v)
			}
			if v > 1e-9 && !act.Active[m.ID][k] {
				t.Fatalf("message %d allocated to inactive interval %d", m.ID, k)
			}
			sum += v
		}
		if math.Abs(sum-ws[m.ID].Xmit) > 1e-6 {
			t.Errorf("message %d allocation sums to %g, want %g", m.ID, sum, ws[m.ID].Xmit)
		}
	}
	// (4): per-(link, interval) capacity.
	for l := 0; l < p.Topology.Links(); l++ {
		for k := 0; k < act.Intervals.K(); k++ {
			load := 0.0
			for _, m := range p.Graph.Messages() {
				if al.P[m.ID] == nil {
					continue
				}
				for _, ml := range res.Assignment.Links[m.ID] {
					if int(ml) == l {
						load += al.P[m.ID][k]
						break
					}
				}
			}
			if load > act.Intervals.Length(k)+1e-6 {
				t.Errorf("link %d interval %d overloaded: %g > %g", l, k, load, act.Intervals.Length(k))
			}
		}
	}
}

func TestSlicesAreLinkFeasible(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	for _, sl := range res.Slices {
		a, b := res.Activity.Intervals.Bounds(sl.Interval)
		if sl.Start < a-1e-9 || sl.End > b+1e-6 {
			t.Errorf("slice [%g,%g) escapes interval [%g,%g)", sl.Start, sl.End, a, b)
		}
		used := map[topology.LinkID]tfg.MessageID{}
		for _, m := range sl.Msgs {
			for _, l := range res.Assignment.Links[m] {
				if other, clash := used[l]; clash {
					t.Fatalf("slice shares link %d between messages %d and %d", l, other, m)
				}
				used[l] = m
			}
		}
	}
}

func TestGreedyAndExactEnginesAgreeOnFeasibility(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	for _, eng := range []Engine{EngineGreedy, EngineExact} {
		res, err := Compute(p, Options{Seed: 1, Engine: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !res.Feasible {
			t.Errorf("engine %v infeasible at low load", eng)
		}
		if err := res.Omega.Validate(p.Topology); err != nil {
			t.Errorf("engine %v: %v", eng, err)
		}
	}
}

func TestOmegaCommandsConsistent(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil || !res.Feasible {
		t.Fatalf("setup: %v %v", err, res.FailStage)
	}
	om := res.Omega
	if om.NumCommands() == 0 {
		t.Fatal("no commands emitted")
	}
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			if c.End < c.Start-1e-9 {
				t.Errorf("node %d: command ends before start", ns.Node)
			}
			if c.In.AP && c.Out.AP {
				t.Errorf("node %d: AP-to-AP command", ns.Node)
			}
		}
	}
	// Every non-local message appears at both its endpoints.
	for _, m := range p.Graph.Messages() {
		if res.Windows[m.ID].Local {
			continue
		}
		srcNode := p.Assignment.Node(m.Src)
		dstNode := p.Assignment.Node(m.Dst)
		foundSrc, foundDst := false, false
		for _, c := range om.CommandsAt(srcNode) {
			if c.Msg == m.ID && c.In.AP {
				foundSrc = true
			}
		}
		for _, c := range om.CommandsAt(dstNode) {
			if c.Msg == m.ID && c.Out.AP {
				foundDst = true
			}
		}
		if !foundSrc || !foundDst {
			t.Errorf("message %d missing injection (%v) or delivery (%v)", m.ID, foundSrc, foundDst)
		}
	}
}

// The central soundness property: whenever Compute reports feasible for
// a random workload, the emitted schedule validates and executes with
// exactly constant throughput.
func TestQuickFeasibleImpliesSound(t *testing.T) {
	top, err := topology.NewGHC(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, loadRaw uint8) bool {
		g, err := tfg.RandomLayered(seed%200, []int{2, 3, 3, 2}, 100, 100, 256, 3200, 0.3)
		if err != nil {
			return false
		}
		tm, err := tfg.NewUniformTiming(g, 50, 64)
		if err != nil {
			return false
		}
		as, err := alloc.Random(g, top, seed)
		if err != nil {
			return false
		}
		tauIn := 50 * (1 + float64(loadRaw%40)/10) // load 1.0 .. 0.2
		res, err := Compute(Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn}, Options{Seed: seed})
		if err != nil {
			return false
		}
		if !res.Feasible {
			return true // infeasibility is a legitimate outcome
		}
		if res.Omega.Validate(top) != nil {
			return false
		}
		exec, err := Execute(res.Omega, g, tm, tm.TauC(), 5)
		if err != nil {
			return false
		}
		ivs := metrics.Intervals(exec.OutputCompletions)
		return !metrics.OutputInconsistent(tauIn, ivs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStageStrings(t *testing.T) {
	for s, want := range map[Stage]string{
		StageOK:               "ok",
		StageUtilization:      "utilization",
		StageAllocation:       "message-interval allocation",
		StageIntervalSchedule: "interval scheduling",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
