package schedule

import (
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/metrics"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// runWorkload pushes a TFG through the full pipeline on the given
// topology and, when feasible, executes it and checks consistency.
func runWorkload(t *testing.T, g *tfg.Graph, top *topology.Topology, tauIn float64) *Result {
	t.Helper()
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.Anneal(g, top, alloc.AnnealOptions{Seed: 2, Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		if err := res.Omega.Validate(top); err != nil {
			t.Fatalf("omega invalid: %v", err)
		}
		exec, err := Execute(res.Omega, g, tm, tm.TauC(), 5)
		if err != nil {
			t.Fatal(err)
		}
		ivs := metrics.Intervals(exec.OutputCompletions)
		if metrics.OutputInconsistent(tauIn, ivs, 1e-9) {
			t.Error("feasible schedule executed inconsistently")
		}
	}
	return res
}

func TestFFTWorkloadOnSixCube(t *testing.T) {
	// 8-point FFT: 32 tasks, 48 messages — denser than the DVB, with
	// butterfly strides exercising multi-hop path diversity.
	g, err := tfg.FFT(3, 1925, 1536)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, g, top, 200)
	if !res.Feasible {
		t.Logf("FFT at load 0.25 infeasible at %v (U=%g) — dense workload, acceptable", res.FailStage, res.Peak)
	}
	// At a very low load the FFT must schedule.
	res = runWorkload(t, g, top, 250)
	if !res.Feasible && res.FailStage == StageUtilization {
		t.Errorf("FFT at load 0.2 should pass the utilization test, peak %g", res.Peak)
	}
}

func TestStencilWorkloadOnTorus(t *testing.T) {
	// Ring-neighbor halos map naturally onto a torus.
	g, err := tfg.Stencil(8, 1925, 1536, 384)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, g, top, 250)
	if !res.Feasible {
		t.Errorf("stencil at load 0.2 should schedule on the torus, failed at %v (U=%g)", res.FailStage, res.Peak)
	}
}

func TestChainWorkloadMaxLoad(t *testing.T) {
	// A pure pipeline with short messages schedules even at load 1.0.
	g, err := tfg.Chain(10, 1925, 640) // xmit 10 << τc 50
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, g, top, 50)
	if !res.Feasible {
		t.Errorf("chain at load 1.0 should schedule, failed at %v (U=%g)", res.FailStage, res.Peak)
	}
}
