package schedule

import (
	"math/bits"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// msgSet is a bitset over message IDs, the per-link membership record
// that lets LoadState recompute a changed link's load exactly: members
// iterate in ascending message order, so partial sums reproduce the
// float-summation order of a from-scratch ComputeUtilization bit for
// bit.
type msgSet []uint64

func newMsgSet(n int) msgSet { return make(msgSet, (n+63)/64) }

func (s msgSet) add(i int)    { s[i/64] |= 1 << (uint(i) % 64) }
func (s msgSet) remove(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

func (s msgSet) clear() {
	for i := range s {
		s[i] = 0
	}
}

// forEach calls fn for every member in ascending order.
func (s msgSet) forEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// LoadState maintains the Section 5.1 link-load accumulators of one
// path assignment incrementally: per-(link, interval) active-message
// and no-slack counts, per-link transmission sums and active lengths,
// and a per-link peak score. ApplyReroute updates only the links a
// reroute actually changes — O(|changed links| × (K + messages on
// link)) instead of the O(M × L × K) full recompute — and every stored
// float is recomputed from exact integer state in the same order a
// from-scratch ComputeUtilization would sum it, so the incremental
// peaks are bit-identical to full evaluation and Apply followed by
// Undo restores the state exactly. This is what turns the Fig. 4
// AssignPaths hill-climb from quadratic re-evaluation into cheap delta
// scoring; ComputeUtilization remains as the one-shot reference and
// debug cross-check.
type LoadState struct {
	ws  []Window
	act *Activity
	nl  int
	K   int

	lenK    []float64 // lenK[k] = Intervals.Length(k), cached
	noSlack []bool    // noSlack[i] = ws[i].NoSlack(), cached

	// linkCap[j] is the bandwidth share available on link j (see
	// Options.LinkCap); link-utilization scores are U_j / linkCap[j].
	// nil means all ones and keeps the single-tenant float path
	// untouched (no division is performed, so scores stay bit-identical
	// to the pre-capacity implementation). A zero share with traffic on
	// the link scores +Inf, which the hill-climb and the feasibility
	// gate both treat as "worse than any finite peak".
	linkCap []float64

	members []msgSet  // members[j]: messages using link j
	xmit    []float64 // xmit[j]: Σ Xmit over members[j], ascending message order
	cnt     []int32   // cnt[j*K+k]: active messages on (j, k)
	spot    []int32   // spot[j*K+k]: no-slack messages on (j, k)

	activeLen []float64 // activeLen[j]: Σ interval lengths with cnt > 0
	score     []float64 // score[j]: max(U_j, max_k spot[j][k])
	scoreK    []int32   // interval attaining score[j], -1 for U_j

	// Peak cache: the top-k links ordered by (score desc, link asc),
	// rebuilt O(nl) whenever link scores actually change. EvalReroute
	// touches at most the links of two paths, so as long as fewer links
	// changed than the cache holds, the first unchanged cache entry
	// dominates every unchanged link and the peak needs no O(nl) scan.
	topk []int32

	// Per-link tentative scores of the eval in progress, valid where
	// stamp matches epoch.
	tentScore []float64
	tentK     []int32
	stamp     []int32
	changed   []int32
	epoch     int32
}

// topkSize bounds the peak cache. Any eval changing at least this many
// links (symmetric difference of two paths — beyond any preset's path
// pair) falls back to a full scan, so the cache is never correctness-
// critical.
const topkSize = 80

// NewLoadState builds the accumulators for pa from scratch.
func NewLoadState(top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity) *LoadState {
	return NewLoadStateCap(top, pa, ws, act, nil)
}

// NewLoadStateCap builds the accumulators with a per-link capacity
// vector (nil for the whole machine).
func NewLoadStateCap(top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity, linkCap []float64) *LoadState {
	nl := top.Links()
	K := act.Intervals.K()
	ls := &LoadState{
		ws:        ws,
		act:       act,
		nl:        nl,
		K:         K,
		members:   make([]msgSet, nl),
		xmit:      make([]float64, nl),
		cnt:       make([]int32, nl*K),
		spot:      make([]int32, nl*K),
		activeLen: make([]float64, nl),
		score:     make([]float64, nl),
		scoreK:    make([]int32, nl),
		tentScore: make([]float64, nl),
		tentK:     make([]int32, nl),
		stamp:     make([]int32, nl),
		lenK:      make([]float64, K),
		noSlack:   make([]bool, len(ws)),
		linkCap:   linkCap,
	}
	for k := 0; k < K; k++ {
		ls.lenK[k] = act.Intervals.Length(k)
	}
	for i := range ws {
		ls.noSlack[i] = ws[i].NoSlack()
	}
	for j := range ls.members {
		ls.members[j] = newMsgSet(len(ws))
	}
	ls.fill(pa)
	return ls
}

// Reset rebuilds the accumulators for a new assignment, reusing every
// backing array — the restart path of AssignPaths' random escapes.
func (ls *LoadState) Reset(pa *PathAssignment) {
	for j := range ls.members {
		ls.members[j].clear()
	}
	for i := range ls.cnt {
		ls.cnt[i] = 0
		ls.spot[i] = 0
	}
	ls.fill(pa)
}

func (ls *LoadState) fill(pa *PathAssignment) {
	for i := range ls.ws {
		if ls.ws[i].Local || len(pa.Links[i]) == 0 {
			continue
		}
		noSlack := ls.ws[i].NoSlack()
		row := ls.act.Active[i]
		for _, l := range pa.Links[i] {
			ls.members[l].add(i)
			base := int(l) * ls.K
			for k := 0; k < ls.K; k++ {
				if row[k] {
					ls.cnt[base+k]++
					if noSlack {
						ls.spot[base+k]++
					}
				}
			}
		}
	}
	for j := 0; j < ls.nl; j++ {
		ls.recomputeLink(j)
	}
	ls.rebuildTopK()
}

// rebuildTopK reselects the top-k links by (score desc, link asc); ties
// keep the smaller link first because later links insert after equals.
func (ls *LoadState) rebuildTopK() {
	k := ls.nl
	if k > topkSize {
		k = topkSize
	}
	ls.topk = ls.topk[:0]
	for j := 0; j < ls.nl; j++ {
		s := ls.score[j]
		if len(ls.topk) == k && ls.score[ls.topk[k-1]] >= s {
			continue // can't displace the current k-th entry
		}
		lo, hi := 0, len(ls.topk)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ls.score[ls.topk[mid]] >= s {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= k {
			continue
		}
		if len(ls.topk) < k {
			ls.topk = append(ls.topk, 0)
		}
		copy(ls.topk[lo+1:], ls.topk[lo:])
		ls.topk[lo] = int32(j)
	}
}

// recomputeLink refreshes link j's derived floats from the exact
// integer/bitset state. The transmission sum iterates members in
// ascending message order and the active length iterates intervals in
// ascending order — the exact summation orders of ComputeUtilization —
// so the derived values carry no incremental drift.
func (ls *LoadState) recomputeLink(j int) {
	sum := 0.0
	for wi, w := range ls.members[j] {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			sum += ls.ws[wi*64+b].Xmit
		}
	}
	ls.xmit[j] = sum

	base := j * ls.K
	cnt := ls.cnt[base : base+ls.K]
	spot := ls.spot[base : base+ls.K]
	al := 0.0
	maxSpot, maxSpotK := int32(0), int32(-1)
	for k := 0; k < ls.K; k++ {
		if cnt[k] > 0 {
			al += ls.lenK[k]
		}
		if spot[k] > maxSpot {
			maxSpot, maxSpotK = spot[k], int32(k)
		}
	}
	ls.activeLen[j] = al

	u := 0.0
	if al > 0 {
		u = sum / al
		if ls.linkCap != nil {
			u /= ls.linkCap[j]
		}
	}
	// Equivalent to scanning spots ascending with strict improvement
	// over a running best seeded at u: the winner is the first interval
	// attaining the maximum spot count, when that exceeds u.
	best, bestK := u, int32(-1)
	if s := float64(maxSpot); s > best {
		best, bestK = s, maxSpotK
	}
	ls.score[j] = best
	ls.scoreK[j] = bestK
}

func containsLink(links []topology.LinkID, l topology.LinkID) bool {
	for _, x := range links {
		if x == l {
			return true
		}
	}
	return false
}

// ApplyReroute moves message msg from oldLinks to newLinks, updating
// only the links in their symmetric difference.
func (ls *LoadState) ApplyReroute(msg tfg.MessageID, oldLinks, newLinks []topology.LinkID) {
	noSlack := ls.ws[msg].NoSlack()
	row := ls.act.Active[msg]
	for _, l := range oldLinks {
		if containsLink(newLinks, l) {
			continue
		}
		ls.members[l].remove(int(msg))
		base := int(l) * ls.K
		for k := 0; k < ls.K; k++ {
			if row[k] {
				ls.cnt[base+k]--
				if noSlack {
					ls.spot[base+k]--
				}
			}
		}
		ls.recomputeLink(int(l))
	}
	for _, l := range newLinks {
		if containsLink(oldLinks, l) {
			continue
		}
		ls.members[l].add(int(msg))
		base := int(l) * ls.K
		for k := 0; k < ls.K; k++ {
			if row[k] {
				ls.cnt[base+k]++
				if noSlack {
					ls.spot[base+k]++
				}
			}
		}
		ls.recomputeLink(int(l))
	}
	ls.rebuildTopK()
}

// Undo reverses a previous ApplyReroute with the same arguments. All
// counters are integers and every float is recomputed from them, so
// the state after Undo is bit-identical to the state before Apply.
func (ls *LoadState) Undo(msg tfg.MessageID, oldLinks, newLinks []topology.LinkID) {
	ls.ApplyReroute(msg, newLinks, oldLinks)
}

// EvalReroute scores the reroute without applying it: each link in the
// symmetric difference of the two paths gets a tentative score computed
// read-only in the exact float-summation orders recomputeLink would use
// after a real apply, and the peak combines those with the cached
// unchanged maximum. The returned triple is bit-identical to
// apply-peek-undo, but no state mutates and no O(nl) rescan runs on the
// cached fast path.
func (ls *LoadState) EvalReroute(msg tfg.MessageID, oldLinks, newLinks []topology.LinkID) (float64, topology.LinkID, int) {
	ls.epoch++
	if ls.epoch < 0 { // wrapped: stale stamps could collide
		for i := range ls.stamp {
			ls.stamp[i] = 0
		}
		ls.epoch = 1
	}
	ls.changed = ls.changed[:0]
	for _, l := range oldLinks {
		if !containsLink(newLinks, l) {
			ls.tentative(int(l), int(msg), false)
		}
	}
	for _, l := range newLinks {
		if !containsLink(oldLinks, l) {
			ls.tentative(int(l), int(msg), true)
		}
	}
	return ls.peakWithTentative()
}

// tentative computes link l's score as if msg were added to (or removed
// from) it, without mutating the accumulators. The transmission sum
// iterates members ascending with msg spliced in (or skipped) at its
// sorted position, and the interval scans apply the count delta inline —
// term-for-term the sums recomputeLink would produce after a real
// ApplyReroute, hence bit-identical.
func (ls *LoadState) tentative(l, msg int, add bool) {
	w := &ls.ws[msg]
	noSlack := ls.noSlack[msg]
	row := ls.act.Active[msg]
	sum := 0.0
	if add {
		spliced := false
		for wi, wv := range ls.members[l] {
			for wv != 0 {
				b := bits.TrailingZeros64(wv)
				wv &^= 1 << uint(b)
				i := wi*64 + b
				if !spliced && i > msg {
					sum += w.Xmit
					spliced = true
				}
				sum += ls.ws[i].Xmit
			}
		}
		if !spliced {
			sum += w.Xmit
		}
	} else {
		for wi, wv := range ls.members[l] {
			for wv != 0 {
				b := bits.TrailingZeros64(wv)
				wv &^= 1 << uint(b)
				if i := wi*64 + b; i != msg {
					sum += ls.ws[i].Xmit
				}
			}
		}
	}

	delta := int32(1)
	if !add {
		delta = -1
	}
	base := l * ls.K
	cnt := ls.cnt[base : base+ls.K]
	spot := ls.spot[base : base+ls.K]
	al := 0.0
	maxSpot, maxSpotK := int32(0), int32(-1)
	for k := 0; k < ls.K; k++ {
		c, s := cnt[k], spot[k]
		if row[k] {
			c += delta
			if noSlack {
				s += delta
			}
		}
		if c > 0 {
			al += ls.lenK[k]
		}
		if s > maxSpot {
			maxSpot, maxSpotK = s, int32(k)
		}
	}
	u := 0.0
	if al > 0 {
		u = sum / al
		if ls.linkCap != nil {
			u /= ls.linkCap[l]
		}
	}
	// Same strict-first-maximum reduction as recomputeLink.
	best, bestK := u, int32(-1)
	if s := float64(maxSpot); s > best {
		best, bestK = s, maxSpotK
	}
	ls.tentScore[l] = best
	ls.tentK[l] = bestK
	ls.stamp[l] = ls.epoch
	ls.changed = append(ls.changed, int32(l))
}

// peakWithTentative returns the peak over all links with the current
// tentative overrides in effect, replicating PeakPosition's ascending
// strict-improvement tie-break. Fast path: merge the changed links with
// the best unchanged cache entry; that entry dominates every unchanged
// link (the cache is a top-k order and fewer than k links changed), and
// among equal-score unchanged links the cache order puts the smallest
// link first.
func (ls *LoadState) peakWithTentative() (float64, topology.LinkID, int) {
	if len(ls.changed) >= len(ls.topk) {
		peak, link, interval := 0.0, topology.LinkID(0), int32(-1)
		for j := 0; j < ls.nl; j++ {
			s, sk := ls.score[j], ls.scoreK[j]
			if ls.stamp[j] == ls.epoch {
				s, sk = ls.tentScore[j], ls.tentK[j]
			}
			if s > peak {
				peak, link, interval = s, topology.LinkID(j), sk
			}
		}
		return peak, link, int(interval)
	}
	ch := ls.changed
	for a := 1; a < len(ch); a++ {
		v := ch[a]
		b := a - 1
		for b >= 0 && ch[b] > v {
			ch[b+1] = ch[b]
			b--
		}
		ch[b+1] = v
	}
	bestUn := int32(-1)
	for _, j := range ls.topk {
		if ls.stamp[j] != ls.epoch {
			bestUn = j
			break
		}
	}
	peak, link, interval := 0.0, topology.LinkID(0), int32(-1)
	ci := 0
	for ci < len(ch) || bestUn >= 0 {
		var j int32
		var s float64
		var sk int32
		if bestUn >= 0 && (ci == len(ch) || bestUn < ch[ci]) {
			j, s, sk = bestUn, ls.score[bestUn], ls.scoreK[bestUn]
			bestUn = -1
		} else {
			j = ch[ci]
			s, sk = ls.tentScore[j], ls.tentK[j]
			ci++
		}
		if s > peak {
			peak, link, interval = s, topology.LinkID(j), sk
		}
	}
	return peak, link, int(interval)
}

// PeakPosition returns the current peak and where it sits, with the
// same enumeration order (link ascending; link utilization before the
// link's hot-spots; intervals ascending; strict improvement) as
// ComputeUtilization, so ties break identically.
func (ls *LoadState) PeakPosition() (float64, topology.LinkID, int) {
	peak, link, interval := 0.0, topology.LinkID(0), int32(-1)
	for j := 0; j < ls.nl; j++ {
		if ls.score[j] > peak {
			peak, link, interval = ls.score[j], topology.LinkID(j), ls.scoreK[j]
		}
	}
	return peak, link, int(interval)
}

// Peak returns the current peak utilization.
func (ls *LoadState) Peak() float64 {
	p, _, _ := ls.PeakPosition()
	return p
}

// MessagesOn returns the messages currently routed over link l in
// ascending order, appended to buf — the delta-evaluation replacement
// for scanning every message's link list.
func (ls *LoadState) MessagesOn(l topology.LinkID, buf []tfg.MessageID) []tfg.MessageID {
	ls.members[l].forEach(func(i int) {
		buf = append(buf, tfg.MessageID(i))
	})
	return buf
}

// Utilization materializes the full Section 5.1 measures of the
// current state; the result equals ComputeUtilization on the same
// assignment bit for bit. LinkU stays the raw fraction of the physical
// link's bandwidth (the quantity reservations are made in); only the
// peak score is capacity-relative when a LinkCap is in effect.
func (ls *LoadState) Utilization() *Utilization {
	u := &Utilization{LinkU: make([]float64, ls.nl), PeakInterval: -1}
	for j := 0; j < ls.nl; j++ {
		if ls.activeLen[j] > 0 {
			u.LinkU[j] = ls.xmit[j] / ls.activeLen[j]
		}
	}
	peak, link, interval := ls.PeakPosition()
	u.Peak, u.PeakLink, u.PeakInterval = peak, link, interval
	return u
}
