package schedule

import (
	"math/bits"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// msgSet is a bitset over message IDs, the per-link membership record
// that lets LoadState recompute a changed link's load exactly: members
// iterate in ascending message order, so partial sums reproduce the
// float-summation order of a from-scratch ComputeUtilization bit for
// bit.
type msgSet []uint64

func newMsgSet(n int) msgSet { return make(msgSet, (n+63)/64) }

func (s msgSet) add(i int)    { s[i/64] |= 1 << (uint(i) % 64) }
func (s msgSet) remove(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

func (s msgSet) clear() {
	for i := range s {
		s[i] = 0
	}
}

// forEach calls fn for every member in ascending order.
func (s msgSet) forEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// LoadState maintains the Section 5.1 link-load accumulators of one
// path assignment incrementally: per-(link, interval) active-message
// and no-slack counts, per-link transmission sums and active lengths,
// and a per-link peak score. ApplyReroute updates only the links a
// reroute actually changes — O(|changed links| × (K + messages on
// link)) instead of the O(M × L × K) full recompute — and every stored
// float is recomputed from exact integer state in the same order a
// from-scratch ComputeUtilization would sum it, so the incremental
// peaks are bit-identical to full evaluation and Apply followed by
// Undo restores the state exactly. This is what turns the Fig. 4
// AssignPaths hill-climb from quadratic re-evaluation into cheap delta
// scoring; ComputeUtilization remains as the one-shot reference and
// debug cross-check.
type LoadState struct {
	ws  []Window
	act *Activity
	nl  int
	K   int

	members []msgSet  // members[j]: messages using link j
	xmit    []float64 // xmit[j]: Σ Xmit over members[j], ascending message order
	cnt     []int32   // cnt[j*K+k]: active messages on (j, k)
	spot    []int32   // spot[j*K+k]: no-slack messages on (j, k)

	activeLen []float64 // activeLen[j]: Σ interval lengths with cnt > 0
	score     []float64 // score[j]: max(U_j, max_k spot[j][k])
	scoreK    []int32   // interval attaining score[j], -1 for U_j
}

// NewLoadState builds the accumulators for pa from scratch.
func NewLoadState(top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity) *LoadState {
	nl := top.Links()
	K := act.Intervals.K()
	ls := &LoadState{
		ws:        ws,
		act:       act,
		nl:        nl,
		K:         K,
		members:   make([]msgSet, nl),
		xmit:      make([]float64, nl),
		cnt:       make([]int32, nl*K),
		spot:      make([]int32, nl*K),
		activeLen: make([]float64, nl),
		score:     make([]float64, nl),
		scoreK:    make([]int32, nl),
	}
	for j := range ls.members {
		ls.members[j] = newMsgSet(len(ws))
	}
	ls.fill(pa)
	return ls
}

// Reset rebuilds the accumulators for a new assignment, reusing every
// backing array — the restart path of AssignPaths' random escapes.
func (ls *LoadState) Reset(pa *PathAssignment) {
	for j := range ls.members {
		ls.members[j].clear()
	}
	for i := range ls.cnt {
		ls.cnt[i] = 0
		ls.spot[i] = 0
	}
	ls.fill(pa)
}

func (ls *LoadState) fill(pa *PathAssignment) {
	for i := range ls.ws {
		if ls.ws[i].Local || len(pa.Links[i]) == 0 {
			continue
		}
		noSlack := ls.ws[i].NoSlack()
		row := ls.act.Active[i]
		for _, l := range pa.Links[i] {
			ls.members[l].add(i)
			base := int(l) * ls.K
			for k := 0; k < ls.K; k++ {
				if row[k] {
					ls.cnt[base+k]++
					if noSlack {
						ls.spot[base+k]++
					}
				}
			}
		}
	}
	for j := 0; j < ls.nl; j++ {
		ls.recomputeLink(j)
	}
}

// recomputeLink refreshes link j's derived floats from the exact
// integer/bitset state. The transmission sum iterates members in
// ascending message order and the active length iterates intervals in
// ascending order — the exact summation orders of ComputeUtilization —
// so the derived values carry no incremental drift.
func (ls *LoadState) recomputeLink(j int) {
	sum := 0.0
	ls.members[j].forEach(func(i int) {
		sum += ls.ws[i].Xmit
	})
	ls.xmit[j] = sum

	base := j * ls.K
	al := 0.0
	for k := 0; k < ls.K; k++ {
		if ls.cnt[base+k] > 0 {
			al += ls.act.Intervals.Length(k)
		}
	}
	ls.activeLen[j] = al

	u := 0.0
	if al > 0 {
		u = sum / al
	}
	best, bestK := u, int32(-1)
	for k := 0; k < ls.K; k++ {
		if s := float64(ls.spot[base+k]); s > best {
			best, bestK = s, int32(k)
		}
	}
	ls.score[j] = best
	ls.scoreK[j] = bestK
}

func containsLink(links []topology.LinkID, l topology.LinkID) bool {
	for _, x := range links {
		if x == l {
			return true
		}
	}
	return false
}

// ApplyReroute moves message msg from oldLinks to newLinks, updating
// only the links in their symmetric difference.
func (ls *LoadState) ApplyReroute(msg tfg.MessageID, oldLinks, newLinks []topology.LinkID) {
	noSlack := ls.ws[msg].NoSlack()
	row := ls.act.Active[msg]
	for _, l := range oldLinks {
		if containsLink(newLinks, l) {
			continue
		}
		ls.members[l].remove(int(msg))
		base := int(l) * ls.K
		for k := 0; k < ls.K; k++ {
			if row[k] {
				ls.cnt[base+k]--
				if noSlack {
					ls.spot[base+k]--
				}
			}
		}
		ls.recomputeLink(int(l))
	}
	for _, l := range newLinks {
		if containsLink(oldLinks, l) {
			continue
		}
		ls.members[l].add(int(msg))
		base := int(l) * ls.K
		for k := 0; k < ls.K; k++ {
			if row[k] {
				ls.cnt[base+k]++
				if noSlack {
					ls.spot[base+k]++
				}
			}
		}
		ls.recomputeLink(int(l))
	}
}

// Undo reverses a previous ApplyReroute with the same arguments. All
// counters are integers and every float is recomputed from them, so
// the state after Undo is bit-identical to the state before Apply.
func (ls *LoadState) Undo(msg tfg.MessageID, oldLinks, newLinks []topology.LinkID) {
	ls.ApplyReroute(msg, newLinks, oldLinks)
}

// EvalReroute scores the reroute without leaving it applied: the move
// is applied, the peak read, and the move undone. Exactness of
// Apply/Undo makes this a pure what-if query.
func (ls *LoadState) EvalReroute(msg tfg.MessageID, oldLinks, newLinks []topology.LinkID) (float64, topology.LinkID, int) {
	ls.ApplyReroute(msg, oldLinks, newLinks)
	peak, link, interval := ls.PeakPosition()
	ls.Undo(msg, oldLinks, newLinks)
	return peak, link, interval
}

// PeakPosition returns the current peak and where it sits, with the
// same enumeration order (link ascending; link utilization before the
// link's hot-spots; intervals ascending; strict improvement) as
// ComputeUtilization, so ties break identically.
func (ls *LoadState) PeakPosition() (float64, topology.LinkID, int) {
	peak, link, interval := 0.0, topology.LinkID(0), int32(-1)
	for j := 0; j < ls.nl; j++ {
		if ls.score[j] > peak {
			peak, link, interval = ls.score[j], topology.LinkID(j), ls.scoreK[j]
		}
	}
	return peak, link, int(interval)
}

// Peak returns the current peak utilization.
func (ls *LoadState) Peak() float64 {
	p, _, _ := ls.PeakPosition()
	return p
}

// MessagesOn returns the messages currently routed over link l in
// ascending order, appended to buf — the delta-evaluation replacement
// for scanning every message's link list.
func (ls *LoadState) MessagesOn(l topology.LinkID, buf []tfg.MessageID) []tfg.MessageID {
	ls.members[l].forEach(func(i int) {
		buf = append(buf, tfg.MessageID(i))
	})
	return buf
}

// Utilization materializes the full Section 5.1 measures of the
// current state; the result equals ComputeUtilization on the same
// assignment bit for bit.
func (ls *LoadState) Utilization() *Utilization {
	u := &Utilization{LinkU: make([]float64, ls.nl), PeakInterval: -1}
	for j := 0; j < ls.nl; j++ {
		if ls.activeLen[j] > 0 {
			u.LinkU[j] = ls.xmit[j] / ls.activeLen[j]
		}
	}
	peak, link, interval := ls.PeakPosition()
	u.Peak, u.PeakLink, u.PeakInterval = peak, link, interval
	return u
}
