package schedule

import (
	"math/rand"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// assignPosition identifies where the peak utilization sits, used by the
// heuristic's "reposition the peak" move and its termination test.
type assignPosition struct {
	link     topology.LinkID
	interval int
}

// AssignPathsResult reports the heuristic's outcome.
type AssignPathsResult struct {
	Assignment *PathAssignment
	Util       *Utilization
	// Iterations counts utilization evaluations performed.
	Iterations int
}

// AssignPaths is the Fig. 4 iterative-improvement heuristic: starting
// from the given assignment, repeatedly locate the peak link or
// hot-spot, evaluate rerouting each multi-path message crossing it onto
// each of its equivalent shortest paths, apply the reroute with the
// largest peak reduction (or, failing that, one that repositions the
// same peak elsewhere), and on convergence restart from a random
// assignment to escape local minima. The best assignment ever seen is
// returned. The computation is deterministic for a fixed seed.
func AssignPaths(initial *PathAssignment, cands *Candidates, top *topology.Topology, ws []Window, act *Activity, seed int64, maxOuter, maxInner int) *AssignPathsResult {
	if maxOuter < 1 {
		maxOuter = 1
	}
	if maxInner < 1 {
		maxInner = 1
	}
	rng := rand.New(rand.NewSource(seed))
	evals := 0
	util := func(pa *PathAssignment) *Utilization {
		evals++
		return ComputeUtilization(top, pa, ws, act)
	}

	current := initial.Clone()
	best := current.Clone()
	bestU := util(best)

	for outer := 0; outer < maxOuter; outer++ {
		curU := util(current)
		visited := map[assignPosition]bool{}
		for inner := 0; inner < maxInner; inner++ {
			pos := assignPosition{curU.PeakLink, curU.PeakInterval}
			visited[pos] = true
			msgs := reroutable(current, cands, act, pos)
			// Evaluate every alternative path of every peak message.
			type move struct {
				msg  tfg.MessageID
				cand int
				u    *Utilization
			}
			var bestReduce, bestRepos *move
			for _, mi := range msgs {
				cur := current.Paths[mi]
				for ci, c := range cands.PathsOf[mi] {
					if c.path.Equal(cur) {
						continue
					}
					trial := current.Clone()
					trial.SetPath(mi, c.path, c.links)
					tu := util(trial)
					m := &move{msg: mi, cand: ci, u: tu}
					if tu.Peak < curU.Peak-timeEps {
						if bestReduce == nil || tu.Peak < bestReduce.u.Peak {
							bestReduce = m
						}
					} else if tu.Peak <= curU.Peak+timeEps {
						np := assignPosition{tu.PeakLink, tu.PeakInterval}
						if np != pos && !visited[np] && bestRepos == nil {
							bestRepos = m
						}
					}
				}
			}
			chosen := bestReduce
			if chosen == nil {
				chosen = bestRepos
			}
			if chosen == nil {
				break // inner convergence: no reduction, no fresh reposition
			}
			c := cands.PathsOf[chosen.msg][chosen.cand]
			current.SetPath(chosen.msg, c.path, c.links)
			curU = chosen.u
		}
		if curU.Peak < bestU.Peak-timeEps {
			best = current.Clone()
			bestU = curU
		}
		if bestU.Peak <= timeEps {
			break // cannot improve on zero
		}
		// Random restart (Fig. 4's escape from local minima).
		randomize(current, cands, rng)
	}
	return &AssignPathsResult{Assignment: best, Util: bestU, Iterations: evals}
}

// reroutable lists the multi-path messages that cross the peak link
// (and, for a hot-spot peak, are active in the peak interval).
func reroutable(pa *PathAssignment, cands *Candidates, act *Activity, pos assignPosition) []tfg.MessageID {
	var out []tfg.MessageID
	for i := range pa.Links {
		if len(cands.PathsOf[i]) < 2 {
			continue
		}
		uses := false
		for _, l := range pa.Links[i] {
			if l == pos.link {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		if pos.interval >= 0 && !act.Active[i][pos.interval] {
			continue
		}
		out = append(out, tfg.MessageID(i))
	}
	return out
}

// randomize assigns every multi-path message a uniformly random
// candidate path.
func randomize(pa *PathAssignment, cands *Candidates, rng *rand.Rand) {
	for i, list := range cands.PathsOf {
		if len(list) < 2 {
			continue
		}
		c := list[rng.Intn(len(list))]
		pa.SetPath(tfg.MessageID(i), c.path, c.links)
	}
}
