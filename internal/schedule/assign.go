package schedule

import (
	"fmt"
	"math/rand"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// assignPosition identifies where the peak utilization sits, used by the
// heuristic's "reposition the peak" move and its termination test.
type assignPosition struct {
	link     topology.LinkID
	interval int
}

// AssignPathsResult reports the heuristic's outcome.
type AssignPathsResult struct {
	Assignment *PathAssignment
	Util       *Utilization
	// Iterations counts utilization evaluations performed.
	Iterations int
}

// assignCrossCheck, when set, makes AssignPaths verify the incremental
// LoadState against a full ComputeUtilization after every outer round —
// the debug hook that the property tests flip on.
var assignCrossCheck = false

// AssignPaths is the Fig. 4 iterative-improvement heuristic: starting
// from the given assignment, repeatedly locate the peak link or
// hot-spot, evaluate rerouting each multi-path message crossing it onto
// each of its equivalent shortest paths, apply the reroute with the
// largest peak reduction (or, failing that, one that repositions the
// same peak elsewhere), and on convergence restart from a random
// assignment to escape local minima. The best assignment ever seen is
// returned. The computation is deterministic for a fixed seed.
//
// Candidate moves are scored through an incremental LoadState rather
// than a from-scratch ComputeUtilization per trial; the delta scores
// are bit-identical to full evaluation, so the move sequence — and
// hence the result for a fixed seed — is unchanged.
func AssignPaths(initial *PathAssignment, cands *Candidates, top *topology.Topology, ws []Window, act *Activity, seed int64, maxOuter, maxInner int) *AssignPathsResult {
	var a solveArena
	return assignPaths(&a, initial, cands, top, ws, act, seed, maxOuter, maxInner, nil)
}

// AssignPathsCap is AssignPaths against a per-link capacity vector (see
// Options.LinkCap): the hill-climb minimizes the capacity-relative peak
// max_j U_j / linkCap[j], steering traffic away from links with little
// residual share. nil is the whole machine.
func AssignPathsCap(initial *PathAssignment, cands *Candidates, top *topology.Topology, ws []Window, act *Activity, seed int64, maxOuter, maxInner int, linkCap []float64) *AssignPathsResult {
	var a solveArena
	return assignPaths(&a, initial, cands, top, ws, act, seed, maxOuter, maxInner, linkCap)
}

func assignPaths(a *solveArena, initial *PathAssignment, cands *Candidates, top *topology.Topology, ws []Window, act *Activity, seed int64, maxOuter, maxInner int, linkCap []float64) *AssignPathsResult {
	if maxOuter < 1 {
		maxOuter = 1
	}
	if maxInner < 1 {
		maxInner = 1
	}
	rng := rand.New(rand.NewSource(seed))
	evals := 0

	current := initial.Clone()
	best := current.Clone()
	ls := a.loadState(top, current, ws, act, linkCap)
	evals++
	bestU := ls.Utilization()

	var msgBuf []tfg.MessageID
	for outer := 0; outer < maxOuter; outer++ {
		if outer > 0 {
			ls.Reset(current)
		}
		evals++
		curPeak, curLink, curInterval := ls.PeakPosition()
		visited := map[assignPosition]bool{}
		for inner := 0; inner < maxInner; inner++ {
			pos := assignPosition{curLink, curInterval}
			visited[pos] = true
			msgBuf = reroutable(current, cands, act, ls, pos, msgBuf[:0])
			// Evaluate every alternative path of every peak message.
			type move struct {
				msg      tfg.MessageID
				cand     int
				peak     float64
				link     topology.LinkID
				interval int
			}
			var bestReduce, bestRepos move
			haveReduce, haveRepos := false, false
			for _, mi := range msgBuf {
				cur := current.Paths[mi]
				for ci, c := range cands.PathsOf[mi] {
					if c.path.Equal(cur) {
						continue
					}
					evals++
					tp, tl, tk := ls.EvalReroute(mi, current.Links[mi], c.links)
					if tp < curPeak-timeEps {
						if !haveReduce || tp < bestReduce.peak {
							bestReduce = move{msg: mi, cand: ci, peak: tp, link: tl, interval: tk}
							haveReduce = true
						}
					} else if tp <= curPeak+timeEps {
						np := assignPosition{tl, tk}
						if np != pos && !visited[np] && !haveRepos {
							bestRepos = move{msg: mi, cand: ci, peak: tp, link: tl, interval: tk}
							haveRepos = true
						}
					}
				}
			}
			chosen := bestReduce
			if !haveReduce {
				chosen = bestRepos
			}
			if !haveReduce && !haveRepos {
				break // inner convergence: no reduction, no fresh reposition
			}
			c := cands.PathsOf[chosen.msg][chosen.cand]
			ls.ApplyReroute(chosen.msg, current.Links[chosen.msg], c.links)
			current.SetPath(chosen.msg, c.path, c.links)
			curPeak, curLink, curInterval = chosen.peak, chosen.link, chosen.interval
		}
		if assignCrossCheck {
			full := ComputeUtilizationCap(top, current, ws, act, linkCap)
			got := ls.Utilization()
			if got.Peak != full.Peak || got.PeakLink != full.PeakLink || got.PeakInterval != full.PeakInterval {
				panic(fmt.Sprintf("schedule: LoadState diverged from ComputeUtilization: incremental (%v, %v, %v) vs full (%v, %v, %v)",
					got.Peak, got.PeakLink, got.PeakInterval, full.Peak, full.PeakLink, full.PeakInterval))
			}
		}
		if curPeak < bestU.Peak-timeEps {
			best = current.Clone()
			bestU = ls.Utilization()
		}
		if bestU.Peak <= timeEps {
			break // cannot improve on zero
		}
		// Random restart (Fig. 4's escape from local minima).
		randomize(current, cands, rng)
	}
	return &AssignPathsResult{Assignment: best, Util: bestU, Iterations: evals}
}

// reroutable lists the multi-path messages that cross the peak link
// (and, for a hot-spot peak, are active in the peak interval), reading
// the peak link's membership set from the LoadState instead of scanning
// every message's link list.
func reroutable(pa *PathAssignment, cands *Candidates, act *Activity, ls *LoadState, pos assignPosition, buf []tfg.MessageID) []tfg.MessageID {
	out := buf
	ls.members[pos.link].forEach(func(i int) {
		if len(cands.PathsOf[i]) < 2 {
			return
		}
		if pos.interval >= 0 && !act.Active[i][pos.interval] {
			return
		}
		out = append(out, tfg.MessageID(i))
	})
	return out
}

// randomize assigns every multi-path message a uniformly random
// candidate path.
func randomize(pa *PathAssignment, cands *Candidates, rng *rand.Rand) {
	for i, list := range cands.PathsOf {
		if len(list) < 2 {
			continue
		}
		c := list[rng.Intn(len(list))]
		pa.SetPath(tfg.MessageID(i), c.path, c.links)
	}
}
