package schedule

import (
	"context"
	"fmt"
	"sync"

	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// RepairSession runs the repair ladder repeatedly over one feasible
// base schedule as a fault state evolves — the engine behind the
// streaming reconfiguration service, where a subscription pushes
// fault / fault-repaired events and each event yields a repaired Ω.
//
// Every application repairs from the *base* (fault-free) schedule to
// the full current fault set, never from the previously repaired
// schedule: the reported Ω for a fault state is therefore independent
// of the event order that reached it, and byte-identical to a cold
// schedule.Repair call at the same state (the request/response
// /v1/repair path). What the session adds over calling Repair directly
// is memoization keyed on the canonical fault population: a
// fault → repaired → re-fault sequence hits the memo on the re-fault,
// and a single-link fault that rung 1 absorbs re-runs only the
// incremental reroute/re-validate — no full pipeline solve — which the
// SessionStats counters make observable.
//
// A RepairSession is safe for concurrent Apply calls; memoized
// reports are shared and must be treated as read-only, exactly like
// coalesced solve results.
type RepairSession struct {
	p    Problem
	opts Options
	base *Result

	mu    sync.Mutex
	memo  map[string]*RepairReport
	stats SessionStats
}

// SessionStats counts what a session's Apply calls actually cost.
type SessionStats struct {
	// Applies is the number of Apply calls completed.
	Applies int64
	// MemoHits counts Applies answered from the fault-keyed memo
	// without running any repair work.
	MemoHits int64
	// Incremental counts ladder runs that settled without a full
	// pipeline solve: outcome unaffected or incremental (rung 1).
	Incremental int64
	// FullSolves counts ladder runs that descended into the
	// full-recompute rungs (recomputed, degraded-window, degraded-rate,
	// or infeasible after trying them).
	FullSolves int64
}

// NewRepairSession pins the problem, options, and feasible base result
// the session repairs from. The base must satisfy the same contract as
// schedule.Repair's base argument.
func NewRepairSession(p Problem, o Options, base *Result) (*RepairSession, error) {
	if base == nil || !base.Feasible || base.Omega == nil {
		return nil, fmt.Errorf("schedule: repair session needs a feasible base schedule")
	}
	return &RepairSession{p: p, opts: o, base: base, memo: map[string]*RepairReport{}}, nil
}

// Base returns the session's pinned base result.
func (s *RepairSession) Base() *Result { return s.base }

// Stats snapshots the session counters.
func (s *RepairSession) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// sessionKey is the canonical identity of a fault population:
// FaultSet.String() renders failed links and nodes in sorted order, so
// two sets reached through different event sequences key identically.
func sessionKey(fs *topology.FaultSet) string {
	if fs == nil {
		return "faults{}"
	}
	return fs.String()
}

// Apply repairs the base schedule to the given fault state, memoized on
// the canonical fault population. The boolean reports a memo hit. The
// fault set is cloned before the ladder runs, so the caller may keep
// mutating its own set across events. tr, when non-nil, receives the
// repair ladder's span tree (a memo hit records nothing under it).
func (s *RepairSession) Apply(ctx context.Context, fs *topology.FaultSet, tr *trace.Span) (*RepairReport, bool, error) {
	key := sessionKey(fs)
	s.mu.Lock()
	if rep, ok := s.memo[key]; ok {
		s.stats.Applies++
		s.stats.MemoHits++
		s.mu.Unlock()
		return rep, true, nil
	}
	s.mu.Unlock()

	opt := s.opts
	opt.Trace = tr
	rep, err := Repair(ctx, s.p, opt, s.base, fs.Clone())
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	s.stats.Applies++
	switch rep.Outcome {
	case RepairUnaffected, RepairIncremental:
		s.stats.Incremental++
	default:
		s.stats.FullSolves++
	}
	// First writer wins, so concurrent Applies of one state share one
	// report (both ran the same deterministic ladder anyway).
	if prev, ok := s.memo[key]; ok {
		rep = prev
	} else {
		s.memo[key] = rep
	}
	s.mu.Unlock()
	return rep, false, nil
}
