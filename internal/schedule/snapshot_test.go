package schedule

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"schedroute/internal/errkind"
	"schedroute/internal/topology"
)

// snapshotRoundTrip encodes s, decodes it against p, and fails on any
// codec error. The returned solver is hydrated purely from the
// artifact — its build counters must stay zero until it is asked for
// something the snapshot did not carry.
func snapshotRoundTrip(t *testing.T, s *Solver, p Problem, key string) *Solver {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSolverSnapshot(&buf, s, key); err != nil {
		t.Fatalf("encode: %v", err)
	}
	warm, err := DecodeSolverSnapshot(&buf, p, key)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return warm
}

// TestSnapshotRoundTripByteIdentical is the snapshot acceptance test:
// on every standard config (four 64-node topologies at both link
// bandwidths) plus a faulted variant, a solver hydrated from a
// snapshot must emit byte-identical Ω versus cold derivation — at the
// snapshotted period and at a fresh one — while performing zero
// structure builds.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	for name, top := range solverGoldenTopologies(t) {
		for _, bw := range []float64{64, 128} {
			testSnapshotConfig(t, name, dvbProblem(t, top, bw, 0))
		}
	}
	// The faulted config: the snapshot embeds the fault signature, and
	// the baseline/candidates it carries are the fault-aware ones.
	top := sixCube(t)
	p := dvbProblem(t, top, 64, 0)
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	fs.FailLink(0)
	p.Faults = fs
	testSnapshotConfig(t, "6cube-faulted", p)
}

func testSnapshotConfig(t *testing.T, name string, p Problem) {
	t.Helper()
	ctx := context.Background()
	key := "snap-test|" + name
	cold := NewSolver(p)
	if _, err := cold.Solve(ctx, 150, Options{Seed: 1}); err != nil {
		t.Fatalf("%s: seed solve: %v", name, err)
	}
	warm := snapshotRoundTrip(t, cold, p, key)

	for _, tauIn := range []float64{150, 200} {
		want, err := cold.Solve(ctx, tauIn, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s τin=%g: cold solve: %v", name, tauIn, err)
		}
		got, err := warm.Solve(ctx, tauIn, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s τin=%g: hydrated solve: %v", name, tauIn, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s τin=%g: hydrated result differs from cold (peak %v vs %v)", name, tauIn, got.Peak, want.Peak)
		}
		if want.Feasible {
			var wb, gb bytes.Buffer
			if err := EncodeOmega(&wb, want.Omega); err != nil {
				t.Fatal(err)
			}
			if err := EncodeOmega(&gb, got.Omega); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
				t.Fatalf("%s τin=%g: hydrated Ω not byte-identical to cold derivation", name, tauIn)
			}
		}
	}

	// Hydration is not derivation: everything the snapshot carried must
	// have been served without a single structure build. (τin 200
	// shares the default window, so even the starts table was carried.)
	st := warm.CacheStats()
	if st.BaselineBuilds != 0 || st.CandidateBuilds != 0 || st.ValidateBuilds != 0 || st.StartsBuilds != 0 {
		t.Errorf("%s: hydrated solver rebuilt structure: %+v", name, st)
	}
	if st.Solves != 2 {
		t.Errorf("%s: hydrated solver served %d solves, want 2", name, st.Solves)
	}
}

// TestSnapshotEncodeDeterministic pins that equal solver state always
// serializes to equal bytes, so snapshot files are content-comparable.
func TestSnapshotEncodeDeterministic(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 0)
	enc := func() []byte {
		s := NewSolver(p)
		for _, tauIn := range []float64{150, 175, 200} {
			if _, err := s.Solve(context.Background(), tauIn, Options{Seed: 1}); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := EncodeSolverSnapshot(&buf, s, "det"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := enc(), enc(); !bytes.Equal(a, b) {
		t.Error("same solver state serialized to different bytes")
	}
}

// TestSnapshotEmptySolver round-trips a solver that has not solved
// anything yet: a legal, if pointless, artifact.
func TestSnapshotEmptySolver(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 0)
	warm := snapshotRoundTrip(t, NewSolver(p), p, "empty")
	res, err := warm.Solve(context.Background(), 150, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("solve after empty hydration failed at %v", res.FailStage)
	}
}

// TestSnapshotRejections covers every decode guard: unknown schema
// version (errkind.ErrUnknownVersion), corrupt JSON, a mismatched
// structure key, a shape mismatch, and a fault-signature mismatch
// (all errkind.ErrBadInput).
func TestSnapshotRejections(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 0)
	s := NewSolver(p)
	if _, err := s.Solve(context.Background(), 150, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSolverSnapshot(&buf, s, "guard"); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	if _, err := DecodeSolverSnapshot(strings.NewReader(`{"schema_version": 99}`), p, ""); !errors.Is(err, errkind.ErrUnknownVersion) {
		t.Errorf("unknown schema version: got %v, want ErrUnknownVersion", err)
	}
	if _, err := DecodeSolverSnapshot(strings.NewReader(`{"schema_version": `), p, ""); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("corrupt JSON: got %v, want ErrBadInput", err)
	}
	if _, err := DecodeSolverSnapshot(strings.NewReader(good), p, "other-key"); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("mismatched key: got %v, want ErrBadInput", err)
	}
	other := dvbProblem(t, solverGoldenTopologies(t)["torus88"], 64, 0)
	if _, err := DecodeSolverSnapshot(strings.NewReader(good), other, "guard"); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("shape mismatch: got %v, want ErrBadInput", err)
	}
	faulted := p
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(1)
	faulted.Faults = fs
	if _, err := DecodeSolverSnapshot(strings.NewReader(good), faulted, "guard"); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("fault mismatch: got %v, want ErrBadInput", err)
	}
	// A snapshot with a tampered path (non-adjacent hop) must be
	// rejected by the link re-derivation, not hydrated blindly.
	bad := strings.Replace(good, `"paths":[`, `"paths":[[0,63],`, 1)
	if bad == good {
		t.Fatal("fixture: no lsd paths found to tamper with")
	}
	if _, err := DecodeSolverSnapshot(strings.NewReader(bad), p, "guard"); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("tampered path: got %v, want ErrBadInput", err)
	}
}
