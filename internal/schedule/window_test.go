package schedule

import (
	"math"
	"testing"

	"schedroute/internal/tfg"
)

func diamondFixture(t *testing.T) (*tfg.Graph, *tfg.Timing) {
	t.Helper()
	g, err := tfg.Diamond(100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64) // exec 50, xmit 10
	if err != nil {
		t.Fatal(err)
	}
	return g, tm
}

func TestComputeWindowsBasic(t *testing.T) {
	g, tm := diamondFixture(t)
	// τin = 150, window = τc = 50.
	ws, err := ComputeWindows(g, tm, 150, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Message ab: released when a completes at 50; window [50, 100].
	ab := ws[0]
	if math.Abs(ab.Release-50) > 1e-9 || math.Abs(ab.AbsRelease-50) > 1e-9 {
		t.Errorf("ab release = %g (abs %g), want 50", ab.Release, ab.AbsRelease)
	}
	if math.Abs(ab.Deadline(150)-100) > 1e-9 {
		t.Errorf("ab deadline = %g, want 100", ab.Deadline(150))
	}
	if ab.Wrapped(150) {
		t.Error("ab should not wrap")
	}
	// Message bd: b starts at 100, completes 150 → release 150 mod 150 = 0.
	bd := ws[2]
	if math.Abs(bd.Release-0) > 1e-9 {
		t.Errorf("bd release = %g, want 0", bd.Release)
	}
	if math.Abs(bd.AbsRelease-150) > 1e-9 {
		t.Errorf("bd abs release = %g, want 150", bd.AbsRelease)
	}
	if math.Abs(ab.Slack()-40) > 1e-9 {
		t.Errorf("slack = %g, want 40", ab.Slack())
	}
	if ab.NoSlack() {
		t.Error("ab has slack")
	}
}

func TestComputeWindowsWrap(t *testing.T) {
	g, tm := diamondFixture(t)
	// τin = 130: message bd released at abs 150 → frame 20; deadline
	// 20+50 = 70 (no wrap). Use τin = 110: release at fmod(160? ...).
	// a completes 50, b starts 100, completes 150, frame release =
	// 150 mod 110 = 40, deadline 90 — still no wrap. Force wrap with
	// τin = 70: b starts at 100, wait — recompute: starts use window.
	ws, err := ComputeWindows(g, tm, 70, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	// a completes 50 → ab window [50, 100] abs; frame release 50,
	// deadline fmod(100,70)=30 < release → wrapped.
	ab := ws[0]
	if !ab.Wrapped(70) {
		t.Error("ab should wrap at τin=70")
	}
	if math.Abs(ab.Deadline(70)-30) > 1e-9 {
		t.Errorf("deadline = %g, want 30", ab.Deadline(70))
	}
	if !ab.Contains(60, 70) || !ab.Contains(10, 70) {
		t.Error("wrapped window must contain both segments")
	}
	if ab.Contains(40, 70) {
		t.Error("wrapped window must exclude the middle gap")
	}
}

func TestWindowFullFrame(t *testing.T) {
	w := Window{Release: 30, Length: 100, AbsRelease: 130, Xmit: 50}
	for _, tt := range []float64{0, 25, 50, 99.9} {
		if !w.Contains(tt, 100) {
			t.Errorf("full-frame window should contain %g", tt)
		}
	}
}

func TestWindowAbsoluteTime(t *testing.T) {
	w := Window{Release: 80, Length: 50, AbsRelease: 180, Xmit: 10}
	tauIn := 100.0
	// Frame 90 is 10 past release → abs 190.
	if got := w.AbsoluteTime(90, tauIn); math.Abs(got-190) > 1e-9 {
		t.Errorf("AbsoluteTime(90) = %g, want 190", got)
	}
	// Frame 20 wraps: 40 past release → abs 220.
	if got := w.AbsoluteTime(20, tauIn); math.Abs(got-220) > 1e-9 {
		t.Errorf("AbsoluteTime(20) = %g, want 220", got)
	}
}

func TestComputeWindowsRejects(t *testing.T) {
	g, tm := diamondFixture(t)
	if _, err := ComputeWindows(g, tm, 0, 50, nil); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := ComputeWindows(g, tm, 100, 0, nil); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := ComputeWindows(g, tm, 100, 200, nil); err == nil {
		t.Error("window beyond period should fail")
	}
	if _, err := ComputeWindows(g, tm, 30, 20, nil); err == nil {
		t.Error("period below τc should fail")
	}
	if _, err := ComputeWindows(g, tm, 100, 5, nil); err == nil {
		t.Error("window below longest transmission should fail")
	}
}

func TestNoSlackAtMaxLoad(t *testing.T) {
	g, err := tfg.Chain(2, 100, 3200)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64) // xmit 50 == τc
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ComputeWindows(g, tm, 50, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ws[0].NoSlack() {
		t.Error("τm = τc message must be no-slack")
	}
}

func TestLocalMessageMarked(t *testing.T) {
	g, tm := diamondFixture(t)
	ws, err := ComputeWindows(g, tm, 150, 50, func(m tfg.Message) bool { return m.ID == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !ws[1].Local || ws[0].Local {
		t.Error("local marking wrong")
	}
}

func TestIntervalPartition(t *testing.T) {
	g, tm := diamondFixture(t)
	ws, err := ComputeWindows(g, tm, 150, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := BuildIntervals(ws, 150)
	// Endpoints must start at 0, end at τin, strictly increase.
	eps := set.Endpoints
	if eps[0] != 0 || eps[len(eps)-1] != 150 {
		t.Fatalf("endpoints = %v", eps)
	}
	for i := 1; i < len(eps); i++ {
		if eps[i] <= eps[i-1] {
			t.Fatalf("non-increasing endpoints %v", eps)
		}
	}
	total := 0.0
	for k := 0; k < set.K(); k++ {
		total += set.Length(k)
	}
	if math.Abs(total-150) > 1e-9 {
		t.Errorf("interval lengths sum to %g", total)
	}
}

func TestActivityMatchesWindows(t *testing.T) {
	g, tm := diamondFixture(t)
	for _, tauIn := range []float64{50, 70, 110, 150, 250} {
		ws, err := ComputeWindows(g, tm, tauIn, 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		set := BuildIntervals(ws, tauIn)
		act := BuildActivity(ws, set)
		for i, w := range ws {
			// Total active length equals the window length.
			got := act.TotalActiveLength(tfg.MessageID(i))
			want := w.Length
			if want > tauIn {
				want = tauIn
			}
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("tauIn=%g msg %d: active length %g, want %g", tauIn, i, got, want)
			}
		}
	}
}

func TestActivityLocalRowEmpty(t *testing.T) {
	g, tm := diamondFixture(t)
	ws, err := ComputeWindows(g, tm, 150, 50, func(m tfg.Message) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	set := BuildIntervals(ws, 150)
	act := BuildActivity(ws, set)
	for i := range ws {
		if len(act.ActiveIntervals(tfg.MessageID(i))) != 0 {
			t.Errorf("local message %d should have no activity", i)
		}
	}
}
