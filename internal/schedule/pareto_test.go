package schedule

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// exploreTestProblem is a cheap workload with real routing: a 10-task
// chain on a 4x4 torus, short messages (xmit 10µs << τc 50µs) so the
// window-minimization has room to move.
func exploreTestProblem(t *testing.T) Problem {
	t.Helper()
	g, err := tfg.Chain(10, 1925, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Graph: g, Timing: tm, Topology: top, Assignment: as}
}

// TestParetoFilterProperties checks the domination filter on random
// synthetic point clouds: no front point is dominated by any input
// point, every input point is accounted for (on the front, dominated
// by a front member, or an exact duplicate of one), and the filter is
// idempotent and order-independent.
func TestParetoFilterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	objectives := AllObjectives
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]ParetoPoint, n)
		for i := range pts {
			pts[i] = ParetoPoint{
				Placement: rng.Intn(3),
				TauIn:     float64(50 + rng.Intn(5)*25),
				Latency:   float64(100 + rng.Intn(6)*50),
				Links:     rng.Intn(8),
				Buffers:   rng.Intn(10),
			}
		}
		front := ParetoFilter(pts, objectives)
		if len(front) == 0 {
			t.Fatalf("trial %d: empty front from %d points", trial, n)
		}
		for _, f := range front {
			for _, p := range pts {
				if Dominates(&p, &f, objectives) {
					t.Fatalf("trial %d: front point %+v dominated by input %+v", trial, f, p)
				}
			}
		}
		equalOn := func(a, b *ParetoPoint) bool {
			for _, ob := range objectives {
				if a.value(ob) != b.value(ob) {
					return false
				}
			}
			return true
		}
		for _, p := range pts {
			covered := false
			for i := range front {
				if Dominates(&front[i], &p, objectives) || equalOn(&front[i], &p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: input point %+v neither on the front nor dominated", trial, p)
			}
		}
		again := ParetoFilter(front, objectives)
		if !reflect.DeepEqual(front, again) {
			t.Fatalf("trial %d: filter not idempotent", trial)
		}
		shuffled := append([]ParetoPoint(nil), pts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := ParetoFilter(shuffled, objectives); !reflect.DeepEqual(front, got) {
			t.Fatalf("trial %d: front depends on input order", trial)
		}
	}
}

// TestDominates pins the strictness of domination: equal points do not
// dominate each other, and a single strict improvement with no
// regression does.
func TestDominates(t *testing.T) {
	a := ParetoPoint{TauIn: 50, Latency: 100, Links: 4, Buffers: 6}
	b := a
	if Dominates(&a, &b, AllObjectives) || Dominates(&b, &a, AllObjectives) {
		t.Error("equal points must not dominate each other")
	}
	b.Latency = 120
	if !Dominates(&a, &b, AllObjectives) {
		t.Error("a should dominate b (strictly better latency, equal elsewhere)")
	}
	if Dominates(&b, &a, AllObjectives) {
		t.Error("b must not dominate a")
	}
	// Trade-off: better latency but worse links — no domination.
	c := a
	c.Latency, c.Links = 80, 6
	if Dominates(&a, &c, AllObjectives) || Dominates(&c, &a, AllObjectives) {
		t.Error("trade-off points must be mutually non-dominated")
	}
	// On a reduced objective set the extra axes are ignored.
	if !Dominates(&a, &c, []Objective{ObjLinks}) {
		t.Error("a should dominate c on the links-only objective")
	}
}

// TestExploreFrontOnChain runs the full explorer on the chain workload
// and checks the structural contract: a non-empty deterministic front,
// a sensible minimal period, every point feasible with a validating Ω,
// and the window-minimization actually engaging (the chain's 10µs
// transmissions leave a 40µs window range below τc).
func TestExploreFrontOnChain(t *testing.T) {
	p := exploreTestProblem(t)
	opt := Options{Seed: 1}
	spec := ExploreSpec{GridPoints: 3, AnnealSeeds: []int64{3}}
	front, err := Explore(context.Background(), p, opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Placements) != 2 {
		t.Fatalf("placements = %d, want 2 (base + 1 annealed)", len(front.Placements))
	}
	if front.MinTauIn < front.TauC {
		t.Errorf("MinTauIn %g below τc %g", front.MinTauIn, front.TauC)
	}
	if len(front.Points) == 0 {
		t.Fatal("empty front")
	}
	sawShortWindow := false
	for i, pt := range front.Points {
		if pt.Result == nil || !pt.Result.Feasible {
			t.Fatalf("front point %d not feasible", i)
		}
		if err := pt.Result.Omega.Validate(p.Topology); err != nil {
			t.Errorf("front point %d: Ω invalid: %v", i, err)
		}
		if pt.Window < pt.Result.Windows[0].Length-1e-9 && pt.Window > pt.Result.Windows[0].Length+1e-9 {
			t.Errorf("front point %d: Window %g disagrees with result windows %g", i, pt.Window, pt.Result.Windows[0].Length)
		}
		if pt.Window < front.TauC-1e-9 {
			sawShortWindow = true
		}
		links, buffers := ResourceFootprint(pt.Result)
		if links != pt.Links || buffers != pt.Buffers {
			t.Errorf("front point %d: footprint (%d,%d) recorded as (%d,%d)", i, links, buffers, pt.Links, pt.Buffers)
		}
	}
	if !sawShortWindow {
		t.Error("latency minimization never shortened a window below τc")
	}
	// The front must not contain a dominated pair.
	for i := range front.Points {
		for j := range front.Points {
			if i != j && Dominates(&front.Points[i], &front.Points[j], front.Objectives) {
				t.Errorf("front point %d dominates front point %d", i, j)
			}
		}
	}
}

// TestExploreOmegaByteIdentity re-solves each front point directly at
// its (placement, τin, window) through a fresh Solver and asserts the
// whole Result — and the encoded Ω bytes — are identical: the explorer
// reports exactly what a one-shot solve would produce.
func TestExploreOmegaByteIdentity(t *testing.T) {
	p := exploreTestProblem(t)
	opt := Options{Seed: 1}
	spec := ExploreSpec{GridPoints: 2, AnnealSeeds: []int64{3}}
	front, err := Explore(context.Background(), p, opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Points) == 0 {
		t.Fatal("empty front")
	}
	for i, pt := range front.Points {
		prob := p
		prob.Assignment = front.Placements[pt.Placement].Assignment
		direct, err := NewSolver(prob).Solve(context.Background(), pt.TauIn, opt.With(WithWindow(pt.Window)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, pt.Result) {
			t.Errorf("front point %d: Result differs from direct Solve at (placement %d, τin %g, window %g)",
				i, pt.Placement, pt.TauIn, pt.Window)
		}
		var a, b bytes.Buffer
		if err := EncodeOmega(&a, pt.Result.Omega); err != nil {
			t.Fatal(err)
		}
		if err := EncodeOmega(&b, direct.Omega); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("front point %d: Ω bytes differ from direct solve", i)
		}
	}
}

// TestExploreSerialParallelIdentical pins the deterministic fan-out
// contract: the entire front — points, outcomes, evaluation counts —
// is byte-identical whether the exploration runs on one worker or
// many.
func TestExploreSerialParallelIdentical(t *testing.T) {
	p := exploreTestProblem(t)
	spec := ExploreSpec{GridPoints: 2, AnnealSeeds: []int64{3, 4}}
	serial, err := Explore(context.Background(), p, Options{Seed: 1, Procs: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 4} {
		par, err := Explore(context.Background(), p, Options{Seed: 1, Procs: procs}, spec)
		if err != nil {
			t.Fatal(err)
		}
		// Procs is part of Options but not of any Result, so the fronts
		// must DeepEqual across worker counts.
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("explore with procs=%d differs from serial run", procs)
		}
	}
}

// TestExploreObjectiveSubset drops the latency objective and checks
// the explorer skips window minimization (every point stays at the
// base window) while still producing a front.
func TestExploreObjectiveSubset(t *testing.T) {
	p := exploreTestProblem(t)
	spec := ExploreSpec{GridPoints: 2, Objectives: []Objective{ObjTauIn, ObjLinks, ObjBuffers}}
	front, err := Explore(context.Background(), p, Options{Seed: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Points) == 0 {
		t.Fatal("empty front")
	}
	for i, pt := range front.Points {
		if pt.Window != front.TauC {
			t.Errorf("point %d: window %g moved although latency was not an objective", i, pt.Window)
		}
	}
	if _, err := ParseObjectives([]string{"nope"}); err == nil {
		t.Error("unknown objective accepted")
	}
	if _, err := ParseObjectives([]string{"links", "links"}); err == nil {
		t.Error("duplicate objective accepted")
	}
}
