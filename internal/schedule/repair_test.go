package schedule

import (
	"context"
	"errors"
	"strings"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// repairFixture builds a feasible base schedule on a 3-cube: an
// 8-task chain placed one task per node, lightly loaded so single-link
// faults are incrementally repairable.
func repairFixture(t *testing.T) (Problem, Options, *Result) {
	t.Helper()
	top, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tfg.Chain(8, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]topology.NodeID, 8)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	as := &alloc.Assignment{NodeOf: nodes}
	p := Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 2 * tm.TauC()}
	o := Options{Seed: 1}
	base, err := Compute(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatalf("fixture base schedule infeasible at stage %s", base.FailStage)
	}
	return p, o, base
}

// twoTaskProblem places a single producer/consumer pair on the given
// nodes of the topology.
func twoTaskProblem(t *testing.T, top *topology.Topology, src, dst topology.NodeID) (Problem, Options, *Result) {
	t.Helper()
	g, err := tfg.Chain(2, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	as := &alloc.Assignment{NodeOf: []topology.NodeID{src, dst}}
	p := Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 2 * tm.TauC()}
	o := Options{Seed: 1}
	base, err := Compute(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatalf("base infeasible at %s", base.FailStage)
	}
	return p, o, base
}

func firstUsedLink(base *Result) topology.LinkID {
	for i := range base.Windows {
		if len(base.Assignment.Links[i]) > 0 {
			return base.Assignment.Links[i][0]
		}
	}
	return -1
}

func TestRepairEmptyFaultSetUnaffected(t *testing.T) {
	p, o, base := repairFixture(t)
	rep, err := Repair(context.Background(), p, o, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairUnaffected || rep.Result != base {
		t.Fatalf("outcome %s, want unaffected reusing the base result", rep.Outcome)
	}
	if rep.Err() != nil {
		t.Error("unaffected repair must not report an error")
	}
}

func TestRepairUnusedLinkUnaffected(t *testing.T) {
	p, o, base := repairFixture(t)
	// Find a link no message uses.
	used := topology.NewLinkSet(p.Topology.Links())
	for i := range base.Windows {
		used.AddLinks(base.Assignment.Links[i])
	}
	unused := topology.LinkID(-1)
	for l := 0; l < p.Topology.Links(); l++ {
		if !used.Has(topology.LinkID(l)) {
			unused = topology.LinkID(l)
			break
		}
	}
	if unused < 0 {
		t.Skip("every link carries traffic in this fixture")
	}
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(unused)
	rep, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairUnaffected {
		t.Fatalf("fault on unused link: outcome %s, want unaffected", rep.Outcome)
	}
}

func TestRepairSingleLinkIncremental(t *testing.T) {
	p, o, base := repairFixture(t)
	failed := firstUsedLink(base)
	if failed < 0 {
		t.Fatal("no message uses any link")
	}
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(failed)

	rep, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairIncremental {
		t.Fatalf("outcome %s (stage %s, reason %q), want incremental", rep.Outcome, rep.Stage, rep.Reason)
	}
	if len(rep.Affected) == 0 || rep.Rerouted != len(rep.Affected) {
		t.Errorf("affected=%v rerouted=%d", rep.Affected, rep.Rerouted)
	}
	if rep.Result == nil || rep.Result.Omega == nil {
		t.Fatal("incremental repair must produce a schedule")
	}
	if err := rep.Result.Omega.Validate(p.Topology); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}
	// No repaired path may cross the failed link.
	for i, path := range rep.Result.Assignment.Paths {
		if base.Windows[i].Local || len(rep.Result.Assignment.Links[i]) == 0 {
			continue
		}
		if err := path.ValidateFault(p.Topology, fs); err != nil {
			t.Errorf("message %d still crosses the fault: %v", i, err)
		}
	}
	// Unaffected messages keep their allocations.
	aff := map[tfg.MessageID]bool{}
	for _, mi := range rep.Affected {
		aff[mi] = true
	}
	for i := range base.Windows {
		if aff[tfg.MessageID(i)] || base.Allocation.P[i] == nil {
			continue
		}
		for k, v := range base.Allocation.P[i] {
			if rep.Result.Allocation.P[i][k] != v {
				t.Fatalf("pinned message %d allocation changed in interval %d", i, k)
			}
		}
	}
}

func TestRepairEverySingleLinkFault(t *testing.T) {
	p, o, base := repairFixture(t)
	for l := 0; l < p.Topology.Links(); l++ {
		fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
		fs.FailLink(topology.LinkID(l))
		rep, err := Repair(context.Background(), p, o, base, fs)
		if err != nil {
			t.Fatalf("link %d: %v", l, err)
		}
		if rep.Outcome == RepairInfeasible || rep.Outcome == RepairDegradedRate {
			t.Errorf("link %d: outcome %s on a lightly loaded cube", l, rep.Outcome)
		}
	}
}

func TestRepairNodeFaultHostingTaskInfeasible(t *testing.T) {
	p, o, base := repairFixture(t)
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailNode(2) // every node hosts a task in the fixture
	rep, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairInfeasible || !rep.LostTasks {
		t.Fatalf("outcome %s lostTasks=%v, want infeasible with lost tasks", rep.Outcome, rep.LostTasks)
	}
	var ire *InfeasibleRepairError
	if !errors.As(rep.Err(), &ire) {
		t.Fatalf("Err() = %v, want *InfeasibleRepairError", rep.Err())
	}
	if !strings.Contains(ire.Error(), "repair infeasible") {
		t.Errorf("error message %q lacks diagnosis", ire.Error())
	}
}

func TestRepairIntermediateNodeFaultSurvivable(t *testing.T) {
	// Tasks on antipodal nodes 0 and 7 of a 3-cube: every minimal path
	// crosses intermediate nodes only, so an intermediate-node fault
	// must be routed around.
	top, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	p, o, base := twoTaskProblem(t, top, 0, 7)
	path := base.Assignment.Paths[0]
	if len(path.Nodes) < 3 {
		t.Fatalf("path %s has no intermediate node", path)
	}
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	fs.FailNode(path.Nodes[1])
	rep, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome == RepairInfeasible {
		t.Fatalf("intermediate node fault must be survivable: %s", rep.Reason)
	}
	if rep.LostTasks {
		t.Error("no task was lost")
	}
}

func TestRepairDisconnectionInfeasible(t *testing.T) {
	// On a 1-cube (two nodes, one link) failing the only link
	// disconnects the endpoints: nothing can repair that.
	top, err := topology.NewHypercube(1)
	if err != nil {
		t.Fatal(err)
	}
	p, o, base := twoTaskProblem(t, top, 0, 1)
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	fs.FailLink(0)
	rep, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RepairInfeasible {
		t.Fatalf("outcome %s, want infeasible on a disconnected pair", rep.Outcome)
	}
	if rep.Err() == nil {
		t.Error("infeasible repair must expose a typed error")
	}
}

func TestRepairDeterministic(t *testing.T) {
	p, o, base := repairFixture(t)
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(firstUsedLink(base))
	a, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repair(context.Background(), p, o, base, fs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.NewPeak != b.NewPeak || a.Rerouted != b.Rerouted {
		t.Fatal("repair must be deterministic")
	}
	for i := range a.Result.Assignment.Paths {
		if !a.Result.Assignment.Paths[i].Equal(b.Result.Assignment.Paths[i]) {
			t.Fatalf("message %d path differs between identical repairs", i)
		}
	}
}
