package schedule

import (
	"fmt"

	"schedroute/internal/lp"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Allocation is the message-interval allocation matrix P = [p_ik] of
// Section 5.2: P[i][k] is the time for which message i transmits within
// interval k. Rows of local messages are nil.
type Allocation struct {
	P [][]float64
}

// ErrAllocationInfeasible is returned when the Section 5.2 linear
// system (constraints 3 and 4) has no solution for some maximal subset —
// one of the failure modes the paper reports for the 8x8 torus (Fig. 9).
type ErrAllocationInfeasible struct {
	Subset []tfg.MessageID
}

func (e *ErrAllocationInfeasible) Error() string {
	return fmt.Sprintf("schedule: message-interval allocation infeasible for subset of %d messages", len(e.Subset))
}

// AllocateIntervals solves the allocation problem independently per
// maximal subset: variables X_ik >= 0 for each active (message,
// interval) cell, with
//
//	(3) sum_k X_ik = Xmit_i                       for every message i
//	(4) sum_{i on link j} X_ik <= |A_k|           for every (link, interval)
//
// solved as a linear feasibility program (see DESIGN.md §3.5 on why the
// LP relaxation of the paper's integer program is exact here).
func AllocateIntervals(subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity) (*Allocation, error) {
	K := act.Intervals.K()
	out := &Allocation{P: make([][]float64, len(ws))}
	for _, subset := range subsets {
		if err := allocateSubset(subset, pa, ws, act, K, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AllocateIntervalsPinned re-solves the Section 5.2 allocation with the
// rows of pinned messages held at their values in base — the heart of
// incremental schedule repair: only the free (rerouted) messages get
// fresh allocations, solved against the residual per-(link, interval)
// capacity left by the pinned reservations. free reports whether a
// message may be reallocated; every other non-local message must have a
// row in base.
func AllocateIntervalsPinned(subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, base *Allocation, free func(tfg.MessageID) bool) (*Allocation, error) {
	K := act.Intervals.K()
	out := &Allocation{P: make([][]float64, len(ws))}
	for _, subset := range subsets {
		var freeMsgs []tfg.MessageID
		for _, mi := range subset {
			if free(mi) {
				freeMsgs = append(freeMsgs, mi)
			} else {
				if base.P[mi] == nil {
					return nil, fmt.Errorf("schedule: pinned message %d has no base allocation", mi)
				}
				out.P[mi] = append([]float64(nil), base.P[mi]...)
			}
		}
		if len(freeMsgs) == 0 {
			continue
		}
		if err := allocateSubsetPinned(subset, freeMsgs, pa, ws, act, K, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// allocateSubsetPinned solves the allocation LP for the free members of
// one maximal subset; the pinned members' rows are already in out and
// consume capacity on every (link, interval) they occupy.
func allocateSubsetPinned(subset, freeMsgs []tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, K int, out *Allocation) error {
	type cellKey struct {
		mi tfg.MessageID
		k  int
	}
	varOf := map[cellKey]int{}
	var cells []cellKey
	for _, mi := range freeMsgs {
		for k := 0; k < K; k++ {
			if act.Active[mi][k] {
				key := cellKey{mi, k}
				varOf[key] = len(cells)
				cells = append(cells, key)
			}
		}
	}
	prob := lp.NewProblem(len(cells))

	// Demand equality per free message.
	for _, mi := range freeMsgs {
		row := map[int]float64{}
		for k := 0; k < K; k++ {
			if act.Active[mi][k] {
				row[varOf[cellKey{mi, k}]] = 1
			}
		}
		if len(row) == 0 {
			return &ErrAllocationInfeasible{Subset: subset}
		}
		if err := prob.AddSparse(row, lp.EQ, ws[mi].Xmit); err != nil {
			return err
		}
	}

	// Per-cell capacity.
	for vi, c := range cells {
		row := map[int]float64{vi: 1}
		if err := prob.AddSparse(row, lp.LE, act.Intervals.Length(c.k)); err != nil {
			return err
		}
	}

	// Link capacity with the pinned usage subtracted from the RHS. Any
	// link a free message uses must be constrained, even when it is the
	// only free user, because pinned reservations consume capacity too.
	maxLink := topology.LinkID(-1)
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			if l > maxLink {
				maxLink = l
			}
		}
	}
	freeOn := make([][]tfg.MessageID, int(maxLink)+1)
	pinnedOn := make([][]tfg.MessageID, int(maxLink)+1)
	isFree := map[tfg.MessageID]bool{}
	for _, mi := range freeMsgs {
		isFree[mi] = true
	}
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			if isFree[mi] {
				freeOn[l] = append(freeOn[l], mi)
			} else {
				pinnedOn[l] = append(pinnedOn[l], mi)
			}
		}
	}
	for l := range freeOn {
		if len(freeOn[l]) == 0 {
			continue
		}
		for k := 0; k < K; k++ {
			row := map[int]float64{}
			for _, mi := range freeOn[l] {
				if act.Active[mi][k] {
					row[varOf[cellKey{mi, k}]] = 1
				}
			}
			if len(row) == 0 {
				continue
			}
			residual := act.Intervals.Length(k)
			for _, mi := range pinnedOn[l] {
				if out.P[mi] != nil {
					residual -= out.P[mi][k]
				}
			}
			if residual < 0 {
				residual = 0
			}
			if len(row) < 2 && residual >= act.Intervals.Length(k) {
				continue // lone free message, no pinned pressure: cell cap suffices
			}
			if err := prob.AddSparse(row, lp.LE, residual); err != nil {
				return err
			}
		}
	}

	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return &ErrAllocationInfeasible{Subset: subset}
	}
	for vi, c := range cells {
		if out.P[c.mi] == nil {
			out.P[c.mi] = make([]float64, K)
		}
		v := sol.X[vi]
		if v < 0 {
			v = 0
		}
		out.P[c.mi][c.k] = v
	}
	return nil
}

func allocateSubset(subset []tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, K int, out *Allocation) error {
	// Variable index per active (message, interval) cell.
	type cellKey struct {
		mi tfg.MessageID
		k  int
	}
	varOf := map[cellKey]int{}
	var cells []cellKey
	for _, mi := range subset {
		for k := 0; k < K; k++ {
			if act.Active[mi][k] {
				key := cellKey{mi, k}
				varOf[key] = len(cells)
				cells = append(cells, key)
			}
		}
	}
	prob := lp.NewProblem(len(cells))

	// (3) Demand equality per message.
	for _, mi := range subset {
		row := map[int]float64{}
		for k := 0; k < K; k++ {
			if act.Active[mi][k] {
				row[varOf[cellKey{mi, k}]] = 1
			}
		}
		if len(row) == 0 {
			return &ErrAllocationInfeasible{Subset: subset}
		}
		if err := prob.AddSparse(row, lp.EQ, ws[mi].Xmit); err != nil {
			return err
		}
	}

	// Per-cell capacity: no cell may exceed its interval length (implied
	// by (4) when the message uses a link, and required for exactness).
	for vi, c := range cells {
		row := map[int]float64{vi: 1}
		if err := prob.AddSparse(row, lp.LE, act.Intervals.Length(c.k)); err != nil {
			return err
		}
	}

	// (4) Link capacity per (link, interval) touched by the subset.
	// Dense per-link message lists (indexed by LinkID) replace the old
	// map: cheaper to build and iterated in ascending link order, so the
	// LP sees constraints in a deterministic order.
	maxLink := topology.LinkID(-1)
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			if l > maxLink {
				maxLink = l
			}
		}
	}
	usesLink := make([][]tfg.MessageID, int(maxLink)+1)
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			usesLink[l] = append(usesLink[l], mi)
		}
	}
	for _, msgs := range usesLink {
		if len(msgs) < 2 {
			continue // unused link, or a single message covered by the cell cap
		}
		for k := 0; k < K; k++ {
			row := map[int]float64{}
			for _, mi := range msgs {
				if act.Active[mi][k] {
					row[varOf[cellKey{mi, k}]] = 1
				}
			}
			if len(row) < 2 {
				continue // a lone message is covered by the cell cap
			}
			if err := prob.AddSparse(row, lp.LE, act.Intervals.Length(k)); err != nil {
				return err
			}
		}
	}

	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return &ErrAllocationInfeasible{Subset: subset}
	}
	for vi, c := range cells {
		if out.P[c.mi] == nil {
			out.P[c.mi] = make([]float64, K)
		}
		v := sol.X[vi]
		if v < 0 {
			v = 0
		}
		out.P[c.mi][c.k] = v
	}
	return nil
}
