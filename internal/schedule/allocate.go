package schedule

import (
	"fmt"

	"schedroute/internal/lp"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Allocation is the message-interval allocation matrix P = [p_ik] of
// Section 5.2: P[i][k] is the time for which message i transmits within
// interval k. Rows of local messages are nil.
type Allocation struct {
	P [][]float64
}

// ErrAllocationInfeasible is returned when the Section 5.2 linear
// system (constraints 3 and 4) has no solution for some maximal subset —
// one of the failure modes the paper reports for the 8x8 torus (Fig. 9).
type ErrAllocationInfeasible struct {
	Subset []tfg.MessageID
}

func (e *ErrAllocationInfeasible) Error() string {
	return fmt.Sprintf("schedule: message-interval allocation infeasible for subset of %d messages", len(e.Subset))
}

// AllocateIntervals solves the allocation problem independently per
// maximal subset: variables X_ik >= 0 for each active (message,
// interval) cell, with
//
//	(3) sum_k X_ik = Xmit_i                       for every message i
//	(4) sum_{i on link j} X_ik <= |A_k|           for every (link, interval)
//
// solved as a linear feasibility program (see DESIGN.md §3.5 on why the
// LP relaxation of the paper's integer program is exact here).
func AllocateIntervals(subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity) (*Allocation, error) {
	var a solveArena
	return allocateIntervals(&a, subsets, pa, ws, act, nil)
}

// AllocateIntervalsCap is AllocateIntervals against a per-link capacity
// vector (see Options.LinkCap): every constraint-(4) right-hand side
// becomes linkCap[j]·|A_k|, so the subset's traffic fits inside the
// link's reserved share. Links with a share below 1 are constrained
// even when only a single message crosses them (the cell cap alone
// would over-admit). nil is the whole machine.
func AllocateIntervalsCap(subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, linkCap []float64) (*Allocation, error) {
	var a solveArena
	return allocateIntervals(&a, subsets, pa, ws, act, linkCap)
}

func allocateIntervals(a *solveArena, subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, linkCap []float64) (*Allocation, error) {
	K := act.Intervals.K()
	out := &Allocation{P: make([][]float64, len(ws))}
	for _, subset := range subsets {
		if err := allocateSubset(a, subset, pa, ws, act, K, out, linkCap); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AllocateIntervalsPinned re-solves the Section 5.2 allocation with the
// rows of pinned messages held at their values in base — the heart of
// incremental schedule repair: only the free (rerouted) messages get
// fresh allocations, solved against the residual per-(link, interval)
// capacity left by the pinned reservations. free reports whether a
// message may be reallocated; every other non-local message must have a
// row in base.
func AllocateIntervalsPinned(subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, base *Allocation, free func(tfg.MessageID) bool) (*Allocation, error) {
	return AllocateIntervalsPinnedCap(subsets, pa, ws, act, base, free, nil)
}

// AllocateIntervalsPinnedCap is AllocateIntervalsPinned against a
// per-link capacity vector (see Options.LinkCap): the residual each
// free message sees is linkCap[j]·|A_k| minus the pinned usage, so an
// incremental repair cannot grow a tenant's traffic beyond its
// reserved share. nil is the whole machine.
func AllocateIntervalsPinnedCap(subsets [][]tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, base *Allocation, free func(tfg.MessageID) bool, linkCap []float64) (*Allocation, error) {
	var a solveArena
	K := act.Intervals.K()
	out := &Allocation{P: make([][]float64, len(ws))}
	var freeMsgs []tfg.MessageID
	for _, subset := range subsets {
		freeMsgs = freeMsgs[:0]
		for _, mi := range subset {
			if free(mi) {
				freeMsgs = append(freeMsgs, mi)
			} else {
				if base.P[mi] == nil {
					return nil, fmt.Errorf("schedule: pinned message %d has no base allocation", mi)
				}
				out.P[mi] = append([]float64(nil), base.P[mi]...)
			}
		}
		if len(freeMsgs) == 0 {
			continue
		}
		if err := allocateSubsetPinned(&a, subset, freeMsgs, pa, ws, act, K, out, linkCap); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// maxLinkOf returns the largest link ID any subset member crosses.
func maxLinkOf(subset []tfg.MessageID, pa *PathAssignment) topology.LinkID {
	maxLink := topology.LinkID(-1)
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			if l > maxLink {
				maxLink = l
			}
		}
	}
	return maxLink
}

// buildCells assigns one LP variable per active (message, interval) cell
// of the given messages, filling the flat varOf index. Every varOf entry
// read later this call is written here, so stale entries from earlier
// calls are harmless.
func (sc *allocScratch) buildCells(msgs []tfg.MessageID, act *Activity, K int) {
	sc.cellMsg = sc.cellMsg[:0]
	sc.cellK = sc.cellK[:0]
	for _, mi := range msgs {
		row := act.Active[mi]
		base := int(mi) * K
		for k := 0; k < K; k++ {
			if row[k] {
				sc.varOf[base+k] = int32(len(sc.cellMsg))
				sc.cellMsg = append(sc.cellMsg, int32(mi))
				sc.cellK = append(sc.cellK, int32(k))
			}
		}
	}
}

// demandRow assembles message mi's constraint-(3) row (all ones over its
// active cells, ascending variable index) into the row buffers.
func (sc *allocScratch) demandRow(mi tfg.MessageID, act *Activity, K int) ([]int32, []float64) {
	sc.rowIdx = sc.rowIdx[:0]
	sc.rowVal = sc.rowVal[:0]
	row := act.Active[mi]
	base := int(mi) * K
	for k := 0; k < K; k++ {
		if row[k] {
			sc.rowIdx = append(sc.rowIdx, sc.varOf[base+k])
			sc.rowVal = append(sc.rowVal, 1)
		}
	}
	return sc.rowIdx, sc.rowVal
}

// addCellCaps adds the per-cell capacity rows: no cell may exceed its
// interval length (implied by (4) when the message uses a link, and
// required for exactness).
func addCellCaps(prob *lp.Problem, sc *allocScratch, act *Activity) error {
	var ji [1]int32
	var jv = [1]float64{1}
	for vi := range sc.cellMsg {
		ji[0] = int32(vi)
		if err := prob.AddRow(ji[:], jv[:], lp.LE, act.Intervals.Length(int(sc.cellK[vi]))); err != nil {
			return err
		}
	}
	return nil
}

// extract copies the LP solution into out, one flat backing array per
// subset, clamping the solver's tiny negative residuals to zero.
func (sc *allocScratch) extract(sol lp.Solution, nrows, K int, out *Allocation) {
	backing := make([]float64, nrows*K)
	used := 0
	for vi := range sc.cellMsg {
		mi := sc.cellMsg[vi]
		if out.P[mi] == nil {
			out.P[mi] = backing[used*K : (used+1)*K : (used+1)*K]
			used++
		}
		v := sol.X[vi]
		if v < 0 {
			v = 0
		}
		out.P[mi][sc.cellK[vi]] = v
	}
}

func allocateSubset(a *solveArena, subset []tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, K int, out *Allocation, linkCap []float64) error {
	sc := &a.alloc
	maxLink := maxLinkOf(subset, pa)
	sc.ensure(len(ws), K, int(maxLink))
	sc.buildCells(subset, act, K)
	prob := a.lpProblem(len(sc.cellMsg))

	// (3) Demand equality per message.
	for _, mi := range subset {
		idx, val := sc.demandRow(mi, act, K)
		if len(idx) == 0 {
			return &ErrAllocationInfeasible{Subset: subset}
		}
		if err := prob.AddRow(idx, val, lp.EQ, ws[mi].Xmit); err != nil {
			return err
		}
	}

	if err := addCellCaps(prob, sc, act); err != nil {
		return err
	}

	// (4) Link capacity per (link, interval) touched by the subset.
	// Per-link message lists indexed by LinkID are built once and walked
	// in ascending link order, so the LP sees constraints in a
	// deterministic order.
	sc.epoch++
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			sc.touchLink(int(l))
			sc.linkFree[l] = append(sc.linkFree[l], mi)
		}
	}
	for l := 0; l <= int(maxLink); l++ {
		if sc.linkEpoch[l] != sc.epoch {
			continue
		}
		// A reserved share below 1 binds even a lone message (the cell
		// cap alone would let it fill the whole physical interval).
		share := 1.0
		if linkCap != nil {
			if share = linkCap[l]; share < 0 {
				share = 0
			}
		}
		msgs := sc.linkFree[l]
		if len(msgs) < 2 && share >= 1 {
			continue // a single message is covered by the cell cap
		}
		for k := 0; k < K; k++ {
			sc.rowIdx = sc.rowIdx[:0]
			sc.rowVal = sc.rowVal[:0]
			for _, mi := range msgs {
				if act.Active[mi][k] {
					sc.rowIdx = append(sc.rowIdx, sc.varOf[int(mi)*K+k])
					sc.rowVal = append(sc.rowVal, 1)
				}
			}
			if len(sc.rowIdx) == 0 || (len(sc.rowIdx) < 2 && share >= 1) {
				continue // a lone message is covered by the cell cap
			}
			if err := prob.AddRow(sc.rowIdx, sc.rowVal, lp.LE, share*act.Intervals.Length(k)); err != nil {
				return err
			}
		}
	}

	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return &ErrAllocationInfeasible{Subset: subset}
	}
	sc.extract(sol, len(subset), K, out)
	return nil
}

// allocateSubsetPinned solves the allocation LP for the free members of
// one maximal subset; the pinned members' rows are already in out and
// consume capacity on every (link, interval) they occupy.
func allocateSubsetPinned(a *solveArena, subset, freeMsgs []tfg.MessageID, pa *PathAssignment, ws []Window, act *Activity, K int, out *Allocation, linkCap []float64) error {
	sc := &a.alloc
	maxLink := maxLinkOf(subset, pa)
	sc.ensure(len(ws), K, int(maxLink))
	sc.buildCells(freeMsgs, act, K)
	prob := a.lpProblem(len(sc.cellMsg))

	// Demand equality per free message.
	for _, mi := range freeMsgs {
		idx, val := sc.demandRow(mi, act, K)
		if len(idx) == 0 {
			return &ErrAllocationInfeasible{Subset: subset}
		}
		if err := prob.AddRow(idx, val, lp.EQ, ws[mi].Xmit); err != nil {
			return err
		}
	}

	// Per-cell capacity.
	if err := addCellCaps(prob, sc, act); err != nil {
		return err
	}

	// Link capacity with the pinned usage subtracted from the RHS. Any
	// link a free message uses must be constrained, even when it is the
	// only free user, because pinned reservations consume capacity too.
	for _, mi := range subset {
		sc.isFree[mi] = false
	}
	for _, mi := range freeMsgs {
		sc.isFree[mi] = true
	}
	sc.epoch++
	for _, mi := range subset {
		for _, l := range pa.Links[mi] {
			sc.touchLink(int(l))
			if sc.isFree[mi] {
				sc.linkFree[l] = append(sc.linkFree[l], mi)
			} else {
				sc.linkPinned[l] = append(sc.linkPinned[l], mi)
			}
		}
	}
	for l := 0; l <= int(maxLink); l++ {
		if sc.linkEpoch[l] != sc.epoch || len(sc.linkFree[l]) == 0 {
			continue
		}
		share := 1.0
		if linkCap != nil {
			if share = linkCap[l]; share < 0 {
				share = 0
			}
		}
		for k := 0; k < K; k++ {
			sc.rowIdx = sc.rowIdx[:0]
			sc.rowVal = sc.rowVal[:0]
			for _, mi := range sc.linkFree[l] {
				if act.Active[mi][k] {
					sc.rowIdx = append(sc.rowIdx, sc.varOf[int(mi)*K+k])
					sc.rowVal = append(sc.rowVal, 1)
				}
			}
			if len(sc.rowIdx) == 0 {
				continue
			}
			residual := share * act.Intervals.Length(k)
			for _, mi := range sc.linkPinned[l] {
				if out.P[mi] != nil {
					residual -= out.P[mi][k]
				}
			}
			if residual < 0 {
				residual = 0
			}
			if len(sc.rowIdx) < 2 && residual >= act.Intervals.Length(k) {
				continue // lone free message, no pinned pressure: cell cap suffices
			}
			if err := prob.AddRow(sc.rowIdx, sc.rowVal, lp.LE, residual); err != nil {
				return err
			}
		}
	}

	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return &ErrAllocationInfeasible{Subset: subset}
	}
	sc.extract(sol, len(freeMsgs), K, out)
	return nil
}
