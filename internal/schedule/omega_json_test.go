package schedule

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"schedroute/internal/errkind"
	"schedroute/internal/topology"
)

// TestOmegaJSONVersionedRoundTrip saves a computed Ω through the
// versioned encoder and requires the load to reproduce it exactly,
// field for field.
func TestOmegaJSONVersionedRoundTrip(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("fixture infeasible at %v", res.FailStage)
	}

	var buf bytes.Buffer
	if err := EncodeOmega(&buf, res.Omega); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version": 1`) {
		t.Fatalf("encoded artifact missing schema_version 1:\n%.200s", buf.String())
	}
	got, err := DecodeOmega(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res.Omega) {
		t.Fatal("decoded Ω differs from the encoded one")
	}
}

// TestOmegaJSONVersions pins the version policy: 0 (legacy) and the
// current version load, anything newer is refused via the
// errkind.ErrUnknownVersion family.
func TestOmegaJSONVersions(t *testing.T) {
	base := `"tau_in": 100, "latency": 5, "windows": [], "slices": [], "nodes": []`
	for _, v := range []string{`"schema_version": 0,`, ""} {
		if _, err := DecodeOmega(strings.NewReader("{" + v + base + "}")); err != nil {
			t.Fatalf("legacy artifact (%q) rejected: %v", v, err)
		}
	}
	_, err := DecodeOmega(strings.NewReader(`{"schema_version": 99,` + base + `}`))
	if err == nil {
		t.Fatal("schema_version 99 accepted")
	}
	if !errors.Is(err, errkind.ErrUnknownVersion) {
		t.Fatalf("unknown version not in ErrUnknownVersion family: %v", err)
	}
	if errkind.HTTPStatus(err) != 400 || errkind.ExitStatus(err) != 1 {
		t.Fatalf("unexpected statuses for unknown version: http=%d exit=%d",
			errkind.HTTPStatus(err), errkind.ExitStatus(err))
	}
}

// TestSolveCancelled pins the context plumbing: a cancelled context
// aborts Solve and Repair with the context's error.
func TestSolveCancelled(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSolver(p).Solve(ctx, p.TauIn, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve under cancelled ctx: got %v, want context.Canceled", err)
	}

	base, err := Compute(p, Options{Seed: 1})
	if err != nil || !base.Feasible {
		t.Fatalf("fixture: %v feasible=%v", err, base != nil && base.Feasible)
	}
	fs := singleLinkFault(t, p)
	if _, err := Repair(ctx, p, Options{Seed: 1}, base, fs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Repair under cancelled ctx: got %v, want context.Canceled", err)
	}
}

// singleLinkFault fails the first link that carries scheduled traffic,
// guaranteeing the repair ladder has real work to do.
func singleLinkFault(t *testing.T, p Problem) *topology.FaultSet {
	t.Helper()
	base, err := Compute(p, Options{Seed: 1})
	if err != nil || !base.Feasible {
		t.Fatalf("fixture: %v", err)
	}
	for i := range base.Windows {
		if base.Windows[i].Local || len(base.Assignment.Links[i]) == 0 {
			continue
		}
		fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
		fs.FailLink(base.Assignment.Links[i][0])
		return fs
	}
	t.Fatal("no scheduled link traffic in fixture")
	return nil
}
