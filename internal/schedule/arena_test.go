package schedule

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"schedroute/internal/topology"
)

// TestArenaReuseBitIdentical pins the arena contract directly: a cold
// first Solve and many warm Solves through the same pooled scratch must
// produce deeply equal Results — same Ω command lists, same slices,
// same peak — at every load point, feasible or not. Any residue a
// stage reads from a recycled arena would show up here.
func TestArenaReuseBitIdentical(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 0)
	solver := NewSolver(p)
	ctx := context.Background()
	for k := 0; k < 12; k++ {
		tauIn := gridTauIn(k)
		cold, err := solver.Solve(ctx, tauIn, Options{Seed: 1})
		if err != nil {
			t.Fatalf("k=%d cold: %v", k, err)
		}
		for warm := 0; warm < 3; warm++ {
			got, err := solver.Solve(ctx, tauIn, Options{Seed: 1})
			if err != nil {
				t.Fatalf("k=%d warm %d: %v", k, warm, err)
			}
			if !reflect.DeepEqual(got, cold) {
				t.Fatalf("k=%d warm %d: warm-arena Solve differs from cold", k, warm)
			}
		}
	}
}

// TestArenaConcurrentSameTauIn hammers the pool from parallel
// goroutines all solving the same load point — the pattern that
// maximizes arena recycling pressure (every finishing Solve returns an
// arena another goroutine immediately reuses) — and requires every Ω
// to be bit-identical to the serial golden. Run under `make race` this
// also proves no scratch is shared between in-flight Solves.
func TestArenaConcurrentSameTauIn(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(2))
	want, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolver(p)
	ctx := context.Background()

	const workers, rounds = 8, 4
	results := make([]*Result, workers*rounds)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := solver.Solve(ctx, p.TauIn, Options{Seed: 1})
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				results[w*rounds+r] = res
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, got := range results {
		if !reflect.DeepEqual(got.Omega, want.Omega) {
			t.Fatalf("solve %d: concurrent Ω differs from serial golden", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("solve %d: concurrent Result differs from serial golden", i)
		}
	}
}

// TestArenaReuseAcrossStructures reuses one pooled arena shape across
// different problem structures back to back (6-cube then a faulted
// variant), catching any dimension-keyed cache in the arena that fails
// to rebuild when the structure changes under it.
func TestArenaReuseAcrossStructures(t *testing.T) {
	ctx := context.Background()
	tauIn := gridTauIn(4)

	perfect := dvbProblem(t, sixCube(t), 64, tauIn)
	wantPerfect, err := Compute(perfect, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulted := perfect
	fs := topology.NewFaultSet(perfect.Topology.Links(), perfect.Topology.Nodes())
	fs.FailLink(0)
	faulted.Faults = fs
	wantFaulted, err := Compute(faulted, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Alternate structures so each Solve inherits an arena warmed by
	// the other problem.
	sp, sf := NewSolver(perfect), NewSolver(faulted)
	for i := 0; i < 3; i++ {
		gp, err := sp.Solve(ctx, tauIn, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gp, wantPerfect) {
			t.Fatalf("round %d: perfect result diverged after faulted-arena reuse", i)
		}
		gf, err := sf.Solve(ctx, tauIn, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gf, wantFaulted) {
			t.Fatalf("round %d: faulted result diverged after perfect-arena reuse", i)
		}
	}
}
