package schedule

import (
	"context"
	"reflect"
	"testing"

	"schedroute/internal/parallel"
	"schedroute/internal/topology"
)

// solverGoldenTopologies mirrors experiments.StandardConfigs (which
// cannot be imported here without a cycle): every 64-node network of
// the paper at both link bandwidths.
func solverGoldenTopologies(t *testing.T) map[string]*topology.Topology {
	t.Helper()
	cube, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	ghc, err := topology.NewGHC(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	t88, err := topology.NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	t444, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*topology.Topology{"6cube": cube, "ghc444": ghc, "torus88": t88, "torus444": t444}
}

// TestSolverMatchesCompute is the golden equivalence test: a reused
// Solver must produce, for every standard config, bandwidth, and load
// point — perfect and faulted — a Result deeply equal to a fresh
// one-shot Compute.
func TestSolverMatchesCompute(t *testing.T) {
	for name, top := range solverGoldenTopologies(t) {
		for _, bw := range []float64{64, 128} {
			p := dvbProblem(t, top, bw, 0)
			var fs *topology.FaultSet
			for _, faulted := range []bool{false, true} {
				if faulted {
					fs = topology.NewFaultSet(top.Links(), top.Nodes())
					fs.FailLink(0)
				}
				prob := p
				prob.Faults = fs
				solver := NewSolver(prob)
				for k := 0; k < 12; k++ {
					tauIn := gridTauIn(k)
					prob.TauIn = tauIn
					want, err := Compute(prob, Options{Seed: 1})
					if err != nil {
						t.Fatalf("%s bw=%g faulted=%t k=%d: Compute: %v", name, bw, faulted, k, err)
					}
					got, err := solver.Solve(context.Background(), tauIn, Options{Seed: 1})
					if err != nil {
						t.Fatalf("%s bw=%g faulted=%t k=%d: Solve: %v", name, bw, faulted, k, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s bw=%g faulted=%t k=%d: Solver.Solve differs from Compute (peak %v vs %v, feasible %t vs %t)",
							name, bw, faulted, k, got.Peak, want.Peak, got.Feasible, want.Feasible)
					}
				}
			}
		}
	}
}

// TestSolverConcurrentReuse hammers one Solver from parallel workers —
// the sweep usage pattern — and requires every result to match the
// serial one-shot pipeline.
func TestSolverConcurrentReuse(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, 0)
	solver := NewSolver(p)
	results, err := parallel.Map(context.Background(), 12, parallel.Workers(0), func(k int) (*Result, error) {
		return solver.Solve(context.Background(), gridTauIn(k), Options{Seed: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, got := range results {
		prob := p
		prob.TauIn = gridTauIn(k)
		want, err := Compute(prob, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: concurrent Solve differs from serial Compute", k)
		}
	}
}

// TestSolverStats checks the instrumentation satellite: deterministic
// counters are always filled, wall-clock timings only on request.
func TestSolverStats(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(2))
	plain, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Attempts != 1 || plain.Stats.AssignIterations <= 0 {
		t.Fatalf("deterministic counters missing: %+v", plain.Stats)
	}
	if plain.Stats.AssignTime != 0 || plain.Stats.WindowsTime != 0 {
		t.Fatalf("timings must stay zero without CollectStats: %+v", plain.Stats)
	}
	timed, err := Compute(p, Options{Seed: 1, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if timed.Stats.AssignTime <= 0 {
		t.Fatalf("CollectStats left AssignTime empty: %+v", timed.Stats)
	}
	if timed.Stats.Attempts != plain.Stats.Attempts || timed.Stats.AssignIterations != plain.Stats.AssignIterations {
		t.Fatalf("CollectStats changed deterministic counters: %+v vs %+v", timed.Stats, plain.Stats)
	}
}
