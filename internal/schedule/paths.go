package schedule

import (
	"fmt"

	"schedroute/internal/alloc"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// PathAssignment fixes one path per non-local message (the matrix B of
// Section 5.1, stored as per-message link sets).
type PathAssignment struct {
	// Paths[i] is the node path of message i; empty for local messages.
	Paths []topology.Path
	// Links[i] is the resolved link sequence of message i.
	Links [][]topology.LinkID
}

// Clone deep-copies the assignment (the heuristic mutates candidates).
func (pa *PathAssignment) Clone() *PathAssignment {
	cp := &PathAssignment{
		Paths: append([]topology.Path(nil), pa.Paths...),
		Links: make([][]topology.LinkID, len(pa.Links)),
	}
	copy(cp.Links, pa.Links)
	return cp
}

// SetPath replaces message i's path.
func (pa *PathAssignment) SetPath(i tfg.MessageID, p topology.Path, links []topology.LinkID) {
	pa.Paths[i] = p
	pa.Links[i] = links
}

// LSDAssignment routes every non-local message along its deterministic
// LSD-to-MSD path — the paper's baseline path selection.
func LSDAssignment(g *tfg.Graph, top *topology.Topology, as *alloc.Assignment, ws []Window) (*PathAssignment, error) {
	return FaultRouteAssignment(g, top, as, ws, nil)
}

// FaultRouteAssignment is the fault-aware deterministic baseline: every
// non-local message takes its LSD-to-MSD path when that path survives
// the fault set, and otherwise the lexicographically first surviving
// shortest path (topology.RouteAround). With a nil or empty fault set
// it is exactly LSDAssignment. A *topology.NoRouteError is returned
// when the residual topology disconnects a message's endpoints.
func FaultRouteAssignment(g *tfg.Graph, top *topology.Topology, as *alloc.Assignment, ws []Window, fs *topology.FaultSet) (*PathAssignment, error) {
	pa := &PathAssignment{
		Paths: make([]topology.Path, g.NumMessages()),
		Links: make([][]topology.LinkID, g.NumMessages()),
	}
	for _, m := range g.Messages() {
		if ws[m.ID].Local {
			continue
		}
		p, err := top.RouteAround(as.Node(m.Src), as.Node(m.Dst), fs)
		if err != nil {
			return nil, fmt.Errorf("schedule: message %d: %w", m.ID, err)
		}
		links, err := p.Links(top)
		if err != nil {
			return nil, fmt.Errorf("schedule: message %d: %w", m.ID, err)
		}
		pa.Paths[m.ID] = p
		pa.Links[m.ID] = links
	}
	return pa, nil
}

// Candidates holds, per message, the equivalent shortest paths the
// AssignPaths heuristic may choose among.
type Candidates struct {
	// PathsOf[i] lists message i's alternative paths with resolved links.
	PathsOf [][]candidate
}

type candidate struct {
	path  topology.Path
	links []topology.LinkID
}

// BuildCandidates enumerates up to maxPaths equivalent shortest paths
// per non-local message.
func BuildCandidates(g *tfg.Graph, top *topology.Topology, as *alloc.Assignment, ws []Window, maxPaths int) (*Candidates, error) {
	return BuildCandidatesFault(g, top, as, ws, maxPaths, nil)
}

// BuildCandidatesFault enumerates up to maxPaths surviving shortest
// paths per non-local message on the residual topology; with a nil or
// empty fault set it is exactly BuildCandidates.
func BuildCandidatesFault(g *tfg.Graph, top *topology.Topology, as *alloc.Assignment, ws []Window, maxPaths int, fs *topology.FaultSet) (*Candidates, error) {
	if maxPaths < 1 {
		return nil, fmt.Errorf("schedule: maxPaths %d < 1", maxPaths)
	}
	c := &Candidates{PathsOf: make([][]candidate, g.NumMessages())}
	for _, m := range g.Messages() {
		if ws[m.ID].Local {
			continue
		}
		paths, err := top.SurvivingPaths(as.Node(m.Src), as.Node(m.Dst), maxPaths, fs)
		if err != nil {
			return nil, fmt.Errorf("schedule: message %d: %w", m.ID, err)
		}
		list := make([]candidate, 0, len(paths))
		for _, p := range paths {
			links, err := p.Links(top)
			if err != nil {
				return nil, fmt.Errorf("schedule: message %d: %w", m.ID, err)
			}
			list = append(list, candidate{path: p, links: links})
		}
		c.PathsOf[m.ID] = list
	}
	return c, nil
}

// Utilization aggregates the Section 5.1 measures for one assignment:
// per-link utilization U_j, per-spot no-slack counts U_jk, and the peak
// U that AssignPaths minimizes.
type Utilization struct {
	// LinkU[j] is U_j (0 for unused links).
	LinkU []float64
	// Peak is max(max_j U_j, max_{j,k} U_jk).
	Peak float64
	// PeakLink is the link attaining the peak.
	PeakLink topology.LinkID
	// PeakInterval is the interval of the peak spot, or -1 when the peak
	// comes from a link utilization rather than a hot-spot.
	PeakInterval int
}

// ComputeUtilization evaluates an assignment against the activity
// structure and message windows.
func ComputeUtilization(top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity) *Utilization {
	var a solveArena
	return computeUtilization(&a, top, pa, ws, act, nil)
}

// ComputeUtilizationCap is ComputeUtilization against a per-link
// capacity vector (see Options.LinkCap): LinkU stays the raw fraction
// of each physical link's bandwidth, while the peak — the feasibility
// measure — is taken relative to the link's share, U_j / linkCap[j].
// A nil vector is the whole machine and is bit-identical to
// ComputeUtilization.
func ComputeUtilizationCap(top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity, linkCap []float64) *Utilization {
	var a solveArena
	return computeUtilization(&a, top, pa, ws, act, linkCap)
}

// utilScratch is the pooled working storage of computeUtilization.
type utilScratch struct {
	xmitOnLink   []float64
	activeLen    []float64
	linkInterval []bool  // any message active on flat cell j*K+k
	spot         []int32 // no-slack count on flat cell j*K+k
}

func computeUtilization(a *solveArena, top *topology.Topology, pa *PathAssignment, ws []Window, act *Activity, linkCap []float64) *Utilization {
	sc := &a.util
	nl := top.Links()
	K := act.Intervals.K()
	if cap(sc.xmitOnLink) < nl {
		sc.xmitOnLink = make([]float64, nl)
		sc.activeLen = make([]float64, nl)
	}
	xmitOnLink := sc.xmitOnLink[:nl]
	activeLen := sc.activeLen[:nl]
	if cap(sc.linkInterval) < nl*K {
		sc.linkInterval = make([]bool, nl*K)
		sc.spot = make([]int32, nl*K)
	}
	linkInterval := sc.linkInterval[:nl*K]
	spot := sc.spot[:nl*K]
	for j := range xmitOnLink {
		xmitOnLink[j] = 0
		activeLen[j] = 0
	}
	for c := range linkInterval {
		linkInterval[c] = false
		spot[c] = 0
	}
	for i := range ws {
		if ws[i].Local || len(pa.Links[i]) == 0 {
			continue
		}
		noSlack := ws[i].NoSlack()
		row := act.Active[i]
		for _, l := range pa.Links[i] {
			xmitOnLink[l] += ws[i].Xmit
			base := int(l) * K
			for k := 0; k < K; k++ {
				if row[k] {
					linkInterval[base+k] = true
					if noSlack {
						spot[base+k]++
					}
				}
			}
		}
	}
	u := &Utilization{LinkU: make([]float64, nl), PeakInterval: -1}
	for j := 0; j < nl; j++ {
		base := j * K
		for k := 0; k < K; k++ {
			if linkInterval[base+k] {
				activeLen[j] += act.Intervals.Length(k)
			}
		}
		if activeLen[j] > 0 {
			u.LinkU[j] = xmitOnLink[j] / activeLen[j]
		}
		// Score relative to the link's capacity share; the stored LinkU
		// stays raw (reservations are fractions of the physical link).
		score := u.LinkU[j]
		if linkCap != nil && activeLen[j] > 0 {
			score /= linkCap[j]
		}
		if score > u.Peak {
			u.Peak = score
			u.PeakLink = topology.LinkID(j)
			u.PeakInterval = -1
		}
		for k := 0; k < K; k++ {
			if s := float64(spot[base+k]); s > u.Peak {
				u.Peak = s
				u.PeakLink = topology.LinkID(j)
				u.PeakInterval = k
			}
		}
	}
	return u
}
