package schedule

import (
	"sort"

	"schedroute/internal/tfg"
)

// IntervalSet is the partition of [0, τin] induced by the distinct
// message releases and deadlines (Section 5.1): endpoints
// t_0=0 < t_1 < ... < t_K = τin.
type IntervalSet struct {
	TauIn     float64
	Endpoints []float64
}

// K returns the number of intervals.
func (s *IntervalSet) K() int { return len(s.Endpoints) - 1 }

// Bounds returns interval k as [t_{k}, t_{k+1}) for k in [0, K).
func (s *IntervalSet) Bounds(k int) (float64, float64) {
	return s.Endpoints[k], s.Endpoints[k+1]
}

// Length returns the length of interval k.
func (s *IntervalSet) Length(k int) float64 {
	return s.Endpoints[k+1] - s.Endpoints[k]
}

// BuildIntervals collects the frame-relative window endpoints of all
// non-local messages and returns the induced interval partition.
func BuildIntervals(ws []Window, tauIn float64) *IntervalSet {
	pts := []float64{0, tauIn}
	for _, w := range ws {
		if w.Local {
			continue
		}
		if w.Length >= tauIn-timeEps {
			continue // full-frame window adds no endpoints
		}
		pts = append(pts, w.Release, w.Deadline(tauIn))
	}
	sort.Float64s(pts)
	uniq := pts[:1]
	for _, p := range pts[1:] {
		if p-uniq[len(uniq)-1] > timeEps {
			uniq = append(uniq, p)
		}
	}
	// Snap the last endpoint to exactly τin.
	uniq[len(uniq)-1] = tauIn
	return &IntervalSet{TauIn: tauIn, Endpoints: append([]float64(nil), uniq...)}
}

// Activity is the message activity matrix A = [a_ik] of Section 5.1:
// Active[i][k] is true when message i is available for transmission
// throughout interval k. Local messages have all-false rows.
type Activity struct {
	Intervals *IntervalSet
	Active    [][]bool
}

// BuildActivity evaluates each window against each interval. Windows
// are unions of whole intervals by construction, so a midpoint test is
// exact.
func BuildActivity(ws []Window, set *IntervalSet) *Activity {
	act := &Activity{
		Intervals: set,
		Active:    make([][]bool, len(ws)),
	}
	for i, w := range ws {
		row := make([]bool, set.K())
		if !w.Local {
			for k := 0; k < set.K(); k++ {
				a, b := set.Bounds(k)
				row[k] = w.Contains((a+b)/2, set.TauIn)
			}
		}
		act.Active[i] = row
	}
	return act
}

// ActiveIntervals returns the interval indices in which message i is
// active.
func (a *Activity) ActiveIntervals(i tfg.MessageID) []int {
	var out []int
	for k, on := range a.Active[i] {
		if on {
			out = append(out, k)
		}
	}
	return out
}

// TotalActiveLength returns the summed length of message i's active
// intervals; it equals the window length (up to rounding at wrap
// points).
func (a *Activity) TotalActiveLength(i tfg.MessageID) float64 {
	sum := 0.0
	for k, on := range a.Active[i] {
		if on {
			sum += a.Intervals.Length(k)
		}
	}
	return sum
}
