package schedule

import (
	"context"
	"fmt"
	"math"
	"sort"

	"schedroute/internal/alloc"
	"schedroute/internal/parallel"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// This file implements the Pareto-front explorer: the multi-criteria
// search over invocation period × pipeline latency × resource
// footprint that the single-τin pipeline cannot answer. For each
// candidate placement it binary-searches the minimal feasible τin,
// then walks a grid of candidate periods up from that minimum; at each
// period it minimizes the end-to-end latency Λw by binary-searching
// the shortest feasible message window (Λw depends on τin and the
// placement only through which windows still schedule — shrinking the
// window is the latency lever, at the cost of tighter interval
// scheduling), and reads the resource footprint (links used,
// buffer-slot count) off the resulting schedule. Placements are
// co-optimized through the internal/alloc annealer instead of being
// treated as fixed. The candidate evaluations fan out on
// internal/parallel under the deterministic serial-identical contract,
// and each placement's solves share one cached Solver, so the sweep
// amortizes the τin-independent derivations the same way the service's
// batch endpoint does.

// Span names recorded by Explore under ExploreSpec.Trace.
const (
	SpanExplore          = "explore"
	SpanExplorePlacement = "explore_placement"
	SpanExploreBisect    = "explore_bisect"
	SpanExplorePoint     = "explore_point"
)

// Objective names one axis of the multi-criteria search. All four are
// minimized.
type Objective string

const (
	// ObjTauIn is the invocation period τin (smaller = higher rate).
	ObjTauIn Objective = "tau_in"
	// ObjLatency is the windowed pipeline latency Λw of the schedule.
	ObjLatency Objective = "latency"
	// ObjLinks is the number of distinct physical links the path
	// assignment routes messages over.
	ObjLinks Objective = "links"
	// ObjBuffers is the buffer-slot count: the number of nonzero
	// message-interval reservations p_ik in the allocation, each of
	// which pins a CP buffer for one message in one interval.
	ObjBuffers Objective = "buffers"
)

// AllObjectives lists every objective in canonical order.
var AllObjectives = []Objective{ObjTauIn, ObjLatency, ObjLinks, ObjBuffers}

// ParseObjectives resolves objective names, defaulting to all four on
// an empty list and rejecting unknown or duplicate names.
func ParseObjectives(names []string) ([]Objective, error) {
	if len(names) == 0 {
		return append([]Objective(nil), AllObjectives...), nil
	}
	seen := map[Objective]bool{}
	out := make([]Objective, 0, len(names))
	for _, n := range names {
		ob := Objective(n)
		switch ob {
		case ObjTauIn, ObjLatency, ObjLinks, ObjBuffers:
		default:
			return nil, fmt.Errorf("schedule: unknown objective %q (want tau_in, latency, links or buffers)", n)
		}
		if seen[ob] {
			return nil, fmt.Errorf("schedule: duplicate objective %q", n)
		}
		seen[ob] = true
		out = append(out, ob)
	}
	return out, nil
}

// ExploreSpec configures one Pareto-front exploration. The zero value
// explores the problem's own placement over [τc, 5τc] on all four
// objectives.
type ExploreSpec struct {
	// MinTauIn is the lower bound of the period search (0 = τc; values
	// below τc are clamped to τc — periods under the longest task
	// accumulate unboundedly and are never legal).
	MinTauIn float64
	// MaxTauIn is the upper bound of the period search and the end of
	// the candidate-period grid (0 = 5τc).
	MaxTauIn float64
	// GridPoints is the number of candidate periods evaluated per
	// placement, spread evenly from the placement's minimal feasible
	// τin to MaxTauIn (0 = 5; 1 evaluates only the minimum).
	GridPoints int
	// Tolerance is the absolute bisection tolerance in µs for both the
	// τin and the window search (0 = τc/64).
	Tolerance float64
	// Placements are the candidate task placements to co-optimize
	// over; empty means the problem's own placement. AnnealSeeds adds
	// annealed placements on top.
	Placements []*alloc.Assignment
	// AnnealSeeds adds one simulated-annealing placement per seed
	// (deterministic per seed, built concurrently in seed order).
	AnnealSeeds []int64
	// AnnealSteps tunes the annealer move budget (0 = the alloc
	// package default).
	AnnealSteps int
	// Objectives selects the axes that define domination (empty = all
	// four). Dropping ObjLatency also skips the per-point window
	// minimization, leaving every point at the base window.
	Objectives []Objective
	// Trace, when non-nil, is the parent span the exploration records
	// under: one explore_placement child per candidate placement with
	// its explore_bisect period search, and one explore_point child per
	// evaluated (placement, period) cell. All spans are pre-created
	// serially in index order, so the traced structure is identical for
	// every worker count.
	Trace *trace.Span
}

// ParetoPoint is one schedule on (or near) the explored front.
type ParetoPoint struct {
	// Placement indexes ParetoFront.Placements.
	Placement int
	// TauIn is the invocation period the schedule runs at.
	TauIn float64
	// Window is the message window length the schedule was solved
	// with (the latency-minimal feasible window when ObjLatency is
	// selected, the base window otherwise).
	Window float64
	// Latency is the windowed pipeline latency Λw.
	Latency float64
	// Links and Buffers are the resource footprint (see
	// ResourceFootprint).
	Links   int
	Buffers int
	// Peak is the post-AssignPaths peak link utilization.
	Peak float64
	// Result is the full feasible pipeline outcome backing the point.
	// It is byte-identical to a direct Solver.Solve at this
	// (placement, TauIn, Window).
	Result *Result
}

// PlacementOutcome reports one candidate placement's period search.
type PlacementOutcome struct {
	// Assignment is the candidate placement.
	Assignment *alloc.Assignment
	// Feasible reports whether any period in range schedules; MinTauIn
	// is the bisected minimal feasible period when it does.
	Feasible bool
	MinTauIn float64
}

// ParetoFront is the outcome of one exploration.
type ParetoFront struct {
	// TauC is the workload's longest task time (the load-1 period).
	TauC float64
	// MinTauIn is the smallest feasible period found across all
	// placements (0 when nothing scheduled).
	MinTauIn float64
	// Objectives are the axes that defined domination.
	Objectives []Objective
	// Placements are the candidate placements in evaluation order.
	Placements []PlacementOutcome
	// Points is the non-dominated set, deterministically ordered by
	// (τin, latency, links, buffers, placement). Exact duplicates on
	// every selected objective are collapsed to their first
	// representative.
	Points []ParetoPoint
	// Evaluated counts the feasible schedules considered before
	// domination filtering.
	Evaluated int
}

// value reads one objective off a point.
func (pt *ParetoPoint) value(ob Objective) float64 {
	switch ob {
	case ObjTauIn:
		return pt.TauIn
	case ObjLatency:
		return pt.Latency
	case ObjLinks:
		return float64(pt.Links)
	case ObjBuffers:
		return float64(pt.Buffers)
	}
	return math.NaN()
}

// Dominates reports whether a dominates b on the given objectives:
// a is no worse on every objective and strictly better on at least
// one. All objectives are minimized.
func Dominates(a, b *ParetoPoint, objectives []Objective) bool {
	strictly := false
	for _, ob := range objectives {
		av, bv := a.value(ob), b.value(ob)
		if av > bv {
			return false
		}
		if av < bv {
			strictly = true
		}
	}
	return strictly
}

// sortPoints orders points deterministically: by τin, then latency,
// links, buffers, placement index and window. The order is total for
// points produced by Explore, which makes the filtered front
// independent of evaluation order.
func sortPoints(pts []ParetoPoint) {
	sort.SliceStable(pts, func(i, j int) bool {
		a, b := &pts[i], &pts[j]
		if a.TauIn != b.TauIn {
			return a.TauIn < b.TauIn
		}
		if a.Latency != b.Latency {
			return a.Latency < b.Latency
		}
		if a.Links != b.Links {
			return a.Links < b.Links
		}
		if a.Buffers != b.Buffers {
			return a.Buffers < b.Buffers
		}
		if a.Placement != b.Placement {
			return a.Placement < b.Placement
		}
		return a.Window < b.Window
	})
}

// ParetoFilter returns the non-dominated subset of points under the
// given objectives, deterministically ordered. Points equal on every
// selected objective are collapsed to the first in sorted order, so
// two placements reaching the same trade-off contribute one front
// point.
func ParetoFilter(points []ParetoPoint, objectives []Objective) []ParetoPoint {
	if len(objectives) == 0 {
		objectives = AllObjectives
	}
	pts := append([]ParetoPoint(nil), points...)
	sortPoints(pts)
	equalOn := func(a, b *ParetoPoint) bool {
		for _, ob := range objectives {
			if a.value(ob) != b.value(ob) {
				return false
			}
		}
		return true
	}
	var front []ParetoPoint
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if Dominates(&pts[j], &pts[i], objectives) {
				dominated = true
				break
			}
			// Collapse duplicates: only the first of an equal group
			// survives.
			if j < i && equalOn(&pts[j], &pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, pts[i])
		}
	}
	return front
}

// ResourceFootprint measures a feasible schedule's fabric usage: the
// number of distinct physical links its path assignment routes over,
// and the buffer-slot count — nonzero message-interval reservations
// p_ik, each of which holds a CP buffer for one message in one frame
// interval.
func ResourceFootprint(res *Result) (links, buffers int) {
	if res == nil {
		return 0, 0
	}
	if res.Assignment != nil {
		seen := map[topology.LinkID]bool{}
		for _, ls := range res.Assignment.Links {
			for _, l := range ls {
				if !seen[l] {
					seen[l] = true
					links++
				}
			}
		}
	}
	if res.Allocation != nil {
		for _, row := range res.Allocation.P {
			for _, v := range row {
				if v > 0 {
					buffers++
				}
			}
		}
	}
	return links, buffers
}

// minLegalWindow is the shortest window length the time-bound
// derivation accepts for a placement: every non-local message must fit
// its transmission time (plus the clock-skew margin) inside the
// window. Placements with no non-local traffic get a small positive
// floor.
func minLegalWindow(g *tfg.Graph, tm *tfg.Timing, as *alloc.Assignment, margin, tauC float64) float64 {
	w := 0.0
	for _, m := range g.Messages() {
		if as.Node(m.Src) == as.Node(m.Dst) {
			continue
		}
		if x := tm.XmitTime[m.ID]; x > w {
			w = x
		}
	}
	w += margin
	if w <= 0 {
		w = tauC / 1024
	}
	return w
}

// exploreCell is one (placement, candidate period) evaluation slot.
type exploreCell struct {
	placement int
	tauIn     float64
}

// Explore runs the Pareto-front search. Candidate placements are the
// spec's (or the problem's own) plus one annealed placement per
// AnnealSeeds entry; each placement's period bisection and each
// (placement, period) cell evaluation runs on opt.Procs workers
// (0 = GOMAXPROCS) with ordered result slots, so the front is
// byte-identical to a serial run. ctx cancels the fan-out between
// solves.
func Explore(ctx context.Context, p Problem, opt Options, spec ExploreSpec) (*ParetoFront, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Graph == nil || p.Timing == nil || p.Topology == nil {
		return nil, fmt.Errorf("schedule: incomplete problem")
	}
	objectives, err := ParseObjectives(objectiveNames(spec.Objectives))
	if err != nil {
		return nil, err
	}
	tauC := p.Timing.TauC()
	lo := spec.MinTauIn
	if lo < tauC {
		lo = tauC
	}
	hi := spec.MaxTauIn
	if hi == 0 {
		hi = 5 * tauC
	}
	if hi < lo {
		return nil, fmt.Errorf("schedule: explore period range [%g, %g] is empty", lo, hi)
	}
	tol := spec.Tolerance
	if tol <= 0 {
		tol = tauC / 64
	}
	grid := spec.GridPoints
	if grid == 0 {
		grid = 5
	}
	if grid < 1 {
		return nil, fmt.Errorf("schedule: explore grid needs at least 1 point, got %d", grid)
	}
	baseWindow := opt.Window
	if baseWindow == 0 {
		baseWindow = tauC
	}
	wantLatency := false
	for _, ob := range objectives {
		if ob == ObjLatency {
			wantLatency = true
		}
	}

	// windowFor clamps the base window into a placement's legal range
	// at one period: at least the longest transmission (the time-bound
	// derivation hard-errors below it), at most the period itself. A
	// period too short to transmit the longest message at all has no
	// legal window and is simply infeasible for that placement.
	windowFor := func(wlo, tauIn float64) (float64, bool) {
		w := baseWindow
		if w < wlo {
			w = wlo
		}
		if w > tauIn {
			w = tauIn
		}
		if w < wlo {
			return 0, false
		}
		return w, true
	}

	// Candidate placements: the explicit (or problem's own) placements
	// first, then one annealed placement per seed, built concurrently
	// in seed order. Annealing minimizes the squared per-link byte
	// load under LSD routing — the contention proxy that decides
	// whether a communication schedule exists at tight periods.
	placements := spec.Placements
	if len(placements) == 0 {
		if p.Assignment == nil {
			return nil, fmt.Errorf("schedule: explore needs a placement or anneal seeds")
		}
		placements = []*alloc.Assignment{p.Assignment}
	}
	placements = append([]*alloc.Assignment(nil), placements...)
	if len(spec.AnnealSeeds) > 0 {
		annealed, err := parallel.Map(ctx, len(spec.AnnealSeeds), parallel.Workers(opt.Procs),
			func(i int) (*alloc.Assignment, error) {
				return alloc.Anneal(p.Graph, p.Topology, alloc.AnnealOptions{
					Seed: spec.AnnealSeeds[i], Steps: spec.AnnealSteps,
				})
			})
		if err != nil {
			return nil, err
		}
		placements = append(placements, annealed...)
	}

	root := spec.Trace.Start(SpanExplore,
		trace.Int("placements", len(placements)), trace.Int("grid", grid))
	defer root.End()

	// One Solver per placement, shared by the bisection and every grid
	// cell: the LSD baseline, path candidates and task starts are
	// derived once per placement no matter how many periods and
	// windows the search probes.
	solvers := make([]*Solver, len(placements))
	wlos := make([]float64, len(placements))
	for i, as := range placements {
		prob := p
		prob.Assignment = as
		solvers[i] = NewSolver(prob)
		wlos[i] = minLegalWindow(p.Graph, p.Timing, as, opt.SyncMargin, tauC)
	}

	// Per-placement spans are pre-created serially in index order;
	// each fan-out worker records only into its own subtree, so the
	// traced structure is worker-count independent.
	pspans := make([]*trace.Span, len(placements))
	bspans := make([]*trace.Span, len(placements))
	for i := range placements {
		pspans[i] = root.Start(SpanExplorePlacement, trace.Int("index", i))
		bspans[i] = pspans[i].Start(SpanExploreBisect,
			trace.Float64("lo", lo), trace.Float64("hi", hi))
	}

	// Phase 1 — per-placement minimal-τin bisection. Feasibility is
	// monotone in the period for the pipeline's purposes (more slack,
	// same structure), so the standard invariant bisection applies:
	// keep lo infeasible and hi feasible, converge to tolerance.
	outcomes := make([]PlacementOutcome, len(placements))
	err = parallel.ForEach(ctx, len(placements), parallel.Workers(opt.Procs), func(i int) error {
		defer bspans[i].End()
		out := PlacementOutcome{Assignment: placements[i]}
		// feasibleAt treats a period with no legal window as plain
		// infeasible: the bracket stays monotone (longer periods admit
		// longer windows) and the bisection converges either way.
		feasibleAt := func(tauIn float64) (bool, error) {
			w, ok := windowFor(wlos[i], tauIn)
			if !ok {
				return false, nil
			}
			o := opt
			o.Window = w
			o.Trace = bspans[i]
			res, err := solvers[i].Solve(ctx, tauIn, o)
			if err != nil {
				return false, err
			}
			return res.Feasible, nil
		}
		feas, err := feasibleAt(lo)
		if err != nil {
			return fmt.Errorf("schedule: explore placement %d at τin=%g: %w", i, lo, err)
		}
		if feas {
			out.Feasible, out.MinTauIn = true, lo
		} else {
			feas, err = feasibleAt(hi)
			if err != nil {
				return fmt.Errorf("schedule: explore placement %d at τin=%g: %w", i, hi, err)
			}
			if feas {
				blo, bhi := lo, hi
				for bhi-blo > tol {
					mid := blo + (bhi-blo)/2
					feas, err = feasibleAt(mid)
					if err != nil {
						return fmt.Errorf("schedule: explore placement %d at τin=%g: %w", i, mid, err)
					}
					if feas {
						bhi = mid
					} else {
						blo = mid
					}
				}
				out.Feasible, out.MinTauIn = true, bhi
			}
		}
		bspans[i].SetAttrs(trace.Bool("feasible", out.Feasible),
			trace.Float64("min_tau_in", out.MinTauIn))
		outcomes[i] = out
		return nil
	})
	if err != nil {
		endSpans(pspans)
		return nil, err
	}

	// Phase 2 — grid cells. Each feasible placement contributes
	// GridPoints candidate periods from its own minimal τin up to the
	// range end; every cell is independent, so the flattened list fans
	// out with ordered result slots.
	var cells []exploreCell
	for i, out := range outcomes {
		if !out.Feasible {
			continue
		}
		for j := 0; j < grid; j++ {
			tauIn := out.MinTauIn
			if grid > 1 {
				tauIn = out.MinTauIn + (hi-out.MinTauIn)*float64(j)/float64(grid-1)
			}
			cells = append(cells, exploreCell{placement: i, tauIn: tauIn})
		}
	}
	cspans := make([]*trace.Span, len(cells))
	for k, c := range cells {
		cspans[k] = pspans[c.placement].Start(SpanExplorePoint,
			trace.Int("index", k), trace.Float64("tau_in", c.tauIn))
	}

	points := make([]*ParetoPoint, len(cells))
	err = parallel.ForEach(ctx, len(cells), parallel.Workers(opt.Procs), func(k int) error {
		defer cspans[k].End()
		c := cells[k]
		solve := func(window float64) (*Result, error) {
			o := opt
			o.Window = window
			o.Trace = cspans[k]
			return solvers[c.placement].Solve(ctx, c.tauIn, o)
		}
		whi, ok := windowFor(wlos[c.placement], c.tauIn)
		if !ok {
			cspans[k].SetAttrs(trace.Bool("feasible", false))
			return nil
		}
		res, err := solve(whi)
		if err != nil {
			return fmt.Errorf("schedule: explore cell τin=%g: %w", c.tauIn, err)
		}
		if !res.Feasible {
			// A heuristic miss above the bisected minimum: drop the cell
			// rather than fail the exploration.
			cspans[k].SetAttrs(trace.Bool("feasible", false))
			return nil
		}
		window := whi
		if wantLatency {
			// Latency minimization: Λw shrinks with the window, so find
			// the shortest window that still schedules at this period.
			wlo := wlos[c.placement]
			if wlo < whi {
				if r, err := solve(wlo); err != nil {
					return fmt.Errorf("schedule: explore cell τin=%g window=%g: %w", c.tauIn, wlo, err)
				} else if r.Feasible {
					window, res = wlo, r
				} else {
					blo, bhi := wlo, whi
					for bhi-blo > tol {
						mid := blo + (bhi-blo)/2
						r, err := solve(mid)
						if err != nil {
							return fmt.Errorf("schedule: explore cell τin=%g window=%g: %w", c.tauIn, mid, err)
						}
						if r.Feasible {
							bhi, res = mid, r
						} else {
							blo = mid
						}
					}
					window = bhi
				}
			}
		}
		links, buffers := ResourceFootprint(res)
		points[k] = &ParetoPoint{
			Placement: c.placement,
			TauIn:     c.tauIn,
			Window:    window,
			Latency:   res.Latency,
			Links:     links,
			Buffers:   buffers,
			Peak:      res.Peak,
			Result:    res,
		}
		cspans[k].SetAttrs(trace.Bool("feasible", true),
			trace.Float64("window", window), trace.Float64("latency", res.Latency))
		return nil
	})
	endSpans(pspans)
	if err != nil {
		return nil, err
	}

	front := &ParetoFront{
		TauC:       tauC,
		Objectives: objectives,
		Placements: outcomes,
	}
	for _, out := range outcomes {
		if out.Feasible && (front.MinTauIn == 0 || out.MinTauIn < front.MinTauIn) {
			front.MinTauIn = out.MinTauIn
		}
	}
	var evaluated []ParetoPoint
	for _, pt := range points {
		if pt != nil {
			evaluated = append(evaluated, *pt)
		}
	}
	front.Evaluated = len(evaluated)
	front.Points = ParetoFilter(evaluated, objectives)
	root.SetAttrs(trace.Int("evaluated", front.Evaluated),
		trace.Int("front", len(front.Points)))
	return front, nil
}

func endSpans(spans []*trace.Span) {
	for _, sp := range spans {
		sp.End()
	}
}

func objectiveNames(obs []Objective) []string {
	out := make([]string, len(obs))
	for i, ob := range obs {
		out[i] = string(ob)
	}
	return out
}
