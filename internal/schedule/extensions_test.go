package schedule

import (
	"context"
	"bytes"
	"math"
	"testing"

	"schedroute/internal/metrics"
	"schedroute/internal/topology"
)

func TestSyncMarginStillFeasible(t *testing.T) {
	// At low load the DVB windows have slack; a small clock-skew margin
	// must not break feasibility, and the schedule must still validate.
	p := dvbProblem(t, sixCube(t), 128, gridTauIn(8))
	res, err := Compute(p, Options{Seed: 1, SyncMargin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("margin 2 µs broke feasibility at %v", res.FailStage)
	}
	if err := res.Omega.Validate(p.Topology); err != nil {
		t.Errorf("validation: %v", err)
	}
	// The margin shrinks every non-local window at its deadline side,
	// leaving the release untouched.
	plain, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Windows {
		if res.Windows[i].Local {
			continue
		}
		if res.Windows[i].AbsRelease != plain.Windows[i].AbsRelease {
			t.Fatalf("message %d release moved by the margin", i)
		}
		if math.Abs(plain.Windows[i].Length-res.Windows[i].Length-2) > 1e-9 {
			t.Fatalf("message %d window not shrunk by the margin", i)
		}
	}
	// Execution still yields constant throughput.
	exec, err := Execute(res.Omega, p.Graph, p.Timing, p.Timing.TauC(), 6)
	if err != nil {
		t.Fatal(err)
	}
	ivs := metrics.Intervals(exec.OutputCompletions)
	if metrics.OutputInconsistent(p.TauIn, ivs, 1e-9) {
		t.Error("margin schedule lost output consistency")
	}
}

func TestSyncMarginTooLargeRejected(t *testing.T) {
	// At B=64 the c-messages are no-slack: any margin exceeds capacity.
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	if _, err := Compute(p, Options{Seed: 1, SyncMargin: 1}); err == nil {
		t.Error("margin on a no-slack window should be rejected")
	}
}

func TestRetriesRecoverAllocationFailure(t *testing.T) {
	// τin = 200 fails message-interval allocation with seed 1 (see
	// compute tests); feedback retries with fresh seeds should find an
	// alternative path assignment for at least one of a few base seeds.
	p := dvbProblem(t, sixCube(t), 64, 200)
	plain, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Feasible {
		t.Skip("baseline unexpectedly feasible; retry path not exercised")
	}
	retried, err := Compute(p, Options{Seed: 1, Retries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !retried.Feasible {
		// Retries are heuristic; at minimum they must not worsen the
		// reported peak.
		if retried.Peak > plain.Peak+1e-9 {
			t.Errorf("retries worsened peak: %g > %g", retried.Peak, plain.Peak)
		}
		t.Logf("retries did not recover feasibility (stage %v); acceptable but worth knowing", retried.FailStage)
	} else if err := retried.Omega.Validate(p.Topology); err != nil {
		t.Errorf("recovered schedule invalid: %v", err)
	}
}

func TestComputeBestAllocation(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	cands, err := DefaultCandidates(context.Background(), p, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("got %d candidates", len(cands))
	}
	sr, err := ComputeBestAllocation(context.Background(), p, Options{Seed: 1}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Chosen < 0 || sr.Chosen >= len(cands) {
		t.Fatalf("chosen index %d", sr.Chosen)
	}
	// The coupled search can never be worse than the round-robin
	// baseline (candidate 0) since that candidate is in the pool.
	base, err := Compute(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Feasible && !sr.Result.Feasible {
		t.Error("search lost feasibility available in the pool")
	}
	if base.Feasible == sr.Result.Feasible && sr.Result.Peak > base.Peak+1e-9 {
		t.Errorf("search peak %g worse than baseline %g", sr.Result.Peak, base.Peak)
	}
}

func TestComputeBestAllocationRejectsEmpty(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	if _, err := ComputeBestAllocation(context.Background(), p, Options{}, nil); err == nil {
		t.Error("empty candidate list should fail")
	}
}

func TestOmegaJSONRoundTrip(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	res, err := Compute(p, Options{Seed: 1})
	if err != nil || !res.Feasible {
		t.Fatalf("setup: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeOmega(&buf, res.Omega); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOmega(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TauIn != res.Omega.TauIn || got.Latency != res.Omega.Latency {
		t.Error("scalar fields lost")
	}
	if len(got.Slices) != len(res.Omega.Slices) || len(got.Nodes) != len(res.Omega.Nodes) {
		t.Fatal("structure lost")
	}
	// The decoded schedule still validates and executes identically.
	if err := got.Validate(p.Topology); err != nil {
		t.Errorf("decoded omega invalid: %v", err)
	}
	a, err := Execute(res.Omega, p.Graph, p.Timing, p.Timing.TauC(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(got, p.Graph, p.Timing, p.Timing.TauC(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.OutputCompletions {
		if a.OutputCompletions[i] != b.OutputCompletions[i] {
			t.Fatal("decoded omega executes differently")
		}
	}
	for i := range a.Deliveries {
		if math.Abs(a.Deliveries[i]-b.Deliveries[i]) > 1e-9 {
			t.Fatal("decoded omega delivers differently")
		}
	}
}

func TestDecodeOmegaRejectsGarbage(t *testing.T) {
	cases := []string{
		"{nope",
		`{"tau_in":0}`,
		`{"tau_in":50,"slices":[{"interval":0,"msgs":[0],"until":[]}]}`,
		`{"tau_in":50,"windows":[],"slices":[{"interval":0,"msgs":[5],"until":[1]}]}`,
		`{"tau_in":50,"nodes":[{"node":0,"commands":[{"in":"XX","out":"AP"}]}]}`,
	}
	for _, c := range cases {
		if _, err := DecodeOmega(bytes.NewBufferString(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestDefaultCandidatesRejectOversubscription(t *testing.T) {
	p := dvbProblem(t, sixCube(t), 64, gridTauIn(5))
	small := p
	tiny, err := topology.NewHypercube(2) // 4 nodes for 15 tasks
	if err != nil {
		t.Fatal(err)
	}
	small.Topology = tiny
	if _, err := DefaultCandidates(context.Background(), small); err == nil {
		t.Error("15 tasks on 4 nodes should fail")
	}
}
