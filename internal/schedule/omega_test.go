package schedule

import (
	"math"
	"testing"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// ringOmega builds a tiny hand-made Ω on an 8-node ring: one message
// from node 0 to node 2 via node 1, transmitted in [0, 8) of a 20 µs
// frame.
func ringOmega(t *testing.T) (*Omega, *topology.Topology, *PathAssignment) {
	t.Helper()
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	p := top.LSDToMSD(0, 2)
	links, err := p.Links(top)
	if err != nil {
		t.Fatal(err)
	}
	pa := &PathAssignment{
		Paths: []topology.Path{p},
		Links: [][]topology.LinkID{links},
	}
	ws := []Window{{Release: 0, Length: 10, AbsRelease: 0, Xmit: 8}}
	slices := []Slice{{Interval: 0, Start: 0, End: 8, Msgs: []tfg.MessageID{0}, Until: []float64{8}}}
	om := BuildOmega(slices, pa, ws, top.Nodes(), 20, 30)
	return om, top, pa
}

func TestBuildOmegaCommandShape(t *testing.T) {
	om, top, pa := ringOmega(t)
	if err := om.Validate(top); err != nil {
		t.Fatal(err)
	}
	// Source node 0: AP -> first link.
	src := om.CommandsAt(0)
	if len(src) != 1 || !src[0].In.AP || src[0].Out.AP {
		t.Errorf("source commands = %+v", src)
	}
	if src[0].Out.Link != pa.Links[0][0] {
		t.Errorf("source out link = %v", src[0].Out)
	}
	// Intermediate node 1: link -> link.
	mid := om.CommandsAt(1)
	if len(mid) != 1 || mid[0].In.AP || mid[0].Out.AP {
		t.Errorf("intermediate commands = %+v", mid)
	}
	// Destination node 2: last link -> AP.
	dst := om.CommandsAt(2)
	if len(dst) != 1 || dst[0].In.AP || !dst[0].Out.AP {
		t.Errorf("destination commands = %+v", dst)
	}
	// Untouched node has no commands.
	if len(om.CommandsAt(5)) != 0 {
		t.Error("node 5 should be idle")
	}
	if om.NumCommands() != 3 {
		t.Errorf("NumCommands = %d, want 3", om.NumCommands())
	}
}

func TestOmegaValidateCatchesLinkCollision(t *testing.T) {
	om, top, _ := ringOmega(t)
	// Add a second message using the same links at an overlapping time.
	om.Windows = append(om.Windows, Window{Release: 0, Length: 10, AbsRelease: 0, Xmit: 4})
	bad := om.Slices[0]
	bad.Msgs = []tfg.MessageID{1}
	bad.Until = []float64{4}
	bad.End = 4
	om.Slices = append(om.Slices, bad)
	// Mirror the node commands so linksets resolve.
	for n := range om.Nodes {
		var extra []Command
		for _, c := range om.Nodes[n].Commands {
			c2 := c
			c2.Msg = 1
			c2.End = 4
			extra = append(extra, c2)
		}
		om.Nodes[n].Commands = append(om.Nodes[n].Commands, extra...)
	}
	if err := om.Validate(top); err == nil {
		t.Error("overlapping transmissions on one link must fail validation")
	}
}

func TestOmegaValidateCatchesWindowEscape(t *testing.T) {
	om, top, _ := ringOmega(t)
	om.Windows[0].Release = 15 // frame image [15, 25)→ wraps to [15,20]∪[0,5]
	om.Windows[0].Length = 10
	// The slice at [0,8) now runs 3 µs past the wrapped deadline at 5.
	if err := om.Validate(top); err == nil {
		t.Error("transmission past the window must fail validation")
	}
}

func TestOmegaValidateCatchesWrongTotal(t *testing.T) {
	om, top, _ := ringOmega(t)
	om.Windows[0].Xmit = 6 // slice transmits 8
	if err := om.Validate(top); err == nil {
		t.Error("over-transmission must fail validation")
	}
	om.Windows[0].Xmit = 9.5 // slice transmits only 8
	if err := om.Validate(top); err == nil {
		t.Error("under-transmission must fail validation")
	}
}

func TestOmegaLinkset(t *testing.T) {
	om, _, pa := ringOmega(t)
	ls := om.Linkset(0)
	if len(ls) != len(pa.Links[0]) {
		t.Fatalf("linkset = %v", ls)
	}
}

func TestPortString(t *testing.T) {
	if (Port{AP: true}).String() != "AP" {
		t.Error("AP port string")
	}
	if (Port{Link: 7}).String() != "L7" {
		t.Error("link port string")
	}
}

func TestExecuteRingOmega(t *testing.T) {
	om, _, _ := ringOmega(t)
	// Graph: two tasks, one message matching window 0.
	b := tfg.NewBuilder("ring")
	a := b.AddTask("a", 1)
	c := b.AddTask("c", 1)
	b.AddMessage("m", a, c, 512)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := &tfg.Timing{ExecTime: []float64{0.0001, 0.0001}, XmitTime: []float64{8}}
	// AbsRelease 0 matches task a finishing ~0; window length 10.
	exec, err := Execute(om, g, tm, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.OutputCompletions) != 3 {
		t.Fatalf("completions = %v", exec.OutputCompletions)
	}
	if math.Abs(exec.Deliveries[0]-8) > 1e-9 {
		t.Errorf("delivery = %g, want 8", exec.Deliveries[0])
	}
}

func TestExecuteRejectsShortTransmission(t *testing.T) {
	om, _, _ := ringOmega(t)
	om.Windows[0].Xmit = 9 // slices only carry 8
	b := tfg.NewBuilder("ring")
	a := b.AddTask("a", 1)
	c := b.AddTask("c", 1)
	b.AddMessage("m", a, c, 512)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := &tfg.Timing{ExecTime: []float64{0.0001, 0.0001}, XmitTime: []float64{9}}
	if _, err := Execute(om, g, tm, 10, 1); err == nil {
		t.Error("undelivered transmission must fail execution")
	}
}

func TestExecuteRejectsZeroInvocations(t *testing.T) {
	om, _, _ := ringOmega(t)
	if _, err := Execute(om, nil, nil, 10, 0); err == nil {
		t.Error("zero invocations must fail")
	}
}
