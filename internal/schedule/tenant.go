package schedule

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"schedroute/internal/errkind"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// This file implements multi-tenant co-scheduling with QoS guarantees
// (DESIGN §10): several independently owned problems share one fabric
// through per-tenant link-bandwidth reservations in the guaranteed-rate
// TDM link-sharing model of Even & Fais. Each admitted tenant owns a
// share of every link it crosses; a candidate is admitted only if it
// fits inside the residual shares, so admission can never perturb an
// admitted tenant's Ω — the already-emitted schedules are simply never
// re-solved.

// Tenant is one co-scheduling candidate: a complete scheduling problem
// plus its QoS contract.
type Tenant struct {
	// ID names the tenant; unique within a TenantSet.
	ID string
	// Priority orders eviction: a candidate may evict admitted tenants
	// of strictly lower priority when it does not fit otherwise. Higher
	// means more important; the default 0 evicts nobody and is evicted
	// first.
	Priority int
	// RateGuarantee is the minimum acceptable output-rate fraction
	// τin/τout in (0, 1]: the degraded-rate admission rung only tries
	// period factors f with 1/f >= RateGuarantee. 0 means best-effort
	// (every rung is acceptable); 1 demands the full requested rate.
	RateGuarantee float64
	// Problem is the tenant's scheduling problem; Problem.TauIn is the
	// requested invocation period. Problem.Faults and Options.LinkCap
	// are owned by the TenantSet and must be left nil.
	Problem Problem
	// Options tunes the tenant's solves (seed, engine, retries, ...).
	Options Options
}

// AdmitOutcome names the admission rung that accepted (or rejected) a
// candidate tenant.
type AdmitOutcome int

const (
	// AdmitReserved: the candidate fits the residual shares at its
	// requested rate and window.
	AdmitReserved AdmitOutcome = iota
	// AdmitDegradedWindow: admitted only with widened message windows
	// (latency grows; the output rate is preserved).
	AdmitDegradedWindow
	// AdmitDegradedRate: admitted only at a longer invocation period
	// compatible with the tenant's RateGuarantee.
	AdmitDegradedRate
	// AdmitRejected: no rung fit, even after any permitted evictions.
	AdmitRejected
)

// String names the outcome.
func (o AdmitOutcome) String() string {
	switch o {
	case AdmitReserved:
		return "reserved"
	case AdmitDegradedWindow:
		return "degraded-window"
	case AdmitDegradedRate:
		return "degraded-rate"
	case AdmitRejected:
		return "rejected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// AdmitReport is the typed outcome of one admission attempt.
type AdmitReport struct {
	TenantID string
	Admitted bool
	Outcome  AdmitOutcome
	// TauOut is the granted output period (> the requested τin exactly
	// when Outcome is AdmitDegradedRate; 0 when rejected).
	TauOut float64
	// WindowScale is the window widening factor applied (1 unless
	// Outcome is AdmitDegradedWindow).
	WindowScale float64
	// Peak is the admitted schedule's peak utilization relative to the
	// residual shares the candidate solved against; for a rejection it
	// is the best (lowest) peak any rung reached.
	Peak float64
	// Evicted lists tenants preempted to make room, in eviction order.
	Evicted []string
	// BottleneckLink and BottleneckShare describe the tightest link of
	// the residual the candidate solved against (the link with the
	// least capacity left), for capacity-planning diagnostics.
	BottleneckLink  topology.LinkID
	BottleneckShare float64
	// Reason carries a one-line diagnosis for rejections.
	Reason string
	// Result is the admitted schedule; nil when rejected.
	Result *Result
}

// Err returns a typed admission-rejected error when the candidate was
// not admitted, and nil otherwise.
func (r *AdmitReport) Err() error {
	if r.Admitted {
		return nil
	}
	return errkind.Mark(
		fmt.Errorf("schedule: tenant %q rejected: %s", r.TenantID, r.Reason),
		errkind.ErrAdmissionRejected)
}

// TenantState is one admitted tenant's standing within a TenantSet.
type TenantState struct {
	Tenant Tenant
	// Report is the admission report that admitted this tenant.
	Report *AdmitReport
	// Base is the admitted schedule; it never changes after admission.
	Base *Result
	// Current is the schedule in force at the set's cumulative fault
	// state: Base until a fault affects this tenant, then the repaired
	// result. nil when the current fault state is unsurvivable for it.
	Current *Result
	// Outcome is the repair outcome at the current fault state
	// (RepairUnaffected while the machine is healthy).
	Outcome RepairOutcome
	// Reserve[j] is the bandwidth fraction of link j reserved for this
	// tenant: the raw per-link utilization of its current schedule.
	Reserve []float64
	// LinkCap is the residual vector the tenant was admitted against
	// (nil when it saw the whole machine); its repairs stay inside it.
	LinkCap []float64

	session *RepairSession
}

// TenantRepair reports one tenant's standing after a fault event.
type TenantRepair struct {
	TenantID string
	// MemoHit is true when the session answered from its fault-keyed
	// memo without running the ladder.
	MemoHit bool
	Report  *RepairReport
}

// TenantSet co-schedules tenants onto one shared fabric. Admission is
// serialized; admitted tenants are never re-solved by later admissions
// or rejections, so after any sequence of admit/reject/fault events an
// admitted tenant's Ω is exactly the Ω it would hold had it been the
// only tenant solved against the same residual at the same cumulative
// fault state (for the first admitted tenant the residual is the whole
// machine, making its Ω byte-identical to a solo solve).
type TenantSet struct {
	nl int // links in the shared fabric

	mu       sync.Mutex
	admitted []*TenantState // admission order
	solvers  map[string]*tenantSolver
	faults   *topology.FaultSet
}

// tenantSolver pins a candidate's Solver to the fault state it was
// built at: the τin-independent structure (validation, baseline,
// candidate paths, task starts) is reused across every ladder rung and
// every re-admission attempt at that state, and rebuilt only when the
// cumulative faults move.
type tenantSolver struct {
	faultKey string
	s        *Solver
}

// NewTenantSet creates an empty set over a fabric with the given
// topology. Every tenant's Problem.Topology must have the same link
// count (tenants address the shared links by LinkID).
func NewTenantSet(top *topology.Topology) *TenantSet {
	return &TenantSet{
		nl:      top.Links(),
		solvers: map[string]*tenantSolver{},
		faults:  topology.NewFaultSet(top.Links(), top.Nodes()),
	}
}

// Tenants snapshots the admitted tenants in admission order.
func (ts *TenantSet) Tenants() []*TenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]*TenantState(nil), ts.admitted...)
}

// Lookup returns the admitted tenant with the given ID, or nil.
func (ts *TenantSet) Lookup(id string) *TenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.lookupLocked(id)
}

func (ts *TenantSet) lookupLocked(id string) *TenantState {
	for _, st := range ts.admitted {
		if st.Tenant.ID == id {
			return st
		}
	}
	return nil
}

// Faults returns a clone of the cumulative fault state.
func (ts *TenantSet) Faults() *topology.FaultSet {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.faults.Clone()
}

// residualLocked computes the capacity left on every link by the given
// tenants' reservations, clamped to [0, 1]. It returns nil when
// nothing is reserved — the whole-machine fast path, which keeps the
// first admission bit-identical to a solo solve.
func residualLocked(nl int, admitted []*TenantState) []float64 {
	any := false
	res := make([]float64, nl)
	for j := range res {
		res[j] = 1
	}
	for _, st := range admitted {
		for j, r := range st.Reserve {
			if r > 0 {
				any = true
				res[j] -= r
				if res[j] < 0 {
					res[j] = 0
				}
			}
		}
	}
	if !any {
		return nil
	}
	return res
}

// bottleneck reports the tightest link of a residual vector.
func bottleneck(res []float64) (topology.LinkID, float64) {
	if res == nil {
		return 0, 1
	}
	link, share := topology.LinkID(0), res[0]
	for j := 1; j < len(res); j++ {
		if res[j] < share {
			link, share = topology.LinkID(j), res[j]
		}
	}
	return link, share
}

// reserveOf extracts the raw per-link bandwidth shares a schedule
// occupies — the reservation an admitted tenant holds.
func reserveOf(top *topology.Topology, r *Result) []float64 {
	return ComputeUtilization(top, r.Assignment, r.Windows, r.Activity).LinkU
}

// Admit runs the admission check for one candidate tenant: solve the
// candidate against the residual capacity left by the admitted
// tenants, descending the degradation ladder — requested rate and
// window, widened windows, reduced rate (bounded by the candidate's
// RateGuarantee) — and, when even that fails, evict strictly
// lower-priority tenants one at a time (lowest priority first, later
// admissions first among equals) and retry. Admitted tenants that
// survive are untouched: their Ω, reservation, and repair sessions are
// exactly as admitted. The returned report is also recorded in the set
// when the candidate is admitted; a rejection leaves the set exactly
// as it was (evictions are rolled back).
//
// tr, when non-nil, receives one "admit" span with children naming the
// admission stages: "admit_residual" per residual computation,
// "admit_rung" per ladder attempt, "admit_evict" per preemption, and
// "admit_reserve" when the reservation is committed.
func (ts *TenantSet) Admit(ctx context.Context, t Tenant, tr *trace.Span) (*AdmitReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.ID == "" {
		return nil, errkind.Mark(fmt.Errorf("schedule: tenant needs an ID"), errkind.ErrBadInput)
	}
	if t.RateGuarantee < 0 || t.RateGuarantee > 1 {
		return nil, errkind.Mark(fmt.Errorf("schedule: tenant %q: rate guarantee %g outside (0, 1]", t.ID, t.RateGuarantee), errkind.ErrBadInput)
	}
	if t.Problem.Topology == nil || t.Problem.Topology.Links() != ts.nl {
		return nil, errkind.Mark(fmt.Errorf("schedule: tenant %q: topology does not match the shared fabric", t.ID), errkind.ErrBadInput)
	}
	if t.Options.LinkCap != nil {
		return nil, errkind.Mark(fmt.Errorf("schedule: tenant %q: Options.LinkCap is owned by the tenant set", t.ID), errkind.ErrBadInput)
	}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.lookupLocked(t.ID) != nil {
		return nil, errkind.Mark(fmt.Errorf("schedule: tenant %q already admitted", t.ID), errkind.ErrBadInput)
	}

	sp := tr.Start(SpanAdmit, trace.String("tenant", t.ID), trace.Int("priority", t.Priority))
	defer sp.End()

	// The candidate solves on the current degraded machine: its
	// baseline and candidate paths avoid the cumulative faults.
	t.Problem.Faults = ts.faults.Clone()
	fk := sessionKey(ts.faults)
	entry := ts.solvers[t.ID]
	if entry == nil || entry.faultKey != fk {
		entry = &tenantSolver{faultKey: fk, s: NewSolver(t.Problem)}
		ts.solvers[t.ID] = entry
	}
	solver := entry.s

	report := &AdmitReport{TenantID: t.ID, WindowScale: 1}
	survivors := ts.admitted
	var evicted []string

	for {
		rs := sp.Start(SpanAdmitResidual, trace.Int("tenants", len(survivors)))
		residual := residualLocked(ts.nl, survivors)
		bl, bs := bottleneck(residual)
		rs.SetAttrs(trace.Float64("bottleneck_share", bs), trace.Int("bottleneck_link", int(bl)))
		rs.End()
		report.BottleneckLink, report.BottleneckShare = bl, bs

		res, err := ts.admitLadder(ctx, solver, t, residual, sp, report)
		if err != nil {
			return nil, err
		}
		if res != nil {
			st := &TenantState{
				Tenant:  t,
				Report:  report,
				Base:    res,
				Current: res,
				Outcome: RepairUnaffected,
				LinkCap: residual,
			}
			rsv := sp.Start(SpanAdmitReserve)
			st.Reserve = reserveOf(t.Problem.Topology, res)
			sessP := t.Problem
			sessP.TauIn = report.TauOut
			sessO := t.Options
			sessO.LinkCap = residual
			sessO.Window = admitWindow(t, report.WindowScale)
			st.session, err = NewRepairSession(sessP, sessO, res)
			rsv.End()
			if err != nil {
				return nil, err
			}
			ts.admitted = append(survivors, st)
			report.Admitted = true
			report.Evicted = evicted
			report.Result = res
			sp.SetAttrs(trace.Bool("admitted", true), trace.String("outcome", report.Outcome.String()))
			return report, nil
		}

		// Eviction rung: preempt the weakest strictly-lower-priority
		// survivor and retry the whole ladder against the freed shares.
		victim := -1
		for i, st := range survivors {
			if st.Tenant.Priority >= t.Priority {
				continue
			}
			if victim < 0 ||
				st.Tenant.Priority < survivors[victim].Tenant.Priority ||
				(st.Tenant.Priority == survivors[victim].Tenant.Priority && i > victim) {
				victim = i
			}
		}
		if victim < 0 {
			report.Outcome = AdmitRejected
			report.TauOut = 0
			if report.Reason == "" {
				report.Reason = fmt.Sprintf("no admission rung fits the residual fabric (bottleneck link %d has share %.3g)", bl, bs)
			}
			sp.SetAttrs(trace.Bool("admitted", false), trace.String("reason", report.Reason))
			return report, nil
		}
		ev := sp.Start(SpanAdmitEvict, trace.String("tenant", survivors[victim].Tenant.ID),
			trace.Int("priority", survivors[victim].Tenant.Priority))
		ev.End()
		evicted = append(evicted, survivors[victim].Tenant.ID)
		pruned := make([]*TenantState, 0, len(survivors)-1)
		pruned = append(pruned, survivors[:victim]...)
		pruned = append(pruned, survivors[victim+1:]...)
		survivors = pruned
	}
}

// admitWindow is the message-window length rung attempts use: the
// tenant's configured window (default τc) times the widening scale.
func admitWindow(t Tenant, scale float64) float64 {
	w := t.Options.Window
	if w == 0 {
		w = t.Problem.Timing.TauC()
	}
	return w * scale
}

// admitLadder descends the degradation ladder for one candidate
// against one residual. It returns the first feasible result (filling
// the report's outcome fields), or nil when every rung was rejected.
func (ts *TenantSet) admitLadder(ctx context.Context, solver *Solver, t Tenant, residual []float64, sp *trace.Span, report *AdmitReport) (*Result, error) {
	bestPeak := 0.0
	havePeak := false
	attempt := func(outcome AdmitOutcome, tauOut, scale float64) (*Result, error) {
		rg := sp.Start(SpanAdmitRung, trace.String("rung", outcome.String()),
			trace.Float64("tau_out", tauOut), trace.Float64("window_scale", scale))
		defer rg.End()
		o := t.Options
		o.LinkCap = residual
		o.Window = admitWindow(t, scale)
		o.Trace = rg
		r, err := solver.Solve(ctx, tauOut, o)
		if err != nil {
			return nil, err
		}
		if !havePeak || r.Peak < bestPeak {
			bestPeak, havePeak = r.Peak, true
		}
		rg.SetAttrs(trace.Bool("feasible", r.Feasible), trace.Float64("peak", r.Peak))
		if !r.Feasible {
			report.Reason = fmt.Sprintf("rung %s rejected at stage %s", outcome, r.FailStage)
			return nil, nil
		}
		report.Outcome = outcome
		report.TauOut = tauOut
		report.WindowScale = scale
		report.Peak = r.Peak
		report.Reason = "" // a failed earlier rung's reason no longer applies
		return r, nil
	}

	// Rung 1: the requested rate and window against the residual.
	r, err := attempt(AdmitReserved, t.Problem.TauIn, 1)
	if r != nil || err != nil {
		return r, err
	}

	// Rung 2: widened windows (latency degrades, τout preserved).
	for _, scale := range windowScales {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if admitWindow(t, scale) > t.Problem.TauIn {
			continue
		}
		r, err := attempt(AdmitDegradedWindow, t.Problem.TauIn, scale)
		if r != nil || err != nil {
			return r, err
		}
	}

	// Rung 3: reduced rate, bounded by the tenant's RateGuarantee.
	for _, f := range rateFactors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t.RateGuarantee > 0 && 1/f < t.RateGuarantee-timeEps {
			break // factors grow monotonically; later ones are worse
		}
		r, err := attempt(AdmitDegradedRate, t.Problem.TauIn*f, 1)
		if r != nil || err != nil {
			return r, err
		}
	}
	report.Peak = bestPeak
	return nil, nil
}

// Release removes an admitted tenant, freeing its reservations. The
// remaining tenants are untouched. It reports whether the tenant was
// present.
func (ts *TenantSet) Release(id string) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i, st := range ts.admitted {
		if st.Tenant.ID == id {
			ts.admitted = append(ts.admitted[:i:i], ts.admitted[i+1:]...)
			return true
		}
	}
	return false
}

// FailLink adds a link fault to the cumulative fault state. Call
// Repair to re-evaluate every tenant at the new state.
func (ts *TenantSet) FailLink(l topology.LinkID) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.faults.FailLink(l)
}

// FailNode adds a node fault to the cumulative fault state.
func (ts *TenantSet) FailNode(n topology.NodeID) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.faults.FailNode(n)
}

// RepairLink removes a link fault from the cumulative fault state.
func (ts *TenantSet) RepairLink(l topology.LinkID) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.faults.RepairLink(l)
}

// Repair re-evaluates every admitted tenant at the cumulative fault
// state, in admission order. Each tenant repairs independently from
// its own admitted base through its own RepairSession — within the
// link shares it was admitted against, never touching another
// tenant's reservation — so the repaired Ω of each tenant depends
// only on (its admission-time residual, the cumulative fault state),
// not on the event order or on the other tenants' repairs. A tenant
// with an unsurvivable fault keeps its reservation but reports
// RepairInfeasible with a nil Current.
func (ts *TenantSet) Repair(ctx context.Context, tr *trace.Span) ([]*TenantRepair, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ts.mu.Lock()
	admitted := append([]*TenantState(nil), ts.admitted...)
	fs := ts.faults.Clone()
	ts.mu.Unlock()

	out := make([]*TenantRepair, 0, len(admitted))
	for _, st := range admitted {
		rep, hit, err := st.session.Apply(ctx, fs, tr)
		if err != nil {
			return nil, err
		}
		ts.mu.Lock()
		st.Outcome = rep.Outcome
		st.Current = rep.Result
		if rep.Result != nil {
			st.Reserve = reserveOf(st.Tenant.Problem.Topology, rep.Result)
		}
		ts.mu.Unlock()
		out = append(out, &TenantRepair{TenantID: st.Tenant.ID, MemoHit: hit, Report: rep})
	}
	return out, nil
}

// RepairTenant evaluates one admitted tenant at an arbitrary fault
// state without moving the set's cumulative faults or the tenant's
// standing — the stateless, tenant-scoped form of a repair query. The
// ladder runs from the tenant's admitted base inside its admission-time
// link shares, memoized per fault state by the tenant's session, so the
// answer depends only on (the tenant's base, the queried faults) — not
// on the other tenants or on query order.
func (ts *TenantSet) RepairTenant(ctx context.Context, id string, fs *topology.FaultSet, tr *trace.Span) (*TenantRepair, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ts.mu.Lock()
	st := ts.lookupLocked(id)
	ts.mu.Unlock()
	if st == nil {
		return nil, errkind.Mark(fmt.Errorf("schedule: tenant %q not admitted", id), errkind.ErrNotFound)
	}
	rep, hit, err := st.session.Apply(ctx, fs, tr)
	if err != nil {
		return nil, err
	}
	return &TenantRepair{TenantID: id, MemoHit: hit, Report: rep}, nil
}

// Oversubscribed lists the links whose summed post-repair reservations
// exceed the physical capacity (within timeEps) — possible only after
// faults force repaired tenants onto overlapping detours; the healthy
// admission path can never oversubscribe. Links are returned in
// ascending order.
func (ts *TenantSet) Oversubscribed() []topology.LinkID {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	sum := make([]float64, ts.nl)
	for _, st := range ts.admitted {
		for j, r := range st.Reserve {
			sum[j] += r
		}
	}
	var out []topology.LinkID
	for j, s := range sum {
		if s > 1+timeEps {
			out = append(out, topology.LinkID(j))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
