package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace_event "complete" (ph=X) event; see
// the Trace Event Format document. Timestamps and durations are in
// microseconds, the format's native unit.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the tree as Chrome trace_event JSON, ready
// for chrome://tracing or Perfetto. Parent-relative offsets are
// accumulated into absolute timestamps; every span lands on one
// pid/tid track so the nesting renders as a flame graph.
func WriteChromeTrace(w io.Writer, t *Tree) error {
	var events []chromeEvent
	var emit func(abs int64, n *Tree)
	emit = func(abs int64, n *Tree) {
		start := abs + n.StartNS
		events = append(events, chromeEvent{
			Name: n.Name,
			Ph:   "X",
			TS:   float64(start) / 1e3,
			Dur:  float64(n.DurNS) / 1e3,
			PID:  1,
			TID:  1,
			Args: sortedArgs(n.Attrs),
		})
		for _, c := range n.Children {
			emit(start, c)
		}
	}
	if t != nil {
		emit(0, t)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}
