package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if s.Enabled() {
		t.Error("nil span reports enabled")
	}
	c := s.Start("child", Int("i", 1))
	if c != nil {
		t.Fatal("nil span spawned a real child")
	}
	c.SetAttrs(String("k", "v"))
	c.End()
	s.Adopt(&Tree{Name: "x"})
	if s.Tree() != nil {
		t.Error("nil span produced a tree")
	}
}

func TestTreeStructureAndOffsets(t *testing.T) {
	root := Start("solve", Float64("tau_in", 141))
	a := root.Start("time_bounds")
	a.End()
	b := root.Start("assign_paths", Int("attempt", 0))
	b.SetAttrs(Int("iterations", 42))
	b.End()
	root.End()

	tr := root.Tree()
	if tr.Name != "solve" || tr.StartNS != 0 {
		t.Fatalf("root: %+v", tr)
	}
	if got := tr.Names(); !reflect.DeepEqual(got, []string{"solve", "time_bounds", "assign_paths"}) {
		t.Fatalf("names: %v", got)
	}
	for _, c := range tr.Children {
		if c.StartNS < 0 || c.StartNS > tr.DurNS {
			t.Errorf("child %s offset %d outside parent duration %d", c.Name, c.StartNS, tr.DurNS)
		}
		if c.DurNS < 0 {
			t.Errorf("child %s negative duration", c.Name)
		}
	}
	ap := tr.Children[1]
	if len(ap.Attrs) != 2 || ap.Attrs[1].Key != "iterations" || ap.Attrs[1].Value() != int64(42) {
		t.Errorf("attrs not preserved: %+v", ap.Attrs)
	}
	if tr.Count("assign_paths") != 1 || tr.Count("missing") != 0 {
		t.Error("Count miscounts")
	}
}

func TestAttrValues(t *testing.T) {
	cases := []struct {
		a    Attr
		want any
		str  string
	}{
		{String("k", "v"), "v", "k=v"},
		{Int("n", 7), int64(7), "n=7"},
		{Int64("n", -1), int64(-1), "n=-1"},
		{Float64("f", 1.5), 1.5, "f=1.5"},
		{Bool("b", true), true, "b=true"},
		{Bool("b", false), false, "b=false"},
	}
	for _, c := range cases {
		if c.a.Value() != c.want {
			t.Errorf("%+v value %v, want %v", c.a, c.a.Value(), c.want)
		}
		if c.a.Format() != c.str {
			t.Errorf("%+v formats %q, want %q", c.a, c.a.Format(), c.str)
		}
	}
}

// Fan-out pattern: per-item spans pre-created serially, each worker
// recording only inside its own span. The resulting structure must be
// identical regardless of worker interleaving.
func TestConcurrentWorkersDeterministicStructure(t *testing.T) {
	root := Start("sweep")
	const n = 16
	points := make([]*Span, n)
	for i := range points {
		points[i] = root.Start("point", Int("index", i))
	}
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := points[i].Start("solve")
			s.End()
			points[i].End()
		}(i)
	}
	wg.Wait()
	root.End()

	want := []string{"sweep"}
	for i := 0; i < n; i++ {
		want = append(want, "point", "solve")
	}
	if got := root.Tree().Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("structure depends on interleaving: %v", got)
	}
}

func TestAdoptKeepsOrderAndSubtree(t *testing.T) {
	flight := Start("flight")
	flight.Start("inner").End()
	flight.End()
	adopted := flight.Tree()

	root := Start("request")
	root.Start("queue_wait").End()
	root.Adopt(adopted)
	root.Start("after").End()
	root.End()

	got := root.Tree().Names()
	want := []string{"request", "queue_wait", "flight", "inner", "after"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adopted order: %v", got)
	}
}

func TestUnfinishedSpanSnapshot(t *testing.T) {
	root := Start("open")
	child := root.Start("still_running")
	tr := root.Tree() // no End anywhere
	if tr.DurNS < 0 || tr.Children[0].DurNS < 0 {
		t.Error("unfinished spans must measure up to the snapshot")
	}
	child.End()
	root.End()
}

func TestRender(t *testing.T) {
	root := Start("solve", Float64("tau_in", 150))
	root.Start("time_bounds").End()
	root.End()
	var buf bytes.Buffer
	if err := root.Tree().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "solve") || !strings.Contains(out, "tau_in=150") {
		t.Errorf("render missing root: %q", out)
	}
	if !strings.Contains(out, "\n  time_bounds") {
		t.Errorf("render missing indented child: %q", out)
	}
}

func TestChromeExport(t *testing.T) {
	root := Start("solve", Int("seed", 1))
	c := root.Start("assign_paths")
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root.Tree()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("want 2 events, got %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "solve" || doc.TraceEvents[0].Ph != "X" {
		t.Errorf("bad root event: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[0].Args["seed"] != float64(1) {
		t.Errorf("args lost: %+v", doc.TraceEvents[0].Args)
	}
	child := doc.TraceEvents[1]
	if child.TS < doc.TraceEvents[0].TS {
		t.Errorf("child starts before parent: %v < %v", child.TS, doc.TraceEvents[0].TS)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	root := Start("solve", Bool("cached", true))
	root.Start("omega_emission").End()
	root.End()
	in := root.Tree()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Tree
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Names(), out.Names()) || out.Attrs[0].Value() != true {
		t.Errorf("round trip lost data: %+v", out)
	}
}
