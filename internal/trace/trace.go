// Package trace is the solve-pipeline span tracer: a zero-dependency,
// allocation-conscious tree of timed spans threaded through
// schedule.Solver.Solve, schedule.Repair, the experiment sweeps, and
// the srschedd request path.
//
// The enabled/disabled story is a nil check: every method is safe on a
// nil *Span and does nothing, so instrumented code calls
// `sp := parent.Start("stage")` unconditionally and a disabled pipeline
// (nil parent) pays one nil-receiver call per span site — no
// allocations, no clock reads, no locks.
//
// A finished span hierarchy is snapshotted into a Tree: a plain,
// JSON-taggable value with parent-relative start offsets, carried on
// schedule.Result, attached to service responses under ?debug=trace,
// rendered by `srsched -trace`, and exported as Chrome trace_event
// JSON by cmd/traceview.
//
// Concurrency: a Span's child list and attributes are mutex-guarded,
// so concurrent Start/SetAttrs/End on one span are safe (the
// determinism suite runs traced sweeps under -race). Child order is
// creation order; fan-out callers that need a deterministic tree
// pre-create their per-item spans serially in index order and hand one
// to each worker — see experiments.UtilizationSweep.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one small typed span attribute (stage inputs and outcomes:
// tau_in, candidate index, repair rung, links rerouted, ...).
type Attr struct {
	Key string `json:"key"`
	// Kind discriminates the value: "str", "int", "float" or "bool".
	Kind  string  `json:"kind"`
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: "str", Str: v} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Kind: "int", Int: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: "int", Int: v} }

// Float64 builds a floating-point attribute.
func Float64(key string, v float64) Attr { return Attr{Key: key, Kind: "float", Float: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: "bool"}
	if v {
		a.Int = 1
	}
	return a
}

// Value returns the attribute's dynamic value.
func (a Attr) Value() any {
	switch a.Kind {
	case "int":
		return a.Int
	case "float":
		return a.Float
	case "bool":
		return a.Int != 0
	default:
		return a.Str
	}
}

// Format renders the attribute as "key=value".
func (a Attr) Format() string { return fmt.Sprintf("%s=%v", a.Key, a.Value()) }

// Span is one live node of the trace. The zero value is not used;
// create roots with Start and children with (*Span).Start. A nil *Span
// is the disabled tracer: every method no-ops.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
	// adopted marks a pre-built subtree grafted with Adopt (a coalesced
	// flight's solve tree attached under a request span).
	adopted *Tree
}

// Start begins a new root span.
func Start(name string, attrs ...Attr) *Span {
	return &Span{name: name, start: time.Now(), attrs: attrs}
}

// Start begins a child span. Safe (and free) on a nil receiver.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End finishes the span. The first End wins; later calls (and a
// snapshot of a span never ended) keep the recorded time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttrs appends attributes to the span (stage outcomes recorded
// after the work ran).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Adopt grafts a pre-built Tree as a child, in creation order with the
// span's own children. The service uses it to attach a coalesced
// solve's tree — computed once, shared by every joined request — under
// each request's own span; the adopted tree's offsets stay relative to
// its original root (the flight may have started before this request).
func (s *Span) Adopt(t *Tree) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, &Span{name: t.Name, adopted: t})
	s.mu.Unlock()
}

// Enabled reports whether the span records anything (false exactly for
// the nil disabled tracer).
func (s *Span) Enabled() bool { return s != nil }

// Tree snapshots the span and its descendants. Spans not yet ended are
// measured up to the snapshot instant. Returns nil on a nil receiver,
// so `res.Trace = span.Tree()` is safe either way.
func (s *Span) Tree() *Tree {
	if s == nil {
		return nil
	}
	return s.tree(s.start, time.Now())
}

func (s *Span) tree(parentStart time.Time, now time.Time) *Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adopted != nil {
		return s.adopted
	}
	end := s.end
	if end.IsZero() {
		end = now
	}
	t := &Tree{
		Name:    s.name,
		StartNS: s.start.Sub(parentStart).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		t.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		t.Children = append(t.Children, c.tree(s.start, now))
	}
	return t
}

// Tree is the immutable snapshot of a span hierarchy: the wire- and
// file-level form (see pkg/schedroute for the schema-versioned
// envelope service responses carry).
type Tree struct {
	Name string `json:"name"`
	// StartNS is the span's start offset in nanoseconds relative to its
	// parent's start (0 for a root; an adopted subtree keeps offsets
	// relative to its original root).
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Tree `json:"children,omitempty"`
}

// Duration returns the span duration.
func (t *Tree) Duration() time.Duration { return time.Duration(t.DurNS) }

// Walk visits the tree depth-first, parents before children, with the
// node's depth (root = 0).
func (t *Tree) Walk(fn func(depth int, n *Tree)) {
	if t == nil {
		return
	}
	t.walk(0, fn)
}

func (t *Tree) walk(depth int, fn func(int, *Tree)) {
	fn(depth, t)
	for _, c := range t.Children {
		c.walk(depth+1, fn)
	}
}

// Names returns every span name in depth-first order — the structural
// fingerprint the determinism tests compare between serial and
// parallel runs (timings and cache attrs vary; structure must not).
func (t *Tree) Names() []string {
	var out []string
	t.Walk(func(_ int, n *Tree) { out = append(out, n.Name) })
	return out
}

// Count returns how many spans in the tree carry the given name.
func (t *Tree) Count(name string) int {
	n := 0
	t.Walk(func(_ int, node *Tree) {
		if node.Name == name {
			n++
		}
	})
	return n
}

// Render writes the tree as an indented span listing, one line per
// span: name, duration, attributes.
func (t *Tree) Render(w io.Writer) error {
	if t == nil {
		return nil
	}
	var err error
	t.Walk(func(depth int, n *Tree) {
		if err != nil {
			return
		}
		parts := make([]string, 0, len(n.Attrs))
		for _, a := range n.Attrs {
			parts = append(parts, a.Format())
		}
		line := fmt.Sprintf("%s%s %s", strings.Repeat("  ", depth), n.Name, time.Duration(n.DurNS))
		if len(parts) > 0 {
			line += "  " + strings.Join(parts, " ")
		}
		_, err = fmt.Fprintln(w, line)
	})
	return err
}

// sortedArgs renders a node's attributes as a deterministic key→value
// map for the Chrome exporter (encoding/json sorts map keys).
func sortedArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs))
	keys := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if _, dup := args[a.Key]; !dup {
			keys = append(keys, a.Key)
		}
		args[a.Key] = a.Value()
	}
	sort.Strings(keys)
	return args
}
