// Package metrics computes the paper's Section 6 performance measures:
// normalized load, normalized throughput and latency with their spike
// (min/mid/max) statistics, and the output-inconsistency predicate of
// Eq. 1.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptySeries is returned by Summarize (and the measures built on
// it) when asked to summarize a series with no observations.
var ErrEmptySeries = errors.New("metrics: summarize of empty series")

// Spike carries the three values the paper plots as an up-down spike
// when a measure is not constant across invocations: the extreme values
// and the average.
type Spike struct {
	Min float64
	Mid float64
	Max float64
}

// Constant reports whether the spike degenerates to a single value
// within tol, i.e. the measure was constant over all invocations.
func (s Spike) Constant(tol float64) bool {
	return s.Max-s.Min <= tol
}

// String renders the spike as "min/mid/max".
func (s Spike) String() string {
	return fmt.Sprintf("%.4g/%.4g/%.4g", s.Min, s.Mid, s.Max)
}

// Intervals returns the successive differences of a completion-time
// series: interval j is completions[j+1]-completions[j].
func Intervals(completions []float64) []float64 {
	if len(completions) < 2 {
		return nil
	}
	out := make([]float64, len(completions)-1)
	for i := 1; i < len(completions); i++ {
		out[i-1] = completions[i] - completions[i-1]
	}
	return out
}

// Summarize returns the min, mean and max of xs as a Spike. An empty
// series has no summary and yields ErrEmptySeries — a sim run short
// enough to produce no output intervals hits this, so callers must
// handle it rather than trust every run to span two invocations.
func Summarize(xs []float64) (Spike, error) {
	if len(xs) == 0 {
		return Spike{}, ErrEmptySeries
	}
	s := Spike{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mid = sum / float64(len(xs))
	return s, nil
}

// NormalizedLoad is τc/τin, the paper's x-axis for every plot.
func NormalizedLoad(tauC, tauIn float64) float64 { return tauC / tauIn }

// NormalizedThroughput maps output-generation intervals to the paper's
// normalized throughput τin/τout, returning the spike over invocations.
// Following Section 6, the spike extremes come from the largest and
// smallest observed intervals and the middle value from the average
// interval (τin divided by the mean interval, not the mean of ratios,
// which would explode on bursty output).
func NormalizedThroughput(tauIn float64, outputIntervals []float64) (Spike, error) {
	iv, err := Summarize(outputIntervals)
	if err != nil {
		return Spike{}, err
	}
	return Spike{Min: tauIn / iv.Max, Mid: tauIn / iv.Mid, Max: tauIn / iv.Min}, nil
}

// NormalizedLatency maps per-invocation latencies to the paper's λ/Λ
// ratio, where criticalPath is the TFG critical path length Λ.
func NormalizedLatency(criticalPath float64, latencies []float64) (Spike, error) {
	ratios := make([]float64, len(latencies))
	for i, l := range latencies {
		ratios[i] = l / criticalPath
	}
	return Summarize(ratios)
}

// OutputInconsistent implements Eq. 1's negation: pipelining fails when
// any output-generation interval differs from the invocation period by
// more than tol.
func OutputInconsistent(tauIn float64, outputIntervals []float64, tol float64) bool {
	for _, iv := range outputIntervals {
		if math.Abs(iv-tauIn) > tol {
			return true
		}
	}
	return false
}
