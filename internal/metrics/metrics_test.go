package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestIntervals(t *testing.T) {
	got := Intervals([]float64{10, 30, 60, 100})
	want := []float64{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Intervals([]float64{5}) != nil {
		t.Error("single completion has no intervals")
	}
	if Intervals(nil) != nil {
		t.Error("empty series has no intervals")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 2 || s.Max != 6 || s.Mid != 4 {
		t.Errorf("spike = %+v", s)
	}
	if c, _ := Summarize([]float64{5, 5, 5}); !c.Constant(1e-12) {
		t.Error("constant series should be Constant")
	}
	if c, _ := Summarize([]float64{1, 2}); c.Constant(0.5) {
		t.Error("spread series should not be Constant")
	}
}

func TestSummarizeEmptySeries(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("Summarize(nil) = %v, want ErrEmptySeries", err)
	}
	if _, err := NormalizedThroughput(100, nil); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("NormalizedThroughput(100, nil) = %v, want ErrEmptySeries", err)
	}
	if _, err := NormalizedLatency(100, nil); !errors.Is(err, ErrEmptySeries) {
		t.Errorf("NormalizedLatency(100, nil) = %v, want ErrEmptySeries", err)
	}
}

func TestNormalizedLoad(t *testing.T) {
	if NormalizedLoad(50, 100) != 0.5 {
		t.Error("load wrong")
	}
	if NormalizedLoad(50, 50) != 1.0 {
		t.Error("max load wrong")
	}
}

func TestNormalizedThroughput(t *testing.T) {
	// Constant intervals equal to the period → throughput exactly 1.
	s, err := NormalizedThroughput(100, []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Constant(1e-12) || s.Mid != 1 {
		t.Errorf("spike = %+v", s)
	}
	// Alternating fast/slow outputs: spike straddles 1.
	s, err = NormalizedThroughput(100, []float64{80, 120, 80, 120})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min >= 1 || s.Max <= 1 {
		t.Errorf("spike should straddle 1: %+v", s)
	}
	if s.Min != 100.0/120.0 || s.Max != 100.0/80.0 {
		t.Errorf("extremes wrong: %+v", s)
	}
}

func TestNormalizedLatency(t *testing.T) {
	s, err := NormalizedLatency(200, []float64{200, 300, 250})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1.0 || s.Max != 1.5 {
		t.Errorf("spike = %+v", s)
	}
}

func TestOutputInconsistent(t *testing.T) {
	if OutputInconsistent(100, []float64{100, 100.000001, 100}, 1e-3) {
		t.Error("within tolerance should be consistent")
	}
	if !OutputInconsistent(100, []float64{100, 130, 70}, 1e-3) {
		t.Error("oscillating intervals are OI")
	}
	if OutputInconsistent(100, nil, 1e-3) {
		t.Error("no intervals cannot be inconsistent")
	}
}

func TestSpikeString(t *testing.T) {
	got := Spike{Min: 1, Mid: 2, Max: 3}.String()
	if got != "1/2/3" {
		t.Errorf("String = %q", got)
	}
}

// Property: Summarize bounds hold and Mid lies within [Min, Max].
func TestQuickSummarizeBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		return err == nil && s.Min <= s.Mid+1e-9 && s.Mid <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: consistent intervals (all equal to the period) always yield
// throughput spike exactly 1 and no OI.
func TestQuickConsistentSeries(t *testing.T) {
	f := func(n uint8, periodRaw uint16) bool {
		period := float64(periodRaw%1000) + 1
		count := int(n%20) + 1
		ivs := make([]float64, count)
		for i := range ivs {
			ivs[i] = period
		}
		if OutputInconsistent(period, ivs, 1e-9) {
			return false
		}
		s, err := NormalizedThroughput(period, ivs)
		return err == nil && s.Constant(1e-9) && math.Abs(s.Mid-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
