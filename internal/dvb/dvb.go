// Package dvb reconstructs the DARPA Vision Benchmark task-flow graph of
// the paper's Fig. 1 (Weems et al., "An integrated image understanding
// benchmark", 1988), the workload used for every experiment in Section 6.
//
// The figure in the available scan is OCR-garbled, so the graph shape is
// a documented reconstruction (see DESIGN.md §3.9): an input/low-level
// vision task fans out to n object-model matching branches of two stages
// each, which merge into a fixed five-stage recognition chain. The
// legible figure data is preserved exactly:
//
//	message sizes (bytes): a=192, b=d=f=1536, c=3200, g=1728, h=768, i=384
//	task operation counts: 1925 for the heavy stages, 400 for the
//	per-model matching stages
//
// Because the paper's experiments assume all tasks take the same time
// (Section 6), only the message sizes, the fan-out degree and the
// precedence structure influence the reproduced results; all three come
// from the legible parts of Fig. 1.
package dvb

import (
	"fmt"

	"schedroute/internal/tfg"
)

// Message sizes in bytes, from Fig. 1.
const (
	BytesA = 192  // input task -> each model branch
	BytesB = 1536 // model match -> model verify (per branch)
	BytesC = 3200 // model verify -> merge (per branch); the longest message
	BytesD = 1536 // merge -> hough
	BytesF = 1536 // hough -> probe
	BytesG = 1728 // probe -> refine
	BytesH = 768  // refine -> decide
	BytesI = 384  // decide -> output
)

// Task operation counts, from Fig. 1.
const (
	OpsHeavy = 1925 // input, merge and chain stages
	OpsModel = 400  // per-object-model stages
)

// DefaultModels is the object-model count used by the reproduction's
// experiments. Four branches keep the merge task's fan-in within the
// degree of every 64-node network the paper evaluates (the 8x8 torus
// has degree 4): with more branches the no-slack B=64 "c" messages,
// which all carry identical windows, could never enter the merge node
// contention-free at any load, whereas the paper's Fig. 7 shows
// scheduled routing succeeding at low loads. See DESIGN.md §3.9.
const DefaultModels = 4

// New builds the reconstructed DVB TFG for n object models. The graph
// has 2n+7 tasks and 3n+5 messages.
func New(n int) (*tfg.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("dvb: need at least one object model, got %d", n)
	}
	b := tfg.NewBuilder(fmt.Sprintf("dvb-%d", n))

	input := b.AddTask("input", OpsHeavy)
	merge := b.AddTask("merge", OpsHeavy)
	hough := b.AddTask("hough", OpsHeavy)
	probe := b.AddTask("probe", OpsHeavy)
	refine := b.AddTask("refine", OpsHeavy)
	decide := b.AddTask("decide", OpsHeavy)

	for j := 0; j < n; j++ {
		match := b.AddTask(fmt.Sprintf("match%d", j), OpsModel)
		verify := b.AddTask(fmt.Sprintf("verify%d", j), OpsModel)
		b.AddMessage(fmt.Sprintf("a%d", j), input, match, BytesA)
		b.AddMessage(fmt.Sprintf("b%d", j), match, verify, BytesB)
		b.AddMessage(fmt.Sprintf("c%d", j), verify, merge, BytesC)
	}
	output := b.AddTask("output", OpsHeavy)
	b.AddMessage("d", merge, hough, BytesD)
	b.AddMessage("f", hough, probe, BytesF)
	b.AddMessage("g", probe, refine, BytesG)
	b.AddMessage("h", refine, decide, BytesH)
	b.AddMessage("i", decide, output, BytesI)

	return b.Build()
}

// Timing returns the Section 6 calibration for the DVB graph at the
// given link bandwidth (bytes/µs): every task takes τc, chosen so that
// τm/τc = 1 at 64 bytes/µs (τc = 3200/64 = 50 µs) and 0.5 at
// 128 bytes/µs. Any bandwidth is accepted; τc stays fixed at 50 µs so
// higher bandwidth lowers the communication intensity exactly as in the
// paper.
func Timing(g *tfg.Graph, bandwidth float64) (*tfg.Timing, error) {
	const tauC = float64(BytesC) / 64.0 // 50 µs
	return tfg.NewUniformTiming(g, tauC, bandwidth)
}
