package dvb

import (
	"math"
	"testing"

	"schedroute/internal/tfg"
)

func TestNewShape(t *testing.T) {
	for _, n := range []int{1, 4, 8, 16} {
		g, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if got, want := g.NumTasks(), 2*n+7; got != want {
			t.Errorf("New(%d) tasks = %d, want %d", n, got, want)
		}
		if got, want := g.NumMessages(), 3*n+5; got != want {
			t.Errorf("New(%d) messages = %d, want %d", n, got, want)
		}
		if len(g.InputTasks()) != 1 {
			t.Errorf("New(%d) inputs = %v", n, g.InputTasks())
		}
		if len(g.OutputTasks()) != 1 {
			t.Errorf("New(%d) outputs = %v", n, g.OutputTasks())
		}
	}
}

func TestNewRejectsZeroModels(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
}

func TestMessageSizesMatchFigure1(t *testing.T) {
	g, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, m := range g.Messages() {
		sizes[m.Name] = m.Bytes
	}
	want := map[string]int64{
		"a0": 192, "b0": 1536, "c0": 3200,
		"d": 1536, "f": 1536, "g": 1728, "h": 768, "i": 384,
	}
	for name, bytes := range want {
		if sizes[name] != bytes {
			t.Errorf("message %s = %d bytes, want %d", name, sizes[name], bytes)
		}
	}
}

func TestLongestMessageIsC(t *testing.T) {
	g, err := New(DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	maxBytes := int64(0)
	for _, m := range g.Messages() {
		if m.Bytes > maxBytes {
			maxBytes = m.Bytes
		}
	}
	if maxBytes != BytesC {
		t.Errorf("longest message = %d bytes, want %d", maxBytes, BytesC)
	}
}

func TestTimingCalibration(t *testing.T) {
	g, err := New(DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	// At B=64 bytes/µs, τm/τc must be exactly 1 (communication intensive).
	tm64, err := Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r := tm64.TauM() / tm64.TauC(); math.Abs(r-1.0) > 1e-12 {
		t.Errorf("B=64: tauM/tauC = %g, want 1", r)
	}
	if tm64.TauC() != 50 {
		t.Errorf("tauC = %g, want 50", tm64.TauC())
	}
	// At B=128, the ratio halves.
	tm128, err := Timing(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r := tm128.TauM() / tm128.TauC(); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("B=128: tauM/tauC = %g, want 0.5", r)
	}
}

func TestPrecedenceChain(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]tfg.TaskID{}
	for _, task := range g.Tasks() {
		byName[task.Name] = task.ID
	}
	// input precedes everything; output follows everything.
	for _, task := range g.Tasks() {
		if task.Name == "input" {
			continue
		}
		if !g.Precedes(byName["input"], task.ID) {
			t.Errorf("input does not precede %s", task.Name)
		}
	}
	for _, task := range g.Tasks() {
		if task.Name == "output" {
			continue
		}
		if !g.Precedes(task.ID, byName["output"]) {
			t.Errorf("%s does not precede output", task.Name)
		}
	}
	// Branches are independent of each other.
	if g.Precedes(byName["match0"], byName["match1"]) {
		t.Error("branches should be mutually unordered")
	}
}

func TestCriticalPathGoesThroughBranch(t *testing.T) {
	g, err := New(DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	length, chain := g.CriticalPath(tm)
	// 8 tasks on the longest chain (input,match,verify,merge,hough,probe,
	// refine,decide,output = 9 tasks, 8 messages).
	if len(chain) != 9 {
		t.Errorf("critical chain has %d tasks, want 9", len(chain))
	}
	if length <= 9*50.0 {
		t.Errorf("critical path %g should exceed pure compute time", length)
	}
}
