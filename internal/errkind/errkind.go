// Package errkind is the single classification point for the typed
// errors that cross tool and service boundaries. Every error family the
// repository wants callers to branch on — infeasible repairs, malformed
// input specs, invalid schedules driving a simulator, unknown schema
// versions — matches one sentinel here via errors.Is, and one table
// derives every externally visible mapping from that match: the CLI
// process exit status (cliutil.ExitStatus) and the service HTTP status
// (internal/service). Adding a family means adding one sentinel and one
// table row; the CLIs and the daemon pick it up together.
package errkind

import "errors"

// The error families. Concrete error types claim membership either by
// implementing Is(target error) bool (see schedule.InfeasibleRepairError
// and sim.BadScheduleError) or by being wrapped with Mark.
var (
	// ErrBadInput marks malformed user input: topology/graph/allocator
	// spec strings, fault specs, or request JSON that fails validation.
	ErrBadInput = errors.New("bad input")
	// ErrInfeasibleRepair marks an unsurvivable fault: every rung of the
	// repair degradation ladder was rejected. It is an expected
	// operational outcome, not a malfunction.
	ErrInfeasibleRepair = errors.New("infeasible repair")
	// ErrBadSchedule marks an internally inconsistent schedule detected
	// while executing it (e.g. the event engine asked to run backwards).
	ErrBadSchedule = errors.New("bad schedule")
	// ErrUnknownVersion marks an artifact or request whose schema_version
	// this build does not understand.
	ErrUnknownVersion = errors.New("unknown schema version")
	// ErrUnavailable marks load shedding: the service is draining for
	// shutdown or its solve queue is full. The request was fine; retry
	// against a less busy instance.
	ErrUnavailable = errors.New("unavailable")
	// ErrNotFound marks a lookup of an artifact the server does not
	// hold — e.g. a warm-start snapshot for a structure key this
	// replica has never built and never stored.
	ErrNotFound = errors.New("not found")
	// ErrAdmissionRejected marks a tenant admission the co-scheduler
	// declined: no rung of the degradation ladder fit the candidate into
	// the residual fabric without perturbing already-admitted tenants.
	// Like ErrInfeasibleRepair it is an expected operational outcome.
	ErrAdmissionRejected = errors.New("admission rejected")
)

// Class is one row of the classification table: the sentinel, a stable
// wire label, and the derived process exit status and HTTP status.
type Class struct {
	Kind error
	// Name is the machine-readable label carried in service error bodies.
	Name string
	// Exit is the CLI process exit status.
	Exit int
	// HTTP is the service response status.
	HTTP int
	// Detail is a stable one-line description of the family, carried in
	// the service error envelope's "detail" field so clients can show a
	// human-readable classification without hardcoding the table.
	Detail string
}

// Table maps every error family to its externally visible statuses.
// Order matters: the first sentinel the error matches wins, so more
// specific families come first. Exit statuses 0 and 2 are reserved
// (success and flag misuse); generic failures exit 1 / HTTP 500.
var Table = []Class{
	{Kind: ErrInfeasibleRepair, Name: "infeasible_repair", Exit: 3, HTTP: 422,
		Detail: "every rung of the repair degradation ladder was rejected"},
	{Kind: ErrAdmissionRejected, Name: "admission_rejected", Exit: 4, HTTP: 422,
		Detail: "the tenant does not fit the residual fabric at any degradation rung"},
	{Kind: ErrUnknownVersion, Name: "unknown_schema_version", Exit: 1, HTTP: 400,
		Detail: "this build does not understand the request's schema_version"},
	{Kind: ErrBadInput, Name: "bad_input", Exit: 1, HTTP: 400,
		Detail: "the request failed validation"},
	{Kind: ErrBadSchedule, Name: "bad_schedule", Exit: 1, HTTP: 500,
		Detail: "an internally inconsistent schedule was detected during execution"},
	{Kind: ErrUnavailable, Name: "unavailable", Exit: 1, HTTP: 503,
		Detail: "the service is draining or its solve queue is full; retry elsewhere"},
	{Kind: ErrNotFound, Name: "not_found", Exit: 1, HTTP: 404,
		Detail: "the requested artifact is not held by this replica"},
}

// Generic is the fallback classification for errors matching no family.
var Generic = Class{Name: "internal", Exit: 1, HTTP: 500,
	Detail: "unclassified internal error"}

// Classify returns the first table row whose sentinel err matches, or
// (Generic, false) when none does.
func Classify(err error) (Class, bool) {
	for _, c := range Table {
		if errors.Is(err, c.Kind) {
			return c, true
		}
	}
	return Generic, false
}

// ExitStatus derives the CLI process exit status for err.
func ExitStatus(err error) int {
	c, _ := Classify(err)
	return c.Exit
}

// HTTPStatus derives the service response status for err.
func HTTPStatus(err error) int {
	c, _ := Classify(err)
	return c.HTTP
}

// Name returns the wire label for err's family ("internal" when
// unclassified).
func Name(err error) string {
	c, _ := Classify(err)
	return c.Name
}

// ByName returns the sentinel whose wire label is name, or nil for an
// unknown (or "internal") label. It is the inverse of Name, used by
// clients that rebuild typed errors from service error bodies so exit
// statuses survive the HTTP round trip.
func ByName(name string) error {
	for _, c := range Table {
		if c.Name == name {
			return c.Kind
		}
	}
	return nil
}

// Mark wraps err so that it matches kind under errors.Is while keeping
// the original chain intact. A nil err stays nil.
func Mark(err, kind error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, kind: kind}
}

type marked struct {
	err  error
	kind error
}

func (m *marked) Error() string { return m.err.Error() }
func (m *marked) Unwrap() error { return m.err }
func (m *marked) Is(target error) bool {
	return target == m.kind
}
