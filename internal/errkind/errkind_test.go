package errkind

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassifyTableDerivations(t *testing.T) {
	cases := []struct {
		err  error
		name string
		exit int
		http int
	}{
		{ErrInfeasibleRepair, "infeasible_repair", 3, 422},
		{ErrUnknownVersion, "unknown_schema_version", 1, 400},
		{ErrBadInput, "bad_input", 1, 400},
		{ErrBadSchedule, "bad_schedule", 1, 500},
		{ErrUnavailable, "unavailable", 1, 503},
		{ErrNotFound, "not_found", 1, 404},
		{errors.New("boom"), "internal", 1, 500},
	}
	for _, c := range cases {
		if got := ExitStatus(c.err); got != c.exit {
			t.Errorf("ExitStatus(%v) = %d, want %d", c.err, got, c.exit)
		}
		if got := HTTPStatus(c.err); got != c.http {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.http)
		}
		if got := Name(c.err); got != c.name {
			t.Errorf("Name(%v) = %q, want %q", c.err, got, c.name)
		}
	}
}

func TestMarkPreservesChainAndMatchesKind(t *testing.T) {
	base := errors.New("cube spec wants a single dimension")
	m := Mark(fmt.Errorf("topology: %w", base), ErrBadInput)
	if !errors.Is(m, ErrBadInput) {
		t.Fatal("marked error must match its kind")
	}
	if !errors.Is(m, base) {
		t.Fatal("marked error must keep the original chain")
	}
	if errors.Is(m, ErrInfeasibleRepair) {
		t.Fatal("marked error must not match other kinds")
	}
	if Mark(nil, ErrBadInput) != nil {
		t.Fatal("Mark(nil) must stay nil")
	}
}

func TestWrappedClassification(t *testing.T) {
	err := fmt.Errorf("sweep: %w", Mark(errors.New("no such link"), ErrBadInput))
	if got := HTTPStatus(err); got != 400 {
		t.Errorf("wrapped bad input HTTP = %d, want 400", got)
	}
	if got := ExitStatus(fmt.Errorf("outer: %w", ErrInfeasibleRepair)); got != 3 {
		t.Errorf("wrapped infeasible exit = %d, want 3", got)
	}
}
