package experiments

import (
	"context"
	"bytes"
	"errors"
	"reflect"
	"testing"

	"schedroute/internal/schedule"
)

// TestSurvivabilitySweepParallelMatchesSerial: the two-stage fan-out
// must be invisible in the results — parallel runs are byte-identical
// to the serial one.
func TestSurvivabilitySweepParallelMatchesSerial(t *testing.T) {
	cfg := determinismConfig(t, "6cube-b64", 1)
	cfg.MaxFaults = 8
	cfg.VerifyFaults = true
	serial, err := SurvivabilitySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 4} {
		cfg.Procs = procs
		par, err := SurvivabilitySweep(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("parallel (procs=%d) survivability sweep diverged from serial run", procs)
		}
		var a, b bytes.Buffer
		if err := WriteSurvivability(&a, serial); err != nil {
			t.Fatal(err)
		}
		if err := WriteSurvivability(&b, par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("procs=%d: text output not byte-identical to serial", procs)
		}
		a.Reset()
		b.Reset()
		if err := WriteSurvivabilityCSV(&a, serial); err != nil {
			t.Fatal(err)
		}
		if err := WriteSurvivabilityCSV(&b, par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("procs=%d: CSV output not byte-identical to serial", procs)
		}
	}
}

// TestSurvivabilitySixCubeLowLoadAllRepaired is the acceptance
// criterion: on the binary 6-cube at B=64, every single-link fault at
// every feasible load point at or below 0.35 is repaired to a
// contention-free Ω at the original output rate, verified end-to-end
// by packet-level replay with the fault injected mid-run. A widened
// scheduling window (extra latency, same τout) is an acceptable
// repair; a reduced rate or an unrepaired fault is not. At the lowest
// load the window equals τc, so every message is no-slack and a few
// faults leave no detour that avoids a single-path no-slack peer at
// the original window — those repair at the 1.25τc window.
func TestSurvivabilitySixCubeLowLoadAllRepaired(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6-cube survivability sweep is long")
	}
	cfg := determinismConfig(t, "6cube-b64", 0)
	cfg.VerifyFaults = true
	s, err := SurvivabilitySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range s.Points {
		if !p.BaseFeasible || p.Load > 0.35 {
			continue
		}
		checked++
		if p.Infeasible != 0 || p.DegradedRate != 0 {
			t.Errorf("load %.4f: %d infeasible, %d degraded-rate faults; every fault must repair at full rate",
				p.Load, p.Infeasible, p.DegradedRate)
		}
		if n := p.Unaffected + p.Incremental + p.Recomputed + p.DegradedWindow; n != p.Scenarios {
			t.Errorf("load %.4f: outcome counts cover %d of %d scenarios", p.Load, n, p.Scenarios)
		}
		if p.VerifyViolations != 0 {
			t.Errorf("load %.4f: %d packet-level violations in repaired schedules", p.Load, p.VerifyViolations)
		}
		if p.Verified != p.Scenarios {
			t.Errorf("load %.4f: only %d/%d faults verified end-to-end", p.Load, p.Verified, p.Scenarios)
		}
		if p.WorstTauOutRatio != 1 {
			t.Errorf("load %.4f: output period degraded by %.4f", p.Load, p.WorstTauOutRatio)
		}
	}
	if checked == 0 {
		t.Fatal("no feasible load point at or below 0.35")
	}
}

// TestSurvivabilityStrictRepairAborts: with StrictRepair, the sweep
// surfaces the typed infeasible-repair error instead of tallying. A
// 1-hop topology fixture is impractical here, so exercise it on the
// torus panel the paper reports failures for; skip if every fault is
// survivable.
func TestSurvivabilityStrictRepair(t *testing.T) {
	cfg := determinismConfig(t, "6cube-b64", 0)
	cfg.MaxFaults = 4
	cfg.StrictRepair = true
	s, err := SurvivabilitySweep(context.Background(), cfg)
	if err != nil {
		var ire *schedule.InfeasibleRepairError
		if !errors.As(err, &ire) {
			t.Fatalf("strict sweep failed with %v, want *InfeasibleRepairError", err)
		}
		return
	}
	for _, p := range s.Points {
		if p.Infeasible != 0 {
			t.Error("strict sweep must abort on the first infeasible repair")
		}
	}
}
