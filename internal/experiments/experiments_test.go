package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"schedroute/internal/schedule"
)

func TestGridMatchesPaper(t *testing.T) {
	pts := Grid(50)
	if len(pts) != 12 {
		t.Fatalf("grid has %d points", len(pts))
	}
	if pts[0].TauIn != 50 || pts[0].Load != 1 {
		t.Errorf("first point %+v, want τc and load 1", pts[0])
	}
	if math.Abs(pts[11].TauIn-250) > 1e-9 || math.Abs(pts[11].Load-0.2) > 1e-9 {
		t.Errorf("last point %+v, want 5τc and load 0.2", pts[11])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TauIn <= pts[i-1].TauIn {
			t.Fatal("periods must increase")
		}
		if pts[i].Load >= pts[i-1].Load {
			t.Fatal("loads must decrease")
		}
	}
}

func TestStandardConfigsComplete(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 8 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for name, cfg := range cfgs {
		if cfg.Topology.Nodes() != 64 {
			t.Errorf("%s has %d nodes, want 64", name, cfg.Topology.Nodes())
		}
		if cfg.Bandwidth != 64 && cfg.Bandwidth != 128 {
			t.Errorf("%s bandwidth %g", name, cfg.Bandwidth)
		}
	}
	for fig := 5; fig <= 10; fig++ {
		keys, ok := Figure(fig)
		if !ok || len(keys) == 0 {
			t.Fatalf("figure %d unmapped", fig)
		}
		for _, k := range keys {
			if _, ok := cfgs[k]; !ok {
				t.Errorf("figure %d references unknown config %s", fig, k)
			}
		}
	}
	if _, ok := Figure(4); ok {
		t.Error("figure 4 should not exist")
	}
	if !IsUtilizationFigure(5) || !IsUtilizationFigure(6) || IsUtilizationFigure(7) {
		t.Error("utilization figure classification wrong")
	}
}

func TestUtilizationSweepSixCubeB64(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	s, err := UtilizationSweep(context.Background(), cfgs["6cube-b64"])
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 12 {
		t.Fatalf("got %d points", len(s.Points))
	}
	for _, p := range s.Points {
		// The paper's Fig. 5 observation: AssignPaths is never worse
		// than LSD-to-MSD.
		if p.Final > p.LSD+1e-9 {
			t.Errorf("load %.4f: final %g > LSD %g", p.Load, p.Final, p.LSD)
		}
	}
	// At maximum load the 6-cube at B=64 exceeds unit utilization
	// (paper: U > 1 when load > 0.3636)...
	if s.Points[0].Final <= 1 {
		t.Errorf("load 1.0 utilization %g should exceed 1", s.Points[0].Final)
	}
	// ...and reaches unity at low loads.
	last := s.Points[len(s.Points)-1]
	if last.Final > 1+1e-9 {
		t.Errorf("load 0.2 utilization %g should be <= 1", last.Final)
	}
}

func TestUtilizationSweepToriB64AlwaysAboveOne(t *testing.T) {
	// Paper Fig. 6: at B=64 neither torus ever reaches U <= 1.
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"torus88-b64", "torus444-b64"} {
		s, err := UtilizationSweep(context.Background(), cfgs[key])
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range s.Points {
			if p.Final <= 1 {
				t.Errorf("%s load %.4f: U = %g, paper says tori stay above 1 at B=64", key, p.Load, p.Final)
			}
		}
	}
}

func TestPerfSweepSixCubeB64(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs["6cube-b64"]
	cfg.Invocations = 24
	cfg.Warmup = 12
	s, err := PerfSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 12 {
		t.Fatalf("got %d points", len(s.Points))
	}
	anyWROI, anySRFeasible := false, false
	for _, p := range s.Points {
		if p.WRDeadlock {
			t.Errorf("load %.4f: unexpected deadlock on hypercube", p.Load)
			continue
		}
		if p.WROI {
			anyWROI = true
		}
		if p.SRFeasible {
			anySRFeasible = true
			// SR throughput is exactly 1 and latency constant.
			if !p.SRThroughput.Constant(1e-9) || math.Abs(p.SRThroughput.Mid-1) > 1e-9 {
				t.Errorf("load %.4f: SR throughput %v", p.Load, p.SRThroughput)
			}
			if !p.SRLatency.Constant(1e-9) {
				t.Errorf("load %.4f: SR latency not constant %v", p.Load, p.SRLatency)
			}
			if p.SRLatency.Mid < 1-1e-9 {
				t.Errorf("load %.4f: SR normalized latency %g below 1", p.Load, p.SRLatency.Mid)
			}
		}
	}
	if !anyWROI {
		t.Error("expected output inconsistency under wormhole routing at some load (paper Fig. 7)")
	}
	if !anySRFeasible {
		t.Error("expected scheduled routing to succeed at some load (paper Fig. 7)")
	}
	// The headline claim: at some load WR is inconsistent while SR
	// pipelines with constant throughput.
	headline := false
	for _, p := range s.Points {
		if p.WROI && p.SRFeasible {
			headline = true
			break
		}
	}
	if !headline {
		t.Error("no load point shows SR removing WR's output inconsistency")
	}
}

func TestWriteUtilizationFormat(t *testing.T) {
	s := &UtilizationSeries{
		Config: "test",
		Points: []UtilizationPoint{{Load: 1, LSD: 2.5, Final: 1.5}},
	}
	var b strings.Builder
	if err := WriteUtilization(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# test", "load", "2.5", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePerfFormat(t *testing.T) {
	s := &PerfSeries{
		Config:       "test",
		CriticalPath: 620,
		Points: []PerfPoint{
			{Load: 1, SRFeasible: false, SRStage: schedule.StageUtilization},
			{Load: 0.5, WRDeadlock: true, SRFeasible: false, SRStage: schedule.StageAllocation},
		},
	}
	var b strings.Builder
	if err := WritePerf(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# test", "U>1", "deadlock", "alloc-fail"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	base := cfgs["6cube-b64"]
	c := (&base).withDefaults()
	if c.Models == 0 || c.Invocations == 0 || c.Warmup == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestWriteCSVFormats(t *testing.T) {
	us := &UtilizationSeries{
		Config: "cfg",
		Points: []UtilizationPoint{{Load: 0.5, LSD: 2, Final: 1}},
	}
	var b strings.Builder
	if err := WriteUtilizationCSV(&b, us); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "config,load,u_lsd,u_final\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, `"cfg",0.500000,2.000000,1.000000`) {
		t.Errorf("missing row: %q", out)
	}

	ps := &PerfSeries{
		Config: "cfg",
		Points: []PerfPoint{{
			Load: 0.5, WROI: true,
			SRFeasible: true, SRStage: schedule.StageOK,
		}},
	}
	b.Reset()
	if err := WritePerfCSV(&b, ps); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if !strings.Contains(out, "wr_oi") || !strings.Contains(out, "true") {
		t.Errorf("perf csv wrong: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines", len(lines))
	}
	if got := strings.Count(lines[0], ","); got != strings.Count(lines[1], ",") {
		t.Errorf("column mismatch: header %d vs row %d commas", got, strings.Count(lines[1], ","))
	}
}

func TestFig10Headline(t *testing.T) {
	// The paper's strongest claim (Fig. 10): on the 4x4x4 torus at
	// B=128, "SR removes all instances of OI ... and enables operation
	// at the highest load while WR does not."
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs["torus444-b128"]
	cfg.Invocations = 24
	cfg.Warmup = 12
	s, err := PerfSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if !p.SRFeasible {
			t.Errorf("load %.4f: SR infeasible (%v), paper says feasible everywhere", p.Load, p.SRStage)
		}
	}
	top := s.Points[0] // load 1.0
	if !top.WROI && !top.WRDeadlock {
		t.Error("WR at maximum load should fail to pipeline consistently")
	}
	if !top.SRFeasible {
		t.Error("SR must enable operation at the highest load")
	}
}

func TestFig9AllocationFailuresPresent(t *testing.T) {
	// Fig. 9's signature: the 8x8 torus at B=128 has mid-range load
	// points where the path assignment passes the utilization test but
	// a later pipeline stage fails — the paper marks three such points.
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs["torus88-b128"]
	cfg.Invocations = 16
	cfg.Warmup = 8
	s, err := PerfSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	midFailures := 0
	for _, p := range s.Points {
		if !p.SRFeasible && p.SRStage != schedule.StageUtilization {
			midFailures++
		}
	}
	if midFailures == 0 {
		t.Error("expected mid-pipeline (allocation/interval-scheduling) failures as in the paper's Fig. 9")
	}
	// And SR still wins the max-load point.
	if !s.Points[0].SRFeasible {
		t.Error("SR should schedule the maximum load on this panel")
	}
}
