package experiments

import (
	"context"
	"reflect"
	"testing"

	"schedroute/internal/schedule"
)

// The parallel sweep engine must be invisible in the results: for any
// worker count, a sweep is deep-equal to the serial (Procs=1) run.
// Exercised on the two standard configs the determinism satellite
// names: the all-feasible 6-cube panel and the 8x8 torus panel whose
// mid-range allocation failures stress the error paths too.
var determinismConfigs = []string{"6cube-b64", "torus88-b128"}

func determinismConfig(t *testing.T, key string, procs int) Config {
	t.Helper()
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := cfgs[key]
	if !ok {
		t.Fatalf("unknown config %s", key)
	}
	cfg.Invocations = 8
	cfg.Warmup = 4
	cfg.Procs = procs
	return cfg
}

func TestUtilizationSweepParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		serial, err := UtilizationSweep(context.Background(), determinismConfig(t, key, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{0, 4} {
			par, err := UtilizationSweep(context.Background(), determinismConfig(t, key, procs))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s: parallel (procs=%d) utilization sweep diverged from serial run", key, procs)
			}
		}
	}
}

func TestPerfSweepParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		serial, err := PerfSweep(context.Background(), determinismConfig(t, key, 1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := PerfSweep(context.Background(), determinismConfig(t, key, 4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: parallel perf sweep diverged from serial run", key)
		}
	}
}

func TestComputeBestAllocationParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		cfg := determinismConfig(t, key, 0)
		g, tm, _, err := workload(cfg.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		p := schedule.Problem{
			Graph: g, Timing: tm, Topology: cfg.Topology,
			TauIn: tm.TauC() * (1 + 4.0*5/11),
		}
		cands, err := schedule.DefaultCandidates(context.Background(), p, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 4 {
			t.Fatalf("got %d candidates", len(cands))
		}
		serial, err := schedule.ComputeBestAllocation(context.Background(), p, schedule.Options{Seed: cfg.Seed, Procs: 1}, cands)
		if err != nil {
			t.Fatal(err)
		}
		par, err := schedule.ComputeBestAllocation(context.Background(), p, schedule.Options{Seed: cfg.Seed, Procs: 4}, cands)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Chosen != par.Chosen {
			t.Errorf("%s: parallel search chose candidate %d, serial chose %d", key, par.Chosen, serial.Chosen)
		}
		if !reflect.DeepEqual(serial.Result, par.Result) {
			t.Errorf("%s: parallel search result diverged from serial run", key)
		}
	}
}
