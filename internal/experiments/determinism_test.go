package experiments

import (
	"context"
	"reflect"
	"testing"

	"schedroute/internal/schedule"
	"schedroute/internal/trace"
)

// The parallel sweep engine must be invisible in the results: for any
// worker count, a sweep is deep-equal to the serial (Procs=1) run.
// Exercised on the two standard configs the determinism satellite
// names: the all-feasible 6-cube panel and the 8x8 torus panel whose
// mid-range allocation failures stress the error paths too.
var determinismConfigs = []string{"6cube-b64", "torus88-b128"}

func determinismConfig(t *testing.T, key string, procs int) Config {
	t.Helper()
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := cfgs[key]
	if !ok {
		t.Fatalf("unknown config %s", key)
	}
	cfg.Invocations = 8
	cfg.Warmup = 4
	cfg.Procs = procs
	return cfg
}

func TestUtilizationSweepParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		serial, err := UtilizationSweep(context.Background(), determinismConfig(t, key, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{0, 4} {
			par, err := UtilizationSweep(context.Background(), determinismConfig(t, key, procs))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s: parallel (procs=%d) utilization sweep diverged from serial run", key, procs)
			}
		}
	}
}

func TestPerfSweepParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		serial, err := PerfSweep(context.Background(), determinismConfig(t, key, 1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := PerfSweep(context.Background(), determinismConfig(t, key, 4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: parallel perf sweep diverged from serial run", key)
		}
	}
}

// Traced determinism: with tracing enabled, the sweep results must
// still match the serial run exactly, and the span tree structure
// (names in depth-first order) must be independent of the worker
// count — spans from pool workers merge deterministically because the
// per-point spans are pre-created serially. Timings and cache attrs
// (which point builds the shared baseline) legitimately vary, so only
// the structure is compared.
func TestUtilizationSweepTracedParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		run := func(procs int) (*UtilizationSeries, []string) {
			cfg := determinismConfig(t, key, procs)
			root := trace.Start("test")
			cfg.Trace = root
			s, err := UtilizationSweep(context.Background(), cfg)
			root.End()
			if err != nil {
				t.Fatal(err)
			}
			return s, root.Tree().Names()
		}
		serial, serialNames := run(1)
		par, parNames := run(4)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: traced parallel utilization sweep diverged from serial run", key)
		}
		if !reflect.DeepEqual(serialNames, parNames) {
			t.Errorf("%s: traced span structure depends on worker count:\nserial: %v\nparallel: %v",
				key, serialNames, parNames)
		}
		if n := len(serialNames); n < 1+NumLoadPoints*2 {
			t.Errorf("%s: traced sweep recorded only %d spans", key, n)
		}
	}
}

func TestPerfSweepTracedParallelMatchesSerial(t *testing.T) {
	key := determinismConfigs[0]
	run := func(procs int) (*PerfSeries, []string) {
		cfg := determinismConfig(t, key, procs)
		root := trace.Start("test")
		cfg.Trace = root
		s, err := PerfSweep(context.Background(), cfg)
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		return s, root.Tree().Names()
	}
	serial, serialNames := run(1)
	par, parNames := run(4)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("%s: traced parallel perf sweep diverged from serial run", key)
	}
	if !reflect.DeepEqual(serialNames, parNames) {
		t.Errorf("%s: traced span structure depends on worker count", key)
	}
}

func TestSurvivabilitySweepTracedParallelMatchesSerial(t *testing.T) {
	key := determinismConfigs[0]
	run := func(procs int) (*SurvivabilitySeries, []string) {
		cfg := determinismConfig(t, key, procs)
		cfg.MaxFaults = 4
		root := trace.Start("test")
		cfg.Trace = root
		s, err := SurvivabilitySweep(context.Background(), cfg)
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		return s, root.Tree().Names()
	}
	serial, serialNames := run(1)
	par, parNames := run(4)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("%s: traced parallel survivability sweep diverged from serial run", key)
	}
	if !reflect.DeepEqual(serialNames, parNames) {
		t.Errorf("%s: traced span structure depends on worker count", key)
	}
}

func TestComputeBestAllocationParallelMatchesSerial(t *testing.T) {
	for _, key := range determinismConfigs {
		cfg := determinismConfig(t, key, 0)
		g, tm, _, err := workload(cfg.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		p := schedule.Problem{
			Graph: g, Timing: tm, Topology: cfg.Topology,
			TauIn: tm.TauC() * (1 + 4.0*5/11),
		}
		cands, err := schedule.DefaultCandidates(context.Background(), p, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 4 {
			t.Fatalf("got %d candidates", len(cands))
		}
		serial, err := schedule.ComputeBestAllocation(context.Background(), p, schedule.Options{Seed: cfg.Seed, Procs: 1}, cands)
		if err != nil {
			t.Fatal(err)
		}
		par, err := schedule.ComputeBestAllocation(context.Background(), p, schedule.Options{Seed: cfg.Seed, Procs: 4}, cands)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Chosen != par.Chosen {
			t.Errorf("%s: parallel search chose candidate %d, serial chose %d", key, par.Chosen, serial.Chosen)
		}
		if !reflect.DeepEqual(serial.Result, par.Result) {
			t.Errorf("%s: parallel search result diverged from serial run", key)
		}
		// Traced runs: the candidate spans are pre-created in index order,
		// so the structure must not depend on the worker count either.
		tracedNames := func(procs int) []string {
			root := trace.Start("test")
			_, err := schedule.ComputeBestAllocation(context.Background(), p,
				schedule.Options{Seed: cfg.Seed, Procs: procs, Trace: root}, cands)
			root.End()
			if err != nil {
				t.Fatal(err)
			}
			return root.Tree().Names()
		}
		if !reflect.DeepEqual(tracedNames(1), tracedNames(4)) {
			t.Errorf("%s: traced search span structure depends on worker count", key)
		}
	}
}
