package experiments

import (
	"context"
	"fmt"
	"io"

	"schedroute/internal/schedule"
	"schedroute/internal/trace"
)

// SpanParetoSweep is recorded under Config.Trace around one
// configuration's Pareto exploration.
const SpanParetoSweep = "pareto_sweep"

// ParetoSeries is one configuration's multi-criteria front: the
// capacity-planning view the single-figure sweeps cannot give. Each
// front point is a deployable schedule — a (placement, τin, window)
// triple with its latency and fabric footprint — and no point on the
// front is beaten on every objective by another.
type ParetoSeries struct {
	Config string
	Front  *schedule.ParetoFront
}

// ParetoSweep explores the period × latency × resource trade-off for
// one standard configuration. The spec's zero fields pick the
// experiment defaults: candidate placements are the config's
// round-robin baseline plus two annealed placements seeded off
// cfg.Seed, four candidate periods per placement, and all four
// objectives. cfg.Procs bounds the fan-out workers; the front is
// byte-identical for every worker count.
func ParetoSweep(ctx context.Context, c Config, spec schedule.ExploreSpec) (*ParetoSeries, error) {
	cfg := c.withDefaults()
	g, tm, as, err := workload(cfg)
	if err != nil {
		return nil, err
	}
	if len(spec.AnnealSeeds) == 0 && len(spec.Placements) == 0 {
		spec.AnnealSeeds = []int64{cfg.Seed + 1, cfg.Seed + 2}
	}
	if spec.GridPoints == 0 {
		spec.GridPoints = 4
	}
	sweep := cfg.Trace.Start(SpanParetoSweep, trace.String("config", cfg.Name))
	defer sweep.End()
	if cfg.Trace != nil {
		spec.Trace = sweep
	}
	front, err := schedule.Explore(ctx,
		schedule.Problem{Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: as},
		schedule.Options{Seed: cfg.Seed, Procs: cfg.Procs},
		spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s pareto: %w", cfg.Name, err)
	}
	return &ParetoSeries{Config: cfg.Name, Front: front}, nil
}

// WritePareto renders a Pareto front as a text table: the placement
// outcomes first (which candidates schedule at all, and how fast), then
// one row per front point with its load, period, window, latency and
// fabric footprint.
func WritePareto(w io.Writer, s *ParetoSeries) error {
	f := s.Front
	if _, err := fmt.Fprintf(w, "# %s (τc %.1f µs, min τin %.2f µs, %d evaluated, %d on front)\n",
		s.Config, f.TauC, f.MinTauIn, f.Evaluated, len(f.Points)); err != nil {
		return err
	}
	for i, out := range f.Placements {
		status := "infeasible in range"
		if out.Feasible {
			status = fmt.Sprintf("min τin %.2f µs (load %.4f)", out.MinTauIn, f.TauC/out.MinTauIn)
		}
		if _, err := fmt.Fprintf(w, "# placement %d: %s\n", i, status); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-6s %-10s %-10s %-10s %-12s %-7s %-9s %-8s\n",
		"plc", "load", "tau_in", "window", "latency", "links", "buffers", "peak"); err != nil {
		return err
	}
	for _, pt := range f.Points {
		if _, err := fmt.Fprintf(w, "%-6d %-10.4f %-10.2f %-10.2f %-12.2f %-7d %-9d %-8.4f\n",
			pt.Placement, f.TauC/pt.TauIn, pt.TauIn, pt.Window, pt.Latency,
			pt.Links, pt.Buffers, pt.Peak); err != nil {
			return err
		}
	}
	return nil
}

// WriteParetoCSV renders a Pareto front as CSV for external plotting.
func WriteParetoCSV(w io.Writer, s *ParetoSeries) error {
	if _, err := fmt.Fprintf(w, "config,placement,load,tau_in,window,latency,links,buffers,peak\n"); err != nil {
		return err
	}
	f := s.Front
	for _, pt := range f.Points {
		if _, err := fmt.Fprintf(w, "%q,%d,%.6f,%.6f,%.6f,%.6f,%d,%d,%.6f\n",
			s.Config, pt.Placement, f.TauC/pt.TauIn, pt.TauIn, pt.Window, pt.Latency,
			pt.Links, pt.Buffers, pt.Peak); err != nil {
			return err
		}
	}
	return nil
}
