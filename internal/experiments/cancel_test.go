package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err observations — a deterministic stand-in for "the
// caller cancels while the sweep is in flight". The sweep engine polls
// ctx.Err before each load point, so the countdown cancels mid-sweep
// regardless of timing.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func cancelConfig(t *testing.T) Config {
	t.Helper()
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs["6cube-b64"]
	cfg.Procs = 1 // serial: the countdown's cut point is deterministic
	return cfg
}

// TestSweepCancelledBeforeStart: an already-cancelled context stops the
// sweep before any load point runs.
func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, sweep := range map[string]func() error{
		"utilization": func() error { _, err := UtilizationSweep(ctx, cancelConfig(t)); return err },
		"perf":        func() error { _, err := PerfSweep(ctx, cancelConfig(t)); return err },
		"survivability": func() error {
			cfg := cancelConfig(t)
			cfg.MaxFaults = 1
			_, err := SurvivabilitySweep(ctx, cfg)
			return err
		},
	} {
		if err := sweep(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s sweep under cancelled ctx: got %v, want context.Canceled", name, err)
		}
	}
}

// TestSweepCancelsMidway: cancellation that strikes after a few load
// points aborts the remainder of the sweep and surfaces the context
// error instead of a partial series.
func TestSweepCancelsMidway(t *testing.T) {
	// Let a handful of Err polls through: enough for the sweep to start
	// working, far fewer than the twelve points need.
	ctx := newCountdownCtx(3)
	s, err := UtilizationSweep(ctx, cancelConfig(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel: got %v, want context.Canceled", err)
	}
	if s != nil {
		t.Fatal("cancelled sweep returned a partial series")
	}
}
