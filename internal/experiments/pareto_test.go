package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"schedroute/internal/schedule"
	"schedroute/internal/trace"
)

// paretoSpec is a deliberately small exploration for the determinism
// matrix: one annealed placement next to the round-robin baseline, two
// candidate periods each, all four objectives (so the window bisection
// runs too).
func paretoSpec(seed int64) schedule.ExploreSpec {
	return schedule.ExploreSpec{
		GridPoints:  2,
		AnnealSeeds: []int64{seed + 1},
		AnnealSteps: 2000,
	}
}

// TestParetoSweepSerialParallelOnStandardConfigs pins the determinism
// satellite across every standard configuration: the explored front is
// deep-equal no matter the worker count.
func TestParetoSweepSerialParallelOnStandardConfigs(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 8 {
		t.Fatalf("expected the 8 standard configs, got %d", len(cfgs))
	}
	for key, cfg := range cfgs {
		cfg := cfg
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			run := func(procs int) *ParetoSeries {
				c := cfg
				c.Procs = procs
				s, err := ParetoSweep(context.Background(), c, paretoSpec(cfg.Seed))
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			serial := run(1)
			if len(serial.Front.Points) == 0 {
				t.Fatalf("%s: empty front", key)
			}
			for _, procs := range []int{0, 4} {
				if par := run(procs); !reflect.DeepEqual(serial, par) {
					t.Errorf("%s: parallel (procs=%d) pareto sweep diverged from serial run", key, procs)
				}
			}
		})
	}
}

// TestParetoSweepSixCubeFront is the acceptance scenario: the 6-cube
// exploration with the -fig pareto defaults yields a non-trivial front
// (≥3 non-dominated points) and every front point's Ω re-validates
// against the topology.
func TestParetoSweepSixCubeFront(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs["6cube-b64"]
	s, err := ParetoSweep(context.Background(), cfg, schedule.ExploreSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f := s.Front
	if len(f.Placements) != 3 {
		t.Fatalf("placements = %d, want 3 (round-robin + 2 annealed)", len(f.Placements))
	}
	if len(f.Points) < 3 {
		t.Fatalf("front has %d points, want ≥3 non-dominated", len(f.Points))
	}
	for i, pt := range f.Points {
		if pt.Result == nil || !pt.Result.Feasible {
			t.Fatalf("front point %d infeasible", i)
		}
		if err := pt.Result.Omega.Validate(cfg.Topology); err != nil {
			t.Errorf("front point %d: Ω invalid: %v", i, err)
		}
	}
	for i := range f.Points {
		for j := range f.Points {
			if i != j && schedule.Dominates(&f.Points[i], &f.Points[j], f.Objectives) {
				t.Errorf("front point %d dominates front point %d", i, j)
			}
		}
	}
}

// TestParetoSweepTraced checks the traced exploration has a
// worker-count-independent span structure and that the writers render
// the front.
func TestParetoSweepTraced(t *testing.T) {
	cfgs, err := StandardConfigs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs["6cube-b64"]
	run := func(procs int) (*ParetoSeries, []string) {
		c := cfg
		c.Procs = procs
		root := trace.Start("test")
		c.Trace = root
		s, err := ParetoSweep(context.Background(), c, paretoSpec(cfg.Seed))
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		return s, root.Tree().Names()
	}
	serial, serialNames := run(1)
	par, parNames := run(4)
	// Wall-clock span trees are inherently run-dependent, so traced
	// Results are compared with Trace stripped (the span structure is
	// checked separately below), matching the rest of the determinism
	// suite.
	stripTraces := func(s *ParetoSeries) {
		for i := range s.Front.Points {
			s.Front.Points[i].Result.Trace = nil
		}
	}
	stripTraces(serial)
	stripTraces(par)
	if !reflect.DeepEqual(serial, par) {
		t.Error("traced parallel pareto sweep diverged from serial run")
	}
	if !reflect.DeepEqual(serialNames, parNames) {
		t.Errorf("traced span structure depends on worker count:\nserial: %v\nparallel: %v",
			serialNames, parNames)
	}
	found := map[string]bool{}
	for _, n := range serialNames {
		found[n] = true
	}
	for _, want := range []string{SpanParetoSweep, schedule.SpanExplore,
		schedule.SpanExplorePlacement, schedule.SpanExploreBisect, schedule.SpanExplorePoint} {
		if !found[want] {
			t.Errorf("traced sweep missing span %q (got %v)", want, serialNames)
		}
	}

	var table, csv strings.Builder
	if err := WritePareto(&table, serial); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "placement 0") || !strings.Contains(table.String(), "tau_in") {
		t.Errorf("table output missing expected sections:\n%s", table.String())
	}
	if err := WriteParetoCSV(&csv, serial); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Count(csv.String(), "\n"), 1+len(serial.Front.Points); got != want {
		t.Errorf("CSV has %d lines, want %d", got, want)
	}
}
