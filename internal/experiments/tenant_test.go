package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"schedroute/internal/topology"
)

func tenantSweepConfig(t *testing.T) Config {
	t.Helper()
	cube, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Name: "6cube-b64", Topology: cube, Bandwidth: 64, Seed: 1,
		MaxFaults: 4, // keep the per-point fault cycle short
	}
}

// TestTenantSurvivabilitySixCube runs the two-tenant isolation sweep on
// the paper's 6-cube and checks the isolation invariant: at every load
// point where the victim was admitted, every victim-only fault left the
// bystander's Ω byte-identical, and the victim's repair outcomes tally
// to the scenario count.
func TestTenantSurvivabilitySixCube(t *testing.T) {
	s, err := TenantSurvivabilitySweep(context.Background(), tenantSweepConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != NumLoadPoints {
		t.Fatalf("%d points, want %d", len(s.Points), NumLoadPoints)
	}
	admitted := 0
	for _, p := range s.Points {
		if p.VictimOutcome == "rejected" {
			if p.Scenarios != 0 {
				t.Errorf("load %.4f: rejected victim still ran %d scenarios", p.Load, p.Scenarios)
			}
			continue
		}
		admitted++
		if sum := p.Unaffected + p.Incremental + p.Recomputed + p.DegradedWindow + p.DegradedRate + p.Infeasible; sum != p.Scenarios {
			t.Errorf("load %.4f: outcome counts sum to %d, want %d", p.Load, sum, p.Scenarios)
		}
		if p.BystanderIntact != p.Scenarios {
			t.Errorf("load %.4f: bystander intact %d/%d — isolation invariant violated",
				p.Load, p.BystanderIntact, p.Scenarios)
		}
		if p.WorstTauOutRatio < 1 {
			t.Errorf("load %.4f: worst τout ratio %g < 1", p.Load, p.WorstTauOutRatio)
		}
	}
	if admitted == 0 {
		t.Fatal("victim was admitted at no load point; the sweep measured nothing")
	}

	var table, csv bytes.Buffer
	if err := WriteTenantSurvivability(&table, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteTenantSurvivabilityCSV(&csv, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "bystander") || !strings.Contains(csv.String(), "bystander_intact") {
		t.Error("writers lost the bystander column")
	}
	if got := len(strings.Split(strings.TrimSpace(csv.String()), "\n")); got != NumLoadPoints+1 {
		t.Errorf("csv has %d lines, want %d", got, NumLoadPoints+1)
	}
}

// TestTenantSurvivabilityDeterministic: the series is identical for a
// serial and a parallel run (each point owns its TenantSet, so worker
// interleaving cannot leak between points).
func TestTenantSurvivabilityDeterministic(t *testing.T) {
	serial := tenantSweepConfig(t)
	serial.Procs = 1
	par := tenantSweepConfig(t)
	par.Procs = 4
	a, err := TenantSurvivabilitySweep(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TenantSurvivabilitySweep(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs between serial and parallel runs:\n%+v\n%+v", i, a.Points[i], b.Points[i])
		}
	}
}
