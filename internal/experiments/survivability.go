package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"schedroute/internal/cpsim"
	"schedroute/internal/faults"
	"schedroute/internal/parallel"
	"schedroute/internal/schedule"
	"schedroute/internal/trace"
)

// SurvivabilityPoint summarizes, for one load point, how the schedule
// survives every single-link fault: the count of faults resolved at
// each rung of the repair ladder, the worst residual peak utilization,
// the worst output-period degradation, and (when Config.VerifyFaults
// is set) the end-to-end packet-level verification tally.
type SurvivabilityPoint struct {
	Load  float64
	TauIn float64

	// BaseFeasible reports whether the fault-free schedule exists at
	// this load; when false the fault fan-out is skipped and BaseStage
	// names the rejecting pipeline stage.
	BaseFeasible bool
	BaseStage    schedule.Stage

	// Scenarios is the number of single-link faults evaluated.
	Scenarios int
	// Per-outcome counts over the scenarios (see schedule.RepairOutcome).
	Unaffected     int
	Incremental    int
	Recomputed     int
	DegradedWindow int
	DegradedRate   int
	Infeasible     int

	// WorstPeak is the highest repaired peak utilization over the
	// survivable scenarios.
	WorstPeak float64
	// WorstTauOutRatio is the worst τout/τin over the survivable
	// scenarios (1 unless some fault forced a rate degradation).
	WorstTauOutRatio float64

	// Verified counts scenarios whose repaired Ω replayed mid-run
	// fault injection without violations; VerifyViolations sums the
	// violations observed (0 on a correct repair pipeline). Both stay 0
	// unless Config.VerifyFaults is set.
	Verified         int
	VerifyViolations int
}

// SurvivabilitySeries is one config's survivability sweep across the
// twelve load points.
type SurvivabilitySeries struct {
	Config string
	Points []SurvivabilityPoint
}

// faultOutcome is one (load point, link fault) repair result, kept in
// an ordered slot so parallel sweeps tally identically to serial ones.
type faultOutcome struct {
	outcome    schedule.RepairOutcome
	peak       float64
	ratio      float64
	verified   bool
	violations int
	err        error
}

// SurvivabilitySweep measures schedule survivability under every
// single-link fault at each of the twelve load points: the base
// schedule is computed per point, then each (point, fault) pair runs
// the repair ladder — incremental reroute, full recompute, widened
// windows, reduced rate — and, optionally, a packet-level mid-run
// fault-injection verification of the repaired Ω. Both stages fan out
// on cfg.Procs workers with ordered result slots, so the series is
// byte-identical for every worker count. ctx cancels both fan-outs
// between jobs and the repair ladder between rungs.
func SurvivabilitySweep(ctx context.Context, c Config) (*SurvivabilitySeries, error) {
	cfg := c.withDefaults()
	g, tm, as, err := workload(cfg)
	if err != nil {
		return nil, err
	}
	pts := Grid(tm.TauC())
	opts := schedule.Options{Seed: cfg.Seed}
	problem := func(tauIn float64) schedule.Problem {
		return schedule.Problem{
			Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: as, TauIn: tauIn,
		}
	}
	sweep := cfg.Trace.Start(SpanSurvivabilitySweep, trace.String("config", cfg.Name))
	defer sweep.End()

	// Stage 1: fault-free base schedule per load point, all through one
	// solver so the perfect-machine candidates and baseline build once.
	solver := schedule.NewSolver(schedule.Problem{
		Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: as,
	})
	spans := pointSpans(sweep, pts)
	base := make([]*schedule.Result, len(pts))
	err = parallel.ForEach(ctx, len(pts), parallel.Workers(cfg.Procs), func(i int) error {
		po := opts
		po.Trace = spans[i]
		res, err := solver.Solve(ctx, pts[i].TauIn, po)
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f: %w", cfg.Name, pts[i].Load, err)
		}
		base[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Single-link fault scenarios, one per link in link order.
	scenarios := faults.SingleLink(cfg.Topology, 1)
	if cfg.MaxFaults > 0 && cfg.MaxFaults < len(scenarios) {
		scenarios = scenarios[:cfg.MaxFaults]
	}

	// Stage 2: the repair fan-out over every (feasible point, fault)
	// pair, each writing its ordered slot.
	type job struct{ pi, si int }
	var jobs []job
	var jobSpans []*trace.Span
	outcomes := make([][]faultOutcome, len(pts))
	for pi := range pts {
		if base[pi].Feasible {
			outcomes[pi] = make([]faultOutcome, len(scenarios))
			for si := range scenarios {
				jobs = append(jobs, job{pi, si})
				// Fault spans are pre-created here, serially in job order
				// under their point span, for the same determinism reason
				// as pointSpans.
				jobSpans = append(jobSpans, spans[pi].Start(SpanFault,
					trace.String("fault", scenarios[si].Name)))
			}
		}
	}
	err = parallel.ForEach(ctx, len(jobs), parallel.Workers(cfg.Procs), func(j int) error {
		pi, si := jobs[j].pi, jobs[j].si
		defer jobSpans[j].End()
		fs := scenarios[si].ActiveAt(cfg.Topology, 1)
		ro := opts
		ro.Trace = jobSpans[j]
		rep, err := schedule.Repair(ctx, problem(pts[pi].TauIn), ro, base[pi], fs)
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f fault %s: %w",
				cfg.Name, pts[pi].Load, scenarios[si].Name, err)
		}
		out := faultOutcome{
			outcome: rep.Outcome,
			peak:    rep.NewPeak,
			ratio:   rep.TauOut / pts[pi].TauIn,
			err:     rep.Err(),
		}
		if cfg.VerifyFaults && rep.Result != nil {
			sim, err := cpsim.Run(cpsim.Config{
				Omega: base[pi].Omega, Graph: g, Topology: cfg.Topology,
				PacketBytes: 64, Bandwidth: cfg.Bandwidth, Invocations: 4,
				Fault: &cpsim.FaultInjection{
					Faults: fs, FailAt: 1,
					Repaired: rep.Result.Omega, RepairAt: 2,
				},
			})
			if err != nil {
				return fmt.Errorf("experiments: %s load %.4f fault %s: cpsim: %w",
					cfg.Name, pts[pi].Load, scenarios[si].Name, err)
			}
			out.violations = len(sim.RepairViolations)
			out.verified = out.violations == 0
		}
		outcomes[pi][si] = out
		return nil
	})
	for _, ps := range spans {
		ps.End()
	}
	if err != nil {
		return nil, err
	}

	// Tally serially in (point, scenario) order.
	series := &SurvivabilitySeries{Config: cfg.Name, Points: make([]SurvivabilityPoint, len(pts))}
	for pi, lp := range pts {
		pt := SurvivabilityPoint{
			Load: lp.Load, TauIn: lp.TauIn,
			BaseFeasible: base[pi].Feasible, BaseStage: base[pi].FailStage,
			WorstTauOutRatio: 1,
		}
		if base[pi].Feasible {
			pt.Scenarios = len(scenarios)
			for _, out := range outcomes[pi] {
				switch out.outcome {
				case schedule.RepairUnaffected:
					pt.Unaffected++
				case schedule.RepairIncremental:
					pt.Incremental++
				case schedule.RepairRecomputed:
					pt.Recomputed++
				case schedule.RepairDegradedWindow:
					pt.DegradedWindow++
				case schedule.RepairDegradedRate:
					pt.DegradedRate++
				case schedule.RepairInfeasible:
					pt.Infeasible++
					if cfg.StrictRepair {
						return nil, out.err
					}
				}
				if out.outcome != schedule.RepairInfeasible {
					if out.peak > pt.WorstPeak {
						pt.WorstPeak = out.peak
					}
					if out.ratio > pt.WorstTauOutRatio {
						pt.WorstTauOutRatio = out.ratio
					}
					if out.verified {
						pt.Verified++
					}
					pt.VerifyViolations += out.violations
				}
			}
		}
		series.Points[pi] = pt
	}
	return series, nil
}

// WriteSurvivability renders a survivability sweep as a text table:
// one row per load point with the repair-ladder outcome counts.
func WriteSurvivability(w io.Writer, s *SurvivabilitySeries) error {
	if _, err := fmt.Fprintf(w, "# survivability under single-link faults: %s\n", s.Config); err != nil {
		return err
	}
	header := fmt.Sprintf("%-8s %-10s %-6s %-6s %-6s %-7s %-6s %-6s %-7s %-8s %-9s %-9s",
		"load", "base", "n", "unaff", "incr", "recomp", "degW", "degR", "infeas", "worstU", "tout/tin", "verified")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, p := range s.Points {
		if !p.BaseFeasible {
			if _, err := fmt.Fprintf(w, "%-8.4f %-10s %-6s\n", p.Load, failTag(p.BaseStage), "-"); err != nil {
				return err
			}
			continue
		}
		verified := "-"
		if p.Verified > 0 || p.VerifyViolations > 0 {
			verified = fmt.Sprintf("%d/%d", p.Verified, p.Scenarios-p.Infeasible)
		}
		if _, err := fmt.Fprintf(w, "%-8.4f %-10s %-6d %-6d %-6d %-7d %-6d %-6d %-7d %-8.4f %-9.4f %-9s\n",
			p.Load, "feasible", p.Scenarios, p.Unaffected, p.Incremental, p.Recomputed,
			p.DegradedWindow, p.DegradedRate, p.Infeasible,
			p.WorstPeak, p.WorstTauOutRatio, verified); err != nil {
			return err
		}
	}
	return nil
}

// WriteSurvivabilityCSV renders a survivability sweep as CSV for
// external plotting.
func WriteSurvivabilityCSV(w io.Writer, s *SurvivabilitySeries) error {
	if _, err := fmt.Fprintf(w, "config,load,base_stage,scenarios,unaffected,incremental,recomputed,degraded_window,degraded_rate,infeasible,worst_peak,worst_tauout_ratio,verified,verify_violations\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		worstPeak, ratio := p.WorstPeak, p.WorstTauOutRatio
		if !p.BaseFeasible {
			worstPeak, ratio = math.NaN(), math.NaN()
		}
		if _, err := fmt.Fprintf(w, "%q,%.6f,%q,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d\n",
			s.Config, p.Load, p.BaseStage.String(), p.Scenarios,
			p.Unaffected, p.Incremental, p.Recomputed, p.DegradedWindow, p.DegradedRate, p.Infeasible,
			worstPeak, ratio, p.Verified, p.VerifyViolations); err != nil {
			return err
		}
	}
	return nil
}
