// Package experiments regenerates every figure of the paper's Section 6
// evaluation: peak-utilization sweeps for the AssignPaths heuristic
// against LSD-to-MSD routing (Figs. 5 and 6) and wormhole-vs-scheduled
// routing throughput/latency sweeps with output-inconsistency spikes
// (Figs. 7-10). All experiments run the reconstructed DARPA Vision
// Benchmark TFG over the paper's twelve input periods between τc and
// 5τc on 64-node networks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/parallel"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
	"schedroute/internal/wormhole"
)

// NumLoadPoints is the paper's twelve input periods per sweep.
const NumLoadPoints = 12

// Span names the sweeps record under Config.Trace.
const (
	SpanUtilizationSweep   = "utilization_sweep"
	SpanPerfSweep          = "perf_sweep"
	SpanSurvivabilitySweep = "survivability_sweep"
	SpanPoint              = "point"
	SpanFault              = "fault"
)

// pointSpans pre-creates one child span per load point, serially in
// index order, so a traced fan-out has the same structure no matter how
// the workers interleave; each worker records only into its own span.
func pointSpans(parent *trace.Span, pts []LoadPoint) []*trace.Span {
	spans := make([]*trace.Span, len(pts))
	for i := range pts {
		spans[i] = parent.Start(SpanPoint,
			trace.Int("index", i), trace.Float64("tau_in", pts[i].TauIn))
	}
	return spans
}

// LoadPoint is one x-axis position: input period τin and normalized
// load τc/τin.
type LoadPoint struct {
	Index int
	TauIn float64
	Load  float64
}

// Grid returns the twelve input periods between τc and 5τc used by
// every sweep in the paper.
func Grid(tauC float64) []LoadPoint {
	pts := make([]LoadPoint, NumLoadPoints)
	for k := 0; k < NumLoadPoints; k++ {
		tauIn := tauC * (1 + 4*float64(k)/float64(NumLoadPoints-1))
		pts[k] = LoadPoint{Index: k, TauIn: tauIn, Load: tauC / tauIn}
	}
	return pts
}

// Config describes one experiment configuration (a topology at a link
// bandwidth).
type Config struct {
	Name      string
	Topology  *topology.Topology
	Bandwidth float64 // bytes/µs
	// Models is the DVB object-model count (0 = dvb.DefaultModels).
	Models int
	// Seed drives AssignPaths restarts.
	Seed int64
	// Invocations/Warmup control the wormhole simulation length
	// (defaults 40/20).
	Invocations int
	Warmup      int
	// Procs bounds the worker goroutines a sweep uses across its twelve
	// load points: 0 selects GOMAXPROCS, 1 forces a serial run. The
	// points are independent and every point keeps its serial seed, so
	// sweep results are identical for every Procs value.
	Procs int
	// VerifyFaults makes SurvivabilitySweep re-verify every repaired
	// schedule end-to-end: cpsim injects the fault mid-run, activates
	// the repaired Ω, and asserts the replay is contention-free.
	VerifyFaults bool
	// StrictRepair makes SurvivabilitySweep abort with the first
	// *schedule.InfeasibleRepairError instead of tallying the fault as
	// unsurvivable — for deployments where graceful degradation is not
	// an acceptable answer.
	StrictRepair bool
	// MaxFaults caps the single-link fault scenarios per load point
	// (0 = every link); the scenarios kept are the first in link order,
	// so a capped sweep is a prefix of the full one.
	MaxFaults int
	// Trace, when non-nil, is the parent span the sweep records under:
	// one "point" child per load point (pre-created serially in index
	// order, so the traced structure is identical for every Procs value)
	// with the per-point solves nested beneath. Series values carry no
	// trace — they stay value-comparable across runs.
	Trace *trace.Span
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Models == 0 {
		out.Models = dvb.DefaultModels
	}
	if out.Invocations == 0 {
		out.Invocations = 40
	}
	if out.Warmup == 0 {
		out.Warmup = 20
	}
	return out
}

// workloadKey identifies one cached workload instantiation. Topologies
// are compared by identity: StandardConfigs shares one topology object
// across bandwidths, and distinct objects must not share path caches'
// assignments anyway.
type workloadKey struct {
	top       *topology.Topology
	bandwidth float64
	models    int
}

type workloadEntry struct {
	g  *tfg.Graph
	tm *tfg.Timing
	as *alloc.Assignment
}

// workloadCache memoizes workload so repeated sweeps of one config stop
// rebuilding the DVB graph, its timing, and the round-robin placement.
// All three are immutable once built, so sharing them across concurrent
// sweeps is safe.
var workloadCache sync.Map // workloadKey -> *workloadEntry

// workload instantiates (or recalls) the DVB problem for a config.
func workload(cfg Config) (*tfg.Graph, *tfg.Timing, *alloc.Assignment, error) {
	key := workloadKey{cfg.Topology, cfg.Bandwidth, cfg.Models}
	if e, ok := workloadCache.Load(key); ok {
		ent := e.(*workloadEntry)
		return ent.g, ent.tm, ent.as, nil
	}
	g, err := dvb.New(cfg.Models)
	if err != nil {
		return nil, nil, nil, err
	}
	tm, err := dvb.Timing(g, cfg.Bandwidth)
	if err != nil {
		return nil, nil, nil, err
	}
	as, err := alloc.RoundRobin(g, cfg.Topology)
	if err != nil {
		return nil, nil, nil, err
	}
	workloadCache.Store(key, &workloadEntry{g: g, tm: tm, as: as})
	return g, tm, as, nil
}

// UtilizationPoint is one Fig. 5/6 sample: peak utilization under
// LSD-to-MSD routing and after AssignPaths.
type UtilizationPoint struct {
	Load  float64
	LSD   float64
	Final float64
}

// UtilizationSeries is one curve pair of Fig. 5 or 6.
type UtilizationSeries struct {
	Config string
	Points []UtilizationPoint
}

// UtilizationSweep reproduces one panel of Fig. 5/6: the minimum peak
// utilization reached by AssignPaths versus the LSD-to-MSD baseline
// across the twelve load points. ctx cancels the fan-out: no new load
// point starts after cancellation and the context error is returned.
func UtilizationSweep(ctx context.Context, c Config) (*UtilizationSeries, error) {
	cfg := c.withDefaults()
	g, tm, as, err := workload(cfg)
	if err != nil {
		return nil, err
	}
	pts := Grid(tm.TauC())
	points := make([]UtilizationPoint, len(pts))
	// One solver serves all twelve load points, so path candidates and
	// the LSD baseline are built once per sweep instead of per point.
	solver := schedule.NewSolver(schedule.Problem{
		Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: as,
	})
	sweep := cfg.Trace.Start(SpanUtilizationSweep, trace.String("config", cfg.Name))
	defer sweep.End()
	spans := pointSpans(sweep, pts)
	// The points are independent, so they run concurrently on cfg.Procs
	// workers; each writes its ordered result slot and keeps the serial
	// per-point seed, making the output identical to a serial run.
	err = parallel.ForEach(ctx, len(pts), parallel.Workers(cfg.Procs), func(i int) error {
		lp := pts[i]
		res, err := solver.Solve(ctx, lp.TauIn, schedule.Options{Seed: cfg.Seed, Trace: spans[i]})
		spans[i].End()
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f: %w", cfg.Name, lp.Load, err)
		}
		points[i] = UtilizationPoint{Load: lp.Load, LSD: res.PeakLSD, Final: res.Peak}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &UtilizationSeries{Config: cfg.Name, Points: points}, nil
}

// PerfPoint is one Fig. 7-10 sample comparing wormhole routing and
// scheduled routing at a load point.
type PerfPoint struct {
	Load  float64
	TauIn float64

	// Wormhole routing measurements.
	WRThroughput metrics.Spike
	WRLatency    metrics.Spike
	WROI         bool
	WRDeadlock   bool

	// Scheduled routing outcome.
	SRFeasible   bool
	SRStage      schedule.Stage
	SRPeak       float64
	SRThroughput metrics.Spike
	SRLatency    metrics.Spike
}

// PerfSeries is one panel of Figs. 7-10.
type PerfSeries struct {
	Config       string
	CriticalPath float64
	Points       []PerfPoint
}

// PerfSweep reproduces one panel of Figs. 7-10: wormhole routing is
// simulated over many invocations (spikes mark output inconsistency)
// and scheduled routing is computed and executed at each of the twelve
// load points. ctx cancels the fan-out between load points.
func PerfSweep(ctx context.Context, c Config) (*PerfSeries, error) {
	cfg := c.withDefaults()
	g, tm, as, err := workload(cfg)
	if err != nil {
		return nil, err
	}
	cp, _ := g.CriticalPath(tm)
	pts := Grid(tm.TauC())
	points := make([]PerfPoint, len(pts))
	solver := schedule.NewSolver(schedule.Problem{
		Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: as,
	})
	sweep := cfg.Trace.Start(SpanPerfSweep, trace.String("config", cfg.Name))
	defer sweep.End()
	spans := pointSpans(sweep, pts)
	// Each load point runs its wormhole simulation and scheduled-routing
	// pipeline independently on the worker pool; ordered result slots
	// keep the series identical to a serial run.
	err = parallel.ForEach(ctx, len(pts), parallel.Workers(cfg.Procs), func(i int) error {
		lp := pts[i]
		defer spans[i].End()
		pt := PerfPoint{Load: lp.Load, TauIn: lp.TauIn}

		wh := spans[i].Start("wormhole")
		wres, err := wormhole.Simulate(wormhole.Config{
			Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: as,
			TauIn: lp.TauIn, Invocations: cfg.Invocations, Warmup: cfg.Warmup,
		})
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f: %w", cfg.Name, lp.Load, err)
		}
		if wres.Deadlocked {
			pt.WRDeadlock = true
		} else {
			ivs := metrics.Intervals(wres.OutputCompletions)
			pt.WRThroughput, err = metrics.NormalizedThroughput(lp.TauIn, ivs)
			if err != nil {
				return fmt.Errorf("experiments: %s load %.4f: WR throughput: %w", cfg.Name, lp.Load, err)
			}
			pt.WRLatency, err = metrics.NormalizedLatency(cp, wres.Latencies)
			if err != nil {
				return fmt.Errorf("experiments: %s load %.4f: WR latency: %w", cfg.Name, lp.Load, err)
			}
			pt.WROI = metrics.OutputInconsistent(lp.TauIn, ivs, 1e-6)
		}
		wh.End()

		sres, err := solver.Solve(ctx, lp.TauIn, schedule.Options{Seed: cfg.Seed, Trace: spans[i]})
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f: %w", cfg.Name, lp.Load, err)
		}
		pt.SRFeasible = sres.Feasible
		pt.SRStage = sres.FailStage
		pt.SRPeak = sres.Peak
		if sres.Feasible {
			ex := spans[i].Start("execute")
			exec, err := schedule.Execute(sres.Omega, g, tm, tm.TauC(), cfg.Invocations)
			if err != nil {
				return fmt.Errorf("experiments: %s load %.4f: SR execution: %w", cfg.Name, lp.Load, err)
			}
			ivs := metrics.Intervals(exec.OutputCompletions)
			pt.SRThroughput, err = metrics.NormalizedThroughput(lp.TauIn, ivs)
			if err != nil {
				return fmt.Errorf("experiments: %s load %.4f: SR throughput: %w", cfg.Name, lp.Load, err)
			}
			pt.SRLatency, err = metrics.NormalizedLatency(cp, exec.Latencies)
			if err != nil {
				return fmt.Errorf("experiments: %s load %.4f: SR latency: %w", cfg.Name, lp.Load, err)
			}
			ex.End()
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &PerfSeries{Config: cfg.Name, CriticalPath: cp, Points: points}, nil
}

// StandardConfigs returns the named configuration for each 64-node
// network the paper evaluates.
func StandardConfigs() (map[string]Config, error) {
	cube, err := topology.NewHypercube(6)
	if err != nil {
		return nil, err
	}
	ghc, err := topology.NewGHC(4, 4, 4)
	if err != nil {
		return nil, err
	}
	t88, err := topology.NewTorus(8, 8)
	if err != nil {
		return nil, err
	}
	t444, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		return nil, err
	}
	mk := func(name string, top *topology.Topology, bw float64) Config {
		return Config{Name: name, Topology: top, Bandwidth: bw, Seed: 1}
	}
	return map[string]Config{
		"6cube-b64":     mk("binary 6-cube, B=64 bytes/µs", cube, 64),
		"6cube-b128":    mk("binary 6-cube, B=128 bytes/µs", cube, 128),
		"ghc444-b64":    mk("GHC(4,4,4), B=64 bytes/µs", ghc, 64),
		"ghc444-b128":   mk("GHC(4,4,4), B=128 bytes/µs", ghc, 128),
		"torus88-b64":   mk("8x8 torus, B=64 bytes/µs", t88, 64),
		"torus88-b128":  mk("8x8 torus, B=128 bytes/µs", t88, 128),
		"torus444-b64":  mk("4x4x4 torus, B=64 bytes/µs", t444, 64),
		"torus444-b128": mk("4x4x4 torus, B=128 bytes/µs", t444, 128),
	}, nil
}

// Figure identifies the configurations behind each paper figure.
func Figure(id int) ([]string, bool) {
	figs := map[int][]string{
		5:  {"6cube-b64", "ghc444-b64"},
		6:  {"torus88-b64", "torus444-b64"},
		7:  {"6cube-b64", "6cube-b128"},
		8:  {"ghc444-b64", "ghc444-b128"},
		9:  {"torus88-b128"},
		10: {"torus444-b128"},
	}
	keys, ok := figs[id]
	return keys, ok
}

// IsUtilizationFigure reports whether the figure plots utilization
// (Figs. 5/6) rather than throughput/latency (Figs. 7-10).
func IsUtilizationFigure(id int) bool { return id == 5 || id == 6 }

// WriteUtilization renders a Fig. 5/6 panel as the text table the paper
// plots.
func WriteUtilization(w io.Writer, s *UtilizationSeries) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Config); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %-12s %-12s\n", "load", "U(LSD-MSD)", "U(final)"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%-10.4f %-12.4f %-12.4f\n", p.Load, p.LSD, p.Final); err != nil {
			return err
		}
	}
	return nil
}

// WritePerf renders a Fig. 7-10 panel: one row per load point with the
// wormhole spike triples (min/mid/max) and the scheduled-routing
// outcome.
func WritePerf(w io.Writer, s *PerfSeries) error {
	if _, err := fmt.Fprintf(w, "# %s (critical path %.1f µs)\n", s.Config, s.CriticalPath); err != nil {
		return err
	}
	header := fmt.Sprintf("%-8s %-24s %-24s %-4s | %-10s %-8s %-8s",
		"load", "WR thr min/mid/max", "WR lat min/mid/max", "OI", "SR", "SR thr", "SR lat")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, p := range s.Points {
		var wrThr, wrLat, oi string
		if p.WRDeadlock {
			wrThr, wrLat, oi = "deadlock", "deadlock", "-"
		} else {
			wrThr = p.WRThroughput.String()
			wrLat = p.WRLatency.String()
			oi = map[bool]string{true: "yes", false: "no"}[p.WROI]
		}
		sr := "feasible"
		srThr, srLat := "-", "-"
		if !p.SRFeasible {
			sr = failTag(p.SRStage)
		} else {
			srThr = fmt.Sprintf("%.4g", p.SRThroughput.Mid)
			srLat = fmt.Sprintf("%.4g", p.SRLatency.Mid)
		}
		if _, err := fmt.Fprintf(w, "%-8.4f %-24s %-24s %-4s | %-10s %-8s %-8s\n",
			p.Load, wrThr, wrLat, oi, sr, srThr, srLat); err != nil {
			return err
		}
	}
	return nil
}

// WriteUtilizationCSV renders a Fig. 5/6 panel as CSV for external
// plotting.
func WriteUtilizationCSV(w io.Writer, s *UtilizationSeries) error {
	if _, err := fmt.Fprintf(w, "config,load,u_lsd,u_final\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%q,%.6f,%.6f,%.6f\n", s.Config, p.Load, p.LSD, p.Final); err != nil {
			return err
		}
	}
	return nil
}

// WritePerfCSV renders a Fig. 7-10 panel as CSV: one row per load point
// with the wormhole spikes and the scheduled-routing outcome.
func WritePerfCSV(w io.Writer, s *PerfSeries) error {
	if _, err := fmt.Fprintf(w, "config,load,wr_thr_min,wr_thr_mid,wr_thr_max,wr_lat_min,wr_lat_mid,wr_lat_max,wr_oi,wr_deadlock,sr_stage,sr_peak,sr_thr,sr_lat\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		srThr, srLat := math.NaN(), math.NaN()
		if p.SRFeasible {
			srThr, srLat = p.SRThroughput.Mid, p.SRLatency.Mid
		}
		if _, err := fmt.Fprintf(w, "%q,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%t,%t,%q,%.6f,%.6f,%.6f\n",
			s.Config, p.Load,
			p.WRThroughput.Min, p.WRThroughput.Mid, p.WRThroughput.Max,
			p.WRLatency.Min, p.WRLatency.Mid, p.WRLatency.Max,
			p.WROI, p.WRDeadlock, p.SRStage.String(), p.SRPeak, srThr, srLat); err != nil {
			return err
		}
	}
	return nil
}

func failTag(s schedule.Stage) string {
	switch s {
	case schedule.StageUtilization:
		return "U>1"
	case schedule.StageAllocation:
		return "alloc-fail"
	case schedule.StageIntervalSchedule:
		return "sched-fail"
	default:
		return strings.ReplaceAll(s.String(), " ", "-")
	}
}
