package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"schedroute/internal/alloc"
	"schedroute/internal/parallel"
	"schedroute/internal/schedule"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
)

// Tenant survivability: the two-tenant variant of the single-link
// fault sweep. A bystander tenant is admitted first at a fixed light
// load, then a victim tenant is admitted at each grid load against the
// residual bandwidth. Faults strike only links the victim's paths use
// exclusively, so every repair the ladder performs happens inside the
// victim's reservation — and the sweep checks, per scenario, that the
// bystander's Ω stayed byte-identical through the victim's whole
// fault-repair cycle. This is the co-scheduling isolation claim of the
// admission design measured end to end, not just asserted in unit
// tests.
//
// The victim runs the same DVB application placed half a machine away
// (every task's node shifted by N/2). Identical placements cannot
// co-schedule: a distance-1 message has exactly one path — its direct
// link — and the bystander's allocation pins its own direct links at
// share 1, so the victim's forced links must differ. The shift is an
// automorphism on the hypercube (XOR of the top address bit), making
// the victim's workload exactly isomorphic to the bystander's.

// Span names for the tenant sweep (nested under SpanPoint like the
// single-tenant sweep's fault spans).
const SpanTenantSweep = "tenant_survivability_sweep"

// TenantSurvivabilityPoint is one grid load point of the two-tenant
// sweep.
type TenantSurvivabilityPoint struct {
	Load  float64
	TauIn float64

	// VictimOutcome is the victim's admission rung at this load:
	// "reserved", "degraded-window", "degraded-rate", or "rejected".
	VictimOutcome string
	// VictimTauOut is the victim's granted output period (0 when
	// rejected); repairs measure their degradation against it.
	VictimTauOut float64

	// Scenarios is the number of victim-only single-link faults
	// evaluated (links the victim's paths use and the bystander's do
	// not). 0 when the victim was rejected or the path sets fully
	// overlap.
	Scenarios int
	// Per-outcome counts of the victim's repairs over the scenarios.
	Unaffected     int
	Incremental    int
	Recomputed     int
	DegradedWindow int
	DegradedRate   int
	Infeasible     int

	// WorstTauOutRatio is the worst repaired τout over the granted
	// VictimTauOut (1 unless some fault forced a further rate cut).
	WorstTauOutRatio float64

	// BystanderIntact counts scenarios where the bystander came through
	// the victim's fault untouched: repair outcome unaffected and Ω
	// byte-identical to its admitted schedule. The isolation invariant
	// holds exactly when BystanderIntact == Scenarios at every point.
	BystanderIntact int
}

// TenantSurvivabilitySeries is one config's tenant sweep.
type TenantSurvivabilitySeries struct {
	Config string
	// BystanderLoad is the fixed load the bystander was admitted at.
	BystanderLoad float64
	Points        []TenantSurvivabilityPoint
}

// omegaBytes canonicalizes an Ω for byte comparison.
func omegaBytes(om *schedule.Omega) ([]byte, error) {
	var buf bytes.Buffer
	if err := schedule.EncodeOmega(&buf, om); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TenantSurvivabilitySweep runs the two-tenant fault sweep. Each load
// point builds its own fabric (a fresh TenantSet): the bystander is
// admitted on the empty machine at the grid's lightest load, the victim
// against the residual at the point's load, and every victim-only link
// is failed, repaired through the set, and restored in turn. Points
// fan out on cfg.Procs workers; within a point the fault cycle is
// serial because it mutates the set's cumulative fault state.
func TenantSurvivabilitySweep(ctx context.Context, c Config) (*TenantSurvivabilitySeries, error) {
	cfg := c.withDefaults()
	g, tm, as, err := workload(cfg)
	if err != nil {
		return nil, err
	}
	pts := Grid(tm.TauC())
	bystanderTauIn := pts[len(pts)-1].TauIn // lightest grid load
	opts := schedule.Options{Seed: cfg.Seed}

	// The victim's placement: every task shifted N/2 nodes. Shifting all
	// tasks by one constant preserves one-task-per-node exclusivity.
	n := cfg.Topology.Nodes()
	vicAs := &alloc.Assignment{NodeOf: make([]topology.NodeID, len(as.NodeOf))}
	for t, nd := range as.NodeOf {
		vicAs.NodeOf[t] = topology.NodeID((int(nd) + n/2) % n)
	}

	problem := func(tauIn float64, a *alloc.Assignment) schedule.Problem {
		return schedule.Problem{
			Graph: g, Timing: tm, Topology: cfg.Topology, Assignment: a, TauIn: tauIn,
		}
	}
	sweep := cfg.Trace.Start(SpanTenantSweep, trace.String("config", cfg.Name))
	defer sweep.End()
	spans := pointSpans(sweep, pts)

	series := &TenantSurvivabilitySeries{
		Config:        cfg.Name,
		BystanderLoad: tm.TauC() / bystanderTauIn,
		Points:        make([]TenantSurvivabilityPoint, len(pts)),
	}
	err = parallel.ForEach(ctx, len(pts), parallel.Workers(cfg.Procs), func(pi int) error {
		defer spans[pi].End()
		pt := TenantSurvivabilityPoint{Load: pts[pi].Load, TauIn: pts[pi].TauIn, WorstTauOutRatio: 1}
		set := schedule.NewTenantSet(cfg.Topology)

		bys, err := set.Admit(ctx, schedule.Tenant{
			ID: "bystander", Priority: 1,
			Problem: problem(bystanderTauIn, as), Options: opts,
		}, spans[pi])
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f: bystander: %w", cfg.Name, pts[pi].Load, err)
		}
		if !bys.Admitted {
			return fmt.Errorf("experiments: %s load %.4f: bystander rejected on an empty machine: %s",
				cfg.Name, pts[pi].Load, bys.Reason)
		}
		baseline, err := omegaBytes(bys.Result.Omega)
		if err != nil {
			return err
		}

		vic, err := set.Admit(ctx, schedule.Tenant{
			ID: "victim", Priority: 1,
			Problem: problem(pts[pi].TauIn, vicAs), Options: opts,
		}, spans[pi])
		if err != nil {
			return fmt.Errorf("experiments: %s load %.4f: victim: %w", cfg.Name, pts[pi].Load, err)
		}
		pt.VictimOutcome = vic.Outcome.String()
		pt.VictimTauOut = vic.TauOut
		if !vic.Admitted {
			series.Points[pi] = pt
			return nil
		}

		// Victim-only links: used by the victim's paths, untouched by
		// the bystander's — a fault there is a fault in one tenant's
		// slice of the machine.
		bysRes := set.Lookup("bystander").Reserve
		vicRes := set.Lookup("victim").Reserve
		var links []int
		for j := range vicRes {
			if vicRes[j] > 0 && bysRes[j] == 0 {
				links = append(links, j)
			}
		}
		if cfg.MaxFaults > 0 && cfg.MaxFaults < len(links) {
			links = links[:cfg.MaxFaults]
		}
		pt.Scenarios = len(links)

		for _, l := range links {
			fsp := spans[pi].Start(SpanFault, trace.Int("link", l))
			set.FailLink(topology.LinkID(l))
			reps, err := set.Repair(ctx, fsp)
			if err != nil {
				fsp.End()
				return fmt.Errorf("experiments: %s load %.4f link %d: %w", cfg.Name, pts[pi].Load, l, err)
			}
			intact := false
			for _, tr := range reps {
				switch tr.TenantID {
				case "victim":
					switch tr.Report.Outcome {
					case schedule.RepairUnaffected:
						pt.Unaffected++
					case schedule.RepairIncremental:
						pt.Incremental++
					case schedule.RepairRecomputed:
						pt.Recomputed++
					case schedule.RepairDegradedWindow:
						pt.DegradedWindow++
					case schedule.RepairDegradedRate:
						pt.DegradedRate++
					case schedule.RepairInfeasible:
						pt.Infeasible++
						if cfg.StrictRepair {
							fsp.End()
							return tr.Report.Err()
						}
					}
					if tr.Report.Outcome != schedule.RepairInfeasible {
						if ratio := tr.Report.TauOut / vic.TauOut; ratio > pt.WorstTauOutRatio {
							pt.WorstTauOutRatio = ratio
						}
					}
				case "bystander":
					if tr.Report.Outcome == schedule.RepairUnaffected && tr.Report.Result != nil {
						got, err := omegaBytes(tr.Report.Result.Omega)
						if err != nil {
							fsp.End()
							return err
						}
						intact = bytes.Equal(got, baseline)
					}
				}
			}
			if intact {
				pt.BystanderIntact++
			}
			// Restore the machine for the next scenario; the sessions'
			// fault-state memos make the round trip cheap.
			set.RepairLink(topology.LinkID(l))
			if _, err := set.Repair(ctx, fsp); err != nil {
				fsp.End()
				return err
			}
			fsp.End()
		}
		series.Points[pi] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// WriteTenantSurvivability renders the tenant sweep as a text table.
func WriteTenantSurvivability(w io.Writer, s *TenantSurvivabilitySeries) error {
	if _, err := fmt.Fprintf(w, "# tenant survivability (faults on victim-only links): %s, bystander at load %.2f\n",
		s.Config, s.BystanderLoad); err != nil {
		return err
	}
	header := fmt.Sprintf("%-8s %-16s %-6s %-6s %-6s %-7s %-6s %-6s %-7s %-9s %-10s",
		"load", "victim", "n", "unaff", "incr", "recomp", "degW", "degR", "infeas", "tout/tin", "bystander")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, p := range s.Points {
		if p.Scenarios == 0 {
			if _, err := fmt.Fprintf(w, "%-8.4f %-16s %-6d\n", p.Load, p.VictimOutcome, 0); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-8.4f %-16s %-6d %-6d %-6d %-7d %-6d %-6d %-7d %-9.4f %d/%d\n",
			p.Load, p.VictimOutcome, p.Scenarios, p.Unaffected, p.Incremental, p.Recomputed,
			p.DegradedWindow, p.DegradedRate, p.Infeasible,
			p.WorstTauOutRatio, p.BystanderIntact, p.Scenarios); err != nil {
			return err
		}
	}
	return nil
}

// WriteTenantSurvivabilityCSV renders the tenant sweep as CSV.
func WriteTenantSurvivabilityCSV(w io.Writer, s *TenantSurvivabilitySeries) error {
	if _, err := fmt.Fprintf(w, "config,load,victim_outcome,victim_tau_out,scenarios,unaffected,incremental,recomputed,degraded_window,degraded_rate,infeasible,worst_tauout_ratio,bystander_intact\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%q,%.6f,%q,%.6f,%d,%d,%d,%d,%d,%d,%d,%.6f,%d\n",
			s.Config, p.Load, p.VictimOutcome, p.VictimTauOut, p.Scenarios,
			p.Unaffected, p.Incremental, p.Recomputed, p.DegradedWindow, p.DegradedRate, p.Infeasible,
			p.WorstTauOutRatio, p.BystanderIntact); err != nil {
			return err
		}
	}
	return nil
}
