package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"schedroute/internal/schedule"
	"schedroute/pkg/schedroute"
)

// TestBatchScheduleOneStructureBuild is the batch acceptance test: 64
// same-structure items (distinct periods) cost exactly one structure
// build and one τin-independent derivation, asserted through the
// solver cache the same way the warm-repeat test does.
func TestBatchScheduleOneStructureBuild(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	items := make([]schedroute.ScheduleRequest, 64)
	for i := range items {
		items[i] = schedroute.ScheduleRequest{Problem: testProblem(150 + float64(i))}
	}
	code, body := postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var out schedroute.BatchScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(out.Items), len(items))
	}
	for i, it := range out.Items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d", i, it.Index)
		}
		if it.Error != "" || it.Result == nil {
			t.Fatalf("item %d failed: %s (%s)", i, it.Error, it.Kind)
		}
		if it.Result.TauIn != 150+float64(i) {
			t.Errorf("item %d solved at τin=%g, want %g", i, it.Result.TauIn, 150+float64(i))
		}
	}

	if _, misses, _, _ := srv.cache.stats(); misses != 1 {
		t.Errorf("batch built %d structures, want 1", misses)
	}
	ent, _ := srv.cache.getOrCreate(testProblem(0).StructureKey(), func() (*schedroute.Built, error) {
		t.Fatal("structure should already be cached")
		return nil, nil
	})
	st := ent.solver.CacheStats()
	if st.BaselineBuilds != 1 || st.CandidateBuilds != 1 || st.ValidateBuilds != 1 {
		t.Errorf("batch re-derived structure: %+v", st)
	}
	if got := srv.metrics.batchItems.Load(); got != 64 {
		t.Errorf("batch_items = %d, want 64", got)
	}
}

// TestBatchIdenticalItemsShareOneSolve pins the in-batch grouping:
// fully identical items share a single solve and a single result
// object, not just a structure.
func TestBatchIdenticalItemsShareOneSolve(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	items := make([]schedroute.ScheduleRequest, 8)
	for i := range items {
		items[i] = schedroute.ScheduleRequest{Problem: testProblem(150)}
	}
	code, body := postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	if runs := srv.metrics.SolveRuns(); runs != 1 {
		t.Errorf("8 identical batch items ran %d solves, want 1", runs)
	}
}

// TestBatchPerItemErrorIsolation pins that a malformed item reports
// its errkind label in its own slot while every sibling still solves.
func TestBatchPerItemErrorIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	items := []schedroute.ScheduleRequest{
		{Problem: testProblem(150)},
		{Problem: schedroute.Problem{TFG: "dvb:4", Topology: "bogus:9"}},
		{Problem: testProblem(200)},
	}
	code, body := postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var out schedroute.BatchScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Items[1].Kind != "bad_input" || out.Items[1].Error == "" || out.Items[1].Result != nil {
		t.Errorf("bad item: got kind=%q err=%q result=%v, want bad_input error", out.Items[1].Kind, out.Items[1].Error, out.Items[1].Result)
	}
	for _, i := range []int{0, 2} {
		if out.Items[i].Result == nil || out.Items[i].Error != "" {
			t.Errorf("item %d should have solved: %s (%s)", i, out.Items[i].Error, out.Items[i].Kind)
		}
	}
}

// TestBatchValidation covers the request-level guards: empty batches
// and unknown schema versions are whole-request errors.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{})
	if code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d: %s", code, body)
	}
	code, body = postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{
		SchemaVersion: 99,
		Items:         []schedroute.ScheduleRequest{{Problem: testProblem(150)}},
	})
	var er schedroute.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusBadRequest || er.Kind != "unknown_schema_version" {
		t.Errorf("schema 99: status %d kind %q, want 400 unknown_schema_version", code, er.Kind)
	}
}

// waitForFile polls until path exists (the warm-start persist is
// write-behind, off the request path).
func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot file %s never appeared", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWarmStartDiskStore is the restart acceptance test at library
// level: a first server persists its structure snapshot write-behind;
// a second server sharing the directory hydrates from it and serves
// its first solve with zero structure builds, byte-identical to the
// first server's answer.
func TestWarmStartDiskStore(t *testing.T) {
	dir := t.TempDir()
	key := testProblem(0).StructureKey()
	snapPath := filepath.Join(dir, snapshotID(key)+".json")

	srvA, tsA := newTestServer(t, Config{WarmStartDir: dir})
	codeA, bodyA := postJSON(t, tsA, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150), IncludeOmega: true})
	if codeA != http.StatusOK {
		t.Fatalf("server A: status %d: %s", codeA, bodyA)
	}
	if srvA.metrics.warmstartMisses.Load() != 1 || srvA.metrics.warmstartHits.Load() != 0 {
		t.Errorf("server A warmstart hits=%d misses=%d, want 0/1",
			srvA.metrics.warmstartHits.Load(), srvA.metrics.warmstartMisses.Load())
	}
	waitForFile(t, snapPath)

	srvB, tsB := newTestServer(t, Config{WarmStartDir: dir})
	codeB, bodyB := postJSON(t, tsB, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150), IncludeOmega: true})
	if codeB != http.StatusOK {
		t.Fatalf("server B: status %d: %s", codeB, bodyB)
	}
	if string(bodyA) != string(bodyB) {
		t.Error("hydrated replica's response differs from the cold one")
	}
	if srvB.metrics.warmstartHits.Load() != 1 {
		t.Errorf("server B warmstart hits = %d, want 1", srvB.metrics.warmstartHits.Load())
	}
	tot := srvB.cache.solverBuildTotals()
	if tot.BaselineBuilds != 0 || tot.CandidateBuilds != 0 {
		t.Errorf("hydrated replica derived structure: %+v", tot)
	}
}

// TestSnapshotEndpoint covers the HTTP hydration path: a solved
// structure is fetchable by its snapshot id and decodes into a working
// solver; an unknown id is 404 not_found.
func TestSnapshotEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProblem(150)
	if code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: p}); code != http.StatusOK {
		t.Fatalf("seed: status %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/v1/snapshot/" + snapshotID(p.StructureKey()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot fetch: status %d", resp.StatusCode)
	}
	built, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := schedule.DecodeSolverSnapshot(resp.Body, built.ScheduleProblem(), p.StructureKey())
	if err != nil {
		t.Fatalf("fetched snapshot does not decode: %v", err)
	}
	res, err := sol.Solve(t.Context(), 150, schedule.Options{})
	if err != nil || !res.Feasible {
		t.Fatalf("hydrated solver solve: feasible=%v err=%v", res != nil && res.Feasible, err)
	}
	if st := sol.CacheStats(); st.BaselineBuilds != 0 || st.CandidateBuilds != 0 {
		t.Errorf("HTTP-hydrated solver derived structure: %+v", st)
	}

	resp2, err := http.Get(ts.URL + "/v1/snapshot/v1-00000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var er schedroute.ErrorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound || er.Kind != "not_found" {
		t.Errorf("unknown id: status %d kind %q, want 404 not_found", resp2.StatusCode, er.Kind)
	}
}

// fleetPair starts two servers that know each other as peers, with A's
// URL fixed before construction (the ring needs final URLs in Config).
func fleetPair(t *testing.T, policy string) (srvA, srvB *Server, urlA, urlB string) {
	t.Helper()
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA = "http://" + la.Addr().String()
	urlB = "http://" + lb.Addr().String()
	peers := []string{urlA, urlB}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srvA = New(Config{Peers: peers, SelfURL: urlA, ShardPolicy: policy, Logger: quiet})
	srvB = New(Config{Peers: peers, SelfURL: urlB, ShardPolicy: policy, Logger: quiet})
	tsA := &httptest.Server{Listener: la, Config: &http.Server{Handler: srvA.Handler()}}
	tsB := &httptest.Server{Listener: lb, Config: &http.Server{Handler: srvB.Handler()}}
	tsA.Start()
	tsB.Start()
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	return srvA, srvB, urlA, urlB
}

// problemOwnedBy scans periods until it finds a problem whose
// StructureKey the ring assigns to wantOwner. τin does not vary the
// StructureKey, so the scan varies the allocator seed instead.
func problemOwnedBy(t *testing.T, ring *shardRing, wantOwner string) schedroute.Problem {
	t.Helper()
	for seed := int64(0); seed < 64; seed++ {
		p := testProblem(150)
		p.Allocator = "random"
		p.AllocSeed = seed
		if ring.owner(p.StructureKey()) == wantOwner {
			return p
		}
	}
	t.Fatal("no structure key hashed to the wanted owner in 64 tries")
	return schedroute.Problem{}
}

// TestShardProxy pins the proxy policy: a request for a structure the
// other replica owns is forwarded there and answered through the
// proxying replica byte-for-byte, leaving the proxier's cache cold.
func TestShardProxy(t *testing.T) {
	srvA, srvB, _, urlB := fleetPair(t, shardPolicyProxy)
	p := problemOwnedBy(t, srvA.ring, urlB)

	b, _ := json.Marshal(schedroute.ScheduleRequest{Problem: p})
	resp, err := http.Post(srvA.ring.self+"/v1/schedule", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied request: status %d: %s", resp.StatusCode, body)
	}
	var out schedroute.ScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Errorf("proxied solve infeasible at %s", out.FailStage)
	}
	if got := srvA.metrics.shardProxied.Load(); got != 1 {
		t.Errorf("A proxied %d requests, want 1", got)
	}
	if _, _, _, size := srvA.cache.stats(); size != 0 {
		t.Errorf("proxying replica cached %d structures, want 0", size)
	}
	if _, misses, _, _ := srvB.cache.stats(); misses != 1 {
		t.Errorf("owner built %d structures, want 1", misses)
	}
}

// TestShardServeLocal pins the serve policy: the misrouted request is
// handled locally and recorded as a shard-local miss, and the owner is
// consulted for a snapshot (a miss too — it never solved).
func TestShardServeLocal(t *testing.T) {
	srvA, srvB, _, urlB := fleetPair(t, shardPolicyServe)
	p := problemOwnedBy(t, srvA.ring, urlB)

	b, _ := json.Marshal(schedroute.ScheduleRequest{Problem: p})
	resp, err := http.Post(srvA.ring.self+"/v1/schedule", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serve-local request: status %d: %s", resp.StatusCode, body)
	}
	if got := srvA.metrics.shardLocalMisses.Load(); got != 1 {
		t.Errorf("A recorded %d local misses, want 1", got)
	}
	if got := srvA.metrics.shardProxied.Load(); got != 0 {
		t.Errorf("A proxied %d requests under serve policy, want 0", got)
	}
	if _, misses, _, _ := srvA.cache.stats(); misses != 1 {
		t.Errorf("A built %d structures, want 1", misses)
	}
	if _, misses, _, _ := srvB.cache.stats(); misses != 0 {
		t.Errorf("owner built %d structures without receiving a request, want 0", misses)
	}
}

// TestShardPeerHydration pins the peer fetch path: once the owner has
// solved a structure, a serve-policy peer hydrates it over
// /v1/snapshot/{id} instead of deriving cold.
func TestShardPeerHydration(t *testing.T) {
	srvA, _, _, urlB := fleetPair(t, shardPolicyServe)
	p := problemOwnedBy(t, srvA.ring, urlB)
	b, _ := json.Marshal(schedroute.ScheduleRequest{Problem: p})

	// The owner solves first, so its snapshot exists.
	resp, err := http.Post(urlB+"/v1/schedule", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner solve: status %d", resp.StatusCode)
	}

	resp, err = http.Post(srvA.ring.self+"/v1/schedule", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-hydrated solve: status %d", resp.StatusCode)
	}
	if got := srvA.metrics.warmstartHits.Load(); got != 1 {
		t.Errorf("A warmstart hits = %d, want 1 (peer snapshot)", got)
	}
	tot := srvA.cache.solverBuildTotals()
	if tot.BaselineBuilds != 0 || tot.CandidateBuilds != 0 {
		t.Errorf("peer-hydrated replica derived structure: %+v", tot)
	}
}

// TestWarmStoreEviction bounds the disk store: beyond max files the
// oldest-by-mtime snapshots are removed.
func TestWarmStoreEviction(t *testing.T) {
	dir := t.TempDir()
	ws := newWarmStore(dir, 2)
	built, err := testProblem(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := schedule.NewSolver(built.ScheduleProblem())
	old := time.Now().Add(-time.Hour)
	for i, key := range []string{"key-a", "key-b", "key-c"} {
		if err := ws.save(key, sol); err != nil {
			t.Fatal(err)
		}
		// Age the files artificially: mtime is the eviction clock.
		os.Chtimes(ws.path(snapshotID(key)), old, old.Add(time.Duration(i)*time.Minute))
	}
	if err := ws.save("key-d", sol); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("store holds %d files after eviction, want 2: %v", len(names), names)
	}
	for _, gone := range []string{"key-a", "key-b"} {
		if _, err := os.Stat(ws.path(snapshotID(gone))); err == nil {
			t.Errorf("oldest snapshot %s survived eviction", gone)
		}
	}
}
