package service

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"schedroute/internal/schedule"
)

// snapshotID is the URL- and filename-safe identity of a solver
// snapshot: the snapshot schema version plus the first 16 bytes of the
// StructureKey's SHA-256, hex-encoded. The raw StructureKey contains
// '|', '=', and possibly filesystem paths, so it never appears in a
// URL path or on disk directly; versioning the id means a schema bump
// can never hydrate from a stale-format file.
func snapshotID(structureKey string) string {
	sum := sha256.Sum256([]byte(structureKey))
	return fmt.Sprintf("v%d-%x", schedule.SolverSnapshotSchemaVersion, sum[:16])
}

// warmStore is the disk-backed warm-start store: one snapshot file per
// structure, named by snapshotID, written behind the first build and
// read before any cold derivation. Multiple replicas may share the
// directory — writes go through temp-file + rename, so a reader never
// observes a half-written snapshot.
type warmStore struct {
	dir string
	max int
	mu  sync.Mutex // serializes save/evict directory scans
}

func newWarmStore(dir string, max int) *warmStore {
	if max < 1 {
		max = 256
	}
	return &warmStore{dir: dir, max: max}
}

func (ws *warmStore) path(id string) string {
	return filepath.Join(ws.dir, id+".json")
}

// load hydrates a solver for p from the on-disk snapshot keyed by
// structureKey. A missing file is a plain miss (nil, nil); a file that
// fails to decode is returned as an error so the caller can log it and
// fall back to cold derivation. A loaded file gets its mtime bumped so
// eviction treats it as recently used.
func (ws *warmStore) load(structureKey string, p schedule.Problem) (*schedule.Solver, error) {
	fp := ws.path(snapshotID(structureKey))
	f, err := os.Open(fp)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := schedule.DecodeSolverSnapshot(f, p, structureKey)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	os.Chtimes(fp, now, now)
	return s, nil
}

// save persists the solver's structure state: encode into a temp file
// in the same directory, rename into place, then drop the
// oldest-by-mtime files beyond max.
func (ws *warmStore) save(structureKey string, s *schedule.Solver) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := os.MkdirAll(ws.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ws.dir, ".snap-*")
	if err != nil {
		return err
	}
	if err := schedule.EncodeSolverSnapshot(tmp, s, structureKey); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), ws.path(snapshotID(structureKey))); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	ws.evictLocked()
	return nil
}

// evictLocked bounds the store at max snapshot files, removing the
// least recently used (oldest mtime — load refreshes it) first.
func (ws *warmStore) evictLocked() {
	ents, err := os.ReadDir(ws.dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  time.Time
	}
	var files []aged
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{e.Name(), info.ModTime()})
	}
	if len(files) <= ws.max {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files[:len(files)-ws.max] {
		os.Remove(filepath.Join(ws.dir, f.name))
	}
}
