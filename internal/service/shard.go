package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"

	"schedroute/internal/errkind"
)

// Shard policies for requests whose StructureKey hashes to another
// replica: proxy forwards them to the owner so its LRU stays warm for
// its slice of the keyspace; serve handles them locally and records a
// miss, for fleets that prefer an extra cold build over a hop.
const (
	shardPolicyProxy = "proxy"
	shardPolicyServe = "serve"
)

// forwardedHeader marks a request already routed once, so a fleet with
// a stale or disagreeing peer list degrades to serving locally instead
// of proxying in a loop.
const forwardedHeader = "X-Srschedd-Forwarded"

// shardRing assigns every StructureKey an owning replica by rendezvous
// (highest-random-weight) hashing: each replica scores the key against
// every peer and the highest score owns it. All replicas agree on
// ownership without coordination, and removing a peer remaps only the
// keys that peer owned.
type shardRing struct {
	peers []string
	self  string
}

func newShardRing(peers []string, self string) *shardRing {
	return &shardRing{peers: peers, self: self}
}

// mix64 is a murmur-style 64-bit finalizer. FNV alone is a poor
// rendezvous score: its last bytes (where keys that share a long
// prefix differ) get only one multiply, so the high bits that decide
// the peer comparison barely move and one peer can win nearly every
// key. The finalizer avalanches the sum so scores behave like
// independent draws per (peer, key) pair.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the peer whose (peer, key) hash scores highest.
func (r *shardRing) owner(structureKey string) string {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		h := fnv.New64a()
		io.WriteString(h, p)
		h.Write([]byte{0})
		io.WriteString(h, structureKey)
		if s := mix64(h.Sum64()); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// shardOwner decides routing for a request keyed by key: a non-empty
// return is the peer base URL the caller must proxy to. Serving
// locally — because sharding is off, the key is ours, the request was
// already forwarded once, or the policy is serve — returns "", with a
// local miss recorded when the ring says someone else owns the key.
func (s *Server) shardOwner(r *http.Request, key string) string {
	if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
		return ""
	}
	owner := s.ring.owner(key)
	if owner == "" || owner == s.ring.self {
		return ""
	}
	if s.cfg.ShardPolicy == shardPolicyServe {
		s.metrics.shardLocalMisses.Add(1)
		return ""
	}
	return owner
}

// proxy re-sends the decoded request to the owning peer and relays the
// response verbatim — status, content type, and body — so the client
// cannot tell which replica solved. The decoded req is re-marshaled
// rather than replaying raw bytes: the body reader is already spent,
// and our own wire types round-trip exactly.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, owner string, req any) {
	body, err := json.Marshal(req)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	url := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, "1")
	resp, err := s.httpc.Do(preq)
	if err != nil {
		s.writeError(w, errkind.Mark(fmt.Errorf("shard: proxy to %s: %w", owner, err), errkind.ErrUnavailable), nil)
		return
	}
	defer resp.Body.Close()
	s.metrics.shardProxied.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
