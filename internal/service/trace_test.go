package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"schedroute/internal/schedule"
	"schedroute/pkg/schedroute"
)

// stripTrace removes the trailing "trace" field from a traced response
// body. The Trace field is declared last on ScheduleResult and
// RepairResult exactly so that a traced body is the untraced body plus
// one trailing field — which is what makes this textual strip sound.
func stripTrace(t *testing.T, body []byte) []byte {
	t.Helper()
	i := bytes.LastIndex(body, []byte(`,"trace":`))
	if i < 0 {
		t.Fatalf("response has no trace field: %.200s", body)
	}
	out := append([]byte{}, body[:i]...)
	return append(out, '}', '\n')
}

// TestScheduleDebugTraceGolden is the ?debug=trace acceptance test: on
// the eight standard configurations, the traced response must be
// byte-identical to the untraced one once the trace field is stripped,
// and the attached tree must contain the service stages and each SR
// pipeline stage exactly once.
func TestScheduleDebugTraceGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topos := []string{"cube:6", "ghc:4,4,4", "torus:8,8", "torus:4,4,4"}
	bands := []float64{64, 128}
	for _, topo := range topos {
		for _, bw := range bands {
			req := schedroute.ScheduleRequest{
				Problem:      schedroute.Problem{TFG: "dvb:4", Topology: topo, Bandwidth: bw, TauIn: 150},
				IncludeOmega: true,
			}
			code, plain := postJSON(t, ts, "/v1/schedule", req)
			if code != http.StatusOK {
				t.Fatalf("%s B=%g: status %d: %s", topo, bw, code, plain)
			}
			code, traced := postJSON(t, ts, "/v1/schedule?debug=trace", req)
			if code != http.StatusOK {
				t.Fatalf("%s B=%g traced: status %d: %s", topo, bw, code, traced)
			}
			if got := stripTrace(t, traced); !bytes.Equal(got, plain) {
				t.Errorf("%s B=%g: traced response differs beyond the trace field\ntraced:  %.200s\nplain:   %.200s",
					topo, bw, got, plain)
			}

			var out schedroute.ScheduleResult
			if err := json.Unmarshal(traced, &out); err != nil {
				t.Fatal(err)
			}
			if out.Trace == nil || out.Trace.Root == nil {
				t.Fatalf("%s B=%g: traced response has no trace envelope", topo, bw)
			}
			if out.Trace.SchemaVersion != schedroute.SchemaVersion {
				t.Errorf("trace schema_version %d, want %d", out.Trace.SchemaVersion, schedroute.SchemaVersion)
			}
			root := out.Trace.Root
			if root.Name != SpanRequest {
				t.Errorf("trace root %q, want %q", root.Name, SpanRequest)
			}
			for _, name := range []string{SpanQueueWait, SpanStructure, schedule.SpanSolve} {
				if n := root.Count(name); n != 1 {
					t.Errorf("%s B=%g: span %q appears %d times, want 1", topo, bw, name, n)
				}
			}
			// An infeasible solve (a valid 200 result) stops at its
			// fail stage, so only feasible runs must show the full SR
			// pipeline. Multi-attempt solves repeat retried stages.
			if !out.Feasible {
				continue
			}
			for _, stage := range schedule.PipelineStages {
				if n := root.Count(stage); n < 1 {
					t.Errorf("%s B=%g: pipeline stage %q missing from trace", topo, bw, stage)
				}
			}
		}
	}
}

func TestRepairDebugTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := schedroute.RepairRequest{
		Problem: testProblem(150),
		Fault:   schedroute.FaultSpec{Links: []string{"0-1"}},
	}
	code, plain := postJSON(t, ts, "/v1/repair", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, plain)
	}
	code, traced := postJSON(t, ts, "/v1/repair?debug=trace", req)
	if code != http.StatusOK {
		t.Fatalf("traced: status %d: %s", code, traced)
	}
	if got := stripTrace(t, traced); !bytes.Equal(got, plain) {
		t.Errorf("traced repair differs beyond the trace field\ntraced: %.200s\nplain:  %.200s", got, plain)
	}
	var out schedroute.RepairResult
	if err := json.Unmarshal(traced, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Root == nil {
		t.Fatal("traced repair has no trace envelope")
	}
	root := out.Trace.Root
	if root.Name != SpanRequest {
		t.Errorf("trace root %q, want %q", root.Name, SpanRequest)
	}
	// The request tree holds the base solve (adopted from the flight)
	// and the repair ladder recorded directly under the root.
	if n := root.Count(schedule.SpanSolve); n < 1 {
		t.Errorf("repair trace has no solve span")
	}
	if n := root.Count(schedule.SpanRepair); n != 1 {
		t.Errorf("span %q appears %d times, want 1", schedule.SpanRepair, n)
	}
}

// TestScheduleUntracedHasNoTraceField pins the compatibility half of
// the redesign: without ?debug=trace the response must not contain a
// trace field at all, so PR 4 clients see the exact same bytes.
func TestScheduleUntracedHasNoTraceField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("untraced response leaks a trace field: %.200s", body)
	}
}

func TestScheduleStatsOverTheWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The raw JSON wire name is "stats": send it textually so the test
	// breaks if the field tag drifts.
	body := `{"problem":{"tfg":"dvb:4","topology":"cube:6","bandwidth":64,"tau_in":150},"options":{"stats":true}}`
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out schedroute.ScheduleResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats == nil || out.Stats.Attempts < 1 {
		t.Fatalf("stats=true response missing solve counters: %+v", out.Stats)
	}
	total := out.Stats.WindowsNS + out.Stats.AssignNS + out.Stats.AllocateNS + out.Stats.ScheduleNS + out.Stats.OmegaNS
	if total <= 0 {
		t.Errorf("stats=true response has zero stage times: %+v", out.Stats)
	}

	// Without the flag, the wall-clock fields stay zero (counters remain,
	// matching the PR 4 wire format).
	code, raw2 := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw2)
	}
	var plain schedroute.ScheduleResult
	if err := json.Unmarshal(raw2, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Stats == nil {
		t.Fatal("default response lost its stats counters")
	}
	if z := plain.Stats.WindowsNS + plain.Stats.AssignNS + plain.Stats.AllocateNS + plain.Stats.ScheduleNS + plain.Stats.OmegaNS; z != 0 {
		t.Errorf("default response carries stage times without stats=true: %+v", plain.Stats)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v schedroute.VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.SchemaVersion != schedroute.SchemaVersion {
		t.Errorf("schema_version %d, want %d", v.SchemaVersion, schedroute.SchemaVersion)
	}
	if v.ModuleVersion == "" || v.GoVersion == "" {
		t.Errorf("incomplete version info: %+v", v)
	}

	resp, err = http.Post(ts.URL+"/v1/version", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/version: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsStageHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`srschedd_solve_stage_duration_seconds_bucket{stage="assign",le="+Inf"} 1`,
		`srschedd_solve_stage_duration_seconds_count{stage="omega"} 1`,
		`srschedd_solve_stage_duration_seconds_sum{stage="schedule"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}
