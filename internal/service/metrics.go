package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"schedroute/internal/schedule"
)

// Metrics aggregates the service counters exported on /metrics in the
// Prometheus text exposition format. Everything is either atomic or
// guarded by mu; handlers update it on every request.
type Metrics struct {
	mu sync.Mutex
	// requests[endpoint][code] counts completed requests.
	requests map[string]map[int]int64
	// latSum/latCount accumulate request wall-clock per endpoint.
	latSum   map[string]time.Duration
	latCount map[string]int64
	// stage times accumulated from solver stats across all solve runs.
	stageNS map[string]int64
	// stageHist is the per-stage latency distribution over individual
	// solves (the totals above only show averages; the histogram shows
	// whether a slow stage is uniformly slow or has a long tail).
	stageHist map[string]*histogram

	solveRuns int64 // solver executions (post-coalescing)
	coalesced int64 // requests served by joining an in-flight solve
	queued    atomic.Int64

	// Fleet counters: snapshot hydration outcomes, batch volume, and
	// shard routing decisions.
	warmstartHits    atomic.Int64 // solver builds hydrated from a snapshot (disk or peer)
	warmstartMisses  atomic.Int64 // solver builds that derived cold with hydration enabled
	batchItems       atomic.Int64 // sub-requests processed through /v1/schedule:batch
	shardProxied     atomic.Int64 // requests forwarded to their owning shard
	shardLocalMisses atomic.Int64 // requests served locally though another shard owns them

	// Exploration counters: runs by mode ("grid" or "pareto"), points
	// reported (grid samples plus Pareto schedules evaluated), and
	// non-dominated points emitted on Pareto fronts.
	exploreRuns        map[string]int64 // by mode, guarded by mu
	explorePoints      atomic.Int64
	exploreFrontPoints atomic.Int64

	// Tenant counters: admission outcomes by ladder rung, evictions,
	// the live-tenant gauge, and per-tenant request volume (labelled by
	// endpoint and tenant id; the default tenant counts too, so the
	// tenant dimension is total).
	admissions      map[string]int64            // by outcome, guarded by mu
	tenantRequests  map[string]map[string]int64 // endpoint → tenant → count, guarded by mu
	tenantEvictions atomic.Int64
	tenantsGauge    atomic.Int64

	// Watch subscription counters. watchEventHist is the end-to-end
	// event→frame latency distribution (dequeue to frame appended).
	watchSubs      atomic.Int64 // live subscriptions (gauge)
	watchEvents    atomic.Int64 // events accepted into a queue
	watchFrames    atomic.Int64 // frames appended to replay rings
	watchDropped   atomic.Int64 // frames skipped coalescing slow consumers
	watchPanics    atomic.Int64 // recovered subscription panics
	watchEventHist histogram    // guarded by mu
}

// stageBuckets are the per-stage latency histogram upper bounds in
// seconds: decade buckets from 10µs (a warm cached stage) to 1s (a
// pathological solve), plus the implicit +Inf.
var stageBuckets = [...]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// histogram is a fixed-bucket Prometheus-style histogram: counts are
// cumulative per upper bound, exactly as the text exposition expects.
type histogram struct {
	buckets [len(stageBuckets)]int64
	count   int64
	sum     time.Duration
}

func (h *histogram) observe(d time.Duration) {
	h.count++
	h.sum += d
	s := d.Seconds()
	for i, ub := range stageBuckets {
		if s <= ub {
			h.buckets[i]++
		}
	}
}

func (m *Metrics) observeStage(stage string, d time.Duration) {
	h := m.stageHist[stage]
	if h == nil {
		h = &histogram{}
		m.stageHist[stage] = h
	}
	h.observe(d)
}

func newMetrics() *Metrics {
	return &Metrics{
		requests:       map[string]map[int]int64{},
		latSum:         map[string]time.Duration{},
		latCount:       map[string]int64{},
		stageNS:        map[string]int64{},
		stageHist:      map[string]*histogram{},
		admissions:     map[string]int64{},
		exploreRuns:    map[string]int64{},
		tenantRequests: map[string]map[string]int64{},
	}
}

// observeAdmission records one admission attempt's ladder outcome and
// how many tenants it preempted.
func (m *Metrics) observeAdmission(outcome string, evicted int) {
	m.mu.Lock()
	m.admissions[outcome]++
	m.mu.Unlock()
	m.tenantEvictions.Add(int64(evicted))
}

// observeExplore records one completed exploration.
func (m *Metrics) observeExplore(mode string, points, front int) {
	m.mu.Lock()
	m.exploreRuns[mode]++
	m.mu.Unlock()
	m.explorePoints.Add(int64(points))
	m.exploreFrontPoints.Add(int64(front))
}

// ExploreRuns reports completed explorations in the given mode (used by
// tests).
func (m *Metrics) ExploreRuns(mode string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exploreRuns[mode]
}

// observeTenantRequest counts one tenant-dimension request.
func (m *Metrics) observeTenantRequest(endpoint, tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byTenant := m.tenantRequests[endpoint]
	if byTenant == nil {
		byTenant = map[string]int64{}
		m.tenantRequests[endpoint] = byTenant
	}
	byTenant[tenant]++
}

// setTenants updates the admitted-tenants gauge.
func (m *Metrics) setTenants(n int64) { m.tenantsGauge.Store(n) }

// Admissions reports admission attempts by outcome (used by tests).
func (m *Metrics) Admissions(outcome string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.admissions[outcome]
}

func (m *Metrics) observeRequest(endpoint string, code int, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	codes := m.requests[endpoint]
	if codes == nil {
		codes = map[int]int64{}
		m.requests[endpoint] = codes
	}
	codes[code]++
	m.latSum[endpoint] += dur
	m.latCount[endpoint]++
}

func (m *Metrics) observeSolve(st schedule.SolveStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solveRuns++
	m.stageNS["windows"] += int64(st.WindowsTime)
	m.stageNS["assign"] += int64(st.AssignTime)
	m.stageNS["allocate"] += int64(st.AllocateTime)
	m.stageNS["schedule"] += int64(st.ScheduleTime)
	m.stageNS["omega"] += int64(st.OmegaTime)
	m.observeStage("windows", st.WindowsTime)
	m.observeStage("assign", st.AssignTime)
	m.observeStage("allocate", st.AllocateTime)
	m.observeStage("schedule", st.ScheduleTime)
	m.observeStage("omega", st.OmegaTime)
}

func (m *Metrics) observeWatchEvent(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watchEventHist.observe(d)
}

// WatchDropped reports frames skipped while coalescing slow consumers.
func (m *Metrics) WatchDropped() int64 { return m.watchDropped.Load() }

// WatchPanics reports recovered watch state-machine panics.
func (m *Metrics) WatchPanics() int64 { return m.watchPanics.Load() }

// WatchSubs reports currently live watch subscriptions.
func (m *Metrics) WatchSubs() int64 { return m.watchSubs.Load() }

func (m *Metrics) observeCoalesced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalesced++
}

// Coalesced reports how many requests joined an in-flight solve.
func (m *Metrics) Coalesced() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coalesced
}

// SolveRuns reports how many solver executions actually ran.
func (m *Metrics) SolveRuns() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.solveRuns
}

// WriteText renders the metrics in the Prometheus text format. Label
// sets are emitted in sorted order so the output is deterministic.
func (m *Metrics) WriteText(w io.Writer, cache *solverCache) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP srschedd_requests_total Completed requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE srschedd_requests_total counter")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for c := range m.requests[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "srschedd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.requests[ep][c])
		}
	}

	fmt.Fprintln(w, "# HELP srschedd_request_seconds Request wall-clock time by endpoint.")
	fmt.Fprintln(w, "# TYPE srschedd_request_seconds summary")
	eps := make([]string, 0, len(m.latCount))
	for ep := range m.latCount {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		fmt.Fprintf(w, "srschedd_request_seconds_sum{endpoint=%q} %g\n", ep, m.latSum[ep].Seconds())
		fmt.Fprintf(w, "srschedd_request_seconds_count{endpoint=%q} %d\n", ep, m.latCount[ep])
	}

	hits, misses, evictions, size := cache.stats()
	fmt.Fprintln(w, "# HELP srschedd_solver_cache_hits_total Requests that found their problem structure cached.")
	fmt.Fprintln(w, "# TYPE srschedd_solver_cache_hits_total counter")
	fmt.Fprintf(w, "srschedd_solver_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP srschedd_solver_cache_misses_total Requests that had to build a solver.")
	fmt.Fprintln(w, "# TYPE srschedd_solver_cache_misses_total counter")
	fmt.Fprintf(w, "srschedd_solver_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP srschedd_solver_cache_size Cached problem structures.")
	fmt.Fprintln(w, "# TYPE srschedd_solver_cache_size gauge")
	fmt.Fprintf(w, "srschedd_solver_cache_size %d\n", size)

	fmt.Fprintln(w, "# HELP srschedd_cache_entries Live solver-cache entries.")
	fmt.Fprintln(w, "# TYPE srschedd_cache_entries gauge")
	fmt.Fprintf(w, "srschedd_cache_entries %d\n", size)
	fmt.Fprintln(w, "# HELP srschedd_cache_evictions_total Solver-cache entries evicted at capacity.")
	fmt.Fprintln(w, "# TYPE srschedd_cache_evictions_total counter")
	fmt.Fprintf(w, "srschedd_cache_evictions_total %d\n", evictions)

	fmt.Fprintln(w, "# HELP srschedd_warmstart_hits_total Solver builds hydrated from a snapshot (disk or peer).")
	fmt.Fprintln(w, "# TYPE srschedd_warmstart_hits_total counter")
	fmt.Fprintf(w, "srschedd_warmstart_hits_total %d\n", m.warmstartHits.Load())
	fmt.Fprintln(w, "# HELP srschedd_warmstart_misses_total Solver builds that derived structure cold with hydration enabled.")
	fmt.Fprintln(w, "# TYPE srschedd_warmstart_misses_total counter")
	fmt.Fprintf(w, "srschedd_warmstart_misses_total %d\n", m.warmstartMisses.Load())

	fmt.Fprintln(w, "# HELP srschedd_batch_items Sub-requests processed through /v1/schedule:batch.")
	fmt.Fprintln(w, "# TYPE srschedd_batch_items counter")
	fmt.Fprintf(w, "srschedd_batch_items %d\n", m.batchItems.Load())

	fmt.Fprintln(w, "# HELP srschedd_explore_runs_total Completed explorations by mode.")
	fmt.Fprintln(w, "# TYPE srschedd_explore_runs_total counter")
	modes := make([]string, 0, len(m.exploreRuns))
	for mode := range m.exploreRuns {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		fmt.Fprintf(w, "srschedd_explore_runs_total{mode=%q} %d\n", mode, m.exploreRuns[mode])
	}
	fmt.Fprintln(w, "# HELP srschedd_explore_points_total Exploration points reported (grid samples plus Pareto evaluations).")
	fmt.Fprintln(w, "# TYPE srschedd_explore_points_total counter")
	fmt.Fprintf(w, "srschedd_explore_points_total %d\n", m.explorePoints.Load())
	fmt.Fprintln(w, "# HELP srschedd_explore_front_points_total Non-dominated points emitted on Pareto fronts.")
	fmt.Fprintln(w, "# TYPE srschedd_explore_front_points_total counter")
	fmt.Fprintf(w, "srschedd_explore_front_points_total %d\n", m.exploreFrontPoints.Load())

	fmt.Fprintln(w, "# HELP srschedd_shard_proxied_total Requests forwarded to their owning shard.")
	fmt.Fprintln(w, "# TYPE srschedd_shard_proxied_total counter")
	fmt.Fprintf(w, "srschedd_shard_proxied_total %d\n", m.shardProxied.Load())
	fmt.Fprintln(w, "# HELP srschedd_shard_local_misses_total Requests served locally although another shard owns their structure.")
	fmt.Fprintln(w, "# TYPE srschedd_shard_local_misses_total counter")
	fmt.Fprintf(w, "srschedd_shard_local_misses_total %d\n", m.shardLocalMisses.Load())

	tot := cache.solverBuildTotals()
	fmt.Fprintln(w, "# HELP srschedd_solver_baseline_builds_total LSD baseline derivations across live cache entries (zero on a fully warm-started replica).")
	fmt.Fprintln(w, "# TYPE srschedd_solver_baseline_builds_total counter")
	fmt.Fprintf(w, "srschedd_solver_baseline_builds_total %d\n", tot.BaselineBuilds)
	fmt.Fprintln(w, "# HELP srschedd_solver_candidate_builds_total Path-candidate derivations across live cache entries (zero on a fully warm-started replica).")
	fmt.Fprintln(w, "# TYPE srschedd_solver_candidate_builds_total counter")
	fmt.Fprintf(w, "srschedd_solver_candidate_builds_total %d\n", tot.CandidateBuilds)

	fmt.Fprintln(w, "# HELP srschedd_coalesced_requests_total Requests served by joining an identical in-flight solve.")
	fmt.Fprintln(w, "# TYPE srschedd_coalesced_requests_total counter")
	fmt.Fprintf(w, "srschedd_coalesced_requests_total %d\n", m.coalesced)

	fmt.Fprintln(w, "# HELP srschedd_solve_runs_total Solver executions (after coalescing).")
	fmt.Fprintln(w, "# TYPE srschedd_solve_runs_total counter")
	fmt.Fprintf(w, "srschedd_solve_runs_total %d\n", m.solveRuns)

	fmt.Fprintln(w, "# HELP srschedd_queue_depth Requests waiting for a solve worker slot.")
	fmt.Fprintln(w, "# TYPE srschedd_queue_depth gauge")
	fmt.Fprintf(w, "srschedd_queue_depth %d\n", m.queued.Load())

	fmt.Fprintln(w, "# HELP srschedd_tenants Admitted tenants across all fabrics.")
	fmt.Fprintln(w, "# TYPE srschedd_tenants gauge")
	fmt.Fprintf(w, "srschedd_tenants %d\n", m.tenantsGauge.Load())

	fmt.Fprintln(w, "# HELP srschedd_admissions_total Tenant admission attempts by ladder outcome.")
	fmt.Fprintln(w, "# TYPE srschedd_admissions_total counter")
	outcomes := make([]string, 0, len(m.admissions))
	for o := range m.admissions {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Fprintf(w, "srschedd_admissions_total{outcome=%q} %d\n", o, m.admissions[o])
	}

	fmt.Fprintln(w, "# HELP srschedd_tenant_evictions_total Tenants preempted by higher-priority admissions.")
	fmt.Fprintln(w, "# TYPE srschedd_tenant_evictions_total counter")
	fmt.Fprintf(w, "srschedd_tenant_evictions_total %d\n", m.tenantEvictions.Load())

	fmt.Fprintln(w, "# HELP srschedd_tenant_requests_total Tenant-dimension requests by endpoint and tenant.")
	fmt.Fprintln(w, "# TYPE srschedd_tenant_requests_total counter")
	teps := make([]string, 0, len(m.tenantRequests))
	for ep := range m.tenantRequests {
		teps = append(teps, ep)
	}
	sort.Strings(teps)
	for _, ep := range teps {
		ids := make([]string, 0, len(m.tenantRequests[ep]))
		for id := range m.tenantRequests[ep] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "srschedd_tenant_requests_total{endpoint=%q,tenant=%q} %d\n", ep, id, m.tenantRequests[ep][id])
		}
	}

	fmt.Fprintln(w, "# HELP srschedd_watch_subscriptions Live /v1/watch subscriptions.")
	fmt.Fprintln(w, "# TYPE srschedd_watch_subscriptions gauge")
	fmt.Fprintf(w, "srschedd_watch_subscriptions %d\n", m.watchSubs.Load())

	fmt.Fprintln(w, "# HELP srschedd_watch_events_total Watch events accepted into subscription queues.")
	fmt.Fprintln(w, "# TYPE srschedd_watch_events_total counter")
	fmt.Fprintf(w, "srschedd_watch_events_total %d\n", m.watchEvents.Load())

	fmt.Fprintln(w, "# HELP srschedd_watch_frames_total Frames appended to watch replay rings.")
	fmt.Fprintln(w, "# TYPE srschedd_watch_frames_total counter")
	fmt.Fprintf(w, "srschedd_watch_frames_total %d\n", m.watchFrames.Load())

	fmt.Fprintln(w, "# HELP srschedd_watch_dropped_frames_total Frames skipped coalescing slow watch consumers to the latest state.")
	fmt.Fprintln(w, "# TYPE srschedd_watch_dropped_frames_total counter")
	fmt.Fprintf(w, "srschedd_watch_dropped_frames_total %d\n", m.watchDropped.Load())

	fmt.Fprintln(w, "# HELP srschedd_watch_panics_total Recovered watch state-machine panics (each terminates one subscription).")
	fmt.Fprintln(w, "# TYPE srschedd_watch_panics_total counter")
	fmt.Fprintf(w, "srschedd_watch_panics_total %d\n", m.watchPanics.Load())

	fmt.Fprintln(w, "# HELP srschedd_watch_event_seconds Watch event dequeue-to-frame latency.")
	fmt.Fprintln(w, "# TYPE srschedd_watch_event_seconds histogram")
	for i, ub := range stageBuckets {
		fmt.Fprintf(w, "srschedd_watch_event_seconds_bucket{le=\"%g\"} %d\n", ub, m.watchEventHist.buckets[i])
	}
	fmt.Fprintf(w, "srschedd_watch_event_seconds_bucket{le=\"+Inf\"} %d\n", m.watchEventHist.count)
	fmt.Fprintf(w, "srschedd_watch_event_seconds_sum %g\n", m.watchEventHist.sum.Seconds())
	fmt.Fprintf(w, "srschedd_watch_event_seconds_count %d\n", m.watchEventHist.count)

	fmt.Fprintln(w, "# HELP srschedd_solve_stage_seconds_total Cumulative pipeline time by stage across all solves.")
	fmt.Fprintln(w, "# TYPE srschedd_solve_stage_seconds_total counter")
	stages := make([]string, 0, len(m.stageNS))
	for st := range m.stageNS {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		fmt.Fprintf(w, "srschedd_solve_stage_seconds_total{stage=%q} %g\n", st, time.Duration(m.stageNS[st]).Seconds())
	}

	fmt.Fprintln(w, "# HELP srschedd_solve_stage_duration_seconds Per-solve pipeline stage latency.")
	fmt.Fprintln(w, "# TYPE srschedd_solve_stage_duration_seconds histogram")
	hstages := make([]string, 0, len(m.stageHist))
	for st := range m.stageHist {
		hstages = append(hstages, st)
	}
	sort.Strings(hstages)
	for _, st := range hstages {
		h := m.stageHist[st]
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "srschedd_solve_stage_duration_seconds_bucket{stage=%q,le=\"%g\"} %d\n", st, ub, h.buckets[i])
		}
		fmt.Fprintf(w, "srschedd_solve_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st, h.count)
		fmt.Fprintf(w, "srschedd_solve_stage_duration_seconds_sum{stage=%q} %g\n", st, h.sum.Seconds())
		fmt.Fprintf(w, "srschedd_solve_stage_duration_seconds_count{stage=%q} %d\n", st, h.count)
	}
}
