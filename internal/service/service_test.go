package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"schedroute/internal/schedule"
	"schedroute/pkg/schedroute"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func testProblem(tauIn float64) schedroute.Problem {
	return schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64, TauIn: tauIn}
}

// TestScheduleCoalescesIdenticalRequests is the coalescing acceptance
// test: N identical concurrent requests must execute exactly one solver
// run, and every response must be byte-identical.
func TestScheduleCoalescesIdenticalRequests(t *testing.T) {
	const n = 8
	srv, ts := newTestServer(t, Config{Workers: n, QueueDepth: n})

	// The flight leader holds its solve open until every duplicate has
	// joined the in-flight call, so the test is deterministic: all n
	// requests are provably concurrent when the solve finally runs.
	srv.beforeSolve = func(key string) {
		deadline := time.Now().Add(10 * time.Second)
		for srv.flights.waiters(key) < n-1 {
			if time.Now().After(deadline) {
				t.Error("duplicates never joined the in-flight solve")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	req := schedroute.ScheduleRequest{Problem: testProblem(150), IncludeOmega: true}
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postJSON(t, ts, "/v1/schedule", req)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: response differs from request 0", i)
		}
	}
	if runs := srv.metrics.SolveRuns(); runs != 1 {
		t.Errorf("solver ran %d times for %d identical requests, want 1", runs, n)
	}
	if co := srv.metrics.Coalesced(); co != n-1 {
		t.Errorf("coalesced %d requests, want %d", co, n-1)
	}
	ent := srv.cache.getOrCreate(req.Problem.StructureKey(), func() (*schedroute.Built, error) {
		t.Fatal("structure should already be cached")
		return nil, nil
	})
	if st := ent.solver.CacheStats(); st.Solves != 1 {
		t.Errorf("underlying solver served %d solves, want 1", st.Solves)
	}
}

// TestSolverCacheWarmRepeat is the warm-path acceptance test: a repeat
// request with a new τin reuses the cached Solver and skips every
// τin-independent derivation (baseline, candidates, validation).
func TestSolverCacheWarmRepeat(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	for _, tauIn := range []float64{141, 200} {
		code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(tauIn)})
		if code != http.StatusOK {
			t.Fatalf("τin=%g: status %d: %s", tauIn, code, body)
		}
	}

	hits, misses, size := srv.cache.stats()
	if misses != 1 || hits < 1 || size != 1 {
		t.Errorf("cache hits=%d misses=%d size=%d, want 1 miss, ≥1 hit, 1 entry", hits, misses, size)
	}
	ent := srv.cache.getOrCreate(testProblem(0).StructureKey(), func() (*schedroute.Built, error) {
		t.Fatal("structure should already be cached")
		return nil, nil
	})
	st := ent.solver.CacheStats()
	if st.Solves != 2 {
		t.Fatalf("solver served %d solves, want 2", st.Solves)
	}
	if st.BaselineBuilds != 1 || st.CandidateBuilds != 1 || st.ValidateBuilds != 1 {
		t.Errorf("structure rebuilt on the warm path: %+v", st)
	}
	if st.StartsBuilds != 1 {
		// Same window (τc) both times: the static starts are shared too.
		t.Errorf("starts rebuilt on the warm path: %+v", st)
	}
}

// TestScheduleGoldenMatchesDirect is the golden acceptance test: for
// the eight standard configurations the service response must be
// byte-identical to the direct library path through the shared
// pkg/schedroute wire types — the same conversion srsched-style tools
// use.
func TestScheduleGoldenMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topos := []string{"cube:6", "ghc:4,4,4", "torus:8,8", "torus:4,4,4"}
	bands := []float64{64, 128}
	for _, topo := range topos {
		for _, bw := range bands {
			req := schedroute.ScheduleRequest{
				Problem:      schedroute.Problem{TFG: "dvb:4", Topology: topo, Bandwidth: bw, TauIn: 150},
				IncludeOmega: true,
			}
			code, got := postJSON(t, ts, "/v1/schedule", req)
			if code != http.StatusOK {
				t.Fatalf("%s B=%g: status %d: %s", topo, bw, code, got)
			}

			b, err := req.Problem.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts, err := req.Options.ToSchedule()
			if err != nil {
				t.Fatal(err)
			}
			res, err := schedule.Compute(b.ScheduleProblem(), opts)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := schedroute.NewScheduleResult(b, res, true, false)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(wire); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("%s B=%g: service response differs from direct path\nservice: %.200s\ndirect:  %.200s",
					topo, bw, got, want.Bytes())
			}
		}
	}
}

func TestRepairEndpointOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A single failed link at moderate load is survivable: 200 with a
	// non-infeasible rung.
	code, body := postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
		Problem: testProblem(150),
		Fault:   schedroute.FaultSpec{Links: []string{"0-1"}},
	})
	if code != http.StatusOK {
		t.Fatalf("link repair: status %d: %s", code, body)
	}
	var rep schedroute.RepairResult
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != schedroute.SchemaVersion || rep.Outcome == "" || rep.Outcome == "infeasible" {
		t.Fatalf("bad repair result: %+v", rep)
	}

	// A failed node hosting a task is unsurvivable (no task migration):
	// 422 with the full ladder report in the error body.
	code, body = postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
		Problem: testProblem(150),
		Fault:   schedroute.FaultSpec{Nodes: []int{0}},
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("node repair: status %d, want 422: %s", code, body)
	}
	var er schedroute.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "infeasible_repair" || er.Repair == nil {
		t.Fatalf("422 body missing classification or report: %+v", er)
	}
	if er.Repair.Outcome != "infeasible" || !er.Repair.LostTasks {
		t.Fatalf("ladder report wrong: %+v", er.Repair)
	}

	// Malformed and empty fault specs are client errors.
	for _, fault := range []schedroute.FaultSpec{
		{},
		{Links: []string{"0~1"}},
		{Nodes: []int{4096}},
	} {
		code, body = postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{Problem: testProblem(150), Fault: fault})
		if code != http.StatusBadRequest {
			t.Fatalf("fault %+v: status %d, want 400: %s", fault, code, body)
		}
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Kind != "bad_input" {
			t.Fatalf("fault %+v: kind %q, want bad_input", fault, er.Kind)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/sweep", schedroute.SweepRequest{
		Problem:     schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Execute:     true,
		Invocations: 4,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var sw schedroute.SweepResult
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 12 {
		t.Fatalf("default sweep has %d points, want the paper's 12", len(sw.Points))
	}
	if sw.TauC <= 0 || sw.Points[0].TauIn != sw.TauC ||
		math.Abs(sw.Points[11].TauIn-5*sw.TauC) > 1e-9*sw.TauC {
		t.Fatalf("grid bounds wrong: τc=%g first=%g last=%g", sw.TauC, sw.Points[0].TauIn, sw.Points[11].TauIn)
	}
	feasible := 0
	for i, pt := range sw.Points {
		if i > 0 && pt.Load >= sw.Points[i-1].Load {
			t.Fatalf("loads not descending at %d", i)
		}
		if pt.Feasible {
			feasible++
			if !pt.Executed {
				t.Fatalf("point %d feasible but not executed", i)
			}
			if pt.OI {
				t.Fatalf("point %d: scheduled routing produced output inconsistency", i)
			}
			if pt.ThroughputMid <= 0 {
				t.Fatalf("point %d: no throughput", i)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible point in the sweep")
	}

	// All twelve points share one cached solver: structure built once.
	if _, misses, _ := func() (int64, int64, int) { return srv.cache.stats() }(); misses != 1 {
		t.Errorf("sweep built %d structures, want 1", misses)
	}

	// Degenerate ranges are client errors.
	code, _ = postJSON(t, ts, "/v1/sweep", schedroute.SweepRequest{
		Problem: testProblem(0), MinTauIn: 100, MaxTauIn: 50,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d, want 400", code)
	}
}

// TestGracefulShutdownUnderLoad is the drain acceptance test: the
// in-flight solve completes with 200, the queued request is shed with
// 503, new requests are refused, and Shutdown returns well within the
// drain deadline.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	srv.beforeSolve = func(string) { <-release }

	type reply struct {
		code int
		body []byte
	}
	inflight := make(chan reply, 1)
	queued := make(chan reply, 1)
	go func() {
		c, b := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
		inflight <- reply{c, b}
	}()
	waitFor(t, "request to start solving", func() bool { return len(srv.sem) == 1 })
	go func() {
		// A different structure: must not coalesce with the in-flight
		// solve; it queues behind the single worker slot.
		c, b := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: schedroute.Problem{TFG: "chain:8", Topology: "cube:6"}})
		queued <- reply{c, b}
	}()
	waitFor(t, "second request to queue", func() bool { return srv.metrics.queued.Load() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// The queued request is shed promptly with 503.
	q := <-queued
	if q.code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d, want 503: %s", q.code, q.body)
	}
	// New requests are refused while draining.
	c, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
	if c != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503: %s", c, body)
	}
	// Health reports the drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}

	// The in-flight solve still completes.
	close(release)
	in := <-inflight
	if in.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200: %s", in.code, in.body)
	}
	if err := <-done; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
}

func TestRequestHygiene(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// GET on a solve endpoint: 405.
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedule: %d, want 405", resp.StatusCode)
	}

	// Unknown schema version: 400 with the table's label.
	p := testProblem(150)
	p.SchemaVersion = 99
	code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: p})
	var er schedroute.ErrorResponse
	if code != http.StatusBadRequest || json.Unmarshal(body, &er) != nil || er.Kind != "unknown_schema_version" {
		t.Fatalf("schema_version 99: status %d kind %q: %s", code, er.Kind, body)
	}

	// Unknown fields are rejected, not silently dropped.
	resp, err = http.Post(ts.URL+"/v1/schedule", "application/json",
		strings.NewReader(`{"problem":{"tfg":"dvb:4","topology":"cube:6"},"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	// Bad topology spec: 400 bad_input through the shared parser.
	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem: schedroute.Problem{TFG: "dvb:4", Topology: "klein-bottle:6"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("bad topology: status %d: %s", code, body)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tauIn := range []float64{141, 141, 200} {
		postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(tauIn)})
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`srschedd_requests_total{endpoint="schedule",code="200"} 3`,
		"srschedd_solver_cache_hits_total 2",
		"srschedd_solver_cache_misses_total 1",
		"srschedd_solver_cache_size 1",
		"srschedd_solve_runs_total 3",
		"srschedd_queue_depth 0",
		`srschedd_solve_stage_seconds_total{stage="assign"}`,
		"srschedd_request_seconds_count{endpoint=\"schedule\"} 3",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
