package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"schedroute/internal/schedule"
	"schedroute/pkg/schedroute"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func testProblem(tauIn float64) schedroute.Problem {
	return schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64, TauIn: tauIn}
}

// TestScheduleCoalescesIdenticalRequests is the coalescing acceptance
// test: N identical concurrent requests must execute exactly one solver
// run, and every response must be byte-identical.
func TestScheduleCoalescesIdenticalRequests(t *testing.T) {
	const n = 8
	srv, ts := newTestServer(t, Config{Workers: n, QueueDepth: n})

	// The flight leader holds its solve open until every duplicate has
	// joined the in-flight call, so the test is deterministic: all n
	// requests are provably concurrent when the solve finally runs.
	srv.beforeSolve = func(key string) {
		deadline := time.Now().Add(10 * time.Second)
		for srv.flights.waiters(key) < n-1 {
			if time.Now().After(deadline) {
				t.Error("duplicates never joined the in-flight solve")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	req := schedroute.ScheduleRequest{Problem: testProblem(150), IncludeOmega: true}
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postJSON(t, ts, "/v1/schedule", req)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: response differs from request 0", i)
		}
	}
	if runs := srv.metrics.SolveRuns(); runs != 1 {
		t.Errorf("solver ran %d times for %d identical requests, want 1", runs, n)
	}
	if co := srv.metrics.Coalesced(); co != n-1 {
		t.Errorf("coalesced %d requests, want %d", co, n-1)
	}
	ent, _ := srv.cache.getOrCreate(req.Problem.StructureKey(), func() (*schedroute.Built, error) {
		t.Fatal("structure should already be cached")
		return nil, nil
	})
	if st := ent.solver.CacheStats(); st.Solves != 1 {
		t.Errorf("underlying solver served %d solves, want 1", st.Solves)
	}
}

// TestSolverCacheWarmRepeat is the warm-path acceptance test: a repeat
// request with a new τin reuses the cached Solver and skips every
// τin-independent derivation (baseline, candidates, validation).
func TestSolverCacheWarmRepeat(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	for _, tauIn := range []float64{141, 200} {
		code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(tauIn)})
		if code != http.StatusOK {
			t.Fatalf("τin=%g: status %d: %s", tauIn, code, body)
		}
	}

	hits, misses, _, size := srv.cache.stats()
	if misses != 1 || hits < 1 || size != 1 {
		t.Errorf("cache hits=%d misses=%d size=%d, want 1 miss, ≥1 hit, 1 entry", hits, misses, size)
	}
	ent, _ := srv.cache.getOrCreate(testProblem(0).StructureKey(), func() (*schedroute.Built, error) {
		t.Fatal("structure should already be cached")
		return nil, nil
	})
	st := ent.solver.CacheStats()
	if st.Solves != 2 {
		t.Fatalf("solver served %d solves, want 2", st.Solves)
	}
	if st.BaselineBuilds != 1 || st.CandidateBuilds != 1 || st.ValidateBuilds != 1 {
		t.Errorf("structure rebuilt on the warm path: %+v", st)
	}
	if st.StartsBuilds != 1 {
		// Same window (τc) both times: the static starts are shared too.
		t.Errorf("starts rebuilt on the warm path: %+v", st)
	}
}

// TestScheduleGoldenMatchesDirect is the golden acceptance test: for
// the eight standard configurations the service response must be
// byte-identical to the direct library path through the shared
// pkg/schedroute wire types — the same conversion srsched-style tools
// use.
func TestScheduleGoldenMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topos := []string{"cube:6", "ghc:4,4,4", "torus:8,8", "torus:4,4,4"}
	bands := []float64{64, 128}
	for _, topo := range topos {
		for _, bw := range bands {
			req := schedroute.ScheduleRequest{
				Problem:      schedroute.Problem{TFG: "dvb:4", Topology: topo, Bandwidth: bw, TauIn: 150},
				IncludeOmega: true,
			}
			code, got := postJSON(t, ts, "/v1/schedule", req)
			if code != http.StatusOK {
				t.Fatalf("%s B=%g: status %d: %s", topo, bw, code, got)
			}

			b, err := req.Problem.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts, err := req.Options.ToSchedule()
			if err != nil {
				t.Fatal(err)
			}
			res, err := schedule.Compute(b.ScheduleProblem(), opts)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := schedroute.NewScheduleResult(b, res, b.TauIn, true, false)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(wire); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("%s B=%g: service response differs from direct path\nservice: %.200s\ndirect:  %.200s",
					topo, bw, got, want.Bytes())
			}
		}
	}
}

func TestRepairEndpointOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A single failed link at moderate load is survivable: 200 with a
	// non-infeasible rung.
	code, body := postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
		Problem: testProblem(150),
		Fault:   schedroute.FaultSpec{Links: []string{"0-1"}},
	})
	if code != http.StatusOK {
		t.Fatalf("link repair: status %d: %s", code, body)
	}
	var rep schedroute.RepairResult
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != schedroute.SchemaVersion || rep.Outcome == "" || rep.Outcome == "infeasible" {
		t.Fatalf("bad repair result: %+v", rep)
	}

	// A failed node hosting a task is unsurvivable (no task migration):
	// 422 with the full ladder report in the error body.
	code, body = postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
		Problem: testProblem(150),
		Fault:   schedroute.FaultSpec{Nodes: []int{0}},
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("node repair: status %d, want 422: %s", code, body)
	}
	var er schedroute.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "infeasible_repair" || er.Repair == nil {
		t.Fatalf("422 body missing classification or report: %+v", er)
	}
	if er.Repair.Outcome != "infeasible" || !er.Repair.LostTasks {
		t.Fatalf("ladder report wrong: %+v", er.Repair)
	}

	// Malformed and empty fault specs are client errors.
	for _, fault := range []schedroute.FaultSpec{
		{},
		{Links: []string{"0~1"}},
		{Nodes: []int{4096}},
	} {
		code, body = postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{Problem: testProblem(150), Fault: fault})
		if code != http.StatusBadRequest {
			t.Fatalf("fault %+v: status %d, want 400: %s", fault, code, body)
		}
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Kind != "bad_input" {
			t.Fatalf("fault %+v: kind %q, want bad_input", fault, er.Kind)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/sweep", schedroute.SweepRequest{
		Problem:     schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Execute:     true,
		Invocations: 4,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var sw schedroute.SweepResult
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 12 {
		t.Fatalf("default sweep has %d points, want the paper's 12", len(sw.Points))
	}
	if sw.TauC <= 0 || sw.Points[0].TauIn != sw.TauC ||
		math.Abs(sw.Points[11].TauIn-5*sw.TauC) > 1e-9*sw.TauC {
		t.Fatalf("grid bounds wrong: τc=%g first=%g last=%g", sw.TauC, sw.Points[0].TauIn, sw.Points[11].TauIn)
	}
	feasible := 0
	for i, pt := range sw.Points {
		if i > 0 && pt.Load >= sw.Points[i-1].Load {
			t.Fatalf("loads not descending at %d", i)
		}
		if pt.Feasible {
			feasible++
			if !pt.Executed {
				t.Fatalf("point %d feasible but not executed", i)
			}
			if pt.OI {
				t.Fatalf("point %d: scheduled routing produced output inconsistency", i)
			}
			if pt.ThroughputMid <= 0 {
				t.Fatalf("point %d: no throughput", i)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible point in the sweep")
	}

	// All twelve points share one cached solver: structure built once.
	if _, misses, _, _ := srv.cache.stats(); misses != 1 {
		t.Errorf("sweep built %d structures, want 1", misses)
	}

	// Degenerate ranges are client errors.
	code, _ = postJSON(t, ts, "/v1/sweep", schedroute.SweepRequest{
		Problem: testProblem(0), MinTauIn: 100, MaxTauIn: 50,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d, want 400", code)
	}
}

// TestGracefulShutdownUnderLoad is the drain acceptance test: the
// in-flight solve completes with 200, the queued request is shed with
// 503, new requests are refused, and Shutdown returns well within the
// drain deadline.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	srv.beforeSolve = func(string) { <-release }

	type reply struct {
		code int
		body []byte
	}
	inflight := make(chan reply, 1)
	queued := make(chan reply, 1)
	go func() {
		c, b := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
		inflight <- reply{c, b}
	}()
	waitFor(t, "request to start solving", func() bool { return len(srv.sem) == 1 })
	go func() {
		// A different structure: must not coalesce with the in-flight
		// solve; it queues behind the single worker slot.
		c, b := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: schedroute.Problem{TFG: "chain:8", Topology: "cube:6"}})
		queued <- reply{c, b}
	}()
	waitFor(t, "second request to queue", func() bool { return srv.metrics.queued.Load() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// The queued request is shed promptly with 503.
	q := <-queued
	if q.code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d, want 503: %s", q.code, q.body)
	}
	// New requests are refused while draining.
	c, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
	if c != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503: %s", c, body)
	}
	// Health reports the drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}

	// The in-flight solve still completes.
	close(release)
	in := <-inflight
	if in.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200: %s", in.code, in.body)
	}
	if err := <-done; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
}

func TestRequestHygiene(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// GET on a solve endpoint: 405.
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedule: %d, want 405", resp.StatusCode)
	}

	// Unknown schema version: 400 with the table's label.
	p := testProblem(150)
	p.SchemaVersion = 99
	code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: p})
	var er schedroute.ErrorResponse
	if code != http.StatusBadRequest || json.Unmarshal(body, &er) != nil || er.Kind != "unknown_schema_version" {
		t.Fatalf("schema_version 99: status %d kind %q: %s", code, er.Kind, body)
	}

	// Unknown fields are rejected, not silently dropped.
	resp, err = http.Post(ts.URL+"/v1/schedule", "application/json",
		strings.NewReader(`{"problem":{"tfg":"dvb:4","topology":"cube:6"},"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	// Bad topology spec: 400 bad_input through the shared parser.
	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem: schedroute.Problem{TFG: "dvb:4", Topology: "klein-bottle:6"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("bad topology: status %d: %s", code, body)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tauIn := range []float64{141, 141, 200} {
		postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(tauIn)})
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`srschedd_requests_total{endpoint="schedule",code="200"} 3`,
		"srschedd_solver_cache_hits_total 2",
		"srschedd_solver_cache_misses_total 1",
		"srschedd_solver_cache_size 1",
		"srschedd_solve_runs_total 3",
		"srschedd_queue_depth 0",
		"srschedd_cache_entries 1",
		"srschedd_cache_evictions_total 0",
		"srschedd_warmstart_hits_total 0",
		"srschedd_warmstart_misses_total 0",
		"srschedd_batch_items 0",
		"srschedd_shard_proxied_total 0",
		"srschedd_shard_local_misses_total 0",
		"srschedd_solver_baseline_builds_total 1",
		"srschedd_solver_candidate_builds_total 1",
		`srschedd_solve_stage_seconds_total{stage="assign"}`,
		"srschedd_request_seconds_count{endpoint=\"schedule\"} 3",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestCachedStructureUsesRequestTauIn pins the period plumbing around
// the structure cache: StructureKey deliberately excludes τin, so the
// cached Built's own TauIn belongs to whichever request created it —
// later requests at other periods must see THEIR period in schedule
// responses and must repair at THEIR period, not the cached one.
func TestCachedStructureUsesRequestTauIn(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	// Populate the structure cache at one period.
	code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(150)})
	if code != http.StatusOK {
		t.Fatalf("seed request: status %d: %s", code, body)
	}

	// A hit at another period reports that period, not the cached one.
	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{Problem: testProblem(250)})
	if code != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", code, body)
	}
	var out schedroute.ScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TauIn != 250 {
		t.Errorf("warm response τin=%g, want the request's 250", out.TauIn)
	}
	if math.Abs(out.Load-out.TauC/250) > 1e-12 {
		t.Errorf("warm response load=%g, want τc/250=%g", out.Load, out.TauC/250)
	}

	// Repair against the cached structure runs at the request's period:
	// its output period starts from THIS request's τin, so a repair at
	// the cached 150 would betray itself with τout < 250.
	code, body = postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
		Problem: testProblem(250),
		Fault:   schedroute.FaultSpec{Links: []string{"0-1"}},
	})
	if code != http.StatusOK {
		t.Fatalf("warm repair: status %d: %s", code, body)
	}
	var rep schedroute.RepairResult
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TauOut < 250 {
		t.Errorf("repair ran at the cached period: τout=%g, want ≥ the request's 250", rep.TauOut)
	}

	if _, misses, _, _ := srv.cache.stats(); misses != 1 {
		t.Errorf("structure rebuilt: %d misses, want 1", misses)
	}
}

// TestCacheHitWaitsForBuild pins the mid-build synchronization: a hit
// on an entry whose build is still running must block until the build
// finishes instead of observing nil built/solver with nil err.
func TestCacheHitWaitsForBuild(t *testing.T) {
	c := newSolverCache(4)
	key := testProblem(150).StructureKey()
	release := make(chan struct{})
	build := func() (*schedroute.Built, error) {
		<-release
		return testProblem(150).Build()
	}

	const n = 8
	entries := make([]*solverEntry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], _ = c.getOrCreate(key, build)
		}(i)
	}
	// Every caller has registered (hit or miss) and is parked on the
	// in-progress build before it is released.
	waitFor(t, "all callers to reach the entry", func() bool {
		h, m, _, _ := c.stats()
		return h+m == n
	})
	close(release)
	wg.Wait()

	for i, e := range entries {
		if e.err != nil {
			t.Fatalf("caller %d: build error %v", i, e.err)
		}
		if e.built == nil || e.solver == nil {
			t.Fatalf("caller %d observed a half-built entry: built=%v solver=%v", i, e.built, e.solver)
		}
	}
}

// TestFlightSurvivesLeaderCancel pins the coalescing cancellation
// contract: the shared run is detached from the leader's context, so a
// leader whose client vanishes gets its own ctx.Err while joiners with
// live contexts still receive the result; only when the last waiter
// abandons the call is the shared context canceled.
func TestFlightSurvivesLeaderCancel(t *testing.T) {
	g := newFlightGroup()
	type out struct {
		v      any
		err    error
		shared bool
	}

	release := make(chan struct{})
	started := make(chan struct{})
	var runCtx context.Context
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()

	leaderDone := make(chan out, 1)
	go func() {
		v, err, shared := g.Do(leaderCtx, "k", func(ctx context.Context) (any, error) {
			runCtx = ctx
			close(started)
			<-release
			return 42, nil
		})
		leaderDone <- out{v, err, shared}
	}()
	<-started

	joinerDone := make(chan out, 1)
	go func() {
		v, err, shared := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("joiner re-executed a coalesced call")
			return nil, nil
		})
		joinerDone <- out{v, err, shared}
	}()
	waitFor(t, "joiner to join the flight", func() bool { return g.waiters("k") == 1 })

	// The leader's client goes away: the leader returns its own error
	// promptly, the shared run keeps going for the joiner.
	cancelLeader()
	l := <-leaderDone
	if !errors.Is(l.err, context.Canceled) {
		t.Fatalf("canceled leader returned %v, want context.Canceled", l.err)
	}
	if runCtx.Err() != nil {
		t.Fatal("shared run canceled while a joiner still waits")
	}
	close(release)
	j := <-joinerDone
	if j.err != nil || j.v != 42 || !j.shared {
		t.Fatalf("joiner got (%v, %v, shared=%v), want (42, nil, true)", j.v, j.err, j.shared)
	}

	// A run abandoned by every waiter is canceled so it stops burning a
	// solver on a result nobody will read.
	started2 := make(chan struct{})
	var runCtx2 context.Context
	soloCtx, cancelSolo := context.WithCancel(context.Background())
	soloDone := make(chan out, 1)
	go func() {
		v, err, shared := g.Do(soloCtx, "k2", func(ctx context.Context) (any, error) {
			runCtx2 = ctx
			close(started2)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		soloDone <- out{v, err, shared}
	}()
	<-started2
	cancelSolo()
	if s := <-soloDone; !errors.Is(s.err, context.Canceled) {
		t.Fatalf("abandoning caller returned %v, want context.Canceled", s.err)
	}
	waitFor(t, "abandoned run to be canceled", func() bool { return runCtx2.Err() != nil })
}

// TestSweepBoundedByWorkerPool pins the sweep's concurrency source:
// its fan-out borrows only idle worker slots, so concurrent sweeps
// cannot multiply past the server-wide Workers bound.
func TestSweepBoundedByWorkerPool(t *testing.T) {
	srv := New(Config{Workers: 3, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	srv.sem <- struct{}{} // the admitted sweep request's own slot

	extra, release := srv.claimExtraWorkers(srv.cfg.Workers - 1)
	if extra != 2 {
		t.Fatalf("claimed %d extra slots with 2 idle, want 2", extra)
	}
	if len(srv.sem) != 3 {
		t.Fatalf("pool at %d/3 after claim", len(srv.sem))
	}
	// A second sweep arriving at a saturated pool gets no extra lanes
	// and runs serially on its own slot.
	extra2, release2 := srv.claimExtraWorkers(srv.cfg.Workers - 1)
	if extra2 != 0 {
		t.Fatalf("claimed %d extra slots from a full pool, want 0", extra2)
	}
	release()
	release2()
	if len(srv.sem) != 1 {
		t.Fatalf("pool at %d/3 after release, want the request's 1", len(srv.sem))
	}
}

// TestBodySizeLimit pins the request-size cap: an oversized payload is
// rejected as bad input instead of being buffered into memory.
func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	code, body := postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem: schedroute.Problem{
			TFGInline: json.RawMessage(`"` + strings.Repeat("x", 4096) + `"`),
			Topology:  "cube:6",
		},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400: %s", code, body)
	}
	var er schedroute.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "bad_input" || !strings.Contains(er.Error, "exceeds") {
		t.Fatalf("oversized body classified as %q (%s), want bad_input size error", er.Kind, er.Error)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
