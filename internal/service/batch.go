package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"schedroute/internal/errkind"
	"schedroute/internal/parallel"
	"schedroute/pkg/schedroute"
)

// maxBatchItems bounds one /v1/schedule:batch request; beyond it the
// client should split, not the server buffer.
const maxBatchItems = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req schedroute.BatchScheduleRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	if err := schedroute.CheckSchemaVersion(req.SchemaVersion); err != nil {
		s.writeError(w, err, nil)
		return
	}
	if len(req.Items) == 0 || len(req.Items) > maxBatchItems {
		s.writeError(w, errkind.Mark(
			fmt.Errorf("batch: %d items out of range [1,%d]", len(req.Items), maxBatchItems),
			errkind.ErrBadInput), nil)
		return
	}
	// A batch is proxied wholesale only when every item maps to the
	// same non-self owner; mixed batches are served locally (recording
	// a miss per misrouted item) rather than split across the fleet.
	if owner := s.batchShardOwner(r, req.Items); owner != "" {
		s.proxy(w, r, owner, req)
		return
	}
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	defer s.release()
	writeJSON(w, s.batch(r.Context(), req))
}

// batchOwner reports the single ring owner shared by every item, or
// uniform=false when items hash to different replicas.
func (s *Server) batchOwner(items []schedroute.ScheduleRequest) (string, bool) {
	owner := s.ring.owner(items[0].Problem.StructureKey())
	for _, it := range items[1:] {
		if s.ring.owner(it.Problem.StructureKey()) != owner {
			return "", false
		}
	}
	return owner, true
}

// batchShardOwner is shardOwner for a whole batch: a non-empty return
// proxies the batch to that peer. Serving locally records one local
// miss per item another replica owns.
func (s *Server) batchShardOwner(r *http.Request, items []schedroute.ScheduleRequest) string {
	if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
		return ""
	}
	if owner, uniform := s.batchOwner(items); uniform && owner != "" && owner != s.ring.self && s.cfg.ShardPolicy == shardPolicyProxy {
		return owner
	}
	for _, it := range items {
		if o := s.ring.owner(it.Problem.StructureKey()); o != "" && o != s.ring.self {
			s.metrics.shardLocalMisses.Add(1)
		}
	}
	return ""
}

// batchGroup is one unique sub-request: items with identical problem,
// options, and omega flag share a single solve and a single encoded
// result object.
type batchGroup struct {
	req   schedroute.ScheduleRequest
	items []int // indices into the request's Items
	out   *schedroute.ScheduleResult
	err   error
}

// batch runs the grouped fan-out. Items are grouped by their full
// sub-request identity (tenant + StructureKey + period + options +
// omega flag); the solver cache underneath guarantees one structure
// build per distinct StructureKey, and the grouping guarantees one
// solve per identical sub-request, however large the batch. The tenant
// belongs in the key because an admitted tenant's item is answered
// from its admitted standing, not a fresh solve — two tenants naming
// the same problem must not share one result object. Unique groups run
// in parallel on borrowed idle worker slots, the same discipline as
// the sweep, and the whole response is encoded in one pass at the end.
func (s *Server) batch(ctx context.Context, req schedroute.BatchScheduleRequest) *schedroute.BatchScheduleResult {
	groups := make([]*batchGroup, 0, len(req.Items))
	index := map[string]*batchGroup{}
	for i, item := range req.Items {
		ob, _ := json.Marshal(item.Options)
		ten := schedroute.TenantOrDefault(item.Tenant)
		gk := fmt.Sprintf("tenant=%s/%d/%g|%s|tauin=%g|omega=%t|opts=%s",
			ten.ID, ten.Priority, ten.RateGuarantee,
			item.Problem.StructureKey(), item.Problem.TauIn, item.IncludeOmega, ob)
		g := index[gk]
		if g == nil {
			g = &batchGroup{req: item}
			index[gk] = g
			groups = append(groups, g)
		}
		g.items = append(g.items, i)
	}

	extra, releaseExtra := s.claimExtraWorkers(s.cfg.Workers - 1)
	ferr := parallel.ForEach(ctx, len(groups), 1+extra, func(gi int) error {
		g := groups[gi]
		// Tenant-scoped items follow the same path as a standalone
		// /v1/schedule: an admitted tenant's item is served from its
		// admitted standing.
		if ent, err := s.tenantFor(g.req.Tenant, g.req.Problem); err != nil {
			g.err = err
			return nil
		} else if ent != nil {
			g.out, g.err = s.tenantSchedule(ent, g.req.IncludeOmega, g.req.Options.WantStats())
			return nil
		}
		sv, err := s.solve(ctx, g.req.Problem, g.req.Options, nil)
		if err != nil {
			g.err = err
			return nil // per-item isolation: siblings keep running
		}
		out, err := schedroute.NewScheduleResult(sv.built, sv.res, sv.tauIn, g.req.IncludeOmega, g.req.Options.WantStats())
		if err != nil {
			g.err = err
			return nil
		}
		g.out = out
		return nil
	})

	items := make([]schedroute.BatchItemResult, len(req.Items))
	for _, g := range groups {
		err := g.err
		if err == nil && g.out == nil {
			// The fan-out itself stopped (context canceled) before this
			// group ran; report the capacity condition, not silence.
			err = ferr
			if err == nil {
				err = errors.New("batch: group not executed")
			}
		}
		if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			err = errkind.Mark(err, errkind.ErrUnavailable)
		}
		for _, i := range g.items {
			items[i] = schedroute.BatchItemResult{Index: i, Result: g.out}
			if err != nil {
				items[i].Result = nil
				items[i].SetError(err)
			}
		}
	}
	releaseExtra()
	s.metrics.batchItems.Add(int64(len(req.Items)))
	return &schedroute.BatchScheduleResult{SchemaVersion: schedroute.SchemaVersion, Items: items}
}
