// Package service implements srschedd, the long-running scheduling
// service: an HTTP JSON API over the scheduled-routing pipeline with a
// solver cache (problem structures survive across requests, so repeated
// τin queries skip every τin-independent derivation), request
// coalescing (identical concurrent solves execute once), a bounded
// worker pool with an admission queue, per-request deadlines, and
// graceful draining shutdown.
//
// Endpoints:
//
//	POST /v1/schedule        schedroute.ScheduleRequest      → schedroute.ScheduleResult
//	POST /v1/schedule:batch  schedroute.BatchScheduleRequest → schedroute.BatchScheduleResult (per-item errors)
//	POST /v1/repair          schedroute.RepairRequest        → schedroute.RepairResult (422 on infeasible repair)
//	POST /v1/admit           schedroute.AdmitRequest         → schedroute.AdmitResult (422 admission_rejected, report attached)
//	POST /v1/sweep           schedroute.SweepRequest         → schedroute.SweepResult (adapter over /v1/explore; deprecated)
//	POST /v1/explore         schedroute.ExploreRequest       → schedroute.ExploreResult (grid or Pareto mode)
//	GET  /v1/snapshot/{id}   solver-structure snapshot of a cached entry (404 not_found when absent)
//	POST /v1/watch     schedroute.WatchRequest    → SSE stream of schedroute.WatchFrame
//	GET  /v1/watch/{id}            resume a watch stream (Last-Event-ID)
//	POST /v1/watch/{id}/events     schedroute.WatchEvent → schedroute.WatchEventAck
//	DELETE /v1/watch/{id}          close a subscription (terminal closing frame)
//	GET  /v1/version   schedroute.VersionInfo (schema + module + Go versions)
//	GET  /healthz      liveness + drain state
//	GET  /metrics      Prometheus text metrics (incl. per-stage latency histograms)
//
// /v1/schedule, /v1/repair and /v1/explore accept ?debug=trace, which attaches the
// request's span tree (queue wait, structure-cache lookup, and the full
// solve/repair pipeline) to the response as a schema-versioned "trace"
// field without changing any other byte of the body.
//
// Error bodies are schedroute.ErrorResponse; the HTTP status comes from
// the errkind classification table, the same table the CLIs derive
// their exit codes from.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
	"schedroute/internal/trace"
	"schedroute/pkg/schedroute"
)

// Span names the service records under a ?debug=trace request root.
const (
	SpanRequest   = "request"
	SpanQueueWait = "queue_wait"
	SpanStructure = "structure"
	SpanFlight    = "flight"
)

// Config tunes a Server. Zero values select the defaults.
type Config struct {
	// MaxSolvers caps the solver-cache LRU (default 32 structures).
	MaxSolvers int
	// Workers bounds concurrent solves (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it
	// requests are rejected immediately with 503 (default 64).
	QueueDepth int
	// RequestTimeout is the per-request solve deadline (default 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body size (default 8 MiB), so an
	// oversized tfg_inline payload is cut off at the reader instead of
	// being buffered into memory.
	MaxBodyBytes int64
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger

	// WarmStartDir, when non-empty, enables the disk-backed warm-start
	// store: solver-structure snapshots are written behind the first
	// build of each structure and read before any cold derivation, so a
	// restarting replica (or one sharing the directory) skips the
	// expensive τin-independent derivations entirely.
	WarmStartDir string
	// WarmStartMax bounds the snapshot files kept in WarmStartDir;
	// beyond it the least recently used are removed (default 256).
	WarmStartMax int
	// Peers is the full fleet membership as base URLs, including this
	// replica's own SelfURL. Non-empty enables shard routing: every
	// StructureKey gets one owning replica by rendezvous hashing.
	Peers []string
	// SelfURL is this replica's own entry in Peers.
	SelfURL string
	// ShardPolicy says what to do with a request whose structure another
	// replica owns: "proxy" (default) forwards it to the owner; "serve"
	// handles it locally and records a shard-local miss.
	ShardPolicy string

	// MaxWatchSubs caps concurrent /v1/watch subscriptions (default 64).
	MaxWatchSubs int
	// WatchEventQueue bounds pending events per subscription; a full
	// queue rejects new events with 503 instead of ever blocking
	// (default 16).
	WatchEventQueue int
	// WatchRing bounds the per-subscription frame replay ring backing
	// Last-Event-ID resume; consumers that fall off its tail are
	// coalesced to the latest frame (default 64).
	WatchRing int
	// WatchHeartbeat is the idle-stream keepalive interval (default 15s).
	WatchHeartbeat time.Duration
	// WatchIdleTimeout reaps subscriptions with no attached consumer and
	// no event activity (default 2m).
	WatchIdleTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSolvers == 0 {
		c.MaxSolvers = 32
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.WarmStartMax == 0 {
		c.WarmStartMax = 256
	}
	if c.ShardPolicy == "" {
		c.ShardPolicy = shardPolicyProxy
	}
	if c.MaxWatchSubs == 0 {
		c.MaxWatchSubs = 64
	}
	if c.WatchEventQueue == 0 {
		c.WatchEventQueue = 16
	}
	if c.WatchRing == 0 {
		c.WatchRing = 64
	}
	if c.WatchHeartbeat == 0 {
		c.WatchHeartbeat = 15 * time.Second
	}
	if c.WatchIdleTimeout == 0 {
		c.WatchIdleTimeout = 2 * time.Minute
	}
	return c
}

// Server is the srschedd request processor. Create with New, expose
// via Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	cache   *solverCache
	flights *flightGroup
	metrics *Metrics
	watches *watchRegistry
	tenants *tenantRegistry
	warm    *warmStore   // nil unless WarmStartDir set
	ring    *shardRing   // nil unless Peers set
	httpc   *http.Client // peer proxying and snapshot fetches

	sem      chan struct{} // worker slots
	stop     chan struct{} // closed when draining begins
	inflight chan struct{} // tokens held by admitted requests (capacity = workers+queue)

	// beforeSolve, when set, runs inside the flight leader right before
	// the solver executes — the hook deterministic concurrency tests use
	// to hold a solve open while duplicates pile up behind it.
	beforeSolve func(flightKey string)
	// beforeWatchEvent, when set, runs inside a watch subscription's
	// state machine at the top of each event — the hook panic-isolation
	// tests use to crash one subscription on demand.
	beforeWatchEvent func(subID string, ev schedroute.WatchEvent)
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		cache:    newSolverCache(cfg.MaxSolvers),
		flights:  newFlightGroup(),
		metrics:  newMetrics(),
		watches:  newWatchRegistry(),
		tenants:  newTenantRegistry(),
		httpc:    &http.Client{},
		sem:      make(chan struct{}, cfg.Workers),
		stop:     make(chan struct{}),
		inflight: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
	}
	if cfg.WarmStartDir != "" {
		s.warm = newWarmStore(cfg.WarmStartDir, cfg.WarmStartMax)
	}
	if len(cfg.Peers) > 0 {
		s.ring = newShardRing(cfg.Peers, cfg.SelfURL)
	}
	if s.warm != nil || s.ring != nil {
		s.cache.hydrate = s.hydrateSolver
	}
	return s
}

// Metrics exposes the server's counters (used by tests and /metrics).
func (s *Server) Metrics() *Metrics { return s.metrics }

var errDraining = errkind.Mark(errors.New("service: shutting down"), errkind.ErrUnavailable)
var errQueueFull = errkind.Mark(errors.New("service: solve queue full"), errkind.ErrUnavailable)

// admit claims an in-flight token and a worker slot, queueing at most
// QueueDepth requests. Draining, queue overflow, and deadline all
// surface as ErrUnavailable (503); the caller must release() on nil
// error.
func (s *Server) admit(ctx context.Context) error {
	select {
	case <-s.stop:
		return errDraining
	default:
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		return errQueueFull
	}
	s.metrics.queued.Add(1)
	defer s.metrics.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-s.stop:
		<-s.inflight
		return errDraining
	case <-ctx.Done():
		<-s.inflight
		return errkind.Mark(fmt.Errorf("service: queued past deadline: %w", ctx.Err()), errkind.ErrUnavailable)
	}
}

func (s *Server) release() {
	<-s.sem
	<-s.inflight
}

// claimExtraWorkers grabs up to max additional worker slots without
// blocking, so a single admitted request that fans out internally (the
// sweep) stays inside the server-wide Workers bound: its own admission
// slot covers the first lane, and extra lanes exist only while the
// pool has idle capacity. The returned func releases every claimed
// slot.
func (s *Server) claimExtraWorkers(max int) (int, func()) {
	n := 0
	for n < max {
		select {
		case s.sem <- struct{}{}:
			n++
			continue
		default:
		}
		break
	}
	return n, func() {
		for i := 0; i < n; i++ {
			<-s.sem
		}
	}
}

// Shutdown begins draining: new and queued requests are refused with
// 503 while admitted solves run to completion, and every watch
// subscription delivers a terminal closing frame before its state
// machine exits. It returns when every in-flight request and watch
// state machine has finished or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	for _, done := range s.watches.closeAll("server draining") {
		select {
		case <-done:
		case <-ctx.Done():
			return fmt.Errorf("service: watch drain incomplete: %w", ctx.Err())
		}
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if len(s.inflight) == 0 && len(s.sem) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: drain incomplete: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/schedule", s.instrument("schedule", s.handleSchedule))
	mux.Handle("POST /v1/schedule:batch", s.instrument("schedule_batch", s.handleBatch))
	mux.Handle("/v1/repair", s.instrument("repair", s.handleRepair))
	mux.Handle("/v1/admit", s.instrument("admit", s.handleAdmit))
	mux.Handle("/v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.Handle("/v1/explore", s.instrument("explore", s.handleExplore))
	mux.Handle("GET /v1/snapshot/{id}", s.instrumentGet("snapshot", s.handleSnapshotGet))
	mux.Handle("POST /v1/watch", s.instrumentWatch("watch", s.handleWatchCreate))
	mux.Handle("GET /v1/watch/{id}", s.instrumentWatch("watch_attach", s.handleWatchAttach))
	mux.Handle("POST /v1/watch/{id}/events", s.instrumentWatch("watch_event", s.handleWatchEvent))
	mux.Handle("DELETE /v1/watch/{id}", s.instrumentWatch("watch_delete", s.handleWatchDelete))
	mux.HandleFunc("/v1/version", s.handleVersion)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// statusWriter records the response code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the watch endpoints can
// stream SSE frames through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint with method filtering, the per-request
// deadline, request logging, and latency/status metrics.
func (s *Server) instrument(name string, fn func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if r.Method != http.MethodPost {
			sw.Header().Set("Allow", http.MethodPost)
			http.Error(sw, "POST only", http.StatusMethodNotAllowed)
		} else {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			fn(sw, r.WithContext(ctx))
			cancel()
		}
		dur := time.Since(start)
		s.metrics.observeRequest(name, sw.code, dur)
		s.log.Info("request",
			"endpoint", name,
			"method", r.Method,
			"status", sw.code,
			"dur_ms", float64(dur.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// instrumentGet is instrument for GET endpoints: the same logging and
// latency/status metrics, but no body cap or solve deadline (the
// method filter lives in the mux pattern, and snapshot streaming is
// bounded by the encoder, not a solver).
func (s *Server) instrumentGet(name string, fn func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		dur := time.Since(start)
		s.metrics.observeRequest(name, sw.code, dur)
		s.log.Info("request",
			"endpoint", name,
			"method", r.Method,
			"status", sw.code,
			"dur_ms", float64(dur.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// handleSnapshotGet serves a live cache entry's solver-structure
// snapshot, so a peer replica (or anything else that can name the id)
// hydrates over HTTP instead of re-deriving. The {id} is
// snapshotID(StructureKey) — the raw key never travels in a URL. A
// replica holding no finished entry for the id answers 404 not_found;
// the caller falls back to cold derivation.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ent := s.cache.lookupBySnapshotID(id)
	if ent == nil {
		s.writeError(w, errkind.Mark(fmt.Errorf("snapshot: no cached structure for id %q", id), errkind.ErrNotFound), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := schedule.EncodeSolverSnapshot(w, ent.solver, ent.key); err != nil {
		// Headers are already written; the truncated body fails the
		// peer's decode, which treats it as a miss.
		s.log.Warn("snapshot: encode failed mid-stream", "id", id, "err", err)
	}
}

// hydrateSolver is the solver cache's hydration hook: before a cold
// structure derivation, try the warm-start directory, then the owning
// shard peer. Any snapshot that fails to decode — corrupt file, schema
// drift, a peer that solved a different problem under the same key —
// logs and falls through to cold derivation: hydration is an
// optimization, never a correctness gate.
func (s *Server) hydrateSolver(key string, b *schedroute.Built) (*schedule.Solver, bool) {
	p := b.ScheduleProblem()
	if s.warm != nil {
		sol, err := s.warm.load(key, p)
		if err != nil {
			s.log.Warn("warmstart: disk snapshot unusable", "key", key, "err", err)
		} else if sol != nil {
			s.metrics.warmstartHits.Add(1)
			return sol, true
		}
	}
	if s.ring != nil {
		if owner := s.ring.owner(key); owner != "" && owner != s.ring.self {
			if sol := s.fetchPeerSnapshot(owner, key, p); sol != nil {
				s.metrics.warmstartHits.Add(1)
				return sol, true
			}
		}
	}
	s.metrics.warmstartMisses.Add(1)
	return nil, false
}

// fetchPeerSnapshot pulls the owner's snapshot for key over HTTP. Any
// failure — peer down, 404, undecodable body — is a miss, never an
// error: the local replica just derives cold.
func (s *Server) fetchPeerSnapshot(owner, key string, p schedule.Problem) *schedule.Solver {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/snapshot/"+snapshotID(key), nil)
	if err != nil {
		return nil
	}
	resp, err := s.httpc.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	sol, err := schedule.DecodeSolverSnapshot(resp.Body, p, key)
	if err != nil {
		s.log.Warn("warmstart: peer snapshot unusable", "peer", owner, "err", err)
		return nil
	}
	return sol
}

// persistSnapshot write-behinds the entry's solver state to the
// warm-start store, once per entry, off the request path. Hydrated
// entries are skipped — their state came from a snapshot already — as
// are failed builds.
func (s *Server) persistSnapshot(ent *solverEntry) {
	if s.warm == nil || ent.solver == nil || ent.hydrated {
		return
	}
	ent.snapOnce.Do(func() {
		go func() {
			if err := s.warm.save(ent.key, ent.solver); err != nil {
				s.log.Warn("warmstart: persist failed", "key", ent.key, "err", err)
			}
		}()
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	select {
	case <-s.stop:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	default:
		fmt.Fprintln(w, `{"status":"ok"}`)
	}
}

// handleVersion reports which schema this daemon speaks, so clients can
// probe compatibility without sending a bad request.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, schedroute.Version())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteText(w, s.cache)
}

// decode parses a strict JSON request body. The body reader is already
// capped by MaxBytesReader, so an oversized payload surfaces here as a
// bad_input rejection instead of an unbounded buffer.
func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errkind.Mark(fmt.Errorf("decode request: body exceeds %d bytes", mbe.Limit), errkind.ErrBadInput)
		}
		return errkind.Mark(fmt.Errorf("decode request: %w", err), errkind.ErrBadInput)
	}
	return nil
}

// writeJSON emits a 200 response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but note it in the connection.
		return
	}
}

// writeError maps err through the errkind table into a status code and
// an ErrorResponse body. A non-nil rep rides along (the repair ladder's
// report on a 422).
func (s *Server) writeError(w http.ResponseWriter, err error, rep *schedroute.RepairResult) {
	s.writeErrorBody(w, err, rep, nil)
}

// writeErrorBody is the single exit for every non-2xx response: the
// {error, kind, detail} envelope is derived from the errkind table (so
// top-level errors, batch items and watch frames cannot drift), plus
// whichever structured report explains a 422.
func (s *Server) writeErrorBody(w http.ResponseWriter, err error, rep *schedroute.RepairResult, adm *schedroute.AdmitResult) {
	// A solve cut short by the per-request deadline or a dropped client
	// is a capacity condition, not a server bug: report 503, not 500.
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		err = errkind.Mark(err, errkind.ErrUnavailable)
	}
	status := errkind.HTTPStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := schedroute.ErrorResponse{
		SchemaVersion: schedroute.SchemaVersion,
		ErrorEnvelope: schedroute.NewErrorEnvelope(err),
		Repair:        rep,
		Admit:         adm,
	}
	json.NewEncoder(w).Encode(body)
}

// solved is the shared outcome of one coalesced solve. tauIn is the
// effective invocation period of THIS request — the cached Built's
// TauIn belongs to whichever request first created the structure entry
// and must not leak into responses or repairs.
type solved struct {
	built *schedroute.Built
	tauIn float64
	res   *schedule.Result
}

// flightKey identifies a coalescible solve: structure key + period +
// the solve options with the stats flags cleared (the service always
// collects stage times internally; whether the client wants them on the
// wire doesn't change the computation — see TestSolverStats). Traced
// and untraced requests never share a flight: only a traced flight
// runs with a recording span, so coalescing across the boundary would
// either lose a requested trace or record one nobody asked for.
func flightKey(p schedroute.Problem, tauIn float64, o schedroute.Options, traced bool) string {
	o.CollectStats = false
	o.Stats = false
	ob, _ := json.Marshal(o)
	return fmt.Sprintf("%s|tauin=%g|traced=%t|opts=%s", p.StructureKey(), tauIn, traced, ob)
}

// solve resolves the problem through the solver cache and runs one
// pipeline solve, coalescing identical concurrent requests. The
// returned Result is shared between coalesced callers and must be
// treated as read-only. reqSpan, when non-nil, receives a structure
// span (with the solver-cache outcome) and adopts the flight's solve
// tree; coalesced joiners adopt the same tree the leader recorded.
func (s *Server) solve(ctx context.Context, p schedroute.Problem, o schedroute.Options, reqSpan *trace.Span) (*solved, error) {
	opts, err := o.ToSchedule()
	if err != nil {
		return nil, err
	}
	opts.CollectStats = true

	cs := reqSpan.Start(SpanStructure)
	ent, hit := s.cache.getOrCreate(p.StructureKey(), func() (*schedroute.Built, error) {
		return schedroute.NewProblem(p)
	})
	cs.SetAttrs(trace.Bool("cache_hit", hit))
	cs.End()
	if ent.err != nil {
		return nil, ent.err
	}
	tauIn := p.TauIn
	if tauIn == 0 {
		tauIn = ent.built.Timing.TauC()
	}

	traced := reqSpan.Enabled()
	key := flightKey(p, tauIn, o, traced)
	v, err, shared := s.flights.Do(ctx, key, func(fctx context.Context) (any, error) {
		// fctx is detached from every individual request, so the solve
		// gets its own deadline: joiners must not lose a shared result
		// because the flight leader's client vanished or timed out first.
		fctx, cancel := context.WithTimeout(fctx, s.cfg.RequestTimeout)
		defer cancel()
		if s.beforeSolve != nil {
			s.beforeSolve(key)
		}
		fopts := opts
		if traced {
			// The leader records into a throwaway root owned by the
			// flight, not into any single request's span: the solve tree
			// lands on res.Trace, shared read-only by every joiner and
			// adopted under each request's own root below.
			fopts.Trace = trace.Start(SpanFlight)
		}
		res, err := ent.solver.Solve(fctx, tauIn, fopts)
		if err != nil {
			return nil, err
		}
		s.metrics.observeSolve(res.Stats)
		return &solved{built: ent.built, tauIn: tauIn, res: res}, nil
	})
	if shared {
		s.metrics.observeCoalesced()
	}
	if err != nil {
		return nil, err
	}
	sv := v.(*solved)
	s.persistSnapshot(ent)
	if traced {
		reqSpan.SetAttrs(trace.Bool("coalesced", shared))
		reqSpan.Adopt(sv.res.Trace)
	}
	return sv, nil
}

// requestSpan starts the per-request trace root when the client asked
// for ?debug=trace; every other request gets the nil no-op tracer, so
// the untraced path stays exactly the pre-trace code path.
func requestSpan(r *http.Request, endpoint string) *trace.Span {
	if r.URL.Query().Get("debug") != "trace" {
		return nil
	}
	return trace.Start(SpanRequest, trace.String("endpoint", endpoint))
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req schedroute.ScheduleRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	s.metrics.observeTenantRequest("schedule", schedroute.TenantOrDefault(req.Tenant).ID)
	// An admitted tenant is answered from its admitted standing — the
	// schedule it was granted at admission (repaired if the fabric has
	// degraded) — never a fresh solve.
	if ent, err := s.tenantFor(req.Tenant, req.Problem); err != nil {
		s.writeError(w, err, nil)
		return
	} else if ent != nil {
		out, err := s.tenantSchedule(ent, req.IncludeOmega, req.Options.WantStats())
		if err != nil {
			s.writeError(w, err, nil)
			return
		}
		writeJSON(w, out)
		return
	}
	if owner := s.shardOwner(r, req.Problem.StructureKey()); owner != "" {
		s.proxy(w, r, owner, req)
		return
	}
	root := requestSpan(r, "schedule")
	qs := root.Start(SpanQueueWait)
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	qs.End()
	defer s.release()
	sv, err := s.solve(r.Context(), req.Problem, req.Options, root)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	out, err := schedroute.NewScheduleResult(sv.built, sv.res, sv.tauIn, req.IncludeOmega, req.Options.WantStats())
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	root.End()
	out.Trace = schedroute.NewTraceEnvelope(root.Tree())
	writeJSON(w, out)
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req schedroute.RepairRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	if req.Fault.Empty() {
		s.writeError(w, errkind.Mark(errors.New("repair: fault must name at least one failed link or node"), errkind.ErrBadInput), nil)
		return
	}
	s.metrics.observeTenantRequest("repair", schedroute.TenantOrDefault(req.Tenant).ID)
	// An admitted tenant repairs from its admitted base inside its
	// admission-time link shares, through its own memoized session — a
	// stateless query that never moves the fabric or the other tenants.
	if ent, err := s.tenantFor(req.Tenant, req.Problem); err != nil {
		s.writeError(w, err, nil)
		return
	} else if ent != nil {
		s.tenantRepair(w, r, ent, req)
		return
	}
	if owner := s.shardOwner(r, req.Problem.StructureKey()); owner != "" {
		s.proxy(w, r, owner, req)
		return
	}
	root := requestSpan(r, "repair")
	qs := root.Start(SpanQueueWait)
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	qs.End()
	defer s.release()
	sv, err := s.solve(r.Context(), req.Problem, req.Options, root)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	if !sv.res.Feasible {
		s.writeError(w, errkind.Mark(
			fmt.Errorf("repair: base problem infeasible at stage %s; repair needs a feasible base schedule", sv.res.FailStage),
			errkind.ErrBadInput), nil)
		return
	}
	fs, err := req.Fault.Build(sv.built.Topology)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	opts, err := req.Options.ToSchedule()
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	// The repair ladder records directly under this request's root: a
	// repair is never coalesced, so there is no shared flight to adopt.
	opts.Trace = root
	rep, err := schedule.Repair(r.Context(), sv.built.ScheduleProblemAt(sv.tauIn), opts, sv.res, fs)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	if rerr := rep.Err(); rerr != nil {
		// The degradation ladder ran dry: an unprocessable problem, not a
		// malformed request — 422, with the full ladder report attached.
		wire, werr := schedroute.NewRepairResult(rep, false)
		if werr != nil {
			s.writeError(w, werr, nil)
			return
		}
		s.writeError(w, rerr, wire)
		return
	}
	out, err := schedroute.NewRepairResult(rep, req.IncludeOmega)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	root.End()
	out.Trace = schedroute.NewTraceEnvelope(root.Tree())
	writeJSON(w, out)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req schedroute.SweepRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	if owner := s.shardOwner(r, req.Problem.StructureKey()); owner != "" {
		s.proxy(w, r, owner, req)
		return
	}
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	defer s.release()
	out, err := s.sweep(r.Context(), req)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	writeJSON(w, out)
}
