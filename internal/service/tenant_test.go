package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"schedroute/internal/errkind"
	"schedroute/pkg/schedroute"
)

func tenantOf(id string, prio int, rate float64) *schedroute.Tenant {
	return &schedroute.Tenant{ID: id, Priority: prio, RateGuarantee: rate}
}

// TestAdmitEndpoint drives the full admission surface over HTTP: a
// fitting tenant is admitted reserved, its tenant-scoped /v1/schedule
// serves the admitted schedule byte-for-byte, a duplicate admission is
// rejected as bad input, and the per-tenant metrics appear on /metrics.
func TestAdmitEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	code, body := postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem:      testProblem(150),
		Tenant:       tenantOf("video", 5, 1),
		IncludeOmega: true,
	})
	if code != http.StatusOK {
		t.Fatalf("admit: status %d: %s", code, body)
	}
	var adm schedroute.AdmitResult
	if err := json.Unmarshal(body, &adm); err != nil {
		t.Fatal(err)
	}
	if !adm.Admitted || adm.Outcome != "reserved" || adm.TenantID != "video" {
		t.Fatalf("admit outcome: %+v", adm)
	}
	if adm.TauOut != 150 || adm.WindowScale != 1 {
		t.Fatalf("granted τout=%g scale=%g, want the requested 150 at scale 1", adm.TauOut, adm.WindowScale)
	}
	if adm.Schedule == nil || len(adm.Schedule.Omega) == 0 {
		t.Fatal("IncludeOmega did not embed the admitted schedule")
	}

	// The tenant-scoped schedule is the admitted standing, not a fresh
	// solve: the Ω bytes must match the admission response exactly.
	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem:      testProblem(150),
		Tenant:       tenantOf("video", 5, 1),
		IncludeOmega: true,
	})
	if code != http.StatusOK {
		t.Fatalf("tenant schedule: status %d: %s", code, body)
	}
	var sched schedroute.ScheduleResult
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sched.Omega, adm.Schedule.Omega) {
		t.Fatal("tenant-scoped schedule Ω differs from the admitted Ω")
	}

	// An admitted tenant asking about a different problem is a bad
	// request: its standing is per-problem.
	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem: schedroute.Problem{TFG: "chain:8", Topology: "cube:6", TauIn: 150},
		Tenant:  tenantOf("video", 5, 1),
	})
	if code != http.StatusBadRequest {
		t.Fatalf("mismatched tenant problem: status %d: %s", code, body)
	}

	// Duplicate admission of a live tenant id.
	code, body = postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: testProblem(150),
		Tenant:  tenantOf("video", 5, 1),
	})
	if code != http.StatusBadRequest {
		t.Fatalf("duplicate admit: status %d: %s", code, body)
	}

	// A tenant never admitted falls through to the plain solve path.
	code, _ = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem: testProblem(150),
		Tenant:  tenantOf("ghost", 0, 0),
	})
	if code != http.StatusOK {
		t.Fatalf("unadmitted tenant solve: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"srschedd_tenants 1",
		`srschedd_admissions_total{outcome="reserved"} 1`,
		`srschedd_tenant_requests_total{endpoint="admit",tenant="video"} 2`,
		`srschedd_tenant_requests_total{endpoint="schedule",tenant="video"} 2`,
		`srschedd_tenant_requests_total{endpoint="schedule",tenant="ghost"} 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if n := srv.metrics.Admissions("reserved"); n != 1 {
		t.Errorf("reserved admissions counter = %d, want 1", n)
	}
}

// TestAdmitDegradedRateAndRejection: the DVB workload at τin=50 is
// infeasible at full rate but admissible at τout=75 (factor 1.5), so a
// tenant guaranteeing 0.5 of its rate is admitted degraded-rate while
// one guaranteeing 0.8 is a 422 admission_rejected whose error body
// carries the shared envelope and the full admission report.
func TestAdmitDegradedRateAndRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: testProblem(50),
		Tenant:  tenantOf("elastic", 0, 0.5),
	})
	if code != http.StatusOK {
		t.Fatalf("elastic admit: status %d: %s", code, body)
	}
	var adm schedroute.AdmitResult
	if err := json.Unmarshal(body, &adm); err != nil {
		t.Fatal(err)
	}
	if adm.Outcome != "degraded-rate" || adm.TauOut != 75 {
		t.Fatalf("elastic outcome %q τout=%g, want degraded-rate at 75", adm.Outcome, adm.TauOut)
	}

	// The strict tenant demands 0.8 of its rate; 1/1.5 < 0.8, so the
	// rate rung cannot go far enough and the set has no one to evict.
	code, body = postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: testProblem(50),
		Tenant:  tenantOf("strict", 0, 0.8),
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("strict admit: status %d: %s", code, body)
	}
	var er schedroute.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "admission_rejected" {
		t.Fatalf("rejection kind %q, want admission_rejected", er.Kind)
	}
	c, _ := errkind.Classify(errkind.ErrAdmissionRejected)
	if er.Detail != c.Detail {
		t.Fatalf("rejection detail %q drifted from table %q", er.Detail, c.Detail)
	}
	if er.Admit == nil || er.Admit.Admitted || er.Admit.Outcome != "rejected" || er.Admit.Reason == "" {
		t.Fatalf("rejection report: %+v", er.Admit)
	}
}

// TestAdmissionLeavesAdmittedOmegaUntouched is the service-level
// invariant check: whatever a later admission attempt does — admitted
// or rejected — an already-admitted tenant's Ω bytes never move.
func TestAdmissionLeavesAdmittedOmegaUntouched(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem:      testProblem(150),
		Tenant:       tenantOf("anchor", 5, 1),
		IncludeOmega: true,
	})
	if code != http.StatusOK {
		t.Fatalf("anchor admit: status %d: %s", code, body)
	}
	var adm schedroute.AdmitResult
	if err := json.Unmarshal(body, &adm); err != nil {
		t.Fatal(err)
	}
	before := adm.Schedule.Omega

	// A second tenant tries the same fabric at equal priority: whether
	// it fits the residual or not, it may not perturb the anchor.
	code, body = postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: testProblem(250),
		Tenant:  tenantOf("later", 5, 0),
	})
	if code != http.StatusOK && code != http.StatusUnprocessableEntity {
		t.Fatalf("later admit: status %d: %s", code, body)
	}

	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem:      testProblem(150),
		Tenant:       tenantOf("anchor", 5, 1),
		IncludeOmega: true,
	})
	if code != http.StatusOK {
		t.Fatalf("anchor schedule: status %d: %s", code, body)
	}
	var sched schedroute.ScheduleResult
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sched.Omega, before) {
		t.Fatal("anchor's Ω moved after a later admission attempt")
	}
}

// TestBatchGroupsByTenant: two batch items naming the identical
// problem but different tenants must not share one result — the
// admitted tenant's item is its admitted standing (granted τout 75),
// the default item is a plain solve (infeasible at τin=50).
func TestBatchGroupsByTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: testProblem(50),
		Tenant:  tenantOf("elastic", 0, 0.5),
	})
	if code != http.StatusOK {
		t.Fatalf("admit: status %d: %s", code, body)
	}

	code, body = postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{
		Items: []schedroute.ScheduleRequest{
			{Problem: testProblem(50), Tenant: tenantOf("elastic", 0, 0.5)},
			{Problem: testProblem(50)},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var out schedroute.BatchScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 {
		t.Fatalf("batch returned %d items", len(out.Items))
	}
	tenantItem, plain := out.Items[0].Result, out.Items[1].Result
	if tenantItem == nil || plain == nil {
		t.Fatalf("batch items errored: %+v", out.Items)
	}
	if !tenantItem.Feasible || tenantItem.TauIn != 75 {
		t.Fatalf("tenant item: feasible=%t τ=%g, want the admitted standing at 75", tenantItem.Feasible, tenantItem.TauIn)
	}
	if plain.Feasible {
		t.Fatal("default-tenant item should be the plain (infeasible) solve at τin=50")
	}
}

// TestBatchItemErrorEnvelope: a failed batch item carries the same
// {error, kind, detail} triple its standalone error body would.
func TestBatchItemErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/schedule:batch", schedroute.BatchScheduleRequest{
		Items: []schedroute.ScheduleRequest{
			{Problem: schedroute.Problem{TFG: "dvb:4", Topology: "not-a-topology"}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var out schedroute.BatchScheduleResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	it := out.Items[0]
	c, _ := errkind.Classify(errkind.ErrBadInput)
	if it.Kind != c.Name || it.Detail != c.Detail || it.Error == "" {
		t.Fatalf("batch item envelope drifted from table: %+v vs %+v", it, c)
	}
}

// TestTenantRepairScoped: a tenant-scoped /v1/repair runs the ladder
// from the tenant's admitted base and answers without disturbing the
// tenant's admitted schedule.
func TestTenantRepairScoped(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem:      testProblem(150),
		Tenant:       tenantOf("video", 5, 0),
		IncludeOmega: true,
	})
	if code != http.StatusOK {
		t.Fatalf("admit: status %d: %s", code, body)
	}
	var adm schedroute.AdmitResult
	if err := json.Unmarshal(body, &adm); err != nil {
		t.Fatal(err)
	}

	code, body = postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
		Problem: testProblem(150),
		Tenant:  tenantOf("video", 5, 0),
		Fault:   schedroute.FaultSpec{Links: []string{"0-1"}},
	})
	if code != http.StatusOK {
		t.Fatalf("tenant repair: status %d: %s", code, body)
	}
	var rep schedroute.RepairResult
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Outcome == "" || rep.Outcome == "infeasible" {
		t.Fatalf("tenant repair outcome %q", rep.Outcome)
	}

	// The repair query is stateless: the tenant's schedule is untouched.
	code, body = postJSON(t, ts, "/v1/schedule", schedroute.ScheduleRequest{
		Problem:      testProblem(150),
		Tenant:       tenantOf("video", 5, 0),
		IncludeOmega: true,
	})
	if code != http.StatusOK {
		t.Fatalf("schedule after repair: status %d: %s", code, body)
	}
	var sched schedroute.ScheduleResult
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sched.Omega, adm.Schedule.Omega) {
		t.Fatal("a stateless repair query moved the tenant's Ω")
	}
}

// TestAdmitFabricBandwidthPinned: the first admission fixes the
// fabric's bandwidth; a tenant naming a different bandwidth for the
// same topology is a bad request, not a silently different machine.
func TestAdmitFabricBandwidthPinned(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: testProblem(150),
		Tenant:  tenantOf("a", 0, 0),
	})
	if code != http.StatusOK {
		t.Fatalf("first admit: status %d: %s", code, body)
	}
	p := testProblem(150)
	p.Bandwidth = 128
	code, body = postJSON(t, ts, "/v1/admit", schedroute.AdmitRequest{
		Problem: p,
		Tenant:  tenantOf("b", 0, 0),
	})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "bandwidth") {
		t.Fatalf("mismatched bandwidth: status %d: %s", code, body)
	}
}

// TestWatchErrorFrameEnvelope: a rejected watch event's error frame
// carries the shared envelope with the bad_input classification.
func TestWatchErrorFrameEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c, hello := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer c.Close()

	// Repairing a link that never failed is a rejected event.
	code, body := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{
		Type: schedroute.WatchEventRepaired, Links: []string{"0-1"},
	})
	if code != http.StatusOK {
		t.Fatalf("event: status %d: %s", code, body)
	}
	frame, _ := c.nextPayload(t)
	if frame.Type != schedroute.WatchFrameError {
		t.Fatalf("frame type %q, want error", frame.Type)
	}
	if frame.Err == nil || frame.Err.Kind != "bad_input" {
		t.Fatalf("error frame envelope: %+v", frame.Err)
	}
	cls, _ := errkind.Classify(errkind.ErrBadInput)
	if frame.Err.Detail != cls.Detail {
		t.Fatalf("error frame detail %q drifted from table %q", frame.Err.Detail, cls.Detail)
	}
}
