package service

import "sync"

// flightCall is one in-flight (or just-completed) coalesced execution.
type flightCall struct {
	wg      sync.WaitGroup
	val     any
	err     error
	joiners int64
}

// flightGroup coalesces duplicate concurrent work: Do with a key that
// is already in flight waits for the running call and shares its
// result instead of executing fn again. Unlike a cache, a completed
// call is forgotten immediately — only concurrency is deduplicated,
// so repeated sequential requests still observe fresh execution (and
// the solver cache underneath provides the durable reuse).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flightCall{}}
}

// Do executes fn under key, coalescing with an identical in-flight
// call. shared reports whether this caller joined an existing call
// rather than executing fn itself.
func (g *flightGroup) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.joiners++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}

// waiters reports how many callers are currently waiting on the
// in-flight call for key (0 when the key is idle). Test hooks use it
// to release a blocked leader only after every duplicate has joined.
func (g *flightGroup) waiters(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.joiners
	}
	return 0
}
