package service

import (
	"context"
	"sync"
)

// flightCall is one in-flight (or just-completed) coalesced execution.
type flightCall struct {
	done    chan struct{} // closed after val/err are set
	val     any
	err     error
	joiners int64 // callers that joined after the leader (metrics/tests)
	waiting int   // callers still waiting; the run is canceled at zero
	cancel  context.CancelFunc
}

// flightGroup coalesces duplicate concurrent work: Do with a key that
// is already in flight waits for the running call and shares its
// result instead of executing fn again. The execution runs on its own
// context, detached from any single caller's cancellation: the
// leader's client disconnecting or hitting its deadline does not kill
// the solve for the joiners still waiting on it. Only when every
// coalesced caller has abandoned the call is the shared context
// canceled. Unlike a cache, a completed call is forgotten immediately
// — only concurrency is deduplicated, so repeated sequential requests
// still observe fresh execution (and the solver cache underneath
// provides the durable reuse).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flightCall{}}
}

// Do executes fn under key, coalescing with an identical in-flight
// call. fn receives a context carrying ctx's values but not its
// cancellation or deadline; it is canceled once every coalesced caller
// has gone away. Each caller waits no longer than its own ctx allows —
// an expiring caller gets its ctx.Err() while the shared run continues
// for the others. shared reports whether this caller joined an
// existing call rather than starting fn itself.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.joiners++
		c.waiting++
		g.mu.Unlock()
		return g.wait(ctx, c, true)
	}
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall{done: make(chan struct{}), waiting: 1, cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		v, err := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = v, err
		delete(g.m, key)
		g.mu.Unlock()
		cancel()
		close(c.done)
	}()
	return g.wait(ctx, c, false)
}

// wait blocks until the call completes or the caller's own ctx ends.
// An abandoning caller decrements the waiter count and cancels the
// shared run when it was the last one left.
func (g *flightGroup) wait(ctx context.Context, c *flightCall, shared bool) (any, error, bool) {
	select {
	case <-c.done:
		return c.val, c.err, shared
	case <-ctx.Done():
		g.mu.Lock()
		c.waiting--
		last := c.waiting == 0
		g.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, ctx.Err(), shared
	}
}

// waiters reports how many callers are currently waiting on the
// in-flight call for key (0 when the key is idle). Test hooks use it
// to release a blocked leader only after every duplicate has joined.
func (g *flightGroup) waiters(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.joiners
	}
	return 0
}
