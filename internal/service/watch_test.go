package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"schedroute/internal/faults"
	"schedroute/internal/topology"
	"schedroute/pkg/schedroute"
)

// ---- raw SSE test helpers ------------------------------------------

// sseConn is a raw streaming connection to a watch endpoint, for tests
// that need to control attach/resume headers directly.
type sseConn struct {
	resp *http.Response
	br   *bufio.Reader
}

func (c *sseConn) Close() { c.resp.Body.Close() }

// next reads one SSE event and returns its decoded frame plus whether
// an id line was present (replayable frames carry one, heartbeat/gap
// frames must not).
func (c *sseConn) next(t *testing.T) (schedroute.WatchFrame, bool) {
	t.Helper()
	var f schedroute.WatchFrame
	var data []byte
	hasID := false
	seen := false
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !seen {
				continue
			}
			if err := json.Unmarshal(data, &f); err != nil {
				t.Fatalf("bad frame %q: %v", data, err)
			}
			return f, hasID
		case strings.HasPrefix(line, "id:"):
			hasID = true
			seen = true
		case strings.HasPrefix(line, "data:"):
			seen = true
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case strings.HasPrefix(line, "event:"):
			seen = true
		}
	}
}

// nextPayload skips heartbeats and returns the next payload frame.
func (c *sseConn) nextPayload(t *testing.T) (schedroute.WatchFrame, bool) {
	t.Helper()
	for {
		f, hasID := c.next(t)
		if f.Type != schedroute.WatchFrameHeartbeat {
			return f, hasID
		}
	}
}

// openWatch creates a subscription over raw HTTP and returns the
// stream plus the hello frame.
func openWatch(t *testing.T, ts *httptest.Server, req schedroute.WatchRequest) (*sseConn, schedroute.WatchFrame) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch create: status %d: %s", resp.StatusCode, raw)
	}
	c := &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
	hello, hasID := c.next(t)
	if hello.Type != schedroute.WatchFrameHello || hello.SubID == "" || !hasID {
		t.Fatalf("first frame = %+v (id line: %v), want hello with sub_id and id", hello, hasID)
	}
	return c, hello
}

// attachWatch reopens a subscription stream with an optional
// Last-Event-ID resume header.
func attachWatch(t *testing.T, ts *httptest.Server, id string, lastEventID int64) *sseConn {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/watch/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch attach: status %d: %s", resp.StatusCode, raw)
	}
	return &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
}

// sendEvent pushes one event and returns the response status and body.
func sendEvent(t *testing.T, ts *httptest.Server, id string, ev schedroute.WatchEvent) (int, []byte) {
	t.Helper()
	return postJSON(t, ts, "/v1/watch/"+id+"/events", ev)
}

// linkSpec renders a link as the "u-v" pair syntax events use.
func linkSpec(top *topology.Topology, l topology.LinkID) string {
	lk := top.Link(l)
	return fmt.Sprintf("%d-%d", lk.A, lk.B)
}

// repairWire normalizes a RepairResult for byte comparison.
func repairWire(t *testing.T, rr *schedroute.RepairResult) []byte {
	t.Helper()
	b, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---- tests ---------------------------------------------------------

// TestWatchChaosReplayMatchesRepair is the streaming acceptance test:
// a seeded fault scenario replayed as watch events — with an injected
// transport kill mid-stream and a WatchClient reconnecting via
// Last-Event-ID — must deliver, at every fault state, a repaired
// schedule byte-identical to what POST /v1/repair returns for the same
// problem and cumulative fault set, with single-link fault states
// never running a full pipeline solve, and no goroutine leaks after
// the subscription closes.
func TestWatchChaosReplayMatchesRepair(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	before := runtime.NumGoroutine()

	p := testProblem(150)
	built, err := schedroute.NewProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	top := built.Topology

	// A seeded link-only transient scenario from the faults generator,
	// replayed delta by delta.
	tr := faults.RandomTrace(top, 11, faults.RandomOptions{Events: 4, Horizon: 8, RepairFraction: 0.6})
	deltas, err := tr.Deltas(16)
	if err != nil {
		t.Fatal(err)
	}

	wc := &schedroute.WatchClient{BaseURL: ts.URL, Backoff: 10 * time.Millisecond, MaxRetries: 8, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := wc.Subscribe(ctx, schedroute.WatchRequest{Problem: p, IncludeOmega: true})
	if err != nil {
		t.Fatal(err)
	}
	hello := <-st.Frames
	if hello.Type != schedroute.WatchFrameHello || hello.Schedule == nil || !hello.Schedule.Feasible {
		t.Fatalf("hello = %+v, want feasible base schedule", hello)
	}

	// await reads frames (skipping heartbeats and gaps) until the frame
	// answering the given event arrives.
	await := func(eventSeq int64) schedroute.WatchFrame {
		t.Helper()
		for f := range st.Frames {
			if f.Type == schedroute.WatchFrameHeartbeat || f.Type == schedroute.WatchFrameGap {
				continue
			}
			if f.EventSeq == eventSeq {
				return f
			}
		}
		t.Fatalf("stream ended before event %d answered: %v", eventSeq, st.Err())
		return schedroute.WatchFrame{}
	}

	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	states := 0
	killed := false
	for _, d := range deltas {
		// One fault event per delta for the new failures, one
		// fault-repaired event for the recoveries — skipping elements
		// whose state would not change (RandomTrace may revisit a link).
		type step struct {
			typ   string
			links []topology.LinkID
			nodes []topology.NodeID
		}
		var steps []step
		var fl []topology.LinkID
		var fn []topology.NodeID
		for _, e := range d.Fail {
			if e.IsNode && !fs.NodeFailed(e.Node) {
				fn = append(fn, e.Node)
			} else if !e.IsNode && !fs.LinkFailed(e.Link) {
				fl = append(fl, e.Link)
			}
		}
		if len(fl)+len(fn) > 0 {
			steps = append(steps, step{typ: schedroute.WatchEventFault, links: fl, nodes: fn})
		}
		var rl []topology.LinkID
		var rn []topology.NodeID
		for _, e := range d.Repair {
			if e.IsNode && fs.NodeFailed(e.Node) {
				rn = append(rn, e.Node)
			} else if !e.IsNode && fs.LinkFailed(e.Link) {
				rl = append(rl, e.Link)
			}
		}
		if len(rl)+len(rn) > 0 {
			steps = append(steps, step{typ: schedroute.WatchEventRepaired, links: rl, nodes: rn})
		}

		for _, stp := range steps {
			ev := schedroute.WatchEvent{Type: stp.typ}
			for _, l := range stp.links {
				ev.Links = append(ev.Links, linkSpec(top, l))
			}
			for _, n := range stp.nodes {
				ev.Nodes = append(ev.Nodes, int(n))
			}
			ack, err := wc.Send(ctx, st.ID, ev)
			if err != nil {
				t.Fatalf("send %v: %v", ev, err)
			}
			// Mirror the event into the test's own fault model.
			for _, l := range stp.links {
				if stp.typ == schedroute.WatchEventFault {
					fs.FailLink(l)
				} else {
					fs.RepairLink(l)
				}
			}
			for _, n := range stp.nodes {
				if stp.typ == schedroute.WatchEventFault {
					fs.FailNode(n)
				} else {
					fs.RepairNode(n)
				}
			}

			f := await(ack.EventSeq)
			if f.State != fs.String() {
				t.Fatalf("event %d: frame state %q, want %q", ack.EventSeq, f.State, fs.String())
			}

			// The cold path: /v1/repair at the same cumulative state.
			spec := schedroute.FaultSpec{}
			for _, l := range fs.FailedLinks() {
				spec.Links = append(spec.Links, linkSpec(top, l))
			}
			for _, n := range fs.FailedNodes() {
				spec.Nodes = append(spec.Nodes, int(n))
			}

			if fs.Empty() {
				// /v1/repair rejects empty fault sets; the stream instead
				// reports the base schedule as unaffected.
				if f.Type != schedroute.WatchFrameSchedule || f.Repair == nil || f.Repair.Outcome != "unaffected" {
					t.Fatalf("empty state frame = %+v, want unaffected schedule", f)
				}
				states++
				continue
			}

			code, body := postJSON(t, ts, "/v1/repair", schedroute.RepairRequest{
				Problem: p, Fault: spec, IncludeOmega: true,
			})
			switch f.Type {
			case schedroute.WatchFrameSchedule:
				if code != http.StatusOK {
					t.Fatalf("state %s: frame repaired but /v1/repair says %d: %s", fs, code, body)
				}
				var cold schedroute.RepairResult
				if err := json.Unmarshal(body, &cold); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(repairWire(t, f.Repair), repairWire(t, &cold)) {
					t.Fatalf("state %s: watch frame diverges from /v1/repair:\n%s\nvs\n%s",
						fs, repairWire(t, f.Repair), repairWire(t, &cold))
				}
			case schedroute.WatchFrameError:
				if code != http.StatusUnprocessableEntity {
					t.Fatalf("state %s: frame infeasible but /v1/repair says %d: %s", fs, code, body)
				}
				var er schedroute.ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil {
					t.Fatal(err)
				}
				if er.Repair == nil || f.Repair == nil ||
					!bytes.Equal(repairWire(t, f.Repair), repairWire(t, er.Repair)) {
					t.Fatalf("state %s: infeasible reports diverge", fs)
				}
			default:
				t.Fatalf("state %s: unexpected frame type %q", fs, f.Type)
			}
			states++
		}

		// Mid-scenario: kill every client transport once. The WatchClient
		// must reconnect with Last-Event-ID and the stream must carry on
		// with no lost or duplicated frames.
		if !killed && states >= 1 {
			killed = true
			ts.CloseClientConnections()
		}
	}
	if states < 3 {
		t.Fatalf("scenario exercised only %d fault states", states)
	}
	if !killed {
		t.Fatal("disconnect injection never ran")
	}

	// Single-link fault states must have been absorbed by the repair
	// session without a full pipeline solve.
	sub := srv.watches.get(st.ID)
	if sub == nil {
		t.Fatal("subscription vanished while stream open")
	}
	stats := sub.Session().Stats()
	if stats.Applies == 0 || stats.Incremental == 0 {
		t.Fatalf("session stats %+v: want incremental repairs observed", stats)
	}
	if stats.FullSolves != 0 {
		t.Fatalf("session stats %+v: link-only faults on this fixture must not run full solves", stats)
	}

	// Clean close: the client receives a terminal closing frame and the
	// stream drains; then the server's goroutines wind down.
	if err := wc.Close(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	sawClosing := false
	for f := range st.Frames {
		if f.Type == schedroute.WatchFrameClosing && f.Terminal {
			sawClosing = true
		}
	}
	if !sawClosing {
		t.Fatalf("stream ended without a closing frame: %v", st.Err())
	}
	ts.CloseClientConnections()
	waitGoroutines(t, before)
}

// waitGoroutines polls until the goroutine count returns to the
// pre-test level (with slack for the HTTP server's own churn).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchResumeReplaysIdenticalBytes: a resumed consumer replays
// exactly the frames after its Last-Event-ID, with payloads
// byte-identical to the live delivery (the replay ring serves
// pre-marshaled frames).
func TestWatchResumeReplaysIdenticalBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c, hello := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer c.Close()

	built, err := schedroute.NewProblem(testProblem(150))
	if err != nil {
		t.Fatal(err)
	}
	spec := linkSpec(built.Topology, 0)

	var live []schedroute.WatchFrame
	for i := 0; i < 2; i++ {
		typ := schedroute.WatchEventFault
		if i == 1 {
			typ = schedroute.WatchEventRepaired
		}
		if code, body := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: typ, Links: []string{spec}}); code != http.StatusOK {
			t.Fatalf("event %d: status %d: %s", i, code, body)
		}
		f, hasID := c.nextPayload(t)
		if !hasID {
			t.Fatalf("frame %+v delivered without an SSE id line", f)
		}
		live = append(live, f)
	}

	// Resume after the hello: both event frames must replay, same seq,
	// same bytes.
	rc := attachWatch(t, ts, hello.SubID, hello.Seq)
	defer rc.Close()
	for i, want := range live {
		got, hasID := rc.nextPayload(t)
		if !hasID {
			t.Fatalf("replayed frame %d has no id line", i)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("replayed frame %d differs:\n%s\nvs\n%s", i, gb, wb)
		}
	}

	// Resume past the newest frame: nothing to replay; a heartbeat-only
	// stream is fine, so just assert the attach itself succeeded (the
	// handler would have 404'd or 400'd otherwise).
	rc2 := attachWatch(t, ts, hello.SubID, live[len(live)-1].Seq)
	rc2.Close()
}

// TestWatchSlowConsumerCoalesced: a consumer resuming from a frame
// that has been evicted from the bounded replay ring is coalesced to
// the latest fault state — one gap frame (no SSE id) plus the newest
// frame — instead of stalling the subscription.
func TestWatchSlowConsumerCoalesced(t *testing.T) {
	srv, ts := newTestServer(t, Config{WatchRing: 4})
	c, hello := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer c.Close()

	built, err := schedroute.NewProblem(testProblem(150))
	if err != nil {
		t.Fatal(err)
	}
	spec := linkSpec(built.Topology, 0)

	// Alternate fault / repaired on one link: 8 frames, ring keeps 4.
	var last schedroute.WatchFrame
	for i := 0; i < 8; i++ {
		typ := schedroute.WatchEventFault
		if i%2 == 1 {
			typ = schedroute.WatchEventRepaired
		}
		if code, body := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: typ, Links: []string{spec}}); code != http.StatusOK {
			t.Fatalf("event %d: status %d: %s", i, code, body)
		}
		last, _ = c.nextPayload(t)
	}

	// Resume from the hello — long since evicted.
	rc := attachWatch(t, ts, hello.SubID, hello.Seq)
	defer rc.Close()
	gap, hasID := rc.nextPayload(t)
	if gap.Type != schedroute.WatchFrameGap || gap.Skipped == 0 {
		t.Fatalf("first resumed frame = %+v, want gap with skipped > 0", gap)
	}
	if hasID {
		t.Fatal("gap frame carried an SSE id; it must not disturb Last-Event-ID resume")
	}
	newest, hasID := rc.nextPayload(t)
	if !hasID || newest.Seq != last.Seq || newest.State != last.State {
		t.Fatalf("coalesced frame = %+v, want newest frame seq %d state %q", newest, last.Seq, last.State)
	}
	if srv.metrics.WatchDropped() == 0 {
		t.Error("dropped-frame metric never incremented")
	}
}

// TestWatchEventValidationAndOverflow: malformed events are rejected
// with 400 before touching the queue; repairing a healthy link is a
// non-terminal error frame; unknown subscriptions 404; and a full
// bounded queue sheds events with 503 instead of blocking.
func TestWatchEventValidationAndOverflow(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, WatchEventQueue: 1})
	c, hello := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer c.Close()

	built, err := schedroute.NewProblem(testProblem(150))
	if err != nil {
		t.Fatal(err)
	}
	spec := linkSpec(built.Topology, 0)

	for _, tc := range []struct {
		name string
		ev   schedroute.WatchEvent
	}{
		{"no type", schedroute.WatchEvent{}},
		{"unknown type", schedroute.WatchEvent{Type: "flood"}},
		{"fault without elements", schedroute.WatchEvent{Type: schedroute.WatchEventFault}},
		{"fault with tau_in", schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{spec}, TauIn: 99}},
		{"tau_in negative", schedroute.WatchEvent{Type: schedroute.WatchEventTauIn, TauIn: -5}},
		{"tau_in with links", schedroute.WatchEvent{Type: schedroute.WatchEventTauIn, TauIn: 200, Links: []string{spec}}},
		{"unresolvable link", schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{"0-63"}}},
		{"node out of range", schedroute.WatchEvent{Type: schedroute.WatchEventFault, Nodes: []int{4096}}},
	} {
		code, body := sendEvent(t, ts, hello.SubID, tc.ev)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
		}
	}

	// Unknown subscription: 404 with the not_found kind.
	code, body := postJSON(t, ts, "/v1/watch/nope/events",
		schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{spec}})
	if code != http.StatusNotFound {
		t.Fatalf("unknown sub: status %d: %s", code, body)
	}
	var er schedroute.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "not_found" {
		t.Fatalf("unknown sub body: %s (err %v)", body, err)
	}

	// Repairing a healthy link: accepted (it is well-formed) but
	// answered with a non-terminal error frame.
	ack, code := schedroute.WatchEventAck{}, 0
	code, body = sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventRepaired, Links: []string{spec}})
	if code != http.StatusOK {
		t.Fatalf("repair-of-healthy rejected at enqueue: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	f, _ := c.nextPayload(t)
	if f.Type != schedroute.WatchFrameError || f.Terminal || f.EventSeq != ack.EventSeq {
		t.Fatalf("frame = %+v, want non-terminal error for event %d", f, ack.EventSeq)
	}

	// Queue overflow: occupy the single worker slot so the state
	// machine blocks before its repair, then fill the 1-deep queue.
	srv.sem <- struct{}{}
	if code, body = sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{spec}}); code != http.StatusOK {
		t.Fatalf("first event: %d: %s", code, body)
	}
	// Wait until the state machine has dequeued it (and is blocked on
	// the worker slot), so the next event deterministically fills the
	// queue rather than racing the dequeue.
	sub := srv.watches.get(hello.SubID)
	deadline := time.Now().Add(5 * time.Second)
	for len(sub.events) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("state machine never dequeued the first event")
		}
		time.Sleep(time.Millisecond)
	}
	if code, body = sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventRepaired, Links: []string{spec}}); code != http.StatusOK {
		t.Fatalf("queued event: %d: %s", code, body)
	}
	code, body = sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{spec}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow event: status %d, want 503: %s", code, body)
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "unavailable" {
		t.Fatalf("overflow body: %s (err %v)", body, err)
	}
	<-srv.sem // release the worker; the stream drains normally
	for i := 0; i < 2; i++ {
		if f, _ := c.nextPayload(t); f.Terminal {
			t.Fatalf("stream terminated draining the backlog: %+v", f)
		}
	}
}

// TestWatchPanicIsolation: a panic inside one subscription's state
// machine produces a terminal error frame on that stream only; other
// subscriptions and the server keep working.
func TestWatchPanicIsolation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	cA, helloA := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer cA.Close()
	cB, helloB := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer cB.Close()

	srv.beforeWatchEvent = func(subID string, ev schedroute.WatchEvent) {
		if subID == helloA.SubID {
			panic("injected watch panic")
		}
	}

	built, err := schedroute.NewProblem(testProblem(150))
	if err != nil {
		t.Fatal(err)
	}
	spec := linkSpec(built.Topology, 0)
	ev := schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{spec}}

	if code, body := sendEvent(t, ts, helloA.SubID, ev); code != http.StatusOK {
		t.Fatalf("event to A: %d: %s", code, body)
	}
	f, _ := cA.nextPayload(t)
	if f.Type != schedroute.WatchFrameError || !f.Terminal || !strings.Contains(f.Reason, "panic") {
		t.Fatalf("A's frame = %+v, want terminal panic error", f)
	}
	if got := srv.metrics.WatchPanics(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The dead subscription is unregistered; events to it 404 or 503.
	deadline := time.Now().Add(5 * time.Second)
	for srv.watches.get(helloA.SubID) != nil {
		if time.Now().After(deadline) {
			t.Fatal("panicked subscription never unregistered")
		}
		time.Sleep(time.Millisecond)
	}

	// Subscription B is unaffected.
	if code, body := sendEvent(t, ts, helloB.SubID, ev); code != http.StatusOK {
		t.Fatalf("event to B: %d: %s", code, body)
	}
	if f, _ := cB.nextPayload(t); f.Type != schedroute.WatchFrameSchedule {
		t.Fatalf("B's frame = %+v, want repaired schedule", f)
	}
}

// TestWatchShutdownDrain: Server.Shutdown delivers a terminal closing
// frame to every open subscription, waits for their state machines,
// and refuses new subscriptions with 503.
func TestWatchShutdownDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	c, _ := openWatch(t, ts, schedroute.WatchRequest{Problem: testProblem(150)})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	f, _ := c.nextPayload(t)
	if f.Type != schedroute.WatchFrameClosing || !f.Terminal || !strings.Contains(f.Reason, "draining") {
		t.Fatalf("frame = %+v, want terminal draining closing frame", f)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	code, body := postJSON(t, ts, "/v1/watch", schedroute.WatchRequest{Problem: testProblem(150)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain create: status %d, want 503: %s", code, body)
	}
	if n := srv.watches.count(); n != 0 {
		t.Errorf("%d subscriptions survived the drain", n)
	}
}

// TestWatchSubscriptionChurn exercises concurrent subscription
// create/event/close cycles — the race-detector workout `make race`
// runs — plus the MaxWatchSubs admission cap.
func TestWatchSubscriptionChurn(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	built, err := schedroute.NewProblem(testProblem(150))
	if err != nil {
		t.Fatal(err)
	}
	spec := linkSpec(built.Topology, 0)

	const churners = 6
	var wg sync.WaitGroup
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			wc := &schedroute.WatchClient{BaseURL: ts.URL, Backoff: 5 * time.Millisecond, Seed: int64(i + 1)}
			st, err := wc.Subscribe(ctx, schedroute.WatchRequest{Problem: testProblem(150)})
			if err != nil {
				t.Errorf("churner %d: subscribe: %v", i, err)
				return
			}
			<-st.Frames // hello
			for j := 0; j < 2; j++ {
				typ := schedroute.WatchEventFault
				if j == 1 {
					typ = schedroute.WatchEventRepaired
				}
				ack, err := wc.Send(ctx, st.ID, schedroute.WatchEvent{Type: typ, Links: []string{spec}})
				if err != nil {
					t.Errorf("churner %d: send: %v", i, err)
					return
				}
				for f := range st.Frames {
					if f.EventSeq == ack.EventSeq {
						break
					}
				}
			}
			if err := wc.Close(ctx, st.ID); err != nil {
				t.Errorf("churner %d: close: %v", i, err)
			}
			for range st.Frames {
			}
		}(i)
	}
	wg.Wait()

	if n := srv.watches.count(); n != 0 {
		t.Errorf("%d subscriptions leaked after churn", n)
	}

	// Admission cap: with every slot filled, the next create is shed.
	srvCap, tsCap := newTestServer(t, Config{MaxWatchSubs: 1})
	c, _ := openWatch(t, tsCap, schedroute.WatchRequest{Problem: testProblem(150)})
	defer c.Close()
	code, body := postJSON(t, tsCap, "/v1/watch", schedroute.WatchRequest{Problem: testProblem(150)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap create: status %d, want 503: %s", code, body)
	}
	if n := srvCap.watches.count(); n != 1 {
		t.Errorf("registry count = %d, want 1", n)
	}
}

// TestWatchTauInRebaseAndTrace: a tau_in event re-solves the base
// schedule through the pinned solver and re-applies the fault state;
// an infeasible period is rejected without corrupting the stream; and
// ?debug=trace subscriptions attach watch.event span trees with the
// repair ladder under watch.repair.
func TestWatchTauInRebaseAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body, err := json.Marshal(schedroute.WatchRequest{Problem: testProblem(150)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/watch?debug=trace", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("traced create: %d: %s", resp.StatusCode, raw)
	}
	c := &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
	defer c.Close()
	hello, _ := c.next(t)

	built, err := schedroute.NewProblem(testProblem(150))
	if err != nil {
		t.Fatal(err)
	}
	spec := linkSpec(built.Topology, 0)

	// Fault: the frame must carry a trace tree rooted at watch.event
	// with the repair ladder under watch.repair and no solve span (rung
	// 1 absorbed a single link fault).
	if code, b := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: []string{spec}}); code != http.StatusOK {
		t.Fatalf("fault: %d: %s", code, b)
	}
	f, _ := c.nextPayload(t)
	if f.Trace == nil || f.Trace.Root == nil {
		t.Fatalf("traced frame has no trace envelope: %+v", f)
	}
	root := f.Trace.Root
	if root.Name != SpanWatchEvent {
		t.Fatalf("trace root %q, want %q", root.Name, SpanWatchEvent)
	}
	if n := root.Count(SpanWatchRepair); n != 1 {
		t.Fatalf("trace has %d %s spans, want 1", n, SpanWatchRepair)
	}
	if n := root.Count("solve"); n != 0 {
		t.Fatalf("single-link fault ran %d full solves, want 0 (tree: %+v)", n, root)
	}

	// Rebase to a feasible slower period: a schedule frame with the new
	// tau_in and the fault still applied.
	if code, b := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventTauIn, TauIn: 250}); code != http.StatusOK {
		t.Fatalf("tau_in: %d: %s", code, b)
	}
	f, _ = c.nextPayload(t)
	if f.Type != schedroute.WatchFrameSchedule || f.TauIn != 250 || f.Schedule == nil || f.Repair == nil {
		t.Fatalf("rebase frame = %+v, want schedule at tau_in 250 with repair attached", f)
	}
	if f.Repair.TauOut != 250 {
		t.Errorf("rebased repair TauOut = %g, want 250", f.Repair.TauOut)
	}

	// Rebase to an infeasible period: non-terminal error, state intact.
	if code, b := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventTauIn, TauIn: 1}); code != http.StatusOK {
		t.Fatalf("bad tau_in: %d: %s", code, b)
	}
	f, _ = c.nextPayload(t)
	if f.Type != schedroute.WatchFrameError || f.Terminal {
		t.Fatalf("infeasible rebase frame = %+v, want non-terminal error", f)
	}
	if f.TauIn != 250 {
		t.Errorf("infeasible rebase moved tau_in to %g, want 250 kept", f.TauIn)
	}

	// The stream still works after the rejection.
	if code, b := sendEvent(t, ts, hello.SubID, schedroute.WatchEvent{Type: schedroute.WatchEventRepaired, Links: []string{spec}}); code != http.StatusOK {
		t.Fatalf("repair event: %d: %s", code, b)
	}
	if f, _ = c.nextPayload(t); f.Type != schedroute.WatchFrameSchedule || f.State != "faults{}" {
		t.Fatalf("post-rejection frame = %+v, want healthy schedule", f)
	}
}
