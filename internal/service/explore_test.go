package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"schedroute/pkg/schedroute"
)

// TestSweepAdapterByteIdentity pins the consolidation contract: a
// legacy /v1/sweep request and its ToExplore translation posted to
// /v1/explore describe the same computation, and projecting the explore
// result back through SweepResult reproduces the sweep body byte for
// byte.
func TestSweepAdapterByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sr := schedroute.SweepRequest{
		Problem:     schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Points:      6,
		Execute:     true,
		Invocations: 4,
	}
	code, sweepBody := postJSON(t, ts, "/v1/sweep", sr)
	if code != http.StatusOK {
		t.Fatalf("/v1/sweep: status %d: %s", code, sweepBody)
	}
	code, exploreBody := postJSON(t, ts, "/v1/explore", sr.ToExplore())
	if code != http.StatusOK {
		t.Fatalf("/v1/explore: status %d: %s", code, exploreBody)
	}
	var er schedroute.ExploreResult
	if err := json.Unmarshal(exploreBody, &er); err != nil {
		t.Fatal(err)
	}
	if er.Mode != schedroute.ExploreModeGrid {
		t.Fatalf("adapter request ran in mode %q, want grid", er.Mode)
	}
	projected, err := json.Marshal(er.SweepResult())
	if err != nil {
		t.Fatal(err)
	}
	projected = append(projected, '\n') // writeJSON's Encode appends one
	if !bytes.Equal(sweepBody, projected) {
		t.Errorf("sweep body diverged from explore projection:\nsweep:   %s\nproject: %s",
			sweepBody, projected)
	}
}

// TestExploreParetoEndpoint drives the full Pareto mode over HTTP: a
// placement axis with an annealed candidate, all four objectives, and a
// traced request.
func TestExploreParetoEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := schedroute.ExploreRequest{
		Problem:    schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Objectives: []string{"tau_in", "latency", "links", "buffers"},
		Axes: schedroute.ExploreAxes{
			TauIn:     &schedroute.TauInAxis{Points: 2},
			Placement: &schedroute.PlacementAxis{AnnealSeeds: []int64{2}, AnnealSteps: 2000},
		},
	}
	code, body := postJSON(t, ts, "/v1/explore?debug=trace", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out schedroute.ExploreResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != schedroute.ExploreModePareto {
		t.Fatalf("mode %q, want pareto", out.Mode)
	}
	if out.MinTauIn < out.TauC {
		t.Errorf("min τin %g below τc %g", out.MinTauIn, out.TauC)
	}
	if len(out.Placements) != 2 || out.Placements[0].Source != "problem" || out.Placements[1].Source != "anneal:2" {
		t.Fatalf("placement sources wrong: %+v", out.Placements)
	}
	if len(out.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for i, pt := range out.Front {
		if pt.Placement < 0 || pt.Placement >= len(out.Placements) {
			t.Errorf("front[%d]: placement %d out of range", i, pt.Placement)
		}
		if pt.TauIn < out.MinTauIn || pt.Window <= 0 || pt.Links <= 0 || pt.Buffers <= 0 {
			t.Errorf("front[%d] malformed: %+v", i, pt)
		}
	}
	if out.Trace == nil {
		t.Fatal("?debug=trace attached no trace")
	}
	for _, want := range []string{"explore", "explore_placement", "explore_bisect", "explore_point"} {
		if out.Trace.Root.Count(want) == 0 {
			t.Errorf("trace missing span %q", want)
		}
	}
	if runs := srv.metrics.ExploreRuns("pareto"); runs != 1 {
		t.Errorf("pareto explore runs %d, want 1", runs)
	}

	// The same request without debug must return the same body minus the
	// trace envelope — and a repeat run is deterministic.
	code, plain := postJSON(t, ts, "/v1/explore", req)
	if code != http.StatusOK {
		t.Fatalf("untraced status %d: %s", code, plain)
	}
	var again schedroute.ExploreResult
	if err := json.Unmarshal(plain, &again); err != nil {
		t.Fatal(err)
	}
	if again.Trace != nil {
		t.Error("untraced request carried a trace envelope")
	}
	out.Trace = nil
	stripped, _ := json.Marshal(&out)
	repeat, _ := json.Marshal(&again)
	if !bytes.Equal(stripped, repeat) {
		t.Errorf("traced and untraced explorations diverged beyond the envelope:\n%s\n%s", stripped, repeat)
	}
}

// TestExploreGridPlacementAxis checks grid mode with candidate
// placements: a winner per point, placement outcomes labelled by
// source, and the best-allocation ordering (a winning candidate can
// only displace the problem placement by being feasible-or-lower-peak).
func TestExploreGridPlacementAxis(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := schedroute.ExploreRequest{
		Problem: schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Axes: schedroute.ExploreAxes{
			TauIn:     &schedroute.TauInAxis{Points: 3},
			Placement: &schedroute.PlacementAxis{Allocators: []string{"greedy"}, AnnealSeeds: []int64{2}, AnnealSteps: 2000},
		},
	}
	code, body := postJSON(t, ts, "/v1/explore", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out schedroute.ExploreResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != schedroute.ExploreModeGrid {
		t.Fatalf("mode %q, want grid", out.Mode)
	}
	if len(out.Points) != 3 || len(out.Winners) != 3 {
		t.Fatalf("got %d points / %d winners, want 3 / 3", len(out.Points), len(out.Winners))
	}
	wantSources := []string{"problem", "allocator:greedy", "anneal:2"}
	if len(out.Placements) != len(wantSources) {
		t.Fatalf("placements %+v, want sources %v", out.Placements, wantSources)
	}
	for i, want := range wantSources {
		if out.Placements[i].Source != want {
			t.Errorf("placement %d source %q, want %q", i, out.Placements[i].Source, want)
		}
	}
	for i, w := range out.Winners {
		if w < 0 || w >= len(wantSources) {
			t.Fatalf("point %d: winner %d out of range", i, w)
		}
	}
	if runs := srv.metrics.ExploreRuns("grid"); runs != 1 {
		t.Errorf("grid explore runs %d, want 1", runs)
	}
	// Three points × three candidates = nine solver executions.
	if n := srv.metrics.SolveRuns(); n != 9 {
		t.Errorf("solver ran %d times, want 9", n)
	}
}

// TestExploreSerialParallelIdenticalOverHTTP runs the same exploration
// on a single-worker and a multi-worker server: the serial-identical
// contract must hold across the whole service stack.
func TestExploreSerialParallelIdenticalOverHTTP(t *testing.T) {
	req := schedroute.ExploreRequest{
		Problem:    schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Objectives: []string{"tau_in", "latency"},
		Axes: schedroute.ExploreAxes{
			TauIn:     &schedroute.TauInAxis{Points: 2},
			Placement: &schedroute.PlacementAxis{AnnealSeeds: []int64{2}, AnnealSteps: 2000},
		},
	}
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		_, ts := newTestServer(t, Config{Workers: workers})
		code, body := postJSON(t, ts, "/v1/explore", req)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, code, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("1-worker and 8-worker explorations diverged:\n%s\n%s", bodies[0], bodies[1])
	}
}

// TestExploreRejectsBadRequests covers the request-validation surface:
// each malformed exploration is a 400, not a solve.
func TestExploreRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	problem := schedroute.Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64}
	bad := []schedroute.ExploreRequest{
		{Problem: problem, Objectives: []string{"latency"}, Execute: true},
		{Problem: problem, Objectives: []string{"speed"}},
		{Problem: problem, Axes: schedroute.ExploreAxes{Placement: &schedroute.PlacementAxis{Allocators: []string{"magic"}}}},
		{Problem: problem, Axes: schedroute.ExploreAxes{TauIn: &schedroute.TauInAxis{Min: 300, Max: 100}}},
		{Problem: problem, Tolerance: -1},
	}
	for i, req := range bad {
		code, body := postJSON(t, ts, "/v1/explore", req)
		if code != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d (%s), want 400", i, code, body)
		}
	}
}
