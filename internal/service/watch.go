package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"schedroute/internal/errkind"
	"schedroute/internal/metrics"
	"schedroute/internal/schedule"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
	"schedroute/pkg/schedroute"
)

// Watch span names (under a subscription created with ?debug=trace,
// every processed event records one watch.event tree).
const (
	SpanWatchEvent   = "watch.event"
	SpanWatchRepair  = "watch.repair"
	SpanWatchRebase  = "watch.rebase"
	SpanWatchDeliver = "watch.deliver"
)

// watchRegistry tracks the live subscriptions. closeAll flips it
// read-only for the drain.
type watchRegistry struct {
	mu       sync.Mutex
	subs     map[string]*watchSub
	draining bool
}

func newWatchRegistry() *watchRegistry {
	return &watchRegistry{subs: map[string]*watchSub{}}
}

func (r *watchRegistry) add(sub *watchSub, max int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return errDraining
	}
	if len(r.subs) >= max {
		return errkind.Mark(fmt.Errorf("service: watch subscription limit %d reached", max), errkind.ErrUnavailable)
	}
	r.subs[sub.id] = sub
	return nil
}

func (r *watchRegistry) get(id string) *watchSub {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subs[id]
}

func (r *watchRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, id)
}

func (r *watchRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// closeAll begins the watch drain: every subscription receives a
// terminal closing frame and its state machine winds down. Returns the
// done channels to wait on.
func (r *watchRegistry) closeAll(reason string) []<-chan struct{} {
	r.mu.Lock()
	r.draining = true
	subs := make([]*watchSub, 0, len(r.subs))
	for _, sub := range r.subs {
		subs = append(subs, sub)
	}
	r.mu.Unlock()
	done := make([]<-chan struct{}, 0, len(subs))
	for _, sub := range subs {
		sub.close(reason, true)
		done = append(done, sub.done)
	}
	return done
}

// queuedEvent pairs a pushed event with its ack'd sequence number.
type queuedEvent struct {
	seq int64
	ev  schedroute.WatchEvent
}

// ringFrame is one replayable frame: pre-marshaled bytes, so every
// consumer (live, resumed, coalesced) delivers the identical payload.
type ringFrame struct {
	seq      int64
	typ      string
	terminal bool
	data     []byte
}

// watchConn is one attached SSE consumer: a cursor into the replay
// ring plus a wakeup channel. Slow consumers only ever fall behind the
// ring — they never hold the repair loop or other consumers back.
type watchConn struct {
	notify chan struct{}
	next   int64
}

// watchSub is one streaming reconfiguration subscription: a pinned
// problem structure, a repair session over the base schedule, a
// bounded event queue feeding a single state-machine goroutine, and a
// bounded replay ring fanned out to any number of SSE consumers.
//
// Robustness contract:
//   - the state machine is one goroutine; a panic while processing an
//     event is recovered, reported as a terminal error frame, and
//     confined to this subscription;
//   - the event queue is bounded and enqueue never blocks (overflow is
//     a 503 at the events endpoint);
//   - delivery is pull-based over the ring: a consumer that falls off
//     the ring's tail is coalesced to the latest fault state (gap
//     frame + newest frame) instead of back-pressuring anything;
//   - every close path — client delete, idle reap, drain, panic —
//     ends the stream with a terminal frame.
type watchSub struct {
	id     string
	s      *Server
	req    schedroute.WatchRequest
	built  *schedroute.Built
	solver *schedule.Solver
	sopts  schedule.Options
	traced bool

	events    chan queuedEvent
	quit      chan struct{}
	done      chan struct{}
	ctx       context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once

	// State owned by the run goroutine (initialized before it starts):
	// the invocation period, the cumulative fault population, and the
	// repair session over the base schedule at that period.
	tauIn   float64
	fs      *topology.FaultSet
	session *schedule.RepairSession

	mu         sync.Mutex
	evSeq      int64
	seq        int64
	ringStart  int64 // seq of ring[0]; 0 when the ring is empty
	ring       []ringFrame
	conns      map[*watchConn]struct{}
	closed     bool
	lastActive time.Time
}

// Session exposes the subscription's repair session (tests assert its
// stats: single-link events must not run full solves).
func (sub *watchSub) Session() *schedule.RepairSession { return sub.session }

func newWatchID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return "w" + hex.EncodeToString(b[:])
}

// ---- HTTP handlers -------------------------------------------------

// instrumentWatch wraps a watch endpoint with logging and request
// metrics but, unlike instrument, neither a method filter (the mux
// patterns do that) nor the per-request solve deadline: watch streams
// are long-lived by design and must outlive RequestTimeout.
func (s *Server) instrumentWatch(name string, fn func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		fn(sw, r)
		dur := time.Since(start)
		s.metrics.observeRequest(name, sw.code, dur)
		s.log.Info("request",
			"endpoint", name,
			"method", r.Method,
			"status", sw.code,
			"dur_ms", float64(dur.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// handleWatchCreate registers a subscription: resolve the problem
// through the solver cache, solve the base schedule, start the state
// machine, and stream frames from the hello onward.
func (s *Server) handleWatchCreate(w http.ResponseWriter, r *http.Request) {
	var req schedroute.WatchRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	traced := r.URL.Query().Get("debug") == "trace"
	s.metrics.observeTenantRequest("watch", schedroute.TenantOrDefault(req.Tenant).ID)

	// The base solve borrows an admission slot like any other request;
	// only the long-lived stream afterwards lives outside the pool.
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	ent, _ := s.cache.getOrCreate(req.Problem.StructureKey(), func() (*schedroute.Built, error) {
		return schedroute.NewProblem(req.Problem)
	})
	if ent.err != nil {
		s.release()
		s.writeError(w, ent.err, nil)
		return
	}
	tauIn := req.Problem.TauIn
	if tauIn == 0 {
		tauIn = ent.built.Timing.TauC()
	}
	sopts, err := req.Options.ToSchedule()
	if err != nil {
		s.release()
		s.writeError(w, err, nil)
		return
	}
	solveOpts := sopts
	solveOpts.CollectStats = true
	base, err := ent.solver.Solve(r.Context(), tauIn, solveOpts)
	s.release()
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	s.metrics.observeSolve(base.Stats)
	if !base.Feasible {
		s.writeError(w, errkind.Mark(
			fmt.Errorf("watch: base problem infeasible at stage %s; a watch needs a feasible base schedule", base.FailStage),
			errkind.ErrBadInput), nil)
		return
	}
	session, err := schedule.NewRepairSession(ent.built.ScheduleProblemAt(tauIn), sopts, base)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	sub := &watchSub{
		id:         newWatchID(),
		s:          s,
		req:        req,
		built:      ent.built,
		solver:     ent.solver,
		sopts:      sopts,
		traced:     traced,
		events:     make(chan queuedEvent, s.cfg.WatchEventQueue),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		ctx:        ctx,
		cancel:     cancel,
		tauIn:      tauIn,
		fs:         topology.NewFaultSet(ent.built.Topology.Links(), ent.built.Topology.Nodes()),
		session:    session,
		conns:      map[*watchConn]struct{}{},
		lastActive: time.Now(),
	}
	if err := s.watches.add(sub, s.cfg.MaxWatchSubs); err != nil {
		cancel()
		s.writeError(w, err, nil)
		return
	}
	s.metrics.watchSubs.Add(1)

	// The hello frame is seq 1 and lives in the ring like every other
	// replayable frame, so a resume from 0 replays it too.
	wire, err := schedroute.NewScheduleResult(ent.built, base, tauIn, req.IncludeOmega, req.Options.WantStats())
	if err != nil {
		sub.close("internal error", false)
		s.writeError(w, err, nil)
		return
	}
	sub.append(&schedroute.WatchFrame{
		Type:     schedroute.WatchFrameHello,
		SubID:    sub.id,
		State:    sub.fs.String(),
		TauIn:    tauIn,
		Schedule: wire,
	})

	go sub.run()
	sub.serveConn(w, r, 1)
}

// handleWatchAttach resumes the stream of an existing subscription.
// With a Last-Event-ID header delivery restarts after that frame;
// without one it starts at the newest frame (the current state).
func (s *Server) handleWatchAttach(w http.ResponseWriter, r *http.Request) {
	sub := s.watches.get(r.PathValue("id"))
	if sub == nil {
		writeWatchNotFound(w, r.PathValue("id"))
		return
	}
	from := int64(0)
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v < 0 {
			s.writeError(w, errkind.Mark(fmt.Errorf("watch: bad Last-Event-ID %q", h), errkind.ErrBadInput), nil)
			return
		}
		from = v + 1
	} else {
		sub.mu.Lock()
		from = sub.seq // newest frame only
		if from < 1 {
			from = 1
		}
		sub.mu.Unlock()
	}
	sub.serveConn(w, r, from)
}

// handleWatchEvent validates, sequences, and enqueues one event. The
// queue is bounded and never blocks: overflow is load shedding (503),
// same family as a full solve queue.
func (s *Server) handleWatchEvent(w http.ResponseWriter, r *http.Request) {
	sub := s.watches.get(r.PathValue("id"))
	if sub == nil {
		writeWatchNotFound(w, r.PathValue("id"))
		return
	}
	var ev schedroute.WatchEvent
	if err := decode(r, &ev); err != nil {
		s.writeError(w, err, nil)
		return
	}
	if err := ev.Validate(); err != nil {
		s.writeError(w, err, nil)
		return
	}
	// Resolve named elements against the topology now, so the queue
	// only ever holds resolvable events and a typo is a 400, not a
	// mid-stream error frame.
	if ev.Type != schedroute.WatchEventTauIn {
		if _, err := (schedroute.FaultSpec{Links: ev.Links, Nodes: ev.Nodes}).Build(sub.built.Topology); err != nil {
			s.writeError(w, err, nil)
			return
		}
	}

	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		s.writeError(w, errkind.Mark(fmt.Errorf("watch: subscription %s is closed", sub.id), errkind.ErrUnavailable), nil)
		return
	}
	sub.evSeq++
	qe := queuedEvent{seq: sub.evSeq, ev: ev}
	sub.lastActive = time.Now()
	sub.mu.Unlock()

	select {
	case sub.events <- qe:
	default:
		s.writeError(w, errkind.Mark(
			fmt.Errorf("watch: event queue full (%d pending)", cap(sub.events)), errkind.ErrUnavailable), nil)
		return
	}
	s.metrics.watchEvents.Add(1)
	writeJSON(w, schedroute.WatchEventAck{SchemaVersion: schedroute.SchemaVersion, EventSeq: qe.seq})
}

// handleWatchDelete closes a subscription gracefully: every attached
// consumer receives a terminal closing frame.
func (s *Server) handleWatchDelete(w http.ResponseWriter, r *http.Request) {
	sub := s.watches.get(r.PathValue("id"))
	if sub == nil {
		writeWatchNotFound(w, r.PathValue("id"))
		return
	}
	sub.close("deleted by client", true)
	writeJSON(w, map[string]string{"status": "closing"})
}

// writeWatchNotFound reports an unknown subscription id through the
// shared envelope: the id format is fine, the resource is gone, so the
// error is marked not_found and classified by the table like every
// other failure body.
func writeWatchNotFound(w http.ResponseWriter, id string) {
	err := errkind.Mark(
		fmt.Errorf("watch: no subscription %q (expired or never created)", id),
		errkind.ErrNotFound)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusNotFound)
	json.NewEncoder(w).Encode(schedroute.ErrorResponse{
		SchemaVersion: schedroute.SchemaVersion,
		ErrorEnvelope: schedroute.NewErrorEnvelope(err),
	})
}

// ---- subscription state machine ------------------------------------

// run is the subscription's single state-machine goroutine: it applies
// events in order, emits one frame per event, reaps the subscription
// when idle, and winds down on drain or close. A panic while handling
// an event is recovered and terminates only this subscription.
func (sub *watchSub) run() {
	defer close(sub.done)
	defer sub.s.metrics.watchSubs.Add(-1)
	reap := sub.s.cfg.WatchIdleTimeout
	idle := time.NewTicker(reap / 4)
	defer idle.Stop()
	for {
		select {
		case <-sub.quit:
			return
		case <-sub.s.stop:
			sub.close("server draining", true)
			return
		case qe := <-sub.events:
			if !sub.safeHandle(qe) {
				sub.close("event handler panicked", false)
				return
			}
		case <-idle.C:
			sub.mu.Lock()
			expired := len(sub.conns) == 0 && time.Since(sub.lastActive) > reap
			sub.mu.Unlock()
			if expired {
				sub.close("idle timeout: no consumers and no events", true)
				return
			}
		}
	}
}

// safeHandle isolates a panicking event handler: the panic is turned
// into a terminal error frame on this subscription's stream and the
// server (and every other subscription) keeps running. Returns false
// when a panic occurred.
func (sub *watchSub) safeHandle(qe queuedEvent) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
			sub.s.metrics.watchPanics.Add(1)
			sub.s.log.Error("watch subscription panic", "sub", sub.id, "event_seq", qe.seq, "panic", fmt.Sprint(r))
			sub.append(&schedroute.WatchFrame{
				Type:     schedroute.WatchFrameError,
				EventSeq: qe.seq,
				Terminal: true,
				Reason:   fmt.Sprintf("internal panic handling event %d: %v", qe.seq, r),
			})
		}
	}()
	sub.handleEvent(qe)
	return true
}

// claimWorker borrows one solve-pool slot for this event's repair (or
// rebase) work so watch subscriptions share the same Workers bound as
// request/response solves. Returns false when the subscription or
// server is shutting down instead.
func (sub *watchSub) claimWorker() (func(), bool) {
	select {
	case sub.s.sem <- struct{}{}:
		return func() { <-sub.s.sem }, true
	case <-sub.quit:
		return nil, false
	case <-sub.s.stop:
		return nil, false
	}
}

// handleEvent applies one event to the fault state and emits the
// resulting frame. Rejections that only concern this event (repairing
// a healthy element, an infeasible rebase, a ladder that ran dry) are
// non-terminal error frames; the stream survives them.
func (sub *watchSub) handleEvent(qe queuedEvent) {
	if sub.s.beforeWatchEvent != nil {
		sub.s.beforeWatchEvent(sub.id, qe.ev)
	}
	start := time.Now()
	var root *trace.Span
	if sub.traced {
		root = trace.Start(SpanWatchEvent,
			trace.Int64("event_seq", qe.seq), trace.String("type", qe.ev.Type))
	}

	frame := sub.applyEvent(qe, root)
	if frame == nil {
		return // shutdown raced the event; the closing frame speaks
	}
	ds := root.Start(SpanWatchDeliver)
	ds.End()
	if sub.traced {
		root.SetAttrs(trace.String("state", frame.State))
		root.End()
		frame.Trace = schedroute.NewTraceEnvelope(root.Tree())
	}
	sub.append(frame)
	sub.s.metrics.observeWatchEvent(time.Since(start))
}

// errorFrame builds a non-terminal error frame for a rejected event,
// carrying the same {error, kind, detail} envelope a standalone
// request's error body would (derived from the same errkind table).
func (sub *watchSub) errorFrame(qe queuedEvent, err error) *schedroute.WatchFrame {
	env := schedroute.NewErrorEnvelope(err)
	return &schedroute.WatchFrame{
		Type:     schedroute.WatchFrameError,
		EventSeq: qe.seq,
		State:    sub.fs.String(),
		TauIn:    sub.tauIn,
		Reason:   err.Error(),
		Err:      &env,
	}
}

// rejectEvent is errorFrame for event-validation failures: the event
// named something the fault model cannot apply, a bad_input family.
func (sub *watchSub) rejectEvent(qe queuedEvent, format string, args ...any) *schedroute.WatchFrame {
	return sub.errorFrame(qe, errkind.Mark(fmt.Errorf(format, args...), errkind.ErrBadInput))
}

// applyEvent mutates the subscription state for one event and builds
// its frame. A nil return means shutdown interrupted the work and no
// frame should be emitted.
func (sub *watchSub) applyEvent(qe queuedEvent, root *trace.Span) *schedroute.WatchFrame {
	ev := qe.ev
	switch ev.Type {
	case schedroute.WatchEventTauIn:
		return sub.rebase(qe, root)
	case schedroute.WatchEventFault, schedroute.WatchEventRepaired:
		delta, err := (schedroute.FaultSpec{Links: ev.Links, Nodes: ev.Nodes}).Build(sub.built.Topology)
		if err != nil {
			return sub.errorFrame(qe, err)
		}
		if ev.Type == schedroute.WatchEventRepaired {
			// Validate before mutating: a partial application would
			// desynchronize client and server fault models.
			for _, l := range delta.FailedLinks() {
				if !sub.fs.LinkFailed(l) {
					return sub.rejectEvent(qe, "event %d: link %d is not failed", qe.seq, l)
				}
			}
			for _, n := range delta.FailedNodes() {
				if !sub.fs.NodeFailed(n) {
					return sub.rejectEvent(qe, "event %d: node %d is not failed", qe.seq, n)
				}
			}
			for _, l := range delta.FailedLinks() {
				sub.fs.RepairLink(l)
			}
			for _, n := range delta.FailedNodes() {
				sub.fs.RepairNode(n)
			}
		} else {
			for _, l := range delta.FailedLinks() {
				if sub.fs.LinkFailed(l) {
					return sub.rejectEvent(qe, "event %d: link %d is already failed", qe.seq, l)
				}
			}
			for _, n := range delta.FailedNodes() {
				if sub.fs.NodeFailed(n) {
					return sub.rejectEvent(qe, "event %d: node %d is already failed", qe.seq, n)
				}
			}
			for _, l := range delta.FailedLinks() {
				sub.fs.FailLink(l)
			}
			for _, n := range delta.FailedNodes() {
				sub.fs.FailNode(n)
			}
		}
		return sub.repairFrame(qe, root)
	default:
		return sub.rejectEvent(qe, "event %d: unknown type %q", qe.seq, ev.Type)
	}
}

// repairFrame runs the repair session at the current fault state and
// packages the schedule frame. An infeasible ladder (every rung
// rejected) is a non-terminal error frame carrying the full report —
// the stream keeps running so a later fault-repaired event can recover.
func (sub *watchSub) repairFrame(qe queuedEvent, root *trace.Span) *schedroute.WatchFrame {
	release, ok := sub.claimWorker()
	if !ok {
		return nil
	}
	rs := root.Start(SpanWatchRepair)
	rep, cached, err := sub.session.Apply(sub.ctx, sub.fs, rs)
	rs.SetAttrs(trace.Bool("cached", cached))
	rs.End()
	release()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return nil
		}
		return sub.errorFrame(qe, fmt.Errorf("event %d: repair failed: %w", qe.seq, err))
	}
	if rerr := rep.Err(); rerr != nil {
		frame := sub.errorFrame(qe, rerr)
		if wire, werr := schedroute.NewRepairResult(rep, false); werr == nil {
			frame.Repair = wire
		}
		return frame
	}
	wire, err := schedroute.NewRepairResult(rep, sub.req.IncludeOmega)
	if err != nil {
		return sub.errorFrame(qe, fmt.Errorf("event %d: %w", qe.seq, err))
	}
	frame := &schedroute.WatchFrame{
		Type:     schedroute.WatchFrameSchedule,
		EventSeq: qe.seq,
		State:    sub.fs.String(),
		TauIn:    sub.tauIn,
		Repair:   wire,
	}
	if sub.req.Execute && rep.Result != nil && rep.Result.Omega != nil {
		frame.OI = sub.oiCheck(rep)
	}
	return frame
}

// rebase handles a tau_in event: re-solve the base schedule at the new
// period through the pinned solver, restart the repair session, and
// re-apply the current fault state. An infeasible period is rejected
// without touching the previous state.
func (sub *watchSub) rebase(qe queuedEvent, root *trace.Span) *schedroute.WatchFrame {
	release, ok := sub.claimWorker()
	if !ok {
		return nil
	}
	rb := root.Start(SpanWatchRebase, trace.Float64("tau_in", qe.ev.TauIn))
	solveOpts := sub.sopts
	solveOpts.CollectStats = true
	res, err := sub.solver.Solve(sub.ctx, qe.ev.TauIn, solveOpts)
	rb.End()
	release()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return nil
		}
		return sub.errorFrame(qe, fmt.Errorf("event %d: rebase solve failed: %w", qe.seq, err))
	}
	sub.s.metrics.observeSolve(res.Stats)
	if !res.Feasible {
		return sub.rejectEvent(qe, "event %d: tau_in %g infeasible at stage %s; keeping period %g",
			qe.seq, qe.ev.TauIn, res.FailStage, sub.tauIn)
	}
	session, err := schedule.NewRepairSession(sub.built.ScheduleProblemAt(qe.ev.TauIn), sub.sopts, res)
	if err != nil {
		return sub.errorFrame(qe, fmt.Errorf("event %d: %w", qe.seq, err))
	}
	sub.tauIn = qe.ev.TauIn
	sub.session = session

	wire, err := schedroute.NewScheduleResult(sub.built, res, sub.tauIn, sub.req.IncludeOmega, sub.req.Options.WantStats())
	if err != nil {
		return sub.errorFrame(qe, fmt.Errorf("event %d: %w", qe.seq, err))
	}
	frame := &schedroute.WatchFrame{
		Type:     schedroute.WatchFrameSchedule,
		EventSeq: qe.seq,
		State:    sub.fs.String(),
		TauIn:    sub.tauIn,
		Schedule: wire,
	}
	if !sub.fs.Empty() {
		repFrame := sub.repairFrame(qe, root)
		if repFrame == nil {
			return nil
		}
		if repFrame.Type == schedroute.WatchFrameError {
			return repFrame
		}
		frame.Repair = repFrame.Repair
		frame.OI = repFrame.OI
	}
	return frame
}

// oiCheck replays the repaired Ω through the deterministic executor
// and reports the OI-window verdict: whether the repaired schedule
// still honours the constant-output-rate contract at its τout.
func (sub *watchSub) oiCheck(rep *schedule.RepairReport) *schedroute.OICheck {
	inv := sub.req.Invocations
	if inv == 0 {
		inv = 8
	}
	exec, err := schedule.Execute(rep.Result.Omega, sub.built.Graph, sub.built.Timing, sub.built.Timing.TauC(), inv)
	if err != nil {
		return nil
	}
	ivs := metrics.Intervals(exec.OutputCompletions)
	th, err := metrics.NormalizedThroughput(rep.TauOut, ivs)
	if err != nil {
		return nil
	}
	return &schedroute.OICheck{
		Invocations:   inv,
		ThroughputMid: th.Mid,
		OI:            metrics.OutputInconsistent(rep.TauOut, ivs, 1e-6),
	}
}

// ---- frame ring and delivery ---------------------------------------

// append assigns the next sequence number, marshals the frame once,
// pushes it onto the bounded replay ring, and wakes every consumer.
// Terminal frames also mark the subscription closed.
func (sub *watchSub) append(f *schedroute.WatchFrame) {
	f.SchemaVersion = schedroute.SchemaVersion
	if f.Type == schedroute.WatchFrameClosing {
		f.Terminal = true
	}
	sub.mu.Lock()
	sub.seq++
	f.Seq = sub.seq
	data, err := json.Marshal(f)
	if err != nil {
		// A frame that cannot marshal is an internal bug; deliver the
		// reason instead of silently dropping the seq.
		data, _ = json.Marshal(&schedroute.WatchFrame{
			SchemaVersion: schedroute.SchemaVersion, Seq: f.Seq,
			Type: schedroute.WatchFrameError, Reason: fmt.Sprintf("frame marshal: %v", err),
		})
	}
	if sub.ringStart == 0 {
		sub.ringStart = f.Seq
	}
	sub.ring = append(sub.ring, ringFrame{seq: f.Seq, typ: f.Type, terminal: f.Terminal, data: data})
	over := len(sub.ring) - sub.s.cfg.WatchRing
	if over > 0 {
		sub.ring = append(sub.ring[:0], sub.ring[over:]...)
		sub.ringStart = sub.ring[0].seq
	}
	if f.Terminal {
		sub.closed = true
	}
	for c := range sub.conns {
		select {
		case c.notify <- struct{}{}:
		default:
		}
	}
	sub.mu.Unlock()
	sub.s.metrics.watchFrames.Add(1)
}

// collect returns the frames a consumer should deliver next. When the
// cursor has fallen off the ring's tail the consumer is coalesced to
// the latest frame — the newest fault state — and the skip is
// reported so the stream can mark the gap.
func (sub *watchSub) collect(c *watchConn) (frames []ringFrame, skipped int64, latest int64, closed bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	latest = sub.seq
	closed = sub.closed
	if len(sub.ring) == 0 || c.next > sub.seq {
		return nil, 0, latest, closed
	}
	if c.next < sub.ringStart {
		// Coalesce-to-latest: deliver only the newest frame.
		skipped = sub.seq - c.next
		newest := sub.ring[len(sub.ring)-1]
		c.next = sub.seq + 1
		return []ringFrame{newest}, skipped, latest, closed
	}
	for _, rf := range sub.ring {
		if rf.seq >= c.next {
			frames = append(frames, rf)
		}
	}
	c.next = sub.seq + 1
	return frames, 0, latest, closed
}

func (sub *watchSub) addConn(c *watchConn) {
	sub.mu.Lock()
	sub.conns[c] = struct{}{}
	sub.lastActive = time.Now()
	sub.mu.Unlock()
}

func (sub *watchSub) removeConn(c *watchConn) {
	sub.mu.Lock()
	delete(sub.conns, c)
	sub.lastActive = time.Now()
	sub.mu.Unlock()
}

// serveConn streams the subscription to one SSE consumer starting at
// frame seq `from`. It returns when a terminal frame is delivered, the
// client disconnects, or a write fails. Replayable frames carry their
// seq as the SSE id (Last-Event-ID resume); heartbeat and gap frames
// do not, so they never disturb the resume cursor.
func (sub *watchSub) serveConn(w http.ResponseWriter, r *http.Request, from int64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	c := &watchConn{notify: make(chan struct{}, 1), next: from}
	sub.addConn(c)
	defer sub.removeConn(c)

	hb := time.NewTicker(sub.s.cfg.WatchHeartbeat)
	defer hb.Stop()

	for {
		frames, skipped, latest, closed := sub.collect(c)
		if skipped > 0 {
			sub.s.metrics.watchDropped.Add(skipped)
			gap, _ := json.Marshal(&schedroute.WatchFrame{
				SchemaVersion: schedroute.SchemaVersion,
				Seq:           latest,
				Type:          schedroute.WatchFrameGap,
				Skipped:       skipped,
				Reason:        "consumer fell behind the replay ring; coalesced to the latest fault state",
			})
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", schedroute.WatchFrameGap, gap); err != nil {
				return
			}
		}
		for _, rf := range frames {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", rf.seq, rf.typ, rf.data); err != nil {
				return
			}
			if rf.terminal {
				fl.Flush()
				return
			}
		}
		fl.Flush()
		if closed {
			return // everything up to the terminal frame already delivered
		}
		select {
		case <-c.notify:
		case <-hb.C:
			sub.mu.Lock()
			latest := sub.seq
			sub.mu.Unlock()
			beat, _ := json.Marshal(&schedroute.WatchFrame{
				SchemaVersion: schedroute.SchemaVersion,
				Seq:           latest,
				Type:          schedroute.WatchFrameHeartbeat,
			})
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", schedroute.WatchFrameHeartbeat, beat); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// close winds the subscription down exactly once. withFrame appends a
// terminal closing frame first (the panic path already appended its
// own terminal error frame).
func (sub *watchSub) close(reason string, withFrame bool) {
	sub.closeOnce.Do(func() {
		if withFrame {
			sub.append(&schedroute.WatchFrame{
				Type:   schedroute.WatchFrameClosing,
				Reason: reason,
			})
		} else {
			sub.mu.Lock()
			sub.closed = true
			for c := range sub.conns {
				select {
				case c.notify <- struct{}{}:
				default:
				}
			}
			sub.mu.Unlock()
		}
		sub.cancel()
		close(sub.quit)
		sub.s.watches.remove(sub.id)
	})
}
