package service

import (
	"fmt"
	"net/http"
	"sync"

	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
	"schedroute/pkg/schedroute"
)

// Multi-tenant admission (v2): POST /v1/admit runs the co-scheduler's
// admission check and, on success, registers the tenant so later
// tenant-scoped /v1/schedule and /v1/repair requests are answered from
// its admitted standing instead of a fresh solve. Tenants naming the
// same topology spec share one fabric (one schedule.TenantSet); the
// fabric's link-bandwidth reservations are what make an admission
// unable to perturb the tenants already admitted.

// fabric is one shared machine: every tenant admitted against the same
// topology spec lands in the same TenantSet and competes for the same
// link shares. Bandwidth is pinned by the first admission — a reserved
// link share is a fraction of the physical link, which is only
// meaningful when everyone agrees what the physical link carries.
type fabric struct {
	topoSpec  string
	bandwidth float64
	set       *schedule.TenantSet
}

// tenantEntry is the service-side record of one admitted tenant: the
// built problem (for wire conversions), the admission outcome, and the
// fabric it lives on.
type tenantEntry struct {
	built  *schedroute.Built
	tenant schedroute.Tenant
	report *schedule.AdmitReport
	// structure is the admitted problem's StructureKey; tenant-scoped
	// requests must name the same problem they were admitted with.
	structure string
	fab       *fabric
}

// tenantRegistry maps tenant IDs to their admitted standing. Admission
// order within a fabric is serialized by the TenantSet itself; the
// registry lock only guards the maps.
type tenantRegistry struct {
	mu      sync.Mutex
	fabrics map[string]*fabric
	tenants map[string]*tenantEntry
}

func newTenantRegistry() *tenantRegistry {
	return &tenantRegistry{fabrics: map[string]*fabric{}, tenants: map[string]*tenantEntry{}}
}

func (tr *tenantRegistry) lookup(id string) *tenantEntry {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.tenants[id]
}

// fabricFor returns (creating if needed) the fabric for a built
// problem, enforcing the equal-bandwidth contract.
func (tr *tenantRegistry) fabricFor(b *schedroute.Built) (*fabric, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	fab := tr.fabrics[b.Spec.Topology]
	if fab == nil {
		fab = &fabric{
			topoSpec:  b.Spec.Topology,
			bandwidth: b.Spec.Bandwidth,
			set:       schedule.NewTenantSet(b.Topology),
		}
		tr.fabrics[b.Spec.Topology] = fab
		return fab, nil
	}
	if fab.bandwidth != b.Spec.Bandwidth {
		return nil, errkind.Mark(
			fmt.Errorf("admit: fabric %q runs at bandwidth %g, request says %g (link shares are fractions of the physical link; all tenants must agree)",
				fab.topoSpec, fab.bandwidth, b.Spec.Bandwidth),
			errkind.ErrBadInput)
	}
	return fab, nil
}

// commit records an admission, dropping any tenants it evicted.
func (tr *tenantRegistry) commit(ent *tenantEntry, evicted []string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, id := range evicted {
		delete(tr.tenants, id)
	}
	tr.tenants[ent.tenant.ID] = ent
}

// count reports admitted tenants (the /metrics gauge).
func (tr *tenantRegistry) count() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.tenants)
}

// handleAdmit is POST /v1/admit: run the admission ladder for one
// candidate tenant and reserve its link shares on success. A rejection
// is 422 admission_rejected with the full admission report attached to
// the error body; admitted tenants elsewhere in the fabric are
// untouched either way.
func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req schedroute.AdmitRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	ten := schedroute.TenantOrDefault(req.Tenant)
	if err := ten.Validate(); err != nil {
		s.writeError(w, err, nil)
		return
	}
	s.metrics.observeTenantRequest("admit", ten.ID)
	root := requestSpan(r, "admit")
	qs := root.Start(SpanQueueWait)
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	qs.End()
	defer s.release()

	// The structure cache is shared with /v1/schedule: admitting a
	// tenant for a problem someone already solved reuses its Built.
	ent, _ := s.cache.getOrCreate(req.Problem.StructureKey(), func() (*schedroute.Built, error) {
		return schedroute.NewProblem(req.Problem)
	})
	if ent.err != nil {
		s.writeError(w, ent.err, nil)
		return
	}
	b := ent.built
	tauIn := req.Problem.TauIn
	if tauIn == 0 {
		tauIn = b.Timing.TauC()
	}
	fab, err := s.tenants.fabricFor(b)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	opts, err := req.Options.ToSchedule()
	if err != nil {
		s.writeError(w, err, nil)
		return
	}

	cand := schedule.Tenant{
		ID:            ten.ID,
		Priority:      ten.Priority,
		RateGuarantee: ten.RateGuarantee,
		Problem:       b.ScheduleProblemAt(tauIn),
		Options:       opts,
	}
	report, err := fab.set.Admit(r.Context(), cand, root)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	s.metrics.observeAdmission(report.Outcome.String(), len(report.Evicted))
	wire, werr := schedroute.NewAdmitResult(b, report, req.IncludeOmega)
	if werr != nil {
		s.writeError(w, werr, nil)
		return
	}
	if !report.Admitted {
		s.metrics.setTenants(int64(s.tenants.count()))
		s.writeErrorBody(w, report.Err(), nil, wire)
		return
	}
	s.tenants.commit(&tenantEntry{
		built:     b,
		tenant:    ten,
		report:    report,
		structure: req.Problem.StructureKey(),
		fab:       fab,
	}, report.Evicted)
	s.metrics.setTenants(int64(s.tenants.count()))
	root.End()
	wire.Trace = schedroute.NewTraceEnvelope(root.Tree())
	writeJSON(w, wire)
}

// tenantFor resolves a request's tenant scope: the default tenant (or
// an ID never admitted) gets nil — the plain v1 solve path — while an
// admitted tenant's requests are answered from its admitted standing.
// An admitted tenant asking about a different problem than it was
// admitted with is a bad request: its standing is per-problem.
func (s *Server) tenantFor(t *schedroute.Tenant, p schedroute.Problem) (*tenantEntry, error) {
	ten := schedroute.TenantOrDefault(t)
	if err := ten.Validate(); err != nil {
		return nil, err
	}
	ent := s.tenants.lookup(ten.ID)
	if ent == nil {
		return nil, nil
	}
	if key := p.StructureKey(); key != ent.structure {
		return nil, errkind.Mark(
			fmt.Errorf("tenant %q was admitted with a different problem (admitted %s, requested %s)",
				ten.ID, ent.structure, key),
			errkind.ErrBadInput)
	}
	return ent, nil
}

// tenantRepair answers a tenant-scoped /v1/repair: the degradation
// ladder runs from the tenant's admitted base inside its
// admission-time link shares (memoized per fault state by the tenant's
// session), so the answer depends only on the tenant's own standing
// and the queried faults.
func (s *Server) tenantRepair(w http.ResponseWriter, r *http.Request, ent *tenantEntry, req schedroute.RepairRequest) {
	fs, err := req.Fault.Build(ent.built.Topology)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	root := requestSpan(r, "repair")
	qs := root.Start(SpanQueueWait)
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	qs.End()
	defer s.release()
	tr, err := ent.fab.set.RepairTenant(r.Context(), ent.tenant.ID, fs, root)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	rep := tr.Report
	if rerr := rep.Err(); rerr != nil {
		wire, werr := schedroute.NewRepairResult(rep, false)
		if werr != nil {
			s.writeError(w, werr, nil)
			return
		}
		s.writeError(w, rerr, wire)
		return
	}
	out, err := schedroute.NewRepairResult(rep, req.IncludeOmega)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	root.End()
	out.Trace = schedroute.NewTraceEnvelope(root.Tree())
	writeJSON(w, out)
}

// tenantSchedule answers a tenant-scoped /v1/schedule from the
// tenant's standing at the fabric's current state: the admitted (or
// repaired) schedule, at the granted τout — never a fresh solve, which
// is exactly why serving it cannot disturb anyone.
func (s *Server) tenantSchedule(ent *tenantEntry, includeOmega, wantStats bool) (*schedroute.ScheduleResult, error) {
	st := ent.fab.set.Lookup(ent.tenant.ID)
	if st == nil || st.Current == nil {
		return nil, errkind.Mark(
			fmt.Errorf("tenant %q has no schedule in force at the current fault state", ent.tenant.ID),
			errkind.ErrInfeasibleRepair)
	}
	return schedroute.NewScheduleResult(ent.built, st.Current, ent.report.TauOut, includeOmega, wantStats)
}
