package service

import (
	"context"
	"fmt"
	"net/http"

	"schedroute/internal/alloc"
	"schedroute/internal/errkind"
	"schedroute/internal/metrics"
	"schedroute/internal/parallel"
	"schedroute/internal/schedule"
	"schedroute/internal/trace"
	"schedroute/pkg/schedroute"
)

// SpanExplorePoint is recorded per grid point under a traced /v1/explore
// request (Pareto mode records the solver's own explore span family).
const SpanExplorePoint = "explore_point"

// handleExplore serves the unified exploration endpoint: grid mode
// (the consolidated sweep / best-allocation search) and Pareto mode
// (the multi-criteria front), selected by the request's objectives.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req schedroute.ExploreRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err, nil)
		return
	}
	s.metrics.observeTenantRequest("explore", schedroute.TenantOrDefault(req.Tenant).ID)
	if owner := s.shardOwner(r, req.Problem.StructureKey()); owner != "" {
		s.proxy(w, r, owner, req)
		return
	}
	root := requestSpan(r, "explore")
	qs := root.Start(SpanQueueWait)
	if err := s.admit(r.Context()); err != nil {
		s.writeError(w, err, nil)
		return
	}
	qs.End()
	defer s.release()
	out, err := s.explore(r.Context(), req, root)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	root.End()
	out.Trace = schedroute.NewTraceEnvelope(root.Tree())
	writeJSON(w, out)
}

// explore runs one exploration. The fan-out borrows idle worker slots
// exactly like the sweep always has, so concurrent explorations share
// the server-wide Workers bound; results are byte-identical for every
// worker count.
func (s *Server) explore(ctx context.Context, req schedroute.ExploreRequest, root *trace.Span) (*schedroute.ExploreResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	opts, err := req.Options.ToSchedule()
	if err != nil {
		return nil, err
	}
	opts.CollectStats = true

	ent, _ := s.cache.getOrCreate(req.Problem.StructureKey(), func() (*schedroute.Built, error) {
		return schedroute.NewProblem(req.Problem)
	})
	if ent.err != nil {
		return nil, ent.err
	}

	extra, releaseExtra := s.claimExtraWorkers(s.cfg.Workers - 1)
	defer releaseExtra()
	workers := 1 + extra

	var out *schedroute.ExploreResult
	if req.Mode() == schedroute.ExploreModePareto {
		out, err = s.explorePareto(ctx, req, ent.built, opts, workers, root)
	} else {
		out, err = s.exploreGrid(ctx, req, ent, opts, workers, root)
	}
	if err != nil {
		return nil, err
	}
	s.persistSnapshot(ent)
	s.metrics.observeExplore(out.Mode, len(out.Points)+out.Evaluated, len(out.Front))
	return out, nil
}

// explorePlacements resolves the request's candidate placements beyond
// the problem's own: named allocators first, then the annealed seeds
// (which schedule.Explore itself builds, appended after the explicit
// list — the source labels here must mirror that order).
func explorePlacements(req schedroute.ExploreRequest, b *schedroute.Built) (placements []*alloc.Assignment, sources []string, annealSeeds []int64, err error) {
	placements = []*alloc.Assignment{b.Assignment}
	sources = []string{"problem"}
	if p := req.Axes.Placement; p != nil {
		for _, name := range p.Allocators {
			as, err := schedroute.ParseAllocator(name, b.Graph, b.Topology, b.Spec.AllocSeed)
			if err != nil {
				return nil, nil, nil, err
			}
			placements = append(placements, as)
			sources = append(sources, "allocator:"+name)
		}
		annealSeeds = p.AnnealSeeds
		for _, seed := range annealSeeds {
			sources = append(sources, fmt.Sprintf("anneal:%d", seed))
		}
	}
	return placements, sources, annealSeeds, nil
}

// explorePareto runs the solver's Pareto-front search and projects the
// outcome onto the wire.
func (s *Server) explorePareto(ctx context.Context, req schedroute.ExploreRequest, b *schedroute.Built, opts schedule.Options, workers int, root *trace.Span) (*schedroute.ExploreResult, error) {
	objectives, err := schedule.ParseObjectives(req.Objectives)
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	placements, sources, annealSeeds, err := explorePlacements(req, b)
	if err != nil {
		return nil, err
	}
	ax := req.TauInAxisOrDefault()
	opts.Procs = workers
	spec := schedule.ExploreSpec{
		MinTauIn:    ax.Min,
		MaxTauIn:    ax.Max,
		GridPoints:  ax.Points,
		Tolerance:   req.Tolerance,
		Placements:  placements,
		AnnealSeeds: annealSeeds,
		Objectives:  objectives,
		Trace:       root,
	}
	if p := req.Axes.Placement; p != nil {
		spec.AnnealSteps = p.AnnealSteps
	}
	front, err := schedule.Explore(ctx, b.ScheduleProblem(), opts, spec)
	if err != nil {
		return nil, err
	}

	out := &schedroute.ExploreResult{
		SchemaVersion: schedroute.SchemaVersion,
		Mode:          schedroute.ExploreModePareto,
		TauC:          front.TauC,
		TauM:          b.Timing.TauM(),
		MinTauIn:      front.MinTauIn,
		Evaluated:     front.Evaluated,
	}
	for _, ob := range front.Objectives {
		out.Objectives = append(out.Objectives, string(ob))
	}
	for i, po := range front.Placements {
		out.Placements = append(out.Placements, schedroute.PlacementOutcome{
			Source:   sources[i],
			Feasible: po.Feasible,
			MinTauIn: po.MinTauIn,
		})
	}
	for _, pt := range front.Points {
		out.Front = append(out.Front, schedroute.ParetoPoint{
			Placement: pt.Placement,
			TauIn:     pt.TauIn,
			Load:      front.TauC / pt.TauIn,
			Window:    pt.Window,
			Latency:   pt.Latency,
			Links:     pt.Links,
			Buffers:   pt.Buffers,
			Peak:      pt.Peak,
		})
	}
	return out, nil
}

// exploreGrid samples the τin axis point by point — the exact legacy
// sweep semantics (and, through the /v1/sweep adapter, its exact
// response bytes). With a placement axis, every point additionally runs
// the best-allocation search across the candidates (feasible beats
// infeasible, then lower peak — schedule.ComputeBestAllocation's order)
// and reports the winner per point.
func (s *Server) exploreGrid(ctx context.Context, req schedroute.ExploreRequest, ent *solverEntry, opts schedule.Options, workers int, root *trace.Span) (*schedroute.ExploreResult, error) {
	b := ent.built
	tauC := b.Timing.TauC()
	ax := req.TauInAxisOrDefault()
	n := ax.Points
	if n == 0 {
		n = 12
	}
	invocations := req.Invocations
	if invocations == 0 {
		invocations = 8
	}
	min, max := ax.Min, ax.Max
	if min == 0 {
		min = tauC
	}
	if max == 0 {
		max = 5 * tauC
	}
	if min <= 0 || max < min {
		// Legacy wording: grid mode is the sweep, and /v1/sweep error
		// bodies must not change through the adapter.
		return nil, errkind.Mark(fmt.Errorf("sweep: bad period range [%g, %g]", min, max), errkind.ErrBadInput)
	}

	// Candidate solvers: the cache entry's solver serves the problem's
	// own placement; extra candidates each get one solver shared by all
	// their points, so the τin-independent derivations run once per
	// placement no matter the grid size.
	placements, sources, annealSeeds, err := explorePlacements(req, b)
	if err != nil {
		return nil, err
	}
	if len(annealSeeds) > 0 {
		p := req.Axes.Placement
		annealed, err := parallel.Map(ctx, len(annealSeeds), workers, func(i int) (*alloc.Assignment, error) {
			return alloc.Anneal(b.Graph, b.Topology, alloc.AnnealOptions{Seed: annealSeeds[i], Steps: p.AnnealSteps})
		})
		if err != nil {
			return nil, err
		}
		placements = append(placements, annealed...)
	}
	solvers := make([]*schedule.Solver, len(placements))
	solvers[0] = ent.solver
	for i := 1; i < len(placements); i++ {
		prob := b.ScheduleProblem()
		prob.Assignment = placements[i]
		solvers[i] = schedule.NewSolver(prob)
	}
	multi := len(placements) > 1

	// Per-point spans are pre-created serially in index order (no-ops on
	// an untraced request), so a traced fan-out has a worker-count
	// independent structure.
	spans := make([]*trace.Span, n)
	for i := range spans {
		spans[i] = root.Start(SpanExplorePoint, trace.Int("index", i))
	}

	points := make([]schedroute.SweepPoint, n)
	winners := make([]int, n)
	err = parallel.ForEach(ctx, n, workers, func(i int) error {
		defer spans[i].End()
		tauIn := min
		if n > 1 {
			tauIn = min + (max-min)*float64(i)/float64(n-1)
		}
		o := opts
		o.Trace = spans[i]
		res, err := solvers[0].Solve(ctx, tauIn, o)
		if err != nil {
			return err
		}
		s.metrics.observeSolve(res.Stats)
		winner := 0
		for c := 1; c < len(solvers); c++ {
			cres, err := solvers[c].Solve(ctx, tauIn, o)
			if err != nil {
				return err
			}
			s.metrics.observeSolve(cres.Stats)
			if schedule.Better(cres, res) {
				res, winner = cres, c
			}
		}
		winners[i] = winner
		pt := schedroute.SweepPoint{
			TauIn:   tauIn,
			Load:    tauC / tauIn,
			PeakLSD: res.PeakLSD,
			Peak:    res.Peak,
		}
		if res.Feasible {
			pt.Feasible = true
			pt.Latency = res.Latency
			if req.Execute {
				exec, err := schedule.Execute(res.Omega, b.Graph, b.Timing, tauC, invocations)
				if err != nil {
					return fmt.Errorf("sweep: execute at τin=%g: %w", tauIn, err)
				}
				ivs := metrics.Intervals(exec.OutputCompletions)
				th, err := metrics.NormalizedThroughput(tauIn, ivs)
				if err != nil {
					return fmt.Errorf("sweep: throughput at τin=%g: %w", tauIn, err)
				}
				pt.Executed = true
				pt.ThroughputMid = th.Mid
				pt.OI = metrics.OutputInconsistent(tauIn, ivs, 1e-6)
			}
		} else {
			pt.FailStage = res.FailStage.String()
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &schedroute.ExploreResult{
		SchemaVersion: schedroute.SchemaVersion,
		Mode:          schedroute.ExploreModeGrid,
		TauC:          tauC,
		TauM:          b.Timing.TauM(),
		Points:        points,
	}
	if multi {
		out.Winners = winners
		for i, src := range sources {
			po := schedroute.PlacementOutcome{Source: src}
			for j, w := range winners {
				if w == i && points[j].Feasible {
					po.Feasible = true
					break
				}
			}
			out.Placements = append(out.Placements, po)
		}
	}
	return out, nil
}

// sweep serves the legacy /v1/sweep endpoint through the exploration
// engine: the adapter pins the request to grid mode over the τin axis,
// and the projection returns the exact legacy response body.
func (s *Server) sweep(ctx context.Context, req schedroute.SweepRequest) (*schedroute.SweepResult, error) {
	// Surface the legacy failures in the legacy order and wording before
	// delegating: options first, then the point count (after its 0 → 12
	// default, exactly as the sweep always checked it).
	if _, err := req.Options.ToSchedule(); err != nil {
		return nil, err
	}
	n := req.Points
	if n == 0 {
		n = 12
	}
	if n < 1 || n > 100000 {
		return nil, errkind.Mark(fmt.Errorf("sweep: points %d out of range [1,100000]", n), errkind.ErrBadInput)
	}
	out, err := s.explore(ctx, req.ToExplore(), nil)
	if err != nil {
		return nil, err
	}
	return out.SweepResult(), nil
}
