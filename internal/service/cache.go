package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"schedroute/internal/schedule"
	"schedroute/pkg/schedroute"
)

// solverEntry is one cached problem structure: the resolved machine
// and workload plus the schedule.Solver amortizing every
// τin-independent derivation (LSD baseline, path candidates, task
// starts, validation) across requests.
type solverEntry struct {
	key string
	// once guards the build: the first caller runs it, every other
	// caller (hit or concurrent miss) waits on it before reading.
	once   sync.Once
	built  *schedroute.Built
	solver *schedule.Solver
	err    error
	// done flips once the build (success or failure) has finished, so
	// lookups that must not block — the snapshot endpoint, the metrics
	// build-total scan — can skip entries still mid-build without ever
	// touching once.
	done atomic.Bool
	// hydrated marks a solver recovered from a snapshot instead of
	// derived cold; write-behind persistence skips such entries.
	hydrated bool
	// snapOnce guards the write-behind snapshot persist for this entry.
	snapOnce sync.Once
}

// solverCache is an LRU of solverEntry keyed by
// schedroute.Problem.StructureKey. A hit means a request skips spec
// parsing, workload construction, and — through the Solver — the
// τin-independent halves of the pipeline.
type solverCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recent
	ent map[string]*list.Element // key -> element whose Value is *solverEntry

	hits      int64
	misses    int64
	evictions int64 // entries dropped at capacity (not failed-build retries)

	// hydrate, when set, runs inside a miss's build step and may return
	// a snapshot-recovered solver instead of letting the entry derive
	// its structure cold.
	hydrate func(key string, b *schedroute.Built) (*schedule.Solver, bool)
}

func newSolverCache(capacity int) *solverCache {
	if capacity < 1 {
		capacity = 1
	}
	return &solverCache{cap: capacity, ll: list.New(), ent: map[string]*list.Element{}}
}

// getOrCreate returns the entry for key, creating (and possibly
// evicting) under the lock but building outside it, so a slow build
// never serializes unrelated keys. The hit/miss counters record whether
// the caller found an existing entry; the returned hit flag reports the
// same per-call, feeding the request trace's cache_hit attribute. Every
// caller — hit or miss — funnels through the entry's once.Do, so a hit
// on an entry still mid-build blocks until the build finishes instead
// of observing a half-initialized entry (nil built/solver with nil
// err).
func (c *solverCache) getOrCreate(key string, build func() (*schedroute.Built, error)) (*solverEntry, bool) {
	c.mu.Lock()
	var e *solverEntry
	hit := false
	if el, ok := c.ent[key]; ok {
		c.hits++
		hit = true
		c.ll.MoveToFront(el)
		e = el.Value.(*solverEntry)
	} else {
		c.misses++
		e = &solverEntry{key: key}
		c.ent[key] = c.ll.PushFront(e)
		for c.ll.Len() > c.cap {
			old := c.ll.Back()
			c.ll.Remove(old)
			delete(c.ent, old.Value.(*solverEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		defer e.done.Store(true)
		b, err := build()
		if err != nil {
			e.err = err
			c.evict(key, e)
			return
		}
		e.built = b
		if c.hydrate != nil {
			if s, ok := c.hydrate(key, b); ok {
				e.solver = s
				e.hydrated = true
				return
			}
		}
		e.solver = schedule.NewSolver(b.ScheduleProblem())
	})
	return e, hit
}

// evict drops a failed entry so a corrected retry of the same key
// rebuilds instead of replaying the cached error forever.
func (c *solverCache) evict(key string, e *solverEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[key]; ok && el.Value.(*solverEntry) == e {
		c.ll.Remove(el)
		delete(c.ent, key)
	}
}

// lookupBySnapshotID finds the finished, healthy entry whose
// StructureKey hashes to id (the wire identity snapshots travel
// under). Entries still mid-build are skipped, not waited for: the
// snapshot endpoint serves what exists now or reports not-found. The
// scan is linear, bounded by the cache capacity (tens of entries).
func (c *solverCache) lookupBySnapshotID(id string) *solverEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*solverEntry)
		if e.done.Load() && e.err == nil && e.solver != nil && snapshotID(e.key) == id {
			return e
		}
	}
	return nil
}

// solverBuildTotals sums the structure-derivation counters across all
// live, finished entries — the fleet-level evidence that warm starts
// actually skipped derivation (a fully hydrated replica reports zero
// baseline and candidate builds).
func (c *solverCache) solverBuildTotals() schedule.SolverCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tot schedule.SolverCacheStats
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*solverEntry)
		if !e.done.Load() || e.solver == nil {
			continue
		}
		st := e.solver.CacheStats()
		tot.Solves += st.Solves
		tot.BaselineBuilds += st.BaselineBuilds
		tot.CandidateBuilds += st.CandidateBuilds
		tot.StartsBuilds += st.StartsBuilds
		tot.ValidateBuilds += st.ValidateBuilds
	}
	return tot
}

func (c *solverCache) stats() (hits, misses, evictions int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
