package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"schedroute/internal/topology"
)

func cube(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestSingleLinkCoversEveryLink(t *testing.T) {
	top := cube(t)
	trs := SingleLink(top, 2)
	if len(trs) != top.Links() {
		t.Fatalf("%d scenarios for %d links", len(trs), top.Links())
	}
	seen := map[topology.LinkID]bool{}
	for _, tr := range trs {
		if len(tr.Events) != 1 || tr.Events[0].IsNode {
			t.Fatalf("scenario %s malformed", tr.Name)
		}
		e := tr.Events[0]
		if e.At != 2 || e.RepairedAt >= 0 {
			t.Errorf("scenario %s: want permanent fault at invocation 2, got %s", tr.Name, e)
		}
		seen[e.Link] = true
	}
	if len(seen) != top.Links() {
		t.Errorf("scenarios cover %d distinct links, want %d", len(seen), top.Links())
	}
}

func TestSingleNodeCoversEveryNode(t *testing.T) {
	top := cube(t)
	trs := SingleNode(top, 1)
	if len(trs) != top.Nodes() {
		t.Fatalf("%d scenarios for %d nodes", len(trs), top.Nodes())
	}
	for i, tr := range trs {
		if !tr.Events[0].IsNode || tr.Events[0].Node != topology.NodeID(i) {
			t.Errorf("scenario %d targets %s", i, tr.Events[0])
		}
	}
}

func TestActiveAtWindows(t *testing.T) {
	top := cube(t)
	tr := Trace{Events: []Event{
		{Link: 0, At: 2, RepairedAt: 5},
		{IsNode: true, Node: 3, At: 4, RepairedAt: -1},
	}}
	cases := []struct {
		inv        int
		link, node bool
	}{
		{0, false, false},
		{2, true, false},
		{4, true, true},
		{5, false, true},
		{9, false, true},
	}
	for _, c := range cases {
		fs := tr.ActiveAt(top, c.inv)
		if fs.LinkFailed(0) != c.link || fs.NodeFailed(3) != c.node {
			t.Errorf("inv %d: link=%v node=%v, want link=%v node=%v",
				c.inv, fs.LinkFailed(0), fs.NodeFailed(3), c.link, c.node)
		}
	}
	if got, want := tr.Epochs(10), []int{2, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Epochs = %v, want %v", got, want)
	}
	if got := tr.Epochs(4); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Epochs(4) = %v, want [2]", got)
	}
}

func TestDoubleLinkDeterministicAndDistinct(t *testing.T) {
	top := cube(t)
	a := DoubleLink(top, 7, 10, 1)
	b := DoubleLink(top, 7, 10, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give the same scenarios")
	}
	c := DoubleLink(top, 8, 10, 1)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
	seen := map[string]bool{}
	for _, tr := range a {
		if seen[tr.Name] {
			t.Errorf("duplicate pair %s", tr.Name)
		}
		seen[tr.Name] = true
		if len(tr.Events) != 2 || tr.Events[0].Link == tr.Events[1].Link {
			t.Errorf("scenario %s malformed", tr.Name)
		}
	}
	// Exhaustive fallback when count >= all pairs.
	nl := top.Links()
	all := DoubleLink(top, 1, nl*nl, 0)
	if len(all) != nl*(nl-1)/2 {
		t.Errorf("exhaustive enumeration has %d pairs, want %d", len(all), nl*(nl-1)/2)
	}
}

func TestRandomTraceDeterministic(t *testing.T) {
	top := cube(t)
	opts := RandomOptions{Events: 5, Horizon: 6, NodeFraction: 0.3, RepairFraction: 0.5}
	a := RandomTrace(top, 42, opts)
	b := RandomTrace(top, 42, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give the same trace")
	}
	if len(a.Events) != 5 {
		t.Fatalf("%d events, want 5", len(a.Events))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Error("events must be sorted by failure time")
		}
	}
	for _, e := range a.Events {
		if e.RepairedAt >= 0 && e.RepairedAt <= e.At {
			t.Errorf("event %s repaired before it fails", e)
		}
	}
}

// TestValidateMalformedTraces table-tests every malformed shape
// Validate must reject with a typed *InvalidTraceError.
func TestValidateMalformedTraces(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		bad    int    // expected offending index, -1 for a valid trace
		reason string // substring of the expected reason
	}{
		{"valid permanent", []Event{{Link: 1, At: 2, RepairedAt: -1}}, -1, ""},
		{"valid transient", []Event{{Link: 1, At: 2, RepairedAt: 5}}, -1, ""},
		{"valid sorted pair", []Event{
			{Link: 1, At: 0, RepairedAt: -1}, {Link: 2, At: 3, RepairedAt: 4}}, -1, ""},
		{"empty", nil, -1, ""},
		{"negative fault time", []Event{{Link: 1, At: -3, RepairedAt: -1}}, 0, "negative fault time"},
		{"negative repair time", []Event{{Link: 1, At: 0, RepairedAt: -2}}, 0, "negative repair time"},
		{"repair before fail", []Event{{Link: 1, At: 5, RepairedAt: 3}}, 0, "repaired at or before"},
		{"repair at fail instant", []Event{{Link: 1, At: 5, RepairedAt: 5}}, 0, "repaired at or before"},
		{"unsorted", []Event{
			{Link: 1, At: 4, RepairedAt: -1}, {Link: 2, At: 1, RepairedAt: -1}}, 1, "not sorted"},
		{"second event negative", []Event{
			{Link: 1, At: 0, RepairedAt: -1}, {Node: 2, IsNode: true, At: -1, RepairedAt: -1}}, 1, "negative fault time"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := Trace{Name: tc.name, Events: tc.events}
			err := tr.Validate()
			if tc.bad < 0 {
				if err != nil {
					t.Fatalf("valid trace rejected: %v", err)
				}
				return
			}
			var ite *InvalidTraceError
			if !errors.As(err, &ite) {
				t.Fatalf("want *InvalidTraceError, got %v", err)
			}
			if ite.Index != tc.bad {
				t.Fatalf("offending index %d, want %d (%v)", ite.Index, tc.bad, err)
			}
			if !strings.Contains(ite.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", ite.Reason, tc.reason)
			}
		})
	}
}

// TestDeltasReproduceActiveAt replays a seeded transient trace as an
// event stream and checks the cumulative fault set against ActiveAt at
// every epoch — the contract the watch-service scenario replayer
// leans on.
func TestDeltasReproduceActiveAt(t *testing.T) {
	top := cube(t)
	tr := RandomTrace(top, 7, RandomOptions{Events: 5, Horizon: 10, RepairFraction: 0.6, NodeFraction: 0.2})
	const horizon = 16
	ds, err := tr.Deltas(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no deltas from a 5-event trace")
	}
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	last := -1
	for _, d := range ds {
		if d.Inv <= last {
			t.Fatalf("deltas out of order: %d after %d", d.Inv, last)
		}
		last = d.Inv
		for _, e := range d.Fail {
			if e.IsNode {
				fs.FailNode(e.Node)
			} else {
				fs.FailLink(e.Link)
			}
		}
		for _, e := range d.Repair {
			if e.IsNode {
				fs.RepairNode(e.Node)
			} else {
				fs.RepairLink(e.Link)
			}
		}
		want := tr.ActiveAt(top, d.Inv)
		if fs.String() != want.String() {
			t.Fatalf("epoch %d: cumulative deltas give %s, ActiveAt gives %s", d.Inv, fs, want)
		}
	}
}

// TestDeltasRejectInvalid: the replayer refuses malformed traces
// rather than replaying nonsense.
func TestDeltasRejectInvalid(t *testing.T) {
	tr := Trace{Name: "bad", Events: []Event{{Link: 0, At: 3, RepairedAt: 1}}}
	if _, err := tr.Deltas(8); err == nil {
		t.Fatal("Deltas accepted a repair-before-fail trace")
	}
}
