// Package faults generates deterministic fault scenarios for the
// robustness layer: which links or nodes die, at which invocation, and
// when (if ever) they return to service. Scenario generation is seeded
// and reproducible, so survivability sweeps are byte-identical across
// runs and across serial/parallel execution.
//
// A scenario is a trace of fault events against invocation indices; at
// any invocation it induces a topology.FaultSet, which the scheduler's
// repair pipeline and the packet simulator's mid-run injection consume.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"schedroute/internal/topology"
)

// Event is one element failure in a trace: the element dies at the
// start of invocation At and returns to service at the start of
// invocation RepairedAt (RepairedAt < 0 means it never does).
type Event struct {
	// IsNode selects which element identifier is meaningful.
	IsNode bool
	Link   topology.LinkID
	Node   topology.NodeID
	// At is the invocation index at which the element fails.
	At int
	// RepairedAt is the invocation at which the element is back in
	// service; negative means the fault is permanent.
	RepairedAt int
}

// String renders the event, e.g. "link 3 @inv 2 (permanent)".
func (e Event) String() string {
	kind := fmt.Sprintf("link %d", e.Link)
	if e.IsNode {
		kind = fmt.Sprintf("node %d", e.Node)
	}
	if e.RepairedAt < 0 {
		return fmt.Sprintf("%s @inv %d (permanent)", kind, e.At)
	}
	return fmt.Sprintf("%s @inv %d (repaired @inv %d)", kind, e.At, e.RepairedAt)
}

// Trace is a named fault scenario.
type Trace struct {
	Name   string
	Events []Event
}

// InvalidTraceError reports a malformed scenario: negative times,
// repair-at-or-before-fail orderings, or events out of At order. Index
// names the offending event (the later one for ordering violations).
type InvalidTraceError struct {
	Trace  string
	Index  int
	Event  Event
	Reason string
}

func (e *InvalidTraceError) Error() string {
	return fmt.Sprintf("faults: trace %q event %d (%s): %s", e.Trace, e.Index, e.Event, e.Reason)
}

// Validate rejects malformed scenarios with a typed *InvalidTraceError
// instead of letting them silently produce nonsense fault sets:
//
//   - fault or repair times must be non-negative (RepairedAt < 0 is the
//     explicit "permanent" marker, any other negative value is an error);
//   - a transient fault must be repaired strictly after it strikes
//     (ActiveAt treats RepairedAt <= inv as back in service, so
//     RepairedAt <= At would be a fault that never existed);
//   - events must be sorted by non-decreasing At, the order every
//     generator in this package emits and every replayer assumes.
func (tr *Trace) Validate() error {
	for i, e := range tr.Events {
		fail := func(reason string) error {
			return &InvalidTraceError{Trace: tr.Name, Index: i, Event: e, Reason: reason}
		}
		if e.At < 0 {
			return fail("negative fault time")
		}
		if e.RepairedAt < -1 {
			return fail("negative repair time (use -1 for permanent)")
		}
		if e.RepairedAt >= 0 && e.RepairedAt <= e.At {
			return fail("repaired at or before the fault strikes")
		}
		if i > 0 && e.At < tr.Events[i-1].At {
			return fail("events not sorted by fault time")
		}
	}
	return nil
}

// Delta is the change to the fault population at one invocation epoch:
// the elements failing and the elements returning to service. This is
// the event-stream form of a trace — what a scenario replayer pushes
// at a /v1/watch subscription, one Delta per epoch.
type Delta struct {
	// Inv is the invocation index at which the change takes effect.
	Inv int
	// Fail lists the events whose element dies at this epoch.
	Fail []Event
	// Repair lists the events whose element returns at this epoch.
	Repair []Event
}

// Deltas converts the trace into its event-stream form over [0,
// horizon): one Delta per epoch, in invocation order. Applying the
// deltas cumulatively to an empty fault set reproduces ActiveAt at
// every epoch. The trace must be valid (see Validate).
func (tr *Trace) Deltas(horizon int) ([]Delta, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	out := make([]Delta, 0, len(tr.Events))
	for _, inv := range tr.Epochs(horizon) {
		d := Delta{Inv: inv}
		for _, e := range tr.Events {
			if e.At == inv {
				d.Fail = append(d.Fail, e)
			}
			if e.RepairedAt == inv {
				d.Repair = append(d.Repair, e)
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// ActiveAt returns the fault set in force during invocation inv: every
// event that has struck (At <= inv) and not yet been repaired
// (RepairedAt < 0 or RepairedAt > inv). The returned set is freshly
// built; callers own it.
func (tr *Trace) ActiveAt(top *topology.Topology, inv int) *topology.FaultSet {
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	for _, e := range tr.Events {
		if e.At > inv || (e.RepairedAt >= 0 && e.RepairedAt <= inv) {
			continue
		}
		if e.IsNode {
			fs.FailNode(e.Node)
		} else {
			fs.FailLink(e.Link)
		}
	}
	return fs
}

// Epochs returns the sorted invocation indices in [0, horizon) at which
// the active fault set changes — the points where a repair pipeline
// must produce a new Ω.
func (tr *Trace) Epochs(horizon int) []int {
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if e.At >= 0 && e.At < horizon {
			seen[e.At] = true
		}
		if e.RepairedAt >= 0 && e.RepairedAt < horizon {
			seen[e.RepairedAt] = true
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// MaxFailedLinks returns an upper bound on simultaneously failed links,
// used by harnesses to size reports.
func (tr *Trace) MaxFailedLinks() int {
	n := 0
	for _, e := range tr.Events {
		if !e.IsNode {
			n++
		}
	}
	return n
}

// SingleLink enumerates one permanent single-link-fault scenario per
// link of the topology, striking at invocation failAt. This is the
// exhaustive population the survivability sweep measures.
func SingleLink(top *topology.Topology, failAt int) []Trace {
	out := make([]Trace, top.Links())
	for l := 0; l < top.Links(); l++ {
		lk := top.Link(topology.LinkID(l))
		out[l] = Trace{
			Name: fmt.Sprintf("link%d(%d-%d)", l, lk.A, lk.B),
			Events: []Event{{
				Link: topology.LinkID(l), At: failAt, RepairedAt: -1,
			}},
		}
	}
	return out
}

// SingleNode enumerates one permanent single-node-fault scenario per
// node, striking at invocation failAt.
func SingleNode(top *topology.Topology, failAt int) []Trace {
	out := make([]Trace, top.Nodes())
	for n := 0; n < top.Nodes(); n++ {
		out[n] = Trace{
			Name: fmt.Sprintf("node%d", n),
			Events: []Event{{
				IsNode: true, Node: topology.NodeID(n), At: failAt, RepairedAt: -1,
			}},
		}
	}
	return out
}

// DoubleLink samples count distinct unordered link pairs uniformly with
// the given seed (deterministic per seed), each failing permanently at
// invocation failAt. When count exceeds the number of distinct pairs,
// every pair is returned (in ascending order).
func DoubleLink(top *topology.Topology, seed int64, count, failAt int) []Trace {
	nl := top.Links()
	total := nl * (nl - 1) / 2
	mk := func(a, b topology.LinkID) Trace {
		return Trace{
			Name: fmt.Sprintf("links%d+%d", a, b),
			Events: []Event{
				{Link: a, At: failAt, RepairedAt: -1},
				{Link: b, At: failAt, RepairedAt: -1},
			},
		}
	}
	if count >= total {
		out := make([]Trace, 0, total)
		for a := 0; a < nl; a++ {
			for b := a + 1; b < nl; b++ {
				out = append(out, mk(topology.LinkID(a), topology.LinkID(b)))
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]int]bool{}
	out := make([]Trace, 0, count)
	for len(out) < count {
		a, b := rng.Intn(nl), rng.Intn(nl)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		out = append(out, mk(topology.LinkID(a), topology.LinkID(b)))
	}
	return out
}

// RandomOptions tunes RandomTrace.
type RandomOptions struct {
	// Events is the number of fault events to draw (default 3).
	Events int
	// Horizon is the invocation range [0, Horizon) fault times are drawn
	// from (default 8).
	Horizon int
	// NodeFraction in [0,1] is the probability an event kills a node
	// rather than a link (default 0: links only).
	NodeFraction float64
	// RepairFraction in [0,1] is the probability a fault is transient,
	// repaired after a uniform 1..Horizon/2 invocations (default 0:
	// permanent faults).
	RepairFraction float64
}

func (o RandomOptions) withDefaults() RandomOptions {
	if o.Events == 0 {
		o.Events = 3
	}
	if o.Horizon == 0 {
		o.Horizon = 8
	}
	return o
}

// RandomTrace draws a fail-at-invocation-k trace with optional repair
// times, deterministic per seed. Distinct elements are drawn without
// replacement so a trace never fails the same element twice.
func RandomTrace(top *topology.Topology, seed int64, opts RandomOptions) Trace {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	usedLink := map[topology.LinkID]bool{}
	usedNode := map[topology.NodeID]bool{}
	tr := Trace{Name: fmt.Sprintf("random(seed=%d)", seed)}
	for len(tr.Events) < o.Events {
		e := Event{At: rng.Intn(o.Horizon), RepairedAt: -1}
		if rng.Float64() < o.NodeFraction {
			n := topology.NodeID(rng.Intn(top.Nodes()))
			if usedNode[n] {
				continue
			}
			usedNode[n] = true
			e.IsNode, e.Node = true, n
		} else {
			l := topology.LinkID(rng.Intn(top.Links()))
			if usedLink[l] {
				continue
			}
			usedLink[l] = true
			e.Link = l
		}
		if o.RepairFraction > 0 && rng.Float64() < o.RepairFraction {
			span := o.Horizon / 2
			if span < 1 {
				span = 1
			}
			e.RepairedAt = e.At + 1 + rng.Intn(span)
		}
		tr.Events = append(tr.Events, e)
	}
	sort.SliceStable(tr.Events, func(a, b int) bool { return tr.Events[a].At < tr.Events[b].At })
	return tr
}
