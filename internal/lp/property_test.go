package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomAllocationLP builds an instance shaped like the Section 5.2
// interval-allocation systems: per-cell variables with EQ demand rows
// (each message's allocation sums to its transmission time), GE lower
// bounds on a few cells, and LE capacity rows coupling random cell
// subsets (link-interval capacity). Roughly a third of the instances
// are driven infeasible by shrinking one capacity below the demand it
// must carry.
func randomAllocationLP(rng *rand.Rand) *Problem {
	nmsgs := 1 + rng.Intn(6)
	K := 1 + rng.Intn(5)
	nvars := nmsgs * K
	p := NewProblem(nvars)
	for j := 0; j < nvars; j++ {
		p.SetCost(j, rng.Float64())
	}
	demand := make([]float64, nmsgs)
	for m := 0; m < nmsgs; m++ {
		demand[m] = 1 + 10*rng.Float64()
		idx := make([]int32, K)
		val := make([]float64, K)
		for k := 0; k < K; k++ {
			idx[k] = int32(m*K + k)
			val[k] = 1
		}
		if err := p.AddRow(idx, val, EQ, demand[m]); err != nil {
			panic(err)
		}
	}
	// A few per-cell lower bounds (pinned allocations).
	for n := rng.Intn(3); n > 0; n-- {
		j := rng.Intn(nvars)
		_ = p.AddRow([]int32{int32(j)}, []float64{1}, GE, rng.Float64())
	}
	// Capacity rows over random ascending cell subsets.
	total := 0.0
	for _, d := range demand {
		total += d
	}
	rows := 1 + rng.Intn(2*K)
	for r := 0; r < rows; r++ {
		var idx []int32
		var val []float64
		for j := 0; j < nvars; j++ {
			if rng.Float64() < 0.4 {
				idx = append(idx, int32(j))
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			continue
		}
		cap := total * (0.1 + rng.Float64())
		if rng.Float64() < 0.15 {
			cap = 0 // likely infeasible against the EQ demands
		}
		_ = p.AddRow(idx, val, LE, cap)
	}
	return p
}

// randomDenseLP builds an unstructured instance (dense-ish rows, mixed
// ops, negative coefficients and RHS) to cover the normalization and
// unbounded paths the structured generator cannot reach.
func randomDenseLP(rng *rand.Rand) *Problem {
	nvars := 1 + rng.Intn(8)
	p := NewProblem(nvars)
	for j := 0; j < nvars; j++ {
		p.SetCost(j, rng.NormFloat64())
	}
	rows := rng.Intn(8)
	ops := []Op{LE, GE, EQ}
	for r := 0; r < rows; r++ {
		a := make([]float64, nvars)
		for j := range a {
			if rng.Float64() < 0.6 {
				a[j] = rng.NormFloat64()
			}
		}
		_ = p.AddDense(a, ops[rng.Intn(len(ops))], rng.NormFloat64()*5)
	}
	return p
}

func checkAgreement(t *testing.T, p *Problem, seed int64, kind string) {
	t.Helper()
	sparse := p.Solve()
	dense := p.SolveDense()
	if sparse.Status != dense.Status {
		t.Fatalf("%s seed %d: sparse status %v, dense status %v", kind, seed, sparse.Status, dense.Status)
	}
	if sparse.Status != Optimal {
		return
	}
	if math.Abs(sparse.Objective-dense.Objective) > 1e-6 {
		t.Fatalf("%s seed %d: sparse objective %g, dense %g", kind, seed, sparse.Objective, dense.Objective)
	}
	for j := range sparse.X {
		if sparse.X[j] != dense.X[j] {
			t.Fatalf("%s seed %d: x[%d] sparse %g, dense %g", kind, seed, j, sparse.X[j], dense.X[j])
		}
	}
}

// TestSparseDenseAgreement is the backend cross-check: on randomized
// allocation-shaped and unstructured systems — feasible, infeasible and
// unbounded alike — the sparse revised simplex must report the same
// status as the dense reference, and on optimal instances the same
// objective and the bit-identical vertex (same pivot sequence).
func TestSparseDenseAgreement(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	for seed := int64(0); seed < int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed))
		checkAgreement(t, randomAllocationLP(rng), seed, "alloc")
		checkAgreement(t, randomDenseLP(rng), seed, "dense")
	}
}

// TestSparseDenseAgreementAfterReset replays the cross-check through
// one pooled Problem, the way solveArena uses it: Reset must leave no
// residue that changes any answer.
func TestSparseDenseAgreementAfterReset(t *testing.T) {
	pooled := NewProblem(1)
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fresh := randomAllocationLP(rng)

		// Rebuild the identical system on the pooled problem.
		pooled.Reset(fresh.NumVars())
		for j := 0; j < fresh.NumVars(); j++ {
			pooled.SetCost(j, fresh.c[j])
		}
		for r := 0; r < fresh.NumConstraints(); r++ {
			idx, val := fresh.rowNonzeros(r)
			if err := pooled.AddRow(idx, val, fresh.ops[r], fresh.bs[r]); err != nil {
				t.Fatal(err)
			}
		}

		want := fresh.Solve()
		got := pooled.Solve()
		if got.Status != want.Status || got.Objective != want.Objective {
			t.Fatalf("seed %d: pooled (%v, %g) vs fresh (%v, %g)",
				seed, got.Status, got.Objective, want.Status, want.Objective)
		}
		for j := range want.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("seed %d: pooled x[%d] = %g, fresh %g", seed, j, got.X[j], want.X[j])
			}
		}
	}
}
