package lp

import "math"

// The sparse tableau. Interval-membership systems are extremely sparse —
// a demand row touches one message's active intervals, a capacity row
// one link's users — and the dense tableau spends almost all its time
// multiplying and copying structural zeros. The rows here store only
// nonzeros (index-sorted), and every pivot walks the union of two rows'
// supports instead of the full column range.
//
// Bit-identity with the dense oracle is by construction, not by
// tolerance: the entering/leaving choices read the same values the dense
// code reads (absent entries are exact zeros on both sides), and each
// pivot performs the identical `v -= f*t` / `v *= inv` operation on each
// nonzero position in the same dependency order. Entries that cancel to
// exactly zero are dropped from the support; the dense tableau keeps a
// stored ±0 there, but a stored zero and an absent entry are
// interchangeable in IEEE arithmetic up to the sign of zero, which no
// comparison, division (pivots exceed eps in magnitude), or emitted
// value in this package can distinguish.

// sparseWork is the reusable Solve scratch owned by a Problem.
type sparseWork struct {
	idx   [][]int32
	val   [][]float64
	rhs   []float64
	basis []int
	obj   []float64
	tmpI  []int32
	tmpV  []float64
}

// lookup returns the coefficient at column j of the sorted support, or
// exactly 0 when absent.
func lookup(idx []int32, val []float64, j int32) float64 {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if idx[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && idx[lo] == j {
		return val[lo]
	}
	return 0
}

func (w *sparseWork) ensure(m int) {
	if cap(w.idx) < m {
		ni := make([][]int32, m)
		copy(ni, w.idx)
		w.idx = ni
		nv := make([][]float64, m)
		copy(nv, w.val)
		w.val = nv
	} else {
		w.idx = w.idx[:m]
		w.val = w.val[:m]
	}
	if cap(w.rhs) < m {
		w.rhs = make([]float64, m)
		w.basis = make([]int, m)
	} else {
		w.rhs = w.rhs[:m]
		w.basis = w.basis[:m]
	}
}

// scaleRow multiplies row r by inv and then forces column enter to
// exactly 1, mirroring the dense pivot's exactness fix-up.
func (w *sparseWork) scaleRow(r int, inv float64, enter int32) {
	iv, vv := w.idx[r], w.val[r]
	for t := range vv {
		vv[t] *= inv
	}
	for t, j := range iv {
		if j == enter {
			vv[t] = 1 // exactness
			break
		}
	}
	w.rhs[r] *= inv
}

// eliminate subtracts f times the (already scaled) leave row from row r
// over the union of their supports, dropping the enter column (the dense
// code zeroes it explicitly) and any entry that cancels to exact zero.
func (w *sparseWork) eliminate(r, leave int, f float64, enter int32) {
	ai, av := w.idx[r], w.val[r]
	bi, bv := w.idx[leave], w.val[leave]
	ti, tv := w.tmpI[:0], w.tmpV[:0]
	x, y := 0, 0
	for x < len(ai) && y < len(bi) {
		switch {
		case ai[x] == bi[y]:
			if j := ai[x]; j != enter {
				// The same op the dense loop performs at this cell.
				if v := av[x] - f*bv[y]; v != 0 {
					ti = append(ti, j)
					tv = append(tv, v)
				}
			}
			x++
			y++
		case ai[x] < bi[y]:
			// Leave row is zero here: dense computes v -= f*0, a no-op.
			if j := ai[x]; j != enter {
				ti = append(ti, j)
				tv = append(tv, av[x])
			}
			x++
		default:
			// Row r is zero here: dense computes 0 - f*t.
			if j := bi[y]; j != enter {
				if v := 0 - f*bv[y]; v != 0 {
					ti = append(ti, j)
					tv = append(tv, v)
				}
			}
			y++
		}
	}
	for ; x < len(ai); x++ {
		if j := ai[x]; j != enter {
			ti = append(ti, j)
			tv = append(tv, av[x])
		}
	}
	for ; y < len(bi); y++ {
		if j := bi[y]; j != enter {
			if v := 0 - f*bv[y]; v != 0 {
				ti = append(ti, j)
				tv = append(tv, v)
			}
		}
	}
	w.rhs[r] -= f * w.rhs[leave]
	// Swap the merged result in, recycling row r's old backing as the
	// next merge's scratch.
	w.idx[r], w.tmpI = ti, ai[:0]
	w.val[r], w.tmpV = tv, av[:0]
}

// pivotSparse makes column enter basic in row leave: the sparse
// counterpart of the dense pivot, touching only stored nonzeros.
func (w *sparseWork) pivotSparse(leave int, enter int32, total int) {
	pv := lookup(w.idx[leave], w.val[leave], enter)
	inv := 1.0 / pv
	w.scaleRow(leave, inv, enter)
	for i := range w.idx {
		if i == leave {
			continue
		}
		f := lookup(w.idx[i], w.val[i], enter)
		if f == 0 {
			continue
		}
		w.eliminate(i, leave, f, enter)
	}
	if f := w.obj[enter]; f != 0 {
		li, lv := w.idx[leave], w.val[leave]
		for t, j := range li {
			w.obj[j] -= f * lv[t]
		}
		w.obj[total] -= f * w.rhs[leave]
		w.obj[enter] = 0
	}
	w.basis[leave] = int(enter)
}

// iterateSparse runs primal simplex with Bland's rule over the sparse
// tableau until optimal; returns false on unboundedness. The entering
// and leaving scans read exactly the values the dense scans read.
func (w *sparseWork) iterateSparse(total, barred int) bool {
	for {
		enter := -1
		for j := 0; j < barred; j++ {
			if w.obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return true
		}
		leave, best := -1, math.Inf(1)
		for i := range w.idx {
			coeff := lookup(w.idx[i], w.val[i], int32(enter))
			if coeff > eps {
				ratio := w.rhs[i] / coeff
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || w.basis[i] < w.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return false
		}
		w.pivotSparse(leave, int32(enter), total)
	}
}

// Solve runs two-phase simplex over the sparse tableau and returns the
// solution. When the problem is Infeasible or Unbounded, X is nil. The
// result is bit-identical to SolveDense on the same system.
func (p *Problem) Solve() Solution {
	m := len(p.ops)
	if m == 0 {
		// Trivially feasible at the origin.
		return Solution{Status: Optimal, X: make([]float64, p.nvars)}
	}

	nSlack, nArt := p.auxCounts()
	total := p.nvars + nSlack + nArt
	artStart := p.nvars + nSlack

	w := &p.w
	w.ensure(m)
	slackIdx, artIdx := int32(p.nvars), int32(artStart)
	for i := 0; i < m; i++ {
		ji, jv := p.rowNonzeros(i)
		ri := append(w.idx[i][:0], ji...)
		rv := append(w.val[i][:0], jv...)
		b, op := p.bs[i], p.ops[i]
		if b < 0 {
			for t := range rv {
				rv[t] = -rv[t]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		// Slack then artificial columns come after every structural
		// index, so appending keeps the support sorted.
		switch op {
		case LE:
			ri = append(ri, slackIdx)
			rv = append(rv, 1)
			w.basis[i] = int(slackIdx)
			slackIdx++
		case GE:
			ri = append(ri, slackIdx)
			rv = append(rv, -1)
			slackIdx++
			ri = append(ri, artIdx)
			rv = append(rv, 1)
			w.basis[i] = int(artIdx)
			artIdx++
		case EQ:
			ri = append(ri, artIdx)
			rv = append(rv, 1)
			w.basis[i] = int(artIdx)
			artIdx++
		}
		w.idx[i], w.val[i] = ri, rv
		w.rhs[i] = b
	}

	if cap(w.obj) < total+1 {
		w.obj = make([]float64, total+1)
	} else {
		w.obj = w.obj[:total+1]
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj := w.obj
		for j := range obj {
			obj[j] = 0
		}
		for j := artStart; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis.
		for i, bj := range w.basis {
			if bj >= artStart {
				ri, rv := w.idx[i], w.val[i]
				for t, j := range ri {
					obj[j] -= rv[t]
				}
				obj[total] -= w.rhs[i]
			}
		}
		if !w.iterateSparse(total, total) {
			// Phase 1 objective is bounded below by zero, so
			// unboundedness cannot occur; treat defensively.
			return Solution{Status: Infeasible}
		}
		if -obj[total] > 1e-7 {
			return Solution{Status: Infeasible}
		}
		// Drive any artificial still in the basis out (degenerate zero
		// rows); if impossible the row is redundant.
		for i, bj := range w.basis {
			if bj < artStart {
				continue
			}
			pivoted := false
			for t, j := range w.idx[i] {
				if int(j) >= artStart {
					break
				}
				if math.Abs(w.val[i][t]) > eps {
					w.pivotSparse(i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant constraint: zero the row to neutralize it.
				w.idx[i] = w.idx[i][:0]
				w.val[i] = w.val[i][:0]
				w.rhs[i] = 0
			}
		}
	}

	// Phase 2: original objective over structural + slack columns;
	// artificial columns are frozen out by barring them from entering.
	obj := w.obj
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, p.c)
	for i, bj := range w.basis {
		if bj <= total && obj[bj] != 0 {
			cb := obj[bj]
			ri, rv := w.idx[i], w.val[i]
			for t, j := range ri {
				obj[j] -= cb * rv[t]
			}
			obj[total] -= cb * w.rhs[i]
		}
	}

	if !w.iterateSparse(total, artStart) {
		return Solution{Status: Unbounded}
	}

	x := make([]float64, p.nvars)
	for i, bj := range w.basis {
		if bj < p.nvars {
			x[bj] = w.rhs[i]
		}
	}
	objVal := 0.0
	for j := 0; j < p.nvars; j++ {
		objVal += p.c[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}
}
