// Package lp implements a two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// It is the optimization substrate behind the paper's Section 5.2
// message-interval allocation (a pure feasibility system) and the
// Section 5.3 interval-scheduling program (minimize the summed durations
// of link-feasible sets). Bland's rule is used throughout, so the solver
// cannot cycle.
//
// Constraint rows are stored sparsely and Solve runs a sparse revised
// tableau (see sparse.go) that performs exactly the floating-point
// operations of the reference dense tableau on the nonzero entries — the
// pivot sequence and every produced value match SolveDense bit for bit —
// while skipping the structurally-zero work that dominates the
// interval-membership systems this repository generates. SolveDense
// retains the original dense implementation as a cross-check oracle.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is a_i·x <= b_i.
	LE Op = iota
	// EQ is a_i·x == b_i.
	EQ
	// GE is a_i·x >= b_i.
	GE
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution with x >= 0.
	Infeasible
	// Unbounded means the objective can decrease without bound.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

const eps = 1e-9

// Problem is a linear program under construction. The zero objective
// turns Solve into a pure feasibility check. Rows live in append-only
// arenas so a Problem can be pooled: Reset rewinds it for a new system
// without releasing any backing storage.
type Problem struct {
	nvars int
	c     []float64

	// One constraint per entry of ops/bs; row r's nonzeros are
	// ridx[offs[r]:offs[r+1]] (strictly ascending) with coefficients at
	// the same positions of rval.
	ops  []Op
	bs   []float64
	offs []int32
	ridx []int32
	rval []float64

	w sparseWork // Solve scratch, reused across calls
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// NewProblem creates a problem with nvars decision variables, all
// implicitly bounded below by zero, with a zero objective.
func NewProblem(nvars int) *Problem {
	p := &Problem{}
	p.Reset(nvars)
	return p
}

// Reset rewinds the problem to an empty system over nvars variables,
// keeping all backing storage — the pooling path of the schedule
// solver, which builds one small LP per maximal subset per Solve.
func (p *Problem) Reset(nvars int) {
	p.nvars = nvars
	if cap(p.c) < nvars {
		p.c = make([]float64, nvars)
	} else {
		p.c = p.c[:nvars]
		for i := range p.c {
			p.c[i] = 0
		}
	}
	p.ops = p.ops[:0]
	p.bs = p.bs[:0]
	p.ridx = p.ridx[:0]
	p.rval = p.rval[:0]
	if cap(p.offs) < 1 {
		p.offs = make([]int32, 1, 16)
	}
	p.offs = p.offs[:1]
	p.offs[0] = 0
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.nvars }

// SetCost sets the objective coefficient of variable j.
func (p *Problem) SetCost(j int, v float64) {
	p.c[j] = v
}

// AddRow adds a constraint from parallel index/value slices; idx must be
// strictly ascending and in range. The slices are copied, so callers may
// reuse their buffers. Zero coefficients are dropped. This is the
// allocation-free fast path the schedule package uses.
func (p *Problem) AddRow(idx []int32, val []float64, op Op, b float64) error {
	if len(idx) != len(val) {
		return fmt.Errorf("lp: row has %d indices but %d values", len(idx), len(val))
	}
	prev := int32(-1)
	for t, j := range idx {
		if j < 0 || int(j) >= p.nvars {
			return fmt.Errorf("lp: coefficient index %d out of range", j)
		}
		if j <= prev {
			return fmt.Errorf("lp: row indices not strictly ascending at %d", j)
		}
		prev = j
		if val[t] != 0 {
			p.ridx = append(p.ridx, j)
			p.rval = append(p.rval, val[t])
		}
	}
	p.ops = append(p.ops, op)
	p.bs = append(p.bs, b)
	p.offs = append(p.offs, int32(len(p.ridx)))
	return nil
}

// AddDense adds a constraint from a dense coefficient slice of length
// NumVars.
func (p *Problem) AddDense(a []float64, op Op, b float64) error {
	if len(a) != p.nvars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(a), p.nvars)
	}
	for j, v := range a {
		if v != 0 {
			p.ridx = append(p.ridx, int32(j))
			p.rval = append(p.rval, v)
		}
	}
	p.ops = append(p.ops, op)
	p.bs = append(p.bs, b)
	p.offs = append(p.offs, int32(len(p.ridx)))
	return nil
}

// AddSparse adds a constraint from a variable→coefficient map.
func (p *Problem) AddSparse(coeffs map[int]float64, op Op, b float64) error {
	js := make([]int, 0, len(coeffs))
	for j := range coeffs {
		if j < 0 || j >= p.nvars {
			return fmt.Errorf("lp: coefficient index %d out of range", j)
		}
		js = append(js, j)
	}
	sort.Ints(js)
	for _, j := range js {
		if v := coeffs[j]; v != 0 {
			p.ridx = append(p.ridx, int32(j))
			p.rval = append(p.rval, v)
		}
	}
	p.ops = append(p.ops, op)
	p.bs = append(p.bs, b)
	p.offs = append(p.offs, int32(len(p.ridx)))
	return nil
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.ops) }

// rowNonzeros returns constraint r's stored nonzeros.
func (p *Problem) rowNonzeros(r int) ([]int32, []float64) {
	lo, hi := p.offs[r], p.offs[r+1]
	return p.ridx[lo:hi], p.rval[lo:hi]
}

// auxCounts counts the slack/surplus and artificial columns the
// normalized system needs — the same accounting the dense and sparse
// tableaus share.
func (p *Problem) auxCounts() (nSlack, nArt int) {
	for i, op := range p.ops {
		if p.bs[i] < 0 {
			// Normalizing flips the operator.
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		if op != EQ {
			nSlack++
		}
		if op != LE {
			nArt++
		}
	}
	return
}

// SolveDense runs the reference dense two-phase simplex. It is retained
// as the oracle the sparse Solve is property-tested against; production
// paths use Solve.
func (p *Problem) SolveDense() Solution {
	m := len(p.ops)
	if m == 0 {
		// Trivially feasible at the origin.
		return Solution{Status: Optimal, X: make([]float64, p.nvars)}
	}

	nSlack, nArt := p.auxCounts()
	total := p.nvars + nSlack + nArt
	artStart := p.nvars + nSlack
	// Tableau: m rows of total coefficients, plus rhs column.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx, artIdx := p.nvars, artStart
	for i := 0; i < m; i++ {
		a := make([]float64, p.nvars)
		ji, jv := p.rowNonzeros(i)
		for t, j := range ji {
			a[j] = jv[t]
		}
		b, op := p.bs[i], p.ops[i]
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rowv := make([]float64, total+1)
		copy(rowv, a)
		rowv[total] = b
		switch op {
		case LE:
			rowv[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			rowv[slackIdx] = -1
			slackIdx++
			rowv[artIdx] = 1
			basis[i] = artIdx
			artIdx++
		case EQ:
			rowv[artIdx] = 1
			basis[i] = artIdx
			artIdx++
		}
		tab[i] = rowv
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis.
		for i, bj := range basis {
			if bj >= artStart {
				for j := 0; j <= total; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		if !simplexIterate(tab, basis, obj, total) {
			// Phase 1 objective is bounded below by zero, so
			// unboundedness cannot occur; treat defensively.
			return Solution{Status: Infeasible}
		}
		if -obj[total] > 1e-7 {
			return Solution{Status: Infeasible}
		}
		// Drive any artificial still in the basis out (degenerate zero
		// rows); if impossible the row is redundant.
		for i, bj := range basis {
			if bj < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, obj, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant constraint: zero the row to neutralize it.
				for j := 0; j <= total; j++ {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective over structural + slack columns;
	// artificial columns are frozen out by pricing them prohibitively.
	obj := make([]float64, total+1)
	copy(obj, p.c)
	for i, bj := range basis {
		if bj <= total && obj[bj] != 0 {
			cb := obj[bj]
			for j := 0; j <= total; j++ {
				obj[j] -= cb * tab[i][j]
			}
		}
	}
	// Forbid artificials from re-entering.
	barred := artStart

	if !simplexIterateBarred(tab, basis, obj, total, barred) {
		return Solution{Status: Unbounded}
	}

	x := make([]float64, p.nvars)
	for i, bj := range basis {
		if bj < p.nvars {
			x[bj] = tab[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < p.nvars; j++ {
		objVal += p.c[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}
}

// simplexIterate runs primal simplex with Bland's rule until optimal;
// returns false on unboundedness.
func simplexIterate(tab [][]float64, basis []int, obj []float64, total int) bool {
	return simplexIterateBarred(tab, basis, obj, total, total)
}

func simplexIterateBarred(tab [][]float64, basis []int, obj []float64, total, barred int) bool {
	for iter := 0; ; iter++ {
		// Entering: smallest index with negative reduced cost (Bland).
		enter := -1
		for j := 0; j < barred; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return true
		}
		// Leaving: min ratio, ties by smallest basis index (Bland).
		leave, best := -1, math.Inf(1)
		for i := range tab {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return false
		}
		pivot(tab, basis, obj, leave, enter, total)
	}
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, obj []float64, leave, enter, total int) {
	pv := tab[leave][enter]
	inv := 1.0 / pv
	for j := 0; j <= total; j++ {
		tab[leave][j] *= inv
	}
	tab[leave][enter] = 1 // exactness
	for i := range tab {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[leave][j]
		}
		tab[i][enter] = 0
	}
	f := obj[enter]
	if f != 0 {
		for j := 0; j <= total; j++ {
			obj[j] -= f * tab[leave][j]
		}
		obj[enter] = 0
	}
	basis[leave] = enter
}
