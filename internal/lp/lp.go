// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// It is the optimization substrate behind the paper's Section 5.2
// message-interval allocation (a pure feasibility system) and the
// Section 5.3 interval-scheduling program (minimize the summed durations
// of link-feasible sets). Bland's rule is used throughout, so the solver
// cannot cycle; problems in this repository are small (at most a few
// hundred variables), so a dense tableau is appropriate.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is a_i·x <= b_i.
	LE Op = iota
	// EQ is a_i·x == b_i.
	EQ
	// GE is a_i·x >= b_i.
	GE
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution with x >= 0.
	Infeasible
	// Unbounded means the objective can decrease without bound.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

const eps = 1e-9

// Problem is a linear program under construction. The zero objective
// turns Solve into a pure feasibility check.
type Problem struct {
	nvars int
	c     []float64
	rows  []row
}

type row struct {
	a  []float64
	op Op
	b  float64
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// NewProblem creates a problem with nvars decision variables, all
// implicitly bounded below by zero, with a zero objective.
func NewProblem(nvars int) *Problem {
	return &Problem{nvars: nvars, c: make([]float64, nvars)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.nvars }

// SetCost sets the objective coefficient of variable j.
func (p *Problem) SetCost(j int, v float64) {
	p.c[j] = v
}

// AddDense adds a constraint from a dense coefficient slice of length
// NumVars.
func (p *Problem) AddDense(a []float64, op Op, b float64) error {
	if len(a) != p.nvars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(a), p.nvars)
	}
	p.rows = append(p.rows, row{a: append([]float64(nil), a...), op: op, b: b})
	return nil
}

// AddSparse adds a constraint from a variable→coefficient map.
func (p *Problem) AddSparse(coeffs map[int]float64, op Op, b float64) error {
	a := make([]float64, p.nvars)
	for j, v := range coeffs {
		if j < 0 || j >= p.nvars {
			return fmt.Errorf("lp: coefficient index %d out of range", j)
		}
		a[j] = v
	}
	p.rows = append(p.rows, row{a: a, op: op, b: b})
	return nil
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solve runs two-phase simplex and returns the solution. When the
// problem is Infeasible or Unbounded, X is nil.
func (p *Problem) Solve() Solution {
	m := len(p.rows)
	if m == 0 {
		// Trivially feasible at the origin.
		return Solution{Status: Optimal, X: make([]float64, p.nvars)}
	}

	// Count auxiliary columns: one slack/surplus per inequality, one
	// artificial per >= or = row.
	nSlack, nArt := 0, 0
	for _, r := range p.rows {
		rr := r
		if rr.b < 0 {
			// Normalizing flips the operator.
			switch rr.op {
			case LE:
				rr.op = GE
			case GE:
				rr.op = LE
			}
		}
		if rr.op != EQ {
			nSlack++
		}
		if rr.op != LE {
			nArt++
		}
	}

	total := p.nvars + nSlack + nArt
	artStart := p.nvars + nSlack
	// Tableau: m rows of total coefficients, plus rhs column.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx, artIdx := p.nvars, artStart
	for i, r := range p.rows {
		a := append([]float64(nil), r.a...)
		b, op := r.b, r.op
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rowv := make([]float64, total+1)
		copy(rowv, a)
		rowv[total] = b
		switch op {
		case LE:
			rowv[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			rowv[slackIdx] = -1
			slackIdx++
			rowv[artIdx] = 1
			basis[i] = artIdx
			artIdx++
		case EQ:
			rowv[artIdx] = 1
			basis[i] = artIdx
			artIdx++
		}
		tab[i] = rowv
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis.
		for i, bj := range basis {
			if bj >= artStart {
				for j := 0; j <= total; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		if !simplexIterate(tab, basis, obj, total) {
			// Phase 1 objective is bounded below by zero, so
			// unboundedness cannot occur; treat defensively.
			return Solution{Status: Infeasible}
		}
		if -obj[total] > 1e-7 {
			return Solution{Status: Infeasible}
		}
		// Drive any artificial still in the basis out (degenerate zero
		// rows); if impossible the row is redundant.
		for i, bj := range basis {
			if bj < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, obj, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant constraint: zero the row to neutralize it.
				for j := 0; j <= total; j++ {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective over structural + slack columns;
	// artificial columns are frozen out by pricing them prohibitively.
	obj := make([]float64, total+1)
	copy(obj, p.c)
	for i, bj := range basis {
		if bj <= total && obj[bj] != 0 {
			cb := obj[bj]
			for j := 0; j <= total; j++ {
				obj[j] -= cb * tab[i][j]
			}
		}
	}
	// Forbid artificials from re-entering.
	barred := artStart

	if !simplexIterateBarred(tab, basis, obj, total, barred) {
		return Solution{Status: Unbounded}
	}

	x := make([]float64, p.nvars)
	for i, bj := range basis {
		if bj < p.nvars {
			x[bj] = tab[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < p.nvars; j++ {
		objVal += p.c[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}
}

// simplexIterate runs primal simplex with Bland's rule until optimal;
// returns false on unboundedness.
func simplexIterate(tab [][]float64, basis []int, obj []float64, total int) bool {
	return simplexIterateBarred(tab, basis, obj, total, total)
}

func simplexIterateBarred(tab [][]float64, basis []int, obj []float64, total, barred int) bool {
	for iter := 0; ; iter++ {
		// Entering: smallest index with negative reduced cost (Bland).
		enter := -1
		for j := 0; j < barred; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return true
		}
		// Leaving: min ratio, ties by smallest basis index (Bland).
		leave, best := -1, math.Inf(1)
		for i := range tab {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return false
		}
		pivot(tab, basis, obj, leave, enter, total)
	}
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, obj []float64, leave, enter, total int) {
	pv := tab[leave][enter]
	inv := 1.0 / pv
	for j := 0; j <= total; j++ {
		tab[leave][j] *= inv
	}
	tab[leave][enter] = 1 // exactness
	for i := range tab {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[leave][j]
		}
		tab[i][enter] = 0
	}
	f := obj[enter]
	if f != 0 {
		for j := 0; j <= total; j++ {
			obj[j] -= f * tab[leave][j]
		}
		obj[enter] = 0
	}
	basis[leave] = enter
}
