package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMin(t *testing.T) {
	// minimize x+y s.t. x+y >= 2, x <= 5, y <= 5 → objective 2.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	if err := p.AddDense([]float64{1, 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDense([]float64{1, 0}, LE, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddDense([]float64{0, 1}, LE, 5); err != nil {
		t.Fatal(err)
	}
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 2) {
		t.Errorf("objective = %g, want 2", s.Objective)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// maximize 3x+2y s.t. x+y<=4, x+3y<=6 → x=4,y=0, obj 12.
	p := NewProblem(2)
	p.SetCost(0, -3)
	p.SetCost(1, -2)
	_ = p.AddDense([]float64{1, 1}, LE, 4)
	_ = p.AddDense([]float64{1, 3}, LE, 6)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(-s.Objective, 12) {
		t.Errorf("max = %g, want 12", -s.Objective)
	}
	if !approx(s.X[0], 4) || !approx(s.X[1], 0) {
		t.Errorf("x = %v", s.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// minimize 2x+3y s.t. x+y=10, x-y=2 → x=6,y=4, obj 24.
	p := NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 3)
	_ = p.AddDense([]float64{1, 1}, EQ, 10)
	_ = p.AddDense([]float64{1, -1}, EQ, 2)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[0], 6) || !approx(s.X[1], 4) {
		t.Errorf("x = %v", s.X)
	}
	if !approx(s.Objective, 24) {
		t.Errorf("objective = %g", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	_ = p.AddDense([]float64{1}, LE, 1)
	_ = p.AddDense([]float64{1}, GE, 3)
	s := p.Solve()
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem(2)
	_ = p.AddDense([]float64{1, 1}, EQ, 5)
	_ = p.AddDense([]float64{1, 1}, EQ, 7)
	s := p.Solve()
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x with only x >= 0: unbounded below.
	p := NewProblem(1)
	p.SetCost(0, -1)
	_ = p.AddDense([]float64{1}, GE, 0)
	s := p.Solve()
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 means y >= x+1; minimize y → x=0, y=1.
	p := NewProblem(2)
	p.SetCost(1, 1)
	_ = p.AddDense([]float64{1, -1}, LE, -1)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[1], 1) {
		t.Errorf("y = %g, want 1", s.X[1])
	}
}

func TestRedundantConstraints(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	_ = p.AddDense([]float64{1, 1}, EQ, 4)
	_ = p.AddDense([]float64{2, 2}, EQ, 8) // redundant copy
	_ = p.AddDense([]float64{1, 0}, GE, 1)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(3)
	s := p.Solve()
	if s.Status != Optimal || len(s.X) != 3 {
		t.Errorf("want trivial optimum at origin, got %+v", s)
	}
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(4)
	p.SetCost(3, 1)
	if err := p.AddSparse(map[int]float64{3: 1}, GE, 7); err != nil {
		t.Fatal(err)
	}
	s := p.Solve()
	if s.Status != Optimal || !approx(s.X[3], 7) {
		t.Errorf("solution = %+v", s)
	}
	if err := p.AddSparse(map[int]float64{9: 1}, LE, 1); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := p.AddDense([]float64{1}, LE, 1); err == nil {
		t.Error("wrong-length dense row should fail")
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Classic Beale-style degenerate problem; Bland's rule must terminate.
	p := NewProblem(4)
	p.SetCost(0, -0.75)
	p.SetCost(1, 150)
	p.SetCost(2, -0.02)
	p.SetCost(3, 6)
	_ = p.AddDense([]float64{0.25, -60, -0.04, 9}, LE, 0)
	_ = p.AddDense([]float64{0.5, -90, -0.02, 3}, LE, 0)
	_ = p.AddDense([]float64{0, 0, 1, 0}, LE, 1)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, -0.05) {
		t.Errorf("objective = %g, want -0.05", s.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (10, 20), 2 demands (15, 15), costs [[1,2],[3,1]].
	// Optimal: x00=10, x10=5, x11=15 → 10+15+15 = 40.
	p := NewProblem(4) // x00 x01 x10 x11
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.SetCost(2, 3)
	p.SetCost(3, 1)
	_ = p.AddDense([]float64{1, 1, 0, 0}, EQ, 10)
	_ = p.AddDense([]float64{0, 0, 1, 1}, EQ, 20)
	_ = p.AddDense([]float64{1, 0, 1, 0}, EQ, 15)
	_ = p.AddDense([]float64{0, 1, 0, 1}, EQ, 15)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 40) {
		t.Errorf("objective = %g, want 40", s.Objective)
	}
}

// Property: for random feasible allocation-style systems (the exact shape
// of Section 5.2), the solver finds a solution satisfying all constraints.
func TestQuickAllocationFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nMsg := 2 + rng.Intn(4)
		nInt := 2 + rng.Intn(4)
		// Interval lengths.
		lens := make([]float64, nInt)
		for k := range lens {
			lens[k] = 1 + rng.Float64()*9
		}
		// Build a known-feasible allocation, then present the solver with
		// the induced demands.
		alloc := make([][]float64, nMsg)
		demand := make([]float64, nMsg)
		used := make([]float64, nInt)
		for i := range alloc {
			alloc[i] = make([]float64, nInt)
			for k := 0; k < nInt; k++ {
				room := lens[k] - used[k]
				if room <= 0 {
					continue
				}
				take := rng.Float64() * room * 0.5
				alloc[i][k] = take
				used[k] += take
				demand[i] += take
			}
			if demand[i] == 0 {
				return true // degenerate draw; skip
			}
		}
		p := NewProblem(nMsg * nInt)
		for i := 0; i < nMsg; i++ {
			row := map[int]float64{}
			for k := 0; k < nInt; k++ {
				row[i*nInt+k] = 1
			}
			if err := p.AddSparse(row, EQ, demand[i]); err != nil {
				return false
			}
		}
		for k := 0; k < nInt; k++ {
			row := map[int]float64{}
			for i := 0; i < nMsg; i++ {
				row[i*nInt+k] = 1
			}
			if err := p.AddSparse(row, LE, lens[k]); err != nil {
				return false
			}
		}
		s := p.Solve()
		if s.Status != Optimal {
			return false
		}
		// Verify constraints hold.
		for i := 0; i < nMsg; i++ {
			sum := 0.0
			for k := 0; k < nInt; k++ {
				sum += s.X[i*nInt+k]
				if s.X[i*nInt+k] < -1e-9 {
					return false
				}
			}
			if math.Abs(sum-demand[i]) > 1e-6 {
				return false
			}
		}
		for k := 0; k < nInt; k++ {
			sum := 0.0
			for i := 0; i < nMsg; i++ {
				sum += s.X[i*nInt+k]
			}
			if sum > lens[k]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the reported objective always equals c·X for optimal solves.
func TestQuickObjectiveConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetCost(j, rng.Float64()*4-1)
		}
		for i := 0; i < n+1; i++ {
			a := make([]float64, n)
			for j := range a {
				a[j] = rng.Float64()
			}
			_ = p.AddDense(a, LE, 1+rng.Float64()*5)
		}
		// Bound all variables to keep it bounded.
		for j := 0; j < n; j++ {
			a := make([]float64, n)
			a[j] = 1
			_ = p.AddDense(a, LE, 10)
		}
		s := p.Solve()
		if s.Status != Optimal {
			return false
		}
		dot := 0.0
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-9 {
				return false
			}
			dot += s.X[j] * p.c[j]
		}
		return math.Abs(dot-s.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}
