package partition

import (
	"testing"
	"testing/quick"

	"schedroute/internal/tfg"
)

func TestPartitionChainHalves(t *testing.T) {
	g, err := tfg.Chain(8, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{MaxTasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Coarse.NumTasks(); got > 4 {
		t.Errorf("coarse tasks = %d, want <= 4", got)
	}
	// All communication volume is accounted for.
	total := int64(7 * 640)
	if res.CutBytes+res.InternalBytes != total {
		t.Errorf("cut %d + internal %d != total %d", res.CutBytes, res.InternalBytes, total)
	}
	if res.InternalBytes == 0 {
		t.Error("merging a chain must absorb some communication")
	}
}

func TestPartitionPreservesAcyclicity(t *testing.T) {
	// Diamond: merging {a,d} would close a cycle through b or c; the
	// partitioner must avoid it. Asking for 3 clusters forces one merge.
	g, err := tfg.Diamond(100, 640)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{MaxTasks: 3, BalanceFactor: 10})
	if err != nil {
		t.Fatal(err) // Build() inside would fail on a cyclic quotient
	}
	if res.Coarse.NumTasks() > 3 {
		t.Errorf("got %d clusters", res.Coarse.NumTasks())
	}
	if res.ClusterOf[0] == res.ClusterOf[3] && res.Coarse.NumTasks() == 3 {
		t.Error("merged source with sink across a parallel branch (cycle)")
	}
}

func TestPartitionBalanceBudget(t *testing.T) {
	// Ten unit tasks in a chain, budget 1.0: each cluster may hold at
	// most ceil(10/5)*1 = 2 ops → pairs only.
	g, err := tfg.Chain(10, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{MaxTasks: 5, BalanceFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range res.Coarse.Tasks() {
		if task.Ops > 2 {
			t.Errorf("cluster %s has %d ops, budget 2", task.Name, task.Ops)
		}
	}
}

func TestPartitionSingleCluster(t *testing.T) {
	g, err := tfg.Chain(5, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{MaxTasks: 1, BalanceFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coarse.NumTasks() != 1 {
		t.Errorf("got %d clusters, want 1", res.Coarse.NumTasks())
	}
	if res.CutBytes != 0 {
		t.Errorf("single cluster has cut %d", res.CutBytes)
	}
	if res.Coarse.NumMessages() != 0 {
		t.Error("single cluster should have no messages")
	}
}

func TestPartitionNoOpWhenEnoughTasks(t *testing.T) {
	g, err := tfg.Diamond(100, 640)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{MaxTasks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coarse.NumTasks() != 4 {
		t.Errorf("partitioner merged although the budget allowed all tasks: %d", res.Coarse.NumTasks())
	}
	if res.CutBytes != 4*640 {
		t.Errorf("cut = %d", res.CutBytes)
	}
}

func TestPartitionRejectsBadOptions(t *testing.T) {
	g, err := tfg.Chain(3, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(g, Options{MaxTasks: 0}); err == nil {
		t.Error("MaxTasks 0 should fail")
	}
	if _, err := Partition(g, Options{MaxTasks: 2, BalanceFactor: 0.5}); err == nil {
		t.Error("balance < 1 should fail")
	}
}

func TestPartitionMergesHeaviestEdgesFirst(t *testing.T) {
	// Star: hub sends 10 bytes to w1, 1000 bytes to w2. With room for
	// one merge, the hub must absorb w2.
	b := tfg.NewBuilder("star")
	hub := b.AddTask("hub", 10)
	w1 := b.AddTask("w1", 10)
	w2 := b.AddTask("w2", 10)
	b.AddMessage("cheap", hub, w1, 10)
	b.AddMessage("heavy", hub, w2, 1000)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{MaxTasks: 2, BalanceFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusterOf[int(hub)] != res.ClusterOf[int(w2)] {
		t.Error("heaviest edge should be contracted first")
	}
	if res.CutBytes != 10 {
		t.Errorf("cut = %d, want 10", res.CutBytes)
	}
}

// Property: for random layered graphs the partitioner always yields an
// acyclic quotient (Build succeeds), conserves communication volume,
// and never exceeds MaxTasks unless blocked by balance/cycle
// constraints in a way that still reduces the task count monotonically.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64, maxRaw uint8) bool {
		g, err := tfg.RandomLayered(seed%300, []int{3, 4, 4, 3}, 10, 100, 64, 2048, 0.4)
		if err != nil {
			return false
		}
		maxTasks := int(maxRaw%10) + 1
		res, err := Partition(g, Options{MaxTasks: maxTasks, BalanceFactor: 3})
		if err != nil {
			return false
		}
		if res.Coarse.NumTasks() > g.NumTasks() {
			return false
		}
		var totalBytes int64
		for _, m := range g.Messages() {
			totalBytes += m.Bytes
		}
		if res.CutBytes+res.InternalBytes != totalBytes {
			return false
		}
		// Cluster ids are dense and in range.
		for _, c := range res.ClusterOf {
			if c < 0 || c >= res.Coarse.NumTasks() {
				return false
			}
		}
		// Ops are conserved.
		var fineOps, coarseOps int64
		for _, task := range g.Tasks() {
			fineOps += task.Ops
		}
		for _, task := range res.Coarse.Tasks() {
			coarseOps += task.Ops
		}
		return fineOps == coarseOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
