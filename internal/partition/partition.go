// Package partition implements the first step of the paper's mapping
// chain ("partitioning, task allocation, node scheduling, and message
// routing"): coarsening a fine-grained operation graph into the
// large-grain tasks a TFG needs. Following the large-grain design rule
// the paper inherits from Agrawal & Jagadish (1988), the partitioner
// minimizes inter-task communication while keeping task sizes balanced
// enough that the longest task — which bounds the pipeline rate 1/τc —
// does not blow up.
//
// The algorithm is greedy edge contraction: repeatedly merge the pair
// of adjacent clusters joined by the heaviest communication volume,
// provided the merge keeps the cluster's operation count within the
// balance budget and preserves acyclicity of the quotient graph (a
// cyclic quotient cannot be a TFG).
package partition

import (
	"fmt"
	"sort"

	"schedroute/internal/tfg"
)

// Options tunes the partitioner.
type Options struct {
	// MaxTasks is the number of clusters to aim for; coarsening stops
	// once the cluster count reaches it (it may stop earlier when no
	// legal merge remains).
	MaxTasks int
	// BalanceFactor bounds every cluster's operation count to
	// BalanceFactor * ceil(totalOps/MaxTasks). Values below 1 are
	// rejected; 0 selects the default of 1.5.
	BalanceFactor float64
}

// Result describes a computed partition.
type Result struct {
	// Coarse is the quotient TFG: one task per cluster, one message per
	// aggregated inter-cluster edge bundle.
	Coarse *tfg.Graph
	// ClusterOf maps every fine-grained task to its cluster index.
	ClusterOf []int
	// CutBytes is the total inter-cluster communication volume.
	CutBytes int64
	// InternalBytes is the communication volume absorbed inside
	// clusters (zero-cost after partitioning).
	InternalBytes int64
}

// Partition coarsens g into at most opt.MaxTasks clusters.
func Partition(g *tfg.Graph, opt Options) (*Result, error) {
	if opt.MaxTasks < 1 {
		return nil, fmt.Errorf("partition: MaxTasks %d < 1", opt.MaxTasks)
	}
	if opt.BalanceFactor == 0 {
		opt.BalanceFactor = 1.5
	}
	if opt.BalanceFactor < 1 {
		return nil, fmt.Errorf("partition: balance factor %g < 1", opt.BalanceFactor)
	}
	n := g.NumTasks()
	totalOps := int64(0)
	for _, t := range g.Tasks() {
		totalOps += t.Ops
	}
	budget := int64(float64((totalOps+int64(opt.MaxTasks)-1)/int64(opt.MaxTasks)) * opt.BalanceFactor)
	if budget < 1 {
		budget = 1
	}

	// Union-find over fine tasks.
	parent := make([]int, n)
	ops := make([]int64, n)
	for i := range parent {
		parent[i] = i
		ops[i] = g.Task(tfg.TaskID(i)).Ops
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	clusters := n

	// Candidate merges: inter-cluster byte volume, recomputed lazily.
	type edge struct {
		a, b  int
		bytes int64
	}
	volume := func() []edge {
		agg := map[[2]int]int64{}
		for _, m := range g.Messages() {
			ra, rb := find(int(m.Src)), find(int(m.Dst))
			if ra == rb {
				continue
			}
			key := [2]int{ra, rb}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			agg[key] += m.Bytes
		}
		out := make([]edge, 0, len(agg))
		for k, v := range agg {
			out = append(out, edge{a: k[0], b: k[1], bytes: v})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].bytes != out[j].bytes {
				return out[i].bytes > out[j].bytes
			}
			if out[i].a != out[j].a {
				return out[i].a < out[j].a
			}
			return out[i].b < out[j].b
		})
		return out
	}

	for clusters > opt.MaxTasks {
		merged := false
		for _, e := range volume() {
			ra, rb := find(e.a), find(e.b)
			if ra == rb {
				continue
			}
			if ops[ra]+ops[rb] > budget {
				continue
			}
			if createsCycle(g, find, ra, rb) {
				continue
			}
			parent[rb] = ra
			ops[ra] += ops[rb]
			clusters--
			merged = true
			break
		}
		if !merged {
			break
		}
	}

	// Densify cluster ids in topological order of the quotient.
	rep := map[int]int{}
	clusterOf := make([]int, n)
	order := quotientTopoOrder(g, find)
	for _, r := range order {
		if _, ok := rep[r]; !ok {
			rep[r] = len(rep)
		}
	}
	for i := 0; i < n; i++ {
		clusterOf[i] = rep[find(i)]
	}

	// Build the coarse TFG.
	b := tfg.NewBuilder(g.Name() + "-coarse")
	clusterOps := make([]int64, len(rep))
	for i := 0; i < n; i++ {
		clusterOps[clusterOf[i]] += g.Task(tfg.TaskID(i)).Ops
	}
	for c := 0; c < len(rep); c++ {
		b.AddTask(fmt.Sprintf("c%d", c), clusterOps[c])
	}
	agg := map[[2]int]int64{}
	res := &Result{ClusterOf: clusterOf}
	for _, m := range g.Messages() {
		ca, cb := clusterOf[int(m.Src)], clusterOf[int(m.Dst)]
		if ca == cb {
			res.InternalBytes += m.Bytes
			continue
		}
		res.CutBytes += m.Bytes
		agg[[2]int{ca, cb}] += m.Bytes
	}
	keys := make([][2]int, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		b.AddMessage(fmt.Sprintf("m%d-%d", k[0], k[1]), tfg.TaskID(k[0]), tfg.TaskID(k[1]), agg[k])
	}
	coarse, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("partition: quotient graph invalid: %w", err)
	}
	res.Coarse = coarse
	return res, nil
}

// createsCycle reports whether merging clusters ra and rb would close a
// directed cycle in the quotient graph: true iff a path of length >= 2
// (through at least one other cluster) connects them in either
// direction.
func createsCycle(g *tfg.Graph, find func(int) int, ra, rb int) bool {
	return quotientPathAvoiding(g, find, ra, rb) || quotientPathAvoiding(g, find, rb, ra)
}

// quotientPathAvoiding reports whether some cluster path from src
// reaches dst passing through at least one intermediate cluster.
func quotientPathAvoiding(g *tfg.Graph, find func(int) int, src, dst int) bool {
	// BFS over quotient edges, skipping direct src->dst hops.
	seen := map[int]bool{}
	var stack []int
	for _, m := range g.Messages() {
		ra, rb := find(int(m.Src)), find(int(m.Dst))
		if ra == src && rb != dst && rb != src && !seen[rb] {
			seen[rb] = true
			stack = append(stack, rb)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range g.Messages() {
			ra, rb := find(int(m.Src)), find(int(m.Dst))
			if ra != u || rb == src {
				continue
			}
			if rb == dst {
				return true
			}
			if !seen[rb] {
				seen[rb] = true
				stack = append(stack, rb)
			}
		}
	}
	return false
}

// quotientTopoOrder returns cluster representatives in a topological
// order of the quotient graph (which is acyclic by construction).
func quotientTopoOrder(g *tfg.Graph, find func(int) int) []int {
	indeg := map[int]int{}
	succs := map[int]map[int]bool{}
	for i := 0; i < g.NumTasks(); i++ {
		r := find(i)
		if _, ok := indeg[r]; !ok {
			indeg[r] = 0
		}
	}
	for _, m := range g.Messages() {
		ra, rb := find(int(m.Src)), find(int(m.Dst))
		if ra == rb {
			continue
		}
		if succs[ra] == nil {
			succs[ra] = map[int]bool{}
		}
		if !succs[ra][rb] {
			succs[ra][rb] = true
			indeg[rb]++
		}
	}
	var ready []int
	for r, d := range indeg {
		if d == 0 {
			ready = append(ready, r)
		}
	}
	sort.Ints(ready)
	var order []int
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		var next []int
		for v := range succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
	}
	return order
}
