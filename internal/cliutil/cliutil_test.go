package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec  string
		nodes int
		kind  topology.Kind
	}{
		{"cube:6", 64, topology.KindGHC},
		{"ghc:4,4,4", 64, topology.KindGHC},
		{"torus:8,8", 64, topology.KindTorus},
		{"mesh:4,4", 16, topology.KindMesh},
	}
	for _, c := range cases {
		top, err := ParseTopology(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if top.Nodes() != c.nodes || top.Kind() != c.kind {
			t.Errorf("%s: got %d nodes kind %v", c.spec, top.Nodes(), top.Kind())
		}
	}
}

func TestParseTopologyRejects(t *testing.T) {
	for _, spec := range []string{"", "cube", "cube:", "cube:x", "cube:2,2", "blob:4", "torus:4,oops"} {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}

func TestParseAllocator(t *testing.T) {
	g, err := tfg.Chain(4, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rr", "roundrobin", "greedy", "random", "anneal"} {
		a, err := ParseAllocator(name, g, top, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := a.Validate(g, top, true); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ParseAllocator("nope", g, top, 0); err == nil {
		t.Error("unknown allocator should fail")
	}
}

func TestLoadGraphBuiltins(t *testing.T) {
	cases := []struct {
		spec  string
		tasks int
	}{
		{"dvb:4", 15},
		{"chain:5", 5},
		{"fan:3", 5},
	}
	for _, c := range cases {
		g, err := LoadGraph(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.NumTasks() != c.tasks {
			t.Errorf("%s: %d tasks, want %d", c.spec, g.NumTasks(), c.tasks)
		}
	}
	if _, err := LoadGraph("dvb:zero"); err == nil {
		t.Error("bad size should fail")
	}
	if _, err := LoadGraph("mystery:3"); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	g, err := tfg.Diamond(100, 640)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tfg.Encode(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != 4 || got.NumMessages() != 4 {
		t.Errorf("round trip wrong: %d tasks %d messages", got.NumTasks(), got.NumMessages())
	}
	if _, err := LoadGraph(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

// TestExitStatusesMatchErrkindTable pins that the CLIs take their exit
// statuses from the same errkind table the service takes its HTTP
// statuses from: one row per family, no drift between the surfaces.
func TestExitStatusesMatchErrkindTable(t *testing.T) {
	for _, row := range errkind.Table {
		err := errkind.Mark(fmt.Errorf("synthetic %s", row.Name), row.Kind)
		if got := ExitStatus(err); got != row.Exit {
			t.Errorf("%s: ExitStatus = %d, table says %d", row.Name, got, row.Exit)
		}
	}
	if got := ExitStatus(errors.New("unclassified")); got != errkind.Generic.Exit {
		t.Errorf("generic: ExitStatus = %d, table says %d", got, errkind.Generic.Exit)
	}
	if ExitFailure != errkind.Generic.Exit {
		t.Errorf("ExitFailure (%d) drifted from the table's generic exit (%d)", ExitFailure, errkind.Generic.Exit)
	}
}

// TestParseProblemFlags: the shared flag bundle resolves the same
// defaults in every tool and builds a solvable problem.
func TestParseProblemFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	pf := AddProblemFlags(fs)
	pf.AddFaultFlags(fs)
	if err := fs.Parse([]string{"-topo", "torus:8,8", "-bw", "128", "-tauin", "150", "-fail-link", "0-1"}); err != nil {
		t.Fatal(err)
	}
	b, fault, err := pf.ParseProblem()
	if err != nil {
		t.Fatal(err)
	}
	if b.Topology.Nodes() != 64 || b.Spec.Bandwidth != 128 || b.TauIn != 150 {
		t.Fatalf("flags not reflected in built problem: %+v", b.Spec)
	}
	if b.Graph.NumTasks() != 15 {
		t.Fatalf("default -tfg dvb:4 not applied: %d tasks", b.Graph.NumTasks())
	}
	if fault == nil || fault.Empty() {
		t.Fatal("-fail-link did not build a fault set")
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	pf = AddProblemFlags(fs)
	pf.AddFaultFlags(fs)
	if err := fs.Parse([]string{"-topo", "klein-bottle:6"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pf.ParseProblem(); !errors.Is(err, errkind.ErrBadInput) {
		t.Fatalf("bad -topo spec: got %v, want ErrBadInput", err)
	}
}

func TestExitStatusInfeasibleRepair(t *testing.T) {
	ire := &schedule.InfeasibleRepairError{Faults: "link 0-1", Stage: schedule.StageAllocation, Reason: "no surviving path"}
	if got := ExitStatus(ire); got != ExitInfeasibleRepair {
		t.Errorf("ExitStatus(bare) = %d, want %d", got, ExitInfeasibleRepair)
	}
	wrapped := fmt.Errorf("sweep: %w", ire)
	if got := ExitStatus(wrapped); got != ExitInfeasibleRepair {
		t.Errorf("ExitStatus(wrapped) = %d, want %d", got, ExitInfeasibleRepair)
	}
	if got := ExitStatus(errors.New("boom")); got != ExitFailure {
		t.Errorf("ExitStatus(generic) = %d, want %d", got, ExitFailure)
	}
}

func TestWriteErrorRemediationHint(t *testing.T) {
	var b strings.Builder
	ire := &schedule.InfeasibleRepairError{Faults: "link 0-1", Stage: schedule.StageAllocation, Reason: "no surviving path"}
	WriteError(&b, "srsched", fmt.Errorf("repair: %w", ire))
	out := b.String()
	if !strings.Contains(out, "srsched: repair:") {
		t.Errorf("missing tool-prefixed error: %q", out)
	}
	if !strings.Contains(out, "hint:") || !strings.Contains(out, "lower load") {
		t.Errorf("infeasible repair must carry a remediation hint: %q", out)
	}
	b.Reset()
	WriteError(&b, "srsched", errors.New("boom"))
	if strings.Contains(b.String(), "hint:") {
		t.Errorf("generic errors must not get the repair hint: %q", b.String())
	}
}

func TestExclusiveModes(t *testing.T) {
	modes := func(set ...bool) []Mode {
		names := []string{"best", "admit", "watch", "explore"}
		ms := make([]Mode, len(set))
		for i, s := range set {
			ms[i] = Mode{Flag: names[i], Set: s}
		}
		return ms
	}
	if err := ExclusiveModes(modes(false, false, false, false)...); err != nil {
		t.Errorf("no mode selected: %v", err)
	}
	if err := ExclusiveModes(modes(false, false, true, false)...); err != nil {
		t.Errorf("one mode selected: %v", err)
	}
	err := ExclusiveModes(modes(true, false, true, true)...)
	if err == nil {
		t.Fatal("three modes selected, no error")
	}
	msg := err.Error()
	for _, want := range []string{"-best", "-watch", "-explore", "conflicting modes", "-admit"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
