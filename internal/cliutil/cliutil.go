// Package cliutil holds the small parsing helpers shared by the
// command-line tools: topology specifications like "ghc:4,4,4" or
// "torus:8,8", allocator names, and TFG loading.
package cliutil

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Exit statuses shared by the command-line tools. A repair that
// exhausts every rung of the degradation ladder is an expected
// operational outcome, not a tool malfunction, so scripts driving
// fault sweeps get a distinct status to branch on.
const (
	ExitFailure          = 1 // generic error
	ExitInfeasibleRepair = 3 // *schedule.InfeasibleRepairError anywhere in the chain
)

// ExitStatus maps an error to the tool's process exit status.
func ExitStatus(err error) int {
	var ire *schedule.InfeasibleRepairError
	if errors.As(err, &ire) {
		return ExitInfeasibleRepair
	}
	return ExitFailure
}

// WriteError renders err for the named tool, appending a remediation
// hint when the error is an infeasible repair abort.
func WriteError(w io.Writer, tool string, err error) {
	fmt.Fprintf(w, "%s: %v\n", tool, err)
	var ire *schedule.InfeasibleRepairError
	if errors.As(err, &ire) {
		fmt.Fprintf(w, "%s: hint: the fault disconnects or overloads the topology at this rate; retry at a lower load (larger -tauin), a richer topology, or drop the failed element from the fault set\n", tool)
	}
}

// Fatal reports err on stderr via WriteError and exits with the
// status from ExitStatus.
func Fatal(tool string, err error) {
	WriteError(os.Stderr, tool, err)
	os.Exit(ExitStatus(err))
}

// ParseTopology builds a topology from a spec string:
//
//	cube:D        binary hypercube of dimension D
//	ghc:M1,M2,..  generalized hypercube
//	torus:K1,K2,… k-ary n-cube torus
//	mesh:K1,K2,…  mesh
func ParseTopology(spec string) (*topology.Topology, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology spec %q: want kind:radices", spec)
	}
	var radices []int
	for _, part := range strings.Split(rest, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("topology spec %q: %w", spec, err)
		}
		radices = append(radices, v)
	}
	switch kind {
	case "cube":
		if len(radices) != 1 {
			return nil, fmt.Errorf("cube spec wants a single dimension, got %q", spec)
		}
		return topology.NewHypercube(radices[0])
	case "ghc":
		return topology.NewGHC(radices...)
	case "torus":
		return topology.NewTorus(radices...)
	case "mesh":
		return topology.NewMesh(radices...)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

// ParseAllocator places g on top using the named strategy: "rr"
// (round-robin, the experiments' default), "greedy", "random" (with
// the given seed), or "anneal" (simulated annealing on the link-load
// proxy).
func ParseAllocator(name string, g *tfg.Graph, top *topology.Topology, seed int64) (*alloc.Assignment, error) {
	switch name {
	case "rr", "roundrobin":
		return alloc.RoundRobin(g, top)
	case "greedy":
		return alloc.Greedy(g, top)
	case "random":
		return alloc.Random(g, top, seed)
	case "anneal":
		return alloc.Anneal(g, top, alloc.AnnealOptions{Seed: seed})
	default:
		return nil, fmt.Errorf("unknown allocator %q (want rr, greedy, random or anneal)", name)
	}
}

// LoadGraph reads a TFG: either a built-in spec ("dvb:4", "chain:8",
// "fan:6", "fft:3", "stencil:4") or a path to a JSON file produced by
// tfggen.
func LoadGraph(spec string) (*tfg.Graph, error) {
	if kind, rest, ok := strings.Cut(spec, ":"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("graph spec %q: %w", spec, err)
		}
		switch kind {
		case "dvb":
			return dvb.New(n)
		case "chain":
			return tfg.Chain(n, 1925, 1536)
		case "fan":
			return tfg.FanOutIn(n, 1925, 1536)
		case "fft":
			return tfg.FFT(n, 1925, 1536)
		case "stencil":
			return tfg.Stencil(n, 1925, 1536, 384)
		default:
			return nil, fmt.Errorf("unknown graph kind %q", kind)
		}
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tfg.Decode(f)
}
