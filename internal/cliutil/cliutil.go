// Package cliutil holds the helpers shared by the command-line tools:
// the common problem flag set (-tfg/-topo/-bw/-tauin/-speed/-alloc/
// -seed and the fault flags), spec parsing (delegated to the public
// pkg/schedroute facade so CLIs and the srschedd service resolve specs
// identically), and error-to-exit-status mapping driven by the
// internal/errkind table.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"schedroute/internal/alloc"
	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/pkg/schedroute"
)

// Exit statuses shared by the command-line tools, derived from the
// errkind table (see TestExitStatusesMatchErrkindTable). A repair that
// exhausts every rung of the degradation ladder is an expected
// operational outcome, not a tool malfunction, so scripts driving
// fault sweeps get a distinct status to branch on.
const (
	ExitFailure          = 1 // generic error
	ExitUsage            = 2 // flag misuse (the flag package's own status)
	ExitInfeasibleRepair = 3 // errkind.ErrInfeasibleRepair anywhere in the chain
)

// ExitStatus maps an error to the tool's process exit status via the
// errkind classification table.
func ExitStatus(err error) int {
	return errkind.ExitStatus(err)
}

// WriteError renders err for the named tool, appending a remediation
// hint when the error is an infeasible repair abort.
func WriteError(w io.Writer, tool string, err error) {
	fmt.Fprintf(w, "%s: %v\n", tool, err)
	if errors.Is(err, errkind.ErrInfeasibleRepair) {
		fmt.Fprintf(w, "%s: hint: the fault disconnects or overloads the topology at this rate; retry at a lower load (larger -tauin), a richer topology, or drop the failed element from the fault set\n", tool)
	}
}

// Fatal reports err on stderr via WriteError and exits with the
// status from ExitStatus.
func Fatal(tool string, err error) {
	WriteError(os.Stderr, tool, err)
	os.Exit(ExitStatus(err))
}

// Mode names one of a tool's mutually exclusive operating modes: a
// flag name (without the leading dash) and whether this invocation
// selected it.
type Mode struct {
	Flag string
	Set  bool
}

// ExclusiveModes checks that at most one of the given modes is
// selected. It returns nil when the invocation is consistent and a
// usage error naming the conflicting flags otherwise, so each tool
// states its mode vocabulary once instead of growing pairwise checks.
func ExclusiveModes(modes ...Mode) error {
	var set []string
	all := make([]string, len(modes))
	for i, m := range modes {
		all[i] = "-" + m.Flag
		if m.Set {
			set = append(set, "-"+m.Flag)
		}
	}
	if len(set) <= 1 {
		return nil
	}
	return fmt.Errorf("%s select conflicting modes; pick at most one of %s",
		strings.Join(set, " and "), strings.Join(all, ", "))
}

// RequireExclusiveModes enforces ExclusiveModes for the named tool:
// a conflict is reported on stderr with a remediation hint and the
// process exits with ExitUsage (2), the flag package's own misuse
// status.
func RequireExclusiveModes(tool string, modes ...Mode) {
	err := ExclusiveModes(modes...)
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	fmt.Fprintf(os.Stderr, "%s: hint: each mode is a complete run; invoke the tool once per mode instead of combining them\n", tool)
	os.Exit(ExitUsage)
}

// ParseTopology builds a topology from a spec string like "cube:6",
// "ghc:4,4,4", "torus:8,8" or "mesh:4,4".
func ParseTopology(spec string) (*topology.Topology, error) {
	return schedroute.ParseTopology(spec)
}

// ParseAllocator places g on top using the named strategy: "rr",
// "greedy", "random" (with the given seed), or "anneal".
func ParseAllocator(name string, g *tfg.Graph, top *topology.Topology, seed int64) (*alloc.Assignment, error) {
	return schedroute.ParseAllocator(name, g, top, seed)
}

// LoadGraph reads a TFG: either a built-in spec ("dvb:4", "chain:8",
// "fan:6", "fft:3", "stencil:4", "layered:seed,widths...,density") or a
// path to a JSON file produced by tfggen.
func LoadGraph(spec string) (*tfg.Graph, error) {
	return schedroute.LoadGraph(spec)
}

// Large-scale problem presets: the workloads that size the 10-cube and
// 32x32-torus feasibility benchmarks. The layered graph is ~960 tasks /
// ~2.6k messages; the bandwidths are chosen so τin=200µs is feasible on
// the matching topology (see BenchmarkScheduleTenCube and
// BenchmarkScheduleTorus32).
const (
	// LayeredLargeTFG is the shared large layered task-flow graph spec.
	LayeredLargeTFG = "layered:7,32,64*14,32,0.03"
	// TenCubePreset pairs LayeredLargeTFG with a 10-cube at 512 B/µs.
	TenCubeTopo = "cube:10"
	TenCubeBW   = 512
	// Torus32 pairs LayeredLargeTFG with a 32x32 torus at 2048 B/µs.
	Torus32Topo = "torus:32,32"
	Torus32BW   = 2048
)

// ProblemFlags is the flag set every problem-driven tool shares. Use
// AddProblemFlags (and AddFaultFlags for tools that repair) during flag
// registration, then ParseProblem after flag.Parse.
type ProblemFlags struct {
	TFG   string
	Topo  string
	BW    float64
	TauIn float64
	Speed float64
	Alloc string
	Seed  int64

	FailLink string
	FailNode int
	hasFault bool
}

// AddProblemFlags registers the common problem flags (-tfg, -topo,
// -bw, -tauin, -speed, -alloc, -seed) on fs with the defaults every
// tool has always used.
func AddProblemFlags(fs *flag.FlagSet) *ProblemFlags {
	f := &ProblemFlags{FailNode: -1}
	fs.StringVar(&f.TFG, "tfg", "dvb:4", "TFG: dvb:N, chain:N, fan:N, fft:N, stencil:N, layered:seed,widths...,density or a JSON file")
	fs.StringVar(&f.Topo, "topo", "cube:6", "topology: cube:D, ghc:..., torus:..., mesh:...")
	fs.Float64Var(&f.BW, "bw", 64, "link bandwidth in bytes/µs")
	fs.Float64Var(&f.TauIn, "tauin", 0, "invocation period in µs (0 = τc, maximum load)")
	fs.Float64Var(&f.Speed, "speed", 0, "processor speed in ops/µs (0 = uniform τc=50µs tasks)")
	fs.StringVar(&f.Alloc, "alloc", "rr", "task allocator: rr, greedy, random or anneal")
	fs.Int64Var(&f.Seed, "seed", 1, "seed for AssignPaths and random allocation")
	return f
}

// AddFaultFlags registers the fault flags (-fail-link, -fail-node) for
// tools that repair schedules.
func (f *ProblemFlags) AddFaultFlags(fs *flag.FlagSet) {
	f.hasFault = true
	fs.StringVar(&f.FailLink, "fail-link", "", "repair the schedule for a failed link, given as the node pair u-v")
	fs.IntVar(&f.FailNode, "fail-node", -1, "repair the schedule for a failed node")
}

// Spec returns the wire-form problem the flags describe — the same
// schedroute.Problem a service client would POST.
func (f *ProblemFlags) Spec() schedroute.Problem {
	return schedroute.Problem{
		TFG: f.TFG, Topology: f.Topo, Bandwidth: f.BW, Speed: f.Speed,
		TauIn: f.TauIn, Allocator: f.Alloc, AllocSeed: f.Seed,
	}
}

// FaultSpec returns the wire form of the fault flags (empty when no
// fault was requested).
func (f *ProblemFlags) FaultSpec() schedroute.FaultSpec {
	var spec schedroute.FaultSpec
	if f.FailLink != "" {
		spec.Links = []string{f.FailLink}
	}
	if f.FailNode >= 0 {
		spec.Nodes = []int{f.FailNode}
	}
	return spec
}

// ParseProblem resolves the flags into the built problem (graph,
// timing, topology, placement, resolved τin) and, when fault flags were
// registered and set, the fault set to repair for.
func (f *ProblemFlags) ParseProblem() (*schedroute.Built, *topology.FaultSet, error) {
	b, err := schedroute.NewProblem(f.Spec())
	if err != nil {
		return nil, nil, err
	}
	var fs *topology.FaultSet
	if f.hasFault {
		fs, err = f.FaultSpec().Build(b.Topology)
		if err != nil {
			return nil, nil, err
		}
	}
	return b, fs, nil
}

// Ensure the facade's error families line up with the exit constants
// (compile-time association; the real check is in cliutil_test).
var _ = schedule.InfeasibleRepairError{}
