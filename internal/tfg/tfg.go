// Package tfg implements the task-flow graph model of Section 2 of the
// paper: a directed acyclic graph whose vertices are tasks (sequential
// operation counts) and whose edges are messages (byte counts). A TFG is
// invoked periodically; pipelining succeeds when the interval between
// successive outputs equals the invocation period for every pair of
// successive invocations (Eq. 1), and fails with output inconsistency
// otherwise.
package tfg

import (
	"fmt"
	"math"
)

// TaskID indexes a task within a Graph.
type TaskID int

// MessageID indexes a message within a Graph.
type MessageID int

// Task is one vertex of the TFG: a sequential block of Ops operations.
type Task struct {
	ID   TaskID
	Name string
	// Ops is C_i, the number of operations executed by the task.
	Ops int64
}

// Message is one edge of the TFG: Bytes bytes sent from Src to Dst at the
// end of Src's execution. Identical payloads to different destinations
// are distinct messages, as in the paper's model.
type Message struct {
	ID    MessageID
	Name  string
	Src   TaskID
	Dst   TaskID
	Bytes int64
}

// Graph is an immutable validated task-flow graph.
type Graph struct {
	name     string
	tasks    []Task
	messages []Message
	out      [][]MessageID // outgoing message IDs per task
	in       [][]MessageID // incoming message IDs per task
	topo     []TaskID      // topological order
}

// Builder accumulates tasks and messages and validates them into a Graph.
type Builder struct {
	name     string
	tasks    []Task
	messages []Message
	err      error
}

// NewBuilder starts a TFG under the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddTask appends a task and returns its ID.
func (b *Builder) AddTask(name string, ops int64) TaskID {
	if ops <= 0 && b.err == nil {
		b.err = fmt.Errorf("tfg: task %q has non-positive ops %d", name, ops)
	}
	id := TaskID(len(b.tasks))
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Ops: ops})
	return id
}

// AddMessage appends a message from src to dst and returns its ID.
func (b *Builder) AddMessage(name string, src, dst TaskID, bytes int64) MessageID {
	if b.err == nil {
		switch {
		case bytes <= 0:
			b.err = fmt.Errorf("tfg: message %q has non-positive size %d", name, bytes)
		case src == dst:
			b.err = fmt.Errorf("tfg: message %q is a self-loop on task %d", name, src)
		case int(src) >= len(b.tasks) || src < 0:
			b.err = fmt.Errorf("tfg: message %q references unknown source task %d", name, src)
		case int(dst) >= len(b.tasks) || dst < 0:
			b.err = fmt.Errorf("tfg: message %q references unknown destination task %d", name, dst)
		}
	}
	id := MessageID(len(b.messages))
	b.messages = append(b.messages, Message{ID: id, Name: name, Src: src, Dst: dst, Bytes: bytes})
	return id
}

// Build validates the accumulated structure (non-empty, acyclic) and
// returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, fmt.Errorf("tfg: graph %q has no tasks", b.name)
	}
	g := &Graph{
		name:     b.name,
		tasks:    append([]Task(nil), b.tasks...),
		messages: append([]Message(nil), b.messages...),
		out:      make([][]MessageID, len(b.tasks)),
		in:       make([][]MessageID, len(b.tasks)),
	}
	for _, m := range g.messages {
		g.out[m.Src] = append(g.out[m.Src], m.ID)
		g.in[m.Dst] = append(g.in[m.Dst], m.ID)
	}
	topo, err := g.topoSort()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	return g, nil
}

func (g *Graph) topoSort() ([]TaskID, error) {
	indeg := make([]int, len(g.tasks))
	for _, m := range g.messages {
		indeg[m.Dst]++
	}
	var queue []TaskID
	for i := range g.tasks {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	var order []TaskID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, mid := range g.out[u] {
			d := g.messages[mid].Dst
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("tfg: graph %q contains a cycle", g.name)
	}
	return order, nil
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NumTasks returns the task count N_t.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumMessages returns the message count N_m.
func (g *Graph) NumMessages() int { return len(g.messages) }

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Message returns the message with the given ID.
func (g *Graph) Message(id MessageID) Message { return g.messages[id] }

// Tasks returns all tasks (copy).
func (g *Graph) Tasks() []Task { return append([]Task(nil), g.tasks...) }

// Messages returns all messages (copy).
func (g *Graph) Messages() []Message { return append([]Message(nil), g.messages...) }

// Outgoing returns the IDs of messages leaving task t (shared slice).
func (g *Graph) Outgoing(t TaskID) []MessageID { return g.out[t] }

// Incoming returns the IDs of messages entering task t (shared slice).
func (g *Graph) Incoming(t TaskID) []MessageID { return g.in[t] }

// InputTasks returns the tasks with no predecessors; they start on each
// external input arrival.
func (g *Graph) InputTasks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.in[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// OutputTasks returns the tasks with no successors; the invocation
// completes when all of them complete.
func (g *Graph) OutputTasks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.out[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TopoOrder returns a topological order of the tasks (copy).
func (g *Graph) TopoOrder() []TaskID { return append([]TaskID(nil), g.topo...) }

// Levels returns, per task, the length (in edges) of the longest message
// chain from any input task; input tasks are level 0.
func (g *Graph) Levels() []int {
	lvl := make([]int, len(g.tasks))
	for _, u := range g.topo {
		for _, mid := range g.out[u] {
			d := g.messages[mid].Dst
			if lvl[u]+1 > lvl[d] {
				lvl[d] = lvl[u] + 1
			}
		}
	}
	return lvl
}

// Precedes reports whether a path of messages leads from a to b (strict:
// Precedes(x,x) is false).
func (g *Graph) Precedes(a, b TaskID) bool {
	if a == b {
		return false
	}
	seen := make([]bool, len(g.tasks))
	stack := []TaskID{a}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, mid := range g.out[u] {
			d := g.messages[mid].Dst
			if d == b {
				return true
			}
			if !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	return false
}

// Timing binds a Graph to concrete execution and transmission times.
type Timing struct {
	// ExecTime[t] is the execution time of task t in microseconds.
	ExecTime []float64
	// XmitTime[m] is the transmission time of message m in microseconds
	// at the bound link bandwidth.
	XmitTime []float64
}

// NewTiming derives per-task and per-message times from processing
// speeds and link bandwidth. speed is ops/µs applied to every task;
// bandwidth is bytes/µs on every link.
func NewTiming(g *Graph, speed, bandwidth float64) (*Timing, error) {
	if speed <= 0 {
		return nil, fmt.Errorf("tfg: non-positive processing speed %g", speed)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("tfg: non-positive bandwidth %g", bandwidth)
	}
	tm := &Timing{
		ExecTime: make([]float64, g.NumTasks()),
		XmitTime: make([]float64, g.NumMessages()),
	}
	for i, t := range g.tasks {
		tm.ExecTime[i] = float64(t.Ops) / speed
	}
	for i, m := range g.messages {
		tm.XmitTime[i] = float64(m.Bytes) / bandwidth
	}
	return tm, nil
}

// NewUniformTiming gives every task execution time exec and derives
// message times from bandwidth. This matches the paper's Section 6
// simplification that all tasks take the same time (the throughput is
// set by the longest task; shorter tasks merely underutilize their APs).
func NewUniformTiming(g *Graph, exec, bandwidth float64) (*Timing, error) {
	if exec <= 0 {
		return nil, fmt.Errorf("tfg: non-positive exec time %g", exec)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("tfg: non-positive bandwidth %g", bandwidth)
	}
	tm := &Timing{
		ExecTime: make([]float64, g.NumTasks()),
		XmitTime: make([]float64, g.NumMessages()),
	}
	for i := range tm.ExecTime {
		tm.ExecTime[i] = exec
	}
	for i, m := range g.messages {
		tm.XmitTime[i] = float64(m.Bytes) / bandwidth
	}
	return tm, nil
}

// TauC returns τ_c, the processing time of the longest task.
func (tm *Timing) TauC() float64 {
	max := 0.0
	for _, e := range tm.ExecTime {
		if e > max {
			max = e
		}
	}
	return max
}

// TauM returns τ_m, the transmission time of the longest message (0 when
// the graph has no messages).
func (tm *Timing) TauM() float64 {
	max := 0.0
	for _, x := range tm.XmitTime {
		if x > max {
			max = x
		}
	}
	return max
}

// CriticalPath returns Λ, the maximum over input→output chains of the
// summed task execution and message transmission times, together with
// one realizing chain of task IDs.
func (g *Graph) CriticalPath(tm *Timing) (float64, []TaskID) {
	best := make([]float64, len(g.tasks))
	from := make([]TaskID, len(g.tasks))
	for i := range from {
		from[i] = -1
	}
	for _, u := range g.topo {
		best[u] += tm.ExecTime[u]
		for _, mid := range g.out[u] {
			m := g.messages[mid]
			cand := best[u] + tm.XmitTime[mid]
			if cand > best[m.Dst] {
				best[m.Dst] = cand
				from[m.Dst] = u
			}
		}
	}
	length, end := math.Inf(-1), TaskID(-1)
	for i := range g.tasks {
		if len(g.out[i]) == 0 && best[i] > length {
			length, end = best[i], TaskID(i)
		}
	}
	var chain []TaskID
	for t := end; t != -1; t = from[t] {
		chain = append(chain, t)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return length, chain
}

// PipelinedStart computes, for pipelining with message windows of length
// window (the paper uses window = τ_c, "each message transmission as
// long as the longest task"), the absolute start time of each task:
// input tasks start at 0; every other task starts when the windows of
// all its incoming messages close.
func (g *Graph) PipelinedStart(tm *Timing, window float64) []float64 {
	start := make([]float64, len(g.tasks))
	for _, u := range g.topo {
		for _, mid := range g.out[u] {
			m := g.messages[mid]
			cand := start[u] + tm.ExecTime[u] + window
			if cand > start[m.Dst] {
				start[m.Dst] = cand
			}
		}
	}
	return start
}

// PipelinedLatency is the invocation latency of the time-bounded static
// schedule: the maximum over output tasks of start+exec with windows of
// the given length.
func (g *Graph) PipelinedLatency(tm *Timing, window float64) float64 {
	return g.LatencyOf(tm, g.PipelinedStart(tm, window))
}

// LatencyOf computes the invocation latency implied by explicit static
// start times: the maximum over output tasks of start+exec.
func (g *Graph) LatencyOf(tm *Timing, start []float64) float64 {
	max := 0.0
	for i := range g.tasks {
		if len(g.out[i]) == 0 {
			if f := start[i] + tm.ExecTime[i]; f > max {
				max = f
			}
		}
	}
	return max
}

// PipelinedStartShared computes static task start times when several
// tasks may share an application processor — the "node scheduling" step
// of the paper's mapping chain. Tasks are placed in topological order
// at the earliest time that satisfies both their precedence (inputs'
// windows closed, as in PipelinedStart) and their AP's availability:
// because the TFG executes once per period, a node's tasks must occupy
// disjoint sub-intervals of the frame circle [0, tauIn). nodeOf maps
// each task to its AP; an error is returned when some AP's total
// execution demand exceeds the period (no static schedule can exist).
func (g *Graph) PipelinedStartShared(tm *Timing, window float64, nodeOf []int, tauIn float64) ([]float64, error) {
	if len(nodeOf) != len(g.tasks) {
		return nil, fmt.Errorf("tfg: nodeOf covers %d tasks, graph has %d", len(nodeOf), len(g.tasks))
	}
	if tauIn <= 0 {
		return nil, fmt.Errorf("tfg: non-positive period %g", tauIn)
	}
	demand := map[int]float64{}
	for i := range g.tasks {
		demand[nodeOf[i]] += tm.ExecTime[i]
	}
	for node, d := range demand {
		if d > tauIn+1e-9 {
			return nil, fmt.Errorf("tfg: node %d needs %g µs of processing per %g µs period", node, d, tauIn)
		}
	}

	type span struct{ a, e float64 } // frame-relative [a, a+e)
	occupied := map[int][]span{}
	fmodp := func(x float64) float64 {
		r := math.Mod(x, tauIn)
		if r < 0 {
			r += tauIn
		}
		return r
	}
	start := make([]float64, len(g.tasks))
	for _, t := range g.topo {
		ready := 0.0
		for _, mid := range g.in[t] {
			src := g.messages[mid].Src
			if c := start[src] + tm.ExecTime[src] + window; c > ready {
				ready = c
			}
		}
		exec := tm.ExecTime[t]
		node := nodeOf[t]
		s := ready
		for iter := 0; iter <= len(occupied[node])+1; iter++ {
			conflictEnd, conflict := 0.0, false
			for _, sp := range occupied[node] {
				// Distance from the span start to the candidate on the
				// circle.
				d := fmodp(s - sp.a)
				if d < sp.e-1e-9 {
					// Candidate begins inside the span.
					conflict = true
					if adv := sp.e - d; adv > conflictEnd {
						conflictEnd = adv
					}
				} else if tauIn-d < exec-1e-9 {
					// Candidate wraps into the span.
					conflict = true
					if adv := tauIn - d + sp.e; adv > conflictEnd {
						conflictEnd = adv
					}
				}
			}
			if !conflict {
				break
			}
			s += conflictEnd
		}
		// Final verification that a slot was found.
		for _, sp := range occupied[node] {
			d := fmodp(s - sp.a)
			if d < sp.e-1e-9 || tauIn-d < exec-1e-9 {
				return nil, fmt.Errorf("tfg: no AP slot for task %d on node %d within period %g", t, node, tauIn)
			}
		}
		start[t] = s
		occupied[node] = append(occupied[node], span{a: fmodp(s), e: exec})
	}
	return start, nil
}
