package tfg

import (
	"fmt"
	"math/rand"
)

// Chain builds a linear pipeline of n tasks with uniform ops and message
// bytes; useful as the simplest pipelined workload.
func Chain(n int, ops, bytes int64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("tfg: chain needs at least 1 task")
	}
	b := NewBuilder(fmt.Sprintf("chain-%d", n))
	prev := b.AddTask("t0", ops)
	for i := 1; i < n; i++ {
		cur := b.AddTask(fmt.Sprintf("t%d", i), ops)
		b.AddMessage(fmt.Sprintf("m%d", i-1), prev, cur, bytes)
		prev = cur
	}
	return b.Build()
}

// FanOutIn builds a scatter/gather TFG: one source task fanning out to
// width parallel workers which all feed one sink. This is the shape that
// creates the shared-link contention of the paper's Section 3 claim.
func FanOutIn(width int, ops, bytes int64) (*Graph, error) {
	if width < 1 {
		return nil, fmt.Errorf("tfg: fan width must be positive")
	}
	b := NewBuilder(fmt.Sprintf("fan-%d", width))
	src := b.AddTask("src", ops)
	sink := b.AddTask("sink", ops)
	for i := 0; i < width; i++ {
		w := b.AddTask(fmt.Sprintf("w%d", i), ops)
		b.AddMessage(fmt.Sprintf("out%d", i), src, w, bytes)
		b.AddMessage(fmt.Sprintf("in%d", i), w, sink, bytes)
	}
	return b.Build()
}

// Diamond builds the four-task diamond A→{B,C}→D.
func Diamond(ops, bytes int64) (*Graph, error) {
	b := NewBuilder("diamond")
	a := b.AddTask("a", ops)
	bb := b.AddTask("b", ops)
	c := b.AddTask("c", ops)
	d := b.AddTask("d", ops)
	b.AddMessage("ab", a, bb, bytes)
	b.AddMessage("ac", a, c, bytes)
	b.AddMessage("bd", bb, d, bytes)
	b.AddMessage("cd", c, d, bytes)
	return b.Build()
}

// FFT builds the communication pattern of a radix-2 decimation-in-time
// FFT over 2^logN points: logN+1 layers of 2^logN tasks, each stage-k
// task receiving from its same-index predecessor and from the butterfly
// partner whose index differs in bit k. A classic real-time DSP
// pipeline whose long butterfly strides stress path assignment very
// differently from tree-shaped graphs.
func FFT(logN int, ops, bytes int64) (*Graph, error) {
	if logN < 1 || logN > 6 {
		return nil, fmt.Errorf("tfg: FFT logN %d out of [1,6]", logN)
	}
	n := 1 << logN
	b := NewBuilder(fmt.Sprintf("fft-%d", n))
	prev := make([]TaskID, n)
	for i := 0; i < n; i++ {
		prev[i] = b.AddTask(fmt.Sprintf("s0t%d", i), ops)
	}
	for stage := 1; stage <= logN; stage++ {
		cur := make([]TaskID, n)
		for i := 0; i < n; i++ {
			cur[i] = b.AddTask(fmt.Sprintf("s%dt%d", stage, i), ops)
		}
		for i := 0; i < n; i++ {
			partner := i ^ (1 << (stage - 1))
			b.AddMessage(fmt.Sprintf("s%d-%d-self", stage, i), prev[i], cur[i], bytes)
			b.AddMessage(fmt.Sprintf("s%d-%d-bfly", stage, i), prev[partner], cur[i], bytes)
		}
		prev = cur
	}
	return b.Build()
}

// Stencil builds one pipelined step of a 1-D halo exchange over width
// workers: a scatter layer, a compute layer where each worker receives
// halos from its ring neighbors' scatter tasks, and a gather layer.
// This is the communication skeleton of iterative grid solvers.
func Stencil(width int, ops, bytes, haloBytes int64) (*Graph, error) {
	if width < 3 {
		return nil, fmt.Errorf("tfg: stencil width %d < 3", width)
	}
	b := NewBuilder(fmt.Sprintf("stencil-%d", width))
	src := b.AddTask("scatter", ops)
	sink := b.AddTask("gather", ops)
	loads := make([]TaskID, width)
	for i := 0; i < width; i++ {
		loads[i] = b.AddTask(fmt.Sprintf("load%d", i), ops)
		b.AddMessage(fmt.Sprintf("in%d", i), src, loads[i], bytes)
	}
	for i := 0; i < width; i++ {
		c := b.AddTask(fmt.Sprintf("comp%d", i), ops)
		left := (i - 1 + width) % width
		right := (i + 1) % width
		b.AddMessage(fmt.Sprintf("own%d", i), loads[i], c, bytes)
		b.AddMessage(fmt.Sprintf("haloL%d", i), loads[left], c, haloBytes)
		b.AddMessage(fmt.Sprintf("haloR%d", i), loads[right], c, haloBytes)
		b.AddMessage(fmt.Sprintf("out%d", i), c, sink, bytes)
	}
	return b.Build()
}

// RandomLayered builds a random layered DAG: layers of the given widths,
// every task getting at least one incoming message from the previous
// layer, with extra edges added with probability density. Ops are drawn
// uniformly from [minOps, maxOps] and bytes from [minBytes, maxBytes].
// The generator is deterministic for a given seed.
func RandomLayered(seed int64, widths []int, minOps, maxOps, minBytes, maxBytes int64, density float64) (*Graph, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("tfg: no layers")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("rand-%d", seed))
	ri := func(lo, hi int64) int64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Int63n(hi-lo+1)
	}
	var layers [][]TaskID
	for li, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("tfg: layer %d width %d < 1", li, w)
		}
		var layer []TaskID
		for i := 0; i < w; i++ {
			layer = append(layer, b.AddTask(fmt.Sprintf("l%dt%d", li, i), ri(minOps, maxOps)))
		}
		layers = append(layers, layer)
	}
	mid := 0
	for li := 1; li < len(layers); li++ {
		for _, dst := range layers[li] {
			src := layers[li-1][rng.Intn(len(layers[li-1]))]
			b.AddMessage(fmt.Sprintf("m%d", mid), src, dst, ri(minBytes, maxBytes))
			mid++
			for _, s := range layers[li-1] {
				if s != src && rng.Float64() < density {
					b.AddMessage(fmt.Sprintf("m%d", mid), s, dst, ri(minBytes, maxBytes))
					mid++
				}
			}
		}
	}
	return b.Build()
}
