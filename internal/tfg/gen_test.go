package tfg

import (
	"testing"
)

func TestFFTShape(t *testing.T) {
	g, err := FFT(3, 100, 512) // 8-point FFT
	if err != nil {
		t.Fatal(err)
	}
	// 4 layers of 8 tasks; 3 stages of 16 messages.
	if g.NumTasks() != 32 {
		t.Errorf("tasks = %d, want 32", g.NumTasks())
	}
	if g.NumMessages() != 48 {
		t.Errorf("messages = %d, want 48", g.NumMessages())
	}
	if got := len(g.InputTasks()); got != 8 {
		t.Errorf("inputs = %d, want 8", got)
	}
	if got := len(g.OutputTasks()); got != 8 {
		t.Errorf("outputs = %d, want 8", got)
	}
	// Each non-input task has exactly two incoming messages (self +
	// butterfly partner).
	lvl := g.Levels()
	for _, task := range g.Tasks() {
		if lvl[task.ID] == 0 {
			continue
		}
		if got := len(g.Incoming(task.ID)); got != 2 {
			t.Fatalf("task %s has %d inputs, want 2", task.Name, got)
		}
	}
}

func TestFFTButterflyPartners(t *testing.T) {
	g, err := FFT(2, 10, 64) // 4-point
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1, task index 0 must receive from stage-0 indices 0 and 1;
	// stage 2, index 0 from stage-1 indices 0 and 2.
	byName := map[string]TaskID{}
	for _, task := range g.Tasks() {
		byName[task.Name] = task.ID
	}
	wantPreds := map[string][]string{
		"s1t0": {"s0t0", "s0t1"},
		"s2t0": {"s1t0", "s1t2"},
		"s2t3": {"s1t3", "s1t1"},
	}
	for dst, preds := range wantPreds {
		got := map[TaskID]bool{}
		for _, mid := range g.Incoming(byName[dst]) {
			got[g.Message(mid).Src] = true
		}
		for _, p := range preds {
			if !got[byName[p]] {
				t.Errorf("%s should receive from %s", dst, p)
			}
		}
	}
}

func TestFFTRejectsBadSize(t *testing.T) {
	if _, err := FFT(0, 10, 64); err == nil {
		t.Error("logN 0 should fail")
	}
	if _, err := FFT(7, 10, 64); err == nil {
		t.Error("logN 7 should fail")
	}
}

func TestStencilShape(t *testing.T) {
	g, err := Stencil(4, 100, 1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	// scatter + gather + 4 loads + 4 computes = 10 tasks.
	if g.NumTasks() != 10 {
		t.Errorf("tasks = %d, want 10", g.NumTasks())
	}
	// 4 in + 4*(own+2 halos+out) = 20 messages.
	if g.NumMessages() != 20 {
		t.Errorf("messages = %d, want 20", g.NumMessages())
	}
	if len(g.InputTasks()) != 1 || len(g.OutputTasks()) != 1 {
		t.Error("stencil should have one input and one output task")
	}
	// Every compute task has 3 inputs: own block plus two halos.
	for _, task := range g.Tasks() {
		if len(task.Name) > 4 && task.Name[:4] == "comp" {
			if got := len(g.Incoming(task.ID)); got != 3 {
				t.Errorf("%s has %d inputs, want 3", task.Name, got)
			}
		}
	}
}

func TestStencilRejectsNarrow(t *testing.T) {
	if _, err := Stencil(2, 10, 64, 8); err == nil {
		t.Error("width 2 should fail")
	}
}
