package tfg

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation consumed by cmd/tfggen and
// cmd/srsched.
type graphJSON struct {
	Name     string        `json:"name"`
	Tasks    []taskJSON    `json:"tasks"`
	Messages []messageJSON `json:"messages"`
}

type taskJSON struct {
	Name string `json:"name"`
	Ops  int64  `json:"ops"`
}

type messageJSON struct {
	Name  string `json:"name"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Bytes int64  `json:"bytes"`
}

// Encode writes the graph as JSON.
func Encode(w io.Writer, g *Graph) error {
	gj := graphJSON{Name: g.Name()}
	for _, t := range g.tasks {
		gj.Tasks = append(gj.Tasks, taskJSON{Name: t.Name, Ops: t.Ops})
	}
	for _, m := range g.messages {
		gj.Messages = append(gj.Messages, messageJSON{Name: m.Name, Src: int(m.Src), Dst: int(m.Dst), Bytes: m.Bytes})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(gj)
}

// Decode reads a JSON graph and validates it.
func Decode(r io.Reader) (*Graph, error) {
	var gj graphJSON
	if err := json.NewDecoder(r).Decode(&gj); err != nil {
		return nil, fmt.Errorf("tfg: decode: %w", err)
	}
	b := NewBuilder(gj.Name)
	for _, t := range gj.Tasks {
		b.AddTask(t.Name, t.Ops)
	}
	for _, m := range gj.Messages {
		b.AddMessage(m.Name, TaskID(m.Src), TaskID(m.Dst), m.Bytes)
	}
	return b.Build()
}
