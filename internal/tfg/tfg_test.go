package tfg

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func mustDiamond(t *testing.T) *Graph {
	t.Helper()
	g, err := Diamond(100, 640)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("bad")
	if _, err := b.Build(); err == nil {
		t.Error("empty graph should fail")
	}

	b = NewBuilder("bad-ops")
	b.AddTask("t", 0)
	if _, err := b.Build(); err == nil {
		t.Error("zero-op task should fail")
	}

	b = NewBuilder("bad-msg")
	a := b.AddTask("a", 1)
	b.AddMessage("self", a, a, 10)
	if _, err := b.Build(); err == nil {
		t.Error("self-loop should fail")
	}

	b = NewBuilder("bad-size")
	a = b.AddTask("a", 1)
	c := b.AddTask("c", 1)
	b.AddMessage("m", a, c, 0)
	if _, err := b.Build(); err == nil {
		t.Error("zero-byte message should fail")
	}

	b = NewBuilder("bad-ref")
	a = b.AddTask("a", 1)
	b.AddMessage("m", a, TaskID(99), 1)
	if _, err := b.Build(); err == nil {
		t.Error("dangling destination should fail")
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.AddTask("a", 1)
	c := b.AddTask("b", 1)
	b.AddMessage("m1", a, c, 1)
	b.AddMessage("m2", c, a, 1)
	if _, err := b.Build(); err == nil {
		t.Error("cycle should fail")
	}
}

func TestInputOutputTasks(t *testing.T) {
	g := mustDiamond(t)
	in, out := g.InputTasks(), g.OutputTasks()
	if len(in) != 1 || g.Task(in[0]).Name != "a" {
		t.Errorf("inputs = %v", in)
	}
	if len(out) != 1 || g.Task(out[0]).Name != "d" {
		t.Errorf("outputs = %v", out)
	}
}

func TestLevels(t *testing.T) {
	g := mustDiamond(t)
	lvl := g.Levels()
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if lvl[i] != w {
			t.Errorf("level[%d] = %d, want %d", i, lvl[i], w)
		}
	}
}

func TestPrecedes(t *testing.T) {
	g := mustDiamond(t)
	if !g.Precedes(0, 3) {
		t.Error("a should precede d")
	}
	if g.Precedes(1, 2) {
		t.Error("b should not precede c")
	}
	if g.Precedes(3, 0) {
		t.Error("d should not precede a")
	}
	if g.Precedes(0, 0) {
		t.Error("strict precedence violated")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, err := RandomLayered(42, []int{3, 4, 4, 2}, 50, 200, 64, 2048, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range g.TopoOrder() {
		pos[id] = i
	}
	for _, m := range g.Messages() {
		if pos[m.Src] >= pos[m.Dst] {
			t.Errorf("message %s: src pos %d >= dst pos %d", m.Name, pos[m.Src], pos[m.Dst])
		}
	}
}

func TestTimingDerivation(t *testing.T) {
	g := mustDiamond(t) // ops=100, bytes=640
	tm, err := NewTiming(g, 2.0, 64.0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ExecTime[0] != 50 {
		t.Errorf("exec = %g, want 50", tm.ExecTime[0])
	}
	if tm.XmitTime[0] != 10 {
		t.Errorf("xmit = %g, want 10", tm.XmitTime[0])
	}
	if tm.TauC() != 50 || tm.TauM() != 10 {
		t.Errorf("tauC=%g tauM=%g", tm.TauC(), tm.TauM())
	}
}

func TestUniformTiming(t *testing.T) {
	g := mustDiamond(t)
	tm, err := NewUniformTiming(g, 50, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tm.ExecTime {
		if e != 50 {
			t.Fatalf("exec = %g", e)
		}
	}
	if tm.XmitTime[0] != 5 {
		t.Errorf("xmit = %g, want 5", tm.XmitTime[0])
	}
	if _, err := NewUniformTiming(g, 0, 64); err == nil {
		t.Error("zero exec should fail")
	}
	if _, err := NewTiming(g, 1, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := mustDiamond(t)
	tm, _ := NewUniformTiming(g, 50, 64) // xmit 10
	length, chain := g.CriticalPath(tm)
	// a(50) + msg(10) + b(50) + msg(10) + d(50) = 170
	if math.Abs(length-170) > 1e-9 {
		t.Errorf("critical path = %g, want 170", length)
	}
	if len(chain) != 3 || chain[0] != 0 || chain[2] != 3 {
		t.Errorf("chain = %v", chain)
	}
}

func TestCriticalPathChain(t *testing.T) {
	g, err := Chain(5, 100, 320)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := NewUniformTiming(g, 50, 64) // xmit 5
	length, chain := g.CriticalPath(tm)
	want := 5*50.0 + 4*5.0
	if math.Abs(length-want) > 1e-9 {
		t.Errorf("critical path = %g, want %g", length, want)
	}
	if len(chain) != 5 {
		t.Errorf("chain length = %d", len(chain))
	}
}

func TestPipelinedStartAndLatency(t *testing.T) {
	g := mustDiamond(t)
	tm, _ := NewUniformTiming(g, 50, 64)
	start := g.PipelinedStart(tm, 50) // window = tauC
	// a at 0; b,c at 0+50+50=100; d at 100+50+50=200.
	want := []float64{0, 100, 100, 200}
	for i, w := range want {
		if math.Abs(start[i]-w) > 1e-9 {
			t.Errorf("start[%d] = %g, want %g", i, start[i], w)
		}
	}
	lat := g.PipelinedLatency(tm, 50)
	if math.Abs(lat-250) > 1e-9 {
		t.Errorf("latency = %g, want 250", lat)
	}
}

func TestPipelinedLatencyAtLeastCriticalPath(t *testing.T) {
	g, err := RandomLayered(7, []int{2, 3, 3, 1}, 100, 100, 64, 3200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := NewUniformTiming(g, 50, 64)
	cp, _ := g.CriticalPath(tm)
	lat := g.PipelinedLatency(tm, tm.TauC())
	if lat < cp-1e-9 {
		t.Errorf("windowed latency %g below critical path %g", lat, cp)
	}
}

func TestFanOutIn(t *testing.T) {
	g, err := FanOutIn(4, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 6 || g.NumMessages() != 8 {
		t.Errorf("tasks=%d msgs=%d", g.NumTasks(), g.NumMessages())
	}
	if len(g.InputTasks()) != 1 || len(g.OutputTasks()) != 1 {
		t.Errorf("inputs/outputs wrong")
	}
}

func TestGeneratorsReject(t *testing.T) {
	if _, err := Chain(0, 1, 1); err == nil {
		t.Error("Chain(0) should fail")
	}
	if _, err := FanOutIn(0, 1, 1); err == nil {
		t.Error("FanOutIn(0) should fail")
	}
	if _, err := RandomLayered(1, nil, 1, 1, 1, 1, 0); err == nil {
		t.Error("empty layers should fail")
	}
	if _, err := RandomLayered(1, []int{2, 0}, 1, 1, 1, 1, 0); err == nil {
		t.Error("zero-width layer should fail")
	}
}

func TestRandomLayeredDeterministic(t *testing.T) {
	a, err := RandomLayered(99, []int{2, 3, 2}, 10, 100, 64, 1024, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLayered(99, []int{2, 3, 2}, 10, 100, 64, 1024, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumMessages() != b.NumMessages() {
		t.Fatalf("nondeterministic generator: %d vs %d messages", a.NumMessages(), b.NumMessages())
	}
	for i := 0; i < a.NumMessages(); i++ {
		ma, mb := a.Message(MessageID(i)), b.Message(MessageID(i))
		if ma != mb {
			t.Fatalf("message %d differs: %v vs %v", i, ma, mb)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, err := RandomLayered(3, []int{2, 2, 2}, 10, 50, 100, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != g.Name() || g2.NumTasks() != g.NumTasks() || g2.NumMessages() != g.NumMessages() {
		t.Fatalf("round trip mismatch")
	}
	for i := 0; i < g.NumMessages(); i++ {
		if g.Message(MessageID(i)) != g2.Message(MessageID(i)) {
			t.Fatalf("message %d differs", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Decode(bytes.NewBufferString(`{"name":"x","tasks":[],"messages":[]}`)); err == nil {
		t.Error("taskless graph should fail")
	}
}

// Property: in any random layered TFG, the pipelined latency with window
// w is monotonically non-decreasing in w, and every input task starts at 0.
func TestQuickPipelinedMonotone(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		g, err := RandomLayered(seed%1000, []int{2, 3, 2}, 50, 150, 64, 2048, 0.4)
		if err != nil {
			return false
		}
		tm, err := NewUniformTiming(g, 50, 64)
		if err != nil {
			return false
		}
		w1 := float64(wRaw%50) + 1
		w2 := w1 + 10
		if g.PipelinedLatency(tm, w2) < g.PipelinedLatency(tm, w1)-1e-9 {
			return false
		}
		start := g.PipelinedStart(tm, w1)
		for _, in := range g.InputTasks() {
			if start[in] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: critical path length is at least the longest single task.
func TestQuickCriticalPathLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		g, err := RandomLayered(seed%500, []int{2, 2, 3}, 10, 400, 64, 3200, 0.3)
		if err != nil {
			return false
		}
		tm, err := NewTiming(g, 2, 64)
		if err != nil {
			return false
		}
		cp, chain := g.CriticalPath(tm)
		if len(chain) == 0 {
			return false
		}
		return cp >= tm.TauC()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
