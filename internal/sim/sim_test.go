package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func(now float64) { got = append(got, now) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("ran %d events", len(got))
	}
	if e.Now() != 5 {
		t.Errorf("final time = %g", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func(float64) { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var hit float64
	e.At(10, func(now float64) {
		e.After(5, func(now float64) { hit = now })
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if hit != 15 {
		t.Errorf("hit at %g, want 15", hit)
	}
}

func TestPastSchedulingErrorStopsEngine(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func(float64) {
		ran++
		e.At(5, func(float64) { ran++ }) // in the past — must not run
		e.After(1, func(float64) { ran++ })
	})
	err := e.Run(0)
	var bse *BadScheduleError
	if !errors.As(err, &bse) {
		t.Fatalf("Run = %v, want *BadScheduleError", err)
	}
	if bse.At != 5 || bse.Now != 10 {
		t.Errorf("error = %+v, want At=5 Now=10", bse)
	}
	if ran != 1 {
		t.Errorf("%d events ran after the scheduling bug, want the engine to stop", ran-1)
	}
	if e.Err() == nil {
		t.Error("Err must report the scheduling error")
	}
}

func TestNaNSchedulingError(t *testing.T) {
	e := NewEngine()
	e.At(math.NaN(), func(float64) {})
	err := e.Run(0)
	var bse *BadScheduleError
	if !errors.As(err, &bse) {
		t.Fatalf("Run = %v, want *BadScheduleError", err)
	}
	if !math.IsNaN(bse.At) {
		t.Errorf("error At = %g, want NaN", bse.At)
	}
	if err.Error() != "sim: scheduling event at NaN (now 0)" {
		t.Errorf("message = %q", err.Error())
	}
}

func TestRunUntilSurfacesSchedulingError(t *testing.T) {
	e := NewEngine()
	e.At(1, func(float64) { e.At(0.5, func(float64) {}) })
	if err := e.RunUntil(10); err == nil {
		t.Error("RunUntil must surface the scheduling error")
	}
}

func TestRunMaxEvents(t *testing.T) {
	e := NewEngine()
	var reschedule func(now float64)
	reschedule = func(now float64) { e.After(1, reschedule) }
	e.At(0, reschedule)
	if err := e.Run(100); err == nil {
		t.Error("livelock should be reported")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(float64) { count++ })
	}
	if err := e.RunUntil(5.5); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("ran %d events, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Errorf("now = %g, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	if err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("total = %d", count)
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func(float64) {})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 7 {
		t.Errorf("processed = %d", e.Processed())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

// Property: any random batch of events executes in nondecreasing time
// order regardless of insertion order, including events inserted during
// execution.
func TestQuickOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var times []float64
		record := func(now float64) { times = append(times, now) }
		for i := 0; i < 50; i++ {
			at := rng.Float64() * 100
			e.At(at, func(now float64) {
				record(now)
				if rng.Float64() < 0.3 {
					e.After(rng.Float64()*10, record)
				}
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		return sort.Float64sAreSorted(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
