// Package sim provides a small deterministic discrete-event simulation
// kernel: a time-ordered event queue with FIFO tie-breaking by schedule
// order. The wormhole-routing baseline and the scheduled-routing
// executor are both built on it.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"schedroute/internal/errkind"
)

// Event is a callback scheduled at a point in simulated time.
type Event func(now float64)

type item struct {
	at  float64
	seq uint64
	fn  Event
}

type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(*item)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// BadScheduleError reports an event scheduled at an invalid time —
// in the past or at NaN — which always indicates a bug in the
// simulation model driving the engine.
type BadScheduleError struct {
	// At is the invalid event time; Now is the engine clock when the
	// event was scheduled.
	At  float64
	Now float64
}

func (e *BadScheduleError) Error() string {
	if math.IsNaN(e.At) {
		return fmt.Sprintf("sim: scheduling event at NaN (now %g)", e.Now)
	}
	return fmt.Sprintf("sim: scheduling event at %g before now %g", e.At, e.Now)
}

// Is places the error in the errkind.ErrBadSchedule family, so the
// shared classification table maps it to an exit status and HTTP status
// without naming this concrete type.
func (e *BadScheduleError) Is(target error) bool {
	return target == errkind.ErrBadSchedule
}

// Engine executes events in nondecreasing time order. Events scheduled
// at identical times run in the order they were scheduled, which keeps
// every simulation in this repository fully deterministic.
type Engine struct {
	now   float64
	seq   uint64
	q     queue
	count uint64
	err   error
}

// NewEngine creates an engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.q)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.count }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.q) }

// At schedules fn at absolute time at. Scheduling in the past or at
// NaN is always a simulation-model bug: the event is dropped, the
// engine stops executing further events, and the typed
// *BadScheduleError surfaces from Run, RunUntil, or Err. At keeps an
// error-free signature because most scheduling happens inside event
// callbacks, where a return value could not propagate anyway.
func (e *Engine) At(at float64, fn Event) {
	if at < e.now || math.IsNaN(at) {
		if e.err == nil {
			e.err = &BadScheduleError{At: at, Now: e.now}
		}
		return
	}
	e.seq++
	heap.Push(&e.q, &item{at: at, seq: e.seq, fn: fn})
}

// Err returns the first scheduling error observed, or nil.
func (e *Engine) Err() error { return e.err }

// After schedules fn delay time units from now.
func (e *Engine) After(delay float64, fn Event) {
	e.At(e.now+delay, fn)
}

// Step executes the single earliest pending event; it reports false
// when the queue is empty or a scheduling error has stopped the engine.
func (e *Engine) Step() bool {
	if len(e.q) == 0 || e.err != nil {
		return false
	}
	it := heap.Pop(&e.q).(*item)
	e.now = it.at
	e.count++
	it.fn(e.now)
	return true
}

// Run executes events until the queue drains or maxEvents have run
// (maxEvents <= 0 means no bound). It returns an error when the event
// bound is hit, which usually signals a livelocked model, or when an
// event scheduled an invalid time (see At).
func (e *Engine) Run(maxEvents uint64) error {
	executed := uint64(0)
	for e.Step() {
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			break
		}
	}
	if e.err != nil {
		return e.err
	}
	if len(e.q) > 0 {
		return fmt.Errorf("sim: stopped after %d events with %d still pending", executed, len(e.q))
	}
	return nil
}

// RunUntil executes events with time at or before deadline; events
// beyond it stay queued and the clock advances to exactly deadline.
// It returns the first scheduling error, if any event misbehaved.
func (e *Engine) RunUntil(deadline float64) error {
	for len(e.q) > 0 && e.q[0].at <= deadline && e.Step() {
	}
	if e.err != nil {
		return e.err
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
