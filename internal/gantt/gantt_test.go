package gantt

import (
	"strings"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func TestRenderFeasibleSchedule(t *testing.T) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Compute(schedule.Problem{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn: 50 * (1 + 4.0*5/11),
	}, schedule.Options{Seed: 1})
	if err != nil || !res.Feasible {
		t.Fatalf("setup: %v", err)
	}
	var b strings.Builder
	if err := Render(&b, res.Omega, top, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "frame [0,") {
		t.Error("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("chart too small:\n%s", out)
	}
	// Contention-freedom: no '!' cells in a validated schedule other
	// than sub-bucket sharing; with 60 columns over ~141 µs buckets are
	// ~2.3 µs so some sharing notes may appear, but the raw conflict
	// marker must never dominate a row.
	for _, line := range lines {
		if strings.Count(line, "!") > len(line)/2 {
			t.Errorf("row mostly conflicted: %s", line)
		}
	}
	var leg strings.Builder
	if err := Legend(&leg, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(leg.String(), "bytes") {
		t.Error("legend missing content")
	}
}

func TestRenderEmptySchedule(t *testing.T) {
	top, err := topology.NewTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	om := &schedule.Omega{TauIn: 100, Windows: []schedule.Window{{Local: true}}}
	var b strings.Builder
	if err := Render(&b, om, top, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "all messages local") {
		t.Errorf("empty chart output: %q", b.String())
	}
}

func TestRenderSingleSpanPlacement(t *testing.T) {
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	p := top.LSDToMSD(0, 1)
	links, err := p.Links(top)
	if err != nil {
		t.Fatal(err)
	}
	pa := &schedule.PathAssignment{
		Paths: []topology.Path{p},
		Links: [][]topology.LinkID{links},
	}
	ws := []schedule.Window{{Release: 0, Length: 50, Xmit: 25}}
	slices := []schedule.Slice{{Interval: 0, Start: 25, End: 50, Msgs: []tfg.MessageID{0}, Until: []float64{50}}}
	om := schedule.BuildOmega(slices, pa, ws, top.Nodes(), 100, 60)
	var b strings.Builder
	if err := Render(&b, om, top, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 20 columns over 100 µs = 5 µs each; occupation [25,50) = columns
	// 5..9 inclusive.
	rows := strings.Split(strings.TrimSpace(out), "\n")
	last := rows[len(rows)-1]
	bar := last[strings.Index(last, "|")+1:]
	bar = bar[:strings.Index(bar, "|")]
	want := ".....00000.........."
	if bar != want {
		t.Errorf("bar = %q, want %q", bar, want)
	}
}
