// Package gantt renders a scheduled-routing frame as an ASCII timeline:
// one row per used link, one column per time bucket of [0, τin), the
// cell showing which message occupies the link. It makes the
// contention-freedom of Ω visible at a glance — every cell carries at
// most one message — and shows how AssignPaths spreads traffic over
// links and time.
package gantt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// glyphs label messages 0..61; busier frames wrap around.
const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// Render writes the link-occupancy chart with the given number of time
// columns (minimum 10).
func Render(w io.Writer, om *schedule.Omega, top *topology.Topology, columns int) error {
	if columns < 10 {
		columns = 10
	}
	type span struct {
		start, end float64
		msg        tfg.MessageID
	}
	perLink := map[topology.LinkID][]span{}
	for _, sl := range om.Slices {
		for mi, msg := range sl.Msgs {
			for _, l := range om.Linkset(msg) {
				perLink[l] = append(perLink[l], span{start: sl.Start, end: sl.Until[mi], msg: msg})
			}
		}
	}
	if len(perLink) == 0 {
		_, err := fmt.Fprintln(w, "(no link traffic: all messages local)")
		return err
	}
	links := make([]topology.LinkID, 0, len(perLink))
	for l := range perLink {
		links = append(links, l)
	}
	sort.Slice(links, func(a, b int) bool { return links[a] < links[b] })

	bucket := om.TauIn / float64(columns)
	if _, err := fmt.Fprintf(w, "frame [0, %g µs), %g µs per column; cells show the occupying message\n", om.TauIn, bucket); err != nil {
		return err
	}
	header := fmt.Sprintf("%-12s |%s|", "link", ruler(columns))
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, l := range links {
		row := make([]byte, columns)
		for i := range row {
			row[i] = '.'
		}
		overlap := false
		for _, sp := range perLink[l] {
			lo := int(sp.start / bucket)
			hi := int((sp.end - 1e-9) / bucket)
			for c := lo; c <= hi && c < columns; c++ {
				g := glyphs[int(sp.msg)%len(glyphs)]
				if row[c] != '.' && row[c] != g {
					row[c] = '!'
					overlap = true
				} else {
					row[c] = g
				}
			}
		}
		label := fmt.Sprintf("L%d %d-%d", l, top.Link(l).A, top.Link(l).B)
		suffix := ""
		if overlap {
			suffix = "  <- bucket shared (sub-column resolution)"
		}
		if _, err := fmt.Fprintf(w, "%-12s |%s|%s\n", label, row, suffix); err != nil {
			return err
		}
	}
	return nil
}

// ruler builds a column ruler with a tick every ten columns.
func ruler(columns int) string {
	var b strings.Builder
	for i := 0; i < columns; i++ {
		if i%10 == 0 {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Legend lists the message glyph assignments for the graph.
func Legend(w io.Writer, g *tfg.Graph) error {
	for _, m := range g.Messages() {
		if _, err := fmt.Fprintf(w, "  %c = %s (%d bytes, task %d -> %d)\n",
			glyphs[int(m.ID)%len(glyphs)], m.Name, m.Bytes, m.Src, m.Dst); err != nil {
			return err
		}
	}
	return nil
}
