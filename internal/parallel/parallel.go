// Package parallel provides the bounded worker-pool runner shared by
// every concurrent stage of the scheduled-routing pipeline: figure
// sweeps over independent load points, candidate-placement searches,
// and any other embarrassingly parallel fan-out.
//
// The runner is deliberately deterministic from the caller's point of
// view: work items are identified by index, results land in ordered
// slots, and errors are reported in index order — so a parallel run is
// byte-identical to a serial one regardless of goroutine interleaving.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values below 1 select
// GOMAXPROCS, the default degree of parallelism.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines. Work is claimed by index from a shared counter, so slot i
// always corresponds to item i and callers can write results into
// pre-sized slices without synchronization.
//
// All errors are collected and joined in index order, making failure
// output independent of scheduling. When ctx is cancelled, no new items
// are started and the context error is included in the result.
// workers <= 1 (or n <= 1) degenerates to a plain serial loop on the
// calling goroutine.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						errs[i] = err
						return
					}
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. On error the partial results
// are returned alongside the joined, index-ordered errors.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
