package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]atomic.Int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Error("fn must not run for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrorsInIndexOrder(t *testing.T) {
	wantA := errors.New("boom-3")
	wantB := errors.New("boom-7")
	err := ForEach(context.Background(), 10, 4, func(i int) error {
		switch i {
		case 3:
			return wantA
		case 7:
			return wantB
		}
		return nil
	})
	if !errors.Is(err, wantA) || !errors.Is(err, wantB) {
		t.Fatalf("joined error %v missing parts", err)
	}
	// Index order: boom-3 is reported before boom-7 regardless of
	// which goroutine finished first.
	msg := err.Error()
	if len(msg) == 0 || msg != wantA.Error()+"\n"+wantB.Error() {
		t.Errorf("error text %q not in index order", msg)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	var ran int
	want := errors.New("stop")
	err := ForEach(context.Background(), 10, 1, func(i int) error {
		ran++
		if i == 2 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("serial run executed %d items after error, want 3", ran)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 1000, 2, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("cancellation did not stop the pool (%d items ran)", got)
	}
}

func TestForEachNilContext(t *testing.T) {
	if err := ForEach(nil, 8, 4, func(int) error { return nil }); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(context.Background(), 50, workers, func(i int) (string, error) {
			return fmt.Sprintf("v%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != fmt.Sprintf("v%d", i) {
				t.Fatalf("workers=%d: slot %d holds %q", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	want := errors.New("bad")
	out, err := Map(context.Background(), 4, 2, func(i int) (int, error) {
		if i == 1 {
			return 0, want
		}
		return i * 10, nil
	})
	if !errors.Is(err, want) {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("partial results length %d", len(out))
	}
}
