package cpsim

import (
	"math/rand"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/schedule"
	"schedroute/internal/topology"
)

// guardFixture computes a slack-rich DVB schedule with the given sync
// margin, using greedy placement (single-hop paths leave room for
// guard holds).
func guardFixture(t *testing.T, margin float64) (*schedule.Result, schedule.Problem) {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.Greedy(g, top)
	if err != nil {
		t.Fatal(err)
	}
	p := schedule.Problem{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn: 50 * (1 + 4.0*8/11),
	}
	res, err := schedule.Compute(p, schedule.Options{Seed: 1, SyncMargin: margin})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("setup infeasible at %v", res.FailStage)
	}
	return res, p
}

func randomSkew(nodes int, bound float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	skew := make([]float64, nodes)
	for i := range skew {
		skew[i] = (rng.Float64()*2 - 1) * bound
	}
	return skew
}

// TestGuardToleratesHalfItsWidth is the Section 7 rule end to end: a
// schedule computed with sync margin m, executed by CPs applying guard
// m, survives any clock skew bounded by m/2.
func TestGuardToleratesHalfItsWidth(t *testing.T) {
	const margin = 2.0
	res, p := guardFixture(t, margin)
	for seed := int64(1); seed <= 5; seed++ {
		skew := randomSkew(p.Topology.Nodes(), margin/2, seed)
		out, err := Run(Config{
			Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
			PacketBytes: 64, Bandwidth: 128, Skew: skew, Guard: margin,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Violations) != 0 {
			t.Fatalf("seed %d: %d violations at skew within margin/2", seed, len(out.Violations))
		}
	}
}

// TestNoGuardBreaksUnderSkew: without the guard the same skew breaks
// reservations, which is what motivates the rule.
func TestNoGuardBreaksUnderSkew(t *testing.T) {
	res, p := guardFixture(t, 0)
	skew := randomSkew(p.Topology.Nodes(), 1.0, 1)
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 128, Skew: skew,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Error("unguarded schedule should break under ±1 µs skew")
	}
}

// TestGuardBeyondToleranceBreaks: skew beyond margin/2 reintroduces
// violations even with the guard.
func TestGuardBeyondToleranceBreaks(t *testing.T) {
	const margin = 2.0
	res, p := guardFixture(t, margin)
	skew := randomSkew(p.Topology.Nodes(), 4.0, 1)
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 128, Skew: skew, Guard: margin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Error("skew far beyond the guard should violate reservations")
	}
}
