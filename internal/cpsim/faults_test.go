package cpsim

import (
	"context"
	"math"
	"testing"

	"schedroute/internal/schedule"
	"schedroute/internal/topology"
)

// usedLink returns a link the base schedule carries traffic over.
func usedLink(t *testing.T, res *schedule.Result) topology.LinkID {
	t.Helper()
	for i := range res.Windows {
		if len(res.Assignment.Links[i]) > 0 {
			return res.Assignment.Links[i][0]
		}
	}
	t.Fatal("no message uses any link")
	return -1
}

func TestFaultInjectionLosesPackets(t *testing.T) {
	res, p := feasibleOmega(t)
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(usedLink(t, res))
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Invocations: 6,
		Fault: &FaultInjection{Faults: fs, FailAt: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.LostPackets == 0 {
		t.Fatal("a fault on a used link must lose packets")
	}
	healthy, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Invocations: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.PacketsDelivered+out.LostPackets != healthy.PacketsDelivered {
		t.Errorf("delivered %d + lost %d != healthy %d",
			out.PacketsDelivered, out.LostPackets, healthy.PacketsDelivered)
	}
	// Lost packets are flagged with the failed element.
	flagged := 0
	for _, v := range out.Violations {
		if v.Kind == "failed-link" {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("lost packets must be flagged as failed-link violations")
	}
	// The output-inconsistency window opens at the fault and never
	// closes without a repair.
	if out.OIStart != 2*res.Omega.TauIn || !math.IsInf(out.OIEnd, 1) {
		t.Errorf("OI window [%g, %g], want [%g, +Inf)", out.OIStart, out.OIEnd, 2*res.Omega.TauIn)
	}
}

func TestFaultInjectionWithRepairVerifiesCleanly(t *testing.T) {
	res, p := feasibleOmega(t)
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(usedLink(t, res))
	rep, err := schedule.Repair(context.Background(), p, schedule.Options{Seed: 1}, res, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result == nil {
		t.Fatalf("repair outcome %s left no schedule", rep.Outcome)
	}
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Invocations: 8,
		Fault: &FaultInjection{Faults: fs, FailAt: 2, Repaired: rep.Result.Omega, RepairAt: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.RepairViolations) != 0 {
		t.Fatalf("repaired Ω must replay violation-free on the degraded machine, got %d (first: %+v)",
			len(out.RepairViolations), out.RepairViolations[0])
	}
	if out.LostPackets == 0 {
		t.Error("the faulted regime before repair must lose packets")
	}
	// The OI window closes when the repaired Ω activates.
	if out.OIStart != 2*res.Omega.TauIn || out.OIEnd != 4*res.Omega.TauIn {
		t.Errorf("OI window [%g, %g], want [%g, %g]",
			out.OIStart, out.OIEnd, 2*res.Omega.TauIn, 4*res.Omega.TauIn)
	}
	// Packets: 2 healthy frames + 2 faulted + 4 repaired, all accounted.
	perFrame := ExpectedPackets(res.Omega, 64, 64)
	perFrameRep := ExpectedPackets(rep.Result.Omega, 64, 64)
	lostPerFrame := out.LostPackets / 2
	want := 2*perFrame + 2*(perFrame-lostPerFrame) + 4*perFrameRep
	if out.PacketsDelivered != want {
		t.Errorf("delivered %d packets, want %d", out.PacketsDelivered, want)
	}
}

func TestFaultInjectionUnaffectedLinkLosesNothing(t *testing.T) {
	res, p := feasibleOmega(t)
	// Find an unused link.
	used := topology.NewLinkSet(p.Topology.Links())
	for i := range res.Windows {
		used.AddLinks(res.Assignment.Links[i])
	}
	var unused topology.LinkID = -1
	for l := 0; l < p.Topology.Links(); l++ {
		if !used.Has(topology.LinkID(l)) {
			unused = topology.LinkID(l)
			break
		}
	}
	if unused < 0 {
		t.Skip("every link carries traffic")
	}
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(unused)
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Invocations: 4,
		Fault: &FaultInjection{Faults: fs, FailAt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.LostPackets != 0 || len(out.Violations) != 0 {
		t.Errorf("fault on an unused link lost %d packets, %d violations",
			out.LostPackets, len(out.Violations))
	}
	if !math.IsNaN(out.OIStart) || !math.IsNaN(out.OIEnd) {
		t.Errorf("no lost packets must mean no OI window, got [%g, %g]", out.OIStart, out.OIEnd)
	}
}

func TestFaultInjectionRejectsBadConfig(t *testing.T) {
	res, p := feasibleOmega(t)
	fs := topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes())
	fs.FailLink(0)
	base := Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Invocations: 4,
	}
	cases := []*FaultInjection{
		{Faults: topology.NewFaultSet(p.Topology.Links(), p.Topology.Nodes()), FailAt: 1}, // empty set
		{Faults: fs, FailAt: -1},
		{Faults: fs, FailAt: 4}, // past the last invocation
		{Faults: fs, FailAt: 2, Repaired: res.Omega, RepairAt: 2}, // repair not after fault
		{Faults: fs, FailAt: 2, Repaired: res.Omega, RepairAt: 5}, // past the run
	}
	for i, fi := range cases {
		cfg := base
		cfg.Fault = fi
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid fault injection accepted", i)
		}
	}
}
