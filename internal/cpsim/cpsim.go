// Package cpsim executes a scheduled-routing communication schedule Ω
// at packet granularity on explicitly modeled communication processors,
// the way Section 5.4 of the paper describes the hardware behaving: the
// basic time unit is one packet transmission, every packet of a message
// follows the same path, and the CPs independently replay their
// switching commands every frame.
//
// The simulator provides two things the analytic executor in
// internal/schedule cannot:
//
//  1. an independent, dynamic re-verification of the contention-free
//     property — every packet asserts sole occupancy of every link it
//     crosses at the instant it crosses it, against a reservation table
//     rebuilt from the per-node command streams rather than from the
//     scheduler's own intermediate data; and
//  2. clock-skew injection: each node's commands can be shifted by a
//     per-node offset, and the simulator reports which transmissions
//     would escape their crossbar connections — quantifying the
//     synchronization tolerance the paper's Section 7 discusses.
package cpsim

import (
	"fmt"
	"math"
	"sort"

	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Config describes one packet-level execution.
type Config struct {
	Omega    *schedule.Omega
	Graph    *tfg.Graph
	Topology *topology.Topology
	// PacketBytes is the packet size; the per-packet transmission time
	// is PacketBytes/Bandwidth. Default 64.
	PacketBytes int
	// Bandwidth in bytes/µs must match the timing used to compute Ω.
	Bandwidth float64
	// Invocations to replay (default 4).
	Invocations int
	// Skew[n] shifts node n's command activations by the given offset
	// (µs, may be negative). Nil means perfectly synchronized CPs.
	Skew []float64
	// Guard implements the paper's Section 7 synchronization rule: the
	// source CP lets Guard elapse after its local command start before
	// transmitting ("a time interval equal to or greater than twice the
	// maximum difference between two clocks"), and every CP holds a
	// connection up to 2·Guard past its command end — released early if
	// the link's next reservation arrives sooner. Pair it with a
	// schedule computed under Options.SyncMargin >= Guard so the
	// delayed stream still meets its window.
	Guard float64
	// Fault, when non-nil, injects a fault mid-run: invocations before
	// FailAt replay Omega on the healthy machine, invocations from
	// FailAt replay it with the fault active (packets crossing a failed
	// element are lost), and — when a repaired schedule is supplied —
	// invocations from RepairAt replay Repaired on the degraded machine.
	Fault *FaultInjection
}

// FaultInjection describes a mid-run fault and (optionally) the
// activation of a repaired schedule.
type FaultInjection struct {
	// Faults are the elements that fail at invocation FailAt.
	Faults *topology.FaultSet
	// FailAt is the invocation index at which the fault strikes
	// (0 <= FailAt < Invocations).
	FailAt int
	// Repaired is the repaired Ω distributed to the CPs, active from
	// invocation RepairAt; nil means the fault is never repaired.
	Repaired *schedule.Omega
	// RepairAt is the first invocation replayed under Repaired
	// (FailAt < RepairAt <= Invocations).
	RepairAt int
}

// Violation records a packet that crossed a link outside an active
// reservation, simultaneously with another message's packet, or into a
// failed element.
type Violation struct {
	Msg  tfg.MessageID
	Link topology.LinkID
	Time float64
	Kind string // "no-reservation", "collision", "failed-link" or "failed-node"
}

// Result summarizes the execution.
type Result struct {
	// PacketsDelivered counts packets that reached their destination AP.
	PacketsDelivered int
	// Deliveries[m] is the invocation-0 delivery time of message m's
	// last packet (NaN for local messages, which bypass the network).
	Deliveries []float64
	// Violations are the contention or reservation breaches observed;
	// empty for a valid Ω under zero skew.
	Violations []Violation
	// MaxSkewTolerated is the largest uniform ± skew bound under which
	// this Ω would still be violation-free, derived from the tightest
	// reservation margin encountered (0 when reservations abut).
	MaxSkewTolerated float64
	// LostPackets counts packets dropped at a failed element across the
	// faulted invocations (zero without fault injection).
	LostPackets int
	// OIStart/OIEnd bound the output-inconsistency window in absolute
	// time: from the fault striking to the repaired Ω taking over (OIEnd
	// is +Inf for a permanent unrepaired fault; both are NaN when the
	// fault loses no packets).
	OIStart, OIEnd float64
	// RepairViolations are contention or reservation breaches observed
	// while replaying the repaired Ω on the degraded machine; empty iff
	// the repair is verified contention-free.
	RepairViolations []Violation
}

// reservation is one command's claim on a link, in global (unskewed)
// frame time, annotated with the skewed activation of its node.
type reservation struct {
	start, end float64 // node-local activation, global clock
	msg        tfg.MessageID
	node       topology.NodeID
}

// Run replays Ω and returns the packet-level measurements. With fault
// injection configured, the run is composed of up to three regimes —
// healthy frames under the base Ω, faulted frames under the base Ω
// (losing the packets that hit failed elements), and repaired frames
// under the repaired Ω on the degraded machine — and the Result
// reports the lost-packet count, the output-inconsistency window, and
// any violations of the repaired schedule separately.
func Run(cfg Config) (*Result, error) {
	if cfg.Omega == nil || cfg.Graph == nil || cfg.Topology == nil {
		return nil, fmt.Errorf("cpsim: incomplete config")
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("cpsim: non-positive bandwidth %g", cfg.Bandwidth)
	}
	if cfg.PacketBytes == 0 {
		cfg.PacketBytes = 64
	}
	if cfg.PacketBytes < 1 {
		return nil, fmt.Errorf("cpsim: non-positive packet size %d", cfg.PacketBytes)
	}
	if cfg.Invocations == 0 {
		cfg.Invocations = 4
	}
	if cfg.Skew != nil && len(cfg.Skew) != cfg.Topology.Nodes() {
		return nil, fmt.Errorf("cpsim: skew vector has %d entries for %d nodes", len(cfg.Skew), cfg.Topology.Nodes())
	}

	if cfg.Fault == nil {
		fr, err := replayFrame(&cfg, cfg.Omega, nil)
		if err != nil {
			return nil, err
		}
		return &Result{
			PacketsDelivered: fr.delivered * cfg.Invocations,
			Deliveries:       fr.deliveries,
			Violations:       fr.violations,
			MaxSkewTolerated: fr.maxSkew,
			OIStart:          math.NaN(),
			OIEnd:            math.NaN(),
		}, nil
	}

	fi := cfg.Fault
	if fi.Faults.Empty() {
		return nil, fmt.Errorf("cpsim: fault injection with an empty fault set")
	}
	if fi.FailAt < 0 || fi.FailAt >= cfg.Invocations {
		return nil, fmt.Errorf("cpsim: FailAt %d outside [0, %d)", fi.FailAt, cfg.Invocations)
	}
	repairAt := cfg.Invocations
	if fi.Repaired != nil {
		if fi.RepairAt <= fi.FailAt || fi.RepairAt > cfg.Invocations {
			return nil, fmt.Errorf("cpsim: RepairAt %d outside (%d, %d]", fi.RepairAt, fi.FailAt, cfg.Invocations)
		}
		repairAt = fi.RepairAt
	}

	healthy, err := replayFrame(&cfg, cfg.Omega, nil)
	if err != nil {
		return nil, err
	}
	faulted, err := replayFrame(&cfg, cfg.Omega, fi.Faults)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Deliveries:       healthy.deliveries,
		Violations:       healthy.violations,
		MaxSkewTolerated: healthy.maxSkew,
		OIStart:          math.NaN(),
		OIEnd:            math.NaN(),
	}
	nFaulted := repairAt - fi.FailAt
	res.PacketsDelivered = healthy.delivered*fi.FailAt + faulted.delivered*nFaulted
	res.LostPackets = faulted.lost * nFaulted
	// Faulted-regime violations (including per-packet loss flags) repeat
	// identically every frame; record one frame's worth.
	res.Violations = append(res.Violations, faulted.violations...)
	res.Violations = append(res.Violations, faulted.lostViolations...)
	if res.LostPackets > 0 {
		res.OIStart = float64(fi.FailAt) * cfg.Omega.TauIn
		if fi.Repaired != nil {
			res.OIEnd = float64(repairAt) * cfg.Omega.TauIn
		} else {
			res.OIEnd = math.Inf(1)
		}
	}
	if fi.Repaired != nil {
		repaired, err := replayFrame(&cfg, fi.Repaired, fi.Faults)
		if err != nil {
			return nil, err
		}
		res.PacketsDelivered += repaired.delivered * (cfg.Invocations - repairAt)
		// A repaired Ω must not route anything into a failed element, so
		// packet losses under it are schedule defects, not expected decay.
		res.RepairViolations = append(res.RepairViolations, repaired.violations...)
		res.RepairViolations = append(res.RepairViolations, repaired.lostViolations...)
		if repaired.maxSkew < res.MaxSkewTolerated {
			res.MaxSkewTolerated = repaired.maxSkew
		}
	}
	return res, nil
}

// frameStats summarizes one frame replay of a schedule under an
// optional fault set.
type frameStats struct {
	delivered      int
	lost           int
	deliveries     []float64
	violations     []Violation
	lostViolations []Violation
	maxSkew        float64
}

// replayFrame replays one frame of om, dropping packets at failed
// elements when fs is non-empty.
func replayFrame(cfg *Config, om *schedule.Omega, fs *topology.FaultSet) (*frameStats, error) {
	// Rebuild per-link reservations from the node command streams: a
	// link is connected for a message while *both* endpoint CPs have a
	// command naming it. With skew, the usable interval is the
	// intersection of the endpoints' local activations.
	type linkClaim struct {
		start, end float64
		msg        tfg.MessageID
	}
	perLink := make([][]linkClaim, cfg.Topology.Links())
	type endpointKey struct {
		link topology.LinkID
		msg  tfg.MessageID
		// start identifies the slice occurrence.
		start float64
	}
	ends := map[endpointKey][]reservation{}
	skewOf := func(n topology.NodeID) float64 {
		if cfg.Skew == nil {
			return 0
		}
		return cfg.Skew[n]
	}
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			for _, p := range []schedule.Port{c.In, c.Out} {
				if p.AP {
					continue
				}
				key := endpointKey{p.Link, c.Msg, c.Start}
				ends[key] = append(ends[key], reservation{
					start: c.Start + skewOf(ns.Node),
					end:   c.End + skewOf(ns.Node),
					msg:   c.Msg,
					node:  ns.Node,
				})
			}
		}
	}
	for key, rs := range ends {
		lo, hi := math.Inf(-1), math.Inf(1)
		for _, r := range rs {
			lo = math.Max(lo, r.start)
			hi = math.Min(hi, r.end)
		}
		if hi > lo {
			perLink[key.link] = append(perLink[key.link], linkClaim{start: lo, end: hi, msg: key.msg})
		}
	}
	for l := range perLink {
		sort.Slice(perLink[l], func(a, b int) bool { return perLink[l][a].start < perLink[l][b].start })
	}

	// Apply the hold discipline: every claim is held up to 2·Guard past
	// its command end, released early when the link's next reservation
	// begins.
	if cfg.Guard > 0 {
		for l := range perLink {
			claims := perLink[l]
			for i := range claims {
				hold := claims[i].end + 2*cfg.Guard
				if i+1 < len(claims) && claims[i+1].start < hold {
					hold = claims[i+1].start
				}
				if hold > claims[i].end {
					claims[i].end = hold
				}
			}
		}
	}

	// Tightest margin between consecutive reservations on any link and
	// to the frame edges bounds the tolerable skew (each endpoint can
	// drift half the gap).
	minGap := math.Inf(1)
	for _, claims := range perLink {
		for i := 1; i < len(claims); i++ {
			if claims[i].msg != claims[i-1].msg {
				gap := claims[i].start - claims[i-1].end
				if gap < minGap {
					minGap = gap
				}
			}
		}
	}

	fr := &frameStats{deliveries: make([]float64, cfg.Graph.NumMessages())}
	for i := range fr.deliveries {
		fr.deliveries[i] = math.NaN()
	}
	if !math.IsInf(minGap, 1) {
		fr.maxSkew = math.Max(0, minGap/2)
	} else {
		fr.maxSkew = math.Inf(1)
	}

	// claimFor locates the reservation covering message m on link l at
	// frame time t.
	claimFor := func(l topology.LinkID, m tfg.MessageID, t float64) bool {
		for _, c := range perLink[l] {
			if c.msg == m && t >= c.start-1e-9 && t <= c.end+1e-9 {
				return true
			}
			if c.msg != m && t > c.start+1e-9 && t < c.end-1e-9 {
				// someone else's reservation covers this instant: any
				// transmission by m here is a collision.
				return false
			}
		}
		return false
	}

	// The source CP of each message (the node whose command injects
	// from its AP) paces the packet stream on its local clock.
	srcNode := make([]topology.NodeID, cfg.Graph.NumMessages())
	for i := range srcNode {
		srcNode[i] = -1
	}
	for _, ns := range om.Nodes {
		for _, c := range ns.Commands {
			if c.In.AP {
				srcNode[c.Msg] = ns.Node
			}
		}
	}

	// A message whose path touches a failed element loses every packet
	// at the first such element.
	lostAt := make([]topology.LinkID, cfg.Graph.NumMessages())
	lostKind := make([]string, cfg.Graph.NumMessages())
	linksOf := make([][]topology.LinkID, cfg.Graph.NumMessages())
	for m := range linksOf {
		linksOf[m] = om.Linkset(tfg.MessageID(m))
		lostAt[m] = -1
		if fs.Empty() {
			continue
		}
		for _, l := range linksOf[m] {
			if fs.LinkFailed(l) {
				lostAt[m], lostKind[m] = l, "failed-link"
				break
			}
			if !fs.LinkUsable(cfg.Topology, l) {
				lostAt[m], lostKind[m] = l, "failed-node"
				break
			}
		}
	}

	// Replay the slices packet by packet.
	pktTime := float64(cfg.PacketBytes) / cfg.Bandwidth
	for _, sl := range om.Slices {
		for mi, msg := range sl.Msgs {
			w := om.Windows[msg]
			dur := sl.Until[mi] - sl.Start
			packets := int(math.Floor(dur/pktTime + 1e-9))
			srcSkew := 0.0
			if srcNode[msg] >= 0 {
				srcSkew = skewOf(srcNode[msg])
			}
			for k := 0; k < packets; k++ {
				t0 := sl.Start + srcSkew + cfg.Guard + float64(k)*pktTime
				t1 := t0 + pktTime
				mid := (t0 + t1) / 2
				if lostAt[msg] >= 0 {
					fr.lost++
					fr.lostViolations = append(fr.lostViolations, Violation{
						Msg: msg, Link: lostAt[msg], Time: mid, Kind: lostKind[msg],
					})
					continue
				}
				ok := true
				for _, l := range linksOf[msg] {
					if !claimFor(l, msg, mid) {
						fr.violations = append(fr.violations, Violation{
							Msg: msg, Link: l, Time: mid, Kind: "no-reservation",
						})
						ok = false
					}
				}
				if ok {
					fr.delivered++
					abs := w.AbsoluteTime(sl.Start, om.TauIn) + (t1 - srcSkew - sl.Start)
					if math.IsNaN(fr.deliveries[msg]) || abs > fr.deliveries[msg] {
						fr.deliveries[msg] = abs
					}
				}
			}
		}
	}

	// Cross-message collision sweep over the reservation table itself.
	for l, claims := range perLink {
		for i := 1; i < len(claims); i++ {
			if claims[i].msg != claims[i-1].msg && claims[i].start < claims[i-1].end-1e-9 {
				fr.violations = append(fr.violations, Violation{
					Msg: claims[i].msg, Link: topology.LinkID(l),
					Time: claims[i].start, Kind: "collision",
				})
			}
		}
	}
	return fr, nil
}

// ExpectedPackets returns the per-frame packet count Ω should deliver
// for the given packet size, from the message windows.
func ExpectedPackets(om *schedule.Omega, packetBytes int, bandwidth float64) int {
	pktTime := float64(packetBytes) / bandwidth
	total := 0
	for _, sl := range om.Slices {
		for mi := range sl.Msgs {
			dur := sl.Until[mi] - sl.Start
			total += int(math.Floor(dur/pktTime + 1e-9))
		}
	}
	return total
}
