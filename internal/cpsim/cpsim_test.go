package cpsim

import (
	"math"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// feasibleOmega computes a feasible DVB schedule on the 6-cube.
func feasibleOmega(t *testing.T) (*schedule.Result, schedule.Problem) {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	p := schedule.Problem{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 50 * (1 + 4.0*5/11)}
	res, err := schedule.Compute(p, schedule.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("setup: infeasible at %v", res.FailStage)
	}
	return res, p
}

func TestZeroSkewNoViolations(t *testing.T) {
	res, p := feasibleOmega(t)
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Invocations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("synchronized CPs must be violation-free, got %d (first: %+v)", len(out.Violations), out.Violations[0])
	}
	want := 3 * ExpectedPackets(res.Omega, 64, 64)
	if out.PacketsDelivered != want {
		t.Errorf("delivered %d packets, want %d", out.PacketsDelivered, want)
	}
}

func TestDeliveriesMatchAnalyticExecutor(t *testing.T) {
	res, p := feasibleOmega(t)
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := schedule.Execute(res.Omega, p.Graph, p.Timing, p.Timing.TauC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Graph.Messages() {
		if res.Windows[m.ID].Local {
			continue
		}
		if math.IsNaN(out.Deliveries[m.ID]) {
			t.Fatalf("message %d never delivered", m.ID)
		}
		// Packet-level delivery tracks the analytic delivery to within
		// one packet time (slices split at fractional interval
		// boundaries leave sub-packet remainders).
		pktTime := 1.0 // 64 bytes at 64 bytes/µs
		if diff := exec.Deliveries[m.ID] - out.Deliveries[m.ID]; diff < -1e-6 || diff > pktTime+1e-6 {
			t.Errorf("message %d: packet delivery %g vs analytic %g", m.ID, out.Deliveries[m.ID], exec.Deliveries[m.ID])
		}
	}
}

func TestLargeSkewViolates(t *testing.T) {
	res, p := feasibleOmega(t)
	skew := make([]float64, p.Topology.Nodes())
	for i := range skew {
		if i%2 == 0 {
			skew[i] = 10 // half the nodes drift far ahead
		}
	}
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Skew: skew,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Error("10 µs skew across multi-hop paths should break reservations")
	}
}

func TestUniformSkewHarmless(t *testing.T) {
	// Shifting every CP identically preserves all intersections.
	res, p := feasibleOmega(t)
	skew := make([]float64, p.Topology.Nodes())
	for i := range skew {
		skew[i] = 3.5
	}
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64, Skew: skew,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Errorf("uniform skew must be harmless, got %d violations", len(out.Violations))
	}
}

func TestSkewToleranceReported(t *testing.T) {
	res, p := feasibleOmega(t)
	out, err := Run(Config{
		Omega: res.Omega, Graph: p.Graph, Topology: p.Topology,
		PacketBytes: 64, Bandwidth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxSkewTolerated < 0 {
		t.Errorf("negative skew tolerance %g", out.MaxSkewTolerated)
	}
}

func TestConfigValidation(t *testing.T) {
	res, p := feasibleOmega(t)
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Run(Config{Omega: res.Omega, Graph: p.Graph, Topology: p.Topology, Bandwidth: 0}); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := Run(Config{Omega: res.Omega, Graph: p.Graph, Topology: p.Topology, Bandwidth: 64, PacketBytes: -1}); err == nil {
		t.Error("negative packet size should fail")
	}
	if _, err := Run(Config{Omega: res.Omega, Graph: p.Graph, Topology: p.Topology, Bandwidth: 64, Skew: []float64{1}}); err == nil {
		t.Error("short skew vector should fail")
	}
}

func TestLocalMessagesSkipNetwork(t *testing.T) {
	// A two-task chain placed on one node: no slices, no packets, no
	// violations.
	g, err := tfg.Chain(2, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	om := &schedule.Omega{TauIn: 100, Windows: []schedule.Window{{Local: true, Xmit: 10}}}
	out, err := Run(Config{Omega: om, Graph: g, Topology: top, Bandwidth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if out.PacketsDelivered != 0 || len(out.Violations) != 0 {
		t.Errorf("local-only schedule: %+v", out)
	}
	if !math.IsNaN(out.Deliveries[0]) {
		t.Error("local message should have NaN network delivery")
	}
}
