// Package alloc places TFG tasks onto multicomputer nodes. The paper
// treats allocation as an input fixed before routing ("locations of the
// sources and destinations of messages ... are fixed by task
// allocation"); this package provides deterministic allocators so that
// the wormhole baseline and scheduled routing are compared on identical
// placements.
package alloc

import (
	"fmt"
	"math/rand"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Assignment maps every task to the node hosting it.
type Assignment struct {
	// NodeOf[t] is the node executing task t.
	NodeOf []topology.NodeID
}

// Node returns the node hosting task t.
func (a *Assignment) Node(t tfg.TaskID) topology.NodeID { return a.NodeOf[t] }

// Validate checks the assignment covers every task with an in-range
// node. When exclusive is true it additionally requires at most one task
// per node, the regime the paper's scheduled-routing time bounds assume
// (one application processor per task).
func (a *Assignment) Validate(g *tfg.Graph, top *topology.Topology, exclusive bool) error {
	if len(a.NodeOf) != g.NumTasks() {
		return fmt.Errorf("alloc: assignment covers %d tasks, graph has %d", len(a.NodeOf), g.NumTasks())
	}
	used := make(map[topology.NodeID]tfg.TaskID)
	for t, n := range a.NodeOf {
		if n < 0 || int(n) >= top.Nodes() {
			return fmt.Errorf("alloc: task %d assigned to node %d outside topology of %d nodes", t, n, top.Nodes())
		}
		if prev, ok := used[n]; ok && exclusive {
			return fmt.Errorf("alloc: tasks %d and %d share node %d under exclusive placement", prev, t, n)
		}
		used[n] = tfg.TaskID(t)
	}
	return nil
}

// TotalHops returns the summed shortest-path hop count over all messages,
// a standard allocation-quality metric.
func (a *Assignment) TotalHops(g *tfg.Graph, top *topology.Topology) int {
	total := 0
	for _, m := range g.Messages() {
		total += top.Distance(a.NodeOf[m.Src], a.NodeOf[m.Dst])
	}
	return total
}

// RoundRobin assigns tasks to nodes 0,1,2,... in topological order. It
// fails when the graph has more tasks than the topology has nodes.
func RoundRobin(g *tfg.Graph, top *topology.Topology) (*Assignment, error) {
	if g.NumTasks() > top.Nodes() {
		return nil, fmt.Errorf("alloc: %d tasks exceed %d nodes", g.NumTasks(), top.Nodes())
	}
	a := &Assignment{NodeOf: make([]topology.NodeID, g.NumTasks())}
	for i, t := range g.TopoOrder() {
		a.NodeOf[t] = topology.NodeID(i)
	}
	return a, nil
}

// Random assigns tasks to distinct nodes uniformly at random,
// deterministically for a given seed.
func Random(g *tfg.Graph, top *topology.Topology, seed int64) (*Assignment, error) {
	if g.NumTasks() > top.Nodes() {
		return nil, fmt.Errorf("alloc: %d tasks exceed %d nodes", g.NumTasks(), top.Nodes())
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(top.Nodes())
	a := &Assignment{NodeOf: make([]topology.NodeID, g.NumTasks())}
	for t := 0; t < g.NumTasks(); t++ {
		a.NodeOf[t] = topology.NodeID(perm[t])
	}
	return a, nil
}

// Greedy places tasks in topological order, each on the free node that
// minimizes the summed distance to its already-placed predecessors
// (ties broken by node ID; the first task goes to node 0). This is the
// default allocator of the reproduction's experiments: it keeps
// communicating tasks close, the setting in which wormhole routing's
// link sharing — and hence output inconsistency — actually arises.
func Greedy(g *tfg.Graph, top *topology.Topology) (*Assignment, error) {
	if g.NumTasks() > top.Nodes() {
		return nil, fmt.Errorf("alloc: %d tasks exceed %d nodes", g.NumTasks(), top.Nodes())
	}
	a := &Assignment{NodeOf: make([]topology.NodeID, g.NumTasks())}
	placed := make([]bool, g.NumTasks())
	usedNode := make([]bool, top.Nodes())
	for _, t := range g.TopoOrder() {
		bestNode, bestCost := topology.NodeID(-1), int(^uint(0)>>1)
		for n := 0; n < top.Nodes(); n++ {
			if usedNode[n] {
				continue
			}
			cost := 0
			for _, mid := range g.Incoming(t) {
				src := g.Message(mid).Src
				if placed[src] {
					cost += top.Distance(a.NodeOf[src], topology.NodeID(n))
				}
			}
			if cost < bestCost {
				bestCost, bestNode = cost, topology.NodeID(n)
			}
		}
		a.NodeOf[t] = bestNode
		placed[t] = true
		usedNode[bestNode] = true
	}
	return a, nil
}
