package alloc

import (
	"testing"

	"schedroute/internal/dvb"
	"schedroute/internal/topology"
)

func TestAnnealImprovesOnRandom(t *testing.T) {
	g, top := fixtures(t)
	random, err := Random(g, top, 5)
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Anneal(g, top, AnnealOptions{Seed: 5, Steps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := annealed.Validate(g, top, true); err != nil {
		t.Fatal(err)
	}
	rc := LinkLoadCost(g, top, random)
	ac := LinkLoadCost(g, top, annealed)
	if ac > rc {
		t.Errorf("annealing worsened the contention proxy: %g > %g", ac, rc)
	}
	if ac == 0 {
		t.Log("annealing reached a fully local placement")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g, top := fixtures(t)
	a, err := Anneal(g, top, AnnealOptions{Seed: 9, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(g, top, AnnealOptions{Seed: 9, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.NodeOf {
		if a.NodeOf[i] != b.NodeOf[i] {
			t.Fatal("annealing not deterministic for equal seeds")
		}
	}
}

func TestAnnealValidation(t *testing.T) {
	g, top := fixtures(t)
	if _, err := Anneal(g, top, AnnealOptions{Steps: -1}); err == nil {
		t.Error("negative steps should fail")
	}
	if _, err := Anneal(g, top, AnnealOptions{StartTemp: 0.001, EndTemp: 1}); err == nil {
		t.Error("inverted temperatures should fail")
	}
	small, err := topology.NewHypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(g, small, AnnealOptions{}); err == nil {
		t.Error("oversubscription should fail")
	}
}

func TestAnnealBeatsRoundRobinOnDVB(t *testing.T) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Anneal(g, top, AnnealOptions{Seed: 1, Steps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if ac, rc := LinkLoadCost(g, top, an), LinkLoadCost(g, top, rr); ac >= rc {
		t.Errorf("annealing (%g) should beat round-robin (%g) on the contention proxy", ac, rc)
	}
}
