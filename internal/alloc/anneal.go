package alloc

import (
	"fmt"
	"math"
	"math/rand"

	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// AnnealOptions tunes the simulated-annealing allocator.
type AnnealOptions struct {
	// Seed makes the search deterministic.
	Seed int64
	// Steps is the number of proposed moves (default 20000).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule
	// (defaults 1.0 and 0.001, in units of normalized cost).
	StartTemp float64
	EndTemp   float64
}

// Anneal searches placements by simulated annealing, minimizing a
// contention proxy for scheduled routing: the sum of squared per-link
// byte loads under LSD-to-MSD routing. Squaring penalizes hot links —
// precisely what drives peak utilization, the quantity that decides
// whether a communication schedule exists. Moves swap two tasks or
// relocate a task to a free node; placements stay exclusive.
func Anneal(g *tfg.Graph, top *topology.Topology, opt AnnealOptions) (*Assignment, error) {
	if g.NumTasks() > top.Nodes() {
		return nil, fmt.Errorf("alloc: %d tasks exceed %d nodes", g.NumTasks(), top.Nodes())
	}
	if opt.Steps == 0 {
		opt.Steps = 20000
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("alloc: non-positive step count %d", opt.Steps)
	}
	if opt.StartTemp == 0 {
		opt.StartTemp = 1.0
	}
	if opt.EndTemp == 0 {
		opt.EndTemp = 0.001
	}
	if opt.StartTemp < opt.EndTemp || opt.EndTemp <= 0 {
		return nil, fmt.Errorf("alloc: bad temperature range [%g, %g]", opt.EndTemp, opt.StartTemp)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	cur, err := Random(g, top, opt.Seed)
	if err != nil {
		return nil, err
	}
	nodeTask := make([]int, top.Nodes()) // node -> task+1, 0 = free
	for t, n := range cur.NodeOf {
		nodeTask[n] = t + 1
	}

	linkLoad := make([]float64, top.Links())
	cost := func() float64 {
		for i := range linkLoad {
			linkLoad[i] = 0
		}
		for _, m := range g.Messages() {
			src, dst := cur.NodeOf[m.Src], cur.NodeOf[m.Dst]
			if src == dst {
				continue
			}
			p := top.LSDToMSD(src, dst)
			links, err := p.Links(top)
			if err != nil {
				continue
			}
			for _, l := range links {
				linkLoad[l] += float64(m.Bytes)
			}
		}
		sum := 0.0
		for _, v := range linkLoad {
			sum += v * v
		}
		return sum
	}

	curCost := cost()
	norm := curCost // normalizes temperatures to the initial cost scale
	if norm == 0 {
		return cur, nil
	}
	best := &Assignment{NodeOf: append([]topology.NodeID(nil), cur.NodeOf...)}
	bestCost := curCost
	cooling := math.Pow(opt.EndTemp/opt.StartTemp, 1/float64(opt.Steps))
	temp := opt.StartTemp

	for step := 0; step < opt.Steps; step++ {
		t1 := rng.Intn(g.NumTasks())
		n1 := cur.NodeOf[t1]
		n2 := topology.NodeID(rng.Intn(top.Nodes()))
		if n1 == n2 {
			temp *= cooling
			continue
		}
		occupant := nodeTask[n2] - 1
		// Apply: move t1 to n2, and the occupant (if any) to n1.
		cur.NodeOf[t1] = n2
		nodeTask[n2] = t1 + 1
		if occupant >= 0 {
			cur.NodeOf[occupant] = n1
			nodeTask[n1] = occupant + 1
		} else {
			nodeTask[n1] = 0
		}
		newCost := cost()
		accept := newCost <= curCost
		if !accept {
			delta := (newCost - curCost) / norm
			accept = rng.Float64() < math.Exp(-delta/temp)
		}
		if accept {
			curCost = newCost
			if curCost < bestCost {
				bestCost = curCost
				copy(best.NodeOf, cur.NodeOf)
			}
		} else {
			// Revert.
			cur.NodeOf[t1] = n1
			nodeTask[n1] = t1 + 1
			if occupant >= 0 {
				cur.NodeOf[occupant] = n2
				nodeTask[n2] = occupant + 1
			} else {
				nodeTask[n2] = 0
			}
		}
		temp *= cooling
	}
	return best, nil
}

// LinkLoadCost exposes the annealer's objective for a given placement,
// so callers can compare allocator quality.
func LinkLoadCost(g *tfg.Graph, top *topology.Topology, a *Assignment) float64 {
	load := make([]float64, top.Links())
	for _, m := range g.Messages() {
		src, dst := a.NodeOf[m.Src], a.NodeOf[m.Dst]
		if src == dst {
			continue
		}
		p := top.LSDToMSD(src, dst)
		links, err := p.Links(top)
		if err != nil {
			continue
		}
		for _, l := range links {
			load[l] += float64(m.Bytes)
		}
	}
	sum := 0.0
	for _, v := range load {
		sum += v * v
	}
	return sum
}
