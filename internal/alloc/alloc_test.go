package alloc

import (
	"testing"
	"testing/quick"

	"schedroute/internal/dvb"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func fixtures(t *testing.T) (*tfg.Graph, *topology.Topology) {
	t.Helper()
	g, err := dvb.New(8)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewGHC(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, top
}

func TestRoundRobinValid(t *testing.T) {
	g, top := fixtures(t)
	a, err := RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g, top, true); err != nil {
		t.Error(err)
	}
}

func TestRandomValidAndDeterministic(t *testing.T) {
	g, top := fixtures(t)
	a1, err := Random(g, top, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Validate(g, top, true); err != nil {
		t.Error(err)
	}
	a2, _ := Random(g, top, 42)
	for i := range a1.NodeOf {
		if a1.NodeOf[i] != a2.NodeOf[i] {
			t.Fatal("Random not deterministic for equal seeds")
		}
	}
	a3, _ := Random(g, top, 43)
	same := true
	for i := range a1.NodeOf {
		if a1.NodeOf[i] != a3.NodeOf[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical placement (suspicious)")
	}
}

func TestGreedyValidAndCompact(t *testing.T) {
	g, top := fixtures(t)
	greedy, err := Greedy(g, top)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Validate(g, top, true); err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy keeps communicating tasks close: it should never be worse
	// than round-robin on total hops for this workload.
	if gh, rh := greedy.TotalHops(g, top), rr.TotalHops(g, top); gh > rh {
		t.Errorf("greedy hops %d > round-robin hops %d", gh, rh)
	}
}

func TestTooManyTasks(t *testing.T) {
	g, err := tfg.Chain(10, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewGHC(2, 2) // 4 nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoundRobin(g, top); err == nil {
		t.Error("RoundRobin should reject oversubscription")
	}
	if _, err := Random(g, top, 1); err == nil {
		t.Error("Random should reject oversubscription")
	}
	if _, err := Greedy(g, top); err == nil {
		t.Error("Greedy should reject oversubscription")
	}
}

func TestValidateCatchesSharing(t *testing.T) {
	g, top := fixtures(t)
	a, _ := RoundRobin(g, top)
	a.NodeOf[1] = a.NodeOf[0]
	if err := a.Validate(g, top, true); err == nil {
		t.Error("shared node should fail exclusive validation")
	}
	if err := a.Validate(g, top, false); err != nil {
		t.Errorf("non-exclusive validation should pass: %v", err)
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	g, top := fixtures(t)
	a, _ := RoundRobin(g, top)
	a.NodeOf[0] = topology.NodeID(top.Nodes())
	if err := a.Validate(g, top, false); err == nil {
		t.Error("out-of-range node should fail")
	}
	short := &Assignment{NodeOf: a.NodeOf[:2]}
	if err := short.Validate(g, top, false); err == nil {
		t.Error("short assignment should fail")
	}
}

func TestTotalHopsZeroWhenChainOnNeighbors(t *testing.T) {
	g, err := tfg.Chain(2, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := &Assignment{NodeOf: []topology.NodeID{0, 1}}
	if got := a.TotalHops(g, top); got != 1 {
		t.Errorf("hops = %d, want 1", got)
	}
}

// Property: all allocators produce valid exclusive placements for random
// layered graphs that fit the topology.
func TestQuickAllocatorsValid(t *testing.T) {
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		g, err := tfg.RandomLayered(seed%100, []int{2, 4, 3, 2}, 50, 100, 64, 1024, 0.3)
		if err != nil {
			return false
		}
		for _, mk := range []func() (*Assignment, error){
			func() (*Assignment, error) { return RoundRobin(g, top) },
			func() (*Assignment, error) { return Random(g, top, seed) },
			func() (*Assignment, error) { return Greedy(g, top) },
		} {
			a, err := mk()
			if err != nil {
				return false
			}
			if a.Validate(g, top, true) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
