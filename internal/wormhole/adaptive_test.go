package wormhole

import (
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func dvbSweepOI(t *testing.T, adaptive bool) (oiPoints int, totalWait float64) {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		tauIn := tm.TauC() * (1 + 4*float64(k)/11)
		res, err := Simulate(Config{
			Graph: g, Timing: tm, Topology: top, Assignment: as,
			TauIn: tauIn, Invocations: 16, Warmup: 8, Adaptive: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			oiPoints++
			continue
		}
		if metrics.OutputInconsistent(tauIn, metrics.Intervals(res.OutputCompletions), 1e-6) {
			oiPoints++
		}
		totalWait += res.TotalLinkWait
	}
	return oiPoints, totalWait
}

// TestAdaptiveRoutingStillShowsOI verifies the paper's Section 3
// argument: even load-sensitive path selection over the multiple
// equivalent paths cannot guarantee output consistency for task-level
// pipelining.
func TestAdaptiveRoutingStillShowsOI(t *testing.T) {
	oi, _ := dvbSweepOI(t, true)
	if oi == 0 {
		t.Error("adaptive routing should still exhibit output inconsistency at some load (paper Section 3)")
	}
}

// TestAdaptiveRoutingReducesBlocking: adaptivity is not useless — it
// routes around occupied channels, so total blocking time should not
// grow versus the deterministic route.
func TestAdaptiveRoutingReducesBlocking(t *testing.T) {
	_, detWait := dvbSweepOI(t, false)
	_, adaWait := dvbSweepOI(t, true)
	if adaWait > detWait*1.25 {
		t.Errorf("adaptive blocking %.0f much worse than deterministic %.0f", adaWait, detWait)
	}
}

func TestAdaptiveUncontendedMatchesDeterministic(t *testing.T) {
	g, err := tfg.Chain(3, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	tm := uniform(t, g, 10, 64)
	for _, adaptive := range []bool{false, true} {
		res, err := Simulate(Config{
			Graph: g, Timing: tm, Topology: top,
			Assignment:  lineAssignment(0, 1, 2),
			TauIn:       100,
			Invocations: 4, Warmup: 1, Adaptive: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Latencies[0] != 50 {
			t.Errorf("adaptive=%v: latency %g, want 50", adaptive, res.Latencies[0])
		}
	}
}

func TestAdaptiveAvoidsBusyChannel(t *testing.T) {
	// Two independent sources send to the same destination region; with
	// the deterministic route they share a channel, adaptively the
	// second can sidestep. Construct: A@0→B@2 and C@0... same source
	// node is exclusive-restricted, so use two separate chains injected
	// simultaneously: A@0→B@5 and C@1→D@5 on a 4x4 torus where LSD
	// paths share the 1->5 hop.
	b := tfg.NewBuilder("avoid")
	c := b.AddTask("c", 100) // finishes at 10, occupies channel 1→5
	d := b.AddTask("d", 100)
	a := b.AddTask("a", 150) // finishes at 15, while 1→5 is busy
	bb := b.AddTask("b", 100)
	b.AddMessage("mc", c, d, 640)
	b.AddMessage("ma", a, bb, 640)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tfg.NewTiming(g, 10, 64) // exec = ops/10, xmit 10
	if err != nil {
		t.Fatal(err)
	}
	// c@1 → d@5 takes channel 1→5 during [10,20); a@0 → b@5 injects at
	// 15: the LSD route 0→1→5 is blocked at 1→5, the equivalent route
	// 0→4→5 is free.
	as := &alloc.Assignment{NodeOf: []topology.NodeID{1, 5, 0, 5}}
	det, err := Simulate(Config{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn: 100, Invocations: 3, Warmup: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ada, err := Simulate(Config{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn: 100, Invocations: 3, Warmup: 0, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalLinkWait == 0 {
		t.Fatal("deterministic routes should contend on the shared channel")
	}
	if ada.TotalLinkWait != 0 {
		t.Errorf("adaptive routing should sidestep the busy channel, waited %g", ada.TotalLinkWait)
	}
}
