// Package wormhole simulates the paper's wormhole-routing baseline
// (Section 3 and the model stated in Section 6): each message follows
// the deterministic LSD-to-MSD path between its tasks' nodes, captures
// links one at a time in path order while holding those already
// acquired (blocking in place), contends under first-come-first-served
// arbitration at every link, and occupies the entire path from the
// instant the path is complete until delivery one transmission time
// later. Propagation and switching delays are ignored — the large-grain
// assumption makes transmission time dominant — and each link carries
// one channel per direction, as in the second-generation multicomputers
// (iPSC/2, Symult 2010) the paper names.
//
// A task-flow graph is invoked periodically; messages of different
// invocations therefore coexist and contend, which is precisely the
// mechanism behind output inconsistency.
package wormhole

import (
	"fmt"
	"math"

	"schedroute/internal/alloc"
	"schedroute/internal/sim"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Config describes one simulation run.
type Config struct {
	Graph      *tfg.Graph
	Timing     *tfg.Timing
	Topology   *topology.Topology
	Assignment *alloc.Assignment
	// TauIn is the invocation period τin.
	TauIn float64
	// Invocations is the number of TFG invocations to inject.
	Invocations int
	// Warmup invocations are simulated but excluded from the result
	// series, letting the pipeline reach steady state first.
	Warmup int
	// MaxEvents bounds the event count (0 = default of 50M) to guard
	// against runaway models.
	MaxEvents uint64
	// StrictVC selects the paper's "stricter model" (Section 6, closing
	// remark): each physical channel is time-multiplexed between its two
	// virtual channels, so the bandwidth available to a message is
	// halved — transmission times double. The paper predicts the
	// instances of output inconsistency "are likely to increase".
	StrictVC bool
	// Adaptive selects load-sensitive path selection in the style of
	// adaptive cut-through routing (Ngai 1989, discussed at the end of
	// the paper's Section 3): at injection the message commits to the
	// equivalent shortest path with the fewest currently-occupied
	// channels instead of the deterministic LSD-to-MSD route. The
	// paper argues output inconsistency persists even then.
	Adaptive bool
	// AdaptiveMaxPaths caps the equivalent shortest paths considered
	// per source/destination pair (default 16).
	AdaptiveMaxPaths int
	// Trace, when non-nil, receives simulation events: "inject" (message
	// becomes ready), "path" (full path acquired, transmission starts),
	// "deliver" (message received), "task" (task instance starts).
	Trace func(event string, msg tfg.MessageID, inv int, t float64)
}

// Result carries the per-invocation measurements.
type Result struct {
	// OutputCompletions[j] is the absolute time at which the last output
	// task of measured invocation j completed.
	OutputCompletions []float64
	// Latencies[j] is OutputCompletions[j] minus invocation j's start.
	Latencies []float64
	// TotalLinkWait is the summed time messages spent blocked waiting
	// for links, across all measured and warmup invocations.
	TotalLinkWait float64
	// Deadlocked is true when the simulation wedged with undelivered
	// messages (possible for the path-holding model on tori, which have
	// cyclic link dependencies without virtual channels).
	Deadlocked bool
}

// channel is a directed virtual-channel resource. Second-generation
// multicomputer links carry one physical channel per direction, so
// traffic flowing A→B does not contend with traffic flowing B→A; on
// tori each directed channel additionally carries two virtual channels
// with the classic dateline discipline (switch from VC0 to VC1 on
// crossing a ring's wraparound link), which is what makes
// dimension-order wormhole routing deadlock-free on rings — the
// "stricter model" the paper's Section 6 closing remark refers to.
// (Scheduled routing, by contrast, uses the paper's half-duplex CP link
// model; it is contention-free by construction, so the distinction is
// moot there.)
type channel int

func channelOf(l topology.LinkID, fromLow bool, vc int) channel {
	c := channel(l) * 4
	if !fromLow {
		c += 2
	}
	return c + channel(vc)
}

// channelSequence maps a node path to its directed virtual channels:
// per dimension, VC0 until the ring's wraparound link is crossed, VC1
// from there on (dateline discipline). Non-wrapping hops on GHCs and
// meshes always ride VC0.
func channelSequence(top *topology.Topology, p topology.Path, links []topology.LinkID) []channel {
	radices := top.Radices()
	crossed := make([]bool, len(radices))
	chans := make([]channel, len(links))
	for h, l := range links {
		u, v := p.Nodes[h], p.Nodes[h+1]
		du, dv := top.Digits(u), top.Digits(v)
		dim := -1
		for d := range du {
			if du[d] != dv[d] {
				dim = d
				break
			}
		}
		wrap := false
		if dim >= 0 {
			k := radices[dim]
			diff := du[dim] - dv[dim]
			if diff == k-1 || diff == -(k-1) {
				wrap = true
			}
		}
		vc := 0
		if dim >= 0 {
			if wrap {
				crossed[dim] = true
			}
			if crossed[dim] {
				vc = 1
			}
		}
		chans[h] = channelOf(l, u < v, vc)
	}
	return chans
}

// message instance state during simulation.
type msgInstance struct {
	id       tfg.MessageID
	inv      int
	links    []channel
	acquired int
	// waitSince is when the instance joined its current wait queue.
	waitSince float64
	// waiting is true while the instance sits in some link's queue.
	waiting bool
	// delivered is set on completion, for deadlock detection.
	delivered bool
}

// taskInstance tracks readiness of one (task, invocation).
type taskInstance struct {
	pendingMsgs int
	started     bool
}

type simulator struct {
	cfg        Config
	eng        *sim.Engine
	paths      [][]channel      // per message ID: directed channel sequence
	candidates [][][]channel    // per message ID: alternative sequences (adaptive mode)
	holder     []*msgInstance   // per channel: current owner
	queues     [][]*msgInstance // per channel: FCFS waiters
	tasks      []map[int]*taskInstance
	apBusy     []float64 // per node: time the AP frees up
	// completion bookkeeping
	outputsLeft []int     // per invocation
	outputDone  []float64 // per invocation: completion of last output
	invStart    []float64
	inFlight    []*msgInstance
	totalWait   float64
}

// Simulate runs the configured wormhole model and returns per-invocation
// measurements.
func Simulate(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	s := &simulator{
		cfg:    cfg,
		eng:    sim.NewEngine(),
		holder: make([]*msgInstance, 4*cfg.Topology.Links()),
		queues: make([][]*msgInstance, 4*cfg.Topology.Links()),
		tasks:  make([]map[int]*taskInstance, cfg.Graph.NumTasks()),
		apBusy: make([]float64, cfg.Topology.Nodes()),
	}
	for i := range s.tasks {
		s.tasks[i] = make(map[int]*taskInstance)
	}
	// Precompute LSD-to-MSD directed channel sequences per message, and
	// in adaptive mode the alternative shortest paths to pick among at
	// injection time.
	s.paths = make([][]channel, cfg.Graph.NumMessages())
	if cfg.Adaptive {
		s.candidates = make([][][]channel, cfg.Graph.NumMessages())
	}
	maxPaths := cfg.AdaptiveMaxPaths
	if maxPaths == 0 {
		maxPaths = 16
	}
	for _, m := range cfg.Graph.Messages() {
		src := cfg.Assignment.Node(m.Src)
		dst := cfg.Assignment.Node(m.Dst)
		if src == dst {
			s.paths[m.ID] = nil
			continue
		}
		p := cfg.Topology.LSDToMSD(src, dst)
		links, err := p.Links(cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("wormhole: message %d: %w", m.ID, err)
		}
		s.paths[m.ID] = channelSequence(cfg.Topology, p, links)
		if cfg.Adaptive {
			for _, alt := range cfg.Topology.ShortestPaths(src, dst, maxPaths) {
				altLinks, err := alt.Links(cfg.Topology)
				if err != nil {
					return nil, fmt.Errorf("wormhole: message %d: %w", m.ID, err)
				}
				s.candidates[m.ID] = append(s.candidates[m.ID], channelSequence(cfg.Topology, alt, altLinks))
			}
		}
	}

	total := cfg.Warmup + cfg.Invocations
	s.outputsLeft = make([]int, total)
	s.outputDone = make([]float64, total)
	s.invStart = make([]float64, total)
	nOutputs := len(cfg.Graph.OutputTasks())
	for j := 0; j < total; j++ {
		j := j
		s.outputsLeft[j] = nOutputs
		s.outputDone[j] = math.Inf(-1)
		s.invStart[j] = float64(j) * cfg.TauIn
		s.eng.At(s.invStart[j], func(now float64) { s.startInvocation(j, now) })
	}

	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	if err := s.eng.Run(maxEvents); err != nil {
		return nil, fmt.Errorf("wormhole: %w", err)
	}

	res := &Result{TotalLinkWait: s.totalWait}
	for _, mi := range s.inFlight {
		if !mi.delivered {
			res.Deadlocked = true
			break
		}
	}
	if !res.Deadlocked {
		for j := cfg.Warmup; j < total; j++ {
			if s.outputsLeft[j] != 0 {
				res.Deadlocked = true
				break
			}
		}
	}
	if res.Deadlocked {
		return res, nil
	}
	for j := cfg.Warmup; j < total; j++ {
		res.OutputCompletions = append(res.OutputCompletions, s.outputDone[j])
		res.Latencies = append(res.Latencies, s.outputDone[j]-s.invStart[j])
	}
	return res, nil
}

func validate(cfg *Config) error {
	switch {
	case cfg.Graph == nil || cfg.Timing == nil || cfg.Topology == nil || cfg.Assignment == nil:
		return fmt.Errorf("wormhole: incomplete config")
	case cfg.TauIn <= 0:
		return fmt.Errorf("wormhole: non-positive invocation period %g", cfg.TauIn)
	case cfg.Invocations < 1:
		return fmt.Errorf("wormhole: need at least one measured invocation")
	case cfg.Warmup < 0:
		return fmt.Errorf("wormhole: negative warmup")
	}
	if err := cfg.Assignment.Validate(cfg.Graph, cfg.Topology, false); err != nil {
		return err
	}
	return nil
}

func (s *simulator) instance(t tfg.TaskID, inv int) *taskInstance {
	ti, ok := s.tasks[t][inv]
	if !ok {
		ti = &taskInstance{pendingMsgs: len(s.cfg.Graph.Incoming(t))}
		s.tasks[t][inv] = ti
	}
	return ti
}

func (s *simulator) startInvocation(j int, now float64) {
	for _, t := range s.cfg.Graph.InputTasks() {
		s.enqueueTask(t, j, now)
	}
}

// enqueueTask makes (t, inv) ready and hands it to its node's AP, which
// processes ready tasks first-come-first-served, one at a time.
func (s *simulator) enqueueTask(t tfg.TaskID, inv int, now float64) {
	ti := s.instance(t, inv)
	if ti.started {
		return
	}
	ti.started = true
	node := s.cfg.Assignment.Node(t)
	exec := s.cfg.Timing.ExecTime[t]
	start := now
	if s.apBusy[node] > start {
		start = s.apBusy[node]
	}
	s.apBusy[node] = start + exec
	finish := start + exec
	s.eng.At(finish, func(now float64) { s.completeTask(t, inv, now) })
}

func (s *simulator) completeTask(t tfg.TaskID, inv int, now float64) {
	g := s.cfg.Graph
	if len(g.Outgoing(t)) == 0 {
		s.outputsLeft[inv]--
		if now > s.outputDone[inv] {
			s.outputDone[inv] = now
		}
		return
	}
	for _, mid := range g.Outgoing(t) {
		mi := &msgInstance{id: mid, inv: inv, links: s.routeFor(mid)}
		s.inFlight = append(s.inFlight, mi)
		if s.cfg.Trace != nil {
			s.cfg.Trace("inject", mid, inv, now)
		}
		s.advance(mi, now)
	}
}

// routeFor picks the message's channel sequence: the deterministic
// LSD-to-MSD route, or in adaptive mode the equivalent shortest path
// with the fewest currently-occupied channels (ties to the first
// enumerated, keeping the simulation deterministic).
func (s *simulator) routeFor(mid tfg.MessageID) []channel {
	if s.candidates == nil || len(s.candidates[mid]) == 0 {
		return s.paths[mid]
	}
	best, bestBusy := s.candidates[mid][0], int(^uint(0)>>1)
	for _, cand := range s.candidates[mid] {
		busy := 0
		for _, ch := range cand {
			if s.holder[ch] != nil {
				busy++
			}
		}
		if busy < bestBusy {
			best, bestBusy = cand, busy
		}
	}
	return best
}

// advance acquires channels in path order; when blocked the instance
// enters (or stays in) the FCFS queue of the next channel; when the
// path is complete, delivery is scheduled one transmission time later.
// A free channel with waiters is granted only to the head of its queue,
// so arrival order is honored even when several channels free at once.
func (s *simulator) advance(mi *msgInstance, now float64) {
	for mi.acquired < len(mi.links) {
		l := mi.links[mi.acquired]
		if s.holder[l] == nil && (len(s.queues[l]) == 0 || s.queues[l][0] == mi) {
			if len(s.queues[l]) > 0 && s.queues[l][0] == mi {
				s.queues[l] = s.queues[l][1:]
				mi.waiting = false
				s.totalWait += now - mi.waitSince
			}
			s.holder[l] = mi
			mi.acquired++
			continue
		}
		if !mi.waiting {
			mi.waiting = true
			mi.waitSince = now
			s.queues[l] = append(s.queues[l], mi)
		}
		return
	}
	// Full path held (possibly empty for co-located tasks): transmit.
	if s.cfg.Trace != nil {
		s.cfg.Trace("path", mi.id, mi.inv, now)
	}
	xmit := s.cfg.Timing.XmitTime[mi.id]
	if s.cfg.StrictVC && len(mi.links) > 0 {
		xmit *= 2
	}
	s.eng.At(now+xmit, func(now float64) { s.deliver(mi, now) })
}

func (s *simulator) deliver(mi *msgInstance, now float64) {
	mi.delivered = true
	if s.cfg.Trace != nil {
		s.cfg.Trace("deliver", mi.id, mi.inv, now)
	}
	// Release the whole path, waking FCFS heads.
	released := mi.links[:mi.acquired]
	mi.links = nil
	for _, l := range released {
		s.holder[l] = nil
	}
	for _, l := range released {
		if s.holder[l] == nil && len(s.queues[l]) > 0 {
			// advance pops the head itself once it grants the channel.
			s.advance(s.queues[l][0], now)
		}
	}
	dst := s.cfg.Graph.Message(mi.id).Dst
	ti := s.instance(dst, mi.inv)
	ti.pendingMsgs--
	if ti.pendingMsgs == 0 {
		s.enqueueTask(dst, mi.inv, now)
	}
}
