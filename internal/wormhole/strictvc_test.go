package wormhole

import (
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// countOI sweeps the paper's grid and counts load points with output
// inconsistency (or deadlock) under the given VC model.
func countOI(t *testing.T, strict bool) int {
	t.Helper()
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for k := 0; k < 12; k++ {
		tauIn := tm.TauC() * (1 + 4*float64(k)/11)
		res, err := Simulate(Config{
			Graph: g, Timing: tm, Topology: top, Assignment: as,
			TauIn: tauIn, Invocations: 16, Warmup: 8, StrictVC: strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked || metrics.OutputInconsistent(tauIn, metrics.Intervals(res.OutputCompletions), 1e-6) {
			count++
		}
	}
	return count
}

// TestStrictVCIncreasesOI verifies the paper's Section 6 closing
// prediction: halving per-message bandwidth via channel multiplexing
// makes output inconsistency at least as frequent.
func TestStrictVCIncreasesOI(t *testing.T) {
	base := countOI(t, false)
	strict := countOI(t, true)
	if strict < base {
		t.Errorf("strict VC model reduced OI points: %d < %d", strict, base)
	}
	if strict == 0 {
		t.Error("strict model shows no OI anywhere; expected contention")
	}
}

func TestStrictVCDoublesUncontendedTransmission(t *testing.T) {
	g, err := tfg.Chain(3, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	tm := uniform(t, g, 10, 64) // xmit 10
	for _, strict := range []bool{false, true} {
		res, err := Simulate(Config{
			Graph: g, Timing: tm, Topology: top,
			Assignment:  lineAssignment(0, 1, 2),
			TauIn:       100,
			Invocations: 3, Warmup: 1, StrictVC: strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 50.0 // 3 tasks * 10 + 2 messages * 10
		if strict {
			want = 70.0 // messages take 20 each
		}
		if res.Latencies[0] != want {
			t.Errorf("strict=%v: latency %g, want %g", strict, res.Latencies[0], want)
		}
	}
}
