package wormhole

import (
	"math"
	"testing"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// lineAssignment pins tasks to explicit nodes.
func lineAssignment(nodes ...topology.NodeID) *alloc.Assignment {
	return &alloc.Assignment{NodeOf: nodes}
}

func uniform(t *testing.T, g *tfg.Graph, exec, bw float64) *tfg.Timing {
	t.Helper()
	tm, err := tfg.NewUniformTiming(g, exec, bw)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestUncontendedChainConstantThroughput(t *testing.T) {
	g, err := tfg.Chain(3, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	tm := uniform(t, g, 10, 64) // exec 10, xmit 10
	// Adjacent placement 0,1,2: M1 uses link 0-1, M2 uses 1-2; disjoint.
	cfg := Config{
		Graph: g, Timing: tm, Topology: top,
		Assignment:  lineAssignment(0, 1, 2),
		TauIn:       15,
		Invocations: 10, Warmup: 3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	ivs := metrics.Intervals(res.OutputCompletions)
	if metrics.OutputInconsistent(cfg.TauIn, ivs, 1e-9) {
		t.Errorf("uncontended chain shows OI: intervals %v", ivs)
	}
	// Latency = 3*10 exec + 2*10 xmit = 50 every invocation.
	for _, l := range res.Latencies {
		if math.Abs(l-50) > 1e-9 {
			t.Errorf("latency = %g, want 50", l)
		}
	}
	if res.TotalLinkWait != 0 {
		t.Errorf("unexpected link wait %g", res.TotalLinkWait)
	}
}

// TestOutputInconsistencyClaim reproduces the Section 3 construction:
// M1 (T1s→T1d) and M2 (T2s→T2d) with T1d preceding T2s, all on the
// critical path, whose assigned paths share links in the same
// direction; FCFS arbitration across invocations yields unequal output
// intervals.
func TestOutputInconsistencyClaim(t *testing.T) {
	b := tfg.NewBuilder("claim")
	a := b.AddTask("a", 100)
	bb := b.AddTask("b", 100)
	c := b.AddTask("c", 100)
	d := b.AddTask("d", 100)
	b.AddMessage("m1", a, bb, 512)  // the claim's M1
	b.AddMessage("mbc", bb, c, 128) // precedence T1d < T2s
	b.AddMessage("m2", c, d, 512)   // the claim's M2
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	tm := uniform(t, g, 10, 64) // exec 10, xmit m1=m2=8, mbc=2
	// a@0, b@3, c@1, d@3: M1 rides 0→1→2→3 and M2 rides 1→2→3 —
	// the eastbound channels of links 1-2 and 2-3 are shared.
	cfg := Config{
		Graph: g, Timing: tm, Topology: top,
		Assignment:  lineAssignment(0, 3, 1, 3),
		TauIn:       32,
		Invocations: 30, Warmup: 5,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	ivs := metrics.Intervals(res.OutputCompletions)
	if !metrics.OutputInconsistent(cfg.TauIn, ivs, 1e-9) {
		t.Errorf("expected OI from shared-link FCFS contention; intervals %v", ivs)
	}
	if res.TotalLinkWait == 0 {
		t.Error("expected blocking on the shared link")
	}
	// At a long period the same system pipelines consistently.
	cfg.TauIn = 70
	res, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ivs = metrics.Intervals(res.OutputCompletions)
	if metrics.OutputInconsistent(cfg.TauIn, ivs, 1e-9) {
		t.Errorf("long period should remove OI; intervals %v", ivs)
	}
}

func TestColocatedTasksDeliverInstantly(t *testing.T) {
	g, err := tfg.Chain(2, 100, 640)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	tm := uniform(t, g, 10, 64)
	cfg := Config{
		Graph: g, Timing: tm, Topology: top,
		Assignment:  lineAssignment(2, 2), // same node
		TauIn:       100,                  // long period: no AP overlap
		Invocations: 4, Warmup: 1,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Local message: still one transmission time, but AP serializes both
	// tasks on node 2: A 0-10, xmit 10-20, B 20-30 → latency 30.
	for _, l := range res.Latencies {
		if math.Abs(l-30) > 1e-9 {
			t.Errorf("latency = %g, want 30", l)
		}
	}
}

func TestAPSerializationWithSharedNode(t *testing.T) {
	// Two independent input tasks on one node must serialize.
	b := tfg.NewBuilder("two-inputs")
	a := b.AddTask("a", 100)
	c := b.AddTask("c", 100)
	sink := b.AddTask("sink", 100)
	b.AddMessage("m1", a, sink, 640)
	b.AddMessage("m2", c, sink, 640)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		t.Fatal(err)
	}
	tm := uniform(t, g, 10, 64)
	cfg := Config{
		Graph: g, Timing: tm, Topology: top,
		Assignment:  lineAssignment(0, 0, 4),
		TauIn:       100,
		Invocations: 3, Warmup: 0,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// a: 0-10, c: 10-20; messages 0->4 share the ring path 0..4
	// (LSD-to-MSD from the same source/destination pair): m1 10-20...
	// sink needs both; second message cannot start before 20 and the two
	// share all links, so sink starts at 30 and ends at 40.
	if math.Abs(res.Latencies[0]-40) > 1e-9 {
		t.Errorf("latency = %g, want 40", res.Latencies[0])
	}
}

func TestDVBOnSixCubeRuns(t *testing.T) {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn:       tm.TauC(), // maximum load
		Invocations: 20, Warmup: 10,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("DVB on 6-cube deadlocked")
	}
	if len(res.OutputCompletions) != 20 {
		t.Fatalf("got %d completions", len(res.OutputCompletions))
	}
	// Outputs must be monotonically increasing.
	for i := 1; i < len(res.OutputCompletions); i++ {
		if res.OutputCompletions[i] <= res.OutputCompletions[i-1] {
			t.Fatalf("non-monotone completions at %d", i)
		}
	}
	// At maximum load with fan-in contention, blocking must occur.
	if res.TotalLinkWait == 0 {
		t.Error("expected link contention at maximum load")
	}
}

func TestConfigValidation(t *testing.T) {
	g, _ := tfg.Chain(2, 100, 640)
	top, _ := topology.NewTorus(4)
	tm := uniform(t, g, 10, 64)
	as := lineAssignment(0, 1)
	base := Config{Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 20, Invocations: 2}

	bad := base
	bad.TauIn = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("zero period should fail")
	}
	bad = base
	bad.Invocations = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("zero invocations should fail")
	}
	bad = base
	bad.Warmup = -1
	if _, err := Simulate(bad); err == nil {
		t.Error("negative warmup should fail")
	}
	bad = base
	bad.Graph = nil
	if _, err := Simulate(bad); err == nil {
		t.Error("nil graph should fail")
	}
	bad = base
	bad.Assignment = lineAssignment(0)
	if _, err := Simulate(bad); err == nil {
		t.Error("short assignment should fail")
	}
}

func TestLatencyBoundedBelowByCriticalPath(t *testing.T) {
	// No invocation can finish faster than the uncontended critical path.
	g, err := dvb.New(4)
	if err != nil {
		t.Fatal(err)
	}
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	as, err := alloc.Greedy(g, top)
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := g.CriticalPath(tm)
	for _, tauIn := range []float64{50, 75, 120, 250} {
		cfg := Config{
			Graph: g, Timing: tm, Topology: top, Assignment: as,
			TauIn: tauIn, Invocations: 15, Warmup: 5,
		}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("deadlock at tauIn=%g", tauIn)
		}
		for j, l := range res.Latencies {
			if l < cp-1e-6 {
				t.Errorf("tauIn=%g inv %d: latency %g below critical path %g", tauIn, j, l, cp)
			}
		}
		for i := 1; i < len(res.OutputCompletions); i++ {
			if res.OutputCompletions[i] <= res.OutputCompletions[i-1] {
				t.Fatalf("tauIn=%g: non-monotone output completions", tauIn)
			}
		}
	}
}
