#!/bin/sh
# fleet_smoke.sh — end-to-end smoke of the fleet features: two srschedd
# replicas sharing a -warmstart-dir, snapshot write-behind and the
# /v1/snapshot fetch path, warm-start hydration on a sibling replica,
# and a kill/restart proving the restarted replica's first solve derives
# zero structure (BaselineBuilds/CandidateBuilds stay 0). Run via
# `make fleet-smoke`.
set -eu

PORT_A="${FLEET_SMOKE_PORT_A:-18081}"
PORT_B="${FLEET_SMOKE_PORT_B:-18082}"
BASE_A="http://127.0.0.1:$PORT_A"
BASE_B="http://127.0.0.1:$PORT_B"
DIR="$(mktemp -d)"
BIN="$DIR/srschedd"
WARM="$DIR/warm"
trap 'kill "$PID_A" "$PID_B" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/srschedd

# -shard-policy serve keeps the smoke deterministic: every replica
# solves what it is asked, records shard misses for foreign keys, and
# the shared directory — not proxying — carries the warm state.
start_replica() { # $1 = port
    "$BIN" -listen "127.0.0.1:$1" -drain 10s \
        -warmstart-dir "$WARM" \
        -peers "$BASE_A,$BASE_B" -self "http://127.0.0.1:$1" \
        -shard-policy serve 2>/dev/null &
}
wait_healthy() { # $1 = base URL
    for i in $(seq 1 50); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "replica $1 never became healthy"; exit 1
}

start_replica "$PORT_A"; PID_A=$!
start_replica "$PORT_B"; PID_B=$!
wait_healthy "$BASE_A"
wait_healthy "$BASE_B"

PROBLEM='{"problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": %s}}'

# First solve on A: cold structure build, snapshot written behind.
printf "$PROBLEM" 150 | curl -fsS -X POST "$BASE_A/v1/schedule" -d @- \
    | grep -q '"feasible": *true' || { echo "solve on A not feasible"; exit 1; }

# The on-disk snapshot name is the schema-versioned hash of the
# structure key — computable from the shell, same as snapshotID().
KEY='v2|tfg=dvb:4|topo=cube:6|bw=64|speed=0|alloc=rr|seed=0'
ID="v1-$(printf '%s' "$KEY" | sha256sum | cut -c1-32)"
for i in $(seq 1 50); do
    if [ -f "$WARM/$ID.json" ]; then break; fi
    sleep 0.1
done
[ -f "$WARM/$ID.json" ] || { echo "write-behind snapshot $ID.json never appeared"; exit 1; }

# The snapshot endpoint serves the cached structure; an unknown id is a
# clean 404, not a 500.
curl -fsS "$BASE_A/v1/snapshot/$ID" | grep '"schema_version":1' >/dev/null \
    || { echo "snapshot fetch missing schema_version"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE_A/v1/snapshot/v1-00000000000000000000000000000000")
[ "$CODE" = "404" ] || { echo "bogus snapshot id returned $CODE, want 404"; exit 1; }

# Replica B has never built this structure: its first solve must
# hydrate from the shared directory and derive nothing.
printf "$PROBLEM" 160 | curl -fsS -X POST "$BASE_B/v1/schedule" -d @- \
    | grep -q '"feasible": *true' || { echo "solve on B not feasible"; exit 1; }
curl -fsS "$BASE_B/metrics" | grep '^srschedd_warmstart_hits_total 1$' >/dev/null \
    || { echo "B did not hydrate from the shared warm-start dir"; exit 1; }
curl -fsS "$BASE_B/metrics" | grep '^srschedd_solver_baseline_builds_total 0$' >/dev/null \
    || { echo "B derived the LSD baseline despite hydration"; exit 1; }

# Kill A, restart it on the same flags: the restarted replica's first
# solve must warm-start too — zero BaselineBuilds, zero CandidateBuilds.
kill -TERM "$PID_A"
wait "$PID_A" || { echo "replica A did not exit cleanly"; exit 1; }
start_replica "$PORT_A"; PID_A=$!
wait_healthy "$BASE_A"

printf "$PROBLEM" 175 | curl -fsS -X POST "$BASE_A/v1/schedule" -d @- \
    | grep -q '"feasible": *true' || { echo "solve on restarted A not feasible"; exit 1; }
METRICS="$(curl -fsS "$BASE_A/metrics")"
echo "$METRICS" | grep '^srschedd_warmstart_hits_total 1$' >/dev/null \
    || { echo "restarted A did not hydrate"; exit 1; }
echo "$METRICS" | grep '^srschedd_solver_baseline_builds_total 0$' >/dev/null \
    || { echo "restarted A rebuilt the LSD baseline"; exit 1; }
echo "$METRICS" | grep '^srschedd_solver_candidate_builds_total 0$' >/dev/null \
    || { echo "restarted A rebuilt path candidates"; exit 1; }

# Graceful shutdown of the whole fleet.
kill -TERM "$PID_A" "$PID_B"
wait "$PID_A" || { echo "replica A did not drain cleanly"; exit 1; }
wait "$PID_B" || { echo "replica B did not drain cleanly"; exit 1; }
PID_A=""; PID_B=""
echo "fleet smoke OK"
